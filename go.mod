module tireplay

go 1.23
