module tireplay

go 1.24
