// Command tigather gathers per-process trace files onto the replay node
// with a K-nomial tree schedule — the last step of the acquisition process
// (Section 4.3). With -merge it also concatenates the files into one trace.
//
// Usage:
//
//	tigather -k 4 ti/SG_process*.trace            # print the plan and cost
//	tigather -k 4 -merge all.trace ti/SG_*.trace  # and merge the files
package main

import (
	"flag"
	"fmt"
	"os"

	"tireplay/internal/cli"
	"tireplay/internal/gather"
	"tireplay/internal/platform"
	"tireplay/internal/units"
)

func main() {
	var (
		k     = flag.Int("k", 4, "arity of the K-nomial gathering tree")
		merge = flag.String("merge", "", "merge the gathered files into this path")
		bw    = flag.Float64("bw", platform.GigaEthernetBw, "link bandwidth (B/s) of the cost model")
		lat   = flag.Float64("lat", 3*platform.ClusterLatency, "path latency (s) of the cost model")
		auto  = flag.Bool("auto", false, "pick the arity minimising the modelled time")
	)
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		fail(cli.Usagef("no trace files given"))
	}

	sizes := make([]float64, len(files))
	for i, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			fail(err)
		}
		sizes[i] = float64(st.Size())
	}

	arity := *k
	if *auto {
		best, _, err := gather.BestArity(sizes, []int{1, 2, 4, 8, 16}, *bw, *lat)
		if err != nil {
			fail(err)
		}
		arity = best
	}
	cost, err := gather.Cost(sizes, arity, *bw, *lat)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%d files, %d-nomial tree: %d steps, modelled gathering time %s\n",
		len(files), arity, gather.Steps(len(files), arity), units.FormatSeconds(cost))

	if *merge != "" {
		n, err := gather.Concat(files, *merge)
		if err != nil {
			fail(err)
		}
		fmt.Printf("merged %s into %s\n", units.FormatBytes(float64(n)), *merge)
	}
}

func fail(err error) {
	cli.Fail("tigather", err)
}
