// Command tistat prints statistics and consistency diagnostics for
// time-independent trace files: action counts by type, computation and
// communication volumes, text size, and the cross-process verification
// results (unmatched messages, dangling requests, diverging collectives).
//
// Usage:
//
//	tistat ti/SG_process*.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"tireplay/internal/cli"
	"tireplay/internal/trace"
	"tireplay/internal/units"
)

func main() {
	verify := flag.Bool("verify", true, "run cross-process consistency checks")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		cli.Fail("tistat", cli.Usagef("no trace files given"))
	}

	perRank := make([][]trace.Action, len(files))
	var global trace.Stats
	for i, path := range files {
		actions, err := trace.ReadFile(path)
		if err != nil {
			cli.Fail("tistat", fmt.Errorf("reading %s: %w", path, err))
		}
		perRank[i] = actions
		st := trace.Collect(actions)
		fmt.Printf("%s: %s\n", path, st.String())
		for _, a := range actions {
			global.Observe(a)
		}
	}
	fmt.Printf("\ntotal: %s\n", global.String())
	fmt.Printf("volumes: %s computed, %s communicated\n",
		units.FormatFlops(global.Flops), units.FormatBytes(global.CommBytes))

	if *verify {
		errs := trace.Verify(perRank)
		if len(errs) == 0 {
			fmt.Println("consistency: OK")
			return
		}
		fmt.Printf("consistency: %d problem(s)\n", len(errs))
		for _, e := range errs {
			fmt.Println(" ", e)
		}
		os.Exit(cli.ExitFailure)
	}
}
