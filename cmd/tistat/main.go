// Command tistat prints statistics and consistency diagnostics for
// time-independent trace files: action counts by type, computation and
// communication volumes, text size, and the cross-process verification
// results (unmatched messages, dangling requests, diverging collectives).
//
// With -metrics the arguments are *timed* traces instead (the output of
// tireplay -timed / tisweep -timed), and tistat computes the time-resolved
// POP metrics report — load balance, communication efficiency, and the
// serialization/transfer split, per fixed time window and per detected
// phase. Several files merge into one analysis (the partitioned-sweep
// case, one timed trace per platform part).
//
// Usage:
//
//	tistat ti/SG_process*.trace
//	tistat -metrics timed.trace
//	tistat -metrics -windows 20 -json timed.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"tireplay/internal/cli"
	"tireplay/internal/metrics"
	"tireplay/internal/replay"
	"tireplay/internal/trace"
	"tireplay/internal/units"
)

func main() {
	verify := flag.Bool("verify", true, "run cross-process consistency checks")
	metricsMode := flag.Bool("metrics", false, "treat arguments as timed traces and print time-resolved POP metrics")
	windows := flag.Int("windows", 10, "number of fixed time windows for -metrics")
	jsonOut := flag.Bool("json", false, "emit the -metrics report as JSON instead of tables")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		cli.Fail("tistat", cli.Usagef("no trace files given"))
	}

	if *metricsMode {
		runMetrics(files, *windows, *jsonOut)
		return
	}

	perRank := make([][]trace.Action, len(files))
	var global trace.Stats
	for i, path := range files {
		actions, err := trace.ReadFile(path)
		if err != nil {
			cli.Fail("tistat", fmt.Errorf("reading %s: %w", path, err))
		}
		perRank[i] = actions
		st := trace.Collect(actions)
		fmt.Printf("%s: %s\n", path, st.String())
		for _, a := range actions {
			global.Observe(a)
		}
	}
	fmt.Printf("\ntotal: %s\n", global.String())
	fmt.Printf("volumes: %s computed, %s communicated\n",
		units.FormatFlops(global.Flops), units.FormatBytes(global.CommBytes))

	if *verify {
		errs := trace.Verify(perRank)
		if len(errs) == 0 {
			fmt.Println("consistency: OK")
			return
		}
		fmt.Printf("consistency: %d problem(s)\n", len(errs))
		for _, e := range errs {
			fmt.Println(" ", e)
		}
		os.Exit(cli.ExitFailure)
	}
}

// runMetrics reads each timed trace into its own columnar sink, merges
// them into one analysis, and prints the report.
func runMetrics(files []string, windows int, jsonOut bool) {
	sinks := make([]*replay.MetricsSink, 0, len(files))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			cli.Fail("tistat", err)
		}
		s := replay.NewMetricsSink()
		if _, err := replay.ReadTimedTrace(f, s); err != nil {
			f.Close()
			cli.Fail("tistat", fmt.Errorf("reading %s: %w", path, err))
		}
		f.Close()
		sinks = append(sinks, s)
	}
	rep := metrics.Analyze(sinks, metrics.Options{Windows: windows})
	if jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			cli.Fail("tistat", err)
		}
		return
	}
	rep.Render(os.Stdout)
}
