// Command tiserved runs the replay stack as a resident sweep service:
// clients upload time-independent traces once (content-addressed, parsed
// and cached under a byte budget) and then ask what-if questions against
// them over HTTP. Determinism makes every answer perfectly cacheable —
// repeated questions are served byte-identically with zero replay, and
// identical questions in flight coalesce onto one kernel run.
//
// Usage:
//
//	tiserved -addr :8347
//	tiserved -addr 127.0.0.1:0 -addr-file tiserved.addr \
//	         -max-concurrent 2 -queue 8 -workers 8
//
// Endpoints:
//
//	POST /traces   register a trace set (inline texts, or a daemon-local
//	               directory when -allow-paths is set)
//	GET  /traces   list stored trace sets
//	POST /sweeps   replay a scenario grid against a stored trace, or — with
//	               a "synth" model and a grid "world" axis — against
//	               synthetic worlds regenerated at sizes nobody recorded
//	GET  /healthz  liveness
//	GET  /stats    cache/queue/engine counters
//
// On SIGINT/SIGTERM the daemon stops accepting requests, gives in-flight
// sweeps -grace to finish, then aborts them. With -leakcheck it verifies at
// exit that no goroutines outlived shutdown and fails loudly otherwise (the
// CI smoke job runs with it on).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tireplay/internal/cli"
	"tireplay/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8347", "listen address (host:port; port 0 picks an ephemeral port)")
		addrFile      = flag.String("addr-file", "", "write the bound address to this file (atomically) once listening")
		traceBudget   = flag.Int("trace-budget-mb", 1024, "trace store budget in MiB before LRU eviction")
		resultBudget  = flag.Int("result-budget-mb", 256, "result cache budget in MiB before LRU eviction")
		maxConcurrent = flag.Int("max-concurrent", 2, "sweeps executing at once")
		queue         = flag.Int("queue", 4, "sweeps waiting for a slot before 429s are shed")
		workers       = flag.Int("workers", 0, "shared engine pool size (default GOMAXPROCS)")
		maxScenarios  = flag.Int("max-scenarios", 4096, "largest scenario grid one request may expand to")
		allowPaths    = flag.Bool("allow-paths", false, "allow POST /traces to register daemon-local directories")
		retryAfter    = flag.Int("retry-after", 1, "Retry-After seconds hinted on shed requests")
		grace         = flag.Duration("grace", 10*time.Second, "shutdown grace for in-flight sweeps before they are aborted")
		leakcheck     = flag.Bool("leakcheck", false, "fail at exit if goroutines outlive shutdown")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fail(cli.Usagef("unexpected arguments: %v", flag.Args()))
	}
	if *traceBudget <= 0 || *resultBudget <= 0 {
		fail(cli.Usagef("-trace-budget-mb and -result-budget-mb must be positive"))
	}

	// Arm signal handling before taking the leak-check baseline: the
	// runtime's signal-delivery goroutine is born on first Notify and
	// lives for the rest of the process — it is plumbing, not a leak.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	baseline := runtime.NumGoroutine()

	srv := serve.New(serve.Config{
		TraceBudget:   int64(*traceBudget) << 20,
		ResultBudget:  int64(*resultBudget) << 20,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *queue,
		Workers:       *workers,
		MaxScenarios:  *maxScenarios,
		AllowPaths:    *allowPaths,
		RetryAfter:    *retryAfter,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := cli.WriteAddrFile(*addrFile, bound); err != nil {
			ln.Close()
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "tiserved: listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case <-sigCtx.Done():
	case err := <-serveErr:
		fail(err)
	}
	stop()
	fmt.Fprintf(os.Stderr, "tiserved: shutting down (grace %s)\n", *grace)

	// Stop accepting; give in-flight sweeps the grace window, then abort
	// them so their handlers return and Shutdown can complete.
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	abort := context.AfterFunc(shutCtx, srv.Abort)
	err = hs.Shutdown(shutCtx)
	abort()
	cancel()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "tiserved: shutdown: %v\n", err)
	}
	srv.Close()
	<-serveErr // Serve has returned http.ErrServerClosed by now

	if *leakcheck && !goroutinesSettled(baseline) {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "tiserved: goroutine leak after shutdown (%d live, baseline %d):\n%s\n",
			runtime.NumGoroutine(), baseline, buf[:n])
		os.Exit(cli.ExitFailure)
	}
}

// goroutinesSettled polls for the goroutine count to return to the pre-serve
// baseline; connection and signal plumbing needs a moment to unwind.
func goroutinesSettled(baseline int) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

func fail(err error) {
	cli.Fail("tiserved", err)
}
