// Command acquire runs an instrumented benchmark skeleton and writes its
// TAU trace and event files — steps 1 and 2 of the paper's acquisition
// process (instrumentation and execution, Section 4).
//
// Usage:
//
//	acquire -app lu -class A -procs 8 -mode R -out traces/
//
// The execution runs either on the live engine (-engine live, the default:
// fast, no platform model) or on the simulation engine over the modelled
// Grid'5000 clusters (-engine sim), where -mode selects the acquisition
// scenario: R, F-<x>, S-2 or SF-2,<v>.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tireplay/internal/acquisition"
	"tireplay/internal/cli"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/tau"
	"tireplay/internal/units"
)

func main() {
	var (
		app      = flag.String("app", "lu", "benchmark skeleton: lu, cg, ep or mg")
		class    = flag.String("class", "A", "NPB problem class (S, W, A, B, C, D, E)")
		procs    = flag.Int("procs", 8, "number of MPI processes")
		mode     = flag.String("mode", "R", "acquisition mode: R, F-<x>, S-2, SF-2,<v> (sim engine)")
		out      = flag.String("out", ".", "output directory for TAU trace and event files")
		engine   = flag.String("engine", "live", "execution engine: live or sim")
		overhead = flag.Float64("overhead", 1.5e-6, "tracing overhead per record (seconds)")
	)
	flag.Parse()

	prog, err := npb.Build(*app, *class, *procs)
	if err != nil {
		fail(cli.Usage(err))
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	switch *engine {
	case "live":
		makespan, files, err := tau.AcquireLive(*out, mpi.LiveConfig{Procs: *procs}, *overhead, prog)
		if err != nil {
			fail(err)
		}
		report(makespan, files)
	case "sim":
		m, err := parseMode(*mode)
		if err != nil {
			fail(cli.Usage(err))
		}
		camp := &acquisition.Campaign{Procs: *procs, Program: prog, OverheadPerEvent: *overhead}
		b, d, err := camp.Build(m)
		if err != nil {
			fail(err)
		}
		makespan, files, err := tau.AcquireSim(*out, b, d, mpi.SimConfig{}, *overhead, prog)
		if err != nil {
			fail(err)
		}
		fmt.Printf("mode %s on %v node(s)\n", m.Name(), mustNodes(m, *procs))
		report(makespan, files)
	default:
		fail(cli.Usagef("unknown engine %q", *engine))
	}
}

func parseMode(s string) (acquisition.Mode, error) {
	switch {
	case s == "R":
		return acquisition.Regular(), nil
	case strings.HasPrefix(s, "F-"):
		x, err := strconv.Atoi(s[2:])
		if err != nil {
			return acquisition.Mode{}, fmt.Errorf("bad folding factor in %q", s)
		}
		return acquisition.Folding(x), nil
	case s == "S-2":
		return acquisition.Scattering(2), nil
	case strings.HasPrefix(s, "SF-2,"):
		v, err := strconv.Atoi(s[len("SF-2,"):])
		if err != nil {
			return acquisition.Mode{}, fmt.Errorf("bad folding factor in %q", s)
		}
		return acquisition.ScatterFold(2, v), nil
	default:
		return acquisition.Mode{}, fmt.Errorf("unknown mode %q", s)
	}
}

func mustNodes(m acquisition.Mode, procs int) []int {
	nodes, err := m.Nodes(procs)
	if err != nil {
		return nil
	}
	return nodes
}

func report(makespan float64, files *tau.AcquisitionFiles) {
	var events int64
	for _, e := range files.Events {
		events += e
	}
	fmt.Printf("instrumented execution time: %s\n", units.FormatSeconds(makespan))
	fmt.Printf("trace files: %d (%s, %d records)\n",
		len(files.TraceFiles), units.FormatBytes(float64(files.TraceBytes)), events)
	fmt.Printf("written to: %s\n", files.Dir)
}

func fail(err error) {
	cli.Fail("acquire", err)
}
