// Command tisweep explores a grid of what-if platform scenarios in
// parallel: it loads one set of time-independent traces, expands the cross
// product of the -lat/-bw/-power/-fold/-hosts/-coll axes into scenarios,
// replays every scenario on its own simulation kernel across a bounded
// worker pool, and prints the per-scenario makespan table (optionally a
// JSON report and per-scenario timed traces).
//
// Usage:
//
//	tisweep -dir ti/ -ranks 8 -power 1,2 -bw 1,10            # built-in bordereau platform
//	tisweep -platform cluster.xml -dir ti/ -ranks 64 \
//	        -lat 0.5,1,2 -bw 1,10 -fold 1,2 -workers 8 -json report.json
//	tisweep -dir ti/ -ranks 8 -coll "linear;binomial;auto"   # collective-algorithm study
//	tisweep -dir ti/ -ranks 8 \
//	        -topo "fat-tree:4,torus:4x4,dragonfly:2x4x2"     # topology study
//	tisweep -dir ti/ -ranks 8 -ckpt "none;30/5;60/5" \
//	        -fault "none;mtbf:3600,seed:7"                   # resilience study
//	tisweep -dir ti/ -ranks 8 -bw 0.25,1 -metrics \
//	        -metrics-json metrics.json                       # rank scenarios by POP efficiencies
//	tisweep -synth lu.model.json -world 1024,4096,16384 \
//	        -scale strong -topo dragonfly:8x16x8             # replay worlds nobody recorded
//
// With -synth, scenarios regenerate their rank streams from a fitted
// statistical model (tigen fit) at each -world size instead of reading
// recorded traces, so "LU at 16k ranks on a dragonfly" is one grid cell; a
// -world entry of 0 replays the recorded -dir set, mixing recorded and
// synthetic cells in one table.
//
// Scenario results are deterministic: the same grid produces byte-identical
// per-scenario timed traces whatever -workers is set to. Scenarios differing
// only in their collective algorithm or checkpoint policy replay their common
// trace prefix once and fork from a kernel snapshot (-fork=off disables the
// optimisation); results are provably identical either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"

	"tireplay/internal/cli"
	"tireplay/internal/platform"
	"tireplay/internal/smpi"
	"tireplay/internal/sweep"
	"tireplay/internal/synth"
)

func main() {
	var (
		platformPath = flag.String("platform", "", "SimGrid platform XML file (default: built-in bordereau sized to -ranks)")
		dir          = flag.String("dir", "", "directory of SG_process<rank>.trace files (.trace.gz/.tib also resolved)")
		ranks        = flag.Int("ranks", 0, "number of ranks in the trace set")
		lat          = flag.String("lat", "", "comma-separated latency scale factors (default 1)")
		bw           = flag.String("bw", "", "comma-separated bandwidth scale factors (default 1)")
		power        = flag.String("power", "", "comma-separated flop-rate scale factors (default 1)")
		fold         = flag.String("fold", "", "comma-separated deployment folding factors (default 1)")
		hosts        = flag.String("hosts", "", "comma-separated host counts to deploy onto (default: all hosts)")
		collSpecs    = flag.String("coll", "", "semicolon-separated collective-algorithm configurations (\"linear;binomial;bcast=binomial,allReduce=ring\")")
		topoSpecs    = flag.String("topo", "", "comma-separated generated topologies replacing the base platform (\"fat-tree:4,torus:4x4x2,dragonfly:2x4x2\")")
		faultSpecs   = flag.String("fault", "", "semicolon-separated availability profiles (\"none;host:1@5;hosts:25%@10,mtbf:3600\")")
		ckptSpecs    = flag.String("ckpt", "", "semicolon-separated checkpoint/restart protocols (\"none;30/5;60/5/10/30\")")
		worldList    = flag.String("world", "", "comma-separated synthetic world sizes regenerated from -synth (0 = the recorded world)")
		synthPath    = flag.String("synth", "", "fitted model JSON (tigen fit) synthetic worlds regenerate from")
		scaleLaw     = flag.String("scale", "", "scaling law for synthetic worlds: weak, strong, or exponents like compute=-1:bytes=-0.5 (default weak)")
		synthSeed    = flag.Uint64("seed", 0, "jitter seed for synthetic worlds")
		synthJitter  = flag.Float64("jitter", 0, "compute-volume jitter fraction in [0,1) for synthetic worlds")
		workers      = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		forkMode     = flag.String("fork", "on", "shared-prefix forking: scenarios differing only in -coll/-ckpt replay their common prefix once (on/off)")
		partition    = flag.Bool("partition", false, "split scenarios across kernels per disjoint platform component")
		identity     = flag.Bool("no-mpi-model", false, "disable the piece-wise linear MPI model")
		jsonPath     = flag.String("json", "", "write the JSON report to this file ('-' for stdout)")
		timedDir     = flag.String("timed-dir", "", "write each scenario's timed trace to <dir>/scenario<i>.timed")
		profile      = flag.Bool("profile", false, "collect per-process profiles into the JSON report")
		metricsOn    = flag.Bool("metrics", false, "compute time-resolved POP metrics per scenario (adds efficiency columns to the table and the report)")
		metricsJSON  = flag.String("metrics-json", "", "write the deterministic metrics-only JSON view to this file ('-' for stdout); implies -metrics")
		windows      = flag.Int("windows", 0, "fixed time windows per scenario for -metrics (default 10)")
	)
	flag.Parse()

	worlds, err := sweep.ParseWorldList(*worldList)
	if err != nil {
		fail(cli.Usage(err))
	}
	synthetic := *synthPath != ""
	if synthetic && len(worlds) == 0 {
		fail(cli.Usagef("-synth needs a -world axis"))
	}
	// Recorded traces are needed unless every cell is synthetic: no -synth
	// means the whole grid replays the -dir set, and a 0 entry on the
	// -world axis is the recorded world.
	needTraces := !synthetic
	for _, w := range worlds {
		if w == 0 {
			needTraces = true
		} else if !synthetic {
			fail(cli.Usagef("-world %d needs -synth (a fitted model to regenerate from)", w))
		}
	}
	if needTraces && (*dir == "" || *ranks <= 0) {
		fail(cli.Usagef("need -dir and a positive -ranks (or -synth with -world)"))
	}
	var fork bool
	switch *forkMode {
	case "on", "true":
		fork = true
	case "off", "false":
		fork = false
	default:
		fail(cli.Usagef("-fork must be on or off, got %q", *forkMode))
	}
	var base *platform.Platform
	if *platformPath != "" {
		if base, err = platform.ParseFile(*platformPath); err != nil {
			fail(err)
		}
	} else {
		// The built-in platform must hold the largest world of the sweep,
		// synthetic cells included.
		maxN := *ranks
		for _, w := range worlds {
			if w > maxN {
				maxN = w
			}
		}
		base = platform.BordereauWithCores(maxN, 1)
	}

	grid := sweep.Grid{}
	if grid.LatencyScale, err = sweep.ParseFloatList(*lat); err != nil {
		fail(cli.Usage(err))
	}
	if grid.BandwidthScale, err = sweep.ParseFloatList(*bw); err != nil {
		fail(cli.Usage(err))
	}
	if grid.PowerScale, err = sweep.ParseFloatList(*power); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Fold, err = sweep.ParseIntList(*fold); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Hosts, err = sweep.ParseIntList(*hosts); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Coll, err = sweep.ParseCollList(*collSpecs); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Topo, err = sweep.ParseTopoList(*topoSpecs); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Faults, err = sweep.ParseFaultList(*faultSpecs); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Ckpt, err = sweep.ParseCkptList(*ckptSpecs); err != nil {
		fail(cli.Usage(err))
	}
	grid.World = worlds

	var traces *sweep.TraceSet
	if needTraces {
		if traces, err = sweep.LoadDir(*dir, *ranks); err != nil {
			fail(err)
		}
		defer traces.Close()
	}
	var model *synth.Model
	var spec synth.Spec
	if synthetic {
		if model, err = synth.ReadModelFile(*synthPath); err != nil {
			fail(err)
		}
		spec = synth.Spec{Seed: *synthSeed, Jitter: *synthJitter}
		if *scaleLaw != "" {
			if spec.Law, err = synth.ParseLaw(*scaleLaw); err != nil {
				fail(cli.Usage(err))
			}
		}
	}

	cfg := &sweep.Config{
		Platform:       base,
		Grid:           grid,
		Traces:         traces,
		Synth:          model,
		SynthSpec:      spec,
		Workers:        *workers,
		Timed:          *timedDir != "",
		Profile:        *profile,
		Metrics:        *metricsOn || *metricsJSON != "",
		MetricsWindows: *windows,
		Partition:      *partition,
		Fork:           fork,
	}
	if *identity {
		cfg.Model = smpi.Identity()
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "tisweep: %d scenarios on %d workers\n", grid.Size(), w)

	// Interrupt stops scheduling new scenarios; running kernels finish,
	// their rows are flushed below (table and JSON alike), the unstarted
	// remainder stays marked "sweep: canceled", and the exit status is 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := sweep.Run(ctx, cfg)
	if res == nil {
		fail(err)
	}
	interrupted := err != nil
	if interrupted {
		fmt.Fprintf(os.Stderr, "tisweep: sweep interrupted: %v; flushing completed scenarios\n", err)
	}

	res.RenderTable(os.Stdout)
	if *timedDir != "" {
		if err := os.MkdirAll(*timedDir, 0o755); err != nil {
			fail(err)
		}
		for i := range res.Scenarios {
			sc := &res.Scenarios[i]
			if sc.Err != "" {
				continue
			}
			p := filepath.Join(*timedDir, fmt.Sprintf("scenario%d.timed", sc.Index))
			if err := os.WriteFile(p, sc.TimedTrace, 0o644); err != nil {
				fail(err)
			}
		}
	}
	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			out = f
		}
		if err := res.WriteJSON(out); err != nil {
			fail(err)
		}
	}
	if *metricsJSON != "" {
		out := os.Stdout
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			out = f
		}
		if err := res.WriteMetricsJSON(out); err != nil {
			fail(err)
		}
	}
	if interrupted {
		os.Exit(cli.ExitCanceled)
	}
	for i := range res.Scenarios {
		if res.Scenarios[i].Err != "" {
			os.Exit(1)
		}
	}
}

func fail(err error) {
	cli.Fail("tisweep", err)
}
