// Command tisweep explores a grid of what-if platform scenarios in
// parallel: it loads one set of time-independent traces, expands the cross
// product of the -lat/-bw/-power/-fold/-hosts/-coll axes into scenarios,
// replays every scenario on its own simulation kernel across a bounded
// worker pool, and prints the per-scenario makespan table (optionally a
// JSON report and per-scenario timed traces).
//
// Usage:
//
//	tisweep -dir ti/ -ranks 8 -power 1,2 -bw 1,10            # built-in bordereau platform
//	tisweep -platform cluster.xml -dir ti/ -ranks 64 \
//	        -lat 0.5,1,2 -bw 1,10 -fold 1,2 -workers 8 -json report.json
//	tisweep -dir ti/ -ranks 8 -coll "linear;binomial;auto"   # collective-algorithm study
//	tisweep -dir ti/ -ranks 8 \
//	        -topo "fat-tree:4,torus:4x4,dragonfly:2x4x2"     # topology study
//	tisweep -dir ti/ -ranks 8 -ckpt "none;30/5;60/5" \
//	        -fault "none;mtbf:3600,seed:7"                   # resilience study
//	tisweep -dir ti/ -ranks 8 -bw 0.25,1 -metrics \
//	        -metrics-json metrics.json                       # rank scenarios by POP efficiencies
//
// Scenario results are deterministic: the same grid produces byte-identical
// per-scenario timed traces whatever -workers is set to. Scenarios differing
// only in their collective algorithm or checkpoint policy replay their common
// trace prefix once and fork from a kernel snapshot (-fork=off disables the
// optimisation); results are provably identical either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"

	"tireplay/internal/cli"
	"tireplay/internal/platform"
	"tireplay/internal/smpi"
	"tireplay/internal/sweep"
)

func main() {
	var (
		platformPath = flag.String("platform", "", "SimGrid platform XML file (default: built-in bordereau sized to -ranks)")
		dir          = flag.String("dir", "", "directory of SG_process<rank>.trace files (.trace.gz/.tib also resolved)")
		ranks        = flag.Int("ranks", 0, "number of ranks in the trace set")
		lat          = flag.String("lat", "", "comma-separated latency scale factors (default 1)")
		bw           = flag.String("bw", "", "comma-separated bandwidth scale factors (default 1)")
		power        = flag.String("power", "", "comma-separated flop-rate scale factors (default 1)")
		fold         = flag.String("fold", "", "comma-separated deployment folding factors (default 1)")
		hosts        = flag.String("hosts", "", "comma-separated host counts to deploy onto (default: all hosts)")
		collSpecs    = flag.String("coll", "", "semicolon-separated collective-algorithm configurations (\"linear;binomial;bcast=binomial,allReduce=ring\")")
		topoSpecs    = flag.String("topo", "", "comma-separated generated topologies replacing the base platform (\"fat-tree:4,torus:4x4x2,dragonfly:2x4x2\")")
		faultSpecs   = flag.String("fault", "", "semicolon-separated availability profiles (\"none;host:1@5;hosts:25%@10,mtbf:3600\")")
		ckptSpecs    = flag.String("ckpt", "", "semicolon-separated checkpoint/restart protocols (\"none;30/5;60/5/10/30\")")
		workers      = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		forkMode     = flag.String("fork", "on", "shared-prefix forking: scenarios differing only in -coll/-ckpt replay their common prefix once (on/off)")
		partition    = flag.Bool("partition", false, "split scenarios across kernels per disjoint platform component")
		identity     = flag.Bool("no-mpi-model", false, "disable the piece-wise linear MPI model")
		jsonPath     = flag.String("json", "", "write the JSON report to this file ('-' for stdout)")
		timedDir     = flag.String("timed-dir", "", "write each scenario's timed trace to <dir>/scenario<i>.timed")
		profile      = flag.Bool("profile", false, "collect per-process profiles into the JSON report")
		metricsOn    = flag.Bool("metrics", false, "compute time-resolved POP metrics per scenario (adds efficiency columns to the table and the report)")
		metricsJSON  = flag.String("metrics-json", "", "write the deterministic metrics-only JSON view to this file ('-' for stdout); implies -metrics")
		windows      = flag.Int("windows", 0, "fixed time windows per scenario for -metrics (default 10)")
	)
	flag.Parse()

	if *dir == "" || *ranks <= 0 {
		fail(cli.Usagef("need -dir and a positive -ranks"))
	}
	var fork bool
	switch *forkMode {
	case "on", "true":
		fork = true
	case "off", "false":
		fork = false
	default:
		fail(cli.Usagef("-fork must be on or off, got %q", *forkMode))
	}
	var (
		base *platform.Platform
		err  error
	)
	if *platformPath != "" {
		if base, err = platform.ParseFile(*platformPath); err != nil {
			fail(err)
		}
	} else {
		base = platform.BordereauWithCores(*ranks, 1)
	}

	grid := sweep.Grid{}
	if grid.LatencyScale, err = sweep.ParseFloatList(*lat); err != nil {
		fail(cli.Usage(err))
	}
	if grid.BandwidthScale, err = sweep.ParseFloatList(*bw); err != nil {
		fail(cli.Usage(err))
	}
	if grid.PowerScale, err = sweep.ParseFloatList(*power); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Fold, err = sweep.ParseIntList(*fold); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Hosts, err = sweep.ParseIntList(*hosts); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Coll, err = sweep.ParseCollList(*collSpecs); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Topo, err = sweep.ParseTopoList(*topoSpecs); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Faults, err = sweep.ParseFaultList(*faultSpecs); err != nil {
		fail(cli.Usage(err))
	}
	if grid.Ckpt, err = sweep.ParseCkptList(*ckptSpecs); err != nil {
		fail(cli.Usage(err))
	}

	traces, err := sweep.LoadDir(*dir, *ranks)
	if err != nil {
		fail(err)
	}
	defer traces.Close()

	cfg := &sweep.Config{
		Platform:       base,
		Grid:           grid,
		Traces:         traces,
		Workers:        *workers,
		Timed:          *timedDir != "",
		Profile:        *profile,
		Metrics:        *metricsOn || *metricsJSON != "",
		MetricsWindows: *windows,
		Partition:      *partition,
		Fork:           fork,
	}
	if *identity {
		cfg.Model = smpi.Identity()
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "tisweep: %d scenarios on %d workers\n", grid.Size(), w)

	// Interrupt stops scheduling new scenarios; running kernels finish,
	// their rows are flushed below (table and JSON alike), the unstarted
	// remainder stays marked "sweep: canceled", and the exit status is 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := sweep.Run(ctx, cfg)
	if res == nil {
		fail(err)
	}
	interrupted := err != nil
	if interrupted {
		fmt.Fprintf(os.Stderr, "tisweep: sweep interrupted: %v; flushing completed scenarios\n", err)
	}

	res.RenderTable(os.Stdout)
	if *timedDir != "" {
		if err := os.MkdirAll(*timedDir, 0o755); err != nil {
			fail(err)
		}
		for i := range res.Scenarios {
			sc := &res.Scenarios[i]
			if sc.Err != "" {
				continue
			}
			p := filepath.Join(*timedDir, fmt.Sprintf("scenario%d.timed", sc.Index))
			if err := os.WriteFile(p, sc.TimedTrace, 0o644); err != nil {
				fail(err)
			}
		}
	}
	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			out = f
		}
		if err := res.WriteJSON(out); err != nil {
			fail(err)
		}
	}
	if *metricsJSON != "" {
		out := os.Stdout
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			out = f
		}
		if err := res.WriteMetricsJSON(out); err != nil {
			fail(err)
		}
	}
	if interrupted {
		os.Exit(cli.ExitCanceled)
	}
	for i := range res.Scenarios {
		if res.Scenarios[i].Err != "" {
			os.Exit(1)
		}
	}
}

func fail(err error) {
	cli.Fail("tisweep", err)
}
