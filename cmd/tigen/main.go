// Command tigen fits statistical models from time-independent traces and
// regenerates synthetic traces at arbitrary world sizes — replaying
// worlds nobody recorded.
//
// Fit a model from a recorded trace directory (or straight from the
// built-in NPB skeletons as ground truth) and save it:
//
//	tigen fit -dir traces/ -ranks 16 -model lu16.json
//	tigen fit -app lu -class S -procs 16 -model lu16.json
//
// Generate synthetic per-rank trace files at a new world size:
//
//	tigen gen -model lu16.json -spec "world=16384,scale=strong" -out synth/
//	tigen gen -model lu16.json -spec 4096 -binary -out synth/
//
// Generation is deterministic: the same model and spec always produce
// byte-identical traces. -verify runs the semantic trace verifier over
// the generated world before anything is written.
package main

import (
	"flag"
	"fmt"
	"os"

	"tireplay/internal/cli"
	"tireplay/internal/npb"
	"tireplay/internal/synth"
	"tireplay/internal/trace"
	"tireplay/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		fail(cli.Usagef("usage: tigen <fit|gen> [flags] (run tigen <cmd> -h for flags)"))
	}
	var err error
	switch os.Args[1] {
	case "fit":
		err = runFit(os.Args[2:])
	case "gen":
		err = runGen(os.Args[2:])
	case "-h", "--help", "help":
		fmt.Println("usage: tigen <fit|gen> [flags]")
		return
	default:
		err = cli.Usagef("unknown subcommand %q (want fit or gen)", os.Args[1])
	}
	if err != nil {
		fail(err)
	}
}

func runFit(args []string) error {
	fs := flag.NewFlagSet("tigen fit", flag.ExitOnError)
	var (
		dir   = fs.String("dir", "", "directory of recorded per-rank trace files")
		ranks = fs.Int("ranks", 0, "number of ranks recorded in -dir")
		app   = fs.String("app", "", "fit from a built-in NPB skeleton instead: lu, cg or ep")
		class = fs.String("class", "S", "NPB problem class when -app is set")
		procs = fs.Int("procs", 16, "recorded world size when -app is set")
		out   = fs.String("model", "", "output model file (default stdout)")
	)
	fs.Parse(args)

	var (
		m   *synth.Model
		err error
	)
	switch {
	case *app != "":
		var perRank [][]trace.Action
		perRank, err = npb.RecordAll(*app, *class, *procs)
		if err != nil {
			return err
		}
		m, err = synth.Fit(perRank)
		if m != nil {
			m.App = *app + "." + *class
		}
	case *dir != "" && *ranks > 0:
		m, err = synth.FitDir(*dir, *ranks)
	default:
		return cli.Usagef("tigen fit needs -dir DIR -ranks N, or -app NAME")
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := m.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fitted %s: world %d on %dx%d grid, %d dirs, %d phases\n",
		orUnnamed(m.App), m.World, m.GridW, m.GridH, len(m.Dirs), len(m.Phases))
	return nil
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("tigen gen", flag.ExitOnError)
	var (
		model  = fs.String("model", "", "fitted model file (required)")
		spec   = fs.String("spec", "", `generation spec, e.g. "world=16384,scale=strong" (required)`)
		out    = fs.String("out", ".", "output directory for synthetic trace files")
		binary = fs.Bool("binary", false, "write the binary .tib codec instead of text")
		verify = fs.Bool("verify", false, "run the semantic trace verifier before writing")
	)
	fs.Parse(args)
	if *model == "" || *spec == "" {
		return cli.Usagef("tigen gen needs -model FILE and -spec SPEC")
	}
	m, err := synth.ReadModelFile(*model)
	if err != nil {
		return err
	}
	sp, err := synth.ParseSpec(*spec)
	if err != nil {
		return err
	}
	g, err := synth.NewGen(m, sp)
	if err != nil {
		return err
	}
	if *verify {
		perRank := make([][]trace.Action, g.World())
		for r := range perRank {
			if perRank[r], err = g.Actions(r); err != nil {
				return err
			}
		}
		if errs := trace.Verify(perRank); len(errs) > 0 {
			return fmt.Errorf("generated world fails verification (%d errors); first: rank %d action %d: %s",
				len(errs), errs[0].Proc, errs[0].Index, errs[0].Problem)
		}
		fmt.Fprintf(os.Stderr, "verified: %d ranks semantically consistent\n", g.World())
	}
	paths, err := g.WriteDir(*out, *binary)
	if err != nil {
		return err
	}
	var bytes int64
	for _, p := range paths {
		if st, err := os.Stat(p); err == nil {
			bytes += st.Size()
		}
	}
	w, h := g.Grid()
	fmt.Printf("generated %s at world %d (%dx%d grid): %d files, %s in %s\n",
		orUnnamed(m.App), g.World(), w, h, len(paths), units.FormatBytes(float64(bytes)), *out)
	return nil
}

func orUnnamed(app string) string {
	if app == "" {
		return "model"
	}
	return app
}

func fail(err error) {
	cli.Fail("tigen", err)
}
