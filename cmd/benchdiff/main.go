// Command benchdiff gates benchmark regressions in CI: it parses `go test
// -bench` output, aggregates repeated runs (-count=N) into per-benchmark
// medians, and compares them against a committed baseline.
//
// Usage:
//
//	go test ./... -bench . -benchmem -count=5 | tee bench.txt
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt -out benchdiff.json
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt -floor 'BenchmarkSweepParallel:speedup=3'
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt -update
//
// The comparison fails (exit 1) when a benchmark regresses by more than
// -threshold (default 15%) in ns/op, when its allocs/op increase at all —
// the allocation-free steady state is a hard invariant, not a budget —
// when a baseline benchmark disappears from the run, or when a custom
// metric reported by the benchmark (b.ReportMetric, e.g. the sweep engine's
// "speedup") falls below a -floor. New benchmarks absent from the baseline
// are reported but do not fail; commit them with -update (the manual
// baseline-refresh workflow runs exactly that).
//
// Benchmark names are normalized modulo the GOMAXPROCS "-N" suffix before
// comparing, on both sides: a baseline written from a GOMAXPROCS=1 run
// still gates a -cpu-suffixed run and vice versa, instead of the suffixed
// names silently bypassing the gate as "new"/"missing" pairs. (Sub-benchmark
// names should use '=' rather than '-' before numbers — "flows=8" — so the
// normalization cannot bite into a real name.) Baseline names with no
// counterpart in the run after normalization are an error.
//
// Time comparisons are only meaningful between runs on the same class of
// machine (the CI runner that produced the baseline); allocs/op is
// machine-independent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"sort"
	"strconv"
	"strings"
	"tireplay/internal/cli"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Runs        int     `json:"runs,omitempty"`
	// Metrics holds the custom per-op metrics the benchmark reported via
	// b.ReportMetric (e.g. "speedup", "MB/s"), aggregated by median.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed reference file.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Comparison is the per-benchmark verdict written to the -out artifact.
type Comparison struct {
	Name         string  `json:"name"`
	BaseNsPerOp  float64 `json:"base_ns_per_op"`
	CurNsPerOp   float64 `json:"cur_ns_per_op"`
	NsRatio      float64 `json:"ns_ratio"`
	BaseAllocs   int64   `json:"base_allocs_per_op"`
	CurAllocs    int64   `json:"cur_allocs_per_op"`
	Status       string  `json:"status"` // ok | ns-regression | alloc-regression | metric-floor | missing | new
	ThresholdPct float64 `json:"threshold_pct"`
	// Metric carries the offending metric on a metric-floor failure.
	Metric      string  `json:"metric,omitempty"`
	MetricValue float64 `json:"metric_value,omitempty"`
	MetricFloor float64 `json:"metric_floor,omitempty"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkReplaySteadyState-8   300000   1824 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// metricField matches every "<value> <unit>" pair after ns/op: the -benchmem
// fields plus any custom b.ReportMetric unit.
var metricField = regexp.MustCompile(`([0-9.eE+-]+) ([^\s0-9]\S*)`)

// cpuSuffix is the trailing "-N" go test appends to benchmark names when
// GOMAXPROCS != 1 (or under -cpu).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// stripCPUSuffix removes one trailing GOMAXPROCS suffix from a benchmark
// name.
func stripCPUSuffix(name string) string {
	return cpuSuffix.ReplaceAllString(name, "")
}

// parseBench collects every benchmark line of r keyed by the verbatim name
// (suffix included — normalization happens against the baseline), keeping
// all repeated measurements.
func parseBench(r io.Reader) (map[string][]Result, error) {
	out := make(map[string][]Result)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		res := Result{NsPerOp: ns}
		for _, f := range metricField.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				continue
			}
			switch f[2] {
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[f[2]] = v
			}
		}
		out[m[1]] = append(out[m[1]], res)
	}
	return out, nil
}

// aggregate reduces repeated runs to one Result: median ns/op and median
// custom metrics (robust to a noisy outlier run) and minimum allocs/op
// (allocations are deterministic; the minimum discards one-off runtime
// noise).
func aggregate(runs []Result) Result {
	ns := make([]float64, len(runs))
	agg := Result{AllocsPerOp: runs[0].AllocsPerOp, BytesPerOp: runs[0].BytesPerOp, Runs: len(runs)}
	metrics := make(map[string][]float64)
	for i, r := range runs {
		ns[i] = r.NsPerOp
		if r.AllocsPerOp < agg.AllocsPerOp {
			agg.AllocsPerOp = r.AllocsPerOp
		}
		if r.BytesPerOp < agg.BytesPerOp {
			agg.BytesPerOp = r.BytesPerOp
		}
		for k, v := range r.Metrics {
			metrics[k] = append(metrics[k], v)
		}
	}
	agg.NsPerOp = median(ns)
	for k, vs := range metrics {
		if agg.Metrics == nil {
			agg.Metrics = make(map[string]float64)
		}
		agg.Metrics[k] = median(vs)
	}
	return agg
}

func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// normalizeNames re-keys current results onto baseline names when they
// differ only by a trailing GOMAXPROCS suffix on either side, so a
// differently-suffixed run cannot bypass the gate. When several current
// names collapse onto one key (a -cpu list), the conservative measurement
// wins: worst ns/op, worst allocs, lowest metrics.
func normalizeNames(base map[string]Result, current map[string]Result) map[string]Result {
	baseByStripped := make(map[string]string, len(base))
	for bn := range base {
		baseByStripped[stripCPUSuffix(bn)] = bn
	}
	out := make(map[string]Result, len(current))
	for cn, r := range current {
		key := cn
		if _, ok := base[cn]; !ok {
			s := stripCPUSuffix(cn)
			if _, ok := base[s]; ok {
				key = s
			} else if bn, ok := baseByStripped[s]; ok {
				key = bn
			} else {
				key = s // new benchmark: report suffix-free
			}
		}
		if prev, ok := out[key]; ok {
			out[key] = worse(prev, r)
		} else {
			out[key] = r
		}
	}
	return out
}

// worse merges two measurements of one benchmark, keeping the value that is
// harder on the gate for each dimension.
func worse(a, b Result) Result {
	if b.NsPerOp > a.NsPerOp {
		a.NsPerOp = b.NsPerOp
	}
	if b.AllocsPerOp > a.AllocsPerOp {
		a.AllocsPerOp = b.AllocsPerOp
	}
	if b.BytesPerOp > a.BytesPerOp {
		a.BytesPerOp = b.BytesPerOp
	}
	a.Runs += b.Runs
	for k, v := range b.Metrics {
		if cur, ok := a.Metrics[k]; !ok || v < cur {
			if a.Metrics == nil {
				a.Metrics = make(map[string]float64)
			}
			a.Metrics[k] = v
		}
	}
	return a
}

// floorSpec is one -floor entry: benchmark name, metric, minimum value.
type floorSpec struct {
	bench  string
	metric string
	min    float64
}

// parseFloors parses the -floor flag: comma-separated
// "BenchmarkName:metric=min" entries.
func parseFloors(s string) ([]floorSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []floorSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		name, rest, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -floor entry %q (want Name:metric=min)", part)
		}
		metric, minStr, ok := strings.Cut(rest, "=")
		if !ok || metric == "" {
			return nil, fmt.Errorf("bad -floor entry %q (want Name:metric=min)", part)
		}
		if strings.Contains(minStr, "=") {
			return nil, fmt.Errorf("bad -floor entry %q: more than one %q (want Name:metric=min)", part, "=")
		}
		min, err := strconv.ParseFloat(minStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -floor minimum %q: %v", minStr, err)
		}
		out = append(out, floorSpec{bench: name, metric: metric, min: min})
	}
	return out, nil
}

// compare evaluates current (already normalized) against base. It returns
// the per-benchmark verdicts and whether any of them is a failure.
func compare(base, current map[string]Result, threshold float64, floors []floorSpec) ([]Comparison, bool) {
	floorFor := make(map[string][]floorSpec)
	for _, f := range floors {
		floorFor[stripCPUSuffix(f.bench)] = append(floorFor[stripCPUSuffix(f.bench)], f)
	}
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Comparison
	failed := false
	floorChecked := make(map[string]bool)
	for _, n := range names {
		b := base[n]
		c := Comparison{Name: n, BaseNsPerOp: b.NsPerOp, BaseAllocs: b.AllocsPerOp,
			ThresholdPct: threshold * 100}
		cur, ok := current[n]
		switch {
		case !ok:
			c.Status = "missing"
			failed = true
		default:
			c.CurNsPerOp = cur.NsPerOp
			c.CurAllocs = cur.AllocsPerOp
			if b.NsPerOp > 0 {
				c.NsRatio = cur.NsPerOp / b.NsPerOp
			}
			switch {
			case cur.AllocsPerOp > b.AllocsPerOp:
				c.Status = "alloc-regression"
				failed = true
			case b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+threshold):
				c.Status = "ns-regression"
				failed = true
			default:
				c.Status = "ok"
			}
			var ffail bool
			c, ffail = applyFloors(c, cur, floorFor, floorChecked)
			failed = failed || ffail
		}
		out = append(out, c)
	}
	// Surface benchmarks the baseline does not know about (floors still
	// apply to them: a gated metric must not escape through a missing
	// baseline entry).
	extra := make([]string, 0)
	for n := range current {
		if _, ok := base[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		cur := current[n]
		c := Comparison{Name: n, CurNsPerOp: cur.NsPerOp,
			CurAllocs: cur.AllocsPerOp, Status: "new", ThresholdPct: threshold * 100}
		var ffail bool
		c, ffail = applyFloors(c, cur, floorFor, floorChecked)
		failed = failed || ffail
		out = append(out, c)
	}
	// A floor naming a benchmark absent from the run entirely is a failure:
	// the gate must not pass because the gated benchmark did not run.
	for _, fs := range floors {
		key := stripCPUSuffix(fs.bench)
		if !floorChecked[key] {
			failed = true
			out = append(out, Comparison{Name: fs.bench, Status: "missing",
				Metric: fs.metric, MetricFloor: fs.min, ThresholdPct: threshold * 100})
		}
	}
	return out, failed
}

// applyFloors checks cur against the floors registered for c.Name; it
// returns the updated comparison and whether a floor failed. Floors are
// evaluated whatever the ns/alloc verdict was (a regressed benchmark still
// ran, so its gated metrics must still be checked and recorded); the status
// only switches to "metric-floor" when nothing worse is already reported.
func applyFloors(c Comparison, cur Result, floorFor map[string][]floorSpec, checked map[string]bool) (Comparison, bool) {
	key := stripCPUSuffix(c.Name)
	specs := floorFor[key]
	if len(specs) == 0 {
		return c, false
	}
	checked[key] = true
	for _, fs := range specs {
		v, ok := cur.Metrics[fs.metric]
		if !ok || v < fs.min {
			if c.Status == "ok" || c.Status == "new" {
				c.Status = "metric-floor"
			}
			c.Metric = fs.metric
			c.MetricValue = v
			c.MetricFloor = fs.min
			return c, true
		}
	}
	return c, false
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
		benchPath    = flag.String("bench", "-", "go test -bench output file ('-' for stdin)")
		outPath      = flag.String("out", "", "write the comparison result JSON here")
		threshold    = flag.Float64("threshold", 0.15, "allowed fractional ns/op regression")
		floorsFlag   = flag.String("floor", "", "metric floors, comma-separated 'BenchmarkName:metric=min' entries")
		update       = flag.Bool("update", false, "rewrite the baseline from the bench output instead of comparing")
		note         = flag.String("note", "", "note stored in the baseline on -update (e.g. the machine class)")
	)
	flag.Parse()

	floors, err := parseFloors(*floorsFlag)
	if err != nil {
		fail(cli.Usage(err))
	}
	in := os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	runs, err := parseBench(in)
	if err != nil {
		fail(err)
	}
	if len(runs) == 0 {
		fail(fmt.Errorf("no benchmark lines found in %s", *benchPath))
	}
	current := make(map[string]Result, len(runs))
	for name, rs := range runs {
		current[name] = aggregate(rs)
	}

	if *update {
		// Baseline keys are stored suffix-free so any later GOMAXPROCS
		// still matches them.
		b := Baseline{Note: *note, Benchmarks: normalizeNames(nil, current)}
		if err := writeJSON(*baselinePath, b); err != nil {
			fail(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(b.Benchmarks), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fail(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fail(fmt.Errorf("%s: %w", *baselinePath, err))
	}
	comps, failed := compare(base.Benchmarks, normalizeNames(base.Benchmarks, current), *threshold, floors)
	for _, c := range comps {
		switch c.Status {
		case "ok":
			fmt.Printf("ok    %-50s %12.1f ns/op (%.2fx base) %d allocs/op\n",
				c.Name, c.CurNsPerOp, c.NsRatio, c.CurAllocs)
		case "new":
			fmt.Printf("new   %-50s %12.1f ns/op %d allocs/op (not in baseline; run -update)\n",
				c.Name, c.CurNsPerOp, c.CurAllocs)
		case "missing":
			fmt.Printf("FAIL  %-50s missing from bench output\n", c.Name)
		case "ns-regression":
			fmt.Printf("FAIL  %-50s %12.1f ns/op is %.2fx baseline %.1f (limit %.0f%%)\n",
				c.Name, c.CurNsPerOp, c.NsRatio, c.BaseNsPerOp, c.ThresholdPct)
		case "alloc-regression":
			fmt.Printf("FAIL  %-50s %d allocs/op, baseline %d (any increase fails)\n",
				c.Name, c.CurAllocs, c.BaseAllocs)
		case "metric-floor":
			fmt.Printf("FAIL  %-50s %s = %.3f below floor %.3f\n",
				c.Name, c.Metric, c.MetricValue, c.MetricFloor)
		}
	}
	if *outPath != "" {
		if err := writeJSON(*outPath, comps); err != nil {
			fail(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fail(err error) {
	cli.Fail("benchdiff", err)
}
