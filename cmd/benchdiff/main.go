// Command benchdiff gates benchmark regressions in CI: it parses `go test
// -bench` output, aggregates repeated runs (-count=N) into per-benchmark
// medians, and compares them against a committed baseline.
//
// Usage:
//
//	go test ./... -bench . -benchmem -count=5 | tee bench.txt
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt -out benchdiff.json
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt -update
//
// The comparison fails (exit 1) when a benchmark regresses by more than
// -threshold (default 15%) in ns/op, when its allocs/op increase at all —
// the allocation-free steady state is a hard invariant, not a budget — or
// when a baseline benchmark disappears from the run. New benchmarks absent
// from the baseline are reported but do not fail; commit them with -update.
//
// Time comparisons are only meaningful between runs on the same class of
// machine (the CI runner that produced the baseline); allocs/op is
// machine-independent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Runs        int     `json:"runs,omitempty"`
}

// Baseline is the committed reference file.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Comparison is the per-benchmark verdict written to the -out artifact.
type Comparison struct {
	Name         string  `json:"name"`
	BaseNsPerOp  float64 `json:"base_ns_per_op"`
	CurNsPerOp   float64 `json:"cur_ns_per_op"`
	NsRatio      float64 `json:"ns_ratio"`
	BaseAllocs   int64   `json:"base_allocs_per_op"`
	CurAllocs    int64   `json:"cur_allocs_per_op"`
	Status       string  `json:"status"` // ok | ns-regression | alloc-regression | missing | new
	ThresholdPct float64 `json:"threshold_pct"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkReplaySteadyState-8   300000   1824 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var (
	bytesField  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// parseBench collects every benchmark line of r, keyed by name (the
// GOMAXPROCS suffix is stripped), keeping all repeated measurements.
func parseBench(r io.Reader) (map[string][]Result, error) {
	out := make(map[string][]Result)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		res := Result{NsPerOp: ns}
		if bm := bytesField.FindStringSubmatch(m[3]); bm != nil {
			b, _ := strconv.ParseFloat(bm[1], 64)
			res.BytesPerOp = int64(b)
		}
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			a, _ := strconv.ParseFloat(am[1], 64)
			res.AllocsPerOp = int64(a)
		}
		out[m[1]] = append(out[m[1]], res)
	}
	return out, nil
}

// aggregate reduces repeated runs to one Result: median ns/op (robust to a
// noisy outlier run) and minimum allocs/op (allocations are deterministic;
// the minimum discards one-off runtime noise).
func aggregate(runs []Result) Result {
	ns := make([]float64, len(runs))
	agg := Result{AllocsPerOp: runs[0].AllocsPerOp, BytesPerOp: runs[0].BytesPerOp, Runs: len(runs)}
	for i, r := range runs {
		ns[i] = r.NsPerOp
		if r.AllocsPerOp < agg.AllocsPerOp {
			agg.AllocsPerOp = r.AllocsPerOp
		}
		if r.BytesPerOp < agg.BytesPerOp {
			agg.BytesPerOp = r.BytesPerOp
		}
	}
	sort.Float64s(ns)
	if n := len(ns); n%2 == 1 {
		agg.NsPerOp = ns[n/2]
	} else {
		agg.NsPerOp = (ns[n/2-1] + ns[n/2]) / 2
	}
	return agg
}

// compare evaluates current against base. It returns the per-benchmark
// verdicts and whether any of them is a failure.
func compare(base, current map[string]Result, threshold float64) ([]Comparison, bool) {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Comparison
	failed := false
	for _, n := range names {
		b := base[n]
		c := Comparison{Name: n, BaseNsPerOp: b.NsPerOp, BaseAllocs: b.AllocsPerOp,
			ThresholdPct: threshold * 100}
		cur, ok := current[n]
		switch {
		case !ok:
			c.Status = "missing"
			failed = true
		default:
			c.CurNsPerOp = cur.NsPerOp
			c.CurAllocs = cur.AllocsPerOp
			if b.NsPerOp > 0 {
				c.NsRatio = cur.NsPerOp / b.NsPerOp
			}
			switch {
			case cur.AllocsPerOp > b.AllocsPerOp:
				c.Status = "alloc-regression"
				failed = true
			case b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+threshold):
				c.Status = "ns-regression"
				failed = true
			default:
				c.Status = "ok"
			}
		}
		out = append(out, c)
	}
	// Surface benchmarks the baseline does not know about.
	extra := make([]string, 0)
	for n := range current {
		if _, ok := base[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		cur := current[n]
		out = append(out, Comparison{Name: n, CurNsPerOp: cur.NsPerOp,
			CurAllocs: cur.AllocsPerOp, Status: "new", ThresholdPct: threshold * 100})
	}
	return out, failed
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
		benchPath    = flag.String("bench", "-", "go test -bench output file ('-' for stdin)")
		outPath      = flag.String("out", "", "write the comparison result JSON here")
		threshold    = flag.Float64("threshold", 0.15, "allowed fractional ns/op regression")
		update       = flag.Bool("update", false, "rewrite the baseline from the bench output instead of comparing")
		note         = flag.String("note", "", "note stored in the baseline on -update (e.g. the machine class)")
	)
	flag.Parse()

	in := os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	runs, err := parseBench(in)
	if err != nil {
		fail(err)
	}
	if len(runs) == 0 {
		fail(fmt.Errorf("no benchmark lines found in %s", *benchPath))
	}
	current := make(map[string]Result, len(runs))
	for name, rs := range runs {
		current[name] = aggregate(rs)
	}

	if *update {
		b := Baseline{Note: *note, Benchmarks: current}
		if err := writeJSON(*baselinePath, b); err != nil {
			fail(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fail(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fail(fmt.Errorf("%s: %w", *baselinePath, err))
	}
	comps, failed := compare(base.Benchmarks, current, *threshold)
	for _, c := range comps {
		switch c.Status {
		case "ok":
			fmt.Printf("ok    %-50s %12.1f ns/op (%.2fx base) %d allocs/op\n",
				c.Name, c.CurNsPerOp, c.NsRatio, c.CurAllocs)
		case "new":
			fmt.Printf("new   %-50s %12.1f ns/op %d allocs/op (not in baseline; run -update)\n",
				c.Name, c.CurNsPerOp, c.CurAllocs)
		case "missing":
			fmt.Printf("FAIL  %-50s missing from bench output\n", c.Name)
		case "ns-regression":
			fmt.Printf("FAIL  %-50s %12.1f ns/op is %.2fx baseline %.1f (limit %.0f%%)\n",
				c.Name, c.CurNsPerOp, c.NsRatio, c.BaseNsPerOp, c.ThresholdPct)
		case "alloc-regression":
			fmt.Printf("FAIL  %-50s %d allocs/op, baseline %d (any increase fails)\n",
				c.Name, c.CurAllocs, c.BaseAllocs)
		}
	}
	if *outPath != "" {
		if err := writeJSON(*outPath, comps); err != nil {
			fail(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
