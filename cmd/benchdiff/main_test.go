package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: tireplay/internal/simx
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMaxMinSolve/flows-8-8         	 3837818	       311.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkMaxMinSolve/flows-8-8         	 3837818	       320.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkMaxMinSolve/flows-8-8         	 3837818	       305.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkReplaySteadyState-8           	  300000	      1824 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	tireplay/internal/simx	12.3s
`

func TestParseBenchAggregates(t *testing.T) {
	runs, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(runs), runs)
	}
	solve := aggregate(runs["BenchmarkMaxMinSolve/flows-8"])
	if solve.NsPerOp != 311.0 { // median of {305, 311, 320}
		t.Fatalf("median ns/op = %g, want 311", solve.NsPerOp)
	}
	if solve.AllocsPerOp != 0 || solve.Runs != 3 {
		t.Fatalf("aggregate = %+v", solve)
	}
	steady := aggregate(runs["BenchmarkReplaySteadyState"])
	if steady.NsPerOp != 1824 || steady.AllocsPerOp != 0 {
		t.Fatalf("steady = %+v", steady)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 2},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkD": {NsPerOp: 100, AllocsPerOp: 0},
	}
	current := map[string]Result{
		"BenchmarkA": {NsPerOp: 110, AllocsPerOp: 0}, // +10% < 15%: ok
		"BenchmarkB": {NsPerOp: 90, AllocsPerOp: 3},  // faster but one more alloc: fail
		"BenchmarkC": {NsPerOp: 120, AllocsPerOp: 0}, // +20% > 15%: fail
		// BenchmarkD missing: fail
		"BenchmarkE": {NsPerOp: 50, AllocsPerOp: 1}, // new: reported, not a failure
	}
	comps, failed := compare(base, current, 0.15)
	if !failed {
		t.Fatal("compare should have failed")
	}
	status := make(map[string]string)
	for _, c := range comps {
		status[c.Name] = c.Status
	}
	want := map[string]string{
		"BenchmarkA": "ok",
		"BenchmarkB": "alloc-regression",
		"BenchmarkC": "ns-regression",
		"BenchmarkD": "missing",
		"BenchmarkE": "new",
	}
	for name, s := range want {
		if status[name] != s {
			t.Fatalf("%s: status %q, want %q (all: %v)", name, status[name], s, status)
		}
	}
}

func TestCompareAllOkPasses(t *testing.T) {
	base := map[string]Result{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 1}}
	current := map[string]Result{"BenchmarkA": {NsPerOp: 114.9, AllocsPerOp: 1}}
	if _, failed := compare(base, current, 0.15); failed {
		t.Fatal("within-threshold run must pass")
	}
	// Exactly at the boundary stays ok; just past it fails.
	current["BenchmarkA"] = Result{NsPerOp: 115.1, AllocsPerOp: 1}
	if _, failed := compare(base, current, 0.15); !failed {
		t.Fatal("past-threshold run must fail")
	}
}

func TestParseBenchNoMBLine(t *testing.T) {
	// Lines with MB/s (throughput benchmarks) and without -benchmem fields
	// both parse.
	const doc = `BenchmarkScanBytes-8   100   5570000 ns/op   201.2 MB/s
BenchmarkPlain   200   42.5 ns/op
`
	runs, err := parseBench(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d, want 2: %v", len(runs), runs)
	}
	if runs["BenchmarkScanBytes"][0].NsPerOp != 5570000 {
		t.Fatalf("scan = %+v", runs["BenchmarkScanBytes"])
	}
	if runs["BenchmarkPlain"][0].NsPerOp != 42.5 {
		t.Fatalf("plain = %+v", runs["BenchmarkPlain"])
	}
}
