package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: tireplay/internal/simx
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMaxMinSolve/flows=8-8         	 3837818	       311.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkMaxMinSolve/flows=8-8         	 3837818	       320.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkMaxMinSolve/flows=8-8         	 3837818	       305.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkReplaySteadyState-8           	  300000	      1824 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	tireplay/internal/simx	12.3s
`

func TestParseBenchAggregates(t *testing.T) {
	runs, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(runs), runs)
	}
	// Names stay verbatim at parse time; normalization happens against the
	// baseline.
	solve := aggregate(runs["BenchmarkMaxMinSolve/flows=8-8"])
	if solve.NsPerOp != 311.0 { // median of {305, 311, 320}
		t.Fatalf("median ns/op = %g, want 311", solve.NsPerOp)
	}
	if solve.AllocsPerOp != 0 || solve.Runs != 3 {
		t.Fatalf("aggregate = %+v", solve)
	}
	steady := aggregate(runs["BenchmarkReplaySteadyState-8"])
	if steady.NsPerOp != 1824 || steady.AllocsPerOp != 0 {
		t.Fatalf("steady = %+v", steady)
	}
}

func TestParseBenchCustomMetrics(t *testing.T) {
	const doc = `BenchmarkSweepParallel-4   3   5432100000 ns/op   3.85 speedup   1422000 B/op   21100 allocs/op
BenchmarkSweepParallel-4   3   5500000000 ns/op   3.61 speedup   1422000 B/op   21100 allocs/op
BenchmarkSweepParallel-4   3   5400000000 ns/op   3.97 speedup   1422000 B/op   21100 allocs/op
`
	runs, err := parseBench(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	agg := aggregate(runs["BenchmarkSweepParallel-4"])
	if agg.Metrics["speedup"] != 3.85 { // median of {3.61, 3.85, 3.97}
		t.Fatalf("speedup = %v", agg.Metrics)
	}
	if agg.AllocsPerOp != 21100 || agg.BytesPerOp != 1422000 {
		t.Fatalf("agg = %+v", agg)
	}
}

// TestNormalizeCPUSuffix is the gate-bypass regression test: a baseline
// written without GOMAXPROCS suffixes must still gate a -cpu-suffixed run,
// in both suffix directions.
func TestNormalizeCPUSuffix(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA":          {NsPerOp: 100},
		"BenchmarkB/flows=64": {NsPerOp: 100},
		"BenchmarkC-8":        {NsPerOp: 100}, // baseline itself suffixed
	}
	current := map[string]Result{
		"BenchmarkA-8":          {NsPerOp: 200}, // 2x regression, must not hide behind the suffix
		"BenchmarkB/flows=64-8": {NsPerOp: 100},
		"BenchmarkC":            {NsPerOp: 100},
	}
	comps, failed := compare(base, normalizeNames(base, current), 0.15, nil)
	if !failed {
		t.Fatal("suffixed regression escaped the gate")
	}
	status := map[string]string{}
	for _, c := range comps {
		status[c.Name] = c.Status
	}
	want := map[string]string{
		"BenchmarkA":          "ns-regression",
		"BenchmarkB/flows=64": "ok",
		"BenchmarkC-8":        "ok",
	}
	for n, s := range want {
		if status[n] != s {
			t.Fatalf("%s: status %q, want %q (all: %v)", n, status[n], s, status)
		}
	}
	if len(comps) != 3 {
		t.Fatalf("comparisons = %v, want exactly 3 (no new/missing pairs)", status)
	}
}

func TestNormalizeMergesCPUVariants(t *testing.T) {
	// A -cpu 1,4 run reports the same benchmark twice; the conservative
	// (worst) measurement must gate.
	base := map[string]Result{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 5}}
	current := map[string]Result{
		"BenchmarkA":   {NsPerOp: 90, AllocsPerOp: 5},
		"BenchmarkA-4": {NsPerOp: 130, AllocsPerOp: 6},
	}
	norm := normalizeNames(base, current)
	if len(norm) != 1 {
		t.Fatalf("normalized = %v", norm)
	}
	got := norm["BenchmarkA"]
	if got.NsPerOp != 130 || got.AllocsPerOp != 6 {
		t.Fatalf("merged = %+v, want worst of both", got)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 2},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkD": {NsPerOp: 100, AllocsPerOp: 0},
	}
	current := map[string]Result{
		"BenchmarkA": {NsPerOp: 110, AllocsPerOp: 0}, // +10% < 15%: ok
		"BenchmarkB": {NsPerOp: 90, AllocsPerOp: 3},  // faster but one more alloc: fail
		"BenchmarkC": {NsPerOp: 120, AllocsPerOp: 0}, // +20% > 15%: fail
		// BenchmarkD missing: fail
		"BenchmarkE": {NsPerOp: 50, AllocsPerOp: 1}, // new: reported, not a failure
	}
	comps, failed := compare(base, current, 0.15, nil)
	if !failed {
		t.Fatal("compare should have failed")
	}
	status := make(map[string]string)
	for _, c := range comps {
		status[c.Name] = c.Status
	}
	want := map[string]string{
		"BenchmarkA": "ok",
		"BenchmarkB": "alloc-regression",
		"BenchmarkC": "ns-regression",
		"BenchmarkD": "missing",
		"BenchmarkE": "new",
	}
	for name, s := range want {
		if status[name] != s {
			t.Fatalf("%s: status %q, want %q (all: %v)", name, status[name], s, status)
		}
	}
}

func TestCompareAllOkPasses(t *testing.T) {
	base := map[string]Result{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 1}}
	current := map[string]Result{"BenchmarkA": {NsPerOp: 114.9, AllocsPerOp: 1}}
	if _, failed := compare(base, current, 0.15, nil); failed {
		t.Fatal("within-threshold run must pass")
	}
	// Exactly at the boundary stays ok; just past it fails.
	current["BenchmarkA"] = Result{NsPerOp: 115.1, AllocsPerOp: 1}
	if _, failed := compare(base, current, 0.15, nil); !failed {
		t.Fatal("past-threshold run must fail")
	}
}

func TestMetricFloors(t *testing.T) {
	floors, err := parseFloors("BenchmarkSweepParallel:speedup=3")
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]Result{"BenchmarkSweepParallel": {NsPerOp: 100}}
	ok := map[string]Result{"BenchmarkSweepParallel": {NsPerOp: 100,
		Metrics: map[string]float64{"speedup": 3.6}}}
	if _, failed := compare(base, ok, 0.15, floors); failed {
		t.Fatal("above-floor metric must pass")
	}
	low := map[string]Result{"BenchmarkSweepParallel": {NsPerOp: 100,
		Metrics: map[string]float64{"speedup": 2.4}}}
	comps, failed := compare(base, low, 0.15, floors)
	if !failed {
		t.Fatal("below-floor metric must fail")
	}
	var found bool
	for _, c := range comps {
		if c.Status == "metric-floor" && c.Metric == "speedup" && c.MetricValue == 2.4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no metric-floor verdict: %+v", comps)
	}
	// The metric missing entirely fails too.
	none := map[string]Result{"BenchmarkSweepParallel": {NsPerOp: 100}}
	if _, failed := compare(base, none, 0.15, floors); !failed {
		t.Fatal("absent metric must fail")
	}
	// A floored benchmark absent from the whole run fails even when the
	// baseline does not know it.
	if _, failed := compare(nil, map[string]Result{"BenchmarkOther": {NsPerOp: 1}}, 0.15, floors); !failed {
		t.Fatal("floored benchmark missing from the run must fail")
	}
	// Floors apply to benchmarks not yet in the baseline ("new").
	comps, failed = compare(nil, low, 0.15, floors)
	if !failed {
		t.Fatalf("below-floor new benchmark must fail: %+v", comps)
	}
	if _, err := parseFloors("garbage"); err == nil {
		t.Fatal("bad floor spec must error")
	}
}

// TestFloorCheckedOnRegressedBenchmark: a floored benchmark that also fails
// the ns gate still has its floor evaluated and is reported exactly once —
// not re-reported as "missing".
func TestFloorCheckedOnRegressedBenchmark(t *testing.T) {
	floors, _ := parseFloors("BenchmarkSweepParallel:speedup=3")
	base := map[string]Result{"BenchmarkSweepParallel": {NsPerOp: 100}}
	current := map[string]Result{"BenchmarkSweepParallel": {NsPerOp: 200, // 2x regression
		Metrics: map[string]float64{"speedup": 2.0}}} // and below floor
	comps, failed := compare(base, current, 0.15, floors)
	if !failed {
		t.Fatal("must fail")
	}
	if len(comps) != 1 {
		t.Fatalf("got %d rows, want 1: %+v", len(comps), comps)
	}
	c := comps[0]
	if c.Status != "ns-regression" {
		t.Fatalf("status = %q, want ns-regression kept", c.Status)
	}
	if c.Metric != "speedup" || c.MetricValue != 2.0 || c.MetricFloor != 3 {
		t.Fatalf("floor not recorded: %+v", c)
	}
}

func TestParseBenchNoMBLine(t *testing.T) {
	// Lines with MB/s (throughput benchmarks) and without -benchmem fields
	// both parse; MB/s lands in the custom metrics.
	const doc = `BenchmarkScanBytes-8   100   5570000 ns/op   201.2 MB/s
BenchmarkPlain   200   42.5 ns/op
`
	runs, err := parseBench(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d, want 2: %v", len(runs), runs)
	}
	if runs["BenchmarkScanBytes-8"][0].NsPerOp != 5570000 {
		t.Fatalf("scan = %+v", runs["BenchmarkScanBytes-8"])
	}
	if runs["BenchmarkScanBytes-8"][0].Metrics["MB/s"] != 201.2 {
		t.Fatalf("scan metrics = %+v", runs["BenchmarkScanBytes-8"][0].Metrics)
	}
	if runs["BenchmarkPlain"][0].NsPerOp != 42.5 {
		t.Fatalf("plain = %+v", runs["BenchmarkPlain"])
	}
}

func TestParseFloorsRejectsMalformedSpecs(t *testing.T) {
	// Every malformed shape must be a hard usage error: a silently dropped
	// or misparsed floor would let a perf regression through CI unchecked.
	cases := []struct {
		spec string
		ok   bool
	}{
		{"", true},
		{"BenchmarkX:speedup=3", true},
		{"BenchmarkX:speedup=3,BenchmarkY:ratio=2.5", true},
		{" BenchmarkX:speedup=3 ", true},
		{"garbage", false},                 // no colon
		{":speedup=3", false},              // empty benchmark name
		{"BenchmarkX:=3", false},           // empty metric name
		{"BenchmarkX:speedup", false},      // no minimum
		{"BenchmarkX:speedup=1=2", false},  // doubled '='
		{"BenchmarkX:speedup=fast", false}, // non-numeric minimum
	}
	for _, tc := range cases {
		floors, err := parseFloors(tc.spec)
		if tc.ok && err != nil {
			t.Errorf("parseFloors(%q) = %v, want success", tc.spec, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseFloors(%q) accepted as %+v, want error", tc.spec, floors)
		}
	}
}
