// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 6).
//
// Usage:
//
//	experiments -scale quick -run all
//	experiments -scale paper -run table2     # the full Table 2 campaign
//
// The quick scale exercises the same code paths on smaller instances;
// the paper scale runs classes B and C over 8..64 processes with Table 2 on
// 64 processes, as in the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tireplay/internal/cli"
	"tireplay/internal/experiments"
	"tireplay/internal/npb"
)

func main() {
	var (
		scale   = flag.String("scale", "quick", "experiment scale: quick or paper")
		run     = flag.String("run", "all", "comma list of: fig7, table2, table3, fig8, fig9, large, invariance, online, perphase, all")
		verbose = flag.Bool("v", false, "print progress while running")
		classes = flag.String("classes", "", "override the class list, e.g. B,C")
		procs   = flag.String("procs", "", "override the process counts, e.g. 8,16,32,64")
	)
	flag.Parse()

	var cfg *experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.Quick()
	case "paper":
		cfg = &experiments.Config{}
	default:
		fail(cli.Usagef("unknown scale %q", *scale))
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if *classes != "" {
		cfg.Classes = nil
		for _, name := range strings.Split(*classes, ",") {
			c, err := npb.ClassByName(strings.TrimSpace(name))
			if err != nil {
				fail(cli.Usage(err))
			}
			cfg.Classes = append(cfg.Classes, c)
		}
	}
	if *procs != "" {
		cfg.Procs = nil
		for _, s := range strings.Split(*procs, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
				fail(cli.Usagef("bad process count %q", s))
			}
			cfg.Procs = append(cfg.Procs, n)
		}
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]
	out := os.Stdout

	if all || want["fig7"] || want["table3"] || want["fig8"] || want["fig9"] {
		res, err := experiments.Suite(cfg)
		if err != nil {
			fail(err)
		}
		if all || want["fig7"] {
			experiments.RenderFig7(out, res.Fig7)
			fmt.Fprintln(out)
		}
		if all || want["table3"] {
			experiments.RenderTable3(out, res.Table3)
			fmt.Fprintln(out)
		}
		if all || want["fig8"] {
			experiments.RenderFig8(out, res.Fig8)
			fmt.Fprintln(out)
		}
		if all || want["fig9"] {
			experiments.RenderFig9(out, res.Fig9)
			fmt.Fprintln(out)
		}
	}
	if all || want["table2"] {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			fail(err)
		}
		experiments.RenderTable2(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["invariance"] {
		res, err := experiments.Invariance(cfg)
		if err != nil {
			fail(err)
		}
		experiments.RenderInvariance(out, res)
		fmt.Fprintln(out)
	}
	if want["perphase"] {
		rows, err := experiments.PerPhaseCalibration(cfg)
		if err != nil {
			fail(err)
		}
		experiments.RenderPerPhase(out, rows)
		fmt.Fprintln(out)
	}
	if want["online"] {
		rows, err := experiments.OnlineVsOffline(cfg)
		if err != nil {
			fail(err)
		}
		experiments.RenderOnline(out, rows)
		fmt.Fprintln(out)
	}
	if all || want["large"] {
		// TAU/TI ratio and folding slowdown taken from the paper-reported
		// regime; the suite's Table 3 measures the former on this machine.
		res, err := experiments.LargeTrace(cfg, 7.8, 1.1)
		if err != nil {
			fail(err)
		}
		experiments.RenderLarge(out, res)
		fmt.Fprintln(out)
	}
}

func fail(err error) {
	cli.Fail("experiments", err)
}
