// Command calibrate instantiates a platform description with pertinent
// values, following the procedure of Section 5: the flop rate comes from a
// small instrumented run of the target application (weighted average over
// the CPU bursts, averaged over several runs), the link latency from the
// 1-byte ping-pong divided by six, and the MPI model factors from a
// piece-wise linear best fit of the ping-pong curve.
//
// Usage:
//
//	calibrate -class S -procs 8 -nodes 64 -runs 5 -out platform.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"tireplay/internal/calibrate"
	"tireplay/internal/cli"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/tau"
	"tireplay/internal/units"
)

func main() {
	var (
		class = flag.String("class", "S", "NPB class of the calibration instance")
		procs = flag.Int("procs", 8, "processes of the calibration instance")
		nodes = flag.Int("nodes", 64, "nodes of the emitted platform description")
		runs  = flag.Int("runs", 5, "calibration repetitions (the paper uses five)")
		bw    = flag.Float64("bw", platform.GigaEthernetBw, "nominal link bandwidth (B/s)")
		out   = flag.String("out", "", "write the instantiated platform XML here (default stdout)")
	)
	flag.Parse()

	cls, err := npb.ClassByName(*class)
	if err != nil {
		fail(cli.Usage(err))
	}
	prog, err := npb.LU(npb.LUConfig{Class: cls, Procs: *procs})
	if err != nil {
		fail(err)
	}

	// Flop-rate calibration over several instrumented runs.
	var rates []float64
	for run := 0; run < *runs; run++ {
		dir, err := os.MkdirTemp("", "calibrate-")
		if err != nil {
			fail(err)
		}
		_, files, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: *procs}, 0, prog)
		if err != nil {
			os.RemoveAll(dir)
			fail(err)
		}
		_, avg, err := calibrate.MeasureFlopRate(files)
		os.RemoveAll(dir)
		if err != nil {
			fail(err)
		}
		rates = append(rates, avg)
	}
	rate, err := calibrate.AverageOverRuns(rates)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "calibrated flop rate over %d run(s): %s\n",
		*runs, units.FormatRate(rate, "flop/s"))

	// Network calibration: ping-pong, latency rule, piece-wise fit.
	model, latency, err := calibrate.FitNetwork(mpi.LiveConfig{Bandwidth: *bw}, *bw)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "fitted link latency: %s\n", units.FormatSeconds(latency))
	for i, seg := range model.Segments() {
		fmt.Fprintf(os.Stderr, "segment %d (< %s): latency x%.2f, bandwidth x%.2f\n",
			i+1, units.FormatBytes(seg.MaxBytes), seg.LatFactor, seg.BwFactor)
	}

	p := platform.BordereauCustom(*nodes, 1, rate)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := p.Marshal(w); err != nil {
		fail(err)
	}
}

func fail(err error) {
	cli.Fail("calibrate", err)
}
