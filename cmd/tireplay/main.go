// Command tireplay replays time-independent traces on a simulated platform
// and reports the predicted execution time — the trace replay tool of
// Section 5 (Figure 4: platform + deployment + traces in, simulated time
// out).
//
// Usage:
//
//	tireplay -platform cluster.xml -deployment depl.xml
//	tireplay -procs 8 -dir ti/            # built-in bordereau platform
//	tireplay -procs 8 -dir ti/ -topo torus:4x4   # generated topology
//	tireplay -procs 8 -dir ti/ -fault host:1@5   # fail-stop fault, abort policy
//	tireplay -procs 8 -dir ti/ -fault mtbf:3600,seed:7 -ckpt 60/5/10/30
//
// The deployment file names each process's trace file in its <argument>
// element, as in the paper; with -dir, SG_process<rank>.trace files are
// taken from the directory instead (falling back to the .trace.gz and .tib
// encodings). Binary .tib traces are memory-mapped and decoded in place, so
// startup on large traces is bounded by I/O alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tireplay/internal/cli"
	"tireplay/internal/coll"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
	"tireplay/internal/units"
)

func main() {
	var (
		platformPath = flag.String("platform", "", "SimGrid platform XML file")
		deployPath   = flag.String("deployment", "", "deployment XML file (trace files as process arguments)")
		dir          = flag.String("dir", "", "directory of SG_process<rank>.trace files (with -procs)")
		procs        = flag.Int("procs", 0, "number of processes when using -dir")
		power        = flag.Float64("power", platform.BordereauPower, "per-core flop/s of the built-in platform")
		identity     = flag.Bool("no-mpi-model", false, "disable the piece-wise linear MPI model")
		timed        = flag.String("timed", "", "write a timed trace of the simulated execution to this file")
		profile      = flag.Bool("profile", false, "print a per-process profile of the simulated execution")
		collSpec     = flag.String("coll", "", "collective algorithms: an algorithm for all collectives (linear, binomial, auto, ...) or per-collective choices (\"bcast=binomial,allReduce=ring\")")
		topoSpec     = flag.String("topo", "", "replay on a generated topology instead of the built-in cluster (fat-tree:4 | torus:4x4x2 | dragonfly:2x4x2), with -dir/-procs")
		routingMode  = flag.String("routing", "computed", "route resolution: computed (zone-composed, O(n) build) or table (eager per-pair reference)")
		faultSpec    = flag.String("fault", "", "availability profile injected into the replay (\"host:1@5,hosts:25%@60,bw:0.5@10-20,mtbf:3600,seed:7\")")
		ckptSpec     = flag.String("ckpt", "", "checkpoint/restart protocol riding through fail-stop faults: \"interval[/cost[/restart[/down]]]\" in seconds")
	)
	flag.Parse()

	routing, err := platform.ParseRouting(*routingMode)
	if err != nil {
		fail(cli.Usage(err))
	}
	var (
		b *platform.Build
		d *platform.Deployment
	)
	switch {
	case *platformPath != "" && *deployPath != "":
		p, err := platform.ParseFile(*platformPath)
		if err != nil {
			fail(err)
		}
		b, err = platform.InstantiateRouting(p, routing)
		if err != nil {
			fail(err)
		}
		d, err = platform.ParseDeploymentFile(*deployPath)
		if err != nil {
			fail(err)
		}
	case *dir != "" && *procs > 0:
		if *topoSpec != "" {
			if routing != platform.RoutingComputed {
				fail(cli.Usagef("-routing %s is not available for generated topologies (they route computed only)", routing))
			}
			spec, err := platform.ParseTopo(*topoSpec)
			if err != nil {
				fail(cli.Usage(err))
			}
			spec.Power = *power
			b, err = spec.Build()
			if err != nil {
				fail(err)
			}
		} else {
			b, err = platform.InstantiateRouting(platform.BordereauCustom(*procs, 1, *power), routing)
			if err != nil {
				fail(err)
			}
		}
		d, err = platform.RoundRobin(b.HostNames, *procs, 1)
		if err != nil {
			fail(err)
		}
		files := make([]string, *procs)
		for r := range files {
			files[r] = resolveTraceFile(*dir, r)
		}
		d, err = d.WithTraceArgs(files)
		if err != nil {
			fail(err)
		}
	default:
		fail(cli.Usagef("need either -platform and -deployment, or -dir and -procs"))
	}

	cfg := replay.Config{Model: smpi.Default()}
	if *identity {
		cfg.Model = smpi.Identity()
	}
	if cfg.Collectives, err = coll.ParseSpec(*collSpec); err != nil {
		fail(cli.Usage(err))
	}
	if cfg.Faults, err = platform.ParseFaultSpec(*faultSpec); err != nil {
		fail(cli.Usage(err))
	}
	if cfg.Ckpt, err = replay.ParseCkpt(*ckptSpec); err != nil {
		fail(cli.Usage(err))
	}
	var tracers replay.Tee
	var prof *replay.Profile
	if *profile {
		prof = replay.NewProfile()
		tracers = append(tracers, prof)
	}
	var tw *replay.TimedTraceWriter
	var timedFile *os.File
	if *timed != "" {
		timedFile, err = os.Create(*timed)
		if err != nil {
			fail(err)
		}
		tw = replay.NewTimedTraceWriter(timedFile)
		tracers = append(tracers, tw)
	}
	if len(tracers) > 0 {
		cfg.TimedTracer = tracers
	}

	res, err := replay.RunFiles(b, d, cfg)
	if err != nil {
		fail(err)
	}
	// A timed trace that lost even one record is worse than none: the
	// writer's sticky error turns a short write anywhere in the run into a
	// failed replay rather than a silently truncated trace.
	if tw != nil {
		if err := tw.Flush(); err != nil {
			fail(fmt.Errorf("writing timed trace %s: %w", *timed, err))
		}
		if err := timedFile.Close(); err != nil {
			fail(fmt.Errorf("writing timed trace %s: %w", *timed, err))
		}
	}
	fmt.Printf("simulated execution time: %s\n", units.FormatSeconds(res.SimulatedTime))
	fmt.Printf("replayed %d actions in %v\n", res.Actions, res.WallTime)
	if r := res.Resilience; r != nil {
		fmt.Printf("fault-free time: %s; %d checkpoint(s) costing %s\n",
			units.FormatSeconds(r.FaultFree), r.Checkpoints, units.FormatSeconds(r.CkptTime))
		fmt.Printf("failures: %d; wasted %s (of which recomputed %s); downtime %s\n",
			r.Failures, units.FormatSeconds(r.Wasted), units.FormatSeconds(r.Recomputed),
			units.FormatSeconds(r.Downtime))
	}
	if prof != nil {
		fmt.Println()
		for _, warn := range prof.Render(os.Stdout, res.SimulatedTime) {
			fmt.Fprintf(os.Stderr, "tireplay: warning: %s\n", warn)
		}
	}
}

// resolveTraceFile locates rank r's trace under dir, accepting the three
// encodings tau2ti emits: text, gzip and binary.
func resolveTraceFile(dir string, r int) string {
	plain := filepath.Join(dir, trace.ProcessFileName(r))
	for _, name := range []string{trace.ProcessFileName(r), trace.GzipFileName(r), trace.BinaryFileName(r)} {
		if p := filepath.Join(dir, name); fileExists(p) {
			return p
		}
	}
	return plain // let the replay report the missing plain name
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

func fail(err error) {
	cli.Fail("tireplay", err)
}
