// Command tau2ti extracts time-independent traces from TAU binary traces:
// the counterpart of the paper's tau2simgrid tool (Section 4.3). It reads
// the tautrace.<rank>.0.0.trc and events.<rank>.edf files of an acquisition
// directory and writes one SG_process<rank>.trace file per process.
//
// Usage:
//
//	tau2ti -dir traces/ -procs 8 -out ti/ [-format text|binary|gzip]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tireplay/internal/cli"
	"tireplay/internal/convert"
	"tireplay/internal/trace"
	"tireplay/internal/units"
)

func main() {
	var (
		dir    = flag.String("dir", ".", "directory containing the TAU trace and event files")
		procs  = flag.Int("procs", 0, "number of MPI processes (required)")
		out    = flag.String("out", ".", "output directory for the time-independent traces")
		format = flag.String("format", "text", "output encoding: text, binary or gzip")
		verify = flag.Bool("verify", true, "check the cross-process consistency of the extracted traces")
	)
	flag.Parse()
	if *procs <= 0 {
		fail(cli.Usagef("-procs is required"))
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	perRank, err := convert.ExtractDir(*dir, *procs)
	if err != nil {
		fail(err)
	}
	if *verify {
		if errs := trace.Verify(perRank); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "tau2ti: verify:", e)
			}
			fail(fmt.Errorf("extracted traces are inconsistent (%d problem(s))", len(errs)))
		}
	}
	var totalActions, totalBytes int64
	for rank, actions := range perRank {
		name := trace.ProcessFileName(rank)
		switch *format {
		case "gzip":
			name = trace.GzipFileName(rank)
		case "binary":
			name = trace.BinaryFileName(rank)
		case "text":
		default:
			fail(cli.Usagef("unknown format %q", *format))
		}
		path := filepath.Join(*out, name)
		if *format == "binary" {
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := trace.EncodeBinary(f, actions); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		} else if err := trace.WriteFile(path, actions); err != nil {
			fail(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			fail(err)
		}
		totalActions += int64(len(actions))
		totalBytes += st.Size()
	}
	fmt.Printf("extracted %d actions over %d processes (%s)\n",
		totalActions, *procs, units.FormatBytes(float64(totalBytes)))
	fmt.Printf("written to: %s\n", *out)
}

func fail(err error) {
	cli.Fail("tau2ti", err)
}
