package tireplay_bench

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"tireplay/internal/acquisition"
	"tireplay/internal/calibrate"
	"tireplay/internal/convert"
	"tireplay/internal/gather"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/tau"
	"tireplay/internal/trace"
)

// TestFullPipelineEndToEnd drives the complete framework the way the
// command-line tools chain it: instrument + execute -> extract -> split to
// per-process files -> gather -> replay from the deployment's trace-file
// arguments -> predicted time, for an LU instance.
func TestFullPipelineEndToEnd(t *testing.T) {
	const procs = 8
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassS, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}

	// Acquisition (live engine).
	tauDir := t.TempDir()
	_, files, err := tau.AcquireLive(tauDir, mpi.LiveConfig{Procs: procs}, 1e-6, prog)
	if err != nil {
		t.Fatal(err)
	}
	if files.TraceBytes <= 0 {
		t.Fatal("no TAU bytes written")
	}

	// Extraction.
	perRank, err := convert.ExtractDir(tauDir, procs)
	if err != nil {
		t.Fatal(err)
	}

	// Per-process trace files.
	tiDir := t.TempDir()
	paths, err := trace.WriteSplit(tiDir, procs, convert.Flatten(perRank))
	if err != nil {
		t.Fatal(err)
	}

	// Gathering: merge and check the merged trace parses to the same count.
	merged := filepath.Join(tiDir, "merged.trace")
	if _, err := gather.Concat(paths, merged); err != nil {
		t.Fatal(err)
	}
	mergedActions, err := trace.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, acts := range perRank {
		want += len(acts)
	}
	if len(mergedActions) != want {
		t.Fatalf("merged trace has %d actions, want %d", len(mergedActions), want)
	}

	// Replay from the deployment's per-process trace files.
	b, err := platform.BuildBordereauWithCores(procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err = d.WithTraceArgs(paths)
	if err != nil {
		t.Fatal(err)
	}
	res, err := replay.RunFiles(b, d, replay.Config{Model: smpi.Default()})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 || int(res.Actions) != want {
		t.Fatalf("replay: time=%g actions=%d want=%d", res.SimulatedTime, res.Actions, want)
	}
}

// TestCalibratedReplayTracksLiveExecution closes the predictive loop at
// constant flop rate: replaying a trace on a platform calibrated from the
// acquisition must land near the live engine's own makespan.
func TestCalibratedReplayTracksLiveExecution(t *testing.T) {
	const procs = 4
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassW, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	liveCfg := mpi.LiveConfig{
		Procs:     procs,
		FlopRate:  platform.BordereauPower,
		Latency:   3 * platform.ClusterLatency,
		Bandwidth: platform.GigaEthernetBw,
	}
	dir := t.TempDir()
	liveTime, files, err := tau.AcquireLive(dir, liveCfg, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	_, rate, err := calibrate.MeasureFlopRate(files)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-platform.BordereauPower)/platform.BordereauPower > 0.01 {
		t.Fatalf("calibrated rate %g differs from configured %g", rate, platform.BordereauPower)
	}
	perRank, err := convert.ExtractDir(dir, procs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := platform.BuildBordereauCustom(procs, 1, rate)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := replay.RunActions(b, d, replay.Config{Model: smpi.Identity()}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	// Engines differ (LogP-style clocks vs flow-level contention), so allow
	// a generous envelope — the paper itself reports errors up to ~50%.
	ratio := res.SimulatedTime / liveTime
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("replayed %.3fs vs live %.3fs (ratio %.2f)", res.SimulatedTime, liveTime, ratio)
	}
}

// TestAcquisitionCampaignToReplay exercises the simulation-engine
// acquisition path end to end under a folded mode.
func TestAcquisitionCampaignToReplay(t *testing.T) {
	const procs = 8
	// Class W is compute-bound, so the folded acquisition is slower than
	// the regular-mode execution the replay predicts (class S would be
	// latency-bound and folding would speed it up via loopback traffic).
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassW, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	camp := &acquisition.Campaign{Procs: procs, Program: prog, OverheadPerEvent: 1e-6}
	dir := t.TempDir()
	rep, err := camp.Run(dir, acquisition.Folding(4), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.TIFiles); got != procs {
		t.Fatalf("TI files = %d", got)
	}
	perRank := make([][]trace.Action, procs)
	for r, p := range rep.TIFiles {
		if perRank[r], err = trace.ReadFile(p); err != nil {
			t.Fatal(err)
		}
	}
	b, err := platform.BuildBordereauWithCores(procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := replay.RunActions(b, d, replay.Config{}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("non-positive simulated time")
	}
	// The folded acquisition ran 4x slower than regular, yet the replay
	// predicts the regular-mode time: it must be well under the folded
	// instrumented execution time.
	if res.SimulatedTime >= rep.InstrumentedTime {
		t.Fatalf("replayed time %.2fs not below folded execution %.2fs",
			res.SimulatedTime, rep.InstrumentedTime)
	}
}

// TestBinaryTraceInterchange verifies the binary codec round-trips through
// the file layer inside a realistic pipeline.
func TestBinaryTraceInterchange(t *testing.T) {
	const procs = 4
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassS, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var textTotal, binTotal int64
	for r := 0; r < procs; r++ {
		acts, err := mpi.Record(r, procs, prog)
		if err != nil {
			t.Fatal(err)
		}
		binPath := filepath.Join(dir, "r.tib")
		f, err := os.Create(binPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.EncodeBinary(f, acts); err != nil {
			t.Fatal(err)
		}
		f.Close()
		back, err := trace.ReadFile(binPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(acts) {
			t.Fatalf("rank %d: binary round trip %d != %d", r, len(back), len(acts))
		}
		st, _ := os.Stat(binPath)
		binTotal += st.Size()
		for _, a := range acts {
			textTotal += int64(len(a.Format())) + 1
		}
	}
	if binTotal >= textTotal {
		t.Fatalf("binary (%d B) not smaller than text (%d B)", binTotal, textTotal)
	}
}
