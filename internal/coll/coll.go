// Package coll is the collective-schedule subsystem of the replay tool: it
// decomposes each traced collective operation into a deterministic schedule
// of point-to-point send/recv/compute steps, the decomposition the paper
// performs with a fixed star through rank 0 (Section 5). Real MPI
// implementations — SMPI among them, which the paper validates against —
// select an algorithm per collective and message size, and the collective
// topology dominates makespan accuracy at scale; this package makes the
// algorithm a replay parameter, so the same time-independent trace can be
// replayed under different collective algorithms as one more what-if axis.
//
// An Algorithm is a pure function of (rank, world size, volume): it appends
// the steps the rank executes to a caller-owned buffer (AppendSchedule) and
// declares how many mailbox rounds the collective spans (Rounds). Schedules
// are deterministic and identical in shape on every rank, which is what lets
// the replay's interned round-mailbox fast path derive every rendezvous
// mailbox from a shared round counter without formatting a name.
package coll

import (
	"fmt"
	"math/bits"
	"strings"
)

// Kind enumerates the collective operations with selectable algorithms.
type Kind uint8

const (
	KindBcast Kind = iota
	KindReduce
	KindAllReduce
	KindBarrier
	KindGather
	KindAllGather
	KindAllToAll
	KindScatter

	// NumKinds sizes dense per-kind tables (like Config).
	NumKinds = iota
)

// kindNames follows the trace keyword capitalisation.
var kindNames = [NumKinds]string{
	KindBcast:     "bcast",
	KindReduce:    "reduce",
	KindAllReduce: "allReduce",
	KindBarrier:   "barrier",
	KindGather:    "gather",
	KindAllGather: "allGather",
	KindAllToAll:  "allToAll",
	KindScatter:   "scatter",
}

// String returns the collective's trace keyword.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromName resolves a collective keyword (case-insensitively).
func KindFromName(s string) (Kind, bool) {
	for k, n := range kindNames {
		if strings.EqualFold(s, n) {
			return Kind(k), true
		}
	}
	return 0, false
}

// Algorithm identifies one collective algorithm.
type Algorithm uint8

const (
	// Default resolves to Linear for every collective: the paper's
	// decomposition, a star through rank 0. The zero value, so a zero
	// replay configuration reproduces the historical behaviour exactly.
	Default Algorithm = iota
	// Linear is the flat star through rank 0 (pairwise shifts for the
	// collectives a star cannot express, allToAll).
	Linear
	// Binomial is a binomial tree rooted at rank 0 (bcast, reduce, gather,
	// scatter and the reduce+bcast composition of allReduce).
	Binomial
	// RecursiveDoubling is the log2(n)-phase pairwise-exchange allReduce,
	// with the MPICH fold/unfold extension for non-power-of-two worlds.
	RecursiveDoubling
	// Ring is the bandwidth-optimal ring: 2(n-1) chunk shifts for
	// allReduce, n-1 block shifts for allGather.
	Ring
	// Tree is the binomial gather+release tree barrier.
	Tree
	// Auto selects per message size, SMPI-style: the thresholds derive
	// from the piece-wise linear MPI model's segment boundaries.
	Auto

	numAlgorithms = iota
)

var algNames = [numAlgorithms]string{
	Default:           "default",
	Linear:            "linear",
	Binomial:          "binomial",
	RecursiveDoubling: "rdb",
	Ring:              "ring",
	Tree:              "tree",
	Auto:              "auto",
}

// String returns the algorithm's flag spelling.
func (a Algorithm) String() string {
	if int(a) < len(algNames) {
		return algNames[a]
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// AlgorithmFromName resolves an algorithm name (case-insensitively);
// "recursive-doubling" is accepted as a spelled-out alias of "rdb".
func AlgorithmFromName(s string) (Algorithm, bool) {
	if strings.EqualFold(s, "recursive-doubling") {
		return RecursiveDoubling, true
	}
	for a, n := range algNames {
		if strings.EqualFold(s, n) {
			return Algorithm(a), true
		}
	}
	return 0, false
}

// supported[kind] lists the concrete algorithms implementing the kind.
// Default and Auto are valid selections for every kind (they resolve to a
// member of this list).
var supported = [NumKinds][]Algorithm{
	KindBcast:     {Linear, Binomial},
	KindReduce:    {Linear, Binomial},
	KindAllReduce: {Linear, Binomial, RecursiveDoubling, Ring},
	KindBarrier:   {Linear, Tree},
	KindGather:    {Linear, Binomial},
	KindAllGather: {Linear, Ring},
	KindAllToAll:  {Linear},
	KindScatter:   {Linear, Binomial},
}

// Supports reports whether alg is a valid selection for kind. Default and
// Auto are always valid; concrete algorithms must implement the kind.
func Supports(kind Kind, alg Algorithm) bool {
	if int(kind) >= NumKinds {
		return false
	}
	if alg == Default || alg == Auto {
		return true
	}
	for _, a := range supported[kind] {
		if a == alg {
			return true
		}
	}
	return false
}

// Supported returns the concrete algorithms implementing kind, in
// preference order (the first is the kind's Linear-compatible default).
func Supported(kind Kind) []Algorithm {
	return append([]Algorithm(nil), supported[kind]...)
}

// Op is the kind of one schedule step.
type Op uint8

const (
	// OpSend is a blocking synchronous send of Volume bytes to rank To.
	OpSend Op = iota
	// OpRecv is a blocking receive from rank From.
	OpRecv
	// OpShift is a simultaneous exchange (MPI_Sendrecv): send Volume bytes
	// to To while receiving from From, completing when both have. The
	// executor must post the send asynchronously to avoid deadlocking the
	// pairwise-exchange phases.
	OpShift
	// OpCompute executes Volume flops locally.
	OpCompute
)

// Step is one entry of a rank's schedule for one collective.
type Step struct {
	Op Op
	// To is the destination rank of OpSend/OpShift.
	To int
	// From is the source rank of OpRecv/OpShift.
	From int
	// Round is the mailbox round the step's message belongs to, in
	// [0, Rounds(kind, alg, n)). Every rank numbers rounds identically, so
	// a (round, src, dst) triple names one rendezvous globally.
	Round int
	// Volume is the payload in bytes (OpSend/OpShift) or flops (OpCompute).
	Volume float64
}

// log2Floor returns floor(log2(n)) for n >= 1.
func log2Floor(n int) int {
	return bits.Len(uint(n)) - 1
}

// ceilLog2 returns the number of binomial phases for an n-rank world: the
// smallest k with 2^k >= n.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
