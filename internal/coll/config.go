package coll

import (
	"fmt"
	"strings"
)

// Config selects one algorithm per collective. The zero value selects
// Default everywhere — the paper's linear star — so a zero replay
// configuration reproduces the historical behaviour exactly.
//
// Config is a small value type: copy it freely, compare it with ==. It
// marshals to and from the textual spec syntax of the -coll flags (see
// ParseSpec), so sweep scenarios carry it through JSON reports.
type Config struct {
	algs [NumKinds]Algorithm
}

// For returns the algorithm selected for kind (Default if unset).
func (c Config) For(kind Kind) Algorithm {
	if int(kind) >= NumKinds {
		return Default
	}
	return c.algs[kind]
}

// Set selects alg for kind, rejecting combinations no schedule implements.
func (c *Config) Set(kind Kind, alg Algorithm) error {
	if int(kind) >= NumKinds {
		return fmt.Errorf("coll: unknown collective %d", kind)
	}
	if !Supports(kind, alg) {
		return fmt.Errorf("coll: %s does not support the %s algorithm (supported: %s)",
			kind, alg, algList(supported[kind]))
	}
	c.algs[kind] = alg
	return nil
}

// IsDefault reports whether every collective uses its default algorithm.
func (c Config) IsDefault() bool {
	return c == Config{}
}

func algList(algs []Algorithm) string {
	names := make([]string, len(algs))
	for i, a := range algs {
		names[i] = a.String()
	}
	return strings.Join(names, ", ")
}

// ParseSpec parses the -coll flag syntax into a Config:
//
//	""                              every collective keeps its default
//	"binomial"                      one algorithm for every collective that
//	                                supports it (the rest keep their default)
//	"bcast=binomial,allReduce=ring" explicit per-collective choices,
//	                                comma-separated; unsupported pairs fail
//
// Names are case-insensitive; "auto" selects the size-based SMPI-style
// choice, "default" and "linear" the paper's star.
func ParseSpec(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if k, a, ok := strings.Cut(item, "="); ok {
			kind, known := KindFromName(strings.TrimSpace(k))
			if !known {
				return Config{}, fmt.Errorf("coll: unknown collective %q in %q", k, spec)
			}
			alg, known := AlgorithmFromName(strings.TrimSpace(a))
			if !known {
				return Config{}, fmt.Errorf("coll: unknown algorithm %q in %q", a, spec)
			}
			if err := c.Set(kind, alg); err != nil {
				return Config{}, err
			}
			continue
		}
		alg, known := AlgorithmFromName(item)
		if !known {
			return Config{}, fmt.Errorf("coll: unknown algorithm %q in %q", item, spec)
		}
		for kind := Kind(0); kind < NumKinds; kind++ {
			if Supports(kind, alg) {
				c.algs[kind] = alg
			}
		}
	}
	return c, nil
}

// MustParseSpec is ParseSpec that panics on error, for tests and static
// grids.
func MustParseSpec(spec string) Config {
	c, err := ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the canonical spec: "default" for the zero Config, the
// bare algorithm name when one non-default algorithm covers every
// collective that supports it, the explicit kind=alg list otherwise.
// ParseSpec(c.String()) reproduces c.
func (c Config) String() string {
	if c.IsDefault() {
		return "default"
	}
	for alg := Algorithm(1); alg < numAlgorithms; alg++ {
		var bare Config
		for kind := Kind(0); kind < NumKinds; kind++ {
			if Supports(kind, alg) {
				bare.algs[kind] = alg
			}
		}
		if c == bare {
			return alg.String()
		}
	}
	var parts []string
	for kind := Kind(0); kind < NumKinds; kind++ {
		if c.algs[kind] != Default {
			parts = append(parts, kind.String()+"="+c.algs[kind].String())
		}
	}
	return strings.Join(parts, ",")
}

// MarshalText implements encoding.TextMarshaler with the spec syntax.
func (c Config) MarshalText() ([]byte, error) {
	return []byte(c.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; "default" restores the
// zero Config.
func (c *Config) UnmarshalText(text []byte) error {
	s := string(text)
	if s == "default" {
		*c = Config{}
		return nil
	}
	parsed, err := ParseSpec(s)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}
