package coll

import (
	"encoding/json"
	"math"
	"testing"

	"tireplay/internal/smpi"
)

func TestNamesRoundTrip(t *testing.T) {
	for kind := Kind(0); kind < NumKinds; kind++ {
		k, ok := KindFromName(kind.String())
		if !ok || k != kind {
			t.Fatalf("kind %v does not round-trip (%v, %v)", kind, k, ok)
		}
	}
	if k, ok := KindFromName("ALLREDUCE"); !ok || k != KindAllReduce {
		t.Fatalf("case-insensitive kind lookup: %v, %v", k, ok)
	}
	for alg := Algorithm(0); alg < numAlgorithms; alg++ {
		a, ok := AlgorithmFromName(alg.String())
		if !ok || a != alg {
			t.Fatalf("algorithm %v does not round-trip (%v, %v)", alg, a, ok)
		}
	}
	if a, ok := AlgorithmFromName("recursive-doubling"); !ok || a != RecursiveDoubling {
		t.Fatalf("rdb alias: %v, %v", a, ok)
	}
	if _, ok := AlgorithmFromName("nope"); ok {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSupportsMatrix(t *testing.T) {
	for kind := Kind(0); kind < NumKinds; kind++ {
		if !Supports(kind, Default) || !Supports(kind, Auto) || !Supports(kind, Linear) {
			t.Fatalf("%v must support default, auto and linear", kind)
		}
	}
	if Supports(KindBcast, Ring) {
		t.Fatal("bcast does not implement ring")
	}
	if !Supports(KindAllReduce, RecursiveDoubling) || !Supports(KindAllReduce, Ring) {
		t.Fatal("allReduce must support rdb and ring")
	}
	if !Supports(KindBarrier, Tree) || Supports(KindBarrier, Binomial) {
		t.Fatal("barrier supports tree, not raw binomial")
	}
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("")
	if err != nil || !c.IsDefault() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	c, err = ParseSpec("binomial")
	if err != nil {
		t.Fatal(err)
	}
	if c.For(KindBcast) != Binomial || c.For(KindGather) != Binomial {
		t.Fatalf("bare binomial must cover bcast and gather: %+v", c)
	}
	// Collectives without a binomial schedule keep their default.
	if c.For(KindAllToAll) != Default || c.For(KindBarrier) != Default {
		t.Fatalf("bare binomial must not touch allToAll/barrier: %+v", c)
	}
	c, err = ParseSpec("bcast=binomial, allReduce=ring")
	if err != nil {
		t.Fatal(err)
	}
	if c.For(KindBcast) != Binomial || c.For(KindAllReduce) != Ring || c.For(KindReduce) != Default {
		t.Fatalf("explicit spec: %+v", c)
	}
	if _, err := ParseSpec("bcast=ring"); err == nil {
		t.Fatal("unsupported pair accepted")
	}
	if _, err := ParseSpec("bcast=nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := ParseSpec("nope=linear"); err == nil {
		t.Fatal("unknown collective accepted")
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"", "default", "linear", "binomial", "auto",
		"bcast=binomial", "bcast=binomial,allReduce=ring", "barrier=tree",
	} {
		c := MustParseSpec(spec)
		again, err := ParseSpec(c.String())
		if err != nil {
			t.Fatalf("%q -> %q: %v", spec, c.String(), err)
		}
		if again != c {
			t.Fatalf("%q: String() %q does not round-trip (%+v vs %+v)",
				spec, c.String(), c, again)
		}
	}
	if s := (Config{}).String(); s != "default" {
		t.Fatalf("zero config renders %q", s)
	}
	if s := MustParseSpec("binomial").String(); s != "binomial" {
		t.Fatalf("bare binomial renders %q", s)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := MustParseSpec("bcast=binomial,allReduce=ring")
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("JSON round trip: %v -> %s -> %v", orig, data, back)
	}
}

func TestResolve(t *testing.T) {
	m := smpi.Default()
	if a := Resolve(KindBcast, Default, m, 8, 1e6); a != Linear {
		t.Fatalf("default bcast resolves to %v", a)
	}
	if a := Resolve(KindAllReduce, Binomial, m, 8, 1e6); a != Binomial {
		t.Fatalf("concrete algorithm changed to %v", a)
	}
	// Auto follows the model's segment boundaries (1 KiB and 64 KiB in the
	// default model).
	if a := Resolve(KindAllReduce, Auto, m, 8, 100); a != RecursiveDoubling {
		t.Fatalf("auto allReduce small: %v", a)
	}
	if a := Resolve(KindAllReduce, Auto, m, 8, 8*1024); a != Binomial {
		t.Fatalf("auto allReduce medium: %v", a)
	}
	if a := Resolve(KindAllReduce, Auto, m, 8, 1<<20); a != Ring {
		t.Fatalf("auto allReduce large: %v", a)
	}
	if a := Resolve(KindBcast, Auto, m, 8, 100); a != Binomial {
		t.Fatalf("auto bcast small: %v", a)
	}
	if a := Resolve(KindBcast, Auto, m, 8, 1<<20); a != Linear {
		t.Fatalf("auto bcast large: %v", a)
	}
	if a := Resolve(KindBarrier, Auto, m, 8, 0); a != Tree {
		t.Fatalf("auto barrier: %v", a)
	}
	// Auto with a nil or single-segment model still resolves (built-in
	// thresholds) and never yields an unsupported algorithm.
	for _, model := range []*smpi.Model{nil, smpi.Identity()} {
		for kind := Kind(0); kind < NumKinds; kind++ {
			for _, bytes := range []float64{0, 100, 1e5, 1e9} {
				a := Resolve(kind, Auto, model, 8, bytes)
				if a == Auto || a == Default || !Supports(kind, a) {
					t.Fatalf("auto %v @%g resolved to %v", kind, bytes, a)
				}
			}
		}
	}
	// An unsupported concrete selection degrades to the kind's default
	// rather than generating a schedule no peer expects.
	if a := Resolve(KindBcast, Ring, m, 8, 1e6); a != Linear {
		t.Fatalf("unsupported selection resolved to %v", a)
	}
}

func TestRoundsAgreeWithPowersOfTwo(t *testing.T) {
	if r := Rounds(KindBcast, Binomial, 8); r != 3 {
		t.Fatalf("binomial bcast n=8: %d rounds", r)
	}
	if r := Rounds(KindBcast, Binomial, 9); r != 4 {
		t.Fatalf("binomial bcast n=9: %d rounds", r)
	}
	if r := Rounds(KindAllReduce, RecursiveDoubling, 8); r != 3 {
		t.Fatalf("rdb n=8: %d rounds", r)
	}
	if r := Rounds(KindAllReduce, RecursiveDoubling, 9); r != 5 {
		t.Fatalf("rdb n=9: %d rounds (fold + 3 + unfold)", r)
	}
	if r := Rounds(KindAllReduce, Ring, 5); r != 8 {
		t.Fatalf("ring allReduce n=5: %d rounds", r)
	}
	if r := Rounds(KindAllToAll, Linear, 5); r != 4 {
		t.Fatalf("pairwise allToAll n=5: %d rounds", r)
	}
}

func TestAutoThresholdsFromModel(t *testing.T) {
	m := smpi.MustNew([]smpi.Segment{
		{MaxBytes: 512, LatFactor: 1, BwFactor: 1},
		{MaxBytes: 4096, LatFactor: 1, BwFactor: 1},
		{MaxBytes: math.Inf(1), LatFactor: 1, BwFactor: 1},
	})
	small, eager := autoThresholds(m)
	if small != 512 || eager != 4096 {
		t.Fatalf("thresholds = %g, %g", small, eager)
	}
	if a := Resolve(KindAllReduce, Auto, m, 8, 1024); a != Binomial {
		t.Fatalf("auto with custom model: %v", a)
	}
}
