package coll

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// allSchedules generates every rank's schedule for one collective.
func allSchedules(kind Kind, alg Algorithm, n int, vcomm, vcomp float64) [][]Step {
	out := make([][]Step, n)
	for r := 0; r < n; r++ {
		out[r] = AppendSchedule(nil, kind, alg, r, n, vcomm, vcomp)
	}
	return out
}

// rendezvous identifies one directed message slot.
type rendezvous struct {
	round, src, dst int
}

// simulate executes the schedules under the replay's blocking semantics —
// OpSend and OpRecv block until the peer arrives, OpShift posts its send
// asynchronously then blocks on its receive — and reports whether every
// rank runs to completion.
func simulate(schedules [][]Step) error {
	n := len(schedules)
	pc := make([]int, n)
	shiftPosted := make([]bool, n)
	posted := make(map[rendezvous]int)
	done := 0
	for {
		progress := false
		for r := 0; r < n; r++ {
			if pc[r] >= len(schedules[r]) {
				continue
			}
			s := schedules[r][pc[r]]
			advance := func() {
				pc[r]++
				shiftPosted[r] = false
				progress = true
				if pc[r] == len(schedules[r]) {
					done++
				}
			}
			switch s.Op {
			case OpCompute:
				advance()
			case OpShift:
				if !shiftPosted[r] {
					posted[rendezvous{s.Round, r, s.To}]++
					shiftPosted[r] = true
					progress = true
				}
				if posted[rendezvous{s.Round, s.From, r}] > 0 {
					posted[rendezvous{s.Round, s.From, r}]--
					advance()
				}
			case OpRecv:
				if posted[rendezvous{s.Round, s.From, r}] > 0 {
					posted[rendezvous{s.Round, s.From, r}]--
					advance()
					continue
				}
				// A blocking sender sitting at the matching send completes
				// the rendezvous; both sides move on.
				src := s.From
				if pc[src] < len(schedules[src]) {
					ps := schedules[src][pc[src]]
					if ps.Op == OpSend && ps.To == r && ps.Round == s.Round {
						pc[src]++
						if pc[src] == len(schedules[src]) {
							done++
						}
						advance()
					}
				}
			case OpSend:
				// Passive: the matching receiver's turn advances both.
			}
		}
		if done == n {
			return nil
		}
		if !progress {
			return fmt.Errorf("deadlock: %d/%d ranks finished, pcs %v", done, n, pc)
		}
	}
}

// combos yields every (kind, concrete algorithm) pair.
func combos() [][2]any {
	var out [][2]any
	for kind := Kind(0); kind < NumKinds; kind++ {
		for _, alg := range Supported(kind) {
			out = append(out, [2]any{kind, alg})
		}
	}
	return out
}

// TestSchedulesPairOffAndComplete is the core property over all algorithms
// and world sizes 2..17 (powers of two and everything between): the sends
// and receives of a collective pair off exactly per (round, src, dst) slot,
// no rank deadlocks under blocking execution, rounds stay inside the
// declared span, and the bytes put on the network match the cost model.
func TestSchedulesPairOffAndComplete(t *testing.T) {
	const vcomm = 1000.0
	for _, c := range combos() {
		kind, alg := c[0].(Kind), c[1].(Algorithm)
		for n := 2; n <= 17; n++ {
			name := fmt.Sprintf("%s/%s/n=%d", kind, alg, n)
			schedules := allSchedules(kind, alg, n, vcomm, 0)
			rounds := Rounds(kind, alg, n)

			sends := make(map[rendezvous]int)
			recvs := make(map[rendezvous]int)
			sendVolume := make(map[rendezvous]float64)
			total := 0.0
			maxRound := -1
			for r, steps := range schedules {
				for _, s := range steps {
					if s.Op == OpCompute {
						t.Fatalf("%s: unexpected compute step with vcomp=0", name)
					}
					if s.Round < 0 || s.Round >= rounds {
						t.Fatalf("%s: rank %d step round %d outside [0,%d)", name, r, s.Round, rounds)
					}
					if s.Round > maxRound {
						maxRound = s.Round
					}
					if s.Op == OpSend || s.Op == OpShift {
						if s.To < 0 || s.To >= n || s.To == r {
							t.Fatalf("%s: rank %d sends to %d", name, r, s.To)
						}
						if s.Volume < 0 {
							t.Fatalf("%s: rank %d negative volume %g", name, r, s.Volume)
						}
						sends[rendezvous{s.Round, r, s.To}]++
						sendVolume[rendezvous{s.Round, r, s.To}] = s.Volume
						total += s.Volume
					}
					if s.Op == OpRecv || s.Op == OpShift {
						if s.From < 0 || s.From >= n || s.From == r {
							t.Fatalf("%s: rank %d receives from %d", name, r, s.From)
						}
						recvs[rendezvous{s.Round, s.From, r}]++
					}
				}
			}
			if maxRound != rounds-1 {
				t.Fatalf("%s: highest used round %d, declared %d rounds", name, maxRound, rounds)
			}
			for rv, c := range sends {
				if c > 1 {
					t.Fatalf("%s: %d sends in one round slot %+v", name, c, rv)
				}
				if recvs[rv] != c {
					t.Fatalf("%s: send %+v (%g bytes) has no matching receive",
						name, rv, sendVolume[rv])
				}
			}
			for rv, c := range recvs {
				if sends[rv] != c {
					t.Fatalf("%s: receive %+v has no matching send", name, rv)
				}
			}
			// Chunked algorithms accumulate bytes/n terms; allow float
			// summation error only.
			if want := CostBytes(kind, alg, n, vcomm); math.Abs(total-want) > 1e-9*want {
				t.Fatalf("%s: schedules move %g bytes, cost model says %g", name, total, want)
			}
			if err := simulate(schedules); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// TestSchedulesDeterministic pins that schedule generation is a pure
// function of (kind, alg, rank, n, volumes) — the property the shared round
// counter of the replay relies on.
func TestSchedulesDeterministic(t *testing.T) {
	for _, c := range combos() {
		kind, alg := c[0].(Kind), c[1].(Algorithm)
		for _, n := range []int{2, 5, 16, 17} {
			a := allSchedules(kind, alg, n, 4096, 10)
			b := allSchedules(kind, alg, n, 4096, 10)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%s/n=%d: schedules differ between generations", kind, alg, n)
			}
		}
	}
}

// TestReductionComputeStep: the traced local reduction work lands as one
// trailing compute step on every rank, for every reduce-family algorithm.
func TestReductionComputeStep(t *testing.T) {
	for _, kind := range []Kind{KindReduce, KindAllReduce} {
		for _, alg := range Supported(kind) {
			for _, n := range []int{1, 2, 7} {
				for r := 0; r < n; r++ {
					steps := AppendSchedule(nil, kind, alg, r, n, 1e5, 2e6)
					if len(steps) == 0 {
						t.Fatalf("%s/%s/n=%d rank %d: empty schedule", kind, alg, n, r)
					}
					last := steps[len(steps)-1]
					if last.Op != OpCompute || last.Volume != 2e6 {
						t.Fatalf("%s/%s/n=%d rank %d: last step %+v, want compute 2e6",
							kind, alg, n, r, last)
					}
					for _, s := range steps[:len(steps)-1] {
						if s.Op == OpCompute {
							t.Fatalf("%s/%s/n=%d rank %d: interior compute step", kind, alg, n, r)
						}
					}
				}
			}
		}
	}
}

// TestSingleRankCollectivesAreLocal: a world of one needs no communication.
func TestSingleRankCollectivesAreLocal(t *testing.T) {
	for _, c := range combos() {
		kind, alg := c[0].(Kind), c[1].(Algorithm)
		steps := AppendSchedule(nil, kind, alg, 0, 1, 1e6, 0)
		if len(steps) != 0 {
			t.Fatalf("%s/%s: n=1 schedule has %d steps", kind, alg, len(steps))
		}
		if r := Rounds(kind, alg, 1); r != 0 {
			t.Fatalf("%s/%s: n=1 spans %d rounds", kind, alg, r)
		}
	}
}
