package coll

import "tireplay/internal/smpi"

// barrierToken is the payload of barrier synchronisation messages, the
// 1-byte token of the paper's star barrier.
const barrierToken = 1

// Resolve maps a selection to the concrete algorithm replayed for one
// collective of the given per-rank volume: Default becomes the paper's
// Linear star, Auto picks per message size with thresholds derived from the
// piece-wise linear MPI model's segment boundaries (SMPI's own selection
// mechanism), and an unsupported concrete algorithm degrades to the kind's
// first supported one. The result depends only on (kind, alg, n, bytes), so
// every rank of a world resolves identically.
func Resolve(kind Kind, alg Algorithm, model *smpi.Model, n int, bytes float64) Algorithm {
	switch alg {
	case Default:
		return supported[kind][0]
	case Auto:
		small, eager := autoThresholds(model)
		switch kind {
		case KindBcast, KindReduce, KindGather, KindScatter:
			// Latency-bound sizes win with the log-depth tree; past the
			// eager/rendezvous switch the flat star's single full-size
			// transfer per peer models synchronous-mode behaviour.
			if bytes < eager {
				return Binomial
			}
			return Linear
		case KindAllReduce:
			// SMPI-style: recursive doubling for latency-bound messages,
			// tree for eager-protocol sizes, ring once bandwidth dominates.
			if bytes < small {
				return RecursiveDoubling
			}
			if bytes < eager {
				return Binomial
			}
			return Ring
		case KindBarrier:
			return Tree
		case KindAllGather:
			if bytes < eager {
				return Linear
			}
			return Ring
		default: // KindAllToAll
			return Linear
		}
	}
	if !Supports(kind, alg) {
		return supported[kind][0]
	}
	return alg
}

// autoThresholds derives Auto's (small, eager) size boundaries from the MPI
// model: the first segment boundary is the IP-frame/small-message limit, the
// last finite one the eager/rendezvous protocol switch.
func autoThresholds(model *smpi.Model) (small, eager float64) {
	small, eager = 1024, 64*1024
	if model == nil {
		return small, eager
	}
	segs := model.Segments()
	var finite []float64
	for _, s := range segs {
		if !isInf(s.MaxBytes) {
			finite = append(finite, s.MaxBytes)
		}
	}
	if len(finite) > 0 {
		small = finite[0]
		eager = finite[len(finite)-1]
	}
	return small, eager
}

func isInf(f float64) bool { return f > 1e300 }

// Rounds returns the number of mailbox rounds the schedule of one
// (kind, alg) collective spans in an n-rank world — identical on every rank,
// so the replay can reserve consecutive round numbers from its shared
// collective counter before generating the rank's steps. alg must be
// concrete (post-Resolve).
func Rounds(kind Kind, alg Algorithm, n int) int {
	if n <= 1 {
		return 0
	}
	switch kind {
	case KindBcast, KindReduce, KindGather, KindScatter:
		if alg == Binomial {
			return ceilLog2(n)
		}
		return 1
	case KindAllReduce:
		switch alg {
		case Binomial:
			return 2 * ceilLog2(n)
		case RecursiveDoubling:
			k := log2Floor(n)
			if n == 1<<k {
				return k
			}
			return k + 2
		case Ring:
			return 2 * (n - 1)
		}
		return 2
	case KindBarrier:
		if alg == Tree {
			return 2 * ceilLog2(n)
		}
		return 2
	case KindAllGather:
		if alg == Ring {
			return n - 1
		}
		return 2
	case KindAllToAll:
		return n - 1
	}
	return 0
}

// AppendSchedule appends the steps rank executes for one collective to buf
// and returns the extended buffer. vcomm is the traced per-rank
// communication volume (ignored by Barrier, which moves 1-byte tokens),
// vcomp the traced local reduction work of Reduce/AllReduce (a trailing
// compute step on every rank, matching the paper's handlers). alg must be
// concrete (post-Resolve). Reusing buf across calls keeps the replay's
// steady state allocation-free.
func AppendSchedule(buf []Step, kind Kind, alg Algorithm, rank, n int, vcomm, vcomp float64) []Step {
	if n > 1 {
		switch kind {
		case KindBcast:
			buf = appendBcast(buf, alg, rank, n, vcomm, 0)
		case KindReduce:
			buf = appendReduce(buf, alg, rank, n, vcomm, 0)
		case KindAllReduce:
			buf = appendAllReduce(buf, alg, rank, n, vcomm)
		case KindBarrier:
			barAlg := Linear
			if alg == Tree {
				barAlg = Binomial
			}
			buf = appendReduce(buf, barAlg, rank, n, barrierToken, 0)
			buf = appendBcast(buf, barAlg, rank, n, barrierToken, Rounds(kind, alg, n)/2)
		case KindGather:
			buf = appendGather(buf, alg, rank, n, vcomm, 0)
		case KindAllGather:
			buf = appendAllGather(buf, alg, rank, n, vcomm)
		case KindAllToAll:
			buf = appendPairwise(buf, rank, n, vcomm)
		case KindScatter:
			buf = appendScatter(buf, alg, rank, n, vcomm)
		}
	}
	if vcomp > 0 && (kind == KindReduce || kind == KindAllReduce) {
		buf = append(buf, Step{Op: OpCompute, To: -1, From: -1, Volume: vcomp})
	}
	return buf
}

// appendBcast emits the broadcast of bytes from rank 0, rounds starting at
// round0 (so compositions like allReduce can stack phases).
func appendBcast(buf []Step, alg Algorithm, rank, n int, bytes float64, round0 int) []Step {
	if alg != Binomial {
		if rank == 0 {
			for i := 1; i < n; i++ {
				buf = append(buf, Step{Op: OpSend, To: i, From: -1, Round: round0, Volume: bytes})
			}
			return buf
		}
		return append(buf, Step{Op: OpRecv, To: -1, From: 0, Round: round0, Volume: bytes})
	}
	start := 0
	if rank > 0 {
		tr := log2Floor(rank)
		buf = append(buf, Step{Op: OpRecv, To: -1, From: rank - 1<<tr, Round: round0 + tr, Volume: bytes})
		start = tr + 1
	}
	for t := start; rank+1<<t < n; t++ {
		buf = append(buf, Step{Op: OpSend, To: rank + 1<<t, From: -1, Round: round0 + t, Volume: bytes})
	}
	return buf
}

// appendReduce emits the reduction of bytes to rank 0 (every edge carries
// the full vector — combining does not shrink it), rounds from round0.
func appendReduce(buf []Step, alg Algorithm, rank, n int, bytes float64, round0 int) []Step {
	if alg != Binomial {
		if rank == 0 {
			for i := 1; i < n; i++ {
				buf = append(buf, Step{Op: OpRecv, To: -1, From: i, Round: round0, Volume: bytes})
			}
			return buf
		}
		return append(buf, Step{Op: OpSend, To: 0, From: -1, Round: round0, Volume: bytes})
	}
	// Mirror of the binomial broadcast: children join in decreasing phase
	// order, then the combined vector moves to the parent.
	r := ceilLog2(n)
	tr := -1
	if rank > 0 {
		tr = log2Floor(rank)
	}
	for t := r - 1; t > tr; t-- {
		if child := rank + 1<<t; child < n {
			buf = append(buf, Step{Op: OpRecv, To: -1, From: child, Round: round0 + (r - 1 - t), Volume: bytes})
		}
	}
	if rank > 0 {
		buf = append(buf, Step{Op: OpSend, To: rank - 1<<tr, From: -1, Round: round0 + (r - 1 - tr), Volume: bytes})
	}
	return buf
}

func appendAllReduce(buf []Step, alg Algorithm, rank, n int, bytes float64) []Step {
	switch alg {
	case Binomial:
		r := ceilLog2(n)
		buf = appendReduce(buf, Binomial, rank, n, bytes, 0)
		return appendBcast(buf, Binomial, rank, n, bytes, r)
	case RecursiveDoubling:
		return appendRecursiveDoubling(buf, rank, n, bytes)
	case Ring:
		// 2(n-1) chunk rotations: n-1 reduce-scatter shifts then n-1
		// allgather shifts, each moving one n-th of the vector.
		to, from := (rank+1)%n, (rank+n-1)%n
		for s := 0; s < 2*(n-1); s++ {
			buf = append(buf, Step{Op: OpShift, To: to, From: from, Round: s, Volume: bytes / float64(n)})
		}
		return buf
	}
	// Linear: the paper's reduce star followed by its broadcast star.
	buf = appendReduce(buf, Linear, rank, n, bytes, 0)
	return appendBcast(buf, Linear, rank, n, bytes, 1)
}

// appendRecursiveDoubling emits the pairwise-exchange allReduce. For
// non-power-of-two worlds the MPICH fold applies: the first 2*rem ranks pair
// up (odd sends to even), the resulting 2^k participants run k exchange
// phases, and the folded ranks receive the result back at the end.
func appendRecursiveDoubling(buf []Step, rank, n int, bytes float64) []Step {
	k := log2Floor(n)
	pof2 := 1 << k
	rem := n - pof2
	foldRounds := 0
	if rem > 0 {
		foldRounds = 1
	}
	newrank := -1
	switch {
	case rank < 2*rem && rank%2 == 1:
		buf = append(buf, Step{Op: OpSend, To: rank - 1, From: -1, Round: 0, Volume: bytes})
	case rank < 2*rem:
		buf = append(buf, Step{Op: OpRecv, To: -1, From: rank + 1, Round: 0, Volume: bytes})
		newrank = rank / 2
	default:
		newrank = rank - rem
	}
	if newrank >= 0 {
		for t := 0; t < k; t++ {
			pn := newrank ^ (1 << t)
			partner := pn * 2
			if pn >= rem {
				partner = pn + rem
			}
			buf = append(buf, Step{Op: OpShift, To: partner, From: partner, Round: foldRounds + t, Volume: bytes})
		}
	}
	if rank < 2*rem {
		if rank%2 == 1 {
			buf = append(buf, Step{Op: OpRecv, To: -1, From: rank - 1, Round: foldRounds + k, Volume: bytes})
		} else {
			buf = append(buf, Step{Op: OpSend, To: rank + 1, From: -1, Round: foldRounds + k, Volume: bytes})
		}
	}
	return buf
}

// subtreeSize returns the number of ranks in rank's binomial subtree: the
// ranks congruent to it modulo 2^(tr+1) that exist in the world.
func subtreeSize(rank, n int) int {
	span := 1
	if rank > 0 {
		span = 2 << log2Floor(rank)
	}
	return (n - rank + span - 1) / span
}

func appendGather(buf []Step, alg Algorithm, rank, n int, bytes float64, round0 int) []Step {
	if alg != Binomial {
		if rank == 0 {
			for i := 1; i < n; i++ {
				buf = append(buf, Step{Op: OpRecv, To: -1, From: i, Round: round0, Volume: bytes})
			}
			return buf
		}
		return append(buf, Step{Op: OpSend, To: 0, From: -1, Round: round0, Volume: bytes})
	}
	// Reduce-shaped tree, but an edge carries the blocks of the child's
	// whole subtree.
	r := ceilLog2(n)
	tr := -1
	if rank > 0 {
		tr = log2Floor(rank)
	}
	for t := r - 1; t > tr; t-- {
		if child := rank + 1<<t; child < n {
			buf = append(buf, Step{Op: OpRecv, To: -1, From: child, Round: round0 + (r - 1 - t),
				Volume: float64(subtreeSize(child, n)) * bytes})
		}
	}
	if rank > 0 {
		buf = append(buf, Step{Op: OpSend, To: rank - 1<<tr, From: -1, Round: round0 + (r - 1 - tr),
			Volume: float64(subtreeSize(rank, n)) * bytes})
	}
	return buf
}

func appendScatter(buf []Step, alg Algorithm, rank, n int, bytes float64) []Step {
	if alg != Binomial {
		return appendBcast(buf, Linear, rank, n, bytes, 0)
	}
	// Broadcast-shaped tree, each edge carrying the target subtree's blocks.
	start := 0
	if rank > 0 {
		tr := log2Floor(rank)
		buf = append(buf, Step{Op: OpRecv, To: -1, From: rank - 1<<tr, Round: tr,
			Volume: float64(subtreeSize(rank, n)) * bytes})
		start = tr + 1
	}
	for t := start; rank+1<<t < n; t++ {
		child := rank + 1<<t
		buf = append(buf, Step{Op: OpSend, To: child, From: -1, Round: t,
			Volume: float64(subtreeSize(child, n)) * bytes})
	}
	return buf
}

func appendAllGather(buf []Step, alg Algorithm, rank, n int, bytes float64) []Step {
	if alg == Ring {
		// n-1 block rotations; after step s a rank holds s+2 blocks.
		to, from := (rank+1)%n, (rank+n-1)%n
		for s := 0; s < n-1; s++ {
			buf = append(buf, Step{Op: OpShift, To: to, From: from, Round: s, Volume: bytes})
		}
		return buf
	}
	// Linear: gather the blocks at rank 0, broadcast the full vector back.
	buf = appendGather(buf, Linear, rank, n, bytes, 0)
	return appendBcast(buf, Linear, rank, n, float64(n)*bytes, 1)
}

// appendPairwise emits the pairwise-exchange allToAll: in step s every rank
// sends its block for rank+s to it while receiving from rank-s.
func appendPairwise(buf []Step, rank, n int, bytes float64) []Step {
	for s := 1; s < n; s++ {
		buf = append(buf, Step{Op: OpShift, To: (rank + s) % n, From: (rank + n - s) % n,
			Round: s - 1, Volume: bytes})
	}
	return buf
}

// CostBytes is the closed-form cost model: the total payload bytes all n
// ranks together put on the network for one collective of per-rank volume
// bytes. The property tests hold every generated schedule to it. alg must
// be concrete (post-Resolve).
func CostBytes(kind Kind, alg Algorithm, n int, bytes float64) float64 {
	if n <= 1 {
		return 0
	}
	nf := float64(n)
	switch kind {
	case KindBcast, KindReduce:
		return (nf - 1) * bytes
	case KindGather, KindScatter:
		if alg == Binomial {
			// Every non-root rank's subtree block set crosses the edge
			// above it exactly once.
			total := 0.0
			for r := 1; r < n; r++ {
				total += float64(subtreeSize(r, n))
			}
			return total * bytes
		}
		return (nf - 1) * bytes
	case KindAllReduce:
		switch alg {
		case RecursiveDoubling:
			k := log2Floor(n)
			pof2 := 1 << k
			rem := n - pof2
			return (float64(k*pof2) + 2*float64(rem)) * bytes
		case Ring:
			return nf * 2 * (nf - 1) * bytes / nf
		}
		return 2 * (nf - 1) * bytes
	case KindBarrier:
		return 2 * (nf - 1) * barrierToken
	case KindAllGather:
		if alg == Ring {
			return nf * (nf - 1) * bytes
		}
		return (nf-1)*bytes + (nf-1)*nf*bytes
	case KindAllToAll:
		return nf * (nf - 1) * bytes
	}
	return 0
}
