package convert

import (
	"strings"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/platform"
	"tireplay/internal/tau"
	"tireplay/internal/trace"
)

// ringProgram is the Figure 1 program: each process computes 1 Mflop and
// sends 1 MB around a ring.
func ringProgram(iters int) mpi.Program {
	return func(c mpi.Comm) {
		me, n := c.Rank(), c.Size()
		next := (me + 1) % n
		prev := (me - 1 + n) % n
		for i := 0; i < iters; i++ {
			if me == 0 {
				c.Compute(1e6)
				c.Send(next, 1e6)
				c.Recv(prev)
			} else {
				c.Recv(prev)
				c.Compute(1e6)
				c.Send(next, 1e6)
			}
		}
	}
}

// figure1Expected is the time-independent trace of Figure 1, prefixed with
// the comm_size declarations the paper requires before any collective.
const figure1Expected = `p0 comm_size 4
p0 compute 1e+06
p0 send p1 1e+06
p0 recv p3
p1 comm_size 4
p1 recv p0
p1 compute 1e+06
p1 send p2 1e+06
p2 comm_size 4
p2 recv p1
p2 compute 1e+06
p2 send p3 1e+06
p3 comm_size 4
p3 recv p2
p3 compute 1e+06
p3 send p0 1e+06
`

func TestExtractFigure1FromLiveAcquisition(t *testing.T) {
	dir := t.TempDir()
	_, _, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: 4}, 0, ringProgram(1))
	if err != nil {
		t.Fatal(err)
	}
	perRank, err := ExtractDir(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, acts := range perRank {
		for _, a := range acts {
			sb.WriteString(a.Format())
			sb.WriteByte('\n')
		}
	}
	if got := sb.String(); got != figure1Expected {
		t.Fatalf("extracted trace:\n%s\nwant:\n%s", got, figure1Expected)
	}
}

// TestTimeIndependenceAcrossEngines is the paper's core claim (Section 6.2):
// however the application is executed — fast host, slow host, folded,
// scattered — the extracted time-independent trace is identical.
func TestTimeIndependenceAcrossEngines(t *testing.T) {
	prog := func(c mpi.Comm) {
		me, n := c.Rank(), c.Size()
		c.Compute(float64(me+1) * 1e5)
		if me == 0 {
			c.Isend(1, 2e6)
			c.Compute(5e4)
			req := c.Irecv(n - 1)
			c.Wait(req)
		} else if me == 1 {
			c.Recv(0)
		}
		if me == n-1 {
			c.Send(0, 777)
		}
		c.Allreduce(4096, 1e5)
		c.Barrier()
	}

	// Acquisition 1: live engine, fast flop rate.
	dir1 := t.TempDir()
	if _, _, err := tau.AcquireLive(dir1, mpi.LiveConfig{Procs: 4, FlopRate: 5e9}, 0, prog); err != nil {
		t.Fatal(err)
	}
	// Acquisition 2: live engine, slow rate with per-burst variability and
	// tracing overhead.
	dir2 := t.TempDir()
	cfg2 := mpi.LiveConfig{Procs: 4, FlopRate: 1e8,
		Rate: func(rank int, seq int64, flops float64) float64 {
			return 0.5 + 0.1*float64((seq+int64(rank))%7)
		}}
	if _, _, err := tau.AcquireLive(dir2, cfg2, 2e-6, prog); err != nil {
		t.Fatal(err)
	}
	// Acquisition 3: simulation engine, 4 ranks folded on one node.
	dir3 := t.TempDir()
	b, err := platform.BuildBordereau(1)
	if err != nil {
		t.Fatal(err)
	}
	depl, err := platform.RoundRobin(b.HostNames, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tau.AcquireSim(dir3, b, depl, mpi.SimConfig{}, 1e-6, prog); err != nil {
		t.Fatal(err)
	}

	t1, err := ExtractDir(dir1, 4)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ExtractDir(dir2, 4)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := ExtractDir(dir3, 4)
	if err != nil {
		t.Fatal(err)
	}
	text := func(perRank [][]trace.Action) string {
		var sb strings.Builder
		for _, acts := range perRank {
			for _, a := range acts {
				sb.WriteString(a.Format())
				sb.WriteByte('\n')
			}
		}
		return sb.String()
	}
	s1, s2, s3 := text(t1), text(t2), text(t3)
	if s1 != s2 {
		t.Errorf("live fast vs live slow traces differ:\n%s\nvs\n%s", s1, s2)
	}
	if s1 != s3 {
		t.Errorf("live vs folded-sim traces differ:\n%s\nvs\n%s", s1, s3)
	}
}

func TestExtractIrecvLookup(t *testing.T) {
	// An Irecv's source is only known from the RecvMessage inside MPI_Wait;
	// the extractor must back-fill it.
	dir := t.TempDir()
	prog := func(c mpi.Comm) {
		if c.Rank() == 0 {
			req := c.Irecv(1)
			c.Compute(1e5)
			c.Wait(req)
		} else {
			c.Send(0, 4242)
		}
	}
	if _, _, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: 2}, 0, prog); err != nil {
		t.Fatal(err)
	}
	perRank, err := ExtractDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	var irecv, wait *trace.Action
	for i := range perRank[0] {
		switch perRank[0][i].Type {
		case trace.Irecv:
			irecv = &perRank[0][i]
		case trace.Wait:
			wait = &perRank[0][i]
		}
	}
	if irecv == nil || wait == nil {
		t.Fatalf("rank 0 actions: %+v", perRank[0])
	}
	if irecv.Peer != 1 {
		t.Fatalf("Irecv source not back-filled: %+v", *irecv)
	}
}

func TestExtractReduceVcomp(t *testing.T) {
	dir := t.TempDir()
	prog := func(c mpi.Comm) {
		c.Reduce(2048, 3e5)
	}
	if _, _, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: 2}, 0, prog); err != nil {
		t.Fatal(err)
	}
	perRank, err := ExtractDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r, acts := range perRank {
		found := false
		for _, a := range acts {
			if a.Type == trace.Reduce {
				found = true
				if a.Volume != 2048 || a.Volume2 != 3e5 {
					t.Errorf("rank %d reduce = %+v", r, a)
				}
			}
		}
		if !found {
			t.Errorf("rank %d has no reduce action", r)
		}
	}
}

func TestExtractTrailingComputeCaptured(t *testing.T) {
	// A burst after the last MPI call must appear, closed by MPI_Finalize.
	dir := t.TempDir()
	prog := func(c mpi.Comm) {
		c.Barrier()
		c.Compute(9e5)
	}
	if _, _, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: 2}, 0, prog); err != nil {
		t.Fatal(err)
	}
	perRank, err := ExtractDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := perRank[0][len(perRank[0])-1]
	if last.Type != trace.Compute || last.Volume != 9e5 {
		t.Fatalf("trailing action = %+v", last)
	}
}

func TestExtractErrorsOnMissingFiles(t *testing.T) {
	if _, err := ExtractProcess(0, "/nonexistent/t.trc", "/nonexistent/e.edf"); err == nil {
		t.Fatal("expected error for missing files")
	}
}

func TestFlatten(t *testing.T) {
	perRank := [][]trace.Action{
		{{Proc: 0, Type: trace.Barrier, Peer: -1}},
		{{Proc: 1, Type: trace.Barrier, Peer: -1}, {Proc: 1, Type: trace.Wait, Peer: -1}},
	}
	flat := Flatten(perRank)
	if len(flat) != 3 || flat[0].Proc != 0 || flat[2].Type != trace.Wait {
		t.Fatalf("flatten = %+v", flat)
	}
}

func TestExtractedTraceIsValid(t *testing.T) {
	// Every extracted action passes the trace validator and survives a
	// text round trip.
	dir := t.TempDir()
	if _, _, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: 4}, 0, ringProgram(3)); err != nil {
		t.Fatal(err)
	}
	perRank, err := ExtractDir(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, acts := range perRank {
		for _, a := range acts {
			if err := a.Validate(); err != nil {
				t.Fatalf("invalid extracted action %+v: %v", a, err)
			}
			if _, ok, err := trace.ParseLine(a.Format()); err != nil || !ok {
				t.Fatalf("unparseable extracted action %q: %v", a.Format(), err)
			}
		}
	}
}
