package convert

import (
	"bytes"
	"strings"
	"testing"

	"tireplay/internal/trace"
)

// TestCollectiveActionsTextBinaryTextRoundTrip pins the codec path the
// converter's outputs travel for the schedule-decomposed collective
// actions: a textual trace using every collective keyword (including the
// gather/allGather/allToAll/scatter family and waitAll) must survive
// text -> binary -> text byte-for-byte.
func TestCollectiveActionsTextBinaryTextRoundTrip(t *testing.T) {
	const doc = `p0 comm_size 4
p0 bcast 1e+06
p0 reduce 100000 2e+06
p0 allReduce 100000 2e+06
p0 barrier
p0 gather 4096
p0 allGather 8192
p0 allToAll 512
p0 scatter 1.5e+06
p1 Irecv p0
p1 Irecv p0
p1 waitAll
p1 gather 4096
`
	actions, err := trace.ParseAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := trace.EncodeBinary(&bin, actions); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.DecodeBinaryBytes(bin.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(actions) {
		t.Fatalf("decoded %d actions, want %d", len(decoded), len(actions))
	}
	var text bytes.Buffer
	if err := trace.WriteAll(&text, decoded); err != nil {
		t.Fatal(err)
	}
	if text.String() != doc {
		t.Fatalf("text -> binary -> text drifted:\nin:\n%s\nout:\n%s", doc, text.String())
	}
}

// TestCollectiveActionsBinaryRoundTripProperty widens the check to random
// collective payload volumes across the whole action alphabet.
func TestCollectiveActionsBinaryRoundTripProperty(t *testing.T) {
	var actions []trace.Action
	for i, typ := range []trace.ActionType{
		trace.Gather, trace.AllGather, trace.AllToAll, trace.Scatter,
	} {
		for _, vol := range []float64{0, 1, 40, 8192, 1.25e7, 3.14159e9} {
			actions = append(actions, trace.Action{
				Proc: i, Type: typ, Peer: -1, Volume: vol,
			})
		}
	}
	actions = append(actions, trace.Action{Proc: 9, Type: trace.WaitAll, Peer: -1})
	var bin bytes.Buffer
	if err := trace.EncodeBinary(&bin, actions); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.DecodeBinaryBytes(bin.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(actions) {
		t.Fatalf("decoded %d actions, want %d", len(decoded), len(actions))
	}
	for i := range actions {
		if decoded[i] != actions[i] {
			t.Fatalf("action %d drifted: %+v -> %+v", i, actions[i], decoded[i])
		}
	}
}
