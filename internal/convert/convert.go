// Package convert extracts time-independent traces from TAU binary traces:
// it is the counterpart of the paper's tau2simgrid tool (Section 4.3). The
// extraction walks each rank's trace through the Trace Format Reader
// callbacks and rebuilds the action list of Table 1:
//
//   - the PAPI_FP_OPS triggers bracketing each MPI call delimit the CPU
//     bursts, whose volume becomes a compute action (flops inside MPI calls
//     are ignored for bursts, but the counter delta inside a collective is
//     its computation volume vcomp);
//   - SendMessage records provide the destination and size of send/Isend
//     actions; RecvMessage records provide the source of receives;
//   - the source of an MPI_Irecv is unknown at post time — the RecvMessage
//     appears inside the matching MPI_Wait, so the extractor keeps a queue
//     of pending Irecv actions and back-fills them (the paper's "lookup
//     techniques");
//   - MPI_Comm_size produces the comm_size action that must precede any
//     collective.
package convert

import (
	"fmt"
	"path/filepath"
	"sync"

	"tireplay/internal/tau"
	"tireplay/internal/tfr"
	"tireplay/internal/trace"
)

// extractor accumulates the state machine of one rank's extraction.
type extractor struct {
	rank    int
	actions []trace.Action

	inState      int     // current MPI state id, 0 if outside
	papiSamples  int     // PAPI triggers seen in the current state
	entryCounter float64 // PAPI value at state entry
	exitCounter  float64 // last PAPI value seen in state
	lastExit     float64 // PAPI value when the previous state was left

	msgSize    float64 // MsgSize trigger value within the state
	hasMsgSize bool
	sendDst    int
	sendSize   float64
	hasSend    bool
	recvSrc    int
	recvSize   float64
	hasRecv    bool

	pendingIrecv []int // indices of Irecv actions awaiting their source
	err          error
}

func (e *extractor) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("convert: rank %d: %s", e.rank, fmt.Sprintf(format, args...))
	}
}

func (e *extractor) enterState(t float64, node, tid, id int) {
	if e.err != nil {
		return
	}
	if e.inState != 0 {
		e.fail("nested state %d inside %d", id, e.inState)
		return
	}
	e.inState = id
	e.papiSamples = 0
	e.hasMsgSize = false
	e.hasSend = false
	e.hasRecv = false
}

func (e *extractor) eventTrigger(t float64, node, tid, eventID int, value float64) {
	if e.err != nil {
		return
	}
	switch eventID {
	case tau.EventPAPIFlops:
		if e.inState == 0 {
			e.fail("PAPI trigger outside any state")
			return
		}
		if e.papiSamples == 0 {
			e.entryCounter = value
			// The entry sample closes the CPU burst since the last MPI call.
			if burst := value - e.lastExit; burst > 0 {
				e.actions = append(e.actions, trace.Action{
					Proc: e.rank, Type: trace.Compute, Peer: -1, Volume: burst,
				})
			} else if burst < 0 {
				e.fail("PAPI counter went backwards (%g -> %g)", e.lastExit, value)
				return
			}
		}
		e.exitCounter = value
		e.papiSamples++
	case tau.EventMsgSize:
		e.msgSize = value
		e.hasMsgSize = true
	default:
		e.fail("unknown trigger event %d", eventID)
	}
}

func (e *extractor) sendMessage(t float64, node, tid, dst, dstTid int, size float64, tag, comm int) {
	if e.err != nil {
		return
	}
	e.sendDst = dst
	e.sendSize = size
	e.hasSend = true
}

func (e *extractor) recvMessage(t float64, node, tid, src, srcTid int, size float64, tag, comm int) {
	if e.err != nil {
		return
	}
	e.recvSrc = src
	e.recvSize = size
	e.hasRecv = true
}

func (e *extractor) leaveState(t float64, node, tid, id int) {
	if e.err != nil {
		return
	}
	if e.inState != id {
		e.fail("leaving state %d while in %d", id, e.inState)
		return
	}
	add := func(a trace.Action) {
		a.Proc = e.rank
		e.actions = append(e.actions, a)
	}
	vcomp := e.exitCounter - e.entryCounter
	switch id {
	case tau.StateMPISend:
		if !e.hasSend {
			e.fail("MPI_Send without SendMessage record")
			return
		}
		add(trace.Action{Type: trace.Send, Peer: e.sendDst, Volume: e.sendSize})
	case tau.StateMPIIsend:
		if !e.hasSend {
			e.fail("MPI_Isend without SendMessage record")
			return
		}
		add(trace.Action{Type: trace.Isend, Peer: e.sendDst, Volume: e.sendSize})
	case tau.StateMPIRecv:
		if !e.hasRecv {
			e.fail("MPI_Recv without RecvMessage record")
			return
		}
		add(trace.Action{Type: trace.Recv, Peer: e.recvSrc})
	case tau.StateMPIIrecv:
		// Source unknown until the matching MPI_Wait: append a placeholder
		// and remember it for back-filling.
		add(trace.Action{Type: trace.Irecv, Peer: -1})
		e.pendingIrecv = append(e.pendingIrecv, len(e.actions)-1)
	case tau.StateMPIWait:
		if e.hasRecv {
			if len(e.pendingIrecv) == 0 {
				e.fail("MPI_Wait completed a receive with no pending MPI_Irecv")
				return
			}
			idx := e.pendingIrecv[0]
			e.pendingIrecv = e.pendingIrecv[1:]
			e.actions[idx].Peer = e.recvSrc
		}
		add(trace.Action{Type: trace.Wait, Peer: -1})
	case tau.StateMPIBcast:
		if !e.hasMsgSize {
			e.fail("MPI_Bcast without size trigger")
			return
		}
		add(trace.Action{Type: trace.Bcast, Peer: -1, Volume: e.msgSize})
	case tau.StateMPIReduce:
		if !e.hasMsgSize {
			e.fail("MPI_Reduce without size trigger")
			return
		}
		add(trace.Action{Type: trace.Reduce, Peer: -1, Volume: e.msgSize, Volume2: vcomp})
	case tau.StateMPIAllreduce:
		if !e.hasMsgSize {
			e.fail("MPI_Allreduce without size trigger")
			return
		}
		add(trace.Action{Type: trace.AllReduce, Peer: -1, Volume: e.msgSize, Volume2: vcomp})
	case tau.StateMPIBarrier:
		add(trace.Action{Type: trace.Barrier, Peer: -1})
	case tau.StateMPICommSize:
		if !e.hasMsgSize {
			e.fail("MPI_Comm_size without size trigger")
			return
		}
		add(trace.Action{Type: trace.CommSize, Peer: -1, Volume: e.msgSize})
	case tau.StateMPIInit, tau.StateMPIFinalize:
		// No time-independent action.
	default:
		e.fail("unknown state %d", id)
		return
	}
	e.lastExit = e.exitCounter
	e.inState = 0
}

func (e *extractor) endTrace(node, tid int) {
	if e.err != nil {
		return
	}
	if e.inState != 0 {
		e.fail("trace ended inside state %d", e.inState)
		return
	}
	if len(e.pendingIrecv) != 0 {
		e.fail("%d MPI_Irecv never completed by an MPI_Wait", len(e.pendingIrecv))
	}
}

// ExtractProcess extracts the time-independent actions of one rank from its
// TAU trace and event files.
func ExtractProcess(rank int, trcPath, edfPath string) ([]trace.Action, error) {
	e := &extractor{rank: rank}
	cb := tfr.Callbacks{
		EnterState:   e.enterState,
		LeaveState:   e.leaveState,
		EventTrigger: e.eventTrigger,
		SendMessage:  e.sendMessage,
		RecvMessage:  e.recvMessage,
		EndTrace:     e.endTrace,
	}
	if err := tfr.ReadFiles(trcPath, edfPath, cb); err != nil {
		return nil, err
	}
	if e.err != nil {
		return nil, e.err
	}
	return e.actions, nil
}

// ExtractDir extracts every rank of an acquisition directory laid out with
// the TAU file naming convention, processing ranks concurrently — the
// paper's tau2simgrid is itself a parallel application. It returns the
// per-rank action lists.
func ExtractDir(dir string, nprocs int) ([][]trace.Action, error) {
	out := make([][]trace.Action, nprocs)
	errs := make([]error, nprocs)
	var wg sync.WaitGroup
	for r := 0; r < nprocs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out[r], errs[r] = ExtractProcess(r,
				filepath.Join(dir, tau.TraceFileName(r)),
				filepath.Join(dir, tau.EventFileName(r)))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Flatten concatenates per-rank action lists in rank order, the layout used
// when writing a single merged trace file.
func Flatten(perRank [][]trace.Action) []trace.Action {
	var total int
	for _, a := range perRank {
		total += len(a)
	}
	out := make([]trace.Action, 0, total)
	for _, a := range perRank {
		out = append(out, a...)
	}
	return out
}
