package convert

import (
	"reflect"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/tau"
)

// TestRecorderMatchesExtraction validates the trace-generator engine that
// the Section 6.5 large-trace study relies on: unrolling a rank in
// isolation (mpi.Record) must produce exactly the actions that the full
// pipeline — instrumented execution, TAU binary traces, tau2simgrid
// extraction — produces.
func TestRecorderMatchesExtraction(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  npb.LUConfig
	}{
		{"S4", npb.LUConfig{Class: npb.ClassS, Procs: 4}},
		{"S8", npb.LUConfig{Class: npb.ClassS, Procs: 8}},
		{"W4", npb.LUConfig{Class: npb.ClassW, Procs: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := npb.LU(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if _, _, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: tc.cfg.Procs}, 0, prog); err != nil {
				t.Fatal(err)
			}
			extracted, err := ExtractDir(dir, tc.cfg.Procs)
			if err != nil {
				t.Fatal(err)
			}
			for rank := 0; rank < tc.cfg.Procs; rank++ {
				recorded, err := mpi.Record(rank, tc.cfg.Procs, prog)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(recorded, extracted[rank]) {
					max := len(recorded)
					if len(extracted[rank]) < max {
						max = len(extracted[rank])
					}
					for i := 0; i < max; i++ {
						if recorded[i] != extracted[rank][i] {
							t.Fatalf("rank %d diverges at action %d: recorded %q, extracted %q",
								rank, i, recorded[i].Format(), extracted[rank][i].Format())
						}
					}
					t.Fatalf("rank %d lengths differ: recorded %d, extracted %d",
						rank, len(recorded), len(extracted[rank]))
				}
			}
		})
	}
}

// TestRecorderMatchesStatsCount pins the analytic action counts (LUStats)
// against the recorder, for the configurations the large-trace study
// extends to.
func TestRecorderMatchesStatsCount(t *testing.T) {
	for _, cfg := range []npb.LUConfig{
		{Class: npb.ClassS, Procs: 4},
		{Class: npb.ClassS, Procs: 16},
		{Class: npb.ClassW, Procs: 8},
		{Class: npb.ClassA, Procs: 32},
	} {
		stats, err := cfg.Stats()
		if err != nil {
			t.Fatal(err)
		}
		prog, err := npb.LU(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for rank := 0; rank < cfg.Procs; rank++ {
			acts, err := mpi.Record(rank, cfg.Procs, prog)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(acts)) != stats.ActionsPerRank[rank] {
				t.Fatalf("class %s procs %d rank %d: recorded %d actions, stats predict %d",
					cfg.Class.Name, cfg.Procs, rank, len(acts), stats.ActionsPerRank[rank])
			}
			total += int64(len(acts))
		}
		if total != stats.TotalActions {
			t.Fatalf("class %s procs %d: total %d != stats %d",
				cfg.Class.Name, cfg.Procs, total, stats.TotalActions)
		}
	}
}
