// Package synth fits a compact statistical model from a recorded
// time-independent trace and regenerates synthetic traces at arbitrary
// world sizes (the MapReplay trace-driven-generation direction named in
// PAPERS.md). A recorded trace stops at the cluster that was traced; the
// fitted model captures what the trace *is* — the p2p stencil each rank
// class exchanges on, the compute bursts between communications, the
// collective cadence — so the same application can be replayed on fabrics
// with thousands of hosts that nothing ever recorded.
//
// The model is deliberately structural, not stochastic: regenerating at
// the recorded world size reproduces the recorded trace action-for-action
// (the differential tests pin this against internal/npb's closed-form
// generators), and regeneration at any size is deterministic and
// byte-reproducible given the same Spec, so synthetic scenarios inherit
// every determinism guarantee of the sweep engine.
//
// Terminology: ranks are laid on a GridW x GridH row-major grid
// (col = rank % GridW, matching internal/npb's grid2D). A Dir is an
// abstract neighbour direction — a (dx, dy) grid offset or a column-XOR
// (butterfly) pairing — and every p2p op in the model names a Dir instead
// of a concrete peer. A rank class is the set of ranks sharing a set of
// present Dirs (interior ranks, edges, corners); the fit proves one op
// template filtered by Dir presence reproduces every class.
package synth

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"tireplay/internal/trace"
)

// Dir kinds.
const (
	// DirOffset pairs rank (x, y) with (x+DX, y+DY); the op is skipped for
	// ranks whose neighbour falls off the grid.
	DirOffset = "offset"
	// DirXor pairs rank (x, y) with (x^(1<<Bit), y) — the butterfly
	// pattern of recursive-doubling exchanges (NPB CG's transpose).
	DirXor = "xor"
)

// Dir is an abstract neighbour direction on the rank grid.
type Dir struct {
	Kind string `json:"kind"`
	DX   int    `json:"dx,omitempty"`
	DY   int    `json:"dy,omitempty"`
	Bit  int    `json:"bit,omitempty"`
}

func (d Dir) String() string {
	if d.Kind == DirXor {
		return fmt.Sprintf("xor:%d", d.Bit)
	}
	return fmt.Sprintf("offset:%+d%+d", d.DX, d.DY)
}

// Conjugate returns the direction a peer uses to address this rank back:
// the mirrored offset, or the same XOR bit (XOR pairings are symmetric).
func (d Dir) Conjugate() Dir {
	if d.Kind == DirXor {
		return d
	}
	return Dir{Kind: DirOffset, DX: -d.DX, DY: -d.DY}
}

// Op is one templated action inside a segment phase. Dir indexes
// Model.Dirs and is -1 for ops without a direction (compute, waitAll).
type Op struct {
	Type trace.ActionType
	Dir  int
	Vol  float64
}

type opJSON struct {
	Op  string  `json:"op"`
	Dir *int    `json:"dir,omitempty"`
	Vol float64 `json:"vol,omitempty"`
}

func (o Op) MarshalJSON() ([]byte, error) {
	j := opJSON{Op: o.Type.String(), Vol: o.Vol}
	if o.Dir >= 0 {
		j.Dir = &o.Dir
	}
	return json.Marshal(j)
}

func (o *Op) UnmarshalJSON(data []byte) error {
	var j opJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	t, ok := trace.TypeFromName(j.Op)
	if !ok {
		return fmt.Errorf("synth: unknown op type %q", j.Op)
	}
	o.Type = t
	o.Dir = -1
	if j.Dir != nil {
		o.Dir = *j.Dir
	}
	o.Vol = j.Vol
	return nil
}

// CollPhase is one collective operation every rank executes in lockstep,
// optionally preceded by a compute burst of Comp flops (Comp2 carries the
// reduction-compute volume for reduce/allReduce actions).
type CollPhase struct {
	Type trace.ActionType
	Comm float64 // communicated bytes (0 for barrier)
	Red  float64 // per-element reduction flops (Volume2 of reduce/allReduce)
	Comp float64 // compute burst flushed immediately before the collective
}

type collJSON struct {
	Type string  `json:"type"`
	Comm float64 `json:"comm,omitempty"`
	Red  float64 `json:"red,omitempty"`
	Comp float64 `json:"comp,omitempty"`
}

func (c CollPhase) MarshalJSON() ([]byte, error) {
	return json.Marshal(collJSON{Type: c.Type.String(), Comm: c.Comm, Red: c.Red, Comp: c.Comp})
}

func (c *CollPhase) UnmarshalJSON(data []byte) error {
	var j collJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	t, ok := trace.TypeFromName(j.Type)
	if !ok {
		return fmt.Errorf("synth: unknown collective type %q", j.Type)
	}
	*c = CollPhase{Type: t, Comm: j.Comm, Red: j.Red, Comp: j.Comp}
	return nil
}

// SegPhase is a point-to-point segment: the union op template all rank
// classes share, compressed as Pre + Body x Reps + Tail. Each rank emits
// the ops whose Dir exists for its grid position; consecutive surviving
// compute ops coalesce into one burst exactly as the acquisition recorder
// merges PAPI bursts, which is what makes boundary-rank output reproduce
// the recorded trace byte-for-byte.
type SegPhase struct {
	Pre  []Op `json:"pre,omitempty"`
	Body []Op `json:"body,omitempty"`
	Reps int  `json:"reps,omitempty"`
	Tail []Op `json:"tail,omitempty"`
}

// Len returns the expanded op count of the segment.
func (s *SegPhase) Len() int {
	return len(s.Pre) + s.Reps*len(s.Body) + len(s.Tail)
}

// Phase is either a collective or a p2p segment (exactly one is set).
type Phase struct {
	Coll *CollPhase `json:"coll,omitempty"`
	Seg  *SegPhase  `json:"seg,omitempty"`
}

// Model is a fitted synthetic-trace model. The top-level phase script is
// itself compressed: phase indices in Prologue, then Body repeated Reps
// times, then Tail. Reps is the knob the reps scaling exponent acts on.
type Model struct {
	// App is a free-form label ("lu.S.16") carried for reports.
	App string `json:"app,omitempty"`
	// World is the recorded world size the model was fitted at.
	World int `json:"world"`
	// GridW x GridH is the recorded rank grid (row-major, col = rank%GridW).
	GridW int `json:"grid_w"`
	GridH int `json:"grid_h"`
	// Dirs is the direction table Op.Dir indexes into.
	Dirs []Dir `json:"dirs,omitempty"`
	// Phases is the deduplicated phase table the script indexes into.
	Phases []Phase `json:"phases"`
	// Prologue/Body/Reps/Tail is the compressed top-level script.
	Prologue []int `json:"prologue,omitempty"`
	Body     []int `json:"body,omitempty"`
	Reps     int   `json:"reps,omitempty"`
	Tail     []int `json:"tail,omitempty"`
}

// Script expands the compressed top-level phase script into phase indices.
func (m *Model) Script() []int {
	out := make([]int, 0, len(m.Prologue)+m.Reps*len(m.Body)+len(m.Tail))
	out = append(out, m.Prologue...)
	for i := 0; i < m.Reps; i++ {
		out = append(out, m.Body...)
	}
	out = append(out, m.Tail...)
	return out
}

// Validate checks internal consistency of the model.
func (m *Model) Validate() error {
	if m.World <= 0 {
		return fmt.Errorf("synth: model world %d must be positive", m.World)
	}
	if m.GridW <= 0 || m.GridH <= 0 || m.GridW*m.GridH != m.World {
		return fmt.Errorf("synth: grid %dx%d does not tile world %d", m.GridW, m.GridH, m.World)
	}
	if len(m.Dirs) > 64 {
		return fmt.Errorf("synth: %d directions exceed the 64-dir class mask", len(m.Dirs))
	}
	for i, d := range m.Dirs {
		switch d.Kind {
		case DirOffset:
			if d.DX == 0 && d.DY == 0 {
				return fmt.Errorf("synth: dir %d is a zero offset", i)
			}
		case DirXor:
			if d.Bit < 0 || d.Bit > 30 {
				return fmt.Errorf("synth: dir %d has xor bit %d out of range", i, d.Bit)
			}
		default:
			return fmt.Errorf("synth: dir %d has unknown kind %q", i, d.Kind)
		}
	}
	checkOps := func(ops []Op) error {
		for _, op := range ops {
			switch op.Type {
			case trace.Compute, trace.Wait, trace.WaitAll:
				if op.Dir >= len(m.Dirs) {
					return fmt.Errorf("synth: op %s dir %d out of range", op.Type, op.Dir)
				}
			case trace.Send, trace.Isend, trace.Recv, trace.Irecv:
				if op.Dir < 0 || op.Dir >= len(m.Dirs) {
					return fmt.Errorf("synth: p2p op %s needs a valid dir, got %d", op.Type, op.Dir)
				}
			default:
				return fmt.Errorf("synth: op type %s not allowed inside a segment", op.Type)
			}
			if math.IsNaN(op.Vol) || math.IsInf(op.Vol, 0) || op.Vol < 0 {
				return fmt.Errorf("synth: op %s has unusable volume %g", op.Type, op.Vol)
			}
		}
		return nil
	}
	for i := range m.Phases {
		ph := &m.Phases[i]
		switch {
		case ph.Coll != nil && ph.Seg == nil:
			switch ph.Coll.Type {
			case trace.Bcast, trace.Reduce, trace.AllReduce, trace.Barrier,
				trace.Gather, trace.AllGather, trace.AllToAll, trace.Scatter:
			default:
				return fmt.Errorf("synth: phase %d has non-collective type %s", i, ph.Coll.Type)
			}
		case ph.Seg != nil && ph.Coll == nil:
			if ph.Seg.Reps < 0 || (ph.Seg.Reps > 0 && len(ph.Seg.Body) == 0) {
				return fmt.Errorf("synth: phase %d repeats an empty body", i)
			}
			for _, ops := range [][]Op{ph.Seg.Pre, ph.Seg.Body, ph.Seg.Tail} {
				if err := checkOps(ops); err != nil {
					return fmt.Errorf("phase %d: %w", i, err)
				}
			}
		default:
			return fmt.Errorf("synth: phase %d must set exactly one of coll/seg", i)
		}
	}
	if m.Reps < 0 || (m.Reps > 0 && len(m.Body) == 0) {
		return fmt.Errorf("synth: script repeats an empty body")
	}
	for _, idx := range m.Script() {
		if idx < 0 || idx >= len(m.Phases) {
			return fmt.Errorf("synth: script phase index %d out of range", idx)
		}
	}
	return nil
}

// WriteJSON writes the model as indented JSON.
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadModel parses a model from JSON and validates it.
func ReadModel(r io.Reader) (*Model, error) {
	var m Model
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("synth: decoding model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReadModelFile reads and validates a model from a JSON file.
func ReadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadModel(f)
}
