package synth

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Law holds the scaling exponents applied when a model is regenerated at a
// world size other than the recorded one. With rho = world'/world, every
// compute volume scales by rho^Compute, every p2p byte volume by
// rho^Bytes, the top-level iteration count by rho^Reps, and collective
// byte volumes by rho^Coll. The zero Law is weak scaling: per-rank work
// constant, total work grows with the world.
type Law struct {
	Compute float64 `json:"compute"`
	Bytes   float64 `json:"bytes"`
	Reps    float64 `json:"reps"`
	Coll    float64 `json:"coll"`
}

// WeakLaw keeps per-rank volumes fixed as the world grows.
var WeakLaw = Law{}

// StrongLaw fixes the total problem size: per-rank compute shrinks as
// 1/world and halo surfaces as 1/sqrt(world), the classic 2D-domain
// strong-scaling law.
var StrongLaw = Law{Compute: -1, Bytes: -0.5}

// Spec describes one synthetic generation request: the target world plus
// the knobs that parameterise it. The zero value is invalid (World must
// be positive); DefaultSpec(world) is the canonical starting point.
type Spec struct {
	// World is the target world size (required, positive).
	World int
	// GridW x GridH overrides the rank grid at the target size. When zero
	// the grid is derived from the model's recorded aspect ratio.
	GridW, GridH int
	// Law holds the scaling exponents (zero value = weak scaling).
	Law Law
	// Seed seeds the deterministic jitter stream.
	Seed uint64
	// Jitter perturbs every compute volume by a factor uniform in
	// [1-Jitter, 1+Jitter), deterministically per (seed, rank, op).
	Jitter float64
}

// DefaultSpec returns the canonical weak-scaling spec for a world size.
func DefaultSpec(world int) Spec { return Spec{World: world} }

// ParseSpec parses the tigen spec mini-language:
//
//	world=N[,grid=WxH][,scale=LAW][,seed=S][,jitter=F]
//
// where LAW is "weak", "strong", or explicit exponents like
// "compute=-1:bytes=-0.5:reps=0:coll=0" (omitted exponents are 0). A bare
// leading integer is shorthand for world=N. Keys may appear at most once.
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	seen := map[string]bool{}
	fields := strings.Split(s, ",")
	for i, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			return Spec{}, fmt.Errorf("synth: empty field in spec %q", s)
		}
		key, val, hasEq := strings.Cut(f, "=")
		if !hasEq {
			if i != 0 {
				return Spec{}, fmt.Errorf("synth: spec field %q is not key=value", f)
			}
			// Bare leading integer: "4096,scale=strong".
			key, val = "world", f
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return Spec{}, fmt.Errorf("synth: duplicate spec key %q", key)
		}
		seen[key] = true
		switch key {
		case "world":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Spec{}, fmt.Errorf("synth: world %q must be a positive integer", val)
			}
			sp.World = n
		case "grid":
			w, h, ok := strings.Cut(val, "x")
			if !ok {
				return Spec{}, fmt.Errorf("synth: grid %q must be WxH", val)
			}
			gw, err1 := strconv.Atoi(w)
			gh, err2 := strconv.Atoi(h)
			if err1 != nil || err2 != nil || gw <= 0 || gh <= 0 {
				return Spec{}, fmt.Errorf("synth: grid %q must be WxH with positive sides", val)
			}
			sp.GridW, sp.GridH = gw, gh
		case "scale":
			law, err := parseLaw(val)
			if err != nil {
				return Spec{}, err
			}
			sp.Law = law
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("synth: seed %q must be an unsigned integer", val)
			}
			sp.Seed = n
		case "jitter":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) || v < 0 || v >= 1 {
				return Spec{}, fmt.Errorf("synth: jitter %q must be a float in [0,1)", val)
			}
			sp.Jitter = v
		default:
			return Spec{}, fmt.Errorf("synth: unknown spec key %q", key)
		}
	}
	if sp.World <= 0 {
		return Spec{}, fmt.Errorf("synth: spec %q needs world=N", s)
	}
	if sp.GridW != 0 && sp.GridW*sp.GridH != sp.World {
		return Spec{}, fmt.Errorf("synth: grid %dx%d does not tile world %d",
			sp.GridW, sp.GridH, sp.World)
	}
	return sp, nil
}

// ParseLaw parses a scaling-law spec on its own: "weak", "strong", or
// explicit exponents like "compute=-1:bytes=-0.5" — the syntax of the
// spec mini-language's scale= value, exposed for flags (tisweep -scale)
// that take the law separately from the world size.
func ParseLaw(val string) (Law, error) { return parseLaw(val) }

func parseLaw(val string) (Law, error) {
	switch val {
	case "weak":
		return WeakLaw, nil
	case "strong":
		return StrongLaw, nil
	}
	var law Law
	seen := map[string]bool{}
	for _, f := range strings.Split(val, ":") {
		key, v, ok := strings.Cut(f, "=")
		if !ok {
			return Law{}, fmt.Errorf("synth: scale term %q is not exponent=value (or weak/strong)", f)
		}
		key = strings.TrimSpace(key)
		if seen[key] {
			return Law{}, fmt.Errorf("synth: duplicate scale exponent %q", key)
		}
		seen[key] = true
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || math.IsNaN(x) || math.IsInf(x, 0) {
			return Law{}, fmt.Errorf("synth: scale exponent %q has unusable value %q", key, v)
		}
		switch key {
		case "compute":
			law.Compute = x
		case "bytes":
			law.Bytes = x
		case "reps":
			law.Reps = x
		case "coll":
			law.Coll = x
		default:
			return Law{}, fmt.Errorf("synth: unknown scale exponent %q", key)
		}
	}
	return law, nil
}

func formatExp(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (l Law) String() string {
	switch l {
	case WeakLaw:
		return "weak"
	case StrongLaw:
		return "strong"
	}
	var parts []string
	if l.Compute != 0 {
		parts = append(parts, "compute="+formatExp(l.Compute))
	}
	if l.Bytes != 0 {
		parts = append(parts, "bytes="+formatExp(l.Bytes))
	}
	if l.Reps != 0 {
		parts = append(parts, "reps="+formatExp(l.Reps))
	}
	if l.Coll != 0 {
		parts = append(parts, "coll="+formatExp(l.Coll))
	}
	if len(parts) == 0 {
		// Unreachable for parsed laws (the zero law is WeakLaw), kept for
		// hand-built values like Law{Compute: 0}.
		return "weak"
	}
	return strings.Join(parts, ":")
}

// String renders the canonical spelling of the spec: defaults are
// omitted, keys appear in a fixed order, and ParseSpec(s.String()) == s
// for every valid spec (the FuzzSynthSpec fixpoint). The canonical form
// is what cache keys and scenario names embed.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "world=%d", s.World)
	if s.GridW != 0 || s.GridH != 0 {
		fmt.Fprintf(&b, ",grid=%dx%d", s.GridW, s.GridH)
	}
	if s.Law != WeakLaw {
		b.WriteString(",scale=")
		b.WriteString(s.Law.String())
	}
	if s.Seed != 0 {
		fmt.Fprintf(&b, ",seed=%d", s.Seed)
	}
	if s.Jitter != 0 {
		fmt.Fprintf(&b, ",jitter=%s", formatExp(s.Jitter))
	}
	return b.String()
}
