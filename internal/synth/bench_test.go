package synth

import (
	"fmt"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/trace"
)

// BenchmarkSynthGen measures synthetic trace generation throughput: one
// op emits the complete action stream of every rank in the world from a
// model fitted on LU class S at 16 ranks. The streaming cursor must stay
// allocation-free per action, so bytes/op growth is sublinear in actions.
func BenchmarkSynthGen(b *testing.B) {
	perRank, err := npb.RecordAll("lu", "S", 16)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Fit(perRank)
	if err != nil {
		b.Fatal(err)
	}
	for _, world := range []int{256, 4096} {
		b.Run(fmt.Sprintf("world=%d", world), func(b *testing.B) {
			g, err := NewGen(m, Spec{World: world, Law: StrongLaw})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var actions int64
			for i := 0; i < b.N; i++ {
				actions = 0
				for rank := 0; rank < world; rank++ {
					rg, err := g.Rank(rank)
					if err != nil {
						b.Fatal(err)
					}
					for {
						a, ok, err := rg.Next()
						if err != nil {
							b.Fatal(err)
						}
						if !ok {
							break
						}
						if a.Type == trace.CommSize {
							actions-- // keep the count comparable either way
						}
						actions++
					}
				}
			}
			b.ReportMetric(float64(actions), "actions/op")
		})
	}
}

// BenchmarkSynthFit measures model fitting itself (segmentation, grid
// inference, period compression, union merge, self-verification).
func BenchmarkSynthFit(b *testing.B) {
	perRank, err := npb.RecordAll("lu", "S", 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(perRank); err != nil {
			b.Fatal(err)
		}
	}
}
