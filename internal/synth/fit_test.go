package synth

import (
	"bytes"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/trace"
)

// fixture fits a model from the exact recorder output of an NPB benchmark
// and returns both. Fit already self-verifies action-for-action; the
// tests below additionally pin the externally observable properties
// (counts, byte volumes, collective cadence) against the ground truth so
// a regression in the self-check itself cannot slip through.
func fixture(t *testing.T, app, class string, procs int) (*Model, [][]trace.Action) {
	t.Helper()
	perRank, err := npb.RecordAll(app, class, procs)
	if err != nil {
		t.Fatalf("recording %s.%s at %d ranks: %v", app, class, procs, err)
	}
	m, err := Fit(perRank)
	if err != nil {
		t.Fatalf("fitting %s.%s at %d ranks: %v", app, class, procs, err)
	}
	m.App = app + "." + class
	return m, perRank
}

type traceSummary struct {
	actions   int
	byType    [trace.NumTypes]int
	sendBytes float64
	compFlops float64
	collBytes float64
}

func summarize(perRank [][]trace.Action) traceSummary {
	var s traceSummary
	for _, acts := range perRank {
		for _, a := range acts {
			s.actions++
			s.byType[a.Type]++
			switch {
			case a.Type == trace.Send || a.Type == trace.Isend:
				s.sendBytes += a.Volume
			case a.Type == trace.Compute:
				s.compFlops += a.Volume
			case isCollective(a.Type):
				s.collBytes += a.Volume
			}
		}
	}
	return s
}

// TestFitReproducesNPB is the differential pin: regenerating a fitted
// model at the recorded world size must reproduce internal/npb's
// closed-form ground truth exactly — same per-rank action streams, hence
// identical action counts, byte volumes and collective cadence. The
// tolerance is zero by design: generation mirrors the recorder's burst
// flushing, so even boundary ranks with merged compute bursts match.
func TestFitReproducesNPB(t *testing.T) {
	cases := []struct {
		app, class string
		procs      int
	}{
		{"lu", "S", 8},
		{"lu", "S", 16},
		{"lu", "A", 8},
		{"cg", "S", 8},
		{"cg", "S", 16},
		{"cg", "A", 32},
		{"ep", "S", 8},
		{"ep", "A", 16},
	}
	for _, tc := range cases {
		m, perRank := fixture(t, tc.app, tc.class, tc.procs)
		g, err := NewGen(m, DefaultSpec(tc.procs))
		if err != nil {
			t.Fatalf("%s: gen: %v", m.App, err)
		}
		for r, want := range perRank {
			got, err := g.Actions(r)
			if err != nil {
				t.Fatalf("%s rank %d: %v", m.App, r, err)
			}
			if err := sameActions(want, got); err != nil {
				t.Fatalf("%s rank %d diverges from npb ground truth: %v", m.App, r, err)
			}
		}
		ws, gs := summarize(perRank), summarizeGen(t, g)
		if ws.actions != gs.actions || ws.sendBytes != gs.sendBytes ||
			ws.compFlops != gs.compFlops || ws.collBytes != gs.collBytes || ws.byType != gs.byType {
			t.Errorf("%s: summary mismatch:\nrecorded  %+v\ngenerated %+v", m.App, ws, gs)
		}
	}
}

func summarizeGen(t *testing.T, g *Gen) traceSummary {
	t.Helper()
	perRank := make([][]trace.Action, g.World())
	for r := range perRank {
		acts, err := g.Actions(r)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		perRank[r] = acts
	}
	return summarize(perRank)
}

// TestFitGridMatchesNPB pins the inferred decomposition against npb's
// own: LU lays ranks on the power-of-two xdim x ydim grid with xdim >=
// ydim, CG uses npcols x nprows the same way.
func TestFitGridMatchesNPB(t *testing.T) {
	for _, tc := range []struct {
		app   string
		procs int
		w, h  int
	}{
		{"lu", 8, 4, 2},
		{"lu", 16, 4, 4},
		{"cg", 8, 4, 2},
		{"cg", 16, 4, 4},
		{"ep", 8, 8, 1},
	} {
		m, _ := fixture(t, tc.app, "S", tc.procs)
		if m.GridW != tc.w || m.GridH != tc.h {
			t.Errorf("%s at %d ranks: inferred grid %dx%d, npb uses %dx%d",
				tc.app, tc.procs, m.GridW, m.GridH, tc.w, tc.h)
		}
	}
}

// TestFitDirKinds pins the structural reading: LU's halo exchange is a
// 4-point stencil (offsets), CG's partial-sum exchange is a butterfly
// (XOR pairings), EP is communication-free.
func TestFitDirKinds(t *testing.T) {
	lu, _ := fixture(t, "lu", "S", 16)
	for _, d := range lu.Dirs {
		if d.Kind != DirOffset {
			t.Errorf("lu: expected stencil offsets only, got %s", d)
		}
	}
	if len(lu.Dirs) != 4 {
		t.Errorf("lu: expected 4 stencil directions, got %v", lu.Dirs)
	}
	cg, _ := fixture(t, "cg", "S", 16)
	xor := 0
	for _, d := range cg.Dirs {
		if d.Kind == DirXor {
			xor++
		}
	}
	if xor != len(cg.Dirs) || xor != 2 {
		t.Errorf("cg at 16 ranks: expected 2 XOR directions (4-wide butterfly), got %v", cg.Dirs)
	}
	ep, _ := fixture(t, "ep", "S", 8)
	if len(ep.Dirs) != 0 {
		t.Errorf("ep: expected no p2p directions, got %v", ep.Dirs)
	}
}

// TestFitCollectiveCadence pins the collective skeleton: LU class S runs
// its residual allReduce every inorm=50 iterations plus the timestep
// bcasts; CG does 2 dot products per inner iteration plus the outer
// residual; EP is exactly 3 reductions.
func TestFitCollectiveCadence(t *testing.T) {
	count := func(m *Model, typ trace.ActionType) int {
		n := 0
		for _, idx := range m.Script() {
			ph := m.Phases[idx]
			if ph.Coll != nil && ph.Coll.Type == typ {
				n++
			}
		}
		return n
	}
	lu, luRank0 := fixture(t, "lu", "S", 8)
	cg, cgRank0 := fixture(t, "cg", "S", 8)
	ep, epRank0 := fixture(t, "ep", "S", 8)
	for _, tc := range []struct {
		m       *Model
		perRank [][]trace.Action
		typ     trace.ActionType
	}{
		{lu, luRank0, trace.AllReduce},
		{lu, luRank0, trace.Bcast},
		{cg, cgRank0, trace.AllReduce},
		{ep, epRank0, trace.AllReduce},
	} {
		want := 0
		for _, a := range tc.perRank[0] {
			if a.Type == tc.typ {
				want++
			}
		}
		if got := count(tc.m, tc.typ); got != want {
			t.Errorf("%s: script carries %d %s phases, trace has %d", tc.m.App, got, tc.typ, want)
		}
	}
	// CG: 2 allReduce per inner iteration x 25 inner x 15 outer + 15 outer
	// residuals = 765.
	if got := count(cg, trace.AllReduce); got != 765 {
		t.Errorf("cg.S: expected 765 allReduces, got %d", got)
	}
	if got := count(ep, trace.AllReduce); got != 3 {
		t.Errorf("ep.S: expected 3 allReduces, got %d", got)
	}
}

// TestFitCompressesScript checks the model is a compact program, not a
// replayed transcript: LU's five (iterate-50, allReduce) blocks compress
// into a repeated top-level body, and the phase table stays small.
func TestFitCompressesScript(t *testing.T) {
	m, perRank := fixture(t, "lu", "S", 8)
	modelOps := 0
	for _, ph := range m.Phases {
		if ph.Seg != nil {
			modelOps += len(ph.Seg.Pre) + len(ph.Seg.Body) + len(ph.Seg.Tail)
		}
	}
	recorded := 0
	for _, acts := range perRank {
		recorded += len(acts)
	}
	if modelOps*20 > recorded {
		t.Errorf("model holds %d template ops for %d recorded actions — compression failed", modelOps, recorded)
	}
}

// TestFitRejectsUnfittable: traces outside the model's shape must fail
// loudly, not silently misfit — MG's periodic 3D torus wraps around the
// grid and cannot be expressed as bounded offsets.
func TestFitRejectsUnfittable(t *testing.T) {
	perRank, err := npb.RecordAll("mg", "S", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(perRank); err == nil {
		t.Fatal("fitting MG (periodic torus) unexpectedly succeeded")
	}
	// A rank-asymmetric collective skeleton must be refused too.
	bad := [][]trace.Action{
		{{Proc: 0, Type: trace.AllReduce, Peer: -1, Volume: 8, Volume2: 10}},
		{{Proc: 1, Type: trace.AllReduce, Peer: -1, Volume: 8, Volume2: 11}},
	}
	if _, err := Fit(bad); err == nil {
		t.Fatal("fitting a rank-divergent collective skeleton unexpectedly succeeded")
	}
}

// TestFitModelJSONRoundTrip: the model survives its JSON codec.
func TestFitModelJSONRoundTrip(t *testing.T) {
	m, _ := fixture(t, "lu", "S", 8)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatalf("reading model back: %v", err)
	}
	g1, err := NewGen(m, DefaultSpec(32))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGen(back, DefaultSpec(32))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 32; r += 7 {
		a1, err1 := g1.Actions(r)
		a2, err2 := g2.Actions(r)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if err := sameActions(a1, a2); err != nil {
			t.Fatalf("rank %d differs after JSON round trip: %v", r, err)
		}
	}
}
