package synth

import (
	"fmt"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"sort"

	"tireplay/internal/trace"
)

// Fit derives a Model from one recorded trace (one action list per rank).
// The fit is structural and exact: the returned model, regenerated at the
// recorded world size, reproduces every rank's recorded action stream
// action-for-action — Fit verifies this itself and fails loudly when the
// trace does not decompose into the stencil/butterfly + collective-cadence
// shape the model can express (adaptive or master-worker patterns are out
// of scope by the paper's own non-adaptive assumption).
//
// Pipeline: strip comm_size → split every rank at its collectives and
// require the collective skeleton (types and volumes) to agree across
// ranks → infer the rank grid and the direction table from the observed
// p2p pairs → group ranks into classes by their set of present directions
// → compress each class's segment with period detection → merge the class
// templates into one union template per segment (LCS alignment) → verify
// by regenerating all ranks and comparing against the input.
func Fit(perRank [][]trace.Action) (*Model, error) {
	n := len(perRank)
	if n < 1 {
		return nil, fmt.Errorf("synth: fit needs at least one rank")
	}

	// Per-rank segmentation at collective boundaries.
	colls, segs, err := segmentRanks(perRank)
	if err != nil {
		return nil, err
	}

	// Grid and direction inference from the observed p2p pairs.
	gw, gh, dirs, dirOf, err := inferGrid(n, segs)
	if err != nil {
		return nil, err
	}

	// Convert each rank's segments to dir-annotated op streams.
	rankOps, err := annotateRanks(n, gw, segs, dirOf)
	if err != nil {
		return nil, err
	}

	// Rank classes: ranks sharing a direction-presence mask. Every member
	// of a class must replay the identical stream for the class template
	// to stand in for all of them.
	reps, err := classReps(n, rankOps)
	if err != nil {
		return nil, err
	}

	// Per segment: compress each class representative, then merge the
	// class templates into one union segment phase.
	nseg := len(segs[0])
	phases := make([]Phase, 0, 2*nseg)
	script := make([]int, 0, 2*nseg)
	addPhase := func(ph Phase) {
		key := phaseKey(ph)
		for i := range phases {
			if phaseKey(phases[i]) == key {
				script = append(script, i)
				return
			}
		}
		phases = append(phases, ph)
		script = append(script, len(phases)-1)
	}
	for s := 0; s < nseg; s++ {
		seg, err := fitSegment(reps, rankOps, s)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", s, err)
		}
		if err := checkConjugates(seg, dirs); err != nil {
			return nil, fmt.Errorf("segment %d: %w", s, err)
		}
		if seg.Len() > 0 {
			addPhase(Phase{Seg: seg})
		}
		if s < len(colls) {
			c := colls[s]
			addPhase(Phase{Coll: &CollPhase{Type: c.typ, Comm: c.comm, Red: c.red}})
		}
	}

	m := &Model{World: n, GridW: gw, GridH: gh, Dirs: dirs, Phases: phases}
	m.Prologue, m.Body, m.Reps, m.Tail = compressScript(script)
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synth: fitted model invalid: %w", err)
	}
	if err := verifyFit(m, perRank); err != nil {
		return nil, err
	}
	return m, nil
}

// FitDir fits a model from a directory of per-rank trace files
// (SG_process<rank>.trace, .trace.gz and .tib are all resolved).
func FitDir(dir string, ranks int) (*Model, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("synth: fit needs a positive rank count")
	}
	perRank := make([][]trace.Action, ranks)
	for r := range perRank {
		path, err := resolveRankFile(dir, r)
		if err != nil {
			return nil, err
		}
		acts, err := trace.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("synth: reading %s: %w", path, err)
		}
		perRank[r] = acts
	}
	return Fit(perRank)
}

func resolveRankFile(dir string, rank int) (string, error) {
	names := []string{
		trace.ProcessFileName(rank),
		trace.GzipFileName(rank),
		trace.BinaryFileName(rank),
	}
	for _, name := range names {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
	}
	return "", fmt.Errorf("synth: no trace for rank %d in %s (tried %v)", rank, dir, names)
}

// ---------------------------------------------------------------------------
// Segmentation

type collEv struct {
	typ       trace.ActionType
	comm, red float64
}

func isCollective(t trace.ActionType) bool {
	switch t {
	case trace.Bcast, trace.Reduce, trace.AllReduce, trace.Barrier,
		trace.Gather, trace.AllGather, trace.AllToAll, trace.Scatter:
		return true
	}
	return false
}

// segmentRanks strips the leading comm_size, splits every rank's stream at
// its collectives and checks the collective skeleton agrees across ranks.
// segs[r] has len(colls)+1 entries (a possibly-empty op run between
// consecutive collectives).
func segmentRanks(perRank [][]trace.Action) ([]collEv, [][][]trace.Action, error) {
	n := len(perRank)
	var colls []collEv
	segs := make([][][]trace.Action, n)
	for r, acts := range perRank {
		if len(acts) > 0 && acts[0].Type == trace.CommSize {
			if int(acts[0].Volume) != n {
				return nil, nil, fmt.Errorf("synth: rank %d declares comm_size %g in a %d-rank trace",
					r, acts[0].Volume, n)
			}
			acts = acts[1:]
		}
		var rcolls []collEv
		rsegs := [][]trace.Action{nil}
		for i, a := range acts {
			switch {
			case a.Type == trace.CommSize:
				return nil, nil, fmt.Errorf("synth: rank %d has comm_size at action %d (only a leading one is supported)", r, i)
			case isCollective(a.Type):
				rcolls = append(rcolls, collEv{typ: a.Type, comm: a.Volume, red: a.Volume2})
				rsegs = append(rsegs, nil)
			default:
				rsegs[len(rsegs)-1] = append(rsegs[len(rsegs)-1], a)
			}
		}
		if r == 0 {
			colls = rcolls
		} else if err := sameSkeleton(colls, rcolls, r); err != nil {
			return nil, nil, err
		}
		segs[r] = rsegs
	}
	return colls, segs, nil
}

func sameSkeleton(want, got []collEv, rank int) error {
	if len(want) != len(got) {
		return fmt.Errorf("synth: rank %d has %d collectives, rank 0 has %d — the collective skeleton must agree",
			rank, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("synth: collective %d disagrees between rank 0 (%s %g/%g) and rank %d (%s %g/%g)",
				i, want[i].typ, want[i].comm, want[i].red, rank, got[i].typ, got[i].comm, got[i].red)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Grid and direction inference

type delta struct{ dx, dy int }

func isP2P(t trace.ActionType) bool {
	switch t {
	case trace.Send, trace.Isend, trace.Recv, trace.Irecv:
		return true
	}
	return false
}

// inferGrid tries every divisor pair (w, h) of n as the rank grid,
// classifies each observed (rank, peer) relation as a grid offset or a
// same-row XOR pairing, and keeps the grid minimizing the total stencil
// cost (sum of |dx|+|dy| per offset direction, 2 per XOR direction) — the
// heuristic that makes the true decomposition win over accidental ones
// (a wrong width splinters one logical direction into several expensive
// deltas). Ties prefer the squarer grid, then the wider one, matching
// npb's xdim >= ydim convention.
func inferGrid(n int, segs [][][]trace.Action) (gw, gh int, dirs []Dir, dirOf map[delta]int, err error) {
	pairs := map[[2]int]struct{}{}
	for r, rsegs := range segs {
		for _, seg := range rsegs {
			for _, a := range seg {
				if isP2P(a.Type) {
					if a.Peer < 0 || a.Peer >= n || a.Peer == r {
						return 0, 0, nil, nil, fmt.Errorf("synth: rank %d %s peer %d out of range", r, a.Type, a.Peer)
					}
					pairs[[2]int{r, a.Peer}] = struct{}{}
				}
			}
		}
	}
	if len(pairs) == 0 {
		return n, 1, nil, map[delta]int{}, nil
	}

	type fitCand struct {
		w, h   int
		fit    dirFit
		aspect float64
	}
	var best *fitCand
	for w := 1; w <= n; w++ {
		if n%w != 0 {
			continue
		}
		h := n / w
		fit := classifyDirs(w, h, pairs)
		aspect := math.Abs(math.Log(float64(w) / float64(h)))
		better := best == nil ||
			(fit.feasible && !best.fit.feasible) ||
			(fit.feasible == best.fit.feasible &&
				(fit.cost < best.fit.cost ||
					(fit.cost == best.fit.cost && aspect < best.aspect-1e-12) ||
					(fit.cost == best.fit.cost && math.Abs(aspect-best.aspect) <= 1e-12 && w > best.w)))
		if better {
			best = &fitCand{w: w, h: h, fit: fit, aspect: aspect}
		}
	}
	return best.w, best.h, best.fit.dirs, best.fit.dirOf, nil
}

type dirFit struct {
	cost     int
	feasible bool
	dirs     []Dir
	dirOf    map[delta]int
}

// classifyDirs reads the observed pairs on a candidate w x h grid. The
// load-bearing notion is *feasibility*: emission later gives a rank an op
// exactly when the op's direction exists at the rank's grid position, so
// a reading is feasible only if every rank's observed use of a direction
// coincides with its geometric presence. Same-row power-of-two deltas are
// ambiguous between a +/-d stencil pair and a one-bit butterfly (XOR)
// pairing; each magnitude is decided independently — feasible reading
// first, then the cheaper, then the stencil (the recorded-size output is
// identical either way, and stencils are the common case).
func classifyDirs(w, h int, pairs map[[2]int]struct{}) dirFit {
	// Group pairs by grid delta and record which ranks use which deltas.
	byDelta := map[delta][][2]int{}
	uses := map[int]map[delta]bool{}
	for p := range pairs {
		r, q := p[0], p[1]
		d := delta{dx: q%w - r%w, dy: q/w - r/w}
		byDelta[d] = append(byDelta[d], p)
		if uses[r] == nil {
			uses[r] = map[delta]bool{}
		}
		uses[r][d] = true
	}

	// A delta's offset reading is feasible iff every rank that *could*
	// exchange in that direction does: usage must equal geometric
	// presence across the ranks that use any direction at all.
	offsetFeasible := func(d delta) bool {
		for r, has := range uses {
			col, row := r%w, r/w
			present := col+d.dx >= 0 && col+d.dx < w && row+d.dy >= 0 && row+d.dy < h
			if has[d] != present {
				return false
			}
		}
		return true
	}
	// The XOR reading of magnitude d pairs col with col^d within the row.
	xorFeasible := func(mag int) bool {
		for r, has := range uses {
			col := r % w
			present := col^mag < w
			if (has[delta{dx: mag}] || has[delta{dx: -mag}]) != present {
				return false
			}
		}
		return true
	}
	// XOR is structurally possible for a magnitude only when every pair's
	// columns differ in exactly that bit and no rank pairs both ways (a
	// stencil's interior ranks exchange with both neighbours).
	xorPossible := func(mag int) bool {
		all := append(append([][2]int{}, byDelta[delta{dx: mag}]...), byDelta[delta{dx: -mag}]...)
		for _, p := range all {
			if p[0]%w^p[1]%w != mag {
				return false
			}
		}
		for _, has := range uses {
			if has[delta{dx: mag}] && has[delta{dx: -mag}] {
				return false
			}
		}
		return true
	}

	fit := dirFit{feasible: true, dirOf: map[delta]int{}}
	var offsets []delta
	xorMag := map[int]bool{}
	for d := range byDelta {
		if d.dy != 0 || d.dx < 0 || d.dx&(d.dx-1) != 0 {
			if d.dy != 0 || !(d.dx < 0 && xorMag[-d.dx]) {
				offsets = append(offsets, d)
			}
			continue
		}
		// Same-row power-of-two magnitude: decide offset vs XOR once for
		// the +/- pair (the -dx delta, if seen first, waits for this).
		mag := d.dx
		offCost := abs(mag)
		if _, seen := byDelta[delta{dx: -mag}]; seen {
			offCost *= 2
		}
		offOK := offsetFeasible(delta{dx: mag}) && offsetFeasible(delta{dx: -mag})
		xorOK := xorPossible(mag) && xorFeasible(mag)
		if xorOK && (!offOK || 2 < offCost) {
			xorMag[mag] = true
		} else {
			offsets = append(offsets, d)
			if !offOK {
				fit.feasible = false
			}
			continue
		}
	}
	// Second pass: -dx halves of XOR magnitudes decided after they were
	// scanned, and feasibility of the plain offsets.
	final := offsets[:0]
	for _, d := range offsets {
		if d.dy == 0 && d.dx < 0 && xorMag[-d.dx] {
			continue
		}
		final = append(final, d)
		if !offsetFeasible(d) {
			fit.feasible = false
		}
	}
	offsets = final

	// Build the direction table deterministically: offsets sorted by
	// (dy, dx), then XOR dirs by bit.
	sort.Slice(offsets, func(i, j int) bool {
		if offsets[i].dy != offsets[j].dy {
			return offsets[i].dy < offsets[j].dy
		}
		return offsets[i].dx < offsets[j].dx
	})
	var xbits []int
	for mag := range xorMag {
		xbits = append(xbits, bits.TrailingZeros(uint(mag)))
	}
	sort.Ints(xbits)

	for _, d := range offsets {
		fit.dirOf[d] = len(fit.dirs)
		fit.dirs = append(fit.dirs, Dir{Kind: DirOffset, DX: d.dx, DY: d.dy})
		fit.cost += abs(d.dx) + abs(d.dy)
	}
	for _, b := range xbits {
		mag := 1 << b
		fit.dirOf[delta{dx: mag}] = len(fit.dirs)
		fit.dirOf[delta{dx: -mag}] = len(fit.dirs)
		fit.dirs = append(fit.dirs, Dir{Kind: DirXor, Bit: b})
		fit.cost += 2
	}
	return fit
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ---------------------------------------------------------------------------
// Dir annotation and rank classes

// fitOp is the internal symbol the compressor works on: an op template
// with its direction resolved and its volume pinned.
type fitOp struct {
	typ trace.ActionType
	dir int
	vol float64
}

// annotateRanks converts each rank's segments into fitOp streams: p2p
// peers become direction indices and each wait is annotated with the
// direction of the request it completes (FIFO order, mirroring the
// replay's oldest-request-first semantics), so that filtering a class
// template by direction presence keeps waits paired with their requests.
func annotateRanks(n, gw int, segs [][][]trace.Action, dirOf map[delta]int) ([][][]fitOp, error) {
	out := make([][][]fitOp, n)
	for r, rsegs := range segs {
		var fifo []int // dirs of pending Isend/Irecv requests
		out[r] = make([][]fitOp, len(rsegs))
		for s, seg := range rsegs {
			ops := make([]fitOp, 0, len(seg))
			for i, a := range seg {
				switch a.Type {
				case trace.Compute:
					ops = append(ops, fitOp{typ: a.Type, dir: -1, vol: a.Volume})
				case trace.Send, trace.Isend, trace.Recv, trace.Irecv:
					d := delta{dx: a.Peer%gw - r%gw, dy: a.Peer/gw - r/gw}
					di, ok := dirOf[d]
					if !ok {
						return nil, fmt.Errorf("synth: internal: rank %d peer %d has no direction", r, a.Peer)
					}
					vol := a.Volume
					if a.Type == trace.Recv || a.Type == trace.Irecv {
						vol = 0 // receive volumes are redundant; the sender's is authoritative
					}
					ops = append(ops, fitOp{typ: a.Type, dir: di, vol: vol})
					if a.Type == trace.Isend || a.Type == trace.Irecv {
						fifo = append(fifo, di)
					}
				case trace.Wait:
					if len(fifo) == 0 {
						return nil, fmt.Errorf("synth: rank %d waits at segment %d action %d with no pending request", r, s, i)
					}
					ops = append(ops, fitOp{typ: a.Type, dir: fifo[0]})
					fifo = fifo[1:]
				case trace.WaitAll:
					ops = append(ops, fitOp{typ: a.Type, dir: -1})
					fifo = fifo[:0]
				default:
					return nil, fmt.Errorf("synth: rank %d has unsupported action %s inside a segment", r, a.Type)
				}
			}
			out[r][s] = ops
		}
		if len(fifo) != 0 {
			return nil, fmt.Errorf("synth: rank %d ends with %d unwaited requests", r, len(fifo))
		}
	}
	return out, nil
}

// classReps groups ranks by direction-presence mask and returns one
// representative per class (the lowest rank), ordered by descending
// direction count so the richest class seeds the union merge. Every rank
// in a class must replay the identical stream.
func classReps(n int, rankOps [][][]fitOp) ([]int, error) {
	mask := func(r int) uint64 {
		var m uint64
		for _, seg := range rankOps[r] {
			for _, op := range seg {
				if op.dir >= 0 {
					m |= 1 << uint(op.dir)
				}
			}
		}
		return m
	}
	byMask := map[uint64]int{} // mask -> representative (lowest rank)
	var order []uint64
	for r := 0; r < n; r++ {
		m := mask(r)
		rep, ok := byMask[m]
		if !ok {
			byMask[m] = r
			order = append(order, m)
			continue
		}
		// Class-consistency: the rank must match its representative.
		for s := range rankOps[r] {
			if err := sameOps(rankOps[rep][s], rankOps[r][s]); err != nil {
				return nil, fmt.Errorf("synth: rank %d differs from its class representative %d in segment %d: %w",
					r, rep, s, err)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		pi, pj := bits.OnesCount64(order[i]), bits.OnesCount64(order[j])
		if pi != pj {
			return pi > pj
		}
		return byMask[order[i]] < byMask[order[j]]
	})
	reps := make([]int, len(order))
	for i, m := range order {
		reps[i] = byMask[m]
	}
	return reps, nil
}

func sameOps(a, b []fitOp) error {
	if len(a) != len(b) {
		return fmt.Errorf("op counts differ (%d vs %d)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("op %d differs (%v vs %v)", i, a[i], b[i])
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Period detection

// findPeriod compresses ids into prologue + body*reps + tail: it scans
// prologue lengths and, for each, finds the longest prefix of the
// remainder that is an exact whole-multiple repetition (via the KMP
// prefix function), keeping the split that covers the most symbols.
// Returns reps = 0 when nothing repeats (everything lands in preLen).
func findPeriod(ids []int32) (preLen, period, reps int) {
	L := len(ids)
	maxPre := L / 4
	if maxPre > 256 {
		maxPre = 256
	}
	bestCovered := 0
	preLen = L
	pi := make([]int, L)
	for a := 0; a <= maxPre; a++ {
		s := ids[a:]
		if len(s) < 2 || bestCovered >= len(s) {
			break
		}
		// Prefix function of s.
		pf := pi[:len(s)]
		pf[0] = 0
		for i := 1; i < len(s); i++ {
			k := pf[i-1]
			for k > 0 && s[i] != s[k] {
				k = pf[k-1]
			}
			if s[i] == s[k] {
				k++
			}
			pf[i] = k
		}
		// Longest whole-multiple periodic prefix.
		for i := len(s) - 1; i > 0; i-- {
			if i+1 <= bestCovered {
				break
			}
			p := (i + 1) - pf[i]
			if p > (i+1)/2 || (i+1)%p != 0 {
				continue
			}
			bestCovered = i + 1
			preLen, period, reps = a, p, (i+1)/p
			break
		}
	}
	if bestCovered == 0 {
		return L, 0, 0
	}
	return preLen, period, reps
}

// ---------------------------------------------------------------------------
// Segment template fitting and merging

type segTemplate struct {
	pre, body, tail []fitOp
	reps            int
}

func compressOps(ops []fitOp) segTemplate {
	ids := make([]int32, len(ops))
	seen := map[fitOp]int32{}
	for i, op := range ops {
		id, ok := seen[op]
		if !ok {
			id = int32(len(seen))
			seen[op] = id
		}
		ids[i] = id
	}
	pre, p, reps := findPeriod(ids)
	if reps < 2 {
		return segTemplate{pre: ops}
	}
	return segTemplate{
		pre:  ops[:pre],
		body: ops[pre : pre+p],
		reps: reps,
		tail: ops[pre+p*reps:],
	}
}

func flatten(t segTemplate) []fitOp {
	out := make([]fitOp, 0, len(t.pre)+t.reps*len(t.body)+len(t.tail))
	out = append(out, t.pre...)
	for i := 0; i < t.reps; i++ {
		out = append(out, t.body...)
	}
	return append(out, t.tail...)
}

// fitSegment builds the union template for segment s across all rank
// classes: each class representative's stream is period-compressed, and
// the compressed parts are merged pairwise with an LCS alignment (ops
// match on type and direction; the earlier — richer — class's volume
// wins). When repetition counts disagree the streams are merged flat.
// Correctness does not rest on this heuristic: verifyFit regenerates
// every rank afterwards and fails the fit on any divergence.
func fitSegment(reps []int, rankOps [][][]fitOp, s int) (*SegPhase, error) {
	tpls := make([]segTemplate, len(reps))
	for i, r := range reps {
		tpls[i] = compressOps(rankOps[r][s])
	}
	// Repetition counts must agree among the classes that found any;
	// otherwise fall back to flat streams.
	agreed := 0
	flat := false
	for _, t := range tpls {
		if t.reps == 0 || len(flatten(t)) == 0 {
			continue
		}
		if agreed == 0 {
			agreed = t.reps
		} else if t.reps != agreed {
			flat = true
		}
	}
	if flat {
		for i := range tpls {
			tpls[i] = segTemplate{pre: flatten(tpls[i])}
		}
		agreed = 0
	}
	// A class whose stream did not decompose (reps 0, e.g. an empty or
	// aperiodic boundary stream) merges into the prologue only when the
	// union itself is flat; against a periodic union its stream must
	// align with pre+body+tail, which flattening the union would lose —
	// flatten everything in that case too.
	if agreed > 0 {
		for _, t := range tpls {
			if t.reps == 0 && len(t.pre) > 0 {
				for i := range tpls {
					tpls[i] = segTemplate{pre: flatten(tpls[i])}
				}
				agreed = 0
				break
			}
		}
	}
	union := tpls[0]
	var err error
	for _, t := range tpls[1:] {
		if union.pre, err = lcsMerge(union.pre, t.pre); err != nil {
			return nil, err
		}
		if union.body, err = lcsMerge(union.body, t.body); err != nil {
			return nil, err
		}
		if union.tail, err = lcsMerge(union.tail, t.tail); err != nil {
			return nil, err
		}
	}
	union.reps = agreed
	seg := &SegPhase{
		Pre:  toModelOps(union.pre),
		Body: toModelOps(union.body),
		Reps: union.reps,
		Tail: toModelOps(union.tail),
	}
	return seg, nil
}

func toModelOps(ops []fitOp) []Op {
	if len(ops) == 0 {
		return nil
	}
	out := make([]Op, len(ops))
	for i, op := range ops {
		out[i] = Op{Type: op.typ, Dir: op.dir, Vol: op.vol}
	}
	return out
}

const lcsCellCap = 16 << 20

// lcsMerge returns the shortest common supersequence of a and b where ops
// match on (type, dir); matched positions keep a's volume (a comes from
// the richer class). Between matches, a's extra ops precede b's.
func lcsMerge(a, b []fitOp) ([]fitOp, error) {
	if len(a) == 0 {
		return b, nil
	}
	if len(b) == 0 || sameOps(a, b) == nil {
		return a, nil
	}
	m, n := len(a), len(b)
	if m*n > lcsCellCap {
		return nil, fmt.Errorf("synth: class streams too large to align (%d x %d ops)", m, n)
	}
	match := func(x, y fitOp) bool { return x.typ == y.typ && x.dir == y.dir }
	// dp[i][j] = LCS length of a[i:], b[j:].
	dp := make([]int32, (m+1)*(n+1))
	idx := func(i, j int) int { return i*(n+1) + j }
	for i := m - 1; i >= 0; i-- {
		for j := n - 1; j >= 0; j-- {
			if match(a[i], b[j]) {
				dp[idx(i, j)] = dp[idx(i+1, j+1)] + 1
			} else if dp[idx(i+1, j)] >= dp[idx(i, j+1)] {
				dp[idx(i, j)] = dp[idx(i+1, j)]
			} else {
				dp[idx(i, j)] = dp[idx(i, j+1)]
			}
		}
	}
	out := make([]fitOp, 0, m+n-int(dp[idx(0, 0)]))
	i, j := 0, 0
	for i < m && j < n {
		switch {
		case match(a[i], b[j]) && dp[idx(i, j)] == dp[idx(i+1, j+1)]+1:
			out = append(out, a[i])
			i++
			j++
		case dp[idx(i+1, j)] >= dp[idx(i, j+1)]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, nil
}

// checkConjugates enforces the invariant that makes scaled worlds
// replayable: within each segment component, every direction's send count
// must equal the conjugate direction's receive count, so any pair of
// neighbours — including pairs that only exist at larger worlds — posts
// matched sends and receives.
func checkConjugates(seg *SegPhase, dirs []Dir) error {
	conj := make([]int, len(dirs))
	for i, d := range dirs {
		conj[i] = -1
		c := d.Conjugate()
		for j, e := range dirs {
			if e == c {
				conj[i] = j
				break
			}
		}
	}
	check := func(ops []Op, part string) error {
		sends := make([]int, len(dirs))
		recvs := make([]int, len(dirs))
		for _, op := range ops {
			switch op.Type {
			case trace.Send, trace.Isend:
				sends[op.Dir]++
			case trace.Recv, trace.Irecv:
				recvs[op.Dir]++
			}
		}
		for i := range dirs {
			if sends[i] == 0 {
				continue
			}
			if conj[i] < 0 || recvs[conj[i]] != sends[i] {
				got := 0
				if conj[i] >= 0 {
					got = recvs[conj[i]]
				}
				return fmt.Errorf("synth: %s sends %d via %s but receives %d via the conjugate direction — the union template is unbalanced, so pairs appearing at larger worlds would post unmatched messages (all-boundary recordings, e.g. a 2x2 grid, often cannot pin the template; refit from a trace with at least one higher-degree rank class)",
					part, sends[i], dirs[i], got)
			}
		}
		return nil
	}
	if err := check(seg.Pre, "prologue"); err != nil {
		return err
	}
	if err := check(seg.Body, "body"); err != nil {
		return err
	}
	return check(seg.Tail, "tail")
}

// ---------------------------------------------------------------------------
// Script compression, dedup and verification

func phaseKey(ph Phase) string {
	if ph.Coll != nil {
		return fmt.Sprintf("c|%d|%x|%x", ph.Coll.Type,
			math.Float64bits(ph.Coll.Comm), math.Float64bits(ph.Coll.Red))
	}
	key := fmt.Sprintf("s|%d|", ph.Seg.Reps)
	for _, ops := range [][]Op{ph.Seg.Pre, ph.Seg.Body, ph.Seg.Tail} {
		for _, op := range ops {
			key += fmt.Sprintf("%d.%d.%x,", op.Type, op.Dir, math.Float64bits(op.Vol))
		}
		key += ";"
	}
	return key
}

func compressScript(script []int) (prologue, body []int, reps int, tail []int) {
	ids := make([]int32, len(script))
	for i, s := range script {
		ids[i] = int32(s)
	}
	pre, p, r := findPeriod(ids)
	if r < 2 {
		return script, nil, 0, nil
	}
	return script[:pre], script[pre : pre+p], r, script[pre+p*r:]
}

// verifyFit regenerates every rank at the recorded size and compares it
// action-for-action against the input trace. This is the load-bearing
// correctness check of the whole fit: everything upstream is heuristic,
// this is exact.
func verifyFit(m *Model, perRank [][]trace.Action) error {
	g, err := NewGen(m, Spec{World: m.World, GridW: m.GridW, GridH: m.GridH})
	if err != nil {
		return fmt.Errorf("synth: fitted model does not instantiate: %w", err)
	}
	for r, want := range perRank {
		got, err := g.Actions(r)
		if err != nil {
			return fmt.Errorf("synth: regenerating rank %d: %w", r, err)
		}
		if len(want) == 0 || want[0].Type != trace.CommSize {
			// Input had no comm_size preamble; drop the generated one.
			got = got[1:]
		}
		if err := sameActions(want, got); err != nil {
			return fmt.Errorf("synth: fit does not reproduce rank %d: %w (the trace does not decompose into the model's stencil+collective shape)", r, err)
		}
	}
	return nil
}

// sameActions compares a recorded stream against a regenerated one.
// Volumes are compared exactly for the kinds the model pins (compute,
// sends, collectives); receive-side volumes are advisory in the format
// and ignored, as are the flag-like fields.
func sameActions(want, got []trace.Action) error {
	if len(want) != len(got) {
		return fmt.Errorf("action counts differ (recorded %d, regenerated %d)", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Type != g.Type {
			return fmt.Errorf("action %d: recorded %s, regenerated %s", i, w.Type, g.Type)
		}
		if isP2P(w.Type) && w.Peer != g.Peer {
			return fmt.Errorf("action %d (%s): recorded peer %d, regenerated %d", i, w.Type, w.Peer, g.Peer)
		}
		switch w.Type {
		case trace.Recv, trace.Irecv, trace.Wait, trace.WaitAll, trace.Barrier:
			continue
		}
		if w.Volume != g.Volume || w.Volume2 != g.Volume2 {
			return fmt.Errorf("action %d (%s): recorded volume %g/%g, regenerated %g/%g",
				i, w.Type, w.Volume, w.Volume2, g.Volume, g.Volume2)
		}
	}
	return nil
}
