package synth

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"tireplay/internal/trace"
)

// Gen instantiates a Model at a target world size described by a Spec.
// A Gen is immutable once built and safe for concurrent use: every rank's
// stream comes from its own RankGen cursor, so a sweep can generate 16k
// rank streams in parallel without sharing mutable state. Generation is
// deterministic and byte-reproducible: the same (model, spec) pair always
// yields the same traces, whatever the worker count.
type Gen struct {
	m    *Model
	spec Spec

	world, gw, gh int
	script        []int // expanded top-level phase script
	segReps       []int // effective SegPhase reps per phase index

	compScale float64
	byteScale float64
	collScale float64
}

// NewGen validates the model/spec pair and resolves the target grid and
// scaling factors.
func NewGen(m *Model, spec Spec) (*Gen, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if spec.World <= 0 {
		return nil, fmt.Errorf("synth: spec needs a positive world, got %d", spec.World)
	}
	if spec.Jitter < 0 || spec.Jitter >= 1 || math.IsNaN(spec.Jitter) {
		return nil, fmt.Errorf("synth: jitter %g outside [0,1)", spec.Jitter)
	}
	gw, gh, err := chooseGrid(m, spec)
	if err != nil {
		return nil, err
	}
	rho := float64(spec.World) / float64(m.World)
	g := &Gen{
		m:         m,
		spec:      spec,
		world:     spec.World,
		gw:        gw,
		gh:        gh,
		compScale: math.Pow(rho, spec.Law.Compute),
		byteScale: math.Pow(rho, spec.Law.Bytes),
		collScale: math.Pow(rho, spec.Law.Coll),
	}
	// The reps law stretches the outermost repetition structure: the
	// top-level script body when the model has one, otherwise the
	// per-segment repeat counts (apps like LU keep their whole iteration
	// loop inside segment phases, so the script body is empty).
	repsScale := math.Pow(rho, spec.Law.Reps)
	scaleReps := func(n int) int {
		s := int(math.Round(float64(n) * repsScale))
		if s < 1 {
			s = 1
		}
		return s
	}
	reps := m.Reps
	scriptScaled := m.Reps > 0 && len(m.Body) > 0
	if scriptScaled {
		reps = scaleReps(m.Reps)
	}
	g.segReps = make([]int, len(m.Phases))
	for i, ph := range m.Phases {
		if ph.Seg == nil {
			continue
		}
		g.segReps[i] = ph.Seg.Reps
		if !scriptScaled && ph.Seg.Reps > 0 {
			g.segReps[i] = scaleReps(ph.Seg.Reps)
		}
	}
	g.script = append(g.script, m.Prologue...)
	for i := 0; i < reps; i++ {
		g.script = append(g.script, m.Body...)
	}
	g.script = append(g.script, m.Tail...)
	return g, nil
}

// World returns the target world size.
func (g *Gen) World() int { return g.world }

// Grid returns the resolved target rank grid.
func (g *Gen) Grid() (w, h int) { return g.gw, g.gh }

// chooseGrid resolves the target rank grid: an explicit spec grid wins;
// a 1D recording stays 1D; otherwise the divisor pair of the target world
// closest to the recorded aspect ratio is chosen (wider on ties, matching
// npb's xdim >= ydim). Models with XOR (butterfly) directions prefer
// power-of-two widths so the pairing stays total on each row.
func chooseGrid(m *Model, spec Spec) (int, int, error) {
	if spec.GridW != 0 || spec.GridH != 0 {
		if spec.GridW <= 0 || spec.GridH <= 0 || spec.GridW*spec.GridH != spec.World {
			return 0, 0, fmt.Errorf("synth: grid %dx%d does not tile world %d",
				spec.GridW, spec.GridH, spec.World)
		}
		return spec.GridW, spec.GridH, nil
	}
	if m.GridH == 1 {
		return spec.World, 1, nil
	}
	if m.GridW == 1 {
		return 1, spec.World, nil
	}
	hasXor := false
	for _, d := range m.Dirs {
		if d.Kind == DirXor {
			hasXor = true
		}
	}
	want := math.Log(float64(m.GridW) / float64(m.GridH))
	bestW, bestDev := 0, math.Inf(1)
	pick := func(w int) {
		dev := math.Abs(math.Log(float64(w)/float64(spec.World/w)) - want)
		if dev < bestDev-1e-12 || (dev <= bestDev+1e-12 && w > bestW) {
			bestW, bestDev = w, dev
		}
	}
	for w := 1; w <= spec.World; w++ {
		if spec.World%w != 0 {
			continue
		}
		if hasXor && w&(w-1) != 0 {
			continue // keep butterflies total: power-of-two rows only
		}
		pick(w)
	}
	if bestW == 0 {
		// No power-of-two divisor matched (odd world with XOR dirs);
		// fall back to the plain aspect search.
		for w := 1; w <= spec.World; w++ {
			if spec.World%w == 0 {
				pick(w)
			}
		}
	}
	return bestW, spec.World / bestW, nil
}

// Actions materialises one rank's synthetic stream.
func (g *Gen) Actions(rank int) ([]trace.Action, error) {
	rg, err := g.Rank(rank)
	if err != nil {
		return nil, err
	}
	var out []trace.Action
	for {
		a, ok, err := rg.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, a)
	}
}

// WriteDir writes every rank's stream into dir as per-process trace files
// (SG_process<rank>.trace, or .tib when binary is set), creating dir if
// needed. Returns the written file paths in rank order.
func (g *Gen) WriteDir(dir string, binary bool) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, 0, g.world)
	for rank := 0; rank < g.world; rank++ {
		name := trace.ProcessFileName(rank)
		if binary {
			name = trace.BinaryFileName(rank)
		}
		path := filepath.Join(dir, name)
		if err := g.writeRank(path, rank, binary); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func (g *Gen) writeRank(path string, rank int, binary bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rg, err := g.Rank(rank)
	if err != nil {
		f.Close()
		return err
	}
	var write func(trace.Action) error
	var flush func() error
	if binary {
		bw := trace.NewBinaryWriter(f)
		write, flush = bw.Write, bw.Flush
	} else {
		tw := trace.NewWriter(f)
		write, flush = tw.Write, tw.Flush
	}
	for {
		a, ok, err := rg.Next()
		if err != nil {
			f.Close()
			return err
		}
		if !ok {
			break
		}
		if err := write(a); err != nil {
			f.Close()
			return err
		}
	}
	if err := flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ---------------------------------------------------------------------------
// Per-rank streaming cursor

// RankGen streams one rank's synthetic actions. It implements the replay
// engine's Source interface (Next() (trace.Action, bool, error)) so a
// replay can consume synthetic ranks without materialising them; a 16k
// rank stream costs a fixed few-hundred-byte cursor, not a trace file.
// Steady-state Next() allocates nothing.
type RankGen struct {
	g         *Gen
	rank      int
	col, row  int
	peers     []int32 // peer rank per direction, -1 when absent
	phaseIdx  int
	part      int // 0 pre, 1 body, 2 tail
	opIdx     int
	rep       int
	collComp  bool // collective phase: compute burst already folded in
	pending   float64
	pendReqs  int
	staged    trace.Action
	hasStaged bool
	sentSize  bool
	done      bool
	rng       splitmix64
}

// Rank returns a fresh streaming cursor for one rank.
func (g *Gen) Rank(rank int) (*RankGen, error) {
	if rank < 0 || rank >= g.world {
		return nil, fmt.Errorf("synth: rank %d outside world of size %d", rank, g.world)
	}
	col, row := rank%g.gw, rank/g.gw
	r := &RankGen{
		g:     g,
		rank:  rank,
		col:   col,
		row:   row,
		peers: make([]int32, len(g.m.Dirs)),
		rng:   splitmix64{state: g.spec.Seed ^ (uint64(rank)+1)*0x9E3779B97F4A7C15},
	}
	for i, d := range g.m.Dirs {
		r.peers[i] = -1
		switch d.Kind {
		case DirOffset:
			c, rw := col+d.DX, row+d.DY
			if c >= 0 && c < g.gw && rw >= 0 && rw < g.gh {
				r.peers[i] = int32(rw*g.gw + c)
			}
		case DirXor:
			c := col ^ (1 << d.Bit)
			if c < g.gw {
				r.peers[i] = int32(row*g.gw + c)
			}
		}
	}
	return r, nil
}

// Next returns the rank's next action. The stream opens with comm_size
// and coalesces consecutive compute volumes into single bursts, exactly
// mirroring how the acquisition recorder flushes pending flops before
// each MPI call — this is what makes regenerated boundary ranks
// byte-identical to recorded ones.
func (r *RankGen) Next() (trace.Action, bool, error) {
	if !r.sentSize {
		r.sentSize = true
		return trace.Action{Proc: r.rank, Type: trace.CommSize, Peer: -1, Volume: float64(r.g.world)}, true, nil
	}
	if r.hasStaged {
		a := r.staged
		r.hasStaged = false
		return a, true, nil
	}
	if r.done {
		return trace.Action{}, false, nil
	}
	for {
		a, ok := r.rawNext()
		if !ok {
			r.done = true
			if r.pending > 0 {
				burst := r.pending
				r.pending = 0
				return trace.Action{Proc: r.rank, Type: trace.Compute, Peer: -1, Volume: burst}, true, nil
			}
			return trace.Action{}, false, nil
		}
		if a.Type == trace.Compute {
			r.pending += a.Volume
			continue
		}
		if r.pending > 0 {
			r.staged = a
			r.hasStaged = true
			burst := r.pending
			r.pending = 0
			return trace.Action{Proc: r.rank, Type: trace.Compute, Peer: -1, Volume: burst}, true, nil
		}
		return a, true, nil
	}
}

// rawNext yields the next surviving (dir-filtered, scaled) action before
// compute coalescing.
func (r *RankGen) rawNext() (trace.Action, bool) {
	g := r.g
	for {
		if r.phaseIdx >= len(g.script) {
			return trace.Action{}, false
		}
		ph := &g.m.Phases[g.script[r.phaseIdx]]
		if ph.Coll != nil {
			c := ph.Coll
			if c.Comp > 0 && !r.collComp {
				r.collComp = true
				return trace.Action{Proc: r.rank, Type: trace.Compute, Peer: -1, Volume: c.Comp * g.compScale}, true
			}
			r.collComp = false
			r.phaseIdx++
			return trace.Action{
				Proc: r.rank, Type: c.Type, Peer: -1,
				Volume: c.Comm * g.collScale, Volume2: c.Red * g.compScale,
			}, true
		}
		seg := ph.Seg
		var ops []Op
		switch r.part {
		case 0:
			ops = seg.Pre
		case 1:
			ops = seg.Body
		default:
			ops = seg.Tail
		}
		if r.opIdx >= len(ops) {
			segR := g.segReps[g.script[r.phaseIdx]]
			switch r.part {
			case 0:
				r.opIdx = 0
				if segR > 0 && len(seg.Body) > 0 {
					r.part, r.rep = 1, 0
				} else {
					r.part = 2
				}
			case 1:
				r.opIdx = 0
				r.rep++
				if r.rep >= segR {
					r.part = 2
				}
			default:
				r.part, r.opIdx, r.rep = 0, 0, 0
				r.phaseIdx++
			}
			continue
		}
		op := ops[r.opIdx]
		r.opIdx++
		if a, ok := r.emitOp(op); ok {
			return a, true
		}
	}
}

func (r *RankGen) emitOp(op Op) (trace.Action, bool) {
	g := r.g
	switch op.Type {
	case trace.Compute:
		vol := op.Vol * g.compScale
		if g.spec.Jitter > 0 {
			vol *= 1 + g.spec.Jitter*(2*r.rng.float64()-1)
		}
		return trace.Action{Proc: r.rank, Type: trace.Compute, Peer: -1, Volume: vol}, true
	case trace.Send, trace.Isend:
		p := r.peers[op.Dir]
		if p < 0 {
			return trace.Action{}, false
		}
		if op.Type == trace.Isend {
			r.pendReqs++
		}
		return trace.Action{Proc: r.rank, Type: op.Type, Peer: int(p), Volume: op.Vol * g.byteScale}, true
	case trace.Recv, trace.Irecv:
		p := r.peers[op.Dir]
		if p < 0 {
			return trace.Action{}, false
		}
		if op.Type == trace.Irecv {
			r.pendReqs++
		}
		return trace.Action{Proc: r.rank, Type: op.Type, Peer: int(p)}, true
	case trace.Wait:
		if op.Dir >= 0 && r.peers[op.Dir] < 0 {
			return trace.Action{}, false
		}
		if r.pendReqs > 0 {
			r.pendReqs--
		}
		return trace.Action{Proc: r.rank, Type: trace.Wait, Peer: -1}, true
	case trace.WaitAll:
		if r.pendReqs == 0 {
			return trace.Action{}, false
		}
		r.pendReqs = 0
		return trace.Action{Proc: r.rank, Type: trace.WaitAll, Peer: -1}, true
	}
	return trace.Action{}, false
}

// splitmix64 is the deterministic jitter stream; hand-rolled (same as the
// fault injector's) so generated traces are stable across Go releases.
type splitmix64 struct{ state uint64 }

func (r *splitmix64) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (r *splitmix64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
