package synth

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/trace"
)

// genAll materializes every rank of a generator.
func genAll(t *testing.T, g *Gen) [][]trace.Action {
	t.Helper()
	perRank := make([][]trace.Action, g.World())
	for r := range perRank {
		acts, err := g.Actions(r)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		perRank[r] = acts
	}
	return perRank
}

// TestGenVerifiesAtArbitraryWorlds is the core scaling promise: a model
// fitted at one world size emits semantically valid traces — matched
// send/recv pairs, satisfied waits, rank-consistent collectives — at
// every world in 2..17, including primes and sizes far from the
// recording.
func TestGenVerifiesAtArbitraryWorlds(t *testing.T) {
	for _, tc := range []struct {
		app, class string
		procs      int
	}{
		{"lu", "S", 16},
		{"cg", "S", 16},
		{"ep", "S", 8},
	} {
		m, _ := fixture(t, tc.app, tc.class, tc.procs)
		for world := 2; world <= 17; world++ {
			g, err := NewGen(m, DefaultSpec(world))
			if err != nil {
				t.Fatalf("%s at world %d: %v", m.App, world, err)
			}
			perRank := genAll(t, g)
			if errs := trace.Verify(perRank); len(errs) > 0 {
				t.Errorf("%s at world %d: %d verify errors, first: rank %d action %d: %s",
					m.App, world, len(errs), errs[0].Proc, errs[0].Index, errs[0].Problem)
			}
		}
	}
}

// TestGenCodecRoundTrip writes synthetic traces through both codecs and
// reads them back: the on-disk representation must reproduce the
// generated streams exactly, text and binary agreeing with each other.
func TestGenCodecRoundTrip(t *testing.T) {
	m, _ := fixture(t, "lu", "S", 16)
	for _, world := range []int{5, 12} {
		g, err := NewGen(m, Spec{World: world, Jitter: 0.1, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		want := genAll(t, g)
		for _, binary := range []bool{false, true} {
			dir := t.TempDir()
			paths, err := g.WriteDir(dir, binary)
			if err != nil {
				t.Fatalf("world %d binary=%v: %v", world, binary, err)
			}
			if len(paths) != world {
				t.Fatalf("world %d: wrote %d files, want %d", world, len(paths), world)
			}
			wantName := trace.ProcessFileName(0)
			if binary {
				wantName = trace.BinaryFileName(0)
			}
			if filepath.Base(paths[0]) != wantName {
				t.Errorf("world %d binary=%v: rank-0 file named %s, want %s",
					world, binary, filepath.Base(paths[0]), wantName)
			}
			for r, p := range paths {
				got, err := trace.ReadFile(p)
				if err != nil {
					t.Fatalf("reading back %s: %v", p, err)
				}
				if err := sameActions(want[r], got); err != nil {
					t.Fatalf("world %d binary=%v rank %d: codec round trip diverged: %v",
						world, binary, r, err)
				}
			}
		}
	}
}

// TestGenDeterministic: same model + same spec = byte-identical output,
// independent of call order; a different seed with jitter on must
// actually change the stream.
func TestGenDeterministic(t *testing.T) {
	m, _ := fixture(t, "cg", "S", 16)
	sp := Spec{World: 32, Jitter: 0.2, Seed: 7}
	g1, err := NewGen(m, sp)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGen(m, sp)
	if err != nil {
		t.Fatal(err)
	}
	// Interrogate g2 out of order and twice: RankGen state must not leak.
	for _, r := range []int{31, 0, 17, 17} {
		a2, err := g2.Actions(r)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := g1.Actions(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameActions(a1, a2); err != nil {
			t.Fatalf("rank %d not deterministic: %v", r, err)
		}
	}
	g3, err := NewGen(m, Spec{World: 32, Jitter: 0.2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := g1.Actions(5)
	a3, err := g3.Actions(5)
	if err != nil {
		t.Fatal(err)
	}
	if sameActions(a1, a3) == nil {
		t.Fatal("different seeds with jitter produced identical streams")
	}
}

// TestGenJitterBounded: jitter perturbs compute volumes within the
// advertised [1-j, 1+j) envelope and touches nothing else.
func TestGenJitterBounded(t *testing.T) {
	m, _ := fixture(t, "lu", "S", 8)
	base, err := NewGen(m, DefaultSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	jit, err := NewGen(m, Spec{World: 8, Jitter: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		b, err1 := base.Actions(r)
		j, err2 := jit.Actions(r)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(b) != len(j) {
			t.Fatalf("rank %d: jitter changed stream length %d -> %d", r, len(b), len(j))
		}
		for i := range b {
			if b[i].Type != j[i].Type || b[i].Peer != j[i].Peer {
				t.Fatalf("rank %d action %d: jitter changed structure", r, i)
			}
			if b[i].Type == trace.Compute {
				ratio := j[i].Volume / b[i].Volume
				if ratio < 0.7 || ratio >= 1.3 {
					t.Errorf("rank %d action %d: compute jitter ratio %g outside [0.7,1.3)", r, i, ratio)
				}
			} else if b[i].Volume != j[i].Volume || b[i].Volume2 != j[i].Volume2 {
				t.Errorf("rank %d action %d (%s): jitter leaked into non-compute volume", r, i, b[i].Type)
			}
		}
	}
}

// TestGenScalingLaws pins the knobs: weak scaling keeps per-rank volumes
// fixed; strong scaling divides compute by rho and p2p bytes by
// sqrt(rho); the reps exponent stretches the iteration count.
func TestGenScalingLaws(t *testing.T) {
	m, _ := fixture(t, "lu", "S", 16)
	sums := func(sp Spec) (comp, bytes float64, actions int) {
		g, err := NewGen(m, sp)
		if err != nil {
			t.Fatal(err)
		}
		a, err := g.Actions(g.World() / 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range a {
			switch x.Type {
			case trace.Compute:
				comp += x.Volume
			case trace.Send, trace.Isend:
				bytes += x.Volume
			}
		}
		return comp, bytes, len(a)
	}
	// Weak: an interior rank at 64 must carry exactly the volumes of an
	// interior rank at the recorded 16 (rank-class equivalent streams).
	c16, b16, _ := sums(Spec{World: 16, GridW: 4, GridH: 4})
	c64, b64, _ := sums(Spec{World: 64, GridW: 8, GridH: 8})
	if c64 != c16 || b64 != b16 {
		t.Errorf("weak scaling drifted: compute %g -> %g, bytes %g -> %g", c16, c64, b16, b64)
	}
	// Strong at rho=4: compute shrinks 4x, halo bytes 2x.
	cs, bs, _ := sums(Spec{World: 64, GridW: 8, GridH: 8, Law: StrongLaw})
	if !approxEq(cs, c16/4) {
		t.Errorf("strong scaling: interior compute %g, want %g", cs, c16/4)
	}
	if !approxEq(bs, b16/2) {
		t.Errorf("strong scaling: interior halo bytes %g, want %g", bs, b16/2)
	}
	// Reps exponent 1 at rho=4 quadruples the iteration count, so the
	// stream grows ~4x.
	_, _, n1 := sums(Spec{World: 16, GridW: 4, GridH: 4})
	_, _, n4 := sums(Spec{World: 64, GridW: 8, GridH: 8, Law: Law{Reps: 1}})
	if n4 < 3*n1 || n4 > 5*n1 {
		t.Errorf("reps law: stream grew %d -> %d, want ~4x", n1, n4)
	}
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestGenGridChoice: the derived grid preserves the recorded aspect
// ratio, honours explicit overrides, and keeps XOR widths power-of-two.
func TestGenGridChoice(t *testing.T) {
	lu, _ := fixture(t, "lu", "S", 16) // recorded 4x4
	for _, tc := range []struct {
		world int
		w, h  int
	}{
		{64, 8, 8},
		{36, 6, 6},
		{8, 4, 2},
		{7, 7, 1}, // prime: no better divisor than a row
	} {
		g, err := NewGen(lu, DefaultSpec(tc.world))
		if err != nil {
			t.Fatalf("world %d: %v", tc.world, err)
		}
		if w, h := g.Grid(); w != tc.w || h != tc.h {
			t.Errorf("lu at world %d: grid %dx%d, want %dx%d", tc.world, w, h, tc.w, tc.h)
		}
	}
	cg, _ := fixture(t, "cg", "S", 16) // xor dirs: width must stay 2^k
	g, err := NewGen(cg, DefaultSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.Grid(); w&(w-1) != 0 {
		t.Errorf("cg at world 24: width %d not a power of two despite XOR dirs", w)
	}
	if _, err := NewGen(lu, Spec{World: 12, GridW: 3, GridH: 4}); err != nil {
		t.Errorf("explicit grid override rejected: %v", err)
	}
	g, err = NewGen(lu, Spec{World: 12, GridW: 3, GridH: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w, h := g.Grid(); w != 3 || h != 4 {
		t.Errorf("override ignored: got %dx%d", w, h)
	}
}

// TestGenCommSizeFirst: every synthetic rank opens with comm_size of the
// target world, matching the recorder's convention that replay relies on.
func TestGenCommSizeFirst(t *testing.T) {
	m, _ := fixture(t, "cg", "S", 8)
	g, err := NewGen(m, DefaultSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 11; r++ {
		a, err := g.Actions(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 || a[0].Type != trace.CommSize || a[0].Volume != 11 {
			t.Fatalf("rank %d does not open with comm_size 11: %+v", r, a[0])
		}
		for _, x := range a[1:] {
			if x.Type == trace.CommSize {
				t.Fatalf("rank %d has a mid-stream comm_size", r)
			}
		}
	}
}

// TestGenLargeWorldSmoke: the 16k-rank tentpole world generates and
// verifies. Kept cheap by truncating the fitted script to one body rep.
func TestGenLargeWorldSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("16k-rank generation in -short mode")
	}
	m, _ := fixture(t, "lu", "S", 16)
	for i := range m.Phases {
		if s := m.Phases[i].Seg; s != nil && s.Reps > 1 {
			s.Reps = 1
		}
	}
	const world = 16384
	g, err := NewGen(m, Spec{World: world, Law: StrongLaw})
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([][]trace.Action, world)
	for r := 0; r < world; r++ {
		perRank[r], err = g.Actions(r)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if errs := trace.Verify(perRank); len(errs) > 0 {
		t.Fatalf("16k world: %d verify errors, first: rank %d: %s",
			len(errs), errs[0].Proc, errs[0].Problem)
	}
}

// TestGenErrors: out-of-range ranks and impossible specs fail cleanly.
func TestGenErrors(t *testing.T) {
	m, _ := fixture(t, "lu", "S", 8)
	g, err := NewGen(m, DefaultSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{-1, 4, 100} {
		if _, err := g.Actions(r); err == nil {
			t.Errorf("rank %d of a 4-world generated without error", r)
		}
	}
	if _, err := NewGen(m, Spec{World: 0}); err == nil {
		t.Error("world=0 accepted")
	}
	if _, err := NewGen(m, Spec{World: 8, GridW: 3, GridH: 2}); err == nil {
		t.Error("non-tiling grid accepted")
	}
}

func ExampleGen() {
	perRank, err := npb.RecordAll("ep", "S", 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	m, err := Fit(perRank)
	if err != nil {
		fmt.Println(err)
		return
	}
	g, err := NewGen(m, DefaultSpec(6))
	if err != nil {
		fmt.Println(err)
		return
	}
	a, _ := g.Actions(0)
	fmt.Println(len(a) > 0, a[0].Type)
	// Output: true comm_size
}
