package synth

import "testing"

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"world=16", Spec{World: 16}},
		{"4096", Spec{World: 4096}},
		{"16384,scale=strong", Spec{World: 16384, Law: StrongLaw}},
		{"world=64,grid=8x8", Spec{World: 64, GridW: 8, GridH: 8}},
		{"world=8,seed=99,jitter=0.25", Spec{World: 8, Seed: 99, Jitter: 0.25}},
		{"world=8,scale=compute=-1:bytes=-0.5", Spec{World: 8, Law: StrongLaw}},
		{"world=8,scale=reps=1", Spec{World: 8, Law: Law{Reps: 1}}},
		{"world=8,scale=weak", Spec{World: 8}},
		{" world=8 , seed=1 ", Spec{World: 8, Seed: 1}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"scale=weak", // missing world
		"world=0",
		"world=-4",
		"world=x",
		"world=8,world=8",  // duplicate key
		"world=8,8",        // bare int not leading
		"world=8,grid=3x2", // grid does not tile world
		"world=8,grid=8",   // malformed grid
		"world=8,grid=0x8",
		"world=8,jitter=1", // jitter must be < 1
		"world=8,jitter=-0.1",
		"world=8,jitter=NaN",
		"world=8,scale=fast", // unknown law
		"world=8,scale=compute",
		"world=8,scale=compute=Inf",
		"world=8,scale=compute=-1:compute=-1",
		"world=8,seed=-1",
		"world=8,flavor=mild", // unknown key
		"world=8,,seed=1",     // empty field
	} {
		if sp, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) = %+v, want error", in, sp)
		}
	}
}

func TestSpecStringCanonical(t *testing.T) {
	for _, tc := range []struct {
		sp   Spec
		want string
	}{
		{Spec{World: 16}, "world=16"},
		{Spec{World: 16384, Law: StrongLaw}, "world=16384,scale=strong"},
		{Spec{World: 64, GridW: 8, GridH: 8, Seed: 7}, "world=64,grid=8x8,seed=7"},
		{Spec{World: 8, Jitter: 0.25}, "world=8,jitter=0.25"},
		{Spec{World: 8, Law: Law{Compute: -1}}, "world=8,scale=compute=-1"},
	} {
		if got := tc.sp.String(); got != tc.want {
			t.Errorf("(%+v).String() = %q, want %q", tc.sp, got, tc.want)
		}
	}
}

// TestSpecStringFixpoint: parse(s.String()) == s for valid specs — the
// property the cache keys and scenario names rely on.
func TestSpecStringFixpoint(t *testing.T) {
	specs := []Spec{
		{World: 1},
		{World: 16384, Law: StrongLaw},
		{World: 64, GridW: 8, GridH: 8, Law: Law{Compute: -2, Bytes: 0.5, Reps: 1, Coll: -0.25}, Seed: 1<<63 + 5, Jitter: 0.125},
	}
	for _, sp := range specs {
		back, err := ParseSpec(sp.String())
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", sp.String(), err)
			continue
		}
		if back != sp {
			t.Errorf("fixpoint broken: %+v -> %q -> %+v", sp, sp.String(), back)
		}
	}
}

// FuzzSynthSpec fuzzes the spec mini-language: any input that parses must
// have a canonical String() that re-parses to the identical Spec, and the
// canonical form must itself be a fixpoint (String of the reparse equals
// the first String).
func FuzzSynthSpec(f *testing.F) {
	for _, seed := range []string{
		"world=16",
		"4096",
		"16384,scale=strong",
		"world=64,grid=8x16,scale=compute=-1:bytes=-0.5:reps=0.25,seed=42,jitter=0.1",
		"world=8,scale=weak",
		"world=8,jitter=0.999",
		"world=1,seed=18446744073709551615",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := ParseSpec(in)
		if err != nil {
			return
		}
		if sp.World <= 0 {
			t.Fatalf("ParseSpec(%q) accepted non-positive world %d", in, sp.World)
		}
		s := sp.String()
		back, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s, in, err)
		}
		if back != sp {
			t.Fatalf("round trip drifted: %q -> %+v -> %q -> %+v", in, sp, s, back)
		}
		if s2 := back.String(); s2 != s {
			t.Fatalf("canonical form not a fixpoint: %q -> %q", s, s2)
		}
	})
}
