package npb

import (
	"testing"

	"tireplay/internal/mpi"
)

func TestClassByName(t *testing.T) {
	for _, c := range Classes() {
		got, err := ClassByName(c.Name)
		if err != nil || got != c {
			t.Errorf("ClassByName(%q) = %+v, %v", c.Name, got, err)
		}
	}
	if _, err := ClassByName("Z"); err == nil {
		t.Error("expected error for unknown class")
	}
}

func TestClassSizesMatchNPB(t *testing.T) {
	// Pin the published NPB 3.3 LU class table.
	want := map[string][2]int{
		"S": {12, 50}, "W": {33, 300}, "A": {64, 250}, "B": {102, 250},
		"C": {162, 250}, "D": {408, 300}, "E": {1020, 300},
	}
	for name, w := range want {
		c, err := ClassByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.N != w[0] || c.Iters != w[1] {
			t.Errorf("class %s = (%d,%d), want %v", name, c.N, c.Iters, w)
		}
	}
}

func TestClassDvsCWorkRatio(t *testing.T) {
	// "a class D instance corresponds to approximately 20 times as much
	// work and a data set almost 16 as large as a class C problem".
	cd, cc := ClassD, ClassC
	work := func(c Class) float64 {
		return float64(c.N) * float64(c.N) * float64(c.N) * float64(c.Iters)
	}
	data := func(c Class) float64 {
		return float64(c.N) * float64(c.N) * float64(c.N)
	}
	workRatio := work(cd) / work(cc)
	dataRatio := data(cd) / data(cc)
	if workRatio < 15 || workRatio > 25 {
		t.Errorf("D/C work ratio = %.1f, expected ~20", workRatio)
	}
	if dataRatio < 13 || dataRatio > 18 {
		t.Errorf("D/C data ratio = %.1f, expected ~16", dataRatio)
	}
}

func TestGrid2D(t *testing.T) {
	cases := map[int][2]int{
		2:    {2, 1},
		4:    {2, 2},
		8:    {4, 2},
		16:   {4, 4},
		32:   {8, 4},
		64:   {8, 8},
		1024: {32, 32},
	}
	for procs, want := range cases {
		x, y, err := grid2D(procs)
		if err != nil {
			t.Fatalf("grid2D(%d): %v", procs, err)
		}
		if x != want[0] || y != want[1] {
			t.Errorf("grid2D(%d) = %dx%d, want %dx%d", procs, x, y, want[0], want[1])
		}
	}
	for _, bad := range []int{0, 3, 6, 100} {
		if _, _, err := grid2D(bad); err == nil {
			t.Errorf("grid2D(%d): expected error", bad)
		}
	}
}

func TestSplitBalanced(t *testing.T) {
	s := split(102, 4)
	total := 0
	for _, v := range s {
		total += v
		if v < 102/4 || v > 102/4+1 {
			t.Errorf("unbalanced split: %v", s)
		}
	}
	if total != 102 {
		t.Errorf("split sums to %d", total)
	}
}

func TestLUGeometryNeighbours(t *testing.T) {
	cfg := LUConfig{Class: ClassA, Procs: 8} // grid 4x2
	// rank 0 = (col 0, row 0): no north, no west.
	g, err := cfg.geometry(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.north != -1 || g.west != -1 || g.south != 4 || g.east != 1 {
		t.Errorf("rank 0 neighbours: %+v", g)
	}
	// rank 5 = (col 1, row 1): all four except south (row 1 is last).
	g5, _ := cfg.geometry(5)
	if g5.north != 1 || g5.south != -1 || g5.west != 4 || g5.east != 6 {
		t.Errorf("rank 5 neighbours: %+v", g5)
	}
	// Local sizes tile the global grid.
	xdim, ydim, _ := grid2D(8)
	sumX := 0
	for col := 0; col < xdim; col++ {
		gc, _ := cfg.geometry(col)
		sumX += gc.nx
	}
	if sumX != ClassA.N {
		t.Errorf("x tiles sum to %d, want %d", sumX, ClassA.N)
	}
	sumY := 0
	for row := 0; row < ydim; row++ {
		gr, _ := cfg.geometry(row * xdim)
		sumY += gr.ny
	}
	if sumY != ClassA.N {
		t.Errorf("y tiles sum to %d, want %d", sumY, ClassA.N)
	}
}

func TestLUValidation(t *testing.T) {
	if _, err := LU(LUConfig{Class: ClassS, Procs: 3}); err == nil {
		t.Error("expected error for non-power-of-two procs")
	}
	if _, err := LU(LUConfig{Class: ClassS, Procs: 256}); err == nil {
		t.Error("expected error for grid larger than problem")
	}
	if _, err := LU(LUConfig{Class: ClassS, Procs: 4}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestLURunsOnLiveEngine(t *testing.T) {
	prog, err := LU(LUConfig{Class: ClassS, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	end, err := mpi.RunLive(mpi.LiveConfig{Procs: 4}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestLUDeterministicMakespan(t *testing.T) {
	prog, err := LU(LUConfig{Class: ClassS, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		end, err := mpi.RunLive(mpi.LiveConfig{Procs: 8}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	for i := 0; i < 3; i++ {
		if v := run(); v != first {
			t.Fatalf("non-deterministic LU: %g vs %g", v, first)
		}
	}
}

func TestLUFlopCountsScaleWithClass(t *testing.T) {
	flops := func(class Class) float64 {
		prog, err := LU(LUConfig{Class: class, Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		totals := make([]float64, 4)
		if _, err := mpi.RunLive(mpi.LiveConfig{Procs: 4}, func(c mpi.Comm) {
			prog(c)
			totals[c.Rank()] = c.FlopCount()
		}); err != nil {
			t.Fatal(err)
		}
		for _, v := range totals {
			total += v
		}
		return total
	}
	s := flops(ClassS)
	w := flops(ClassW)
	if w <= s {
		t.Fatalf("class W (%g) not larger than class S (%g)", w, s)
	}
	// W/S work ratio: (33^3*300)/(12^3*50) ~ 125; allow generous bounds
	// because per-class constants are identical.
	ratio := w / s
	if ratio < 50 || ratio > 250 {
		t.Errorf("W/S flop ratio = %.1f, expected ~125", ratio)
	}
}

func TestEPRuns(t *testing.T) {
	prog, err := EP(EPConfig{ClassName: "S", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.RunLive(mpi.LiveConfig{Procs: 4}, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := EP(EPConfig{ClassName: "Z", Procs: 4}); err == nil {
		t.Error("expected error for unknown class")
	}
	if _, err := EP(EPConfig{ClassName: "S", Procs: 0}); err == nil {
		t.Error("expected error for zero procs")
	}
}

func TestCGRuns(t *testing.T) {
	prog, err := CG(CGConfig{ClassName: "S", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.RunLive(mpi.LiveConfig{Procs: 4}, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := CG(CGConfig{ClassName: "S", Procs: 3}); err == nil {
		t.Error("expected error for non-power-of-two procs")
	}
	if _, err := CG(CGConfig{ClassName: "Z", Procs: 4}); err == nil {
		t.Error("expected error for unknown class")
	}
}

func TestLUStatsPositiveAndScaling(t *testing.T) {
	s8, err := LUConfig{Class: ClassB, Procs: 8}.Stats()
	if err != nil {
		t.Fatal(err)
	}
	s16, err := LUConfig{Class: ClassB, Procs: 16}.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s8.TotalActions <= 0 || s16.TotalActions <= s8.TotalActions {
		t.Fatalf("stats: 8 procs %d, 16 procs %d", s8.TotalActions, s16.TotalActions)
	}
	// Table 3 of the paper: class B on 8 processes has ~2.03 million
	// actions; the skeleton must land in the same order of magnitude.
	if s8.TotalActions < 1_000_000 || s8.TotalActions > 3_000_000 {
		t.Errorf("class B / 8 procs actions = %d, expected ~2e6 (Table 3)", s8.TotalActions)
	}
}
