package npb

import (
	"fmt"

	"tireplay/internal/mpi"
)

// CG problem classes of NPB 3.3: matrix order, outer iterations, and
// non-zeros per row.
var cgClasses = map[string]struct {
	na     int
	niter  int
	nonzer int
}{
	"S": {1400, 15, 7},
	"W": {7000, 15, 8},
	"A": {14000, 15, 11},
	"B": {75000, 75, 13},
	"C": {150000, 75, 15},
	"D": {1500000, 100, 21},
	"E": {9000000, 100, 26},
}

// cgInnerIters is the number of CG iterations per outer step (cgitmax).
const cgInnerIters = 25

// CGConfig describes a CG (conjugate gradient) instance.
type CGConfig struct {
	ClassName string
	Procs     int
}

// CG builds the CG benchmark skeleton: the unstructured sparse
// matrix-vector product dominates, with partial-sum exchanges across the
// process-row butterfly at every inner iteration and two dot-product
// reductions — a latency-bound contrast to LU's wavefronts.
func CG(cfg CGConfig) (mpi.Program, error) {
	cls, ok := cgClasses[cfg.ClassName]
	if !ok {
		return nil, fmt.Errorf("npb: unknown CG class %q", cfg.ClassName)
	}
	if cfg.Procs < 1 || cfg.Procs&(cfg.Procs-1) != 0 {
		return nil, fmt.Errorf("npb: CG requires a power-of-two process count, got %d", cfg.Procs)
	}
	// Process grid: npcols x nprows, as square as possible.
	npcols, nprows, err := grid2D(cfg.Procs)
	if err != nil {
		return nil, err
	}
	stages := 0
	for 1<<stages < npcols {
		stages++
	}
	rowChunk := float64(cls.na/nprows+1) * 8 // vector slice exchanged per stage
	nnzLocal := float64(cls.na) * float64(cls.nonzer) * 12 / float64(cfg.Procs)

	return func(c mpi.Comm) {
		me := c.Rank()
		myCol := me % npcols
		rowBase := me - myCol
		// Matrix generation.
		c.Compute(nnzLocal * 20)
		for outer := 0; outer < cls.niter; outer++ {
			for inner := 0; inner < cgInnerIters; inner++ {
				// Sparse mat-vec: local product then a butterfly of
				// partial-sum exchanges across the process row.
				c.Compute(2 * nnzLocal)
				for s := 0; s < stages; s++ {
					peer := rowBase + (myCol ^ (1 << s))
					req := c.Irecv(peer)
					c.Send(peer, rowChunk)
					c.Wait(req)
					c.Compute(rowChunk / 8 * 2) // partial-sum addition
				}
				// Two dot products per CG iteration.
				c.Allreduce(8, float64(cls.na/cfg.Procs)*2)
				c.Allreduce(8, float64(cls.na/cfg.Procs)*2)
			}
			// Residual norm of the outer step.
			c.Allreduce(8, float64(cls.na/cfg.Procs)*2)
		}
	}, nil
}
