package npb

import (
	"fmt"

	"tireplay/internal/mpi"
)

// LU operation volumes, derived from the published NPB operation counts
// (LU class A totals ~119.3 Gflop for 250 iterations over 64^3 points, i.e.
// ~1340 flop per grid point and iteration) and split across the phases of
// one SSOR iteration: the lower and upper triangular sweeps (jacld+blts and
// jacu+buts, the pipelined wavefronts), the right-hand-side computation with
// its boundary exchange, and the solution update.
const (
	// flopsBLTSPerPoint is the jacld+blts work per grid point.
	flopsBLTSPerPoint = 430
	// flopsBUTSPerPoint is the jacu+buts work per grid point.
	flopsBUTSPerPoint = 430
	// flopsRHSPerPoint is the rhs work per grid point.
	flopsRHSPerPoint = 400
	// flopsUpdatePerPoint is the ssor update (add) work per grid point.
	flopsUpdatePerPoint = 80
	// flopsNormPerPoint is the l2norm work per grid point.
	flopsNormPerPoint = 10
	// flopsSetupPerPoint is the one-time initialisation work per point.
	flopsSetupPerPoint = 60

	// bytesPerPoint is the message payload per interface point: the five
	// flow variables in double precision.
	bytesPerPoint = 5 * 8

	// inputBcastBytes is the size of the broadcast of the input parameters
	// (read_input) and of the final verification values.
	inputBcastBytes = 40

	// normCommBytes is the payload of the convergence all-reduce: the five
	// residual norms.
	normCommBytes = 5 * 8

	// inormDefault is the interval (in iterations) between convergence
	// checks.
	inormDefault = 50
)

// LUConfig describes one LU instance.
type LUConfig struct {
	Class Class
	Procs int
	// Inorm overrides the convergence-check interval (0 = every 50
	// iterations, as NPB's inorm default).
	Inorm int
}

// luGeometry is the per-rank decomposition of an LU instance.
type luGeometry struct {
	xdim, ydim int
	col, row   int
	nx, ny, nz int
	north      int // rank above (row-1), -1 if none
	south      int
	west       int
	east       int
}

func (cfg LUConfig) geometry(rank int) (luGeometry, error) {
	xdim, ydim, err := grid2D(cfg.Procs)
	if err != nil {
		return luGeometry{}, err
	}
	n := cfg.Class.N
	if n < xdim || n < ydim {
		return luGeometry{}, fmt.Errorf("npb: class %s grid (%d^3) smaller than process grid %dx%d",
			cfg.Class.Name, n, xdim, ydim)
	}
	g := luGeometry{xdim: xdim, ydim: ydim}
	g.col = rank % xdim
	g.row = rank / xdim
	g.nx = split(n, xdim)[g.col]
	g.ny = split(n, ydim)[g.row]
	g.nz = n
	g.north, g.south, g.west, g.east = -1, -1, -1, -1
	if g.row > 0 {
		g.north = rank - xdim
	}
	if g.row < ydim-1 {
		g.south = rank + xdim
	}
	if g.col > 0 {
		g.west = rank - 1
	}
	if g.col < xdim-1 {
		g.east = rank + 1
	}
	return g, nil
}

func (cfg LUConfig) inorm() int {
	if cfg.Inorm > 0 {
		return cfg.Inorm
	}
	return inormDefault
}

// Validate checks the configuration without building the program.
func (cfg LUConfig) Validate() error {
	_, err := cfg.geometry(0)
	return err
}

// LU builds the LU benchmark skeleton: a pipelined SSOR solver on a 2D
// process grid sweeping 2D wavefronts across the z planes, with the
// communication structure of NPB 3.3:
//
//   - read_input: a broadcast of the run parameters;
//   - per iteration: the rhs computation preceded by an exchange_3-style
//     four-neighbour face exchange (Irecv/Send/Wait), the lower-triangular
//     wavefront (for each z plane: receive from north and west, compute,
//     send to south and east — exchange_1 with blocking calls), the upper
//     wavefront in the reverse direction, and the solution update;
//   - every inorm iterations and at the end: an l2norm all-reduce;
//   - verification: a final broadcast.
func LU(cfg LUConfig) (mpi.Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return func(c mpi.Comm) {
		g, err := cfg.geometry(c.Rank())
		if err != nil {
			panic(err)
		}
		points := float64(g.nx * g.ny * g.nz)
		planePoints := float64(g.nx * g.ny)
		inorm := cfg.inorm()

		// read_input: rank 0 broadcasts the run parameters.
		c.Bcast(inputBcastBytes)
		// Field initialisation and the initial residual norm.
		c.Compute(points * flopsSetupPerPoint)
		c.Allreduce(normCommBytes, points*flopsNormPerPoint)

		for iter := 1; iter <= cfg.Class.Iters; iter++ {
			// rhs with exchange_3 boundary exchange.
			exchange3(c, g)
			c.Compute(points * flopsRHSPerPoint)

			// Lower-triangular wavefront (jacld + blts), plane by plane.
			for k := 0; k < g.nz; k++ {
				if g.north >= 0 {
					c.Recv(g.north)
				}
				if g.west >= 0 {
					c.Recv(g.west)
				}
				c.Compute(planePoints * flopsBLTSPerPoint)
				if g.south >= 0 {
					c.Send(g.south, float64(g.nx*bytesPerPoint))
				}
				if g.east >= 0 {
					c.Send(g.east, float64(g.ny*bytesPerPoint))
				}
			}
			// Upper-triangular wavefront (jacu + buts), reverse direction.
			for k := g.nz - 1; k >= 0; k-- {
				if g.south >= 0 {
					c.Recv(g.south)
				}
				if g.east >= 0 {
					c.Recv(g.east)
				}
				c.Compute(planePoints * flopsBUTSPerPoint)
				if g.north >= 0 {
					c.Send(g.north, float64(g.nx*bytesPerPoint))
				}
				if g.west >= 0 {
					c.Send(g.west, float64(g.ny*bytesPerPoint))
				}
			}
			// Solution update.
			c.Compute(points * flopsUpdatePerPoint)
			// Convergence check.
			if iter%inorm == 0 || iter == cfg.Class.Iters {
				c.Allreduce(normCommBytes, points*flopsNormPerPoint)
			}
		}
		// Verification values are broadcast from rank 0.
		c.Bcast(inputBcastBytes)
	}, nil
}

// exchange3 performs the four-neighbour ghost-face exchange of the rhs
// computation: asynchronous receives are posted first, then the faces are
// sent, then the receives are completed — the structure of NPB's
// exchange_3.
func exchange3(c mpi.Comm, g luGeometry) {
	type nb struct {
		rank  int
		bytes float64
	}
	nsFace := float64(g.nx * g.nz * bytesPerPoint)
	weFace := float64(g.ny * g.nz * bytesPerPoint)
	neighbours := []nb{
		{g.north, nsFace}, {g.south, nsFace},
		{g.west, weFace}, {g.east, weFace},
	}
	var reqs []mpi.Request
	for _, n := range neighbours {
		if n.rank >= 0 {
			reqs = append(reqs, c.Irecv(n.rank))
		}
	}
	for _, n := range neighbours {
		if n.rank >= 0 {
			c.Send(n.rank, n.bytes)
		}
	}
	for _, r := range reqs {
		c.Wait(r)
	}
}

// TotalFlops sums the computation volumes of the whole instance: the setup,
// the per-iteration sweeps and the convergence norms, across all ranks.
func (cfg LUConfig) TotalFlops() float64 {
	n := float64(cfg.Class.N)
	points := n * n * n
	perIter := points * (flopsBLTSPerPoint + flopsBUTSPerPoint + flopsRHSPerPoint + flopsUpdatePerPoint)
	norms := 0.0
	for i := 1; i <= cfg.Class.Iters; i++ {
		if i%cfg.inorm() == 0 || i == cfg.Class.Iters {
			norms++
		}
	}
	return points*flopsSetupPerPoint + perIter*float64(cfg.Class.Iters) +
		(norms+1)*points*flopsNormPerPoint
}

// LUStats predicts the shape of an LU acquisition analytically, without
// running it: the number of time-independent actions per rank and in total,
// and the exact size of the textual trace. The large-trace experiment of
// Section 6.5 uses it to extend measured small-scale traces to class D on
// 1024 processes, and the tests pin it against real extractions.
type LUStats struct {
	ActionsPerRank []int64
	TotalActions   int64
}

// Stats computes the per-rank action counts of the skeleton.
func (cfg LUConfig) Stats() (*LUStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &LUStats{ActionsPerRank: make([]int64, cfg.Procs)}
	inorm := cfg.inorm()
	for rank := 0; rank < cfg.Procs; rank++ {
		g, err := cfg.geometry(rank)
		if err != nil {
			return nil, err
		}
		deg := 0
		for _, nb := range []int{g.north, g.south, g.west, g.east} {
			if nb >= 0 {
				deg++
			}
		}
		var n int64
		// comm_size, initial bcast, setup compute, initial allreduce.
		n += 4
		norms := int64(0)
		for iter := 1; iter <= cfg.Class.Iters; iter++ {
			if iter%inorm == 0 || iter == cfg.Class.Iters {
				norms++
			}
		}
		perIter := int64(0)
		// exchange3: Irecv+Send+Wait per neighbour, then the rhs compute.
		perIter += int64(3*deg) + 1
		// blts sweep: per plane, one compute plus one action per
		// neighbouring transfer in each direction of the dependency.
		inLow, outLow := 0, 0
		if g.north >= 0 {
			inLow++
		}
		if g.west >= 0 {
			inLow++
		}
		if g.south >= 0 {
			outLow++
		}
		if g.east >= 0 {
			outLow++
		}
		perIter += int64(g.nz) * int64(1+inLow+outLow)
		// buts sweep mirrors blts (its in-degree equals blts's out-degree
		// and vice versa).
		perIter += int64(g.nz) * int64(1+inLow+outLow)
		// update compute.
		perIter++
		// Phase-boundary merges: the extractor only emits a compute action
		// when an MPI call flushes the burst, so adjacent computations with
		// no communication between them merge into one action. At the
		// wavefront origin (no north/west neighbours) the rhs burst merges
		// into the first blts plane and the last buts burst merges into the
		// update; at the wavefront end (no south/east) the last blts burst
		// merges into the first buts plane.
		if inLow == 0 {
			perIter -= 2
		}
		if outLow == 0 {
			perIter--
		}
		n += perIter * int64(cfg.Class.Iters)
		// Convergence allreduces: the action itself plus no extra compute
		// action (the reduction work is part of the allReduce entry), but
		// the burst preceding it is merged into the update compute, so each
		// check adds exactly one action.
		n += norms
		// Final verification bcast.
		n++
		st.ActionsPerRank[rank] = n
		st.TotalActions += n
	}
	return st, nil
}
