package npb

import (
	"fmt"
	"math"

	"tireplay/internal/mpi"
)

// EP problem classes: the benchmark generates 2^M pairs of Gaussian random
// deviates; the classes of NPB 3.3.
var epM = map[string]int{
	"S": 24, "W": 25, "A": 28, "B": 30, "C": 32, "D": 36, "E": 40,
}

// epFlopsPerPair approximates the work of generating and testing one pair
// of deviates (two ln/sqrt evaluations plus the acceptance test).
const epFlopsPerPair = 60

// EPConfig describes an EP (embarrassingly parallel) instance.
type EPConfig struct {
	ClassName string
	Procs     int
}

// EP builds the EP benchmark skeleton: each rank independently generates
// its share of 2^M random pairs, then three small reductions combine the
// sums and the annulus counts — the communication-free extreme of the NPB
// suite, useful as a contrast workload to LU.
func EP(cfg EPConfig) (mpi.Program, error) {
	m, ok := epM[cfg.ClassName]
	if !ok {
		return nil, fmt.Errorf("npb: unknown EP class %q", cfg.ClassName)
	}
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("npb: EP needs at least one process")
	}
	pairs := math.Pow(2, float64(m)) / float64(cfg.Procs)
	return func(c mpi.Comm) {
		c.Compute(pairs * epFlopsPerPair)
		// Combine sx and sy (two doubles) and the ten annulus counts.
		c.Allreduce(16, 2)
		c.Allreduce(80, 10)
		// Timing consolidation.
		c.Allreduce(8, 1)
	}, nil
}
