package npb

import (
	"testing"

	"tireplay/internal/mpi"
)

func TestGrid3D(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		2:  {2, 1, 1},
		4:  {2, 2, 1},
		8:  {2, 2, 2},
		16: {4, 2, 2},
		64: {4, 4, 4},
	}
	for procs, want := range cases {
		px, py, pz, err := grid3D(procs)
		if err != nil {
			t.Fatalf("grid3D(%d): %v", procs, err)
		}
		if px != want[0] || py != want[1] || pz != want[2] {
			t.Errorf("grid3D(%d) = %dx%dx%d, want %v", procs, px, py, pz, want)
		}
		if px*py*pz != procs {
			t.Errorf("grid3D(%d) does not tile the world", procs)
		}
	}
	if _, _, _, err := grid3D(3); err == nil {
		t.Error("expected error for non-power-of-two")
	}
}

func TestMGGeometryTorus(t *testing.T) {
	cfg := MGConfig{ClassName: "S", Procs: 8} // 2x2x2 torus over 32^3
	g, err := cfg.geometry(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.nx != 16 || g.ny != 16 || g.nz != 16 {
		t.Fatalf("local box = %dx%dx%d", g.nx, g.ny, g.nz)
	}
	// In a 2x2x2 torus, -x and +x wrap to the same neighbour.
	if g.neighbours[0] != g.neighbours[1] {
		t.Errorf("x neighbours differ in 2-wide torus: %v", g.neighbours)
	}
	for _, nb := range g.neighbours {
		if nb < 0 || nb >= 8 {
			t.Fatalf("neighbour out of range: %v", g.neighbours)
		}
	}
	if g.levels < 3 {
		t.Errorf("levels = %d, expected a multigrid hierarchy", g.levels)
	}
}

func TestMGValidation(t *testing.T) {
	if _, err := MG(MGConfig{ClassName: "Z", Procs: 8}); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := MG(MGConfig{ClassName: "S", Procs: 3}); err == nil {
		t.Error("non-power-of-two accepted")
	}
	// 32^3 over a 64-wide process dimension cannot tile evenly.
	if _, err := MG(MGConfig{ClassName: "S", Procs: 65536}); err == nil {
		t.Error("over-decomposed instance accepted")
	}
}

func TestMGRunsOnLiveEngine(t *testing.T) {
	prog, err := MG(MGConfig{ClassName: "S", Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	end, err := mpi.RunLive(mpi.LiveConfig{Procs: 8}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestMGDeterministic(t *testing.T) {
	prog, err := MG(MGConfig{ClassName: "S", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		end, err := mpi.RunLive(mpi.LiveConfig{Procs: 4}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	for i := 0; i < 3; i++ {
		if v := run(); v != first {
			t.Fatalf("non-deterministic MG: %g vs %g", v, first)
		}
	}
}

func TestMGSingleProcessNoSelfMessages(t *testing.T) {
	prog, err := MG(MGConfig{ClassName: "S", Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.RunLive(mpi.LiveConfig{Procs: 1}, prog); err != nil {
		t.Fatal(err)
	}
}
