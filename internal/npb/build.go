package npb

import (
	"fmt"

	"tireplay/internal/mpi"
	"tireplay/internal/trace"
)

// Apps lists the benchmark names Build accepts.
func Apps() []string { return []string{"lu", "cg", "ep", "mg"} }

// Build constructs an NPB benchmark program by name — the single dispatch
// point shared by the acquisition CLI, tigen's ground-truth mode and the
// differential tests.
func Build(app, class string, procs int) (mpi.Program, error) {
	switch app {
	case "lu":
		c, err := ClassByName(class)
		if err != nil {
			return nil, err
		}
		return LU(LUConfig{Class: c, Procs: procs})
	case "cg":
		return CG(CGConfig{ClassName: class, Procs: procs})
	case "ep":
		return EP(EPConfig{ClassName: class, Procs: procs})
	case "mg":
		return MG(MGConfig{ClassName: class, Procs: procs})
	default:
		return nil, fmt.Errorf("npb: unknown app %q (want lu, cg, ep or mg)", app)
	}
}

// RecordAll unrolls every rank of an NPB benchmark through the
// acquisition recorder, returning the exact per-rank time-independent
// traces the real pipeline would produce.
func RecordAll(app, class string, procs int) ([][]trace.Action, error) {
	prog, err := Build(app, class, procs)
	if err != nil {
		return nil, err
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		acts, err := mpi.Record(r, procs, prog)
		if err != nil {
			return nil, fmt.Errorf("npb: recording rank %d of %s.%s: %w", r, app, class, err)
		}
		perRank[r] = acts
	}
	return perRank, nil
}
