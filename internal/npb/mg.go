package npb

import (
	"fmt"

	"tireplay/internal/mpi"
)

// MG problem classes of NPB 3.3: grid edge and V-cycle iterations.
var mgClasses = map[string]struct {
	n   int
	nit int
}{
	"S": {32, 4},
	"W": {128, 4},
	"A": {256, 4},
	"B": {256, 20},
	"C": {512, 20},
	"D": {1024, 50},
	"E": {2048, 50},
}

// MG operation constants: work per grid point for the smoother/residual
// (the 27-point stencils of psinv/resid) and the transfer operators.
const (
	mgFlopsSmoothPerPoint   = 40
	mgFlopsResidualPerPoint = 35
	mgFlopsTransferPerPoint = 12
	mgFlopsNormPerPoint     = 6
	mgBytesPerPoint         = 8 // one double per interface point
)

// MGConfig describes an MG (multigrid) instance.
type MGConfig struct {
	ClassName string
	Procs     int
}

// mgGeometry is the 3D torus decomposition of an MG instance. NPB MG has
// periodic boundaries, so every rank has exactly six neighbours.
type mgGeometry struct {
	px, py, pz int // process grid
	ix, iy, iz int // this rank's coordinates
	nx, ny, nz int // local box at the finest level
	neighbours [6]int
	levels     int
}

// grid3D splits a power-of-two process count into a near-cubic 3D grid.
func grid3D(procs int) (px, py, pz int, err error) {
	if procs < 1 || procs&(procs-1) != 0 {
		return 0, 0, 0, fmt.Errorf("npb: MG requires a power-of-two process count, got %d", procs)
	}
	k := 0
	for 1<<k < procs {
		k++
	}
	px = 1 << ((k + 2) / 3)
	py = 1 << ((k + 1) / 3)
	pz = 1 << (k / 3)
	return px, py, pz, nil
}

func (cfg MGConfig) geometry(rank int) (mgGeometry, error) {
	cls, ok := mgClasses[cfg.ClassName]
	if !ok {
		return mgGeometry{}, fmt.Errorf("npb: unknown MG class %q", cfg.ClassName)
	}
	px, py, pz, err := grid3D(cfg.Procs)
	if err != nil {
		return mgGeometry{}, err
	}
	n := cls.n
	if n%px != 0 || n%py != 0 || n%pz != 0 {
		return mgGeometry{}, fmt.Errorf("npb: MG grid %d^3 not divisible by process grid %dx%dx%d",
			n, px, py, pz)
	}
	g := mgGeometry{px: px, py: py, pz: pz}
	g.ix = rank % px
	g.iy = (rank / px) % py
	g.iz = rank / (px * py)
	g.nx, g.ny, g.nz = n/px, n/py, n/pz
	at := func(x, y, z int) int {
		x = (x + px) % px
		y = (y + py) % py
		z = (z + pz) % pz
		return x + px*(y+py*z)
	}
	g.neighbours = [6]int{
		at(g.ix-1, g.iy, g.iz), at(g.ix+1, g.iy, g.iz),
		at(g.ix, g.iy-1, g.iz), at(g.ix, g.iy+1, g.iz),
		at(g.ix, g.iy, g.iz-1), at(g.ix, g.iy, g.iz+1),
	}
	// Coarsen while the local box stays at least 2 points per dimension.
	min := g.nx
	if g.ny < min {
		min = g.ny
	}
	if g.nz < min {
		min = g.nz
	}
	g.levels = 1
	for m := min; m >= 4; m /= 2 {
		g.levels++
	}
	return g, nil
}

// Validate checks the configuration.
func (cfg MGConfig) Validate() error {
	_, err := cfg.geometry(0)
	return err
}

// mgExchange performs the six-face ghost exchange at one level: receives
// are posted first, then faces are sent, then completed — comm3 in NPB MG.
func mgExchange(c mpi.Comm, g mgGeometry, level int) {
	shrink := 1 << level
	faces := [6]float64{
		float64(g.ny / shrink * g.nz / shrink * mgBytesPerPoint),
		float64(g.ny / shrink * g.nz / shrink * mgBytesPerPoint),
		float64(g.nx / shrink * g.nz / shrink * mgBytesPerPoint),
		float64(g.nx / shrink * g.nz / shrink * mgBytesPerPoint),
		float64(g.nx / shrink * g.ny / shrink * mgBytesPerPoint),
		float64(g.nx / shrink * g.ny / shrink * mgBytesPerPoint),
	}
	me := c.Rank()
	var reqs []mpi.Request
	for dir, nb := range g.neighbours {
		if nb != me {
			_ = faces[dir]
			reqs = append(reqs, c.Irecv(nb))
		}
	}
	for dir, nb := range g.neighbours {
		if nb != me {
			c.Send(nb, faces[dir])
		}
	}
	for _, r := range reqs {
		c.Wait(r)
	}
}

// MG builds the MG benchmark skeleton: nit V-cycles over a hierarchy of
// grids on a 3D process torus. Each cycle descends the hierarchy
// (residual + restriction, with a ghost exchange per level), solves on the
// coarsest grid, then ascends (prolongation + smoothing, again exchanging
// per level); an all-reduce computes the residual norm after each cycle —
// a latency-heavy contrast to LU's pipelined wavefronts.
func MG(cfg MGConfig) (mpi.Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cls := mgClasses[cfg.ClassName]
	return func(c mpi.Comm) {
		g, err := cfg.geometry(c.Rank())
		if err != nil {
			panic(err)
		}
		pointsAt := func(level int) float64 {
			s := 1 << level
			return float64(g.nx / s * g.ny / s * g.nz / s)
		}
		// Setup: coefficients and initial residual with one fine exchange.
		c.Bcast(inputBcastBytes)
		c.Compute(pointsAt(0) * mgFlopsTransferPerPoint)
		mgExchange(c, g, 0)
		c.Compute(pointsAt(0) * mgFlopsResidualPerPoint)
		c.Allreduce(normCommBytes, pointsAt(0)*mgFlopsNormPerPoint)

		for iter := 0; iter < cls.nit; iter++ {
			// Downward sweep: restrict to coarser grids.
			for level := 0; level < g.levels-1; level++ {
				mgExchange(c, g, level)
				c.Compute(pointsAt(level) * mgFlopsResidualPerPoint)
				c.Compute(pointsAt(level+1) * mgFlopsTransferPerPoint)
			}
			// Coarsest solve.
			mgExchange(c, g, g.levels-1)
			c.Compute(pointsAt(g.levels-1) * mgFlopsSmoothPerPoint)
			// Upward sweep: prolongate and smooth.
			for level := g.levels - 2; level >= 0; level-- {
				c.Compute(pointsAt(level) * mgFlopsTransferPerPoint)
				mgExchange(c, g, level)
				c.Compute(pointsAt(level) * mgFlopsSmoothPerPoint)
			}
			// Residual norm of the cycle.
			c.Allreduce(normCommBytes, pointsAt(0)*mgFlopsNormPerPoint)
		}
		c.Bcast(inputBcastBytes)
	}, nil
}
