// Package npb provides communication/computation skeletons of the NAS
// Parallel Benchmarks used in the paper's evaluation (Section 6.1): the LU
// factorization that all experiments run, plus CG and EP for additional
// example workloads. A skeleton issues the same sequence of MPI operations
// with the same communication volumes and computation volumes as the
// original Fortran benchmark, which is exactly what off-line replay
// observes — the numerical values themselves are irrelevant to the traces.
package npb

import "fmt"

// Class is an NPB problem class: a problem size and an iteration count.
// "each benchmark can be executed for 7 different classes, denoting
// different problem sizes: S (the smallest), W, A, B, C, D, and E (the
// largest)".
type Class struct {
	Name  string
	N     int // problem size: the LU grid is N x N x N
	Iters int // SSOR iterations (itmax)
}

// The LU problem classes of NPB 3.3. A class D instance "corresponds to
// approximately 20 times as much work and a data set almost 16 times as
// large as a class C problem".
var (
	ClassS = Class{Name: "S", N: 12, Iters: 50}
	ClassW = Class{Name: "W", N: 33, Iters: 300}
	ClassA = Class{Name: "A", N: 64, Iters: 250}
	ClassB = Class{Name: "B", N: 102, Iters: 250}
	ClassC = Class{Name: "C", N: 162, Iters: 250}
	ClassD = Class{Name: "D", N: 408, Iters: 300}
	ClassE = Class{Name: "E", N: 1020, Iters: 300}
)

// Classes lists every class in size order.
func Classes() []Class {
	return []Class{ClassS, ClassW, ClassA, ClassB, ClassC, ClassD, ClassE}
}

// ClassByName resolves a class letter ("S".."E").
func ClassByName(name string) (Class, error) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("npb: unknown class %q", name)
}

// grid2D computes the 2D process grid of the LU benchmark: processes must
// be a power of two; the grid is as square as possible with xdim >= ydim.
func grid2D(procs int) (xdim, ydim int, err error) {
	if procs < 1 || procs&(procs-1) != 0 {
		return 0, 0, fmt.Errorf("npb: LU requires a power-of-two process count, got %d", procs)
	}
	k := 0
	for 1<<k < procs {
		k++
	}
	xdim = 1 << ((k + 1) / 2)
	ydim = 1 << (k / 2)
	return xdim, ydim, nil
}

// split distributes n points over parts as evenly as possible and returns
// the size of each part (the NPB block distribution).
func split(n, parts int) []int {
	out := make([]int, parts)
	base, extra := n/parts, n%parts
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}
