package gather

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSteps(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{1, 4, 0},
		{2, 1, 1},
		{4, 1, 2},
		{8, 1, 3},
		{5, 4, 1},
		{25, 4, 2},
		{64, 4, 3}, // paper: 4-nomial tree over 64 files
		{64, 3, 3},
		{1024, 4, 5},
	}
	for _, c := range cases {
		if got := Steps(c.n, c.k); got != c.want {
			t.Errorf("Steps(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestPlanBinomial(t *testing.T) {
	// k=1 over 4 nodes: round 0: 1->0, 3->2; round 1: 2->0.
	plan := Plan(4, 1)
	want := []Transfer{{0, 1, 0}, {0, 3, 2}, {1, 2, 0}}
	if len(plan) != len(want) {
		t.Fatalf("plan = %+v", plan)
	}
	for i := range want {
		if plan[i] != want[i] {
			t.Fatalf("plan[%d] = %+v, want %+v", i, plan[i], want[i])
		}
	}
}

// Property: every node except 0 sends exactly once, so all data reaches the
// root regardless of n and k.
func TestPlanCompletenessProperty(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		n := 1 + int(rawN)%200
		k := 1 + int(rawK)%8
		plan := Plan(n, k)
		sent := make([]int, n)
		for _, tr := range plan {
			if tr.Src <= 0 || tr.Src >= n || tr.Dst < 0 || tr.Dst >= n {
				return false
			}
			sent[tr.Src]++
		}
		if sent[0] != 0 {
			return false
		}
		for i := 1; i < n; i++ {
			if sent[i] != 1 {
				return false
			}
		}
		// Rounds must not exceed Steps(n, k).
		for _, tr := range plan {
			if tr.Round >= Steps(n, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: data volumes are conserved — the root ends holding everything.
func TestPlanConservationProperty(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		n := 1 + int(rawN)%100
		k := 1 + int(rawK)%8
		held := make([]float64, n)
		total := 0.0
		for i := range held {
			held[i] = float64(i + 1)
			total += held[i]
		}
		for _, tr := range Plan(n, k) {
			held[tr.Dst] += held[tr.Src]
			held[tr.Src] = 0
		}
		return math.Abs(held[0]-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCostSingleNodeFree(t *testing.T) {
	c, err := Cost([]float64{100}, 4, 1e8, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("cost = %g, want 0", c)
	}
}

func TestCostTwoNodes(t *testing.T) {
	c, err := Cost([]float64{0, 1e8}, 2, 1e8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1.001) > 1e-9 {
		t.Fatalf("cost = %g, want 1.001", c)
	}
}

func TestCostGrowsWithN(t *testing.T) {
	mk := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = 1e6
		}
		return s
	}
	prev := 0.0
	for _, n := range []int{2, 8, 32, 128} {
		c, err := Cost(mk(n), 4, 1.25e8, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Fatalf("cost not increasing: n=%d cost=%g prev=%g", n, c, prev)
		}
		prev = c
	}
}

func TestCostErrors(t *testing.T) {
	if _, err := Cost(nil, 2, 1e8, 0); err == nil {
		t.Fatal("expected error for empty sizes")
	}
	if _, err := Cost([]float64{1}, 2, 0, 0); err == nil {
		t.Fatal("expected error for zero bandwidth")
	}
}

func TestBestArity(t *testing.T) {
	sizes := make([]float64, 64)
	for i := range sizes {
		sizes[i] = 5e6
	}
	k, cost, err := BestArity(sizes, []int{1, 2, 4, 8}, 1.25e8, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("zero cost")
	}
	// Sanity: the returned arity is actually the argmin.
	for _, cand := range []int{1, 2, 4, 8} {
		c, _ := Cost(sizes, cand, 1.25e8, 1e-4)
		if c < cost {
			t.Fatalf("arity %d beats reported best %d (%g < %g)", cand, k, c, cost)
		}
	}
}

func TestConcat(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	want := ""
	for i, content := range []string{"p0 barrier\n", "p1 barrier\n", "p2 barrier\n"} {
		p := filepath.Join(dir, "part", "")
		_ = p
		path := filepath.Join(dir, "f"+string(rune('0'+i)))
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
		want += content
	}
	out := filepath.Join(dir, "merged.trace")
	n, err := Concat(paths, out)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("bytes = %d, want %d", n, len(want))
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("merged = %q", got)
	}
}

func TestConcatMissingFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := Concat([]string{filepath.Join(dir, "missing")}, filepath.Join(dir, "out")); err == nil {
		t.Fatal("expected error")
	}
}
