// Package gather implements the last step of the acquisition process: the
// collection of the per-process trace files onto the single node where the
// replay takes place (Section 4.3). It follows the paper's approach of a
// K-nomial tree reduction allowing for log_{K+1}(N) steps, where N is the
// number of files and K the arity of the tree, and provides both the
// communication plan (with an analytic cost model used by the acquisition
// experiments) and the physical merging of local trace files.
package gather

import (
	"fmt"
	"io"
	"math"
	"os"
)

// Transfer is one file movement of the gathering plan: the accumulated
// payload of node Src moves to node Dst during round Round.
type Transfer struct {
	Round int
	Src   int
	Dst   int
}

// Steps returns the number of rounds of a K-nomial gather over n nodes:
// ceil(log_{K+1} n).
func Steps(n, k int) int {
	if n <= 1 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	steps := 0
	span := 1
	for span < n {
		span *= k + 1
		steps++
	}
	return steps
}

// Plan computes the transfer schedule of a K-nomial gather of n nodes onto
// node 0. In round s (0-based), nodes at offsets m*(k+1)^s (m=1..k) within
// each block of (k+1)^(s+1) send everything they hold to the block leader.
func Plan(n, k int) []Transfer {
	if k < 1 {
		k = 1
	}
	var out []Transfer
	span := 1
	for round := 0; span < n; round++ {
		block := span * (k + 1)
		for base := 0; base < n; base += block {
			for m := 1; m <= k; m++ {
				src := base + m*span
				if src < n {
					out = append(out, Transfer{Round: round, Src: src, Dst: base})
				}
			}
		}
		span = block
	}
	return out
}

// Cost evaluates the completion time of the gather plan under a simple
// latency/bandwidth model: within a round, transfers proceed in parallel
// and the round lasts as long as its largest transfer; rounds are
// synchronised. sizes[i] is the trace size (bytes) initially held by node i.
func Cost(sizes []float64, k int, bandwidth, latency float64) (float64, error) {
	n := len(sizes)
	if n == 0 {
		return 0, fmt.Errorf("gather: no files")
	}
	if bandwidth <= 0 {
		return 0, fmt.Errorf("gather: bandwidth must be positive")
	}
	held := append([]float64(nil), sizes...)
	total := 0.0
	plan := Plan(n, k)
	round := 0
	roundMax := 0.0
	flush := func() {
		total += roundMax
		roundMax = 0
	}
	for _, tr := range plan {
		if tr.Round != round {
			flush()
			round = tr.Round
		}
		cost := latency + held[tr.Src]/bandwidth
		if cost > roundMax {
			roundMax = cost
		}
		held[tr.Dst] += held[tr.Src]
		held[tr.Src] = 0
	}
	flush()
	return total, nil
}

// BestArity picks the arity K in candidates minimising the modelled gather
// time; the paper notes the script "can be configured to adapt the arity to
// the total number of traces and the number of compute nodes involved".
func BestArity(sizes []float64, candidates []int, bandwidth, latency float64) (int, float64, error) {
	if len(candidates) == 0 {
		candidates = []int{1, 2, 4, 8}
	}
	bestK, bestT := 0, math.Inf(1)
	for _, k := range candidates {
		t, err := Cost(sizes, k, bandwidth, latency)
		if err != nil {
			return 0, 0, err
		}
		if t < bestT {
			bestK, bestT = k, t
		}
	}
	return bestK, bestT, nil
}

// Concat merges the given files into one destination file in order — the
// physical gathering performed once all traces reside on the replay node.
func Concat(paths []string, dst string) (int64, error) {
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	defer out.Close()
	var total int64
	for _, p := range paths {
		in, err := os.Open(p)
		if err != nil {
			return total, err
		}
		n, err := io.Copy(out, in)
		in.Close()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, out.Close()
}
