// Package tfr is the Trace Format Reader: the callback-based API used to
// process the binary TAU traces, modelled on the TAU TFR library the paper's
// tau2simgrid tool builds on (Section 4.3). Callers register callbacks for
// the event kinds appearing in a trace file — entering/exiting a function,
// triggering a counter, sending and receiving messages — and the reader
// invokes them in file order.
package tfr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"tireplay/internal/tau"
)

// Callbacks holds the handlers invoked while reading a trace. Nil entries
// are skipped. Definition callbacks fire first (from the event file), then
// trace records in order, then EndTrace.
type Callbacks struct {
	// DefineState announces an EntryExit function definition.
	DefineState func(id int, group, name string)
	// DefineEvent announces a TriggerValue counter definition.
	DefineEvent func(id int, name string)
	// EnterState fires when the process enters an instrumented function.
	EnterState func(time float64, node, tid, stateID int)
	// LeaveState fires when the process exits an instrumented function.
	LeaveState func(time float64, node, tid, stateID int)
	// EventTrigger fires on a counter sample.
	EventTrigger func(time float64, node, tid, eventID int, value float64)
	// SendMessage fires on an outgoing message record.
	SendMessage func(time float64, node, tid, dstNode, dstTid int, size float64, tag, comm int)
	// RecvMessage fires on an incoming message record.
	RecvMessage func(time float64, node, tid, srcNode, srcTid int, size float64, tag, comm int)
	// EndTrace fires after the last record of the trace.
	EndTrace func(node, tid int)
}

// ReadFiles processes a rank's event file then its binary trace file.
func ReadFiles(trcPath, edfPath string, cb Callbacks) error {
	if edfPath != "" {
		ef, err := os.Open(edfPath)
		if err != nil {
			return err
		}
		entries, err := tau.ParseEDF(ef)
		ef.Close()
		if err != nil {
			return err
		}
		for _, e := range entries {
			switch e.Kind {
			case "EntryExit":
				if cb.DefineState != nil {
					cb.DefineState(e.ID, e.Group, e.Name)
				}
			case "TriggerValue":
				if cb.DefineEvent != nil {
					cb.DefineEvent(e.ID, e.Name)
				}
			}
		}
	}
	tf, err := os.Open(trcPath)
	if err != nil {
		return err
	}
	defer tf.Close()
	return Read(tf, cb)
}

// Read processes a binary trace stream.
func Read(r io.Reader, cb Callbacks) error {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 7)
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("tfr: trace header: %w", err)
	}
	if string(head[:6]) != "TAUTRC" {
		return fmt.Errorf("tfr: bad trace magic %q", head[:6])
	}
	if head[6] != 1 {
		return fmt.Errorf("tfr: unsupported trace version %d", head[6])
	}
	node64, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("tfr: trace node id: %w", err)
	}
	node := int(node64)
	const tid = 0

	readFloat := func() (float64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}
	readUvarint := func() (int, error) {
		v, err := binary.ReadUvarint(br)
		return int(v), err
	}

	for {
		kind, err := br.ReadByte()
		if errors.Is(err, io.EOF) {
			if cb.EndTrace != nil {
				cb.EndTrace(node, tid)
			}
			return nil
		}
		if err != nil {
			return err
		}
		t, err := readFloat()
		if err != nil {
			return fmt.Errorf("tfr: record time: %w", err)
		}
		switch kind {
		case 1: // EnterState
			id, err := readUvarint()
			if err != nil {
				return err
			}
			if cb.EnterState != nil {
				cb.EnterState(t, node, tid, id)
			}
		case 2: // LeaveState
			id, err := readUvarint()
			if err != nil {
				return err
			}
			if cb.LeaveState != nil {
				cb.LeaveState(t, node, tid, id)
			}
		case 3: // EventTrigger
			id, err := readUvarint()
			if err != nil {
				return err
			}
			v, err := readFloat()
			if err != nil {
				return err
			}
			if cb.EventTrigger != nil {
				cb.EventTrigger(t, node, tid, id, v)
			}
		case 4, 5: // SendMessage, RecvMessage
			peer, err := readUvarint()
			if err != nil {
				return err
			}
			peerTid, err := readUvarint()
			if err != nil {
				return err
			}
			size, err := readFloat()
			if err != nil {
				return err
			}
			tag, err := readUvarint()
			if err != nil {
				return err
			}
			comm, err := readUvarint()
			if err != nil {
				return err
			}
			if kind == 4 {
				if cb.SendMessage != nil {
					cb.SendMessage(t, node, tid, peer, peerTid, size, tag, comm)
				}
			} else if cb.RecvMessage != nil {
				cb.RecvMessage(t, node, tid, peer, peerTid, size, tag, comm)
			}
		default:
			return fmt.Errorf("tfr: unknown record kind %d", kind)
		}
	}
}
