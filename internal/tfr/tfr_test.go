package tfr

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tireplay/internal/tau"
)

// record captures one callback invocation for comparison.
type record struct {
	kind  string
	time  float64
	id    int
	value float64
	peer  int
	size  float64
}

func collectAll(t *testing.T, trc []byte) []record {
	t.Helper()
	var got []record
	cb := Callbacks{
		EnterState: func(tm float64, node, tid, id int) {
			got = append(got, record{kind: "enter", time: tm, id: id})
		},
		LeaveState: func(tm float64, node, tid, id int) {
			got = append(got, record{kind: "leave", time: tm, id: id})
		},
		EventTrigger: func(tm float64, node, tid, id int, v float64) {
			got = append(got, record{kind: "trigger", time: tm, id: id, value: v})
		},
		SendMessage: func(tm float64, node, tid, dst, dstTid int, size float64, tag, comm int) {
			got = append(got, record{kind: "send", time: tm, peer: dst, size: size})
		},
		RecvMessage: func(tm float64, node, tid, src, srcTid int, size float64, tag, comm int) {
			got = append(got, record{kind: "recv", time: tm, peer: src, size: size})
		},
		EndTrace: func(node, tid int) {
			got = append(got, record{kind: "end", id: node})
		},
	}
	if err := Read(bytes.NewReader(trc), cb); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := tau.NewTraceWriter(&buf, 1)
	// Reproduce the callback listing of Figure 3 in the paper.
	tw.EnterState(1.42947e+06, tau.StateMPISend)
	tw.EventTrigger(1.42947e+06, tau.EventPAPIFlops, 164035532)
	tw.EventTrigger(1.4295e+06, tau.EventMsgSize, 163840)
	tw.SendMessage(1.4295e+06, 0, 0, 163840, 1, 0)
	tw.EventTrigger(1.4299e+06, tau.EventPAPIFlops, 164035624)
	tw.LeaveState(1.4299e+06, tau.StateMPISend)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	got := collectAll(t, buf.Bytes())
	want := []record{
		{kind: "enter", time: 1.42947e+06, id: tau.StateMPISend},
		{kind: "trigger", time: 1.42947e+06, id: tau.EventPAPIFlops, value: 164035532},
		{kind: "trigger", time: 1.4295e+06, id: tau.EventMsgSize, value: 163840},
		{kind: "send", time: 1.4295e+06, peer: 0, size: 163840},
		{kind: "trigger", time: 1.4299e+06, id: tau.EventPAPIFlops, value: 164035624},
		{kind: "leave", time: 1.4299e+06, id: tau.StateMPISend},
		{kind: "end", id: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("records = %d, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if err := Read(strings.NewReader("GARBAGE"), Callbacks{}); err == nil {
		t.Fatal("expected magic error")
	}
	if err := Read(strings.NewReader("TAUTRC\xFF\x00"), Callbacks{}); err == nil {
		t.Fatal("expected version error")
	}
	if err := Read(strings.NewReader(""), Callbacks{}); err == nil {
		t.Fatal("expected short-header error")
	}
}

func TestReadRejectsUnknownRecordKind(t *testing.T) {
	var buf bytes.Buffer
	tw := tau.NewTraceWriter(&buf, 0)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0xEE) // bogus record kind
	buf.Write(make([]byte, 8))
	if err := Read(bytes.NewReader(buf.Bytes()), Callbacks{}); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestNilCallbacksAreSafe(t *testing.T) {
	var buf bytes.Buffer
	tw := tau.NewTraceWriter(&buf, 0)
	tw.EnterState(0, tau.StateMPIBarrier)
	tw.EventTrigger(0, tau.EventPAPIFlops, 1)
	tw.SendMessage(0, 1, 0, 8, 1, 0)
	tw.RecvMessage(0, 1, 0, 8, 1, 0)
	tw.LeaveState(0, tau.StateMPIBarrier)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := Read(bytes.NewReader(buf.Bytes()), Callbacks{}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFilesWithEDF(t *testing.T) {
	dir := t.TempDir()
	trcPath := filepath.Join(dir, tau.TraceFileName(0))
	edfPath := filepath.Join(dir, tau.EventFileName(0))

	tf, err := os.Create(trcPath)
	if err != nil {
		t.Fatal(err)
	}
	tw := tau.NewTraceWriter(tf, 0)
	tw.EnterState(0, tau.StateMPIBarrier)
	tw.LeaveState(1, tau.StateMPIBarrier)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	ef, err := os.Create(edfPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tau.WriteEDF(ef, tau.StandardEDF()); err != nil {
		t.Fatal(err)
	}
	ef.Close()

	var states, events, enters int
	cb := Callbacks{
		DefineState: func(id int, group, name string) { states++ },
		DefineEvent: func(id int, name string) { events++ },
		EnterState:  func(tm float64, node, tid, id int) { enters++ },
	}
	if err := ReadFiles(trcPath, edfPath, cb); err != nil {
		t.Fatal(err)
	}
	if states != len(tau.AllStates()) || events != len(tau.AllEvents()) {
		t.Fatalf("definitions: %d states, %d events", states, events)
	}
	if enters != 1 {
		t.Fatalf("enters = %d", enters)
	}
}
