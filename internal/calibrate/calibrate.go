// Package calibrate implements the calibration procedures of Section 5: the
// instantiation of the platform description with pertinent values. The flop
// rate of the hosts is measured by running a small instrumented instance of
// the target application and computing a weighted average over every CPU
// burst of every process (repeated over several runs to smooth runtime
// variations); the network is instantiated from a SKaMPI-style ping-pong —
// the 1-byte value divided by six gives the link latency (half for the
// one-way trip, a third for the two links and one switch of a cluster path)
// — and a best fit of the piece-wise linear MPI model.
package calibrate

import (
	"fmt"

	"tireplay/internal/mpi"
	"tireplay/internal/smpi"
	"tireplay/internal/tau"
	"tireplay/internal/tfr"
)

// LatencyDivisor converts a 1-byte ping-pong round trip into a link
// latency: two for the one-way message, three for the link-switch-link path
// of a compute cluster (Section 5).
const LatencyDivisor = 6

// RankBursts accumulates the CPU-burst observations of one rank from its
// TAU trace: total flops and total time spent in bursts between MPI calls.
type RankBursts struct {
	Flops   float64
	Seconds float64
	Bursts  int
}

// Rate returns the rank's weighted-average flop rate.
func (r RankBursts) Rate() (float64, error) {
	if r.Seconds <= 0 {
		return 0, fmt.Errorf("calibrate: no positive-duration bursts observed")
	}
	return r.Flops / r.Seconds, nil
}

// MeasureRank extracts the burst statistics of one rank from its trace
// files. Burst boundaries are the PAPI trigger pairs around MPI states: the
// time between the previous state's exit sample and the current state's
// entry sample is a burst, and the counter difference its volume.
func MeasureRank(trcPath, edfPath string) (RankBursts, error) {
	var (
		rb          RankBursts
		inState     bool
		samples     int
		lastExitT   float64
		lastExitV   float64
		started     bool
		lastSampleT float64
		lastSampleV float64
	)
	cb := tfr.Callbacks{
		EnterState: func(t float64, node, tid, id int) {
			inState = true
			samples = 0
		},
		EventTrigger: func(t float64, node, tid, id int, v float64) {
			if id != tau.EventPAPIFlops || !inState {
				return
			}
			if samples == 0 && started {
				flops := v - lastExitV
				dur := t - lastExitT
				if flops > 0 && dur > 0 {
					rb.Flops += flops
					rb.Seconds += dur
					rb.Bursts++
				}
			}
			samples++
			lastSampleT, lastSampleV = t, v
		},
		LeaveState: func(t float64, node, tid, id int) {
			if samples > 0 {
				lastExitT, lastExitV = lastSampleT, lastSampleV
				started = true
			}
			inState = false
		},
	}
	if err := tfr.ReadFiles(trcPath, edfPath, cb); err != nil {
		return RankBursts{}, err
	}
	return rb, nil
}

// MeasureFlopRate measures the calibration flop rate of one acquisition: the
// weighted average rate of each process, averaged over the process set.
func MeasureFlopRate(files *tau.AcquisitionFiles) (perProc []float64, avg float64, err error) {
	n := len(files.TraceFiles)
	perProc = make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		rb, err := MeasureRank(files.TraceFiles[r], files.EventFiles[r])
		if err != nil {
			return nil, 0, fmt.Errorf("calibrate: rank %d: %w", r, err)
		}
		rate, err := rb.Rate()
		if err != nil {
			return nil, 0, fmt.Errorf("calibrate: rank %d: %w", r, err)
		}
		perProc[r] = rate
		sum += rate
	}
	return perProc, sum / float64(n), nil
}

// AverageOverRuns smooths per-run calibration values; the paper repeats the
// procedure five times and averages.
func AverageOverRuns(rates []float64) (float64, error) {
	if len(rates) == 0 {
		return 0, fmt.Errorf("calibrate: no runs")
	}
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	return sum / float64(len(rates)), nil
}

// PingpongLive measures one-way transfer times on the live engine for each
// message size: the Pingpong_Send_Recv experiment of the SKaMPI benchmark
// suite. reps round trips are averaged per size.
func PingpongLive(cfg mpi.LiveConfig, sizes []float64, reps int) ([]smpi.Sample, error) {
	if reps < 1 {
		reps = 1
	}
	cfg.Procs = 2
	samples := make([]smpi.Sample, len(sizes))
	for i, size := range sizes {
		size := size
		var oneWay float64
		_, err := mpi.RunLive(cfg, func(c mpi.Comm) {
			if c.Rank() == 0 {
				start := c.Now()
				for r := 0; r < reps; r++ {
					c.Send(1, size)
					c.Recv(1)
				}
				oneWay = (c.Now() - start) / float64(reps) / 2
			} else {
				for r := 0; r < reps; r++ {
					c.Recv(0)
					c.Send(0, size)
				}
			}
		})
		if err != nil {
			return nil, err
		}
		samples[i] = smpi.Sample{Bytes: size, Time: oneWay}
	}
	return samples, nil
}

// LatencyFromPingpong applies the divide-by-six rule to a 1-byte ping-pong
// round-trip time.
func LatencyFromPingpong(oneByteRoundTrip float64) float64 {
	return oneByteRoundTrip / LatencyDivisor
}

// DefaultPingpongSizes spans the three protocol segments of the MPI model.
func DefaultPingpongSizes() []float64 {
	var sizes []float64
	for s := 1.0; s <= 4*1024*1024; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// FitNetwork runs the full network calibration: ping-pong, latency rule and
// piece-wise linear best fit, returning the fitted model together with the
// derived base latency. bandwidth is the nominal link bandwidth (the paper
// uses the link's nameplate value).
func FitNetwork(cfg mpi.LiveConfig, bandwidth float64) (*smpi.Model, float64, error) {
	samples, err := PingpongLive(cfg, DefaultPingpongSizes(), 3)
	if err != nil {
		return nil, 0, err
	}
	oneByte := samples[0].Time * 2 // back to round trip
	latency := LatencyFromPingpong(oneByte)
	model, err := smpi.Fit(samples, []float64{1024, 64 * 1024}, latency, bandwidth)
	if err != nil {
		return nil, 0, err
	}
	return model, latency, nil
}
