package calibrate

import (
	"math"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/tau"
)

func TestVolumeBucket(t *testing.T) {
	cases := map[float64]int{
		0:    0,
		1:    0,
		2:    1,
		1024: 10,
		1e6:  19,
	}
	for in, want := range cases {
		if got := VolumeBucket(in); got != want {
			t.Errorf("VolumeBucket(%g) = %d, want %d", in, got, want)
		}
	}
	// Bursts within a factor of two share a bin.
	if VolumeBucket(3000) != VolumeBucket(4000) {
		t.Error("nearby volumes split across bins")
	}
}

func TestMeasureBucketRatesSeparatesPhases(t *testing.T) {
	// Two burst classes with different volumes and different rates: the
	// bucketed calibration must recover both, where the single average
	// cannot.
	dir := t.TempDir()
	prog := func(c mpi.Comm) {
		for i := 0; i < 4; i++ {
			c.Compute(1e6) // "fast phase" bursts
			c.Barrier()
			c.Compute(64e6) // "slow phase" bursts
			c.Barrier()
		}
	}
	cfg := mpi.LiveConfig{Procs: 2, FlopRate: 1e9,
		Rate: func(rank int, seq int64, flops float64) float64 {
			if flops > 1e7 {
				return 0.5 // slow phase
			}
			return 2.0 // fast phase
		}}
	_, files, err := tau.AcquireLive(dir, cfg, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	br, err := MeasureBucketRates(files)
	if err != nil {
		t.Fatal(err)
	}
	fast := br.Rate(1e6)
	slow := br.Rate(64e6)
	if math.Abs(fast-2e9)/2e9 > 1e-6 {
		t.Errorf("fast-phase rate = %g, want 2e9", fast)
	}
	if math.Abs(slow-0.5e9)/0.5e9 > 1e-6 {
		t.Errorf("slow-phase rate = %g, want 0.5e9", slow)
	}
	// The average sits between the two and equals total flops over time.
	if br.Average <= slow || br.Average >= fast {
		t.Errorf("average %g outside [%g, %g]", br.Average, slow, fast)
	}
	// Unseen bins fall back to the average.
	if br.Rate(1e12) != br.Average {
		t.Error("unseen bin did not fall back to average")
	}
}

func TestMergeBucketRates(t *testing.T) {
	a := &BucketRates{Rates: map[int]float64{10: 2e9}, Average: 1e9}
	b := &BucketRates{Rates: map[int]float64{10: 4e9, 20: 6e9}, Average: 3e9}
	m, err := MergeBucketRates([]*BucketRates{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Average != 2e9 {
		t.Errorf("average = %g", m.Average)
	}
	if m.Rates[10] != 3e9 {
		t.Errorf("bin 10 = %g", m.Rates[10])
	}
	if m.Rates[20] != 6e9 {
		t.Errorf("bin 20 = %g (single-run bin must not be halved)", m.Rates[20])
	}
	if _, err := MergeBucketRates(nil); err == nil {
		t.Error("expected error for no runs")
	}
}
