package calibrate

import (
	"math"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/tau"
)

func TestMeasureFlopRateRecoverConstantRate(t *testing.T) {
	// Acquire a small program at a known flop rate; the calibration must
	// recover it.
	dir := t.TempDir()
	prog := func(c mpi.Comm) {
		for i := 0; i < 5; i++ {
			c.Compute(1e7)
			c.Barrier()
		}
	}
	const rate = 2.5e9
	_, files, err := tau.AcquireLive(dir, mpi.LiveConfig{Procs: 2, FlopRate: rate}, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	perProc, avg, err := MeasureFlopRate(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(perProc) != 2 {
		t.Fatalf("perProc = %v", perProc)
	}
	if math.Abs(avg-rate)/rate > 1e-6 {
		t.Fatalf("calibrated rate = %g, want %g", avg, rate)
	}
}

func TestMeasureFlopRateWeightedAverage(t *testing.T) {
	// With variable per-burst rates, the calibration is flops-weighted:
	// two bursts of 1e7 flops at rates 1e9 and 0.5e9 take 0.01 s and
	// 0.02 s, so the weighted average is 2e7/0.03 = 6.67e8.
	dir := t.TempDir()
	prog := func(c mpi.Comm) {
		c.Compute(1e7)
		c.Barrier()
		c.Compute(1e7)
		c.Barrier()
	}
	cfg := mpi.LiveConfig{Procs: 2, FlopRate: 1e9,
		Rate: func(rank int, seq int64, flops float64) float64 {
			if seq == 0 {
				return 1.0
			}
			return 0.5
		}}
	_, files, err := tau.AcquireLive(dir, cfg, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	_, avg, err := MeasureFlopRate(files)
	if err != nil {
		t.Fatal(err)
	}
	want := 2e7 / 0.03
	if math.Abs(avg-want)/want > 1e-6 {
		t.Fatalf("weighted rate = %g, want %g", avg, want)
	}
}

func TestAverageOverRuns(t *testing.T) {
	avg, err := AverageOverRuns([]float64{1, 2, 3, 4, 5})
	if err != nil || avg != 3 {
		t.Fatalf("avg = %g, err = %v", avg, err)
	}
	if _, err := AverageOverRuns(nil); err == nil {
		t.Fatal("expected error for no runs")
	}
}

func TestPingpongLiveTimesIncreaseWithSize(t *testing.T) {
	cfg := mpi.LiveConfig{Latency: 5e-5, Bandwidth: 1.25e8}
	samples, err := PingpongLive(cfg, []float64{1, 1024, 1e6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %v", samples)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Time <= samples[i-1].Time {
			t.Fatalf("non-increasing ping-pong times: %+v", samples)
		}
	}
	// The 1-byte one-way time is about the configured latency.
	if samples[0].Time < 4e-5 || samples[0].Time > 7e-5 {
		t.Fatalf("1-byte one-way = %g, want ~5e-5", samples[0].Time)
	}
}

func TestLatencyRule(t *testing.T) {
	got := LatencyFromPingpong(6e-4)
	if math.Abs(got-1e-4) > 1e-12 {
		t.Fatalf("LatencyFromPingpong = %g", got)
	}
}

func TestFitNetworkRoundTrip(t *testing.T) {
	// Calibrate against a live engine with known parameters; the fitted
	// model must predict transfer times close to the engine's own.
	cfg := mpi.LiveConfig{Latency: 5e-5, Bandwidth: 1.25e8}
	model, latency, err := FitNetwork(cfg, 1.25e8)
	if err != nil {
		t.Fatal(err)
	}
	if latency <= 0 {
		t.Fatal("non-positive fitted latency")
	}
	for _, size := range []float64{512, 8 * 1024, 1e6} {
		want := 5e-5 + size/1.25e8 // engine's one-way time
		got := model.PredictTime(size, latency, 1.25e8)
		if math.Abs(got-want)/want > 0.25 {
			t.Errorf("size %g: fitted %g, engine %g", size, got, want)
		}
	}
}

func TestDefaultPingpongSizesSpanSegments(t *testing.T) {
	sizes := DefaultPingpongSizes()
	if sizes[0] != 1 {
		t.Fatal("sizes must start at 1 byte")
	}
	var small, mid, large bool
	for _, s := range sizes {
		switch {
		case s < 1024:
			small = true
		case s < 64*1024:
			mid = true
		default:
			large = true
		}
	}
	if !small || !mid || !large {
		t.Fatalf("sizes do not span all segments: %v", sizes)
	}
}
