package calibrate

import (
	"fmt"
	"math"

	"tireplay/internal/tau"
	"tireplay/internal/tfr"
)

// The paper attributes the replay's accuracy gap to using one average flop
// rate although "the flop rate is not constant over the computation of a LU
// benchmark", and suggests acquiring "more information on each computation
// during the calibration step to adapt the flop rate accordingly"
// (Section 6.4). This file implements that refinement: CPU bursts are
// binned by volume — in LU, each SSOR phase has a characteristic burst
// volume, so volume is a workable phase signature — and a rate is
// calibrated per bin.

// VolumeBucket maps a burst volume to its bin: the integer binary order of
// magnitude, so bursts within a factor of two share a bin.
func VolumeBucket(flops float64) int {
	if flops <= 1 {
		return 0
	}
	return int(math.Log2(flops))
}

// BucketRates holds per-bin calibrated rates with the global average as a
// fallback for bins never observed during calibration.
type BucketRates struct {
	Rates   map[int]float64
	Average float64
}

// Rate returns the calibrated rate for a burst of the given volume.
func (b *BucketRates) Rate(flops float64) float64 {
	if r, ok := b.Rates[VolumeBucket(flops)]; ok {
		return r
	}
	return b.Average
}

// measureRankBuckets folds one rank's bursts into the accumulators.
func measureRankBuckets(trcPath, edfPath string, flopsAcc, timeAcc map[int]float64) (totalFlops, totalTime float64, err error) {
	var (
		inState     bool
		samples     int
		lastExitT   float64
		lastExitV   float64
		started     bool
		lastSampleT float64
		lastSampleV float64
	)
	cb := tfr.Callbacks{
		EnterState: func(t float64, node, tid, id int) {
			inState = true
			samples = 0
		},
		EventTrigger: func(t float64, node, tid, id int, v float64) {
			if id != tau.EventPAPIFlops || !inState {
				return
			}
			if samples == 0 && started {
				flops := v - lastExitV
				dur := t - lastExitT
				if flops > 0 && dur > 0 {
					b := VolumeBucket(flops)
					flopsAcc[b] += flops
					timeAcc[b] += dur
					totalFlops += flops
					totalTime += dur
				}
			}
			samples++
			lastSampleT, lastSampleV = t, v
		},
		LeaveState: func(t float64, node, tid, id int) {
			if samples > 0 {
				lastExitT, lastExitV = lastSampleT, lastSampleV
				started = true
			}
			inState = false
		},
	}
	if err := tfr.ReadFiles(trcPath, edfPath, cb); err != nil {
		return 0, 0, err
	}
	return totalFlops, totalTime, nil
}

// MeasureBucketRates calibrates a per-volume-bin flop rate from an
// acquisition, the refinement of MeasureFlopRate suggested by Section 6.4.
func MeasureBucketRates(files *tau.AcquisitionFiles) (*BucketRates, error) {
	flopsAcc := make(map[int]float64)
	timeAcc := make(map[int]float64)
	var totalFlops, totalTime float64
	for r := range files.TraceFiles {
		tf, tt, err := measureRankBuckets(files.TraceFiles[r], files.EventFiles[r], flopsAcc, timeAcc)
		if err != nil {
			return nil, fmt.Errorf("calibrate: rank %d: %w", r, err)
		}
		totalFlops += tf
		totalTime += tt
	}
	if totalTime <= 0 {
		return nil, fmt.Errorf("calibrate: no positive-duration bursts observed")
	}
	br := &BucketRates{Rates: make(map[int]float64), Average: totalFlops / totalTime}
	for b, f := range flopsAcc {
		if timeAcc[b] > 0 {
			br.Rates[b] = f / timeAcc[b]
		}
	}
	return br, nil
}

// MergeBucketRates averages calibrations from several runs, weighting each
// bin by presence.
func MergeBucketRates(runs []*BucketRates) (*BucketRates, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("calibrate: no runs")
	}
	out := &BucketRates{Rates: make(map[int]float64)}
	counts := make(map[int]int)
	for _, r := range runs {
		out.Average += r.Average
		for b, v := range r.Rates {
			out.Rates[b] += v
			counts[b]++
		}
	}
	out.Average /= float64(len(runs))
	for b := range out.Rates {
		out.Rates[b] /= float64(counts[b])
	}
	return out, nil
}
