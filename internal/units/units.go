// Package units provides parsing and formatting of the physical quantities
// used throughout the trace-replay framework: computation volumes in floating
// point operations (flops), communication volumes in bytes, rates in flop/s
// and byte/s, and simulated durations in seconds.
//
// The accepted syntax follows the conventions of SimGrid platform files
// ("1.17E9", "1.25E8") extended with the usual binary and decimal suffixes
// ("32.5GiB", "1GB", "2.6GHz" for flop rates expressed per cycle-equivalent).
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Binary (IEC) and decimal (SI) multipliers used by the suffix parser.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40

	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12
)

// suffixes maps a unit suffix to its multiplier. Longest match wins.
var suffixes = []struct {
	name string
	mult float64
}{
	{"KiB", KiB}, {"MiB", MiB}, {"GiB", GiB}, {"TiB", TiB},
	{"kB", KB}, {"KB", KB}, {"MB", MB}, {"GB", GB}, {"TB", TB},
	{"Kf", 1e3}, {"Mf", 1e6}, {"Gf", 1e9}, {"Tf", 1e12},
	{"kHz", 1e3}, {"MHz", 1e6}, {"GHz", 1e9},
	{"k", 1e3}, {"K", 1e3}, {"M", 1e6}, {"G", 1e9}, {"T", 1e12},
	{"B", 1}, {"f", 1},
}

// ParseQuantity parses a value with an optional multiplier suffix, e.g.
// "1.25E8", "32.5GiB", "1e6", "2.6GHz". Unit names ("B", "f", "Hz") only
// scale the value; dimensional correctness is the caller's concern.
func ParseQuantity(s string) (float64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty quantity")
	}
	mult := 1.0
	// Longest-suffix match, but only when the remainder still parses as a
	// number. This keeps scientific notation ("1.25E8") intact: its trailing
	// "8" is a digit, so no suffix strip applies.
	for _, suf := range suffixes {
		if strings.HasSuffix(t, suf.name) {
			head := strings.TrimSpace(strings.TrimSuffix(t, suf.name))
			if head == "" {
				continue
			}
			if _, err := strconv.ParseFloat(head, 64); err == nil {
				t = head
				mult = suf.mult
				break
			}
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse quantity %q: %w", s, err)
	}
	return v * mult, nil
}

// MustParse is ParseQuantity that panics on error; intended for
// compile-time-constant strings in tests and builders.
func MustParse(s string) float64 {
	v, err := ParseQuantity(s)
	if err != nil {
		panic(err)
	}
	return v
}

// FormatBytes renders a byte count with binary suffixes, e.g. "32.5 GiB".
func FormatBytes(b float64) string {
	switch {
	case math.Abs(b) >= TiB:
		return fmt.Sprintf("%.2f TiB", b/TiB)
	case math.Abs(b) >= GiB:
		return fmt.Sprintf("%.2f GiB", b/GiB)
	case math.Abs(b) >= MiB:
		return fmt.Sprintf("%.2f MiB", b/MiB)
	case math.Abs(b) >= KiB:
		return fmt.Sprintf("%.2f KiB", b/KiB)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// FormatFlops renders a flop count with SI suffixes, e.g. "1.00 Mflop".
func FormatFlops(f float64) string {
	switch {
	case math.Abs(f) >= 1e12:
		return fmt.Sprintf("%.2f Tflop", f/1e12)
	case math.Abs(f) >= 1e9:
		return fmt.Sprintf("%.2f Gflop", f/1e9)
	case math.Abs(f) >= 1e6:
		return fmt.Sprintf("%.2f Mflop", f/1e6)
	case math.Abs(f) >= 1e3:
		return fmt.Sprintf("%.2f Kflop", f/1e3)
	default:
		return fmt.Sprintf("%.0f flop", f)
	}
}

// FormatRate renders a rate (flop/s or B/s) with SI suffixes and the given
// unit name, e.g. FormatRate(1.25e8, "B/s") = "125.00 MB/s".
func FormatRate(r float64, unit string) string {
	switch {
	case math.Abs(r) >= 1e12:
		return fmt.Sprintf("%.2f T%s", r/1e12, unit)
	case math.Abs(r) >= 1e9:
		return fmt.Sprintf("%.2f G%s", r/1e9, unit)
	case math.Abs(r) >= 1e6:
		return fmt.Sprintf("%.2f M%s", r/1e6, unit)
	case math.Abs(r) >= 1e3:
		return fmt.Sprintf("%.2f K%s", r/1e3, unit)
	default:
		return fmt.Sprintf("%.2f %s", r, unit)
	}
}

// FormatSeconds renders a simulated duration, switching between
// micro/milli/plain seconds for readability in reports.
func FormatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0 s"
	case math.Abs(s) < 1e-3:
		return fmt.Sprintf("%.2f us", s*1e6)
	case math.Abs(s) < 1:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.2f s", s)
	}
}
