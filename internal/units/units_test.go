package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestParseQuantityPlainNumbers(t *testing.T) {
	cases := map[string]float64{
		"0":        0,
		"1":        1,
		"1e6":      1e6,
		"1.25E8":   1.25e8,
		"1.17E9":   1.17e9,
		"16.67E-6": 16.67e-6,
		"-3.5":     -3.5,
	}
	for in, want := range cases {
		got, err := ParseQuantity(in)
		if err != nil {
			t.Fatalf("ParseQuantity(%q): %v", in, err)
		}
		if !almostEqual(got, want) {
			t.Errorf("ParseQuantity(%q) = %g, want %g", in, got, want)
		}
	}
}

func TestParseQuantitySuffixes(t *testing.T) {
	cases := map[string]float64{
		"1KiB":     1024,
		"1 KiB":    1024,
		"32.5GiB":  32.5 * GiB,
		"252.5GiB": 252.5 * GiB,
		"1.2GiB":   1.2 * GiB,
		"1GB":      1e9,
		"10MB":     1e7,
		"2.6GHz":   2.6e9,
		"1Mf":      1e6,
		"100B":     100,
		"5k":       5e3,
		"3M":       3e6,
	}
	for in, want := range cases {
		got, err := ParseQuantity(in)
		if err != nil {
			t.Fatalf("ParseQuantity(%q): %v", in, err)
		}
		if !almostEqual(got, want) {
			t.Errorf("ParseQuantity(%q) = %g, want %g", in, got, want)
		}
	}
}

func TestParseQuantityErrors(t *testing.T) {
	for _, in := range []string{"", "   ", "GiB", "abc", "12xyz", "--3"} {
		if _, err := ParseQuantity(in); err == nil {
			t.Errorf("ParseQuantity(%q): expected error, got none", in)
		}
	}
}

func TestParseQuantityScientificNotSuffixed(t *testing.T) {
	// "1.25E8" must parse as scientific notation, not as 1.25 "E8".
	got, err := ParseQuantity("1.25E8")
	if err != nil || got != 1.25e8 {
		t.Fatalf("got %g, %v; want 1.25e8", got, err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on invalid input did not panic")
		}
	}()
	MustParse("not a number")
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		0:          "0 B",
		512:        "512 B",
		1024:       "1.00 KiB",
		1536:       "1.50 KiB",
		1 << 20:    "1.00 MiB",
		1 << 30:    "1.00 GiB",
		1 << 40:    "1.00 TiB",
		32.5 * GiB: "32.50 GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatFlops(t *testing.T) {
	cases := map[float64]string{
		1:    "1 flop",
		1e3:  "1.00 Kflop",
		1e6:  "1.00 Mflop",
		1e9:  "1.00 Gflop",
		1e12: "1.00 Tflop",
	}
	for in, want := range cases {
		if got := FormatFlops(in); got != want {
			t.Errorf("FormatFlops(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	if got := FormatRate(1.25e8, "B/s"); got != "125.00 MB/s" {
		t.Errorf("FormatRate = %q", got)
	}
	if got := FormatRate(1.17e9, "flop/s"); got != "1.17 Gflop/s" {
		t.Errorf("FormatRate = %q", got)
	}
	if got := FormatRate(42, "B/s"); got != "42.00 B/s" {
		t.Errorf("FormatRate = %q", got)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:        "0 s",
		1e-6:     "1.00 us",
		16.67e-6: "16.67 us",
		1e-3:     "1.00 ms",
		0.5:      "500.00 ms",
		20.73:    "20.73 s",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", in, got, want)
		}
	}
}

// Property: formatting a byte count and re-parsing the leading quantity stays
// within the 2-decimal rounding tolerance of the original.
func TestFormatParseRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		b := float64(raw)
		s := FormatBytes(b)
		// Reconstruct: strip the space before the unit for the parser.
		compact := ""
		for _, part := range []rune(s) {
			if part != ' ' {
				compact += string(part)
			}
		}
		v, err := ParseQuantity(compact)
		if err != nil {
			return false
		}
		if b == 0 {
			return v == 0
		}
		return math.Abs(v-b)/math.Max(b, 1) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
