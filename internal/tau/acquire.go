package tau

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tireplay/internal/mpi"
	"tireplay/internal/platform"
)

// AcquisitionFiles lists what one instrumented execution left on disk.
type AcquisitionFiles struct {
	Dir        string
	TraceFiles []string // tautrace.<rank>.0.0.trc, indexed by rank
	EventFiles []string // events.<rank>.edf, indexed by rank
	Events     []int64  // records written per rank
	TraceBytes int64    // total size of the binary trace files
}

// acquireCommon wires per-rank trace writers and runs the program through
// the given engine runner.
func acquireCommon(dir string, nprocs int, overhead float64,
	run func(wrap func(int, mpi.Comm) mpi.Comm, prog mpi.Program) (float64, error),
	prog mpi.Program) (float64, *AcquisitionFiles, error) {

	if nprocs <= 0 {
		return 0, nil, fmt.Errorf("tau: acquisition with %d processes", nprocs)
	}
	files := &AcquisitionFiles{
		Dir:        dir,
		TraceFiles: make([]string, nprocs),
		EventFiles: make([]string, nprocs),
		Events:     make([]int64, nprocs),
	}
	osFiles := make([]*os.File, nprocs)
	writers := make([]*TraceWriter, nprocs)
	for r := 0; r < nprocs; r++ {
		p := filepath.Join(dir, TraceFileName(r))
		f, err := os.Create(p)
		if err != nil {
			return 0, nil, err
		}
		osFiles[r] = f
		writers[r] = NewTraceWriter(f, r)
		files.TraceFiles[r] = p
	}
	closeAll := func() {
		for _, f := range osFiles {
			if f != nil {
				f.Close()
			}
		}
	}

	wrap := func(rank int, c mpi.Comm) mpi.Comm {
		return Instrument(c, writers[rank], overhead)
	}
	makespan, err := run(wrap, WrapProgram(prog))
	if err != nil {
		closeAll()
		return 0, nil, err
	}

	for r := 0; r < nprocs; r++ {
		if err := writers[r].Flush(); err != nil {
			closeAll()
			return 0, nil, err
		}
		files.Events[r] = writers[r].Events()
		files.TraceBytes += writers[r].BytesWritten()
		if err := osFiles[r].Close(); err != nil {
			return 0, nil, err
		}
		osFiles[r] = nil

		ep := filepath.Join(dir, EventFileName(r))
		ef, err := os.Create(ep)
		if err != nil {
			return 0, nil, err
		}
		if err := WriteEDF(ef, StandardEDF()); err != nil {
			ef.Close()
			return 0, nil, err
		}
		if err := ef.Close(); err != nil {
			return 0, nil, err
		}
		files.EventFiles[r] = ep
	}
	return makespan, files, nil
}

// AcquireLive executes prog under instrumentation on the live engine,
// writing TAU trace and event files into dir. It returns the instrumented
// makespan and the file inventory.
func AcquireLive(dir string, cfg mpi.LiveConfig, overheadPerEvent float64,
	prog mpi.Program) (float64, *AcquisitionFiles, error) {
	return acquireCommon(dir, cfg.Procs, overheadPerEvent,
		func(wrap func(int, mpi.Comm) mpi.Comm, p mpi.Program) (float64, error) {
			return mpi.RunLiveWrapped(cfg, wrap, p)
		}, prog)
}

// AcquireSim executes prog under instrumentation on the simulation engine
// over the given platform and deployment, writing TAU files into dir. The
// build's kernel is consumed by the run.
func AcquireSim(dir string, b *platform.Build, depl *platform.Deployment,
	cfg mpi.SimConfig, overheadPerEvent float64, prog mpi.Program) (float64, *AcquisitionFiles, error) {
	return acquireCommon(dir, len(depl.Processes), overheadPerEvent,
		func(wrap func(int, mpi.Comm) mpi.Comm, p mpi.Program) (float64, error) {
			return mpi.RunSimWrapped(b, depl, cfg, wrap, p)
		}, prog)
}

// InstrumentedTimeSim runs prog instrumented on the simulation engine but
// discards the trace records: it returns only the instrumented execution
// time. The Table 2 campaigns use it — they compare execution times across
// acquisition modes without needing the trace files themselves.
func InstrumentedTimeSim(b *platform.Build, depl *platform.Deployment,
	cfg mpi.SimConfig, overheadPerEvent float64, prog mpi.Program) (float64, error) {
	writers := make([]*TraceWriter, len(depl.Processes))
	for i := range writers {
		writers[i] = NewTraceWriter(io.Discard, i)
	}
	wrap := func(rank int, c mpi.Comm) mpi.Comm {
		return Instrument(c, writers[rank], overheadPerEvent)
	}
	return mpi.RunSimWrapped(b, depl, cfg, wrap, WrapProgram(prog))
}
