package tau

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary trace format: header then a stream of records.
//
//	magic "TAUTRC" | version byte | node uvarint
//
// Records start with a kind byte; times are 8-byte little-endian float64
// seconds, identifiers are unsigned varints:
//
//	kindEnterState   time stateID
//	kindLeaveState   time stateID
//	kindEventTrigger time eventID value(float64)
//	kindSendMessage  time dstNode dstThread size(float64) tag comm
//	kindRecvMessage  time srcNode srcThread size(float64) tag comm
const (
	traceMagic   = "TAUTRC"
	traceVersion = 1
)

// Record kinds in the binary trace stream.
const (
	kindEnterState byte = iota + 1
	kindLeaveState
	kindEventTrigger
	kindSendMessage
	kindRecvMessage
)

// TraceWriter streams TAU-style records for one rank.
type TraceWriter struct {
	node    int
	bw      *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
	events  int64
	written int64
}

// NewTraceWriter starts a binary trace for the given node (rank).
func NewTraceWriter(w io.Writer, node int) *TraceWriter {
	tw := &TraceWriter{node: node, bw: bufio.NewWriterSize(w, 1<<16)}
	tw.writeString(traceMagic)
	tw.writeByte(traceVersion)
	tw.writeUvarint(uint64(node))
	return tw
}

func (tw *TraceWriter) writeString(s string) {
	if tw.err != nil {
		return
	}
	n, err := tw.bw.WriteString(s)
	tw.written += int64(n)
	tw.err = err
}

func (tw *TraceWriter) writeByte(b byte) {
	if tw.err != nil {
		return
	}
	tw.err = tw.bw.WriteByte(b)
	tw.written++
}

func (tw *TraceWriter) writeUvarint(v uint64) {
	if tw.err != nil {
		return
	}
	n := binary.PutUvarint(tw.scratch[:], v)
	m, err := tw.bw.Write(tw.scratch[:n])
	tw.written += int64(m)
	tw.err = err
}

func (tw *TraceWriter) writeFloat(v float64) {
	if tw.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	n, err := tw.bw.Write(buf[:])
	tw.written += int64(n)
	tw.err = err
}

// EnterState records entry into an instrumented function.
func (tw *TraceWriter) EnterState(t float64, stateID int) {
	tw.writeByte(kindEnterState)
	tw.writeFloat(t)
	tw.writeUvarint(uint64(stateID))
	tw.events++
}

// LeaveState records exit from an instrumented function.
func (tw *TraceWriter) LeaveState(t float64, stateID int) {
	tw.writeByte(kindLeaveState)
	tw.writeFloat(t)
	tw.writeUvarint(uint64(stateID))
	tw.events++
}

// EventTrigger records a counter sample (TriggerValue semantics).
func (tw *TraceWriter) EventTrigger(t float64, eventID int, value float64) {
	tw.writeByte(kindEventTrigger)
	tw.writeFloat(t)
	tw.writeUvarint(uint64(eventID))
	tw.writeFloat(value)
	tw.events++
}

// SendMessage records an outgoing point-to-point message.
func (tw *TraceWriter) SendMessage(t float64, dstNode, dstThread int, size float64, tag, comm int) {
	tw.writeByte(kindSendMessage)
	tw.writeFloat(t)
	tw.writeUvarint(uint64(dstNode))
	tw.writeUvarint(uint64(dstThread))
	tw.writeFloat(size)
	tw.writeUvarint(uint64(tag))
	tw.writeUvarint(uint64(comm))
	tw.events++
}

// RecvMessage records an incoming point-to-point message.
func (tw *TraceWriter) RecvMessage(t float64, srcNode, srcThread int, size float64, tag, comm int) {
	tw.writeByte(kindRecvMessage)
	tw.writeFloat(t)
	tw.writeUvarint(uint64(srcNode))
	tw.writeUvarint(uint64(srcThread))
	tw.writeFloat(size)
	tw.writeUvarint(uint64(tag))
	tw.writeUvarint(uint64(comm))
	tw.events++
}

// Events reports the number of records written.
func (tw *TraceWriter) Events() int64 { return tw.events }

// BytesWritten reports the bytes emitted, including buffered ones.
func (tw *TraceWriter) BytesWritten() int64 { return tw.written }

// Flush drains the buffer and reports any deferred write error.
func (tw *TraceWriter) Flush() error {
	if tw.err != nil {
		return fmt.Errorf("tau: trace write for node %d: %w", tw.node, tw.err)
	}
	return tw.bw.Flush()
}
