package tau

import (
	"bytes"
	"strings"
	"testing"

	"tireplay/internal/mpi"
)

func TestEDFRoundTrip(t *testing.T) {
	entries := StandardEDF()
	var buf bytes.Buffer
	if err := WriteEDF(&buf, entries); err != nil {
		t.Fatal(err)
	}
	again, err := ParseEDF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(entries) {
		t.Fatalf("entries = %d, want %d", len(again), len(entries))
	}
	for i := range entries {
		if entries[i] != again[i] {
			t.Errorf("entry %d: %+v != %+v", i, entries[i], again[i])
		}
	}
}

func TestEDFMatchesPaperShape(t *testing.T) {
	// The paper shows: 49 MPI 0 "MPI_Send() " EntryExit
	//                   1 TAUEVENT 1 "PAPI_FP_OPS" TriggerValue
	var buf bytes.Buffer
	if err := WriteEDF(&buf, StandardEDF()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `49 MPI 0 "MPI_Send()" EntryExit`) {
		t.Errorf("missing MPI_Send definition:\n%s", s)
	}
	if !strings.Contains(s, `1 TAUEVENT 1 "PAPI_FP_OPS" TriggerValue`) {
		t.Errorf("missing PAPI definition:\n%s", s)
	}
}

func TestParseEDFRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"49 MPI zero \"X\" EntryExit\n",
		"49 MPI 0 X EntryExit\n",
		"49 MPI 0 \"X\"\n",
		"nope\n",
	} {
		if _, err := ParseEDF(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseEDF(%q): expected error", doc)
		}
	}
}

func TestTraceWriterCounts(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, 3)
	tw.EnterState(1.0, StateMPISend)
	tw.EventTrigger(1.1, EventPAPIFlops, 12345)
	tw.SendMessage(1.2, 0, 0, 163840, 1, 0)
	tw.EventTrigger(1.3, EventPAPIFlops, 12345)
	tw.LeaveState(1.4, StateMPISend)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != 5 {
		t.Fatalf("Events = %d", tw.Events())
	}
	if tw.BytesWritten() == 0 || int64(buf.Len()) != tw.BytesWritten() {
		t.Fatalf("BytesWritten = %d, buffer = %d", tw.BytesWritten(), buf.Len())
	}
}

func TestFileNames(t *testing.T) {
	if TraceFileName(7) != "tautrace.7.0.0.trc" {
		t.Errorf("TraceFileName = %q", TraceFileName(7))
	}
	if EventFileName(7) != "events.7.edf" {
		t.Errorf("EventFileName = %q", EventFileName(7))
	}
}

func TestStateNamesComplete(t *testing.T) {
	for _, id := range AllStates() {
		if strings.HasPrefix(StateName(id), "state_") {
			t.Errorf("state %d has no name", id)
		}
	}
	for _, id := range AllEvents() {
		if strings.HasPrefix(EventName(id), "event_") {
			t.Errorf("event %d has no name", id)
		}
	}
}

// fakeComm is a minimal Comm for wrapper-level tests.
type fakeComm struct {
	rank, size int
	clock      float64
	flops      float64
	calls      []string
}

func (f *fakeComm) Rank() int          { return f.rank }
func (f *fakeComm) Size() int          { return f.size }
func (f *fakeComm) Now() float64       { return f.clock }
func (f *fakeComm) FlopCount() float64 { return f.flops }
func (f *fakeComm) Compute(v float64) {
	f.flops += v
	f.clock += v / 1e9
	f.calls = append(f.calls, "compute")
}
func (f *fakeComm) Delay(s float64) { f.clock += s }
func (f *fakeComm) Send(dst int, b float64) {
	f.clock += 1e-5
	f.calls = append(f.calls, "send")
}
func (f *fakeComm) Isend(dst int, b float64) mpi.Request {
	f.calls = append(f.calls, "isend")
	return "isend-req"
}
func (f *fakeComm) Recv(src int) float64 {
	f.clock += 1e-5
	f.calls = append(f.calls, "recv")
	return 64
}
func (f *fakeComm) Irecv(src int) mpi.Request {
	f.calls = append(f.calls, "irecv")
	return "irecv-req"
}
func (f *fakeComm) Wait(r mpi.Request) mpi.Completion {
	f.calls = append(f.calls, "wait")
	if r == "irecv-req" {
		return mpi.Completion{IsRecv: true, Peer: 2, Bytes: 64}
	}
	return mpi.Completion{Peer: 1, Bytes: 32}
}
func (f *fakeComm) Bcast(b float64)          { f.calls = append(f.calls, "bcast") }
func (f *fakeComm) Reduce(vc, vp float64)    { f.flops += vp; f.calls = append(f.calls, "reduce") }
func (f *fakeComm) Allreduce(vc, vp float64) { f.flops += vp; f.calls = append(f.calls, "allreduce") }
func (f *fakeComm) Barrier()                 { f.calls = append(f.calls, "barrier") }

func TestInstrumentForwardsOperations(t *testing.T) {
	var buf bytes.Buffer
	inner := &fakeComm{rank: 1, size: 4}
	tc := Instrument(inner, NewTraceWriter(&buf, 1), 0)
	tc.Begin()
	tc.Compute(1e6)
	tc.Send(0, 128)
	r := tc.Irecv(2)
	tc.Wait(r)
	tc.Barrier()
	tc.End()
	want := []string{"compute", "send", "irecv", "wait", "barrier"}
	if len(inner.calls) != len(want) {
		t.Fatalf("calls = %v", inner.calls)
	}
	for i, w := range want {
		if inner.calls[i] != w {
			t.Fatalf("calls = %v", inner.calls)
		}
	}
	if tc.Rank() != 1 || tc.Size() != 4 || tc.FlopCount() != 1e6 {
		t.Fatal("passthrough accessors wrong")
	}
}

func TestInstrumentOverheadAdvancesClock(t *testing.T) {
	var buf bytes.Buffer
	inner := &fakeComm{rank: 0, size: 2}
	tc := Instrument(inner, NewTraceWriter(&buf, 0), 1e-6)
	tc.Send(1, 128)
	// Send writes 6 records (enter, papi, size, sendmsg, papi, leave), each
	// charged 1 us, plus the fake send's own 10 us.
	want := 6e-6 + 1e-5
	if diff := inner.clock - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("clock = %g, want %g", inner.clock, want)
	}
}

func TestDisableInstrumentationStopsRecords(t *testing.T) {
	var buf bytes.Buffer
	inner := &fakeComm{rank: 0, size: 2}
	tw := NewTraceWriter(&buf, 0)
	tc := Instrument(inner, tw, 0)
	tc.DisableInstrumentation()
	tc.Send(1, 128)
	tc.Barrier()
	if tw.Events() != 0 {
		t.Fatalf("disabled instrumentation wrote %d events", tw.Events())
	}
	tc.EnableInstrumentation()
	tc.Barrier()
	if tw.Events() == 0 {
		t.Fatal("re-enabled instrumentation wrote nothing")
	}
	// Operations still executed while disabled.
	if len(inner.calls) != 3 {
		t.Fatalf("calls = %v", inner.calls)
	}
}

func TestWrapProgramOnPlainComm(t *testing.T) {
	// WrapProgram must pass through non-traced comms unchanged.
	ran := false
	prog := WrapProgram(func(c mpi.Comm) { ran = true })
	prog(&fakeComm{rank: 0, size: 1})
	if !ran {
		t.Fatal("wrapped program did not run")
	}
}
