package tau

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// EDFEntry describes one traced function or trigger event, mirroring the
// event files of Section 4.3: numerical id, group ("MPI" for MPI functions,
// "TAUEVENT" for counters), a tag distinguishing TAU events from user ones,
// the function name, and the parameter keyword — "EntryExit" for functions
// bracketed by entry and exit events, "TriggerValue" for monotonic counters.
type EDFEntry struct {
	ID    int
	Group string
	Tag   int
	Name  string
	Kind  string // "EntryExit" or "TriggerValue"
}

// StandardEDF returns the event definitions the instrumentation layer emits:
// every MPI state plus the PAPI flop counter and the message-size trigger.
func StandardEDF() []EDFEntry {
	var out []EDFEntry
	for _, id := range AllStates() {
		out = append(out, EDFEntry{ID: id, Group: "MPI", Tag: 0, Name: StateName(id), Kind: "EntryExit"})
	}
	out = append(out,
		EDFEntry{ID: EventPAPIFlops, Group: "TAUEVENT", Tag: 1, Name: EventName(EventPAPIFlops), Kind: "TriggerValue"},
		EDFEntry{ID: EventMsgSize, Group: "TAUEVENT", Tag: 0, Name: EventName(EventMsgSize), Kind: "TriggerValue"},
	)
	return out
}

// WriteEDF renders an event file, e.g.:
//
//	14 dynamic_trace_events
//	# FunctionId Group Tag "Name" Parameters
//	49 MPI 0 "MPI_Send()" EntryExit
//	1 TAUEVENT 1 "PAPI_FP_OPS" TriggerValue
func WriteEDF(w io.Writer, entries []EDFEntry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d dynamic_trace_events\n", len(entries))
	fmt.Fprintf(bw, "# FunctionId Group Tag \"Name\" Parameters\n")
	for _, e := range entries {
		fmt.Fprintf(bw, "%d %s %d %q %s\n", e.ID, e.Group, e.Tag, e.Name, e.Kind)
	}
	return bw.Flush()
}

// ParseEDF reads an event file back into entries.
func ParseEDF(r io.Reader) ([]EDFEntry, error) {
	sc := bufio.NewScanner(r)
	var out []EDFEntry
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if line == 1 && strings.Contains(text, "dynamic_trace_events") {
			continue
		}
		e, err := parseEDFLine(text)
		if err != nil {
			return nil, fmt.Errorf("tau: edf line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseEDFLine(text string) (EDFEntry, error) {
	// Format: id group tag "name with spaces" kind
	open := strings.IndexByte(text, '"')
	close := strings.LastIndexByte(text, '"')
	if open < 0 || close <= open {
		return EDFEntry{}, fmt.Errorf("missing quoted name in %q", text)
	}
	head := strings.Fields(text[:open])
	if len(head) != 3 {
		return EDFEntry{}, fmt.Errorf("want id group tag before name in %q", text)
	}
	id, err := strconv.Atoi(head[0])
	if err != nil {
		return EDFEntry{}, fmt.Errorf("bad id %q", head[0])
	}
	tag, err := strconv.Atoi(head[2])
	if err != nil {
		return EDFEntry{}, fmt.Errorf("bad tag %q", head[2])
	}
	kind := strings.TrimSpace(text[close+1:])
	if kind == "" {
		return EDFEntry{}, fmt.Errorf("missing parameters keyword in %q", text)
	}
	name, err := strconv.Unquote(text[open : close+1])
	if err != nil {
		name = text[open+1 : close]
	}
	return EDFEntry{ID: id, Group: head[1], Tag: tag, Name: name, Kind: kind}, nil
}
