// Package tau is the instrumentation layer of the acquisition process: the
// stand-in for the TAU performance system used in Section 4 of the paper.
// It wraps an mpi.Comm so that every MPI operation is logged to a binary
// trace file (tautrace.<node>.<context>.<thread>.trc) together with an event
// definition file (events.<node>.edf), in the structure tau2simgrid
// consumes: EnterState/LeaveState brackets around each call, EventTrigger
// records sampling the virtual PAPI_FP_OPS hardware counter, and
// SendMessage/RecvMessage records carrying the communication parameters.
package tau

import "fmt"

// State identifiers of the traced MPI functions. MPI_Send keeps the id 49
// of the paper's extraction example (Section 4.3, Figure 3).
const (
	StateMPISend      = 49
	StateMPIRecv      = 50
	StateMPIIsend     = 51
	StateMPIIrecv     = 52
	StateMPIWait      = 53
	StateMPIBcast     = 54
	StateMPIReduce    = 55
	StateMPIAllreduce = 56
	StateMPIBarrier   = 57
	StateMPICommSize  = 58
	StateMPIInit      = 59
	StateMPIFinalize  = 60
)

// Trigger-event identifiers. PAPI_FP_OPS keeps the id 1 of the paper's
// event-file example; the message-size trigger keeps the id 46 visible in
// the callback listing of Figure 3.
const (
	EventPAPIFlops = 1
	EventMsgSize   = 46
)

// StateName returns the MPI function name of a state id as it appears in
// the event file, e.g. "MPI_Send()".
func StateName(id int) string {
	switch id {
	case StateMPISend:
		return "MPI_Send()"
	case StateMPIRecv:
		return "MPI_Recv()"
	case StateMPIIsend:
		return "MPI_Isend()"
	case StateMPIIrecv:
		return "MPI_Irecv()"
	case StateMPIWait:
		return "MPI_Wait()"
	case StateMPIBcast:
		return "MPI_Bcast()"
	case StateMPIReduce:
		return "MPI_Reduce()"
	case StateMPIAllreduce:
		return "MPI_Allreduce()"
	case StateMPIBarrier:
		return "MPI_Barrier()"
	case StateMPICommSize:
		return "MPI_Comm_size()"
	case StateMPIInit:
		return "MPI_Init()"
	case StateMPIFinalize:
		return "MPI_Finalize()"
	default:
		return fmt.Sprintf("state_%d", id)
	}
}

// AllStates lists every state id the instrumentation can emit.
func AllStates() []int {
	return []int{
		StateMPISend, StateMPIRecv, StateMPIIsend, StateMPIIrecv,
		StateMPIWait, StateMPIBcast, StateMPIReduce, StateMPIAllreduce,
		StateMPIBarrier, StateMPICommSize, StateMPIInit, StateMPIFinalize,
	}
}

// EventName returns the name of a trigger event id.
func EventName(id int) string {
	switch id {
	case EventPAPIFlops:
		return "PAPI_FP_OPS"
	case EventMsgSize:
		return "Message size"
	default:
		return fmt.Sprintf("event_%d", id)
	}
}

// AllEvents lists every trigger event id the instrumentation can emit.
func AllEvents() []int { return []int{EventPAPIFlops, EventMsgSize} }

// TraceFileName is the conventional name of a rank's binary trace:
// tautrace.<node>.<context>.<thread>.trc with context and thread zero for
// single-threaded MPI processes (Section 4.3).
func TraceFileName(node int) string {
	return fmt.Sprintf("tautrace.%d.0.0.trc", node)
}

// EventFileName is the conventional name of a rank's event file.
func EventFileName(node int) string {
	return fmt.Sprintf("events.%d.edf", node)
}
