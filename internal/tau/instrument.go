package tau

import "tireplay/internal/mpi"

// Message metadata constants: the instrumentation uses a fixed tag and the
// world communicator, as in the paper's single-communicator prototype
// (MPI_Comm_split is not implemented, Section 3).
const (
	msgTag    = 1
	worldComm = 0
)

// TracedComm wraps an mpi.Comm so every MPI operation is recorded in the
// TAU binary trace of its rank. The record pattern around each call follows
// Figure 3 of the paper: EnterState, a PAPI_FP_OPS EventTrigger ending the
// preceding CPU burst, the operation's message records, a second PAPI
// trigger starting the next burst, and LeaveState.
type TracedComm struct {
	inner    mpi.Comm
	tw       *TraceWriter
	overhead float64 // tracing overhead per record, in seconds
	enabled  bool
}

var _ mpi.Comm = (*TracedComm)(nil)

// Instrument wraps inner so its MPI activity is recorded to tw.
// overheadPerEvent is the tracing perturbation added to the rank's clock for
// every record written (the "Tracing overhead" component of Figure 7).
func Instrument(inner mpi.Comm, tw *TraceWriter, overheadPerEvent float64) *TracedComm {
	return &TracedComm{inner: inner, tw: tw, overhead: overheadPerEvent, enabled: true}
}

// EnableInstrumentation resumes recording; the counterpart of the
// TAU_ENABLE_INSTRUMENTATION macro of Section 4.1.
func (t *TracedComm) EnableInstrumentation() { t.enabled = true }

// DisableInstrumentation suspends recording: operations still execute but
// leave no trace records, as with TAU's selective instrumentation.
func (t *TracedComm) DisableInstrumentation() { t.enabled = false }

// tick charges the tracing overhead of one record to the rank's clock.
func (t *TracedComm) tick() {
	if t.overhead > 0 {
		t.inner.Delay(t.overhead)
	}
}

func (t *TracedComm) enter(state int) {
	if !t.enabled {
		return
	}
	t.tw.EnterState(t.inner.Now(), state)
	t.tick()
	t.tw.EventTrigger(t.inner.Now(), EventPAPIFlops, t.inner.FlopCount())
	t.tick()
}

func (t *TracedComm) leave(state int) {
	if !t.enabled {
		return
	}
	t.tw.EventTrigger(t.inner.Now(), EventPAPIFlops, t.inner.FlopCount())
	t.tick()
	t.tw.LeaveState(t.inner.Now(), state)
	t.tick()
}

// Begin records the start-of-execution states: MPI_Init and the
// MPI_Comm_size call whose extraction produces the comm_size action that
// must precede any collective in the time-independent trace.
func (t *TracedComm) Begin() {
	t.enter(StateMPIInit)
	t.leave(StateMPIInit)
	t.enter(StateMPICommSize)
	if t.enabled {
		t.tw.EventTrigger(t.inner.Now(), EventMsgSize, float64(t.inner.Size()))
		t.tick()
	}
	t.leave(StateMPICommSize)
}

// End records MPI_Finalize, whose entry PAPI trigger closes the final CPU
// burst of the rank.
func (t *TracedComm) End() {
	t.enter(StateMPIFinalize)
	t.leave(StateMPIFinalize)
}

// Rank returns the wrapped rank.
func (t *TracedComm) Rank() int { return t.inner.Rank() }

// Size returns the world size.
func (t *TracedComm) Size() int { return t.inner.Size() }

// Now returns the rank's virtual time.
func (t *TracedComm) Now() float64 { return t.inner.Now() }

// FlopCount returns the virtual PAPI counter.
func (t *TracedComm) FlopCount() float64 { return t.inner.FlopCount() }

// Compute executes an uninstrumented CPU burst; it produces no trace record
// — the PAPI triggers at the surrounding MPI calls capture its volume.
func (t *TracedComm) Compute(flops float64) { t.inner.Compute(flops) }

// Delay forwards a clock advance.
func (t *TracedComm) Delay(seconds float64) { t.inner.Delay(seconds) }

// Send records and performs a blocking send.
func (t *TracedComm) Send(dst int, bytes float64) {
	t.enter(StateMPISend)
	if t.enabled {
		t.tw.EventTrigger(t.inner.Now(), EventMsgSize, bytes)
		t.tick()
		t.tw.SendMessage(t.inner.Now(), dst, 0, bytes, msgTag, worldComm)
		t.tick()
	}
	t.inner.Send(dst, bytes)
	t.leave(StateMPISend)
}

// Isend records and starts an asynchronous send.
func (t *TracedComm) Isend(dst int, bytes float64) mpi.Request {
	t.enter(StateMPIIsend)
	if t.enabled {
		t.tw.EventTrigger(t.inner.Now(), EventMsgSize, bytes)
		t.tick()
		t.tw.SendMessage(t.inner.Now(), dst, 0, bytes, msgTag, worldComm)
		t.tick()
	}
	req := t.inner.Isend(dst, bytes)
	t.leave(StateMPIIsend)
	return req
}

// Recv records and performs a blocking receive.
func (t *TracedComm) Recv(src int) float64 {
	t.enter(StateMPIRecv)
	bytes := t.inner.Recv(src)
	if t.enabled {
		t.tw.RecvMessage(t.inner.Now(), src, 0, bytes, msgTag, worldComm)
		t.tick()
	}
	t.leave(StateMPIRecv)
	return bytes
}

// Irecv records and posts an asynchronous receive. No RecvMessage record is
// written here: it appears within the matching MPI_Wait, which is why
// tau2simgrid needs its lookup pass (Section 4.3).
func (t *TracedComm) Irecv(src int) mpi.Request {
	t.enter(StateMPIIrecv)
	req := t.inner.Irecv(src)
	t.leave(StateMPIIrecv)
	return req
}

// Wait records and completes an asynchronous operation; receive completions
// carry the RecvMessage record providing the Irecv's source and size.
func (t *TracedComm) Wait(req mpi.Request) mpi.Completion {
	t.enter(StateMPIWait)
	comp := t.inner.Wait(req)
	if t.enabled && comp.IsRecv {
		t.tw.RecvMessage(t.inner.Now(), comp.Peer, 0, comp.Bytes, msgTag, worldComm)
		t.tick()
	}
	t.leave(StateMPIWait)
	return comp
}

// Bcast records and performs a broadcast.
func (t *TracedComm) Bcast(bytes float64) {
	t.enter(StateMPIBcast)
	if t.enabled {
		t.tw.EventTrigger(t.inner.Now(), EventMsgSize, bytes)
		t.tick()
	}
	t.inner.Bcast(bytes)
	t.leave(StateMPIBcast)
}

// Reduce records and performs a reduction; the PAPI trigger pair around the
// call captures the reduction's computation volume (vcomp).
func (t *TracedComm) Reduce(vcomm, vcomp float64) {
	t.enter(StateMPIReduce)
	if t.enabled {
		t.tw.EventTrigger(t.inner.Now(), EventMsgSize, vcomm)
		t.tick()
	}
	t.inner.Reduce(vcomm, vcomp)
	t.leave(StateMPIReduce)
}

// Allreduce records and performs an all-reduce.
func (t *TracedComm) Allreduce(vcomm, vcomp float64) {
	t.enter(StateMPIAllreduce)
	if t.enabled {
		t.tw.EventTrigger(t.inner.Now(), EventMsgSize, vcomm)
		t.tick()
	}
	t.inner.Allreduce(vcomm, vcomp)
	t.leave(StateMPIAllreduce)
}

// Barrier records and performs a barrier.
func (t *TracedComm) Barrier() {
	t.enter(StateMPIBarrier)
	t.inner.Barrier()
	t.leave(StateMPIBarrier)
}

// WrapProgram surrounds a program with Begin/End so traces carry the
// MPI_Init, MPI_Comm_size and MPI_Finalize brackets.
func WrapProgram(prog mpi.Program) mpi.Program {
	return func(c mpi.Comm) {
		if tc, ok := c.(*TracedComm); ok {
			tc.Begin()
			prog(c)
			tc.End()
			return
		}
		prog(c)
	}
}
