// Package smpi implements the piece-wise linear communication model that
// SimGrid dedicates to MPI implementations on compute-cluster interconnects
// (Section 5 of the paper).
//
// Instead of an affine function of message size, the communication time is
// piece-wise linear: a message under ~1 KiB fits within an IP frame and
// achieves a higher data transfer rate, and MPI implementations switch from
// buffered (eager) to synchronous mode above a protocol-dependent size. The
// model is instantiated with 3 segments, i.e. 8 parameters: two segment
// boundaries plus one latency and one bandwidth correction factor per
// segment.
package smpi

import (
	"fmt"
	"math"
	"sort"
)

// Segment is one linear piece of the model, applying to message sizes
// strictly below MaxBytes (the last segment uses +Inf).
type Segment struct {
	MaxBytes  float64 // exclusive upper bound of the segment, +Inf for last
	LatFactor float64 // multiplies the route latency
	BwFactor  float64 // multiplies the nominal bandwidth
}

// Model is a piece-wise linear correction model over message sizes.
// Segments must be sorted by MaxBytes; use New to validate.
type Model struct {
	segments []Segment
}

// New builds a model from segments, sorting them by boundary and validating
// that exactly one unbounded segment terminates the model and that all
// factors are positive.
func New(segments []Segment) (*Model, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("smpi: model needs at least one segment")
	}
	segs := append([]Segment(nil), segments...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].MaxBytes < segs[j].MaxBytes })
	if !math.IsInf(segs[len(segs)-1].MaxBytes, 1) {
		return nil, fmt.Errorf("smpi: last segment must be unbounded (MaxBytes=+Inf)")
	}
	for i, s := range segs {
		if s.LatFactor <= 0 || s.BwFactor <= 0 {
			return nil, fmt.Errorf("smpi: segment %d has non-positive factors (%g, %g)",
				i, s.LatFactor, s.BwFactor)
		}
		if i > 0 && segs[i-1].MaxBytes == s.MaxBytes {
			return nil, fmt.Errorf("smpi: duplicate segment boundary %g", s.MaxBytes)
		}
	}
	return &Model{segments: segs}, nil
}

// MustNew is New that panics on error, for static model definitions.
func MustNew(segments []Segment) *Model {
	m, err := New(segments)
	if err != nil {
		panic(err)
	}
	return m
}

// Default returns the 3-segment model the paper describes: small messages
// (< 1 KiB) fit an IP frame and see better latency; medium messages
// (< 64 KiB) use the eager protocol; large messages switch to synchronous
// mode with near-nominal bandwidth. Factors are representative of the
// best-fit values SimGrid ships for TCP/GigaEthernet clusters.
func Default() *Model {
	return MustNew([]Segment{
		{MaxBytes: 1024, LatFactor: 1.0, BwFactor: 0.60},
		{MaxBytes: 64 * 1024, LatFactor: 1.9, BwFactor: 0.88},
		{MaxBytes: math.Inf(1), LatFactor: 2.2, BwFactor: 0.94},
	})
}

// Identity returns a single-segment model with factors of 1 (no correction),
// used by the ablation benchmarks comparing against a plain affine model.
func Identity() *Model {
	return MustNew([]Segment{{MaxBytes: math.Inf(1), LatFactor: 1, BwFactor: 1}})
}

// Segments returns a copy of the model's segments in boundary order.
func (m *Model) Segments() []Segment {
	return append([]Segment(nil), m.segments...)
}

// Factors returns the latency and bandwidth multipliers for a message of the
// given size.
func (m *Model) Factors(bytes float64) (latFactor, bwFactor float64) {
	for _, s := range m.segments {
		if bytes < s.MaxBytes {
			return s.LatFactor, s.BwFactor
		}
	}
	last := m.segments[len(m.segments)-1]
	return last.LatFactor, last.BwFactor
}

// RateModel adapts the model to the simulation kernel's RateModel signature.
func (m *Model) RateModel() func(bytes float64) (float64, float64) {
	return m.Factors
}

// PredictTime returns the modelled transfer time of a message over a route
// with the given base latency (s) and nominal bandwidth (B/s).
func (m *Model) PredictTime(bytes, latency, bandwidth float64) float64 {
	lf, bf := m.Factors(bytes)
	return lf*latency + bytes/(bf*bandwidth)
}

// Sample is one ping-pong measurement: one-way time for a message size.
type Sample struct {
	Bytes float64
	Time  float64
}

// Fit instantiates the correction factors from measured one-way transfer
// times, the counterpart of the Python best-fit script shipped with SimGrid
// (Section 5). For each segment delimited by boundaries, it performs an
// ordinary least-squares fit of time = a + b*size and converts the affine
// coefficients into factors relative to the base latency and bandwidth:
// latFactor = a/latency, bwFactor = 1/(b*bandwidth).
func Fit(samples []Sample, boundaries []float64, latency, bandwidth float64) (*Model, error) {
	if latency <= 0 || bandwidth <= 0 {
		return nil, fmt.Errorf("smpi: base latency and bandwidth must be positive")
	}
	bounds := append(append([]float64(nil), boundaries...), math.Inf(1))
	sort.Float64s(bounds)
	segs := make([]Segment, 0, len(bounds))
	lo := 0.0
	for _, hi := range bounds {
		var xs, ys []float64
		for _, s := range samples {
			if s.Bytes >= lo && s.Bytes < hi {
				xs = append(xs, s.Bytes)
				ys = append(ys, s.Time)
			}
		}
		if len(xs) < 2 {
			return nil, fmt.Errorf("smpi: segment [%g,%g) has %d sample(s), need >= 2", lo, hi, len(xs))
		}
		a, b := leastSquares(xs, ys)
		if b <= 0 {
			// Degenerate fit (non-increasing time with size); clamp to the
			// nominal bandwidth so the model stays physical.
			b = 1 / bandwidth
		}
		if a <= 0 {
			a = latency
		}
		segs = append(segs, Segment{
			MaxBytes:  hi,
			LatFactor: a / latency,
			BwFactor:  1 / (b * bandwidth),
		})
		lo = hi
	}
	return New(segs)
}

// leastSquares returns the intercept a and slope b of the OLS fit y = a+bx.
func leastSquares(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return ys[0], 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}
