package smpi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty model should be rejected")
	}
	if _, err := New([]Segment{{MaxBytes: 100, LatFactor: 1, BwFactor: 1}}); err == nil {
		t.Error("model without unbounded segment should be rejected")
	}
	if _, err := New([]Segment{{MaxBytes: math.Inf(1), LatFactor: 0, BwFactor: 1}}); err == nil {
		t.Error("zero latency factor should be rejected")
	}
	if _, err := New([]Segment{
		{MaxBytes: 100, LatFactor: 1, BwFactor: 1},
		{MaxBytes: 100, LatFactor: 1, BwFactor: 1},
		{MaxBytes: math.Inf(1), LatFactor: 1, BwFactor: 1},
	}); err == nil {
		t.Error("duplicate boundary should be rejected")
	}
}

func TestNewSortsSegments(t *testing.T) {
	m := MustNew([]Segment{
		{MaxBytes: math.Inf(1), LatFactor: 3, BwFactor: 3},
		{MaxBytes: 10, LatFactor: 1, BwFactor: 1},
		{MaxBytes: 100, LatFactor: 2, BwFactor: 2},
	})
	segs := m.Segments()
	if segs[0].MaxBytes != 10 || segs[1].MaxBytes != 100 {
		t.Fatalf("segments not sorted: %+v", segs)
	}
}

func TestFactorsSegmentSelection(t *testing.T) {
	m := Default()
	cases := []struct {
		bytes   float64
		wantLat float64
		wantBw  float64
	}{
		{0, 1.0, 0.60},
		{512, 1.0, 0.60},
		{1023, 1.0, 0.60},
		{1024, 1.9, 0.88},
		{63 * 1024, 1.9, 0.88},
		{64 * 1024, 2.2, 0.94},
		{1e9, 2.2, 0.94},
	}
	for _, c := range cases {
		lat, bw := m.Factors(c.bytes)
		if lat != c.wantLat || bw != c.wantBw {
			t.Errorf("Factors(%g) = (%g,%g), want (%g,%g)",
				c.bytes, lat, bw, c.wantLat, c.wantBw)
		}
	}
}

func TestIdentityModel(t *testing.T) {
	m := Identity()
	for _, b := range []float64{0, 1, 1e3, 1e6, 1e9} {
		lat, bw := m.Factors(b)
		if lat != 1 || bw != 1 {
			t.Fatalf("Identity().Factors(%g) = (%g,%g)", b, lat, bw)
		}
	}
}

func TestPredictTime(t *testing.T) {
	m := Identity()
	got := m.PredictTime(1e6, 1e-4, 1e8)
	want := 1e-4 + 1e6/1e8
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PredictTime = %g, want %g", got, want)
	}
}

func TestPredictTimeMonotonicInSize(t *testing.T) {
	// The default model must give non-decreasing times with message size
	// within each segment; across segment borders the time should also not
	// drop dramatically (protocol switches cost, not gain).
	m := Default()
	prev := 0.0
	for s := 1.0; s < 1e8; s *= 1.5 {
		tt := m.PredictTime(s, 1e-5, 1.25e8)
		if tt < prev*0.5 {
			t.Fatalf("time dropped sharply at %g bytes: %g -> %g", s, prev, tt)
		}
		prev = tt
	}
}

func TestFitRecoversKnownModel(t *testing.T) {
	// Generate synthetic ping-pong samples from a known model, then fit and
	// verify the factors are recovered.
	truth := MustNew([]Segment{
		{MaxBytes: 1024, LatFactor: 1.2, BwFactor: 0.5},
		{MaxBytes: 65536, LatFactor: 2.0, BwFactor: 0.9},
		{MaxBytes: math.Inf(1), LatFactor: 3.0, BwFactor: 0.95},
	})
	latency, bandwidth := 2e-5, 1.25e8
	var samples []Sample
	for s := 1.0; s < 1e7; s *= 1.3 {
		samples = append(samples, Sample{Bytes: s, Time: truth.PredictTime(s, latency, bandwidth)})
	}
	fitted, err := Fit(samples, []float64{1024, 65536}, latency, bandwidth)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []float64{100, 5000, 1e6} {
		wl, wb := truth.Factors(b)
		gl, gb := fitted.Factors(b)
		if math.Abs(wl-gl)/wl > 0.05 || math.Abs(wb-gb)/wb > 0.05 {
			t.Errorf("at %g bytes: fitted (%g,%g), want (%g,%g)", b, gl, gb, wl, wb)
		}
	}
}

func TestFitRejectsSparseSegments(t *testing.T) {
	samples := []Sample{{Bytes: 10, Time: 1e-5}, {Bytes: 20, Time: 2e-5}}
	if _, err := Fit(samples, []float64{1024}, 1e-5, 1e8); err == nil {
		t.Error("expected error for segment with < 2 samples")
	}
}

func TestFitRejectsBadBase(t *testing.T) {
	samples := []Sample{{10, 1e-5}, {20, 2e-5}, {2000, 1e-4}, {4000, 2e-4}}
	if _, err := Fit(samples, []float64{1024}, 0, 1e8); err == nil {
		t.Error("expected error for zero latency")
	}
	if _, err := Fit(samples, []float64{1024}, 1e-5, -1); err == nil {
		t.Error("expected error for negative bandwidth")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 3 + 2x fitted exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	a, b := leastSquares(xs, ys)
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Fatalf("fit = (%g, %g), want (3, 2)", a, b)
	}
}

// Property: Factors is piece-wise constant and consistent with the segment
// list for any size.
func TestFactorsConsistencyProperty(t *testing.T) {
	m := Default()
	segs := m.Segments()
	f := func(raw uint32) bool {
		b := float64(raw)
		lat, bw := m.Factors(b)
		for _, s := range segs {
			if b < s.MaxBytes {
				return lat == s.LatFactor && bw == s.BwFactor
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
