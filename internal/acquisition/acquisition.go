// Package acquisition orchestrates the four-step acquisition process of
// Section 4 — instrumentation, execution, extraction and gathering — under
// the four execution modes of Figure 2:
//
//   - Regular (R): one process per CPU, as many nodes as processes — the
//     only mode classical timed traces support;
//   - Folding (F-x): x processes per CPU, enabling acquisitions larger than
//     the available node count;
//   - Scattering (S-y): the processes spread over y sites of a wide-area
//     platform;
//   - Scattering+Folding (SF-(u,v)): both combined.
//
// Executions run on the simulation engine over the modelled Grid'5000
// clusters (bordereau and gdx), so the acquisition campaigns of Table 2 and
// Figure 7 can be regenerated: the instrumented run produces real TAU trace
// files, the extraction really runs (concurrently, like the parallel
// tau2simgrid), and the gathering cost follows the K-nomial tree model.
package acquisition

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tireplay/internal/convert"
	"tireplay/internal/gather"
	"tireplay/internal/mpi"
	"tireplay/internal/platform"
	"tireplay/internal/smpi"
	"tireplay/internal/tau"
	"tireplay/internal/trace"
)

// Mode identifies an acquisition mode with its parameters.
type Mode struct {
	// Sites is the number of Grid'5000 sites used (1 = bordereau only,
	// 2 = bordereau + gdx over the WAN).
	Sites int
	// Fold is the number of processes per CPU (1 = regular).
	Fold int
}

// Regular is the one-process-per-CPU mode (R).
func Regular() Mode { return Mode{Sites: 1, Fold: 1} }

// Folding is the F-x mode: x processes per CPU on a single site.
func Folding(x int) Mode { return Mode{Sites: 1, Fold: x} }

// Scattering is the S-y mode: processes spread over y sites.
func Scattering(y int) Mode { return Mode{Sites: y, Fold: 1} }

// ScatterFold is the SF-(u,v) mode.
func ScatterFold(u, v int) Mode { return Mode{Sites: u, Fold: v} }

// Name renders the mode with the paper's notation.
func (m Mode) Name() string {
	switch {
	case m.Sites <= 1 && m.Fold <= 1:
		return "R"
	case m.Sites <= 1:
		return fmt.Sprintf("F-%d", m.Fold)
	case m.Fold <= 1:
		return fmt.Sprintf("S-%d", m.Sites)
	default:
		return fmt.Sprintf("SF-(%d,%d)", m.Sites, m.Fold)
	}
}

func (m Mode) validate(procs int) error {
	if m.Sites < 1 || m.Sites > 2 {
		return fmt.Errorf("acquisition: %d sites unsupported (modelled platform has 2)", m.Sites)
	}
	if m.Fold < 1 {
		return fmt.Errorf("acquisition: folding factor %d", m.Fold)
	}
	if procs%(m.Sites*m.Fold) != 0 {
		return fmt.Errorf("acquisition: %d processes not divisible by sites*fold = %d",
			procs, m.Sites*m.Fold)
	}
	return nil
}

// Nodes returns the per-site node counts the mode uses for procs processes
// (the "Number of nodes" row of Table 2).
func (m Mode) Nodes(procs int) ([]int, error) {
	if err := m.validate(procs); err != nil {
		return nil, err
	}
	perSite := procs / m.Sites / m.Fold
	out := make([]int, m.Sites)
	for i := range out {
		out[i] = perSite
	}
	return out, nil
}

// Campaign configures a family of acquisitions of one application instance.
type Campaign struct {
	// Procs is the number of MPI processes of the traced instance.
	Procs int
	// Program is the instrumented application.
	Program mpi.Program
	// OverheadPerEvent is the tracing perturbation per TAU record (seconds).
	OverheadPerEvent float64
	// Rate models host flop-rate variability (nil = constant).
	Rate mpi.RateMultiplier
	// ExtractCostPerEvent is the modelled per-record cost of the parallel
	// extraction step, in seconds on the acquisition nodes (the real
	// extraction also runs; this models Figure 7's scale).
	ExtractCostPerEvent float64
	// GatherArity is the K of the K-nomial gathering tree (default 4, the
	// arity used in the paper's Figure 7 discussion).
	GatherArity int
	// Network, when non-nil, is the protocol model of the host platform
	// applied to every transfer during acquisition runs (the modelled
	// testbed's own MPI behaviour).
	Network *smpi.Model
}

func (c *Campaign) setDefaults() {
	if c.ExtractCostPerEvent == 0 {
		c.ExtractCostPerEvent = 20e-6
	}
	if c.GatherArity == 0 {
		c.GatherArity = 4
	}
}

// Report is the outcome of one acquisition: the time decomposition of
// Figure 7, the Table 2 execution time, and the Table 3 sizes.
type Report struct {
	Mode  string
	Nodes []int // per-site node counts

	// ApplicationTime is the uninstrumented execution time (simulated).
	ApplicationTime float64
	// InstrumentedTime is the execution time with tracing enabled — the
	// quantity Table 2 compares across modes.
	InstrumentedTime float64
	// TracingOverhead = InstrumentedTime - ApplicationTime.
	TracingOverhead float64
	// ExtractionTime is the modelled duration of the parallel extraction.
	ExtractionTime float64
	// GatheringTime is the modelled duration of the K-nomial gathering.
	GatheringTime float64
	// ExtractionWall is the measured wall-clock time of the real
	// extraction on this machine (informative).
	ExtractionWall time.Duration

	// TAUBytes is the total size of the binary TAU traces (measured).
	TAUBytes int64
	// TIBytes is the total size of the textual time-independent traces.
	TIBytes int64
	// Actions is the total number of time-independent actions.
	Actions int64
	// TraceDir holds the TAU files; TIFiles the per-process SG_process
	// traces written after extraction.
	TraceDir string
	TIFiles  []string
}

// TotalAcquisitionTime sums the four components of Figure 7.
func (r *Report) TotalAcquisitionTime() float64 {
	return r.ApplicationTime + r.TracingOverhead + r.ExtractionTime + r.GatheringTime
}

// Build constructs the platform and deployment of a mode. Following the
// experimental setup of Table 2 ("we use only one core per node"), nodes
// are modelled single-core, so the folding factor is processes per CPU.
// It is exported so calibration campaigns can acquire on the same
// platforms.
func (c *Campaign) Build(m Mode) (*platform.Build, *platform.Deployment, error) {
	nodes, err := m.Nodes(c.Procs)
	if err != nil {
		return nil, nil, err
	}
	if m.Sites == 1 {
		b, err := platform.BuildBordereauWithCores(nodes[0], 1)
		if err != nil {
			return nil, nil, err
		}
		d, err := platform.RoundRobin(b.HostNames, c.Procs, m.Fold)
		if err != nil {
			return nil, nil, err
		}
		c.applyNetwork(b)
		return b, d, nil
	}
	b, err := platform.BuildGrid5000WithCores(nodes[0], nodes[1], 1)
	if err != nil {
		return nil, nil, err
	}
	groups := [][]string{b.ClusterHosts("bordereau"), b.ClusterHosts("gdx")}
	d, err := platform.Scatter(groups, c.Procs, m.Fold)
	if err != nil {
		return nil, nil, err
	}
	c.applyNetwork(b)
	return b, d, nil
}

// applyNetwork installs the host platform's protocol model on the kernel.
func (c *Campaign) applyNetwork(b *platform.Build) {
	if c.Network != nil {
		b.Kernel.SetRateModel(c.Network.RateModel())
	}
}

// ExecutionTime runs the uninstrumented application under the mode and
// returns the simulated makespan.
func (c *Campaign) ExecutionTime(m Mode) (float64, error) {
	b, d, err := c.Build(m)
	if err != nil {
		return 0, err
	}
	return mpi.RunSim(b, d, mpi.SimConfig{Rate: c.Rate}, c.Program)
}

// InstrumentedTime runs the instrumented application under the mode,
// discarding the trace records: the quantity compared across acquisition
// modes in Table 2.
func (c *Campaign) InstrumentedTime(m Mode) (float64, error) {
	c.setDefaults()
	b, d, err := c.Build(m)
	if err != nil {
		return 0, err
	}
	return tau.InstrumentedTimeSim(b, d, mpi.SimConfig{Rate: c.Rate}, c.OverheadPerEvent, c.Program)
}

// Run performs the complete acquisition under the mode: instrumented
// execution into dir, real extraction to SG_process trace files, and the
// modelled gathering. Pass skipBaseline=true to reuse a known
// ApplicationTime of zero (Table 2 only needs the instrumented time).
func (c *Campaign) Run(dir string, m Mode, skipBaseline bool) (*Report, error) {
	c.setDefaults()
	nodes, err := m.Nodes(c.Procs)
	if err != nil {
		return nil, err
	}
	rep := &Report{Mode: m.Name(), Nodes: nodes, TraceDir: dir}

	if !skipBaseline {
		app, err := c.ExecutionTime(m)
		if err != nil {
			return nil, err
		}
		rep.ApplicationTime = app
	}

	b, d, err := c.Build(m)
	if err != nil {
		return nil, err
	}
	instr, files, err := tau.AcquireSim(dir, b, d, mpi.SimConfig{Rate: c.Rate},
		c.OverheadPerEvent, c.Program)
	if err != nil {
		return nil, err
	}
	rep.InstrumentedTime = instr
	if !skipBaseline {
		rep.TracingOverhead = instr - rep.ApplicationTime
	}
	rep.TAUBytes = files.TraceBytes

	// Extraction: really performed (concurrently, like the parallel
	// tau2simgrid) and modelled for the acquisition-time decomposition. The
	// modelled cost is per-node: ranks folded on one node extract serially.
	wallStart := time.Now()
	perRank, err := convert.ExtractDir(dir, c.Procs)
	if err != nil {
		return nil, err
	}
	rep.ExtractionWall = time.Since(wallStart)
	maxNodeEvents := int64(0)
	ranksPerNode := m.Fold
	for i := 0; i < len(files.Events); i += ranksPerNode {
		var nodeEvents int64
		for j := i; j < i+ranksPerNode && j < len(files.Events); j++ {
			nodeEvents += files.Events[j]
		}
		if nodeEvents > maxNodeEvents {
			maxNodeEvents = nodeEvents
		}
	}
	rep.ExtractionTime = float64(maxNodeEvents) * c.ExtractCostPerEvent

	// Write the per-process time-independent traces and model the gather.
	sizes := make([]float64, c.Procs)
	rep.TIFiles = make([]string, c.Procs)
	for r, acts := range perRank {
		path := filepath.Join(dir, trace.ProcessFileName(r))
		if err := trace.WriteFile(path, acts); err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		sizes[r] = float64(st.Size())
		rep.TIBytes += st.Size()
		rep.Actions += int64(len(acts))
		rep.TIFiles[r] = path
	}
	gt, err := gather.Cost(sizes, c.GatherArity, platform.GigaEthernetBw, 3*platform.ClusterLatency)
	if err != nil {
		return nil, err
	}
	rep.GatheringTime = gt
	return rep, nil
}
