package acquisition

import (
	"strings"
	"testing"

	"tireplay/internal/convert"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
)

func TestModeNames(t *testing.T) {
	cases := map[string]Mode{
		"R":         Regular(),
		"F-8":       Folding(8),
		"S-2":       Scattering(2),
		"SF-(2,16)": ScatterFold(2, 16),
	}
	for want, m := range cases {
		if got := m.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestModeNodes(t *testing.T) {
	// Table 2 header: for 64 processes, R uses 64 nodes, F-4 uses 16,
	// S-2 uses (32,32), SF-(2,8) uses (4,4).
	cases := []struct {
		m    Mode
		want []int
	}{
		{Regular(), []int{64}},
		{Folding(4), []int{16}},
		{Folding(32), []int{2}},
		{Scattering(2), []int{32, 32}},
		{ScatterFold(2, 8), []int{4, 4}},
		{ScatterFold(2, 16), []int{2, 2}},
	}
	for _, c := range cases {
		got, err := c.m.Nodes(64)
		if err != nil {
			t.Fatalf("%s: %v", c.m.Name(), err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%s: nodes = %v, want %v", c.m.Name(), got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: nodes = %v, want %v", c.m.Name(), got, c.want)
			}
		}
	}
}

func TestModeValidation(t *testing.T) {
	if _, err := (Mode{Sites: 3, Fold: 1}).Nodes(64); err == nil {
		t.Error("3 sites should be rejected")
	}
	if _, err := (Mode{Sites: 1, Fold: 0}).Nodes(64); err == nil {
		t.Error("fold 0 should be rejected")
	}
	if _, err := Folding(3).Nodes(64); err == nil {
		t.Error("non-divisible fold should be rejected")
	}
}

// testCampaign builds a small LU campaign for mode tests.
func testCampaign(t *testing.T, procs int) *Campaign {
	t.Helper()
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassS, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	return &Campaign{Procs: procs, Program: prog, OverheadPerEvent: 1e-6}
}

// computeBoundCampaign is dominated by computation, like the class B and C
// instances of Table 2 (class S LU is latency-bound and does not exhibit
// the folding ratio).
func computeBoundCampaign(procs int) *Campaign {
	return &Campaign{
		Procs: procs,
		Program: func(c mpi.Comm) {
			for i := 0; i < 3; i++ {
				c.Compute(5e8)
				c.Barrier()
			}
		},
	}
}

func TestFoldingSlowdownRoughlyLinear(t *testing.T) {
	// The heart of Table 2: the instrumented execution time grows roughly
	// linearly with the folding factor.
	c := computeBoundCampaign(8)
	base, err := c.ExecutionTime(Regular())
	if err != nil {
		t.Fatal(err)
	}
	for _, fold := range []int{2, 4, 8} {
		ft, err := c.ExecutionTime(Folding(fold))
		if err != nil {
			t.Fatal(err)
		}
		ratio := ft / base
		if ratio < 0.8*float64(fold) || ratio > 1.3*float64(fold) {
			t.Errorf("F-%d ratio = %.2f, expected near %d", fold, ratio, fold)
		}
	}
}

func TestScatteringAddsWANOverhead(t *testing.T) {
	// For a compute-bound instance the scattering overhead stays modest
	// (below the number of sites, as the paper observes for class B/C).
	c := computeBoundCampaign(8)
	base, err := c.ExecutionTime(Regular())
	if err != nil {
		t.Fatal(err)
	}
	scattered, err := c.ExecutionTime(Scattering(2))
	if err != nil {
		t.Fatal(err)
	}
	if scattered <= base {
		t.Fatalf("S-2 (%g) not slower than R (%g)", scattered, base)
	}
	if scattered/base > 2.5 {
		t.Fatalf("S-2 ratio %.2f too large for a compute-bound run", scattered/base)
	}

	// The paper also notes the overhead is "greater for smaller problem
	// classes": a latency-bound class S LU must suffer a larger ratio.
	lu := testCampaign(t, 8)
	luBase, err := lu.ExecutionTime(Regular())
	if err != nil {
		t.Fatal(err)
	}
	luScat, err := lu.ExecutionTime(Scattering(2))
	if err != nil {
		t.Fatal(err)
	}
	if luScat/luBase <= scattered/base {
		t.Errorf("small-class WAN overhead (%.2f) not larger than compute-bound one (%.2f)",
			luScat/luBase, scattered/base)
	}
}

func TestRunProducesFullReport(t *testing.T) {
	c := testCampaign(t, 4)
	dir := t.TempDir()
	rep, err := c.Run(dir, Regular(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "R" {
		t.Errorf("mode = %q", rep.Mode)
	}
	if rep.ApplicationTime <= 0 || rep.InstrumentedTime <= rep.ApplicationTime {
		t.Errorf("times: app=%g instr=%g", rep.ApplicationTime, rep.InstrumentedTime)
	}
	if rep.TracingOverhead <= 0 {
		t.Errorf("tracing overhead = %g", rep.TracingOverhead)
	}
	if rep.ExtractionTime <= 0 || rep.GatheringTime <= 0 {
		t.Errorf("extraction=%g gathering=%g", rep.ExtractionTime, rep.GatheringTime)
	}
	if rep.TAUBytes <= 0 || rep.TIBytes <= 0 || rep.Actions <= 0 {
		t.Errorf("sizes: tau=%d ti=%d actions=%d", rep.TAUBytes, rep.TIBytes, rep.Actions)
	}
	// Time-independent traces are smaller than the TAU traces (Table 3).
	if rep.TIBytes >= rep.TAUBytes {
		t.Errorf("TI trace (%d B) not smaller than TAU trace (%d B)", rep.TIBytes, rep.TAUBytes)
	}
	if rep.TotalAcquisitionTime() <= rep.InstrumentedTime {
		t.Error("total acquisition should exceed the execution alone")
	}
	if len(rep.TIFiles) != 4 || !strings.HasSuffix(rep.TIFiles[2], "SG_process2.trace") {
		t.Errorf("TI files = %v", rep.TIFiles)
	}
}

// TestSimulatedTimeInvariantAcrossModes is the experiment closing Section
// 6.2: a classical tracing tool would produce erroneous timestamps under
// folding or scattering, but time-independent traces yield the same trace —
// hence the same simulated time — whatever the acquisition scenario.
func TestSimulatedTimeInvariantAcrossModes(t *testing.T) {
	c := testCampaign(t, 8)
	var ref string
	for _, m := range []Mode{Regular(), Folding(4), Scattering(2), ScatterFold(2, 2)} {
		dir := t.TempDir()
		rep, err := c.Run(dir, m, true)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		perRank, err := convert.ExtractDir(dir, c.Procs)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		var sb strings.Builder
		for _, acts := range perRank {
			for _, a := range acts {
				sb.WriteString(a.Format())
				sb.WriteByte('\n')
			}
		}
		if ref == "" {
			ref = sb.String()
		} else if sb.String() != ref {
			t.Fatalf("mode %s produced a different time-independent trace", m.Name())
		}
		_ = rep
	}
}

func TestCampaignWithRateVariability(t *testing.T) {
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassS, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{Procs: 4, Program: prog,
		Rate: func(rank int, seq int64, flops float64) float64 {
			return 0.8 + 0.05*float64(seq%8)
		}}
	ti, err := c.ExecutionTime(Regular())
	if err != nil {
		t.Fatal(err)
	}
	if ti <= 0 {
		t.Fatal("non-positive execution time")
	}
	_ = mpi.Comm(nil)
}
