package fifo

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		if v := q.Pop(); v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
	if !q.Empty() {
		t.Fatal("not empty after draining")
	}
}

func TestFIFOInterleaved(t *testing.T) {
	var q Queue[int]
	next, expect := 0, 0
	// Keep a persistent backlog of 3 while cycling many elements through.
	for i := 0; i < 3; i++ {
		q.Push(next)
		next++
	}
	for round := 0; round < 10000; round++ {
		q.Push(next)
		next++
		if v := q.Pop(); v != expect {
			t.Fatalf("round %d: Pop = %d, want %d", round, v, expect)
		}
		expect++
		if q.Len() != 3 {
			t.Fatalf("round %d: backlog %d, want 3", round, q.Len())
		}
	}
}

func TestFIFOBacklogStaysCompact(t *testing.T) {
	var q Queue[int]
	// Persistent backlog of 4 that never drains: the compaction branch must
	// bound the backing array near the backlog size, not the total traffic.
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	for i := 0; i < 1_000_000; i++ {
		q.Push(4 + i)
		q.Pop()
	}
	if got := cap(q.q); got > 256 {
		t.Fatalf("backing array grew to %d slots for a backlog of 4", got)
	}
}

func TestFIFOZeroAllocSteadyState(t *testing.T) {
	var q Queue[*int]
	x := new(int)
	for i := 0; i < 64; i++ { // warm capacity
		q.Push(x)
	}
	for !q.Empty() {
		q.Pop()
	}
	if avg := testing.AllocsPerRun(1000, func() {
		q.Push(x)
		q.Pop()
	}); avg != 0 {
		t.Fatalf("steady-state push/pop allocates %.2f allocs/op, want 0", avg)
	}
}
