// Package fifo provides the pop-by-head FIFO queue used on the simulation
// hot paths (mailbox rendezvous queues, the kernel run queue, the replay
// tool's pending-request list). Popping advances a head index instead of
// re-slicing; a drained queue rewinds to the front of its capacity and a
// queue whose dead prefix dominates is compacted in place — so steady-state
// push/pop cycles never allocate, and memory stays proportional to the
// largest backlog rather than to the total traffic.
package fifo

// Queue is a FIFO of T. The zero value is ready to use.
type Queue[T any] struct {
	q    []T
	head int
}

// Len reports the number of queued elements.
func (f *Queue[T]) Len() int { return len(f.q) - f.head }

// Empty reports whether the queue holds no elements.
func (f *Queue[T]) Empty() bool { return f.head == len(f.q) }

// Push appends v.
func (f *Queue[T]) Push(v T) { f.q = append(f.q, v) }

// Reset drops every queued element, zeroing the live region for the garbage
// collector while keeping the backing capacity for reuse.
func (f *Queue[T]) Reset() {
	var zero T
	for i := f.head; i < len(f.q); i++ {
		f.q[i] = zero
	}
	f.q = f.q[:0]
	f.head = 0
}

// CloneInto copies the live elements of f into dst in FIFO order, reusing
// dst's backing array. Whatever dst held before is dropped.
func (f *Queue[T]) CloneInto(dst *Queue[T]) {
	dst.Reset()
	dst.q = append(dst.q, f.q[f.head:]...)
}

// Pop removes and returns the oldest element. It panics on an empty queue
// (callers check Empty first).
func (f *Queue[T]) Pop() T {
	var zero T
	v := f.q[f.head]
	f.q[f.head] = zero
	f.head++
	switch {
	case f.head == len(f.q):
		// Drained: rewind over the full capacity.
		f.q = f.q[:0]
		f.head = 0
	case f.head >= 32 && f.head*2 >= len(f.q):
		// The dead prefix dominates a persistent backlog: slide the live
		// tail to the front so memory stays O(backlog), not O(history).
		// Each element moves at most once per two pops, so Pop stays
		// amortised O(1).
		n := copy(f.q, f.q[f.head:])
		clearTail := f.q[n:]
		for i := range clearTail {
			clearTail[i] = zero
		}
		f.q = f.q[:n]
		f.head = 0
	}
	return v
}
