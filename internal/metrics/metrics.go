// Package metrics is the time-resolved analysis layer over timed traces:
// it consumes the columnar event sink a replay records
// (replay.MetricsSink) and computes POP-style standard efficiencies — load
// balance, communication efficiency and its serialization/transfer split —
// for the whole run, per fixed time window, and per detected application
// phase. This is the output the trace-based time-resolved analysis
// literature (the HLRS standard-metrics paper, Pipit) argues a replay
// should produce: not just a makespan, but *why* the time went where it
// went, resolved over the run.
//
// Definitions, per analysis interval of length T over n ranks, with
// useful[r] the time rank r spent computing and transfer[r] the time its
// point-to-point transfers were in flight (a transfer occupies both
// endpoints — the dual attribution the corrected Profile shares):
//
//	ParallelEff = avg(useful) / T          overall core utilisation
//	LoadBalance = avg(useful) / max(useful)
//	CommEff     = max(useful) / T          so ParallelEff = LB x CommEff
//	SerEff      = max(useful + transfer) / T   loss waiting (serialization)
//	TransferEff = CommEff / SerEff             loss moving bytes
//
// SerEff and TransferEff are the measured-data analogue of POP's
// ideal-network split: time not spent computing divides into time the
// critical rank's transfers were actually progressing (transfer loss) and
// time it was blocked with nothing in flight (serialization loss).
// Efficiencies are clipped to [0, 1]; a clip beyond rounding means
// overlapping activity (e.g. transfers progressing under compute) pushed
// occupancy past wall time, which Profile.Render surfaces separately.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"tireplay/internal/replay"
)

// Options parameterises an analysis.
type Options struct {
	// Windows is the number of equal time windows the run is cut into;
	// <= 0 means 10. A zero-makespan run yields no windows regardless.
	Windows int
	// Ranks pre-registers process names, giving ranks that recorded no
	// event a (fully idle) row; names also present in the sinks merge.
	Ranks []string
	// Makespan overrides the analysis horizon; <= 0 derives it from the
	// latest event end.
	Makespan float64
	// CommThreshold is the transfer share of busy time at which a window
	// classifies comm-dominant for phase detection; <= 0 means 0.5.
	CommThreshold float64
}

func (o Options) withDefaults() Options {
	if o.Windows <= 0 {
		o.Windows = 10
	}
	if o.CommThreshold <= 0 {
		o.CommThreshold = 0.5
	}
	return o
}

// Breakdown is one rank's time split over an interval.
type Breakdown struct {
	Rank     string  `json:"rank"`
	Useful   float64 `json:"useful_s"`
	Transfer float64 `json:"transfer_s"`
	Wait     float64 `json:"wait_s"`
}

// Efficiency is the POP metric set of one interval.
type Efficiency struct {
	ParallelEff float64 `json:"parallel_eff"`
	LoadBalance float64 `json:"load_balance"`
	CommEff     float64 `json:"comm_eff"`
	SerEff      float64 `json:"ser_eff"`
	TransferEff float64 `json:"transfer_eff"`
}

// Window is one fixed time slice of the run.
type Window struct {
	Index int     `json:"index"`
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
	// CommFraction is the transfer share of the window's busy time.
	CommFraction float64    `json:"comm_fraction"`
	Eff          Efficiency `json:"eff"`
}

// Phase is a maximal run of adjacent windows with one dominant activity.
type Phase struct {
	// Kind is "compute", "comm" or "idle" (no busy time at all).
	Kind    string     `json:"kind"`
	Start   float64    `json:"start_s"`
	End     float64    `json:"end_s"`
	Windows int        `json:"windows"`
	Eff     Efficiency `json:"eff"`
}

// Report is the full time-resolved analysis of one run.
type Report struct {
	Makespan float64     `json:"makespan_s"`
	Events   int         `json:"events"`
	Ranks    []Breakdown `json:"ranks"`
	Summary  Efficiency  `json:"summary"`
	Windows  []Window    `json:"windows,omitempty"`
	Phases   []Phase     `json:"phases,omitempty"`
}

// analysis is the resolved input of one Analyze call: the merged rank
// table and the event sinks.
type analysis struct {
	sinks []*replay.MetricsSink
	// id maps a process name to its merged dense index; names holds the
	// merged table in deterministic rank order.
	id    map[string]int
	names []string
	// sinkIDs[k] maps sink k's local rank IDs to merged indices.
	sinkIDs [][]int
}

// Analyze computes the time-resolved report of one or more event sinks
// (several sinks arise when a partitioned scenario replayed one platform
// component per kernel; they are merged by process name). The result is a
// pure function of the sink contents and the options — analysing the same
// replay at any sweep worker count yields byte-identical JSON.
func Analyze(sinks []*replay.MetricsSink, opt Options) *Report {
	opt = opt.withDefaults()
	a := &analysis{id: make(map[string]int)}
	for _, name := range opt.Ranks {
		a.intern(name)
	}
	events := 0
	for _, s := range sinks {
		if s == nil {
			continue
		}
		a.sinks = append(a.sinks, s)
		ids := make([]int, s.NumRanks())
		for i := range ids {
			ids[i] = a.intern(s.RankName(int32(i)))
		}
		a.sinkIDs = append(a.sinkIDs, ids)
		events += s.Len()
	}
	a.sortRanks()

	makespan := opt.Makespan
	if makespan <= 0 {
		for _, s := range a.sinks {
			for i := 0; i < s.Len(); i++ {
				if _, _, _, _, end, _ := s.Event(i); end > makespan {
					makespan = end
				}
			}
		}
	}

	rep := &Report{Makespan: makespan, Events: events}
	n := len(a.names)
	if n == 0 {
		return rep
	}
	useful := make([]float64, n)
	transfer := make([]float64, n)

	// Whole-run totals and summary.
	a.interval(0, makespan, useful, transfer)
	rep.Ranks = make([]Breakdown, n)
	for r, name := range a.names {
		rep.Ranks[r] = breakdown(name, useful[r], transfer[r], makespan)
	}
	rep.Summary = efficiency(useful, transfer, makespan)

	if makespan <= 0 {
		// A zero-makespan run (empty or instantaneous trace) has no time
		// axis to resolve: totals only, no windows, no phases.
		return rep
	}

	// Fixed windows. Events straddling a boundary are split pro rata
	// (uniform progress over the activity), so window columns sum exactly
	// to the whole-run totals.
	width := makespan / float64(opt.Windows)
	rep.Windows = make([]Window, opt.Windows)
	kinds := make([]string, opt.Windows)
	for w := 0; w < opt.Windows; w++ {
		t0 := float64(w) * width
		t1 := t0 + width
		if w == opt.Windows-1 {
			t1 = makespan // absorb rounding: the last window closes the run
		}
		a.interval(t0, t1, useful, transfer)
		win := Window{Index: w, Start: t0, End: t1,
			Eff: efficiency(useful, transfer, t1-t0)}
		sumU, sumT := sum(useful), sum(transfer)
		switch {
		case sumU+sumT <= 0:
			kinds[w] = "idle"
		default:
			win.CommFraction = sumT / (sumU + sumT)
			if win.CommFraction >= opt.CommThreshold {
				kinds[w] = "comm"
			} else {
				kinds[w] = "compute"
			}
		}
		rep.Windows[w] = win
	}

	// Phases: maximal runs of same-kind windows, re-analysed over their
	// exact extent (not a sum of window numbers, so a phase's efficiency
	// is what a window of that span would have reported).
	for w := 0; w < opt.Windows; {
		e := w + 1
		for e < opt.Windows && kinds[e] == kinds[w] {
			e++
		}
		t0, t1 := rep.Windows[w].Start, rep.Windows[e-1].End
		a.interval(t0, t1, useful, transfer)
		rep.Phases = append(rep.Phases, Phase{Kind: kinds[w], Start: t0, End: t1,
			Windows: e - w, Eff: efficiency(useful, transfer, t1-t0)})
		w = e
	}
	return rep
}

// AnalyzeSink is Analyze for the common single-kernel case.
func AnalyzeSink(s *replay.MetricsSink, opt Options) *Report {
	return Analyze([]*replay.MetricsSink{s}, opt)
}

func (a *analysis) intern(name string) int {
	if i, ok := a.id[name]; ok {
		return i
	}
	i := len(a.names)
	a.id[name] = i
	a.names = append(a.names, name)
	return i
}

// sortRanks orders the merged rank table naturally (p2 before p10) and
// rewrites the sink ID maps to match, so reports list ranks in rank order
// whatever order events arrived in.
func (a *analysis) sortRanks() {
	perm := make([]int, len(a.names))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return rankLess(a.names[perm[i]], a.names[perm[j]]) })
	pos := make([]int, len(perm)) // old index -> new index
	sorted := make([]string, len(perm))
	for newI, oldI := range perm {
		pos[oldI] = newI
		sorted[newI] = a.names[oldI]
	}
	a.names = sorted
	for name, oldI := range a.id {
		a.id[name] = pos[oldI]
	}
	for _, ids := range a.sinkIDs {
		for k, oldI := range ids {
			ids[k] = pos[oldI]
		}
	}
}

// rankLess compares process names naturally: a shared alphabetic prefix
// followed by digits compares numerically ("p2" < "p10"), anything else
// lexicographically.
func rankLess(x, y string) bool {
	px, nx, okx := splitRank(x)
	py, ny, oky := splitRank(y)
	if okx && oky && px == py {
		if nx != ny {
			return nx < ny
		}
		return x < y
	}
	return x < y
}

// splitRank splits a trailing decimal suffix off a name.
func splitRank(s string) (prefix string, n int64, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	var v int64
	for _, c := range s[i:] {
		v = v*10 + int64(c-'0')
		if v < 0 { // overflow: fall back to lexicographic
			return s, 0, false
		}
	}
	return s[:i], v, true
}

// interval accumulates each rank's useful and transfer time over [t0, t1),
// clipping straddling events pro rata. A transfer charges both endpoints
// for its clipped duration.
func (a *analysis) interval(t0, t1 float64, useful, transfer []float64) {
	for i := range useful {
		useful[i] = 0
		transfer[i] = 0
	}
	for k, s := range a.sinks {
		ids := a.sinkIDs[k]
		for i := 0; i < s.Len(); i++ {
			kind, rank, peer, start, end, _ := s.Event(i)
			lo, hi := start, end
			if lo < t0 {
				lo = t0
			}
			if hi > t1 {
				hi = t1
			}
			ov := hi - lo
			if ov <= 0 {
				continue
			}
			if kind == replay.EventCompute {
				useful[ids[rank]] += ov
			} else {
				transfer[ids[rank]] += ov
				transfer[ids[peer]] += ov
			}
		}
	}
}

// efficiency derives the POP metric set of one interval.
func efficiency(useful, transfer []float64, T float64) Efficiency {
	if T <= 0 || len(useful) == 0 {
		return Efficiency{}
	}
	var sumU, maxU, maxBusy float64
	for r, u := range useful {
		sumU += u
		if u > maxU {
			maxU = u
		}
		if b := u + transfer[r]; b > maxBusy {
			maxBusy = b
		}
	}
	avgU := sumU / float64(len(useful))
	e := Efficiency{
		ParallelEff: clip01(avgU / T),
		LoadBalance: 1,
		CommEff:     clip01(maxU / T),
		SerEff:      clip01(maxBusy / T),
		TransferEff: 1,
	}
	if maxU > 0 {
		e.LoadBalance = clip01(avgU / maxU)
	}
	if e.SerEff > 0 {
		e.TransferEff = clip01(e.CommEff / e.SerEff)
	}
	return e
}

func breakdown(name string, useful, transfer, T float64) Breakdown {
	wait := T - useful - transfer
	if wait < 0 {
		wait = 0 // overlapping activity; Render's "!" path diagnoses it
	}
	return Breakdown{Rank: name, Useful: useful, Transfer: transfer, Wait: wait}
}

func clip01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// String renders the metric set compactly ("PE=0.82 LB=0.91 CommE=0.90
// SerE=0.95 TrfE=0.95"); the sweep table uses the individual fields.
func (e Efficiency) String() string {
	return fmt.Sprintf("PE=%.2f LB=%.2f CommE=%.2f SerE=%.2f TrfE=%.2f",
		e.ParallelEff, e.LoadBalance, e.CommEff, e.SerEff, e.TransferEff)
}
