package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/trace"
)

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestZeroMakespan covers the empty and instantaneous traces: no windows,
// no phases, zero efficiencies, and no NaN anywhere.
func TestZeroMakespan(t *testing.T) {
	rep := AnalyzeSink(replay.NewMetricsSink(), Options{Ranks: []string{"p0", "p1"}})
	if rep.Makespan != 0 || rep.Events != 0 {
		t.Fatalf("empty trace: makespan=%g events=%d", rep.Makespan, rep.Events)
	}
	if len(rep.Windows) != 0 || len(rep.Phases) != 0 {
		t.Fatalf("zero-makespan run grew windows/phases: %d/%d", len(rep.Windows), len(rep.Phases))
	}
	if len(rep.Ranks) != 2 {
		t.Fatalf("pre-registered ranks missing: %d rows", len(rep.Ranks))
	}
	if e := rep.Summary; e.ParallelEff != 0 || e.CommEff != 0 {
		t.Fatalf("zero-makespan efficiencies: %+v", e)
	}

	// Zero-duration events keep the makespan at zero.
	s := replay.NewMetricsSink()
	s.Compute("p0", "h0", 0, 0, 0)
	rep = AnalyzeSink(s, Options{})
	if rep.Makespan != 0 || len(rep.Windows) != 0 {
		t.Fatalf("instantaneous trace: makespan=%g windows=%d", rep.Makespan, len(rep.Windows))
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if out := buf.String(); strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("zero-makespan render leaked NaN/Inf:\n%s", out)
	}
}

// TestEventStraddlingWindows pins the pro-rata clipping: an event spanning
// several windows contributes exactly its overlap to each, and the window
// columns sum back to the whole-run totals.
func TestEventStraddlingWindows(t *testing.T) {
	s := replay.NewMetricsSink()
	s.Compute("p0", "h0", 1e6, 1, 3) // spans [1,3) of a [0,4) run
	s.Comm("p0", "p1", 4096, 3, 4)
	rep := AnalyzeSink(s, Options{Windows: 2, Makespan: 4})
	if len(rep.Windows) != 2 {
		t.Fatalf("windows: %d", len(rep.Windows))
	}
	// Window 0 = [0,2): 1s of the compute. Window 1 = [2,4): the other 1s
	// plus the full transfer.
	w0, w1 := rep.Windows[0], rep.Windows[1]
	if !approx(w0.Eff.ParallelEff, 0.25) { // 1s useful on p0, 0 on p1, avg 0.5 over T=2
		t.Errorf("window 0 parallel eff = %g, want 0.25", w0.Eff.ParallelEff)
	}
	if w0.CommFraction != 0 {
		t.Errorf("window 0 comm fraction = %g, want 0", w0.CommFraction)
	}
	// Window 1 busy time: 1s useful + 1s transfer on each endpoint.
	if !approx(w1.CommFraction, 2.0/3.0) {
		t.Errorf("window 1 comm fraction = %g, want 2/3", w1.CommFraction)
	}
	var useful, transfer float64
	for _, b := range rep.Ranks {
		useful += b.Useful
		transfer += b.Transfer
	}
	if !approx(useful, 2) || !approx(transfer, 2) {
		t.Errorf("totals: useful %g (want 2), transfer %g (want 2, dual-attributed)", useful, transfer)
	}
}

// TestSingleEventWindow covers a window owning exactly one event, with
// every other window idle, and the resulting phase classification.
func TestSingleEventWindow(t *testing.T) {
	s := replay.NewMetricsSink()
	s.Compute("p0", "h0", 1e6, 2.0, 2.5)
	rep := AnalyzeSink(s, Options{Windows: 4, Makespan: 4})
	kinds := map[string]int{}
	for _, ph := range rep.Phases {
		kinds[ph.Kind] += ph.Windows
	}
	if kinds["compute"] != 1 || kinds["idle"] != 3 {
		t.Fatalf("phase windows: %v, want 1 compute + 3 idle", kinds)
	}
	w2 := rep.Windows[2] // [2,3): holds the whole event
	if !approx(w2.Eff.ParallelEff, 0.5) || !approx(w2.Eff.CommEff, 0.5) {
		t.Errorf("window 2 eff: %+v", w2.Eff)
	}
	for i, w := range rep.Windows {
		if i == 2 {
			continue
		}
		if w.Eff.ParallelEff != 0 {
			t.Errorf("idle window %d has parallel eff %g", i, w.Eff.ParallelEff)
		}
		// An idle window has maxU == 0; load balance degrades to 1 by
		// convention, never NaN.
		if w.Eff.LoadBalance != 1 {
			t.Errorf("idle window %d load balance %g, want 1", i, w.Eff.LoadBalance)
		}
	}
}

// TestRanksWithoutEvents pins the pre-registration path: ranks named in
// Options.Ranks but absent from the sink appear as fully idle rows and
// drag the load balance down.
func TestRanksWithoutEvents(t *testing.T) {
	s := replay.NewMetricsSink()
	s.Compute("p0", "h0", 1e6, 0, 3)
	rep := AnalyzeSink(s, Options{Ranks: []string{"p0", "p1", "p2"}, Makespan: 3})
	if len(rep.Ranks) != 3 {
		t.Fatalf("rank rows: %d, want 3", len(rep.Ranks))
	}
	for _, b := range rep.Ranks[1:] {
		if b.Useful != 0 || b.Transfer != 0 || !approx(b.Wait, 3) {
			t.Errorf("idle rank %s: %+v", b.Rank, b)
		}
	}
	if !approx(rep.Summary.LoadBalance, 1.0/3.0) {
		t.Errorf("load balance = %g, want 1/3", rep.Summary.LoadBalance)
	}
	if !approx(rep.Summary.CommEff, 1) {
		t.Errorf("comm eff = %g, want 1", rep.Summary.CommEff)
	}
}

// TestPhaseDetection builds a run with a clear compute half and a clear
// communication half and checks the phase segmentation finds exactly that.
func TestPhaseDetection(t *testing.T) {
	s := replay.NewMetricsSink()
	for _, p := range []string{"p0", "p1"} {
		s.Compute(p, "h0", 1e6, 0, 5)
	}
	s.Comm("p0", "p1", 1e6, 5, 10)
	rep := AnalyzeSink(s, Options{Windows: 10, Makespan: 10})
	if len(rep.Phases) != 2 {
		t.Fatalf("phases: %+v", rep.Phases)
	}
	if rep.Phases[0].Kind != "compute" || rep.Phases[0].End != 5 || rep.Phases[0].Windows != 5 {
		t.Errorf("phase 0: %+v", rep.Phases[0])
	}
	if rep.Phases[1].Kind != "comm" || rep.Phases[1].Start != 5 {
		t.Errorf("phase 1: %+v", rep.Phases[1])
	}
	// The compute phase, analysed over its own extent, is fully efficient.
	if !approx(rep.Phases[0].Eff.ParallelEff, 1) {
		t.Errorf("compute phase parallel eff = %g", rep.Phases[0].Eff.ParallelEff)
	}
	// CommE = SerE x TransferE must hold wherever SerE is positive.
	for _, ph := range rep.Phases {
		if ph.Eff.SerEff > 0 && !approx(ph.Eff.CommEff, ph.Eff.SerEff*ph.Eff.TransferEff) {
			t.Errorf("phase %s: commE %g != serE %g x trfE %g",
				ph.Kind, ph.Eff.CommEff, ph.Eff.SerEff, ph.Eff.TransferEff)
		}
	}
}

// TestRankNaturalOrder pins the merged rank table's ordering: numeric
// suffixes compare numerically, so p2 precedes p10, and the merge by name
// across several sinks is stable.
func TestRankNaturalOrder(t *testing.T) {
	a := replay.NewMetricsSink()
	a.Compute("p10", "h", 1, 0, 1)
	a.Compute("p2", "h", 1, 0, 1)
	b := replay.NewMetricsSink()
	b.Compute("p1", "h", 1, 0, 1)
	b.Compute("p2", "h", 1, 0, 1) // merges with a's p2
	rep := Analyze([]*replay.MetricsSink{a, b}, Options{Makespan: 1})
	var names []string
	for _, r := range rep.Ranks {
		names = append(names, r.Rank)
	}
	want := []string{"p1", "p2", "p10"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("rank order %v, want %v", names, want)
	}
	if !approx(rep.Ranks[1].Useful, 2) {
		t.Fatalf("p2 did not merge across sinks: %+v", rep.Ranks[1])
	}
}

// TestAnalyzeMatchesProfileOnLU pins, on a real NPB LU trace, that the
// whole-run report agrees with the (fixed) legacy Profile: per-rank
// useful time equals ComputeTime bit-for-bit (same accumulator, same
// event order), and transfer equals SendTime+RecvTime up to summation
// rounding (the report folds both roles into one accumulator). The strict
// bit-equality pin on the raw columns is TestSinkMatchesProfile in
// internal/replay.
func TestAnalyzeMatchesProfileOnLU(t *testing.T) {
	const procs = 8
	prog, err := npb.LU(npb.LUConfig{Class: npb.ClassS, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			t.Fatal(err)
		}
	}
	b, err := platform.BuildBordereauCustom(procs, 1, platform.BordereauPower)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := replay.NewProfile()
	sink := replay.NewMetricsSink()
	res, err := replay.RunActions(b, d, replay.Config{TimedTracer: replay.Tee{prof, sink}}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeSink(sink, Options{Makespan: res.SimulatedTime})
	rows := map[string]Breakdown{}
	for _, r := range rep.Ranks {
		rows[r.Rank] = r
	}
	for _, pp := range prof.Processes() {
		r, ok := rows[pp.Name]
		if !ok {
			t.Fatalf("%s missing from report", pp.Name)
		}
		if r.Useful != pp.ComputeTime {
			t.Errorf("%s: useful %v != profile compute %v", pp.Name, r.Useful, pp.ComputeTime)
		}
		if !approx(r.Transfer, pp.SendTime+pp.RecvTime) {
			t.Errorf("%s: transfer %v != profile send+recv %v", pp.Name, r.Transfer, pp.SendTime+pp.RecvTime)
		}
	}
	if rep.Summary.ParallelEff <= 0 || rep.Summary.ParallelEff > 1 {
		t.Errorf("LU parallel eff out of range: %+v", rep.Summary)
	}

	// The JSON encoding is the CI determinism currency: two analyses of
	// the same sink must serialise byte-identically.
	var j1, j2 bytes.Buffer
	if err := rep.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := AnalyzeSink(sink, Options{Makespan: res.SimulatedTime}).WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("repeated analysis serialised differently")
	}
}

// TestRenderTables smoke-tests the human-readable output.
func TestRenderTables(t *testing.T) {
	s := replay.NewMetricsSink()
	s.Compute("p0", "h0", 1e6, 0, 5)
	s.Comm("p0", "p1", 4096, 5, 6)
	rep := AnalyzeSink(s, Options{Windows: 3})
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"summary:", "window", "phase", "rank", "p0", "p1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	if got := rep.Summary.String(); !strings.Contains(got, "PE=") {
		t.Errorf("Efficiency.String: %q", got)
	}
}

// TestWindowPartitionExact checks that the last window closes exactly at
// the makespan, with no float gap losing the tail of the run.
func TestWindowPartitionExact(t *testing.T) {
	s := replay.NewMetricsSink()
	s.Compute("p0", "h0", 1, 0, 1.0/3.0)
	rep := AnalyzeSink(s, Options{Windows: 7, Makespan: 1.0 / 3.0})
	last := rep.Windows[len(rep.Windows)-1]
	if last.End != rep.Makespan {
		t.Fatalf("last window ends at %v, makespan %v", last.End, rep.Makespan)
	}
	var useful float64
	for _, w := range rep.Windows {
		useful += w.Eff.ParallelEff * (w.End - w.Start)
	}
	if !approx(useful, 1.0/3.0) {
		t.Fatalf("window-weighted useful %g, want 1/3", useful)
	}
}
