package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// Render prints the report as human-readable tables: the summary line, the
// per-window efficiencies, the detected phases, and the per-rank totals.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "time-resolved POP metrics: makespan %.6fs, %d ranks, %d events\n",
		r.Makespan, len(r.Ranks), r.Events)
	fmt.Fprintf(w, "summary: parallel %.3f = load-balance %.3f x comm %.3f (serialization %.3f x transfer %.3f)\n",
		r.Summary.ParallelEff, r.Summary.LoadBalance, r.Summary.CommEff,
		r.Summary.SerEff, r.Summary.TransferEff)

	if len(r.Windows) > 0 {
		fmt.Fprintf(w, "\n%-6s %12s %12s | %7s %7s %7s %7s %7s | %6s\n",
			"window", "start", "end", "parEff", "loadBal", "commE", "serE", "trfE", "comm%")
		for _, win := range r.Windows {
			fmt.Fprintf(w, "%-6d %11.6fs %11.6fs | %7.3f %7.3f %7.3f %7.3f %7.3f | %5.1f%%\n",
				win.Index, win.Start, win.End,
				win.Eff.ParallelEff, win.Eff.LoadBalance, win.Eff.CommEff,
				win.Eff.SerEff, win.Eff.TransferEff, 100*win.CommFraction)
		}
	}

	if len(r.Phases) > 0 {
		fmt.Fprintf(w, "\n%-8s %12s %12s %8s | %7s %7s %7s %7s %7s\n",
			"phase", "start", "end", "windows", "parEff", "loadBal", "commE", "serE", "trfE")
		for _, ph := range r.Phases {
			fmt.Fprintf(w, "%-8s %11.6fs %11.6fs %8d | %7.3f %7.3f %7.3f %7.3f %7.3f\n",
				ph.Kind, ph.Start, ph.End, ph.Windows,
				ph.Eff.ParallelEff, ph.Eff.LoadBalance, ph.Eff.CommEff,
				ph.Eff.SerEff, ph.Eff.TransferEff)
		}
	}

	if len(r.Ranks) > 0 {
		fmt.Fprintf(w, "\n%-8s | %12s %12s %12s\n", "rank", "useful", "transfer", "wait")
		for _, b := range r.Ranks {
			fmt.Fprintf(w, "%-8s | %11.6fs %11.6fs %11.6fs\n",
				b.Rank, b.Useful, b.Transfer, b.Wait)
		}
	}
}

// WriteJSON emits the report as indented JSON. The encoding is a pure
// function of the report (map-free structs, fixed field order), so the same
// replay always serialises byte-identically — the CI determinism gate diffs
// this output across sweep worker counts.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
