package platform

import (
	"fmt"
	"testing"
)

func TestParseTopoRoundTrip(t *testing.T) {
	for _, s := range []string{"fat-tree:4", "torus:4x4x2", "dragonfly:2x4x2", "torus:3x5"} {
		spec, err := ParseTopo(s)
		if err != nil {
			t.Fatalf("ParseTopo(%q): %v", s, err)
		}
		if spec.String() != s {
			t.Fatalf("ParseTopo(%q).String() = %q", s, spec.String())
		}
	}
	for _, bad := range []string{
		"", "fat-tree", "fat-tree:3", "fat-tree:0", "fat-tree:4x4",
		"torus:4", "torus:4x1", "torus:2x2x2x2", "dragonfly:2x2",
		"dragonfly:1x2x2", "mesh:4x4", "torus:axb",
	} {
		if _, err := ParseTopo(bad); err == nil {
			t.Errorf("ParseTopo(%q): expected error", bad)
		}
	}
}

func TestTopoHostCounts(t *testing.T) {
	cases := []struct {
		spec string
		want int
	}{
		{"fat-tree:2", 2},
		{"fat-tree:4", 16},
		{"fat-tree:8", 128},
		{"torus:4x4", 16},
		{"torus:4x4x2", 32},
		{"dragonfly:2x4x2", 16},
		{"dragonfly:3x2x1", 6},
	}
	for _, c := range cases {
		spec, err := ParseTopo(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.HostCount(); got != c.want {
			t.Errorf("%s: HostCount = %d, want %d", c.spec, got, c.want)
		}
		if names := spec.HostNames(); len(names) != c.want {
			t.Errorf("%s: %d host names", c.spec, len(names))
		}
	}
}

// TestTopoRouteProperties is the generator property suite: on every zoo
// member, every ordered host pair must resolve to a route whose link count
// equals the closed-form hop count, whose latency is hop count times the
// base link latency, and whose resolution is symmetric (equal hops and
// latency both ways; for the fat-tree and dragonfly, the exact reversed
// link sequence).
func TestTopoRouteProperties(t *testing.T) {
	specs := []string{
		"fat-tree:2", "fat-tree:4",
		"torus:3x4", "torus:2x2x3", "torus:4x4",
		"dragonfly:2x2x2", "dragonfly:3x4x2", "dragonfly:2x1x3",
	}
	for _, s := range specs {
		t.Run(s, func(t *testing.T) {
			spec, err := ParseTopo(s)
			if err != nil {
				t.Fatal(err)
			}
			spec = spec.withDefaults()
			b, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			k := b.Kernel
			n := spec.HostCount()
			if len(b.HostNames) != n {
				t.Fatalf("built %d hosts, want %d", len(b.HostNames), n)
			}
			exactReverse := spec.Kind != "torus"
			for i := 0; i < n; i++ {
				hi := k.Host(b.HostNames[i])
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					hj := k.Host(b.HostNames[j])
					r := k.Router().Route(hi, hj)
					if r == nil {
						t.Fatalf("no route %d->%d", i, j)
					}
					hops := spec.Hops(i, j)
					if len(r.Links) != hops {
						t.Fatalf("%d->%d: %d links, closed form says %d", i, j, len(r.Links), hops)
					}
					if want := float64(hops) * spec.Lat; !closeEnough(r.Latency, want) {
						t.Fatalf("%d->%d: latency %g, want %d*%g", i, j, r.Latency, hops, spec.Lat)
					}
					if hops != spec.Hops(j, i) {
						t.Fatalf("hops asymmetric: %d->%d=%d, %d->%d=%d",
							i, j, hops, j, i, spec.Hops(j, i))
					}
					if exactReverse {
						rr := k.Router().Route(hj, hi)
						if len(rr.Links) != len(r.Links) {
							t.Fatalf("%d<->%d: reverse resolves differently", i, j)
						}
						for x := range r.Links {
							if rr.Links[len(rr.Links)-1-x] != r.Links[x] {
								t.Fatalf("%d<->%d: reverse is not the mirrored link sequence", i, j)
							}
						}
					}
				}
			}
		})
	}
}

// TestTopoTransferLatency drives a zero-byte message across each topology
// and checks the simulated time equals the closed-form hop latency — the
// composed routes are live in the kernel, not just well-formed.
func TestTopoTransferLatency(t *testing.T) {
	for _, s := range []string{"fat-tree:4", "torus:4x4", "dragonfly:2x4x2"} {
		spec, err := ParseTopo(s)
		if err != nil {
			t.Fatal(err)
		}
		spec = spec.withDefaults()
		b, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		k := b.Kernel
		src, dst := 0, spec.HostCount()-1
		k.Spawn("s", k.Host(b.HostNames[src]), func(p *procAlias) { p.Send("m", 0, nil) })
		k.Spawn("r", k.Host(b.HostNames[dst]), func(p *procAlias) { p.Recv("m") })
		end, err := k.Run()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		want := float64(spec.Hops(src, dst)) * spec.Lat
		if !closeEnough(end, want) {
			t.Fatalf("%s: transfer latency %g, want %g", s, end, want)
		}
	}
}

// TestFatTreeCrossbarIsFatpipe: two same-edge transfers cross the same edge
// crossbar but must not contend on it (each is bounded by its own host
// links), while two transfers out of the same host do halve the shared host
// link.
func TestFatTreeCrossbarIsFatpipe(t *testing.T) {
	spec := TopoSpec{Kind: "fat-tree", K: 4}.withDefaults()
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	k := b.Kernel
	// Hosts 0 and 1 share edge 0; their partner is on no shared host link.
	const bytes = 1e6
	k.Spawn("s0", k.Host(b.HostNames[0]), func(p *procAlias) { p.Send("a", bytes, nil) })
	k.Spawn("r0", k.Host(b.HostNames[1]), func(p *procAlias) { p.Recv("a") })
	k.Spawn("s1", k.Host(b.HostNames[1]), func(p *procAlias) { p.Send("b", bytes, nil) })
	k.Spawn("r1", k.Host(b.HostNames[0]), func(p *procAlias) { p.Recv("b") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The two opposite-direction transfers share every link of the 3-hop
	// route; only the shared host links split bandwidth, the fatpipe
	// crossbar does not add a second halving.
	want := 3*spec.Lat + 2*bytes/spec.BW
	if !closeEnough(end, want) {
		t.Fatalf("same-edge pair: %g, want %g", end, want)
	}
}

// TestTopoScaled applies what-if factors to a spec.
func TestTopoScaled(t *testing.T) {
	spec, err := ParseTopo("torus:4x4")
	if err != nil {
		t.Fatal(err)
	}
	sc := spec.Scaled(Scale{Latency: 2, Bandwidth: 0.5, Power: 3})
	def := spec.withDefaults()
	if sc.Lat != 2*def.Lat || sc.BW != 0.5*def.BW || sc.Power != 3*def.Power {
		t.Fatalf("scaled spec = %+v", sc)
	}
	id := spec.Scaled(Scale{})
	if id.Lat != def.Lat || id.BW != def.BW || id.Power != def.Power {
		t.Fatalf("identity scale changed spec: %+v", id)
	}
}

func TestPairIndexDense(t *testing.T) {
	const m = 5
	seen := make(map[int]bool)
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			i := pairIndex(a, b, m)
			if i < 0 || i >= m*(m-1)/2 || seen[i] {
				t.Fatalf("pairIndex(%d,%d,%d) = %d (dup or out of range)", a, b, m, i)
			}
			if i != pairIndex(b, a, m) {
				t.Fatalf("pairIndex not symmetric for (%d,%d)", a, b)
			}
			seen[i] = true
		}
	}
}

func ExampleTopoSpec_String() {
	spec, _ := ParseTopo("dragonfly:4x8x4")
	fmt.Println(spec.String(), spec.HostCount())
	// Output: dragonfly:4x8x4 128
}
