package platform

import (
	"fmt"

	"tireplay/internal/simx"
)

// The two Grid'5000 clusters used in the paper's evaluation (Section 6.1),
// with the calibrated values of Figure 5 for bordereau and scaled values for
// gdx (2.0 GHz vs 2.6 GHz Opterons).
const (
	// BordereauNodes is the size of the bordereau cluster.
	BordereauNodes = 93
	// BordereauPower is the calibrated per-core flop rate of a bordereau
	// node for the LU benchmark (Figure 5 of the paper).
	BordereauPower = 1.17e9
	// BordereauCores: dual-processor, dual-core AMD Opteron 2218.
	BordereauCores = 4

	// GdxNodes is the size of the gdx cluster.
	GdxNodes = 186
	// GdxPower scales the bordereau calibration by the clock ratio 2.0/2.6.
	GdxPower = BordereauPower * 2.0 / 2.6
	// GdxCores: dual-processor single-core AMD Opteron 246.
	GdxCores = 2
	// GdxCabinets is the number of cabinets; two cabinets share a switch.
	GdxCabinets = 18

	// GigaEthernetBw is the nominal bandwidth of a 1 Gb Ethernet link in
	// bytes per second.
	GigaEthernetBw = 1.25e8
	// TenGigabitBw is the nominal bandwidth of a 10 Gb link.
	TenGigabitBw = 1.25e9
	// ClusterLatency is the calibrated one-hop latency (Figure 5).
	ClusterLatency = 16.67e-6
	// WANLatency is the one-way latency of the dedicated 10 Gb network
	// between the two Grid'5000 sites.
	WANLatency = 5e-3
)

// Bordereau returns the platform description of the first nodes of the
// bordereau cluster: homogeneous nodes behind a single 10 Gb switch,
// matching Figure 5 of the paper.
func Bordereau(nodes int) *Platform {
	return BordereauWithCores(nodes, BordereauCores)
}

// BordereauWithCores is Bordereau with an explicit per-node core count; the
// paper's acquisition experiments restrict executions to one core per node,
// which cores=1 models.
func BordereauWithCores(nodes, cores int) *Platform {
	return BordereauCustom(nodes, cores, BordereauPower)
}

// BordereauCustom is Bordereau with explicit core count and per-core power:
// the builder calibration emits (Section 5 instantiates the platform file
// with the flop rate measured for the target application).
func BordereauCustom(nodes, cores int, power float64) *Platform {
	if nodes <= 0 || nodes > BordereauNodes {
		nodes = BordereauNodes
	}
	if cores < 1 {
		cores = 1
	}
	return &Platform{
		Version: "3",
		AS: AS{
			ID:      "AS_bordeaux",
			Routing: "Full",
			Clusters: []Cluster{{
				ID:      "bordereau",
				Prefix:  "bordereau-",
				Suffix:  ".bordeaux.grid5000.fr",
				Radical: FormatRadical(nodes),
				Power:   fmt.Sprintf("%G", power),
				Core:    fmt.Sprintf("%d", cores),
				BW:      "1.25E8",
				Lat:     "16.67E-6",
				BBBw:    "1.25E9",
				BBLat:   "16.67E-6",
			}},
		},
	}
}

// BuildBordereau instantiates the bordereau platform.
func BuildBordereau(nodes int) (*Build, error) {
	return Instantiate(Bordereau(nodes))
}

// BuildBordereauWithCores instantiates bordereau with an explicit core
// count.
func BuildBordereauWithCores(nodes, cores int) (*Build, error) {
	return Instantiate(BordereauWithCores(nodes, cores))
}

// BuildBordereauCustom instantiates bordereau with explicit core count and
// calibrated per-core power.
func BuildBordereauCustom(nodes, cores int, power float64) (*Build, error) {
	return Instantiate(BordereauCustom(nodes, cores, power))
}

// BuildGdx instantiates the gdx cluster with its hierarchical interconnect:
// nodes are spread over 18 cabinets, two cabinets share a first-level
// switch, and all first-level switches connect to a single second-level
// switch — so two nodes in distant cabinets communicate through three
// switches, as described in Section 6.1 of the paper.
func BuildGdx(nodes int) (*Build, error) {
	return BuildGdxWithCores(nodes, GdxCores)
}

// BuildGdxWithCores instantiates gdx with an explicit per-node core count.
func BuildGdxWithCores(nodes, cores int) (*Build, error) {
	return buildGdxRouting(nodes, cores, RoutingComputed)
}

// buildGdxRouting instantiates gdx in the given routing mode.
func buildGdxRouting(nodes, cores int, r Routing) (*Build, error) {
	b := newBuild(r)
	if _, err := b.buildGdxInto(nodes, cores); err != nil {
		return nil, err
	}
	return b, nil
}

// buildGdxInto constructs the gdx topology in the Build's kernel and returns
// its clusterInst for inter-site routing. In computed mode the cabinet pairs
// behind each first-level switch become nested zones of the gdx zone, so a
// composed same-switch route crosses one switch and a distant-cabinet route
// three — the exact paths the table mode materializes.
func (b *Build) buildGdxInto(nodes, cores int) (*clusterInst, error) {
	if nodes <= 0 || nodes > GdxNodes {
		nodes = GdxNodes
	}
	if cores < 1 {
		cores = 1
	}
	k := b.Kernel
	ci := &clusterInst{
		id:       "gdx",
		uplink:   make(map[string][]*simx.Link),
		backbone: k.AddLink("gdx_backbone", GigaEthernetBw, ClusterLatency),
	}
	perCabinet := (nodes + GdxCabinets - 1) / GdxCabinets
	nSwitch := (GdxCabinets + 1) / 2
	switches := make([]*simx.Link, nSwitch)
	for i := range switches {
		switches[i] = k.AddLink(fmt.Sprintf("gdx_switch_%d", i), GigaEthernetBw, ClusterLatency)
	}
	var groupZones []*Zone
	if b.zones != nil {
		ci.zone = b.zones.NewZone("gdx", nil, ci.backbone)
		groupZones = make([]*Zone, nSwitch)
		for i, sw := range switches {
			groupZones[i] = b.zones.NewZone(fmt.Sprintf("gdx_group_%d", i), ci.zone, sw)
		}
	}
	group := make([]int, nodes) // host index -> first-level switch index
	for i := 0; i < nodes; i++ {
		cabinet := i / perCabinet
		group[i] = cabinet / 2
		name := fmt.Sprintf("gdx-%d.orsay.grid5000.fr", i)
		h := k.AddHost(name, GdxPower, cores)
		hl := k.AddLink(fmt.Sprintf("gdx_link_%d", i), GigaEthernetBw, ClusterLatency)
		ci.uplink[name] = []*simx.Link{hl, switches[group[i]]}
		ci.hosts = append(ci.hosts, name)
		b.HostNames = append(b.HostNames, name)
		if groupZones != nil {
			b.zones.Attach(h, groupZones[group[i]], hl)
		}
	}
	if ci.zone == nil {
		for i, src := range ci.hosts {
			for j, dst := range ci.hosts {
				if i == j {
					continue
				}
				hlS, hlD := ci.uplink[src][0], ci.uplink[dst][0]
				if group[i] == group[j] {
					// Same first-level switch: one switch on the path.
					k.AddRoute(src, dst, []*simx.Link{hlS, switches[group[i]], hlD})
				} else {
					// Distant cabinets: three switches on the path.
					k.AddRoute(src, dst, []*simx.Link{
						hlS, switches[group[i]], ci.backbone, switches[group[j]], hlD,
					})
				}
			}
		}
	}
	b.byCluster["gdx"] = ci.hosts
	return ci, nil
}

// BuildGrid5000 instantiates both sites in one kernel, interconnected by the
// dedicated 10 Gb wide-area network — the platform of the Scattering
// acquisition modes (S-2 and SF-(2,v) in Table 2).
func BuildGrid5000(bordereauNodes, gdxNodes int) (*Build, error) {
	return BuildGrid5000WithCores(bordereauNodes, gdxNodes, 0)
}

// BuildGrid5000WithCores instantiates both sites with an explicit per-node
// core count (0 keeps each cluster's physical count).
func BuildGrid5000WithCores(bordereauNodes, gdxNodes, cores int) (*Build, error) {
	return buildGrid5000Routing(bordereauNodes, gdxNodes, cores, RoutingComputed)
}

// buildGrid5000Routing instantiates both sites in the given routing mode.
func buildGrid5000Routing(bordereauNodes, gdxNodes, cores int, r Routing) (*Build, error) {
	b := newBuild(r)
	bCores, gCores := BordereauCores, GdxCores
	if cores > 0 {
		bCores, gCores = cores, cores
	}
	bp := BordereauWithCores(bordereauNodes, bCores)
	bi, err := b.buildCluster(&bp.AS.Clusters[0])
	if err != nil {
		return nil, err
	}
	gi, err := b.buildGdxInto(gdxNodes, gCores)
	if err != nil {
		return nil, err
	}
	wan := b.Kernel.AddLink("wan_bordeaux_orsay", TenGigabitBw, WANLatency)
	b.connectClusters(bi, gi, []*simx.Link{wan})
	b.connectClusters(gi, bi, []*simx.Link{wan})
	return b, nil
}
