package platform

import (
	"strings"
	"testing"
)

func TestParseBuiltinCanonicalizes(t *testing.T) {
	cases := []struct{ in, want string }{
		{"bordereau:8", "bordereau:8x1"},
		{"bordereau:8x1", "bordereau:8x1"},
		{" bordereau:93x4 ", "bordereau:93x4"},
	}
	for _, c := range cases {
		got, err := CanonicalBuiltin(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("%q canonicalized to %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseBuiltinRejects(t *testing.T) {
	for _, bad := range []string{
		"", "bordereau", "bordereau:", "bordereau:0", "bordereau:-3",
		"bordereau:8x0", "bordereau:8x", "bordereau:94", "gdx:8",
		"fat-tree:4", "bordereau:axb",
	} {
		if _, err := ParseBuiltin(bad); err == nil {
			t.Errorf("spec %q was accepted", bad)
		}
	}
}

func TestBuiltinBuildMatchesGenerator(t *testing.T) {
	b, err := ParseBuiltin("bordereau:5x2")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := p.Hosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 5 {
		t.Fatalf("built %d hosts, want 5", len(hosts))
	}
	want := BordereauWithCores(5, 2)
	wantHosts, err := want.Hosts()
	if err != nil {
		t.Fatal(err)
	}
	for i := range hosts {
		if hosts[i] != wantHosts[i] {
			t.Fatalf("host %d: %q != generator's %q", i, hosts[i], wantHosts[i])
		}
	}

	bogus := &BuiltinSpec{Cluster: "nope", Nodes: 1, Cores: 1}
	if _, err := bogus.Build(); err == nil || !strings.Contains(err.Error(), "unknown builtin") {
		t.Fatalf("unknown cluster built: %v", err)
	}
}
