package platform

import (
	"bytes"
	"strings"
	"testing"

	"tireplay/internal/simx"
)

// procAlias shortens simulation process references in the tests below.
type procAlias = simx.Proc

// paperPlatformXML is the platform file of Figure 5 in the paper, verbatim.
const paperPlatformXML = `<?xml version='1.0'?>
<!DOCTYPE platform SYSTEM "simgrid.dtd">
<platform version="3">
  <AS id="AS_mysite" routing="Full">
    <cluster id="AS_mycluster"
             prefix="mycluster-" suffix=".mysite.fr"
             radical="0-3" power="1.17E9"
             bw="1.25E8" lat="16.67E-6"
             bb_bw="1.25E9" bb_lat="16.67E-6"/>
  </AS>
</platform>`

// paperDeploymentXML is the deployment file of Figure 6 in the paper.
const paperDeploymentXML = `<?xml version='1.0'?>
<!DOCTYPE platform SYSTEM "simgrid.dtd">
<platform version="3">
  <process host="mycluster-0.mysite.fr" function="p0"/>
  <process host="mycluster-1.mysite.fr" function="p1"/>
  <process host="mycluster-2.mysite.fr" function="p2"/>
  <process host="mycluster-3.mysite.fr" function="p3"/>
</platform>`

func TestParsePaperPlatform(t *testing.T) {
	p, err := Parse(strings.NewReader(paperPlatformXML))
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != "3" {
		t.Errorf("version = %q", p.Version)
	}
	if p.AS.ID != "AS_mysite" || p.AS.Routing != "Full" {
		t.Errorf("AS = %+v", p.AS)
	}
	if len(p.AS.Clusters) != 1 {
		t.Fatalf("clusters = %d", len(p.AS.Clusters))
	}
	c := p.AS.Clusters[0]
	if c.Prefix != "mycluster-" || c.Suffix != ".mysite.fr" || c.Radical != "0-3" {
		t.Errorf("cluster = %+v", c)
	}
	if c.Power != "1.17E9" || c.BW != "1.25E8" || c.Lat != "16.67E-6" {
		t.Errorf("cluster rates = %+v", c)
	}
}

func TestParseDeploymentPaperFile(t *testing.T) {
	d, err := ParseDeployment(strings.NewReader(paperDeploymentXML))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Processes) != 4 {
		t.Fatalf("processes = %d", len(d.Processes))
	}
	for i, p := range d.Processes {
		wantHost := "mycluster-" + string(rune('0'+i)) + ".mysite.fr"
		if p.Host != wantHost || p.Function != "p"+string(rune('0'+i)) {
			t.Errorf("process %d = %+v", i, p)
		}
	}
}

func TestParseDeploymentWithArguments(t *testing.T) {
	const depl = `<platform version="3">
  <process host="h0" function="p1">
    <argument value="SG_process1.trace"/>
  </process>
</platform>`
	d, err := ParseDeployment(strings.NewReader(depl))
	if err != nil {
		t.Fatal(err)
	}
	args := d.Processes[0].Args()
	if len(args) != 1 || args[0] != "SG_process1.trace" {
		t.Fatalf("args = %v", args)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	bad := []string{
		`<platform version="3"><AS id="a" routing="Full"><cluster id="c" radical="zz" power="1e9" bw="1e8" lat="1e-5"/></AS></platform>`,
		`<platform version="3"><AS id="a" routing="Full"><cluster id="c" radical="0-3" bw="1e8" lat="1e-5"/></AS></platform>`,
		`<platform version="3"><AS id="a" routing="Full"><cluster radical="0-3" power="1e9" bw="1e8" lat="1e-5"/></AS></platform>`,
		`<platform version="3"><AS id="a" routing="Full"><host id="h"/></AS></platform>`,
		`<platform version="3"><AS id="a" routing="Full"><link id="l" bandwidth="1e8"/></AS></platform>`,
		`not xml at all`,
	}
	for i, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestParseRadical(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"0-3", []int{0, 1, 2, 3}},
		{"5", []int{5}},
		{"0,2,4-6", []int{0, 2, 4, 5, 6}},
		{"0-0", []int{0}},
	}
	for _, c := range cases {
		got, err := ParseRadical(c.in)
		if err != nil {
			t.Fatalf("ParseRadical(%q): %v", c.in, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("ParseRadical(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseRadical(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
	for _, bad := range []string{"", "3-1", "a-b", "1,", "-", "1--3"} {
		if _, err := ParseRadical(bad); err == nil {
			t.Errorf("ParseRadical(%q): expected error", bad)
		}
	}
}

func TestFormatRadical(t *testing.T) {
	if FormatRadical(4) != "0-3" || FormatRadical(1) != "0" || FormatRadical(0) != "" {
		t.Fatalf("FormatRadical: %q %q %q", FormatRadical(4), FormatRadical(1), FormatRadical(0))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p, err := Parse(strings.NewReader(paperPlatformXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if p2.AS.Clusters[0].Power != p.AS.Clusters[0].Power {
		t.Fatal("round trip lost cluster power")
	}
}

func TestDeploymentMarshalRoundTrip(t *testing.T) {
	d, err := RoundRobin([]string{"h0", "h1"}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDeployment(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Processes) != 4 || d2.Processes[3].Host != "h1" {
		t.Fatalf("round trip = %+v", d2.Processes)
	}
}

func TestInstantiatePaperPlatform(t *testing.T) {
	p, err := Parse(strings.NewReader(paperPlatformXML))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.HostNames) != 4 {
		t.Fatalf("hosts = %v", b.HostNames)
	}
	if b.HostNames[0] != "mycluster-0.mysite.fr" {
		t.Fatalf("first host = %q", b.HostNames[0])
	}
	h := b.Kernel.Host("mycluster-2.mysite.fr")
	if h == nil || h.Speed != 1.17e9 {
		t.Fatalf("host 2 = %+v", h)
	}
	ch := b.ClusterHosts("AS_mycluster")
	if len(ch) != 4 {
		t.Fatalf("cluster hosts = %v", ch)
	}
}

func TestInstantiatedClusterCommunicates(t *testing.T) {
	p, err := Parse(strings.NewReader(paperPlatformXML))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	k := b.Kernel
	src, dst := b.HostNames[0], b.HostNames[3]
	k.Spawn("s", k.Host(src), func(pr *procAlias) { pr.Send("m", 1e6, nil) })
	k.Spawn("r", k.Host(dst), func(pr *procAlias) { pr.Recv("m") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Latency = 16.67e-6 * 3 hops (link, backbone, link) = 5.001e-5;
	// bandwidth limited by the 1.25e8 host links: 1e6/1.25e8 = 8e-3.
	want := 3*16.67e-6 + 1e6/1.25e8
	if diff := end - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("transfer time = %g, want %g", end, want)
	}
}

func TestExplicitHostsLinksRoutes(t *testing.T) {
	const xmlDoc = `<platform version="3">
  <AS id="AS0" routing="Full">
    <host id="alpha" power="2E9" core="2"/>
    <host id="beta" power="1E9"/>
    <link id="l0" bandwidth="1E8" latency="1E-4"/>
    <route src="alpha" dst="beta"><link_ctn id="l0"/></route>
  </AS>
</platform>`
	p, err := Parse(strings.NewReader(xmlDoc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	k := b.Kernel
	if k.Host("alpha").Cores != 2 || k.Host("beta").Cores != 1 {
		t.Fatal("core counts wrong")
	}
	// The route is symmetrical by default: beta -> alpha must also work.
	k.Spawn("s", k.Host("beta"), func(pr *procAlias) { pr.Send("m", 1e6, nil) })
	k.Spawn("r", k.Host("alpha"), func(pr *procAlias) { pr.Recv("m") })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteUnknownLinkRejected(t *testing.T) {
	const xmlDoc = `<platform version="3">
  <AS id="AS0" routing="Full">
    <host id="a" power="1E9"/>
    <host id="b" power="1E9"/>
    <route src="a" dst="b"><link_ctn id="nope"/></route>
  </AS>
</platform>`
	p, err := Parse(strings.NewReader(xmlDoc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instantiate(p); err == nil {
		t.Fatal("expected error for unknown link reference")
	}
}

func TestRoundRobinDeployments(t *testing.T) {
	hosts := []string{"h0", "h1", "h2", "h3"}
	d, err := RoundRobin(hosts, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Processes[0].Host != "h0" || d.Processes[4].Host != "h0" || d.Processes[5].Host != "h1" {
		t.Fatalf("round robin wrong: %+v", d.Processes)
	}

	// Folding factor 2: p0,p1 on h0; p2,p3 on h1; ...
	d2, err := RoundRobin(hosts, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Processes[0].Host != "h0" || d2.Processes[1].Host != "h0" || d2.Processes[2].Host != "h1" {
		t.Fatalf("folded deployment wrong: %+v", d2.Processes)
	}

	if _, err := RoundRobin(nil, 4, 1); err == nil {
		t.Fatal("expected error for empty host list")
	}
}

func TestScatterDeployment(t *testing.T) {
	g1 := []string{"a0", "a1"}
	g2 := []string{"b0", "b1"}
	d, err := Scatter([][]string{g1, g2}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Processes) != 6 {
		t.Fatalf("processes = %d", len(d.Processes))
	}
	// 3 ranks per site.
	if d.Processes[0].Host != "a0" || d.Processes[3].Host != "b0" {
		t.Fatalf("scatter placement: %+v", d.Processes)
	}
	// Function names are contiguous ranks.
	for i, p := range d.Processes {
		if p.Function != "p"+itoa(i) {
			t.Fatalf("function %d = %q", i, p.Function)
		}
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

func TestWithTraceArgs(t *testing.T) {
	d, _ := RoundRobin([]string{"h0"}, 2, 1)
	d2, err := d.WithTraceArgs([]string{"SG_process0.trace", "SG_process1.trace"})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Processes[1].Args(); len(got) != 1 || got[0] != "SG_process1.trace" {
		t.Fatalf("args = %v", got)
	}
	if _, err := d.WithTraceArgs([]string{"only-one"}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestBuildBordereau(t *testing.T) {
	b, err := BuildBordereau(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.HostNames) != 8 {
		t.Fatalf("hosts = %d", len(b.HostNames))
	}
	h := b.Kernel.Host(b.HostNames[0])
	if h.Speed != BordereauPower || h.Cores != BordereauCores {
		t.Fatalf("host = %+v", h)
	}
}

func TestBuildGdxHierarchy(t *testing.T) {
	b, err := BuildGdx(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.HostNames) != 40 {
		t.Fatalf("hosts = %d", len(b.HostNames))
	}
	k := b.Kernel
	// Same cabinet pair: 1 switch on path (3 links, 3 latencies).
	// Host 0 and 1 are in cabinet 0 -> same group.
	k.Spawn("s", k.Host(b.HostNames[0]), func(p *procAlias) { p.Send("m", 0, nil) })
	k.Spawn("r", k.Host(b.HostNames[1]), func(p *procAlias) { p.Recv("m") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * ClusterLatency; !closeEnough(end, want) {
		t.Fatalf("same-cabinet latency = %g, want %g", end, want)
	}

	// Distant cabinets: 3 switches on path (5 links worth of latency).
	b2, _ := BuildGdx(40)
	k2 := b2.Kernel
	k2.Spawn("s", k2.Host(b2.HostNames[0]), func(p *procAlias) { p.Send("m", 0, nil) })
	k2.Spawn("r", k2.Host(b2.HostNames[39]), func(p *procAlias) { p.Recv("m") })
	end2, err := k2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * ClusterLatency; !closeEnough(end2, want) {
		t.Fatalf("distant-cabinet latency = %g, want %g", end2, want)
	}
}

func TestBuildGrid5000WAN(t *testing.T) {
	b, err := BuildGrid5000(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.HostNames) != 8 {
		t.Fatalf("hosts = %d", len(b.HostNames))
	}
	k := b.Kernel
	bh := b.ClusterHosts("bordereau")[0]
	gh := b.ClusterHosts("gdx")[0]
	k.Spawn("s", k.Host(bh), func(p *procAlias) { p.Send("m", 0, nil) })
	k.Spawn("r", k.Host(gh), func(p *procAlias) { p.Recv("m") })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Inter-site latency dominated by the WAN link.
	if end < WANLatency {
		t.Fatalf("inter-site latency %g < WAN latency %g", end, WANLatency)
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9+1e-6*b
}
