package platform

import (
	"reflect"
	"testing"
)

// twoClusters builds a description with two clusters, optionally joined by a
// wide-area ASroute (the Grid'5000 shape of the Scattering modes).
func twoClusters(joined bool) *Platform {
	p := &Platform{
		Version: "3",
		AS: AS{
			ID:      "AS_root",
			Routing: "Full",
			Clusters: []Cluster{
				{ID: "alpha", Prefix: "a-", Radical: "0-2", Power: "1E9", BW: "1.25E8", Lat: "1E-5"},
				{ID: "beta", Prefix: "b-", Radical: "0-1", Power: "1E9", BW: "1.25E8", Lat: "1E-5"},
			},
			Links: []LinkDef{{ID: "wan", Bandwidth: "1.25E9", Latency: "5E-3"}},
		},
	}
	if joined {
		p.AS.ASRoutes = []ASRoute{{Src: "alpha", Dst: "beta", Links: []LinkRef{{ID: "wan"}}}}
	}
	return p
}

func TestHostsMatchesInstantiate(t *testing.T) {
	p := twoClusters(true)
	hosts, err := p.Hosts()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hosts, b.HostNames) {
		t.Fatalf("Hosts() = %v, Instantiate order = %v", hosts, b.HostNames)
	}
}

func TestComponentsDisjointClusters(t *testing.T) {
	comps, err := twoClusters(false).Components()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a-0", "a-1", "a-2"}, {"b-0", "b-1"}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
}

func TestComponentsJoinedByASRoute(t *testing.T) {
	comps, err := twoClusters(true).Components()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 || len(comps[0]) != 5 {
		t.Fatalf("components = %v, want one of 5 hosts", comps)
	}
}

func TestComponentsExplicitHostsAndRoutes(t *testing.T) {
	p := &Platform{
		Version: "3",
		AS: AS{
			ID: "AS0", Routing: "Full",
			Hosts: []HostDef{{ID: "h0", Power: "1E9"}, {ID: "h1", Power: "1E9"}, {ID: "h2", Power: "1E9"}},
			Links: []LinkDef{{ID: "l01", Bandwidth: "1E8", Latency: "1E-5"}},
			Routes: []RouteDef{
				{Src: "h0", Dst: "h1", Links: []LinkRef{{ID: "l01"}}},
			},
		},
	}
	comps, err := p.Components()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"h0", "h1"}, {"h2"}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
}

func TestComponentsSharedLinkJoins(t *testing.T) {
	// Two host pairs with no route between the pairs, but both routes cross
	// the same declared link: they contend for it, so they are one
	// component and must never be split onto separate kernels.
	p := &Platform{
		Version: "3",
		AS: AS{
			ID: "AS0", Routing: "Full",
			Hosts: []HostDef{
				{ID: "h0", Power: "1E9"}, {ID: "h1", Power: "1E9"},
				{ID: "h2", Power: "1E9"}, {ID: "h3", Power: "1E9"},
			},
			Links: []LinkDef{{ID: "shared", Bandwidth: "1E8", Latency: "1E-5"}},
			Routes: []RouteDef{
				{Src: "h0", Dst: "h1", Links: []LinkRef{{ID: "shared"}}},
				{Src: "h2", Dst: "h3", Links: []LinkRef{{ID: "shared"}}},
			},
		},
	}
	comps, err := p.Components()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Fatalf("components = %v, want one of 4 hosts (shared link contends)", comps)
	}
}

func TestComponentsSubASAlias(t *testing.T) {
	// An ASroute between two single-cluster sub-systems referenced by their
	// AS ids, the shape the scattering platforms use.
	p := &Platform{
		Version: "3",
		AS: AS{
			ID: "AS_root", Routing: "Full",
			Subs: []AS{
				{ID: "site_a", Routing: "Full", Clusters: []Cluster{
					{ID: "ca", Prefix: "a-", Radical: "0-1", Power: "1E9", BW: "1.25E8", Lat: "1E-5"}}},
				{ID: "site_b", Routing: "Full", Clusters: []Cluster{
					{ID: "cb", Prefix: "b-", Radical: "0-1", Power: "1E9", BW: "1.25E8", Lat: "1E-5"}}},
			},
			Links:    []LinkDef{{ID: "wan", Bandwidth: "1.25E9", Latency: "5E-3"}},
			ASRoutes: []ASRoute{{Src: "site_a", Dst: "site_b", Links: []LinkRef{{ID: "wan"}}}},
		},
	}
	comps, err := p.Components()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Fatalf("components = %v, want one of 4 hosts", comps)
	}
	// Without the ASroute the sites fall apart.
	p.AS.ASRoutes = nil
	comps, err = p.Components()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("components = %v, want two", comps)
	}
}

func TestScaledIdentityRoundTrips(t *testing.T) {
	p := twoClusters(true)
	s, err := p.Scaled(Scale{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, s) {
		t.Fatalf("identity scale changed the description:\n%+v\nvs\n%+v", p, s)
	}
	// The copy must be deep: mutating it cannot touch the original.
	s.AS.Clusters[0].Power = "2E9"
	s.AS.ASRoutes[0].Links[0].ID = "other"
	if p.AS.Clusters[0].Power != "1E9" || p.AS.ASRoutes[0].Links[0].ID != "wan" {
		t.Fatal("Scaled shares memory with its receiver")
	}
}

func TestScaledAppliesFactors(t *testing.T) {
	p := twoClusters(true)
	p.AS.Hosts = []HostDef{{ID: "lone", Power: "2E9"}}
	s, err := p.Scaled(Scale{Latency: 0.5, Bandwidth: 10, Power: 2})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct{ got, want string }{
		{s.AS.Clusters[0].Power, "2E+09"},
		{s.AS.Clusters[0].BW, "1.25E+09"},
		{s.AS.Clusters[0].Lat, "5E-06"},
		{s.AS.Hosts[0].Power, "4E+09"},
		{s.AS.Links[0].Bandwidth, "1.25E+10"},
		{s.AS.Links[0].Latency, "0.0025"},
	}
	for i, c := range checks {
		if c.got != c.want {
			t.Fatalf("check %d: got %q, want %q", i, c.got, c.want)
		}
	}
	// The scaled description must still instantiate.
	if _, err := Instantiate(s); err != nil {
		t.Fatal(err)
	}
}
