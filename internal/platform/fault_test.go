package platform

import (
	"math"
	"testing"

	"tireplay/internal/simx"
)

func TestParseFaultSpecNone(t *testing.T) {
	for _, in := range []string{"", "none", "NONE", "  none  "} {
		s, err := ParseFaultSpec(in)
		if err != nil || s != nil {
			t.Fatalf("ParseFaultSpec(%q) = %v, %v, want nil, nil", in, s, err)
		}
	}
	if (*FaultSpec)(nil).String() != "none" {
		t.Fatal("nil spec must render as none")
	}
}

func TestParseFaultSpecClauses(t *testing.T) {
	s, err := ParseFaultSpec("host:3@12.5,host:c-5.me@60,hosts:25%@60,link:0-3@5,link:a>b-c@5,bw:0.5@10-20,cpu:0.25@30-45,mtbf:3600,seed:7")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.HostFails) != 2 || s.HostFails[0].Index != 3 || s.HostFails[0].At != 12.5 {
		t.Fatalf("host fails = %+v", s.HostFails)
	}
	if s.HostFails[1].Name != "c-5.me" || s.HostFails[1].Index != -1 {
		t.Fatalf("named host fail = %+v", s.HostFails[1])
	}
	if len(s.PctFails) != 1 || s.PctFails[0].Pct != 25 {
		t.Fatalf("pct fails = %+v", s.PctFails)
	}
	if len(s.LinkFails) != 2 || s.LinkFails[0].SrcIndex != 0 || s.LinkFails[0].DstIndex != 3 {
		t.Fatalf("link fails = %+v", s.LinkFails)
	}
	if s.LinkFails[1].Src != "a" || s.LinkFails[1].Dst != "b-c" {
		t.Fatalf("named link fail = %+v (names with '-' need the '>' form)", s.LinkFails[1])
	}
	if len(s.Degrades) != 2 || s.Degrades[0].Kind != "bw" || s.Degrades[1].Factor != 0.25 {
		t.Fatalf("degrades = %+v", s.Degrades)
	}
	if s.MTBF != 3600 || s.Seed != 7 {
		t.Fatalf("mtbf/seed = %g/%d", s.MTBF, s.Seed)
	}
}

func TestParseFaultSpecRoundTrip(t *testing.T) {
	in := "host:3@12.5,hosts:25%@60,link:0-3@5,bw:0.5@10-20,mtbf:3600,seed:7"
	s, err := ParseFaultSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != in {
		t.Fatalf("String() = %q, want canonical %q", got, in)
	}
	again, err := ParseFaultSpec(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != s.String() {
		t.Fatalf("round-trip drift: %q -> %q", s.String(), again.String())
	}
	txt, err := s.MarshalText()
	if err != nil || string(txt) != in {
		t.Fatalf("MarshalText = %q, %v", txt, err)
	}
	var u FaultSpec
	if err := u.UnmarshalText(txt); err != nil || u.String() != in {
		t.Fatalf("UnmarshalText -> %q, %v", u.String(), err)
	}
}

func TestParseFaultSpecErrors(t *testing.T) {
	for _, in := range []string{
		"host:3",        // no time
		"host:@5",       // empty selector
		"host:3@-1",     // negative time
		"host:3@NaN",    // non-finite time
		"hosts:0%@5",    // zero percentage
		"hosts:120%@5",  // > 100
		"hosts:25@5",    // missing %
		"link:a-b@5",    // '-' form needs indices
		"bw:0@10-20",    // zero factor
		"bw:0.5@20-10",  // inverted window
		"bw:0.5@10",     // not a window
		"cpu:0.5@10-10", // empty window
		"mtbf:0",        // non-positive
		"mtbf:abc",      // not a number
		"seed:x",        // bad seed
		"boom:1@2",      // unknown key
		"host",          // no colon
		"seed:3",        // no effect: seed alone
	} {
		if s, err := ParseFaultSpec(in); err == nil {
			t.Errorf("ParseFaultSpec(%q) = %+v, want error", in, s)
		}
	}
}

func TestPctCountAndPickDeterminism(t *testing.T) {
	if pctCount(16, 25) != 4 {
		t.Fatalf("pctCount(16, 25%%) = %d, want 4", pctCount(16, 25))
	}
	if pctCount(100, 0.1) != 1 {
		t.Fatal("a positive percentage must kill at least one host")
	}
	if pctCount(4, 100) != 4 {
		t.Fatal("100% kills everything")
	}
	a := pctPick(32, 8, &splitmix64{state: 42})
	b := pctPick(32, 8, &splitmix64{state: 42})
	c := pctPick(32, 8, &splitmix64{state: 43})
	if len(a) != 8 {
		t.Fatalf("picked %d, want 8", len(a))
	}
	seen := map[int]bool{}
	for i, v := range a {
		if v != b[i] {
			t.Fatal("same seed must pick the same hosts")
		}
		if v < 0 || v >= 32 || seen[v] {
			t.Fatalf("pick %d out of range or duplicated", v)
		}
		seen[v] = true
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds picked identical hosts (suspicious)")
	}
}

func TestArrivalsMergesExplicitAndExponential(t *testing.T) {
	s, err := ParseFaultSpec("host:0@50,host:1@10,mtbf:30,seed:3")
	if err != nil {
		t.Fatal(err)
	}
	a := s.Arrivals(4)
	prev := 0.0
	explicit := 0
	for i := 0; i < 50; i++ {
		t0 := a.Next()
		if math.IsInf(t0, 1) {
			t.Fatal("an MTBF stream never exhausts")
		}
		if t0 < prev {
			t.Fatalf("arrivals out of order: %g after %g", t0, prev)
		}
		if t0 == 10 || t0 == 50 {
			explicit++
		}
		prev = t0
	}
	if explicit != 2 {
		t.Fatalf("saw %d explicit instants in the merged stream, want 2", explicit)
	}

	// Finite stream: explicit only, then +Inf forever.
	s2, err := ParseFaultSpec("host:0@5,link:0-1@3")
	if err != nil {
		t.Fatal(err)
	}
	a2 := s2.Arrivals(2)
	if got := a2.Next(); got != 3 {
		t.Fatalf("first arrival %g, want 3", got)
	}
	if got := a2.Next(); got != 5 {
		t.Fatalf("second arrival %g, want 5", got)
	}
	if !math.IsInf(a2.Next(), 1) || !math.IsInf(a2.Next(), 1) {
		t.Fatal("exhausted stream must return +Inf")
	}
	if !math.IsInf((*FaultSpec)(nil).Arrivals(4).Next(), 1) {
		t.Fatal("nil spec has no arrivals")
	}
}

func TestInjectFailStopsIntoKernel(t *testing.T) {
	k := simx.New()
	names := []string{"h0", "h1", "h2", "h3"}
	l := k.AddLink("l", 1e8, 1e-4)
	for _, n := range names {
		k.AddHost(n, 1e9, 1)
	}
	for _, a := range names {
		for _, b := range names {
			if a != b {
				k.AddRoute(a, b, []*simx.Link{l})
			}
		}
	}
	s, err := ParseFaultSpec("host:1@2,hosts:50%@4,cpu:0.5@1-3")
	if err != nil {
		t.Fatal(err)
	}
	done := make([]bool, len(names))
	for i, n := range names {
		i := i
		k.Spawn(n, k.Host(n), func(p *simx.Proc) {
			defer func() { _ = simx.FailureOf(recover()) }()
			p.Execute(10e9) // 10 s nominal
			done[i] = true
		})
	}
	if err := s.Inject(k, names); err != nil {
		t.Fatal(err)
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !k.Host("h1").Off() {
		t.Fatal("host:1 clause did not fail h1")
	}
	off := 0
	for _, n := range names {
		if k.Host(n).Off() {
			off++
		}
	}
	// host:1 plus 50% of 4 = 2 picks (which may include h1 again).
	if off < 2 || off > 3 {
		t.Fatalf("%d hosts off, want 2 or 3", off)
	}
	survivors := 0
	for _, d := range done {
		if d {
			survivors++
		}
	}
	if survivors != len(names)-off {
		t.Fatalf("%d survivors with %d hosts off", survivors, off)
	}
	// Survivors: 1 s full + 2 s half + rest full = 10 Gflop at t=11.
	if math.Abs(end-11.0) > 1e-9 {
		t.Fatalf("makespan = %g, want 11 (cpu window adds 1 s)", end)
	}
}

func TestInjectErrors(t *testing.T) {
	k := simx.New()
	k.AddHost("h0", 1e9, 1)
	if err := (&FaultSpec{HostFails: []HostFault{{Index: 5, At: 1}}}).InjectFailStops(k, []string{"h0"}); err == nil {
		t.Fatal("out-of-range index must error")
	}
	if err := (&FaultSpec{HostFails: []HostFault{{Index: -1, Name: "nope", At: 1}}}).InjectFailStops(k, []string{"h0"}); err == nil {
		t.Fatal("unknown host name must error")
	}
	if err := (&FaultSpec{HostFails: []HostFault{{Index: 0, At: 1}}}).InjectFailStops(k, []string{"ghost"}); err == nil {
		t.Fatal("deployment host missing from platform must error")
	}
	if err := (*FaultSpec)(nil).InjectFailStops(k, nil); err != nil {
		t.Fatal("nil spec injects nothing, successfully")
	}
}

func TestMTBFInjectionKillsHostsOverTime(t *testing.T) {
	run := func() (float64, int) {
		k := simx.New()
		names := []string{"h0", "h1", "h2", "h3"}
		for _, n := range names {
			k.AddHost(n, 1e9, 1)
		}
		for _, n := range names {
			k.Spawn(n, k.Host(n), func(p *simx.Proc) {
				defer func() { _ = simx.FailureOf(recover()) }()
				p.Execute(100e9) // 100 s: long enough for mtbf:10 to bite
			})
		}
		s, err := ParseFaultSpec("mtbf:10,seed:9")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(k, names); err != nil {
			t.Fatal(err)
		}
		end, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		off := 0
		for _, n := range names {
			if k.Host(n).Off() {
				off++
			}
		}
		return end, off
	}
	e1, o1 := run()
	e2, o2 := run()
	if e1 != e2 || o1 != o2 {
		t.Fatalf("mtbf injection not deterministic: (%g, %d) vs (%g, %d)", e1, o1, e2, o2)
	}
	if o1 == 0 {
		t.Fatal("mtbf:10 over a 100 s run killed nothing")
	}
	if e1 > 100 {
		t.Fatalf("makespan %g exceeds the fault-free 100 s (timers must not extend it)", e1)
	}
}

func TestFailStopsPredicate(t *testing.T) {
	cases := []struct {
		spec string
		want bool
	}{
		{"bw:0.5@1-2", false},
		{"cpu:0.5@1-2", false},
		{"host:0@1", true},
		{"hosts:10%@1", true},
		{"link:0-1@1", true},
		{"mtbf:100", true},
	}
	for _, c := range cases {
		s, err := ParseFaultSpec(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if s.FailStops() != c.want {
			t.Errorf("FailStops(%q) = %v, want %v", c.spec, s.FailStops(), c.want)
		}
	}
	if (*FaultSpec)(nil).FailStops() {
		t.Fatal("nil spec has no fail-stops")
	}
}
