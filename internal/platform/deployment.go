package platform

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
)

// Deployment maps application processes onto platform hosts, mirroring the
// SimGrid deployment files of Figure 6: each process entry names the host it
// runs on, the function it executes (the paper uses the process id, "p0",
// "p1", ...) and optional arguments such as the trace file to replay.
type Deployment struct {
	XMLName   xml.Name     `xml:"platform"`
	Version   string       `xml:"version,attr"`
	Processes []ProcessDef `xml:"process"`
}

// ProcessDef is one process placement.
type ProcessDef struct {
	Host      string     `xml:"host,attr"`
	Function  string     `xml:"function,attr"`
	Arguments []Argument `xml:"argument"`
}

// Argument is a positional argument passed to the process function.
type Argument struct {
	Value string `xml:"value,attr"`
}

// Args returns the argument values of a process in order.
func (p *ProcessDef) Args() []string {
	out := make([]string, len(p.Arguments))
	for i, a := range p.Arguments {
		out[i] = a.Value
	}
	return out
}

// ParseDeployment reads a deployment description from r.
func ParseDeployment(r io.Reader) (*Deployment, error) {
	var d Deployment
	if err := xml.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("platform: deployment parse: %w", err)
	}
	for i, p := range d.Processes {
		if p.Host == "" {
			return nil, fmt.Errorf("platform: deployment process %d has no host", i)
		}
		if p.Function == "" {
			return nil, fmt.Errorf("platform: deployment process %d has no function", i)
		}
	}
	return &d, nil
}

// ParseDeploymentFile reads a deployment description from a file.
func ParseDeploymentFile(path string) (*Deployment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseDeployment(f)
}

// Marshal renders the deployment back to XML.
func (d *Deployment) Marshal(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "<!DOCTYPE platform SYSTEM \"simgrid.dtd\">\n"); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// RoundRobin builds a deployment of n processes named p0..p(n-1) over the
// given hosts, one process per host, wrapping around when n exceeds the host
// count (the paper's Folding mode). With fold > 1, fold consecutive ranks
// share each host before moving to the next (F-fold in Table 2).
func RoundRobin(hosts []string, n, fold int) (*Deployment, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("platform: RoundRobin needs at least one host")
	}
	if fold < 1 {
		fold = 1
	}
	d := &Deployment{Version: "3"}
	for i := 0; i < n; i++ {
		h := hosts[(i/fold)%len(hosts)]
		d.Processes = append(d.Processes, ProcessDef{
			Host:     h,
			Function: fmt.Sprintf("p%d", i),
		})
	}
	return d, nil
}

// Scatter builds a deployment of n processes spread block-wise across
// several host groups (the sites of the Scattering mode): ranks are split as
// evenly as possible between groups, then folded within each group.
func Scatter(groups [][]string, n, fold int) (*Deployment, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("platform: Scatter needs at least one group")
	}
	if fold < 1 {
		fold = 1
	}
	d := &Deployment{Version: "3"}
	g := len(groups)
	base, extra := n/g, n%g
	rank := 0
	for gi, hosts := range groups {
		cnt := base
		if gi < extra {
			cnt++
		}
		if cnt > 0 && len(hosts) == 0 {
			return nil, fmt.Errorf("platform: Scatter group %d is empty", gi)
		}
		for i := 0; i < cnt; i++ {
			h := hosts[(i/fold)%len(hosts)]
			d.Processes = append(d.Processes, ProcessDef{
				Host:     h,
				Function: fmt.Sprintf("p%d", rank),
			})
			rank++
		}
	}
	return d, nil
}

// WithTraceArgs returns a copy of the deployment where process i carries the
// argument files[i] (its trace file), as in the per-process trace replay
// configuration of Section 5.
func (d *Deployment) WithTraceArgs(files []string) (*Deployment, error) {
	if len(files) != len(d.Processes) {
		return nil, fmt.Errorf("platform: %d trace files for %d processes",
			len(files), len(d.Processes))
	}
	out := &Deployment{Version: d.Version}
	for i, p := range d.Processes {
		np := ProcessDef{Host: p.Host, Function: p.Function}
		np.Arguments = append(np.Arguments, p.Arguments...)
		np.Arguments = append(np.Arguments, Argument{Value: files[i]})
		out.Processes = append(out.Processes, np)
	}
	return out, nil
}
