package platform

import (
	"fmt"
	"strconv"
	"strings"

	"tireplay/internal/simx"
)

// The topology zoo: parameterized generators for the interconnects HPC
// procurement what-ifs actually compare — k-ary fat-trees, 2D/3D tori and
// dragonflies — built directly on the computed routing layer. No generator
// materializes a per-pair route table: the fat-tree is a zone hierarchy
// (zones.go) and the torus and dragonfly install their own computed routers
// that walk the coordinate/minimal path on demand, so a thousand-host
// topology costs O(hosts) route state. Every generator has a closed-form
// hop count (Hops) the property tests pin composed routes against.
//
// Sharing policies follow the hardware: switch crossbars and fabrics are
// fatpipe links (non-blocking: each flow may use the full rate, flows do
// not contend), while host links and inter-switch trunks are shared links
// whose bandwidth the max-min model divides — a trunk aggregating p
// parallel cables gets p times the base bandwidth.

// TopoSpec describes one generated topology. The zero value is invalid;
// construct specs via ParseTopo ("fat-tree:4", "torus:4x4x2",
// "dragonfly:2x4x2") or fill the fields and call Validate.
type TopoSpec struct {
	// Kind is "fat-tree", "torus" or "dragonfly".
	Kind string
	// K is the fat-tree arity: K pods of (K/2)² hosts, K³/4 hosts total.
	K int
	// Dims are the torus dimensions (2 or 3 axes, each ≥ 2), wrap-around.
	Dims []int
	// Groups/Routers/HostsPer size the dragonfly: Groups all-to-all
	// connected groups of Routers all-to-all connected routers carrying
	// HostsPer hosts each.
	Groups, Routers, HostsPer int

	// Power is the per-core flop/s of every host (0 = the bordereau
	// calibration), Cores the per-host core count (0 = 1).
	Power float64
	Cores int
	// BW and Lat are the base link bandwidth and latency every generated
	// link derives from (0 = 1 GbE / the calibrated cluster latency).
	BW  float64
	Lat float64
}

// ParseTopo parses a topology spec: kind ":" parameters, with dimensions
// separated by "x" ("fat-tree:4", "torus:4x4x2", "dragonfly:2x4x2").
func ParseTopo(s string) (TopoSpec, error) {
	var t TopoSpec
	kind, params, ok := strings.Cut(strings.TrimSpace(s), ":")
	if !ok {
		return t, fmt.Errorf("platform: topo spec %q: want kind:params", s)
	}
	t.Kind = strings.ToLower(strings.TrimSpace(kind))
	var dims []int
	for _, p := range strings.Split(params, "x") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return t, fmt.Errorf("platform: topo spec %q: bad parameter %q", s, p)
		}
		dims = append(dims, v)
	}
	switch t.Kind {
	case "fat-tree", "fattree":
		t.Kind = "fat-tree"
		if len(dims) != 1 {
			return t, fmt.Errorf("platform: topo spec %q: fat-tree takes one arity parameter", s)
		}
		t.K = dims[0]
	case "torus":
		t.Dims = dims
	case "dragonfly":
		if len(dims) != 3 {
			return t, fmt.Errorf("platform: topo spec %q: dragonfly takes groups x routers x hosts", s)
		}
		t.Groups, t.Routers, t.HostsPer = dims[0], dims[1], dims[2]
	default:
		return t, fmt.Errorf("platform: unknown topology kind %q (want fat-tree, torus or dragonfly)", kind)
	}
	return t, t.Validate()
}

// String renders the spec back to its ParseTopo form.
func (t TopoSpec) String() string {
	switch t.Kind {
	case "fat-tree":
		return fmt.Sprintf("fat-tree:%d", t.K)
	case "torus":
		parts := make([]string, len(t.Dims))
		for i, d := range t.Dims {
			parts[i] = strconv.Itoa(d)
		}
		return "torus:" + strings.Join(parts, "x")
	case "dragonfly":
		return fmt.Sprintf("dragonfly:%dx%dx%d", t.Groups, t.Routers, t.HostsPer)
	}
	return "topo:?"
}

// MarshalText renders the spec in ParseTopo syntax (sweep JSON reports).
func (t TopoSpec) MarshalText() ([]byte, error) {
	if t.Kind == "" {
		return []byte{}, nil
	}
	return []byte(t.String()), nil
}

// UnmarshalText parses the ParseTopo syntax; empty means no topology.
func (t *TopoSpec) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*t = TopoSpec{}
		return nil
	}
	spec, err := ParseTopo(string(b))
	if err != nil {
		return err
	}
	*t = spec
	return nil
}

// Validate checks the structural parameters.
func (t TopoSpec) Validate() error {
	switch t.Kind {
	case "fat-tree":
		if t.K < 2 || t.K%2 != 0 {
			return fmt.Errorf("platform: fat-tree arity %d must be even and >= 2", t.K)
		}
	case "torus":
		if len(t.Dims) < 2 || len(t.Dims) > 3 {
			return fmt.Errorf("platform: torus wants 2 or 3 dimensions, got %d", len(t.Dims))
		}
		for _, d := range t.Dims {
			if d < 2 {
				return fmt.Errorf("platform: torus dimension %d must be >= 2", d)
			}
		}
	case "dragonfly":
		if t.Groups < 2 || t.Routers < 1 || t.HostsPer < 1 {
			return fmt.Errorf("platform: dragonfly %dx%dx%d needs >= 2 groups and >= 1 router/host per level",
				t.Groups, t.Routers, t.HostsPer)
		}
	default:
		return fmt.Errorf("platform: unknown topology kind %q", t.Kind)
	}
	return nil
}

// HostCount returns the number of hosts the spec generates.
func (t TopoSpec) HostCount() int {
	switch t.Kind {
	case "fat-tree":
		return t.K * t.K * t.K / 4
	case "torus":
		n := 1
		for _, d := range t.Dims {
			n *= d
		}
		return n
	case "dragonfly":
		return t.Groups * t.Routers * t.HostsPer
	}
	return 0
}

// HostNames lists the generated host names in index order, without building
// the platform — the sweep engine derives deployments from it.
func (t TopoSpec) HostNames() []string {
	n := t.HostCount()
	names := make([]string, n)
	prefix := t.hostPrefix()
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return names
}

func (t TopoSpec) hostPrefix() string {
	switch t.Kind {
	case "fat-tree":
		return "ft-"
	case "torus":
		return "torus-"
	case "dragonfly":
		return "dfly-"
	}
	return "host-"
}

// Scaled returns a copy with the what-if factors applied (0 and 1 are
// identity), resolving unset quantities to their defaults first so a scaled
// spec is self-contained — the sweep axes compose with the topology axis
// exactly as they do with a description's Scaled.
func (t TopoSpec) Scaled(s Scale) TopoSpec {
	out := t.withDefaults()
	if s.Latency != 0 && s.Latency != 1 {
		out.Lat *= s.Latency
	}
	if s.Bandwidth != 0 && s.Bandwidth != 1 {
		out.BW *= s.Bandwidth
	}
	if s.Power != 0 && s.Power != 1 {
		out.Power *= s.Power
	}
	return out
}

func (t TopoSpec) withDefaults() TopoSpec {
	if t.Power == 0 {
		t.Power = BordereauPower
	}
	if t.Cores < 1 {
		t.Cores = 1
	}
	if t.BW == 0 {
		t.BW = GigaEthernetBw
	}
	if t.Lat == 0 {
		t.Lat = ClusterLatency
	}
	return t
}

// Hops returns the closed-form link count of the route between host indices
// i and j (host links included); the composed route's latency is exactly
// Hops(i,j) * Lat. Hops(i,i) is 0 (loopback).
func (t TopoSpec) Hops(i, j int) int {
	if i == j {
		return 0
	}
	switch t.Kind {
	case "fat-tree":
		half := t.K / 2
		edgeI, edgeJ := i/half, j/half
		if edgeI == edgeJ {
			return 3 // host, edge crossbar, host
		}
		if edgeI/half == edgeJ/half {
			return 7 // + edge trunks and the pod fabric
		}
		return 11 // + pod trunks and the core fabric
	case "torus":
		hops := 2 // the two host links
		ci, cj := t.torusCoords(i), t.torusCoords(j)
		for d, s := range t.Dims {
			delta := cj[d] - ci[d]
			if delta < 0 {
				delta += s
			}
			if s-delta < delta {
				delta = s - delta
			}
			hops += delta
		}
		return hops
	case "dragonfly":
		gi, ri := i/(t.Routers*t.HostsPer), (i/t.HostsPer)%t.Routers
		gj, rj := j/(t.Routers*t.HostsPer), (j/t.HostsPer)%t.Routers
		if gi == gj {
			if ri == rj {
				return 3 // host, router fabric, host
			}
			return 5 // + the local link and the peer fabric
		}
		hops := 5 // hosts, both router fabrics, the global link
		if ri != gj%t.Routers {
			hops += 2 // local hop to the gateway + its fabric
		}
		if rj != gi%t.Routers {
			hops += 2
		}
		return hops
	}
	return 0
}

func (t TopoSpec) torusCoords(i int) []int { return mixedRadixCoords(i, t.Dims) }

// mixedRadixCoords decodes a host index into per-dimension torus
// coordinates, first dimension fastest — the one layout both the hop-count
// oracle and the router must agree on.
func mixedRadixCoords(i int, dims []int) []int {
	c := make([]int, len(dims))
	for d, s := range dims {
		c[d] = i % s
		i /= s
	}
	return c
}

// Build instantiates the topology on a fresh kernel with computed routing.
func (t TopoSpec) Build() (*Build, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t = t.withDefaults()
	switch t.Kind {
	case "fat-tree":
		return t.buildFatTree()
	case "torus":
		return t.buildTorus()
	case "dragonfly":
		return t.buildDragonfly()
	}
	return nil, fmt.Errorf("platform: unknown topology kind %q", t.Kind)
}

// buildFatTree lays a K-ary fat-tree out as a three-level zone hierarchy:
// hosts behind edge-switch zones, edges inside pod zones, pods under the
// core. Crossbars/fabrics are fatpipe links; the trunks between levels are
// shared links aggregating the parallel cables of the real tree (K/2 per
// edge uplink, (K/2)² per pod uplink), which keeps full bisection bandwidth
// while the host links bound any single flow at the base rate.
func (t TopoSpec) buildFatTree() (*Build, error) {
	b := newBuild(RoutingComputed)
	k := b.Kernel
	half := t.K / 2
	hostsPerEdge, edgesPerPod := half, half
	core := k.AddLink("ft_core", t.BW*float64(half*half), t.Lat)
	core.Sharing = simx.SharingFatpipe
	root := b.zones.NewZone("ft", nil, core)
	idx := 0
	for p := 0; p < t.K; p++ {
		podFab := k.AddLink(fmt.Sprintf("ft_pod%d_fabric", p), t.BW*float64(half), t.Lat)
		podFab.Sharing = simx.SharingFatpipe
		podTrunk := k.AddLink(fmt.Sprintf("ft_pod%d_trunk", p), t.BW*float64(half*half), t.Lat)
		pod := b.zones.NewZone(fmt.Sprintf("ft_pod%d", p), root, podFab, podTrunk)
		for e := 0; e < edgesPerPod; e++ {
			xbar := k.AddLink(fmt.Sprintf("ft_edge%d_%d_xbar", p, e), t.BW, t.Lat)
			xbar.Sharing = simx.SharingFatpipe
			trunk := k.AddLink(fmt.Sprintf("ft_edge%d_%d_trunk", p, e), t.BW*float64(half), t.Lat)
			edge := b.zones.NewZone(fmt.Sprintf("ft_edge%d_%d", p, e), pod, xbar, trunk)
			for hI := 0; hI < hostsPerEdge; hI++ {
				name := fmt.Sprintf("%s%d", t.hostPrefix(), idx)
				h := k.AddHost(name, t.Power, t.Cores)
				hl := k.AddLink(fmt.Sprintf("ft_host%d", idx), t.BW, t.Lat)
				b.zones.Attach(h, edge, hl)
				b.HostNames = append(b.HostNames, name)
				idx++
			}
		}
	}
	b.byCluster["ft"] = b.HostNames
	return b, nil
}

// torusRouter composes dimension-ordered wrap-around routes on demand: the
// route climbs each dimension in turn along the shorter direction (forward
// on ties). Route state is the link arrays — O(hosts·dims) — and the kernel
// caches each composed pair on first use.
type torusRouter struct {
	dims     []int
	hostLink []*simx.Link
	// axis[d][i] is host i's +1-direction link in dimension d.
	axis [][]*simx.Link
}

func (t *torusRouter) coords(i int) []int { return mixedRadixCoords(i, t.dims) }

func (t *torusRouter) index(c []int) int {
	i, mul := 0, 1
	for d, s := range t.dims {
		i += c[d] * mul
		mul *= s
	}
	return i
}

func (t *torusRouter) Route(src, dst *simx.Host) *simx.Route {
	si, di := src.ID(), dst.ID()
	if si >= len(t.hostLink) || di >= len(t.hostLink) {
		return nil
	}
	links := []*simx.Link{t.hostLink[si]}
	cur := t.coords(si)
	want := t.coords(di)
	for d, s := range t.dims {
		delta := want[d] - cur[d]
		if delta < 0 {
			delta += s
		}
		if back := s - delta; delta <= back {
			for step := 0; step < delta; step++ {
				links = append(links, t.axis[d][t.index(cur)])
				cur[d] = (cur[d] + 1) % s
			}
		} else {
			for step := 0; step < back; step++ {
				cur[d] = (cur[d] - 1 + s) % s
				links = append(links, t.axis[d][t.index(cur)])
			}
		}
	}
	links = append(links, t.hostLink[di])
	return simx.NewRoute(links)
}

// buildTorus creates the grid hosts, one host link each, and the per-axis
// neighbor links, then installs the dimension-ordered computed router.
func (t TopoSpec) buildTorus() (*Build, error) {
	b := &Build{Kernel: simx.New(), byCluster: make(map[string][]string), routing: RoutingComputed}
	k := b.Kernel
	n := t.HostCount()
	tr := &torusRouter{dims: t.Dims, hostLink: make([]*simx.Link, n),
		axis: make([][]*simx.Link, len(t.Dims))}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", t.hostPrefix(), i)
		k.AddHost(name, t.Power, t.Cores)
		tr.hostLink[i] = k.AddLink(fmt.Sprintf("torus_host%d", i), t.BW, t.Lat)
		b.HostNames = append(b.HostNames, name)
	}
	for d := range t.Dims {
		tr.axis[d] = make([]*simx.Link, n)
		for i := 0; i < n; i++ {
			tr.axis[d][i] = k.AddLink(fmt.Sprintf("torus_d%d_%d", d, i), t.BW, t.Lat)
		}
	}
	k.SetRouter(tr)
	b.byCluster["torus"] = b.HostNames
	return b, nil
}

// dragonflyRouter composes minimal routes on demand: host link, source
// router fabric, at most one local hop to the gateway router, the global
// link between the groups, at most one local hop from the peer gateway, the
// destination fabric and host link. The gateway of group a toward group b
// is router b mod R, so global traffic spreads deterministically over the
// routers.
type dragonflyRouter struct {
	groups, routers, hostsPer int
	hostLink                  []*simx.Link
	fabric                    [][]*simx.Link // [group][router]
	local                     [][]*simx.Link // [group][pair index a<b]
	global                    []*simx.Link   // [pair index a<b]
}

// pairIndex maps an unordered pair (a<b) of m elements to a dense index.
func pairIndex(a, b, m int) int {
	if a > b {
		a, b = b, a
	}
	// Index into the upper triangle enumerated row by row.
	return a*(2*m-a-1)/2 + (b - a - 1)
}

func (d *dragonflyRouter) Route(src, dst *simx.Host) *simx.Route {
	si, di := src.ID(), dst.ID()
	if si >= len(d.hostLink) || di >= len(d.hostLink) {
		return nil
	}
	perGroup := d.routers * d.hostsPer
	gs, rs := si/perGroup, (si/d.hostsPer)%d.routers
	gd, rd := di/perGroup, (di/d.hostsPer)%d.routers
	links := []*simx.Link{d.hostLink[si], d.fabric[gs][rs]}
	switch {
	case gs == gd && rs == rd:
		// One crossbar joins the two hosts.
	case gs == gd:
		links = append(links, d.local[gs][pairIndex(rs, rd, d.routers)], d.fabric[gd][rd])
	default:
		gwS, gwD := gd%d.routers, gs%d.routers
		if rs != gwS {
			links = append(links, d.local[gs][pairIndex(rs, gwS, d.routers)], d.fabric[gs][gwS])
		}
		links = append(links, d.global[pairIndex(gs, gd, d.groups)])
		if rd != gwD {
			links = append(links, d.fabric[gd][gwD], d.local[gd][pairIndex(gwD, rd, d.routers)])
		}
		links = append(links, d.fabric[gd][rd])
	}
	links = append(links, d.hostLink[di])
	return simx.NewRoute(links)
}

// buildDragonfly creates the group/router/host levels and installs the
// minimal-routing computed router. Router crossbars are fatpipes; local and
// global cables are shared links.
func (t TopoSpec) buildDragonfly() (*Build, error) {
	b := &Build{Kernel: simx.New(), byCluster: make(map[string][]string), routing: RoutingComputed}
	k := b.Kernel
	n := t.HostCount()
	dr := &dragonflyRouter{groups: t.Groups, routers: t.Routers, hostsPer: t.HostsPer,
		hostLink: make([]*simx.Link, n)}
	dr.fabric = make([][]*simx.Link, t.Groups)
	dr.local = make([][]*simx.Link, t.Groups)
	for g := 0; g < t.Groups; g++ {
		dr.fabric[g] = make([]*simx.Link, t.Routers)
		for r := 0; r < t.Routers; r++ {
			fab := k.AddLink(fmt.Sprintf("dfly_g%d_r%d_xbar", g, r), t.BW, t.Lat)
			fab.Sharing = simx.SharingFatpipe
			dr.fabric[g][r] = fab
		}
		dr.local[g] = make([]*simx.Link, t.Routers*(t.Routers-1)/2)
		for a := 0; a < t.Routers; a++ {
			for c := a + 1; c < t.Routers; c++ {
				dr.local[g][pairIndex(a, c, t.Routers)] =
					k.AddLink(fmt.Sprintf("dfly_g%d_local_%d_%d", g, a, c), t.BW, t.Lat)
			}
		}
	}
	dr.global = make([]*simx.Link, t.Groups*(t.Groups-1)/2)
	for a := 0; a < t.Groups; a++ {
		for c := a + 1; c < t.Groups; c++ {
			dr.global[pairIndex(a, c, t.Groups)] =
				k.AddLink(fmt.Sprintf("dfly_global_%d_%d", a, c), t.BW, t.Lat)
		}
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", t.hostPrefix(), i)
		k.AddHost(name, t.Power, t.Cores)
		dr.hostLink[i] = k.AddLink(fmt.Sprintf("dfly_host%d", i), t.BW, t.Lat)
		b.HostNames = append(b.HostNames, name)
	}
	k.SetRouter(dr)
	b.byCluster["dfly"] = b.HostNames
	return b, nil
}
