package platform

import (
	"fmt"
	"strconv"
	"strings"
)

// Built-in platform specs name the generator platforms a service can
// instantiate without an uploaded XML description, in a canonical string
// form suitable as a cache key: two specs naming the same platform
// canonicalize to the same string, so a warm-platform cache keyed on the
// canonical spec never builds one platform twice.
//
// Grammar: "bordereau:<nodes>[x<cores>]" — the paper's bordereau cluster
// prefix, the base platform of the acquisition experiments. Generated
// topologies (fat-tree/torus/dragonfly) are not base-platform specs: they
// are a sweep axis (TopoSpec), and canonicalize through TopoSpec.String.

// BuiltinSpec is a parsed built-in platform spec.
type BuiltinSpec struct {
	// Cluster is the generator name; currently always "bordereau".
	Cluster string
	// Nodes and Cores size the cluster.
	Nodes, Cores int
}

// ParseBuiltin parses a built-in platform spec. The empty string is not a
// spec; callers pick their own default.
func ParseBuiltin(spec string) (*BuiltinSpec, error) {
	s := strings.TrimSpace(spec)
	name, rest, ok := strings.Cut(s, ":")
	if !ok || name != "bordereau" {
		return nil, fmt.Errorf("platform: builtin spec %q: want \"bordereau:<nodes>[x<cores>]\"", spec)
	}
	nodes, cores, err := parseNodesCores(rest, 1)
	if err != nil {
		return nil, fmt.Errorf("platform: builtin spec %q: %w", spec, err)
	}
	if nodes > BordereauNodes {
		return nil, fmt.Errorf("platform: builtin spec %q: bordereau has %d nodes", spec, BordereauNodes)
	}
	return &BuiltinSpec{Cluster: name, Nodes: nodes, Cores: cores}, nil
}

// parseNodesCores parses "<nodes>[x<cores>]" with a default core count.
func parseNodesCores(s string, defCores int) (int, int, error) {
	nodesStr, coresStr, hasCores := strings.Cut(s, "x")
	nodes, err := strconv.Atoi(nodesStr)
	if err != nil || nodes <= 0 {
		return 0, 0, fmt.Errorf("bad node count %q", nodesStr)
	}
	cores := defCores
	if hasCores {
		if cores, err = strconv.Atoi(coresStr); err != nil || cores <= 0 {
			return 0, 0, fmt.Errorf("bad core count %q", coresStr)
		}
	}
	return nodes, cores, nil
}

// String renders the canonical form of the spec, always with an explicit
// core count.
func (b *BuiltinSpec) String() string {
	return fmt.Sprintf("%s:%dx%d", b.Cluster, b.Nodes, b.Cores)
}

// Build returns the platform description of the spec. Descriptions are
// read-only in every consumer (sweeps deep-copy before scaling), so one
// built description can be shared by any number of concurrent replays — the
// property a warm-platform cache relies on.
func (b *BuiltinSpec) Build() (*Platform, error) {
	if b.Cluster != "bordereau" {
		return nil, fmt.Errorf("platform: unknown builtin cluster %q", b.Cluster)
	}
	return BordereauWithCores(b.Nodes, b.Cores), nil
}

// CanonicalBuiltin parses and re-renders a built-in platform spec in one
// step — the canonical cache key of the spec.
func CanonicalBuiltin(spec string) (string, error) {
	b, err := ParseBuiltin(spec)
	if err != nil {
		return "", err
	}
	return b.String(), nil
}
