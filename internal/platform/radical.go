package platform

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRadical expands a SimGrid cluster radical expression into the list of
// host indices it denotes. The syntax is a comma-separated list of single
// indices and inclusive ranges, e.g. "0-3", "0-92", "0,2,4-7".
func ParseRadical(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty radical")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("radical %q: empty element", s)
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(strings.TrimSpace(lo))
			if err != nil {
				return nil, fmt.Errorf("radical %q: bad range start %q", s, lo)
			}
			b, err := strconv.Atoi(strings.TrimSpace(hi))
			if err != nil {
				return nil, fmt.Errorf("radical %q: bad range end %q", s, hi)
			}
			if b < a {
				return nil, fmt.Errorf("radical %q: descending range %d-%d", s, a, b)
			}
			for i := a; i <= b; i++ {
				out = append(out, i)
			}
		} else {
			v, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("radical %q: bad index %q", s, part)
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// FormatRadical renders a contiguous 0-based range "0-(n-1)".
func FormatRadical(n int) string {
	if n <= 0 {
		return ""
	}
	if n == 1 {
		return "0"
	}
	return fmt.Sprintf("0-%d", n-1)
}
