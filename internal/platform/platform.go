// Package platform describes simulated platforms and application deployments
// in the SimGrid XML dialect used by the paper (platform version 3), and
// instantiates them into simulation kernels.
//
// A platform file declares autonomous systems containing compute clusters
// (Figure 5 of the paper), explicit hosts, links and routes; a deployment
// file maps application processes onto hosts and passes them arguments such
// as the per-process trace file names (Figure 6 and Section 5).
package platform

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"

	"tireplay/internal/units"
)

// Platform is the root of a platform description.
type Platform struct {
	XMLName xml.Name `xml:"platform"`
	Version string   `xml:"version,attr"`
	AS      AS       `xml:"AS"`
}

// AS is an autonomous system: a routing domain containing clusters, hosts,
// links, routes and possibly nested systems.
type AS struct {
	ID       string     `xml:"id,attr"`
	Routing  string     `xml:"routing,attr"`
	Clusters []Cluster  `xml:"cluster"`
	Hosts    []HostDef  `xml:"host"`
	Links    []LinkDef  `xml:"link"`
	Routes   []RouteDef `xml:"route"`
	Subs     []AS       `xml:"AS"`
	ASRoutes []ASRoute  `xml:"ASroute"`
}

// Cluster is a homogeneous compute cluster: hosts named
// <prefix><index><suffix> for each index in the radical, each connected by a
// private link (bw, lat) to a backbone (bb_bw, bb_lat) standing for the
// cluster switch fabric.
type Cluster struct {
	ID      string `xml:"id,attr"`
	Prefix  string `xml:"prefix,attr"`
	Suffix  string `xml:"suffix,attr"`
	Radical string `xml:"radical,attr"`
	Power   string `xml:"power,attr"`
	Core    string `xml:"core,attr"`
	BW      string `xml:"bw,attr"`
	Lat     string `xml:"lat,attr"`
	BBBw    string `xml:"bb_bw,attr"`
	BBLat   string `xml:"bb_lat,attr"`
	// SharingPolicy / BBSharingPolicy set the bandwidth sharing of the host
	// links and the backbone: SHARED (default) or FATPIPE.
	SharingPolicy   string `xml:"sharing_policy,attr"`
	BBSharingPolicy string `xml:"bb_sharing_policy,attr"`
}

// HostDef is an explicitly declared host.
type HostDef struct {
	ID    string `xml:"id,attr"`
	Power string `xml:"power,attr"`
	Core  string `xml:"core,attr"`
}

// LinkDef is an explicitly declared link.
type LinkDef struct {
	ID        string `xml:"id,attr"`
	Bandwidth string `xml:"bandwidth,attr"`
	Latency   string `xml:"latency,attr"`
	// SharingPolicy is SHARED (default, max-min contention) or FATPIPE
	// (every flow gets the full bandwidth).
	SharingPolicy string `xml:"sharing_policy,attr"`
}

// RouteDef is an explicit route between two hosts, listing link references.
type RouteDef struct {
	Src   string    `xml:"src,attr"`
	Dst   string    `xml:"dst,attr"`
	Links []LinkRef `xml:"link_ctn"`
	// Symmetrical defaults to YES per the SimGrid DTD.
	Symmetrical string `xml:"symmetrical,attr"`
}

// ASRoute connects two sub-systems (e.g. two clusters) through links; the
// scattering acquisition mode uses it for the wide-area interconnect.
type ASRoute struct {
	Src         string    `xml:"src,attr"`
	Dst         string    `xml:"dst,attr"`
	Links       []LinkRef `xml:"link_ctn"`
	Symmetrical string    `xml:"symmetrical,attr"`
}

// LinkRef references a declared link inside a route.
type LinkRef struct {
	ID string `xml:"id,attr"`
}

// Parse reads a platform description from r.
func Parse(r io.Reader) (*Platform, error) {
	var p Platform
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("platform: parse: %w", err)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ParseFile reads a platform description from a file.
func ParseFile(path string) (*Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

func (p *Platform) validate() error {
	return p.AS.validate()
}

func (a *AS) validate() error {
	for _, c := range a.Clusters {
		if c.ID == "" {
			return fmt.Errorf("platform: cluster without id in AS %q", a.ID)
		}
		if _, err := ParseRadical(c.Radical); err != nil {
			return fmt.Errorf("platform: cluster %q: %w", c.ID, err)
		}
		for _, attr := range []struct{ name, v string }{
			{"power", c.Power}, {"bw", c.BW}, {"lat", c.Lat},
		} {
			if attr.v == "" {
				return fmt.Errorf("platform: cluster %q: missing %s", c.ID, attr.name)
			}
			if _, err := units.ParseQuantity(attr.v); err != nil {
				return fmt.Errorf("platform: cluster %q: bad %s: %w", c.ID, attr.name, err)
			}
		}
	}
	for _, h := range a.Hosts {
		if h.ID == "" || h.Power == "" {
			return fmt.Errorf("platform: host needs id and power in AS %q", a.ID)
		}
	}
	for _, l := range a.Links {
		if l.ID == "" || l.Bandwidth == "" || l.Latency == "" {
			return fmt.Errorf("platform: link needs id, bandwidth and latency in AS %q", a.ID)
		}
	}
	for i := range a.Subs {
		if err := a.Subs[i].validate(); err != nil {
			return err
		}
	}
	return nil
}

// Marshal renders the platform back to XML (with the SimGrid doctype), the
// inverse of Parse. Calibration tools use it to emit instantiated platforms.
func (p *Platform) Marshal(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "<!DOCTYPE platform SYSTEM \"simgrid.dtd\">\n"); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(p); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}
