package platform

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"tireplay/internal/simx"
)

// FaultSpec is a parsed availability profile: the fail-stop and degradation
// clauses injected into a simulation. The textual mini-language (one spec is
// a comma-separated clause list) is shared by the replay and sweep command
// lines:
//
//	host:3@12.5          fail-stop the 4th deployed host at t=12.5s
//	host:c-5.me@12.5     the same, by platform host name
//	hosts:25%@60         fail-stop 25% of the deployed hosts at t=60
//	                     (seeded pseudo-random pick, deterministic)
//	link:0-3@5           fail every link of the route between the 1st and
//	                     4th deployed hosts at t=5
//	link:a>b@5           the same route fail-stop, by host names
//	bw:0.5@10-20         halve every link bandwidth over [10, 20)
//	cpu:0.25@30-45       quarter every host speed over [30, 45)
//	mtbf:3600            exponential random host fail-stops with a mean
//	                     time between failures of 3600s
//	seed:7               seed of the pseudo-random choices (default 1)
//
// "none" (or an empty string) parses to a nil spec: the fault-free run.
// Host and link indices refer to the deployment's host list in rank order,
// so "host:0" kills rank 0's host whatever the platform calls it.
type FaultSpec struct {
	HostFails []HostFault
	PctFails  []PctFault
	LinkFails []LinkFault
	Degrades  []Degradation
	MTBF      float64 // mean time between random host failures; 0 = none
	Seed      uint64  // pseudo-random seed; Parse defaults it to 1
}

// HostFault is one scheduled host fail-stop. Either Index (into the
// deployment host list) or Name addresses the host; Index is -1 when Name
// is used.
type HostFault struct {
	Index int
	Name  string
	At    float64
}

// PctFault fail-stops a deterministic pseudo-random Pct% of the deployed
// hosts at time At.
type PctFault struct {
	Pct float64
	At  float64
}

// LinkFault fail-stops every link of the route between two hosts, addressed
// like HostFault (indices are -1 when the names are set).
type LinkFault struct {
	SrcIndex, DstIndex int
	Src, Dst           string
	At                 float64
}

// Degradation scales every link bandwidth (Kind "bw") or every host speed
// (Kind "cpu") by Factor over the window [From, To).
type Degradation struct {
	Kind   string
	Factor float64
	From   float64
	To     float64
}

// ParseFaultSpec parses the fault mini-language. It returns (nil, nil) for
// an empty spec or the literal "none".
func ParseFaultSpec(text string) (*FaultSpec, error) {
	text = strings.TrimSpace(text)
	if text == "" || strings.EqualFold(text, "none") {
		return nil, nil
	}
	s := &FaultSpec{Seed: 1}
	for _, clause := range strings.Split(text, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("platform: fault clause %q: want key:value", clause)
		}
		var err error
		switch key {
		case "host":
			err = s.parseHost(val)
		case "hosts":
			err = s.parsePct(val)
		case "link":
			err = s.parseLink(val)
		case "bw", "cpu":
			err = s.parseDegrade(key, val)
		case "mtbf":
			s.MTBF, err = parsePositive(val, "mtbf")
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("bad seed %q", val)
			}
		default:
			err = fmt.Errorf("unknown clause key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("platform: fault clause %q: %w", clause, err)
		}
	}
	return s, s.Validate()
}

// splitAt separates "value@time" on the LAST '@' (host names may contain
// '@' in principle; times never do).
func splitAt(val string) (string, float64, error) {
	i := strings.LastIndexByte(val, '@')
	if i < 0 {
		return "", 0, fmt.Errorf("missing @time")
	}
	t, err := strconv.ParseFloat(val[i+1:], 64)
	if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
		return "", 0, fmt.Errorf("bad time %q", val[i+1:])
	}
	return val[:i], t, nil
}

func isIndex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func (s *FaultSpec) parseHost(val string) error {
	sel, t, err := splitAt(val)
	if err != nil {
		return err
	}
	hf := HostFault{Index: -1, At: t}
	if isIndex(sel) {
		hf.Index, _ = strconv.Atoi(sel)
	} else if sel != "" {
		hf.Name = sel
	} else {
		return fmt.Errorf("empty host selector")
	}
	s.HostFails = append(s.HostFails, hf)
	return nil
}

func (s *FaultSpec) parsePct(val string) error {
	sel, t, err := splitAt(val)
	if err != nil {
		return err
	}
	sel, ok := strings.CutSuffix(sel, "%")
	if !ok {
		return fmt.Errorf("want <k>%%@time")
	}
	pct, err := strconv.ParseFloat(sel, 64)
	if err != nil || !(pct > 0 && pct <= 100) {
		return fmt.Errorf("bad percentage %q (want 0 < k <= 100)", sel)
	}
	s.PctFails = append(s.PctFails, PctFault{Pct: pct, At: t})
	return nil
}

func (s *FaultSpec) parseLink(val string) error {
	sel, t, err := splitAt(val)
	if err != nil {
		return err
	}
	lf := LinkFault{SrcIndex: -1, DstIndex: -1, At: t}
	// "a>b" addresses hosts by name (names routinely contain '-');
	// "i-j" addresses them by deployment index.
	if a, b, ok := strings.Cut(sel, ">"); ok {
		if a == "" || b == "" {
			return fmt.Errorf("empty endpoint in %q", sel)
		}
		lf.Src, lf.Dst = a, b
	} else if a, b, ok := strings.Cut(sel, "-"); ok && isIndex(a) && isIndex(b) {
		lf.SrcIndex, _ = strconv.Atoi(a)
		lf.DstIndex, _ = strconv.Atoi(b)
	} else {
		return fmt.Errorf("want <i>-<j> (indices) or <src>><dst> (names), got %q", sel)
	}
	s.LinkFails = append(s.LinkFails, lf)
	return nil
}

func (s *FaultSpec) parseDegrade(kind, val string) error {
	i := strings.LastIndexByte(val, '@')
	if i < 0 {
		return fmt.Errorf("missing @window")
	}
	f, err := strconv.ParseFloat(val[:i], 64)
	if err != nil || !(f > 0) || math.IsInf(f, 0) {
		return fmt.Errorf("bad factor %q (want > 0)", val[:i])
	}
	from, toS, ok := strings.Cut(val[i+1:], "-")
	if !ok {
		return fmt.Errorf("want @t1-t2 window")
	}
	t1, err1 := strconv.ParseFloat(from, 64)
	t2, err2 := strconv.ParseFloat(toS, 64)
	if err1 != nil || err2 != nil || math.IsNaN(t1) || math.IsNaN(t2) ||
		math.IsInf(t1, 0) || math.IsInf(t2, 0) || t1 < 0 || t2 <= t1 {
		return fmt.Errorf("bad window %q (want 0 <= t1 < t2)", val[i+1:])
	}
	s.Degrades = append(s.Degrades, Degradation{Kind: kind, Factor: f, From: t1, To: t2})
	return nil
}

func parsePositive(val, what string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || !(f > 0) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("bad %s %q (want > 0)", what, val)
	}
	return f, nil
}

// Validate checks the spec's internal consistency; Parse calls it, manual
// constructors should too.
func (s *FaultSpec) Validate() error {
	if s == nil {
		return nil
	}
	if len(s.HostFails) == 0 && len(s.PctFails) == 0 && len(s.LinkFails) == 0 &&
		len(s.Degrades) == 0 && s.MTBF == 0 {
		return fmt.Errorf("platform: fault spec has no effect (no fail-stop or degradation clause)")
	}
	for _, d := range s.Degrades {
		if d.Kind != "bw" && d.Kind != "cpu" {
			return fmt.Errorf("platform: fault spec: unknown degradation kind %q", d.Kind)
		}
		if !(d.Factor > 0) || !(d.To > d.From) || d.From < 0 {
			return fmt.Errorf("platform: fault spec: bad %s degradation (factor %g, window [%g, %g))",
				d.Kind, d.Factor, d.From, d.To)
		}
	}
	return nil
}

// String renders the spec back into the mini-language, canonically (clause
// order: host, hosts, link, bw/cpu, mtbf, seed; a defaulted seed is
// omitted). A nil spec renders as "none".
func (s *FaultSpec) String() string {
	if s == nil {
		return "none"
	}
	var parts []string
	for _, hf := range s.HostFails {
		sel := hf.Name
		if hf.Index >= 0 {
			sel = strconv.Itoa(hf.Index)
		}
		parts = append(parts, fmt.Sprintf("host:%s@%g", sel, hf.At))
	}
	for _, pf := range s.PctFails {
		parts = append(parts, fmt.Sprintf("hosts:%g%%@%g", pf.Pct, pf.At))
	}
	for _, lf := range s.LinkFails {
		if lf.SrcIndex >= 0 {
			parts = append(parts, fmt.Sprintf("link:%d-%d@%g", lf.SrcIndex, lf.DstIndex, lf.At))
		} else {
			parts = append(parts, fmt.Sprintf("link:%s>%s@%g", lf.Src, lf.Dst, lf.At))
		}
	}
	for _, d := range s.Degrades {
		parts = append(parts, fmt.Sprintf("%s:%g@%g-%g", d.Kind, d.Factor, d.From, d.To))
	}
	if s.MTBF > 0 {
		parts = append(parts, fmt.Sprintf("mtbf:%g", s.MTBF))
	}
	if s.Seed != 1 {
		parts = append(parts, fmt.Sprintf("seed:%d", s.Seed))
	}
	return strings.Join(parts, ",")
}

// MarshalText renders the spec for JSON/text encoders (sweep scenarios embed
// fault specs in their JSON output).
func (s *FaultSpec) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the mini-language in place; "none" yields the zero
// spec (callers wanting nil should use ParseFaultSpec).
func (s *FaultSpec) UnmarshalText(text []byte) error {
	p, err := ParseFaultSpec(string(text))
	if err != nil {
		return err
	}
	if p == nil {
		*s = FaultSpec{Seed: 1}
		return nil
	}
	*s = *p
	return nil
}

// splitmix64 is the deterministic pseudo-random generator behind the seeded
// clauses (hosts:k% picks, mtbf arrivals); hand-rolled so the stream is
// stable across Go releases, unlike math/rand.
type splitmix64 struct{ state uint64 }

func (r *splitmix64) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// float64 returns a uniform draw in [0, 1).
func (r *splitmix64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an exponential draw with the given mean.
func (r *splitmix64) exp(mean float64) float64 {
	return -mean * math.Log(1-r.float64())
}

// intn returns a uniform draw in [0, n). The modulo bias is irrelevant at
// simulation host counts.
func (r *splitmix64) intn(n int) int {
	return int(r.next() % uint64(n))
}

// pctCount is how many hosts a k% clause kills: the rounded share, at least
// one (a positive percentage that rounds to zero still kills something).
func pctCount(n int, pct float64) int {
	c := int(float64(n)*pct/100 + 0.5)
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// pctPick selects count distinct indices out of n with a partial
// Fisher-Yates shuffle driven by rng; the result is in pick order.
func pctPick(n, count int, rng *splitmix64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < count; i++ {
		j := i + rng.intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:count]
}

// resolveHost maps a host-fault selector onto a platform host name.
func resolveHost(index int, name string, hosts []string) (string, error) {
	if index >= 0 {
		if index >= len(hosts) {
			return "", fmt.Errorf("platform: fault host index %d out of range (deployment has %d hosts)", index, len(hosts))
		}
		return hosts[index], nil
	}
	return name, nil
}

// InjectFailStops schedules the spec's fail-stop clauses (host, hosts:k%,
// link, mtbf) into the kernel. hosts is the deployment's host list in rank
// order — the namespace of the spec's indices and the population of the
// percentage and MTBF clauses. Named hosts must exist in the kernel.
func (s *FaultSpec) InjectFailStops(k *simx.Kernel, hosts []string) error {
	if s == nil {
		return nil
	}
	for _, h := range hosts {
		if k.Host(h) == nil {
			return fmt.Errorf("platform: fault injection: deployment host %q not in platform", h)
		}
	}
	for _, hf := range s.HostFails {
		name, err := resolveHost(hf.Index, hf.Name, hosts)
		if err != nil {
			return err
		}
		if k.Host(name) == nil {
			return fmt.Errorf("platform: fault injection: unknown host %q", name)
		}
		k.FailHostAt(name, hf.At)
	}
	rng := &splitmix64{state: s.Seed}
	for _, pf := range s.PctFails {
		if len(hosts) == 0 {
			return fmt.Errorf("platform: hosts:%% fault with an empty deployment")
		}
		for _, i := range pctPick(len(hosts), pctCount(len(hosts), pf.Pct), rng) {
			k.FailHostAt(hosts[i], pf.At)
		}
	}
	for _, lf := range s.LinkFails {
		src, err := resolveHost(lf.SrcIndex, lf.Src, hosts)
		if err != nil {
			return err
		}
		dst, err := resolveHost(lf.DstIndex, lf.Dst, hosts)
		if err != nil {
			return err
		}
		if k.Host(src) == nil || k.Host(dst) == nil {
			return fmt.Errorf("platform: fault injection: unknown route endpoint %q or %q", src, dst)
		}
		k.FailRouteAt(src, dst, lf.At)
	}
	if s.MTBF > 0 {
		if len(hosts) == 0 {
			return fmt.Errorf("platform: mtbf fault with an empty deployment")
		}
		// Lazy recursive chain: each arrival fails one random deployed host
		// and schedules the next draw, so the infinite stream costs one
		// pending timer. The kernel stops popping timers once no process
		// can observe them.
		t := rng.exp(s.MTBF)
		var arm func(t float64)
		arm = func(t float64) {
			k.At(t, func() {
				k.FailHostAt(hosts[rng.intn(len(hosts))], t)
				arm(t + rng.exp(s.MTBF))
			})
		}
		arm(t)
	}
	return nil
}

// InjectDegradations schedules the spec's bw/cpu windows into the kernel.
// The checkpoint/restart policy injects only these and consumes the
// fail-stop clauses analytically (see replay.Ckpt).
func (s *FaultSpec) InjectDegradations(k *simx.Kernel) {
	if s == nil {
		return
	}
	for _, d := range s.Degrades {
		if d.Kind == "bw" {
			k.DegradeAllLinksAt(d.Factor, d.From, d.To)
		} else {
			k.DegradeAllHostsAt(d.Factor, d.From, d.To)
		}
	}
}

// Inject schedules every clause of the spec — fail-stops and degradations —
// into the kernel (the abort recovery policy).
func (s *FaultSpec) Inject(k *simx.Kernel, hosts []string) error {
	s.InjectDegradations(k)
	return s.InjectFailStops(k, hosts)
}

// FailStops reports whether the spec contains any fail-stop clause (as
// opposed to degradations only).
func (s *FaultSpec) FailStops() bool {
	return s != nil && (len(s.HostFails) > 0 || len(s.PctFails) > 0 ||
		len(s.LinkFails) > 0 || s.MTBF > 0)
}

// Arrivals returns the spec's failure-instant stream for the analytical
// checkpoint/restart model: the sorted explicit fail-stop times (host,
// hosts:k%, link — a k% clause is one global rewind however many hosts it
// takes down) merged with the lazy exponential MTBF stream. nHosts sizes
// the percentage clauses. The stream is deterministic for a given spec.
func (s *FaultSpec) Arrivals(nHosts int) *Arrivals {
	a := &Arrivals{nextExp: math.Inf(1)}
	if s == nil {
		return a
	}
	for _, hf := range s.HostFails {
		a.times = append(a.times, hf.At)
	}
	for _, pf := range s.PctFails {
		a.times = append(a.times, pf.At)
	}
	for _, lf := range s.LinkFails {
		a.times = append(a.times, lf.At)
	}
	sort.Float64s(a.times)
	if s.MTBF > 0 {
		a.mtbf = s.MTBF
		a.rng = splitmix64{state: s.Seed}
		a.nextExp = a.rng.exp(a.mtbf)
	}
	_ = nHosts // population size does not change the instants, only who dies
	return a
}

// Arrivals iterates failure instants in non-decreasing order; Next returns
// +Inf once the stream is exhausted (an MTBF stream never is).
type Arrivals struct {
	times   []float64
	i       int
	mtbf    float64
	rng     splitmix64
	nextExp float64
}

// Next pops the earliest remaining failure instant.
func (a *Arrivals) Next() float64 {
	if a.i < len(a.times) && a.times[a.i] <= a.nextExp {
		t := a.times[a.i]
		a.i++
		return t
	}
	if math.IsInf(a.nextExp, 1) {
		return math.Inf(1)
	}
	t := a.nextExp
	a.nextExp = t + a.rng.exp(a.mtbf)
	return t
}
