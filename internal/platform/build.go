package platform

import (
	"fmt"
	"strconv"
	"strings"

	"tireplay/internal/simx"
	"tireplay/internal/units"
)

// Routing selects how an instantiated platform resolves host-pair routes.
type Routing int

const (
	// RoutingComputed (the default) composes routes on demand from a zone
	// hierarchy: O(hosts + zones²) route state, see zones.go.
	RoutingComputed Routing = iota
	// RoutingTable eagerly materializes a route for every host pair — the
	// historical reference implementation, O(n²·pathlen) memory, kept for
	// the equivalence tests and cross-checks.
	RoutingTable
)

func (r Routing) String() string {
	if r == RoutingTable {
		return "table"
	}
	return "computed"
}

// ParseRouting parses a -routing flag value.
func ParseRouting(s string) (Routing, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "computed", "zone", "zones":
		return RoutingComputed, nil
	case "table", "eager", "full":
		return RoutingTable, nil
	}
	return 0, fmt.Errorf("platform: unknown routing mode %q (want computed or table)", s)
}

// Build is an instantiated platform: a simulation kernel populated with the
// platform's hosts, links and routes, plus the host naming information the
// deployment step needs.
type Build struct {
	Kernel    *simx.Kernel
	HostNames []string // all hosts in declaration order
	byCluster map[string][]string

	routing Routing
	zones   *ZoneRouter // non-nil in computed mode
}

// Routing reports which route-resolution mode the build was instantiated
// with.
func (b *Build) Routing() Routing { return b.routing }

// newBuild creates an empty build in the given routing mode; computed mode
// installs a ZoneRouter on the fresh kernel.
func newBuild(r Routing) *Build {
	b := &Build{Kernel: simx.New(), byCluster: make(map[string][]string), routing: r}
	if r == RoutingComputed {
		b.zones = NewZoneRouter()
		b.Kernel.SetRouter(b.zones)
	}
	return b
}

// ClusterHosts returns the host names of a cluster in index order, or nil
// for an unknown cluster id.
func (b *Build) ClusterHosts(id string) []string { return b.byCluster[id] }

// WrapKernel adapts a manually constructed kernel into a Build, for callers
// assembling custom platforms programmatically instead of from XML.
func WrapKernel(k *simx.Kernel, hostNames []string) *Build {
	return &Build{Kernel: k, HostNames: hostNames, byCluster: make(map[string][]string),
		routing: RoutingTable}
}

// clusterInst carries what inter-cluster routing needs about a built
// cluster: for every host, the ordered links from the host up to the cluster
// core (its private link, then any intermediate switches), the core backbone
// itself, and (in computed mode) the cluster's routing zone.
type clusterInst struct {
	id       string
	hosts    []string
	uplink   map[string][]*simx.Link
	backbone *simx.Link
	zone     *Zone
}

// Instantiate populates a fresh simulation kernel from the platform
// description: cluster hosts are connected through their private link and
// the cluster backbone (so two nodes of a cluster communicate through two
// links and one switch, the topology behind the paper's latency/3 rule), and
// AS routes join clusters through the declared wide-area links. Routes are
// composed on demand from the zone hierarchy; InstantiateRouting selects the
// eager reference tables instead.
func Instantiate(p *Platform) (*Build, error) {
	return InstantiateRouting(p, RoutingComputed)
}

// InstantiateRouting is Instantiate with an explicit route-resolution mode.
func InstantiateRouting(p *Platform, r Routing) (*Build, error) {
	b := newBuild(r)
	var clusters []*clusterInst
	if err := b.walkAS(&p.AS, &clusters); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *Build) walkAS(a *AS, clusters *[]*clusterInst) error {
	k := b.Kernel
	localLinks := make(map[string]*simx.Link)
	localClusters := make(map[string]*clusterInst)

	for i := range a.Clusters {
		ci, err := b.buildCluster(&a.Clusters[i])
		if err != nil {
			return err
		}
		*clusters = append(*clusters, ci)
		localClusters[ci.id] = ci
	}
	for _, h := range a.Hosts {
		power, err := units.ParseQuantity(h.Power)
		if err != nil {
			return fmt.Errorf("platform: host %q: %w", h.ID, err)
		}
		cores, err := parseCores(h.Core)
		if err != nil {
			return fmt.Errorf("platform: host %q: %w", h.ID, err)
		}
		k.AddHost(h.ID, power, cores)
		b.HostNames = append(b.HostNames, h.ID)
	}
	for _, l := range a.Links {
		bw, err := units.ParseQuantity(l.Bandwidth)
		if err != nil {
			return fmt.Errorf("platform: link %q: %w", l.ID, err)
		}
		lat, err := units.ParseQuantity(l.Latency)
		if err != nil {
			return fmt.Errorf("platform: link %q: %w", l.ID, err)
		}
		sharing, err := parseSharing(l.SharingPolicy)
		if err != nil {
			return fmt.Errorf("platform: link %q: %w", l.ID, err)
		}
		lk := k.AddLink(l.ID, bw, lat)
		lk.Sharing = sharing
		localLinks[l.ID] = lk
	}
	for _, r := range a.Routes {
		links, err := resolveLinks(r.Links, localLinks)
		if err != nil {
			return err
		}
		k.AddRoute(r.Src, r.Dst, links)
		if r.Symmetrical != "NO" && r.Symmetrical != "no" {
			rev := make([]*simx.Link, len(links))
			for i, l := range links {
				rev[len(links)-1-i] = l
			}
			k.AddRoute(r.Dst, r.Src, rev)
		}
	}
	for i := range a.Subs {
		if err := b.walkAS(&a.Subs[i], clusters); err != nil {
			return err
		}
		for _, ci := range (*clusters)[len(*clusters)-len(a.Subs[i].Clusters):] {
			localClusters[ci.id] = ci
		}
	}
	// Sub-AS ids can themselves be route endpoints when a sub-AS holds a
	// single cluster; treat the AS id as an alias of that cluster.
	for i := range a.Subs {
		sub := &a.Subs[i]
		if len(sub.Clusters) == 1 {
			if ci, ok := localClusters[sub.Clusters[0].ID]; ok {
				localClusters[sub.ID] = ci
			}
		}
	}
	for _, ar := range a.ASRoutes {
		src, ok := localClusters[ar.Src]
		if !ok {
			return fmt.Errorf("platform: ASroute references unknown system %q", ar.Src)
		}
		dst, ok := localClusters[ar.Dst]
		if !ok {
			return fmt.Errorf("platform: ASroute references unknown system %q", ar.Dst)
		}
		wan, err := resolveLinks(ar.Links, localLinks)
		if err != nil {
			return err
		}
		b.connectClusters(src, dst, wan)
		if ar.Symmetrical != "NO" && ar.Symmetrical != "no" {
			rev := make([]*simx.Link, len(wan))
			for i, l := range wan {
				rev[len(wan)-1-i] = l
			}
			b.connectClusters(dst, src, rev)
		}
	}
	return nil
}

// buildCluster creates the hosts, private links and backbone of one cluster
// element, wiring its intra-cluster routing either as a routing zone
// (computed mode) or as eagerly materialized per-pair routes (table mode).
func (b *Build) buildCluster(c *Cluster) (*clusterInst, error) {
	k := b.Kernel
	idx, err := ParseRadical(c.Radical)
	if err != nil {
		return nil, err
	}
	power, err := units.ParseQuantity(c.Power)
	if err != nil {
		return nil, fmt.Errorf("platform: cluster %q: %w", c.ID, err)
	}
	cores, err := parseCores(c.Core)
	if err != nil {
		return nil, fmt.Errorf("platform: cluster %q: %w", c.ID, err)
	}
	bw, err := units.ParseQuantity(c.BW)
	if err != nil {
		return nil, fmt.Errorf("platform: cluster %q: %w", c.ID, err)
	}
	lat, err := units.ParseQuantity(c.Lat)
	if err != nil {
		return nil, fmt.Errorf("platform: cluster %q: %w", c.ID, err)
	}
	sharing, err := parseSharing(c.SharingPolicy)
	if err != nil {
		return nil, fmt.Errorf("platform: cluster %q: %w", c.ID, err)
	}
	bbSharing, err := parseSharing(c.BBSharingPolicy)
	if err != nil {
		return nil, fmt.Errorf("platform: cluster %q: %w", c.ID, err)
	}
	// Backbone defaults to ten times the host link, as in common SimGrid
	// cluster files, when bb_* attributes are absent.
	bbBw, bbLat := bw*10, lat
	if c.BBBw != "" {
		if bbBw, err = units.ParseQuantity(c.BBBw); err != nil {
			return nil, fmt.Errorf("platform: cluster %q: %w", c.ID, err)
		}
	}
	if c.BBLat != "" {
		if bbLat, err = units.ParseQuantity(c.BBLat); err != nil {
			return nil, fmt.Errorf("platform: cluster %q: %w", c.ID, err)
		}
	}

	ci := &clusterInst{
		id:       c.ID,
		uplink:   make(map[string][]*simx.Link),
		backbone: k.AddLink(c.ID+"_backbone", bbBw, bbLat),
	}
	ci.backbone.Sharing = bbSharing
	if b.zones != nil {
		ci.zone = b.zones.NewZone(c.ID, nil, ci.backbone)
	}
	for _, i := range idx {
		name := fmt.Sprintf("%s%d%s", c.Prefix, i, c.Suffix)
		h := k.AddHost(name, power, cores)
		hl := k.AddLink(fmt.Sprintf("%s_link_%d", c.ID, i), bw, lat)
		hl.Sharing = sharing
		ci.uplink[name] = []*simx.Link{hl}
		ci.hosts = append(ci.hosts, name)
		b.HostNames = append(b.HostNames, name)
		if ci.zone != nil {
			b.zones.Attach(h, ci.zone, hl)
		}
	}
	if ci.zone == nil {
		for _, src := range ci.hosts {
			for _, dst := range ci.hosts {
				if src == dst {
					continue
				}
				k.AddRoute(src, dst, []*simx.Link{ci.uplink[src][0], ci.backbone, ci.uplink[dst][0]})
			}
		}
	}
	b.byCluster[c.ID] = ci.hosts
	return ci, nil
}

// connectClusters joins two clusters through their uplinks, both backbones
// and the wide-area links: one inter-zone declaration in computed mode, a
// route for every host pair in table mode.
func (b *Build) connectClusters(src, dst *clusterInst, wan []*simx.Link) {
	if src.zone != nil && dst.zone != nil {
		b.zones.ConnectZones(src.zone, dst.zone, wan...)
		return
	}
	k := b.Kernel
	for _, s := range src.hosts {
		for _, d := range dst.hosts {
			up, down := src.uplink[s], dst.uplink[d]
			links := make([]*simx.Link, 0, len(wan)+len(up)+len(down)+2)
			links = append(links, up...)
			links = append(links, src.backbone)
			links = append(links, wan...)
			links = append(links, dst.backbone)
			for i := len(down) - 1; i >= 0; i-- {
				links = append(links, down[i])
			}
			k.AddRoute(s, d, links)
		}
	}
}

func resolveLinks(refs []LinkRef, links map[string]*simx.Link) ([]*simx.Link, error) {
	out := make([]*simx.Link, 0, len(refs))
	for _, r := range refs {
		l, ok := links[r.ID]
		if !ok {
			return nil, fmt.Errorf("platform: route references unknown link %q", r.ID)
		}
		out = append(out, l)
	}
	return out, nil
}

// parseSharing maps a SimGrid sharing_policy attribute onto the kernel's
// link policy. Absent means SHARED.
func parseSharing(s string) (simx.Sharing, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "", "SHARED":
		return simx.SharingShared, nil
	case "FATPIPE":
		return simx.SharingFatpipe, nil
	}
	return 0, fmt.Errorf("unknown sharing_policy %q (want SHARED or FATPIPE)", s)
}

func parseCores(s string) (int, error) {
	if s == "" {
		return 1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad core count %q", s)
	}
	return n, nil
}
