package platform

import (
	"fmt"
	"runtime"
	"testing"

	"tireplay/internal/simx"
)

// benchCluster is a single homogeneous n-host cluster description, the shape
// whose route state the routing refactor moved from O(n²) to O(n).
func benchCluster(n int) *Platform {
	return &Platform{
		Version: "3",
		AS: AS{
			ID: "AS_bench", Routing: "Full",
			Clusters: []Cluster{{
				ID: "bench", Prefix: "n", Radical: FormatRadical(n),
				Power: "1E9", BW: "1.25E8", Lat: "1.67E-5",
			}},
		},
	}
}

// BenchmarkPlatformBuild is the CI memory gate of the computed routing
// layer: instantiating a 1024-host cluster must allocate O(n) route state —
// no per-pair tables. Besides the -benchmem counters that cmd/benchdiff
// gates (any allocs/op increase fails the build), it reports bytes/host so
// a route-memory regression is visible as a per-host cost. The table
// variant measures the eager reference at a size it can still afford, for
// the comparison table in the README.
func BenchmarkPlatformBuild(b *testing.B) {
	cases := []struct {
		hosts   int
		routing Routing
	}{
		{1024, RoutingComputed},
		{256, RoutingComputed},
		{256, RoutingTable},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("hosts=%d/routing=%s", tc.hosts, tc.routing), func(b *testing.B) {
			p := benchCluster(tc.hosts)
			var sink *Build
			b.ReportAllocs()
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bd, err := InstantiateRouting(p, tc.routing)
				if err != nil {
					b.Fatal(err)
				}
				sink = bd
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			if sink == nil || len(sink.HostNames) != tc.hosts {
				b.Fatalf("bad build: %v", sink)
			}
			perHost := float64(after.TotalAlloc-before.TotalAlloc) / float64(b.N) / float64(tc.hosts)
			b.ReportMetric(perHost, "bytes/host")
		})
	}
}

// BenchmarkRouteResolution measures raw router resolution: the computed
// router composes the route on every call here, the table router is one
// dense-key map hit. A replay pays the composed cost once per communicating
// pair — the kernel caches the resolution under a host-pointer key — so the
// gap is a per-pair constant, not a per-message one.
func BenchmarkRouteResolution(b *testing.B) {
	for _, routing := range []Routing{RoutingComputed, RoutingTable} {
		b.Run(fmt.Sprintf("routing=%s", routing), func(b *testing.B) {
			bd, err := InstantiateRouting(benchCluster(64), routing)
			if err != nil {
				b.Fatal(err)
			}
			k := bd.Kernel
			hosts := make([]*simx.Host, len(bd.HostNames))
			for i, n := range bd.HostNames {
				hosts[i] = k.Host(n)
			}
			r := k.Router()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := hosts[i%len(hosts)]
				dst := hosts[(i*7+1)%len(hosts)]
				if src == dst {
					dst = hosts[(i*7+2)%len(hosts)]
				}
				if r.Route(src, dst) == nil {
					b.Fatal("route missing")
				}
			}
		})
	}
}
