package platform

import "fmt"

// This file partitions a platform description into the connected components
// of its host/link graph. Two hosts are connected when traffic can flow
// between them: they sit in the same cluster (through its backbone), an
// explicit <route> joins them, or an <ASroute> joins their clusters. Disjoint
// components can never contend for a link, so a replay whose communication
// stays inside one component is exactly reproducible on a kernel holding
// only that component — the property the parallel what-if sweep engine uses
// to spread one scenario over several kernels. The partition is computed on
// the description, independent of the routing mode the platform is later
// instantiated with (zones compose exactly the connectivity declared here);
// generated topologies (topo.go) are single-component by construction, so
// the sweep engine replays their scenarios whole.

// Hosts returns every host name declared by the platform in declaration
// order: for each AS, cluster hosts (expanded from the radical) first, then
// explicit hosts, then the hosts of nested systems.
func (p *Platform) Hosts() ([]string, error) {
	var hosts []string
	if err := walkHosts(&p.AS, func(name string) { hosts = append(hosts, name) }); err != nil {
		return nil, err
	}
	return hosts, nil
}

func walkHosts(a *AS, visit func(string)) error {
	for i := range a.Clusters {
		names, err := clusterHostNames(&a.Clusters[i])
		if err != nil {
			return err
		}
		for _, n := range names {
			visit(n)
		}
	}
	for _, h := range a.Hosts {
		visit(h.ID)
	}
	for i := range a.Subs {
		if err := walkHosts(&a.Subs[i], visit); err != nil {
			return err
		}
	}
	return nil
}

// clusterHostNames expands a cluster's radical into its host names, the same
// naming buildCluster applies when instantiating.
func clusterHostNames(c *Cluster) ([]string, error) {
	idx, err := ParseRadical(c.Radical)
	if err != nil {
		return nil, fmt.Errorf("platform: cluster %q: %w", c.ID, err)
	}
	names := make([]string, len(idx))
	for i, n := range idx {
		names[i] = fmt.Sprintf("%s%d%s", c.Prefix, n, c.Suffix)
	}
	return names, nil
}

// Components groups the platform's hosts into the connected components of
// the communication graph, deterministically: components are ordered by the
// declaration position of their first host, and hosts inside a component
// keep declaration order. A platform where every host can reach every other
// yields a single component.
func (p *Platform) Components() ([][]string, error) {
	u := newUnion()
	var hosts []string
	// reps maps a cluster id (or a single-cluster sub-AS id, the alias
	// Instantiate accepts as an ASroute endpoint) to a representative host.
	reps := make(map[string]string)
	if err := componentsWalk(&p.AS, &hosts, u, reps); err != nil {
		return nil, err
	}
	order := make(map[string]int, len(hosts))
	var comps [][]string
	for _, h := range hosts {
		root := u.find(h)
		i, ok := order[root]
		if !ok {
			i = len(comps)
			order[root] = i
			comps = append(comps, nil)
		}
		comps[i] = append(comps[i], h)
	}
	return comps, nil
}

func componentsWalk(a *AS, hosts *[]string, u *union, reps map[string]string) error {
	for i := range a.Clusters {
		c := &a.Clusters[i]
		names, err := clusterHostNames(c)
		if err != nil {
			return err
		}
		for _, n := range names {
			u.add(n)
			*hosts = append(*hosts, n)
		}
		// The backbone joins every host of the cluster.
		for _, n := range names[1:] {
			u.merge(names[0], n)
		}
		if len(names) > 0 {
			reps[c.ID] = names[0]
		}
	}
	for _, h := range a.Hosts {
		u.add(h.ID)
		*hosts = append(*hosts, h.ID)
	}
	for _, r := range a.Routes {
		// Routes name hosts; endpoints outside this description (e.g. hosts
		// a wrapped kernel added programmatically) cannot be partitioned, so
		// they are simply not joined here.
		if u.has(r.Src) && u.has(r.Dst) {
			u.merge(r.Src, r.Dst)
		}
		// Two routes referencing the same declared <link> contend for it
		// even when their endpoints are otherwise unreachable from each
		// other, so the link itself joins the component ("link:" keys never
		// collide with host names emitted by the grouping pass).
		for _, l := range r.Links {
			lk := "link:" + l.ID
			u.add(lk)
			if u.has(r.Src) {
				u.merge(r.Src, lk)
			}
		}
	}
	for i := range a.Subs {
		sub := &a.Subs[i]
		if err := componentsWalk(sub, hosts, u, reps); err != nil {
			return err
		}
		// A sub-AS holding a single cluster aliases that cluster, the same
		// shortcut Instantiate's route resolution takes.
		if len(sub.Clusters) == 1 {
			if rep, ok := reps[sub.Clusters[0].ID]; ok {
				reps[sub.ID] = rep
			}
		}
	}
	for _, ar := range a.ASRoutes {
		src, ok := reps[ar.Src]
		if !ok {
			return fmt.Errorf("platform: ASroute references unknown system %q", ar.Src)
		}
		dst, ok := reps[ar.Dst]
		if !ok {
			return fmt.Errorf("platform: ASroute references unknown system %q", ar.Dst)
		}
		u.merge(src, dst)
		for _, l := range ar.Links {
			lk := "link:" + l.ID
			u.add(lk)
			u.merge(src, lk)
		}
	}
	return nil
}

// union is a plain union-find over host names with path halving.
type union struct {
	parent map[string]string
}

func newUnion() *union { return &union{parent: make(map[string]string)} }

func (u *union) add(x string) {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
	}
}

func (u *union) has(x string) bool {
	_, ok := u.parent[x]
	return ok
}

func (u *union) find(x string) string {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *union) merge(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}
