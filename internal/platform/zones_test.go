package platform

import (
	"strings"
	"testing"

	"tireplay/internal/simx"
)

// This file pins the computed routing layer against the eager reference
// tables: on every platform description the repo ships — the paper's radical
// cluster file, a two-cluster ASroute description, the hierarchical gdx
// interconnect and the combined Grid'5000 build — every host pair must
// resolve to the same links in the same order with the same latency under
// both modes.

// routesEqual resolves every ordered host pair through both kernels' routers
// and compares links (by name, since the kernels hold distinct instances)
// and latency exactly.
func routesEqual(t *testing.T, computed, table *Build) {
	t.Helper()
	if len(computed.HostNames) != len(table.HostNames) {
		t.Fatalf("host counts differ: %d vs %d", len(computed.HostNames), len(table.HostNames))
	}
	ck, tk := computed.Kernel, table.Kernel
	for _, s := range computed.HostNames {
		for _, d := range computed.HostNames {
			if s == d {
				continue
			}
			rc := ck.Router().Route(ck.Host(s), ck.Host(d))
			rt := tk.Router().Route(tk.Host(s), tk.Host(d))
			if rc == nil || rt == nil {
				t.Fatalf("%s->%s: computed=%v table=%v (route missing)", s, d, rc, rt)
			}
			if rc.Latency != rt.Latency {
				t.Fatalf("%s->%s: computed latency %g != table %g", s, d, rc.Latency, rt.Latency)
			}
			if len(rc.Links) != len(rt.Links) {
				t.Fatalf("%s->%s: computed %s != table %s", s, d, linkNames(rc), linkNames(rt))
			}
			for i := range rc.Links {
				if rc.Links[i].Name != rt.Links[i].Name {
					t.Fatalf("%s->%s: link %d: computed %s != table %s",
						s, d, i, linkNames(rc), linkNames(rt))
				}
			}
		}
	}
}

func linkNames(r *simx.Route) string {
	names := make([]string, len(r.Links))
	for i, l := range r.Links {
		names[i] = l.Name
	}
	return "[" + strings.Join(names, " ") + "]"
}

func TestComputedRoutesMatchTableOnRadicalCluster(t *testing.T) {
	p, err := Parse(strings.NewReader(paperPlatformXML))
	if err != nil {
		t.Fatal(err)
	}
	computed, err := InstantiateRouting(p, RoutingComputed)
	if err != nil {
		t.Fatal(err)
	}
	if computed.Routing() != RoutingComputed {
		t.Fatalf("routing mode = %v", computed.Routing())
	}
	table, err := InstantiateRouting(p, RoutingTable)
	if err != nil {
		t.Fatal(err)
	}
	routesEqual(t, computed, table)
}

// twoClusterXML joins two radical clusters through an ASroute over a WAN
// link, the scattering-mode shape of the paper.
const twoClusterXML = `<?xml version='1.0'?>
<platform version="3">
  <AS id="AS_grid" routing="Full">
    <cluster id="west" prefix="w-" suffix=".site" radical="0-3"
             power="1.17E9" bw="1.25E8" lat="16.67E-6"
             bb_bw="1.25E9" bb_lat="16.67E-6"/>
    <cluster id="east" prefix="e-" suffix=".site" radical="0-2"
             power="1E9" bw="1.25E8" lat="16.67E-6"/>
    <link id="wan" bandwidth="1.25E9" latency="5E-3"/>
    <ASroute src="west" dst="east"><link_ctn id="wan"/></ASroute>
  </AS>
</platform>`

func TestComputedRoutesMatchTableOnASRoute(t *testing.T) {
	p, err := Parse(strings.NewReader(twoClusterXML))
	if err != nil {
		t.Fatal(err)
	}
	computed, err := InstantiateRouting(p, RoutingComputed)
	if err != nil {
		t.Fatal(err)
	}
	table, err := InstantiateRouting(p, RoutingTable)
	if err != nil {
		t.Fatal(err)
	}
	routesEqual(t, computed, table)
}

func TestComputedRoutesMatchTableOnGdx(t *testing.T) {
	computed, err := buildGdxRouting(40, GdxCores, RoutingComputed)
	if err != nil {
		t.Fatal(err)
	}
	table, err := buildGdxRouting(40, GdxCores, RoutingTable)
	if err != nil {
		t.Fatal(err)
	}
	routesEqual(t, computed, table)
}

func TestComputedRoutesMatchTableOnGrid5000(t *testing.T) {
	computed, err := buildGrid5000Routing(6, 12, 0, RoutingComputed)
	if err != nil {
		t.Fatal(err)
	}
	table, err := buildGrid5000Routing(6, 12, 0, RoutingTable)
	if err != nil {
		t.Fatal(err)
	}
	routesEqual(t, computed, table)
}

// TestExplicitRouteOverridesZones: an XML <route> between cluster hosts must
// win over the composed zone route in computed mode, exactly as it replaces
// the table entry in table mode.
func TestExplicitRouteOverridesZones(t *testing.T) {
	const doc = `<platform version="3">
  <AS id="AS0" routing="Full">
    <cluster id="c" prefix="n" suffix="" radical="0-1"
             power="1E9" bw="1.25E8" lat="1E-5"/>
    <link id="short" bandwidth="1E9" latency="1E-6"/>
    <route src="n0" dst="n1"><link_ctn id="short"/></route>
  </AS>
</platform>`
	p, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Routing{RoutingComputed, RoutingTable} {
		b, err := InstantiateRouting(p, mode)
		if err != nil {
			t.Fatal(err)
		}
		k := b.Kernel
		r := k.Router().Route(k.Host("n0"), k.Host("n1"))
		if r == nil || len(r.Links) != 1 || r.Links[0].Name != "short" {
			t.Fatalf("%v: override not applied: %+v", mode, r)
		}
		// The reverse direction is symmetrical by default.
		rr := k.Router().Route(k.Host("n1"), k.Host("n0"))
		if rr == nil || len(rr.Links) != 1 || rr.Links[0].Name != "short" {
			t.Fatalf("%v: symmetric override not applied: %+v", mode, rr)
		}
	}
}

// TestZoneRouterMemoryScalesLinearly is the structural half of the O(n)
// claim (the benchmark measures bytes): a 256-host cluster's zone router
// holds one attachment per host, one zone, and no per-pair state until a
// pair actually communicates.
func TestZoneRouterMemoryScalesLinearly(t *testing.T) {
	p := BordereauCustom(64, 1, BordereauPower)
	p.AS.Clusters[0].Radical = FormatRadical(64)
	b, err := InstantiateRouting(p, RoutingComputed)
	if err != nil {
		t.Fatal(err)
	}
	zr := b.zones
	if zr == nil {
		t.Fatal("computed build has no zone router")
	}
	if got := len(zr.explicit); got != 0 {
		t.Fatalf("explicit overrides = %d, want 0", got)
	}
	if got := len(zr.attach); got != 64 {
		t.Fatalf("attachments = %d, want 64", got)
	}
	if got := zr.Zones(); got != 1 {
		t.Fatalf("zones = %d, want 1", got)
	}
	if got := len(zr.spine); got > 1 {
		t.Fatalf("spine cache pre-populated with %d segments", got)
	}
	// Resolving every pair grows the spine cache by zones², not hosts².
	k := b.Kernel
	for _, s := range b.HostNames {
		for _, d := range b.HostNames {
			if s != d && k.Router().Route(k.Host(s), k.Host(d)) == nil {
				t.Fatalf("no route %s->%s", s, d)
			}
		}
	}
	if got := len(zr.spine); got != 1 {
		t.Fatalf("spine segments after full resolution = %d, want 1 (zones²)", got)
	}
}

// TestFatpipeClusterAttribute threads the XML sharing policies through to
// the kernel links.
func TestFatpipeClusterAttribute(t *testing.T) {
	const doc = `<platform version="3">
  <AS id="AS0" routing="Full">
    <cluster id="c" prefix="n" suffix="" radical="0-1"
             power="1E9" bw="1.25E8" lat="1E-5"
             bb_sharing_policy="FATPIPE"/>
    <link id="l" bandwidth="1E9" latency="1E-6" sharing_policy="FATPIPE"/>
  </AS>
</platform>`
	p, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Kernel.Link("c_backbone").Sharing; got != simx.SharingFatpipe {
		t.Fatalf("backbone sharing = %v", got)
	}
	if got := b.Kernel.Link("l").Sharing; got != simx.SharingFatpipe {
		t.Fatalf("link sharing = %v", got)
	}
	if got := b.Kernel.Link("c_link_0").Sharing; got != simx.SharingShared {
		t.Fatalf("host link sharing = %v", got)
	}
	const bad = `<platform version="3">
  <AS id="AS0" routing="Full">
    <link id="l" bandwidth="1E9" latency="1E-6" sharing_policy="HALFDUPLEX"/>
  </AS>
</platform>`
	pb, err := Parse(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instantiate(pb); err == nil {
		t.Fatal("expected error for unknown sharing policy")
	}
}
