package platform

import (
	"fmt"

	"tireplay/internal/simx"
)

// This file is the computed routing layer: instead of eagerly materializing
// a route for every host pair (O(n²·pathlen) memory, the historical
// reference kept behind RoutingTable), the platform builds a hierarchy of
// routing zones — host → cluster → wider systems — and composes each route
// on demand from the host's uplink, the zone backbones along the way, and
// the inter-zone segment joining two independent systems. Route state is
// O(hosts + zones²): per host the few links up to its zone core, per zone
// pair one cached middle segment. The kernel caches each composed route
// under a host-pointer key the first time a pair communicates, so steady-
// state resolution costs one map hit, exactly like the eager table.

// Zone is one node of the routing hierarchy. Hosts attach to a zone; zones
// nest (a switch group inside a cluster, a cluster inside a site). Traffic
// between two members of a zone crosses the zone's backbone; traffic leaving
// a nested zone additionally crosses its uplink toward the parent.
type Zone struct {
	id       int
	name     string
	parent   *Zone
	depth    int
	backbone *simx.Link   // joins the zone's hosts/children; nil = wire-only
	uplink   []*simx.Link // links from the zone core to the parent's core
}

// Name returns the zone's diagnostic name.
func (z *Zone) Name() string { return z.name }

// root walks to the zone's outermost ancestor.
func (z *Zone) root() *Zone {
	for z.parent != nil {
		z = z.parent
	}
	return z
}

// hostAttach records how a host reaches its zone: the ordered links from the
// host up to the zone core (its private link, then any intermediate hops).
type hostAttach struct {
	zone *Zone
	up   []*simx.Link
	lat  float64 // summed latency of up
}

// spineSeg is one cached zone-pair middle segment: every link of the route
// between the two zones' cores, and its summed latency.
type spineSeg struct {
	links []*simx.Link
	lat   float64
}

// ZoneRouter composes host-pair routes from a zone hierarchy. It implements
// simx.Router (resolution on demand) and simx.RouteAdder (explicit per-pair
// overrides, used for XML <route> declarations), so a kernel using it
// behaves exactly like one with an eager table — without the table.
type ZoneRouter struct {
	zones  []*Zone
	attach []hostAttach // indexed by dense simx host ID
	// inter maps a (src root zone, dst root zone) pair to the wide-area
	// links joining them (directional, the ASroute declaration).
	inter map[uint64][]*simx.Link
	// spine caches composed zone-pair middle segments under dense zone-pair
	// keys — the O(zones²) heart of the computed layer.
	spine map[uint64]*spineSeg
	// explicit holds per-host-pair route overrides under dense host-pair
	// keys.
	explicit map[uint64]*simx.Route
}

// NewZoneRouter returns an empty computed router.
func NewZoneRouter() *ZoneRouter {
	return &ZoneRouter{
		inter:    make(map[uint64][]*simx.Link),
		spine:    make(map[uint64]*spineSeg),
		explicit: make(map[uint64]*simx.Route),
	}
}

// NewZone declares a zone. backbone (may be nil) carries intra-zone traffic;
// uplink lists the links from this zone's core up to the parent's core, in
// upward order, for nested zones.
func (zr *ZoneRouter) NewZone(name string, parent *Zone, backbone *simx.Link, uplink ...*simx.Link) *Zone {
	z := &Zone{id: len(zr.zones), name: name, parent: parent, backbone: backbone, uplink: uplink}
	if parent != nil {
		z.depth = parent.depth + 1
	}
	zr.zones = append(zr.zones, z)
	return z
}

// Zones returns the number of declared zones.
func (zr *ZoneRouter) Zones() int { return len(zr.zones) }

// Attach connects a host to a zone through the given uplink links (host
// side first). A host attaches to exactly one zone.
func (zr *ZoneRouter) Attach(h *simx.Host, z *Zone, up ...*simx.Link) {
	id := h.ID()
	for id >= len(zr.attach) {
		zr.attach = append(zr.attach, hostAttach{})
	}
	if zr.attach[id].zone != nil {
		panic(fmt.Sprintf("platform: host %q attached to two zones", h.Name))
	}
	lat := 0.0
	for _, l := range up {
		lat += l.Latency
	}
	zr.attach[id] = hostAttach{zone: z, up: up, lat: lat}
}

// ConnectZones declares that traffic from the system rooted at src to the
// one rooted at dst crosses the given wide-area links (after src's backbones
// and before dst's). Directional, like ASroute declarations; callers wanting
// symmetry connect both ways with the links reversed.
func (zr *ZoneRouter) ConnectZones(src, dst *Zone, via ...*simx.Link) {
	zr.inter[zonePairKey(src.root(), dst.root())] = via
}

// AddRoute installs an explicit per-pair override (simx.RouteAdder); XML
// <route> declarations between named hosts land here in computed mode.
func (zr *ZoneRouter) AddRoute(src, dst *simx.Host, r *simx.Route) {
	zr.explicit[hostPairKey(src, dst)] = r
}

func hostPairKey(src, dst *simx.Host) uint64 {
	return uint64(uint32(src.ID()))<<32 | uint64(uint32(dst.ID()))
}

func zonePairKey(a, b *Zone) uint64 {
	return uint64(uint32(a.id))<<32 | uint64(uint32(b.id))
}

// Route composes the route from src to dst: explicit override if declared,
// otherwise src's uplink + the (cached) zone-pair spine + dst's downlink.
// Returns nil when the hosts are not joined by the hierarchy. The kernel
// calls this once per communicating pair and caches the result.
func (zr *ZoneRouter) Route(src, dst *simx.Host) *simx.Route {
	if r, ok := zr.explicit[hostPairKey(src, dst)]; ok {
		return r
	}
	a, b := zr.attachOf(src), zr.attachOf(dst)
	if a == nil || b == nil {
		return nil
	}
	sp := zr.spineBetween(a.zone, b.zone)
	if sp == nil {
		return nil
	}
	links := make([]*simx.Link, 0, len(a.up)+len(sp.links)+len(b.up))
	links = append(links, a.up...)
	links = append(links, sp.links...)
	for i := len(b.up) - 1; i >= 0; i-- {
		links = append(links, b.up[i])
	}
	return &simx.Route{Links: links, Latency: a.lat + sp.lat + b.lat}
}

func (zr *ZoneRouter) attachOf(h *simx.Host) *hostAttach {
	id := h.ID()
	if id >= len(zr.attach) || zr.attach[id].zone == nil {
		return nil
	}
	return &zr.attach[id]
}

// spineBetween returns (composing and caching on first use) the middle
// segment of every route between hosts of za and hosts of zb.
func (zr *ZoneRouter) spineBetween(za, zb *Zone) *spineSeg {
	key := zonePairKey(za, zb)
	if sp, ok := zr.spine[key]; ok {
		return sp
	}
	sp := zr.composeSpine(za, zb)
	zr.spine[key] = sp // negative results cache too: nil means unroutable
	return sp
}

// composeSpine builds the zone-to-zone middle segment. Within one system the
// path climbs from za to the lowest common ancestor, crosses its backbone,
// and descends to zb; between systems it climbs through za's root, crosses
// the declared inter-zone links, and descends through zb's root.
func (zr *ZoneRouter) composeSpine(za, zb *Zone) *spineSeg {
	ra, rb := za.root(), zb.root()
	var links []*simx.Link
	if ra == rb {
		// Climb from za to the common ancestor, cross its backbone, descend
		// into zb. When za == zb the climbs are empty and the backbone alone
		// joins the two hosts.
		lca := lowestCommonAncestor(za, zb)
		for z := za; z != lca; z = z.parent {
			links = appendZoneUp(links, z)
		}
		if lca.backbone != nil {
			links = append(links, lca.backbone)
		}
		links = appendZoneDownTo(links, zb, lca)
	} else {
		via, ok := zr.inter[zonePairKey(ra, rb)]
		if !ok {
			return nil
		}
		for z := za; z != nil; z = z.parent {
			links = appendZoneUp(links, z)
		}
		links = append(links, via...)
		var down []*simx.Link
		for z := zb; z != nil; z = z.parent {
			down = appendZoneUp(down, z)
		}
		for i := len(down) - 1; i >= 0; i-- {
			links = append(links, down[i])
		}
	}
	lat := 0.0
	for _, l := range links {
		lat += l.Latency
	}
	return &spineSeg{links: links, lat: lat}
}

// appendZoneUp appends the links crossed when traffic leaves z upward: its
// backbone (reaching the zone core) then its uplink chain to the parent.
func appendZoneUp(links []*simx.Link, z *Zone) []*simx.Link {
	if z.backbone != nil {
		links = append(links, z.backbone)
	}
	return append(links, z.uplink...)
}

// appendZoneDownTo appends, in traversal order, the links crossed descending
// from (but excluding) ancestor anc into zone z.
func appendZoneDownTo(links []*simx.Link, z *Zone, anc *Zone) []*simx.Link {
	var climb []*simx.Link
	for zz := z; zz != anc; zz = zz.parent {
		climb = appendZoneUp(climb, zz)
	}
	for i := len(climb) - 1; i >= 0; i-- {
		links = append(links, climb[i])
	}
	return links
}

func lowestCommonAncestor(a, b *Zone) *Zone {
	for a.depth > b.depth {
		a = a.parent
	}
	for b.depth > a.depth {
		b = b.parent
	}
	for a != b {
		a, b = a.parent, b.parent
	}
	return a
}
