package platform

import (
	"fmt"
	"strconv"

	"tireplay/internal/units"
)

// Scale is a uniform what-if transformation of a platform description: each
// non-zero factor multiplies the corresponding quantity everywhere it
// appears. The zero value (and a factor of 1) leaves the platform unchanged.
// Sweeps use it to derive the "2x faster CPUs" / "10x interconnect" style
// scenarios of Section 5 from one base description without editing XML.
type Scale struct {
	Latency   float64 // multiplies every link and backbone latency
	Bandwidth float64 // multiplies every link and backbone bandwidth
	Power     float64 // multiplies every host's per-core flop rate
}

// IsIdentity reports whether applying the scale would change nothing.
func (s Scale) IsIdentity() bool {
	ident := func(f float64) bool { return f == 0 || f == 1 }
	return ident(s.Latency) && ident(s.Bandwidth) && ident(s.Power)
}

// Scaled returns a deep copy of the platform with the scale applied. The
// receiver is never modified, so one parsed description can be shared
// read-only by concurrent sweep workers, each deriving its own scenario.
func (p *Platform) Scaled(s Scale) (*Platform, error) {
	out := &Platform{XMLName: p.XMLName, Version: p.Version}
	as, err := scaleAS(&p.AS, s)
	if err != nil {
		return nil, err
	}
	out.AS = *as
	return out, nil
}

func scaleAS(a *AS, s Scale) (*AS, error) {
	out := &AS{ID: a.ID, Routing: a.Routing}
	out.Clusters = append([]Cluster(nil), a.Clusters...)
	for i := range out.Clusters {
		c := &out.Clusters[i]
		var err error
		if c.Power, err = scaleQuantity(c.Power, s.Power); err != nil {
			return nil, fmt.Errorf("platform: cluster %q power: %w", c.ID, err)
		}
		if c.BW, err = scaleQuantity(c.BW, s.Bandwidth); err != nil {
			return nil, fmt.Errorf("platform: cluster %q bw: %w", c.ID, err)
		}
		if c.Lat, err = scaleQuantity(c.Lat, s.Latency); err != nil {
			return nil, fmt.Errorf("platform: cluster %q lat: %w", c.ID, err)
		}
		// Absent bb_* attributes stay absent: their defaults derive from the
		// (already scaled) host link values at instantiation time.
		if c.BBBw, err = scaleQuantity(c.BBBw, s.Bandwidth); err != nil {
			return nil, fmt.Errorf("platform: cluster %q bb_bw: %w", c.ID, err)
		}
		if c.BBLat, err = scaleQuantity(c.BBLat, s.Latency); err != nil {
			return nil, fmt.Errorf("platform: cluster %q bb_lat: %w", c.ID, err)
		}
	}
	out.Hosts = append([]HostDef(nil), a.Hosts...)
	for i := range out.Hosts {
		h := &out.Hosts[i]
		var err error
		if h.Power, err = scaleQuantity(h.Power, s.Power); err != nil {
			return nil, fmt.Errorf("platform: host %q power: %w", h.ID, err)
		}
	}
	out.Links = append([]LinkDef(nil), a.Links...)
	for i := range out.Links {
		l := &out.Links[i]
		var err error
		if l.Bandwidth, err = scaleQuantity(l.Bandwidth, s.Bandwidth); err != nil {
			return nil, fmt.Errorf("platform: link %q bandwidth: %w", l.ID, err)
		}
		if l.Latency, err = scaleQuantity(l.Latency, s.Latency); err != nil {
			return nil, fmt.Errorf("platform: link %q latency: %w", l.ID, err)
		}
	}
	out.Routes = copyRoutes(a.Routes)
	out.ASRoutes = copyASRoutes(a.ASRoutes)
	for i := range a.Subs {
		sub, err := scaleAS(&a.Subs[i], s)
		if err != nil {
			return nil, err
		}
		out.Subs = append(out.Subs, *sub)
	}
	return out, nil
}

func copyRoutes(rs []RouteDef) []RouteDef {
	out := append([]RouteDef(nil), rs...)
	for i := range out {
		out[i].Links = append([]LinkRef(nil), rs[i].Links...)
	}
	return out
}

func copyASRoutes(rs []ASRoute) []ASRoute {
	out := append([]ASRoute(nil), rs...)
	for i := range out {
		out[i].Links = append([]LinkRef(nil), rs[i].Links...)
	}
	return out
}

// scaleQuantity multiplies a quantity attribute by f, preserving empty
// attributes and identity factors verbatim (so an unscaled description
// round-trips byte-identically).
func scaleQuantity(v string, f float64) (string, error) {
	if v == "" || f == 0 || f == 1 {
		return v, nil
	}
	q, err := units.ParseQuantity(v)
	if err != nil {
		return "", err
	}
	return strconv.FormatFloat(q*f, 'G', -1, 64), nil
}
