package cli

import (
	"errors"
	"fmt"
	"os"
	"testing"
)

func TestExitCode(t *testing.T) {
	if got := ExitCode(errors.New("boom")); got != ExitFailure {
		t.Fatalf("runtime error exit = %d, want %d", got, ExitFailure)
	}
	if got := ExitCode(Usagef("need -dir")); got != ExitUsage {
		t.Fatalf("usage error exit = %d, want %d", got, ExitUsage)
	}
	// The marker survives %w wrapping anywhere in the chain.
	wrapped := fmt.Errorf("tool: %w", Usage(os.ErrNotExist))
	if got := ExitCode(wrapped); got != ExitUsage {
		t.Fatalf("wrapped usage error exit = %d, want %d", got, ExitUsage)
	}
	if !errors.Is(wrapped, os.ErrNotExist) {
		t.Fatal("UsageError must not hide the underlying error from errors.Is")
	}
}

func TestUsageNil(t *testing.T) {
	if Usage(nil) != nil {
		t.Fatal("Usage(nil) must stay nil")
	}
}

func TestUsageErrorMessage(t *testing.T) {
	err := Usagef("bad count %q", "x")
	if err.Error() != `bad count "x"` {
		t.Fatalf("message = %q", err.Error())
	}
}
