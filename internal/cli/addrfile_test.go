package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteAddrFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "daemon.addr")
	if err := WriteAddrFile(path, "127.0.0.1:8347"); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "127.0.0.1:8347\n" {
		t.Fatalf("addr file contents %q", b)
	}

	// Re-publishing (daemon restart) replaces the file atomically.
	if err := WriteAddrFile(path, "127.0.0.1:9000"); err != nil {
		t.Fatal(err)
	}
	if b, _ = os.ReadFile(path); string(b) != "127.0.0.1:9000\n" {
		t.Fatalf("rewritten addr file contents %q", b)
	}

	// No stray temp files remain next to the target.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("left %d entries in the directory, want 1", len(entries))
	}
}

func TestWriteAddrFileBadDir(t *testing.T) {
	err := WriteAddrFile(filepath.Join(t.TempDir(), "no", "such", "dir", "a.addr"), "x")
	if err == nil {
		t.Fatal("writing into a missing directory succeeded")
	}
}
