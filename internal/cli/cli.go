// Package cli centralises the exit-status convention of the cmd/* tools:
// usage mistakes (bad flag values, missing required arguments) exit with
// status 2, following the Go flag package's own convention, while data and
// runtime failures (unreadable traces, failed replays) exit with status 1.
// An interrupted run that still flushed partial results exits with 130, the
// shell convention for death-by-SIGINT.
package cli

import (
	"errors"
	"fmt"
	"os"
)

// Exit statuses of the cmd/* tools.
const (
	// ExitFailure is the status for data and runtime errors.
	ExitFailure = 1
	// ExitUsage is the status for command-line usage errors.
	ExitUsage = 2
	// ExitCanceled is the status for runs interrupted by SIGINT after
	// flushing partial results (128 + SIGINT's signal number 2).
	ExitCanceled = 130
)

// UsageError marks an error as a command-line usage mistake.
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *UsageError) Unwrap() error { return e.Err }

// Usage wraps err as a usage error.
func Usage(err error) error {
	if err == nil {
		return nil
	}
	return &UsageError{Err: err}
}

// Usagef builds a usage error from a format string.
func Usagef(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// ExitCode maps an error to the tool's exit status: ExitUsage for usage
// errors anywhere in the chain, ExitFailure otherwise.
func ExitCode(err error) int {
	var ue *UsageError
	if errors.As(err, &ue) {
		return ExitUsage
	}
	return ExitFailure
}

// Fail prints "tool: err" to stderr and exits with ExitCode(err).
func Fail(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(ExitCode(err))
}
