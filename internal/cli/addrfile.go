package cli

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteAddrFile publishes a daemon's bound address for scripted clients:
// the file appears atomically (write to a temp name, then rename), so a
// harness polling for it never reads a half-written address. Pass the
// listener's actual address, not the requested one — ":0" binds an
// ephemeral port and the file is how the port is discovered.
func WriteAddrFile(path, addr string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".addr-*")
	if err != nil {
		return fmt.Errorf("cli: addr file: %w", err)
	}
	name := tmp.Name()
	_, werr := fmt.Fprintln(tmp, addr)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(name, path)
	}
	if werr != nil {
		os.Remove(name)
		return fmt.Errorf("cli: addr file: %w", werr)
	}
	return nil
}
