package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/sweep"
	"tireplay/internal/trace"
)

// luActions records an NPB LU pseudo-application into per-rank actions.
func luActions(tb testing.TB, class npb.Class, procs int) [][]trace.Action {
	tb.Helper()
	prog, err := npb.LU(npb.LUConfig{Class: class, Procs: procs})
	if err != nil {
		tb.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			tb.Fatal(err)
		}
	}
	return perRank
}

// luTexts renders the recorded actions in the textual trace format, one
// string per rank — the inline upload payload.
func luTexts(tb testing.TB, class npb.Class, procs int) []string {
	tb.Helper()
	perRank := luActions(tb, class, procs)
	texts := make([]string, procs)
	for r, acts := range perRank {
		var b strings.Builder
		for _, a := range acts {
			b.WriteString(a.Format())
			b.WriteByte('\n')
		}
		texts[r] = b.String()
	}
	return texts
}

// luTraces builds a parsed trace set directly (store-level tests).
func luTraces(tb testing.TB, class npb.Class, procs int) *sweep.TraceSet {
	tb.Helper()
	return sweep.TracesFromActions(luActions(tb, class, procs))
}

// writeTraceDir materialises per-rank traces under dir in the mixed file
// layout the loader resolves: rank 0 plain text, rank 1 gzip (when present),
// the rest binary (memory-mapped on load).
func writeTraceDir(tb testing.TB, dir string, perRank [][]trace.Action) {
	tb.Helper()
	for r, acts := range perRank {
		var err error
		switch {
		case r == 0:
			var b strings.Builder
			for _, a := range acts {
				b.WriteString(a.Format())
				b.WriteByte('\n')
			}
			err = os.WriteFile(filepath.Join(dir, trace.ProcessFileName(r)), []byte(b.String()), 0o644)
		case r == 1:
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			for _, a := range acts {
				io.WriteString(zw, a.Format())
				io.WriteString(zw, "\n")
			}
			if err = zw.Close(); err == nil {
				err = os.WriteFile(filepath.Join(dir, trace.GzipFileName(r)), buf.Bytes(), 0o644)
			}
		default:
			var buf bytes.Buffer
			if err = trace.EncodeBinary(&buf, acts); err == nil {
				err = os.WriteFile(filepath.Join(dir, trace.BinaryFileName(r)), buf.Bytes(), 0o644)
			}
		}
		if err != nil {
			tb.Fatal(err)
		}
	}
}

// bytesReader wraps a request body literal.
func bytesReader(s string) io.Reader { return strings.NewReader(s) }

// testDaemon is a Server behind an httptest listener.
type testDaemon struct {
	srv  *Server
	http *httptest.Server
}

func newTestDaemon(tb testing.TB, cfg Config) *testDaemon {
	tb.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return &testDaemon{srv: s, http: ts}
}

// post sends body to path and returns status, X-Cache and the response body.
func (d *testDaemon) post(tb testing.TB, path, body string) (status int, xcache string, resp []byte) {
	tb.Helper()
	r, err := http.Post(d.http.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer r.Body.Close()
	b, err := io.ReadAll(r.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return r.StatusCode, r.Header.Get("X-Cache"), b
}

// get fetches path and returns status and body.
func (d *testDaemon) get(tb testing.TB, path string) (int, []byte) {
	tb.Helper()
	r, err := http.Get(d.http.URL + path)
	if err != nil {
		tb.Fatal(err)
	}
	defer r.Body.Close()
	b, err := io.ReadAll(r.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return r.StatusCode, b
}

// uploadLU registers an LU trace set inline and returns its digest.
func (d *testDaemon) uploadLU(tb testing.TB, class npb.Class, procs int) string {
	tb.Helper()
	body, err := json.Marshal(uploadRequest{Traces: luTexts(tb, class, procs)})
	if err != nil {
		tb.Fatal(err)
	}
	status, _, resp := d.post(tb, "/traces", string(body))
	if status != http.StatusOK {
		tb.Fatalf("upload: status %d: %s", status, resp)
	}
	var up uploadResponse
	if err := json.Unmarshal(resp, &up); err != nil {
		tb.Fatal(err)
	}
	return up.Digest
}
