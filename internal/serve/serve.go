// Package serve turns the replay stack into a long-running service: a
// resident daemon holding a content-addressed store of parsed traces, a
// warm cache of built platforms, and a single-flight cache of sweep results,
// executing sweep requests on one shared worker pool.
//
// This is the paper's economics taken to its conclusion. Acquiring a
// time-independent trace is expensive and done once; every what-if question
// against it is deterministic, so the unit of work worth optimizing is the
// scenario-hour served, not the process launched. The daemon parses a trace
// once (mmapped binary traces are shared straight out of the page cache),
// answers repeated questions from cache byte-identically with zero replay,
// coalesces identical concurrent questions onto one kernel run, and sheds
// load crisply (429 + Retry-After) when the admission queue is full.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tireplay/internal/metrics"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/sweep"
	"tireplay/internal/synth"
	"tireplay/internal/trace"
)

// StatusClientClosedRequest reports a request whose client disconnected
// before the outcome was ready (nginx's conventional 499).
const StatusClientClosedRequest = 499

// Config parameterises the daemon.
type Config struct {
	// TraceBudget bounds the trace store in bytes (<= 0: 1 GiB).
	TraceBudget int64
	// ResultBudget bounds the result cache in bytes (<= 0: 256 MiB).
	ResultBudget int64
	// MaxConcurrent bounds sweeps executing at once (<= 0: 2).
	MaxConcurrent int
	// MaxQueue bounds sweeps waiting for a slot; beyond it requests are
	// shed with 429 (< 0: 0).
	MaxQueue int
	// Workers is the shared engine pool width (<= 0: GOMAXPROCS).
	Workers int
	// MaxScenarios bounds one request's grid size (<= 0: 4096).
	MaxScenarios int
	// MaxBodyBytes bounds a request body (<= 0: 64 MiB).
	MaxBodyBytes int64
	// AllowPaths permits registering traces from daemon-local directories
	// via POST /traces {"path": ...}. Leave off when untrusted clients can
	// reach the daemon.
	AllowPaths bool
	// RetryAfter is the Retry-After hint in seconds on shed requests
	// (<= 0: 1).
	RetryAfter int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxScenarios <= 0 {
		c.MaxScenarios = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	return c
}

// Server is the daemon state behind the HTTP surface.
type Server struct {
	cfg       Config
	engine    *sweep.Engine
	traces    *TraceStore
	platforms *platformCache
	results   *resultCache
	flights   *flightGroup
	admitted  *admission

	baseCtx context.Context
	cancel  context.CancelFunc
	start   time.Time

	requests        atomic.Int64
	sweepsRun       atomic.Int64
	scenariosServed atomic.Int64

	bodies sync.Pool // *bytes.Buffer
}

// New builds a Server; Close it when done.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:       cfg,
		engine:    sweep.NewEngine(cfg.Workers),
		traces:    NewTraceStore(cfg.TraceBudget),
		platforms: newPlatformCache(),
		results:   newResultCache(cfg.ResultBudget),
		flights:   newFlightGroup(),
		admitted:  newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		baseCtx:   ctx,
		cancel:    cancel,
		start:     time.Now(),
		bodies:    sync.Pool{New: func() any { return new(bytes.Buffer) }},
	}
}

// Close aborts in-flight sweeps, stops the engine pool and releases the
// trace store. In-flight requests return errors; call after (or while)
// draining the HTTP listener.
func (s *Server) Close() {
	s.cancel()
	s.engine.Close()
	s.traces.Close()
}

// Abort cancels in-flight sweeps without stopping the engine — the
// shutdown grace hammer: handlers return promptly, then Close finishes.
func (s *Server) Abort() { s.cancel() }

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /traces", s.handleTraceUpload)
	mux.HandleFunc("GET /traces", s.handleTraceList)
	mux.HandleFunc("POST /sweeps", s.handleSweep)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// httpError is an outcome with a status; its message lands in the JSON
// error body.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// readBody drains the request body into a pooled buffer. The returned bytes
// are valid until release is called.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (body []byte, release func(), err error) {
	buf := s.bodies.Get().(*bytes.Buffer)
	buf.Reset()
	lr := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if _, err := buf.ReadFrom(lr); err != nil {
		s.bodies.Put(buf)
		return nil, nil, err
	}
	return buf.Bytes(), func() { s.bodies.Put(buf) }, nil
}

// ---- POST /traces -------------------------------------------------------

// uploadRequest registers a trace set: either the per-rank trace texts
// inline, or (when the daemon allows it) a daemon-local directory in the
// layout tau2ti emits.
type uploadRequest struct {
	// Traces holds the per-rank time-independent traces, text encoding,
	// rank order.
	Traces []string `json:"traces,omitempty"`
	// Path and Ranks register SG_process<r>.trace(.gz)/.tib files from a
	// daemon-local directory; binary traces stay memory-mapped.
	Path  string `json:"path,omitempty"`
	Ranks int    `json:"ranks,omitempty"`
}

// uploadResponse names the registered set.
type uploadResponse struct {
	Digest  string `json:"digest"`
	Ranks   int    `json:"ranks"`
	Bytes   int64  `json:"bytes"`
	Existed bool   `json:"existed"`
}

func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer release()
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req uploadRequest
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad upload request: "+err.Error())
		return
	}
	var resp *uploadResponse
	var herr *httpError
	switch {
	case len(req.Traces) > 0 && req.Path != "":
		herr = httpErrorf(http.StatusBadRequest, "give traces or path, not both")
	case len(req.Traces) > 0:
		resp, herr = s.registerInline(req.Traces)
	case req.Path != "":
		resp, herr = s.registerPath(req.Path, req.Ranks)
	default:
		herr = httpErrorf(http.StatusBadRequest, "empty upload: need traces or path")
	}
	if herr != nil {
		writeJSONError(w, herr.status, herr.msg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// registerInline stores per-rank trace texts uploaded in the request body.
func (s *Server) registerInline(texts []string) (*uploadResponse, *httpError) {
	d := trace.NewDigester()
	var bytes int64
	for _, t := range texts {
		d.Rank([]byte(t))
		bytes += int64(len(t))
	}
	digest := d.Sum()
	resp := &uploadResponse{Digest: digest, Ranks: len(texts), Bytes: bytes}
	if s.traces.Touch(digest) {
		resp.Existed = true
		return resp, nil
	}
	perRank := make([][]trace.Action, len(texts))
	for r, t := range texts {
		acts, err := trace.ParseAll(strings.NewReader(t))
		if err != nil {
			return nil, httpErrorf(http.StatusBadRequest, "rank %d: %v", r, err)
		}
		perRank[r] = acts
	}
	resp.Existed = s.traces.Add(digest, sweep.TracesFromActions(perRank), bytes)
	return resp, nil
}

// registerPath stores a trace set resolved from a daemon-local directory.
func (s *Server) registerPath(dir string, ranks int) (*uploadResponse, *httpError) {
	if !s.cfg.AllowPaths {
		return nil, httpErrorf(http.StatusForbidden, "path registration is disabled")
	}
	if ranks <= 0 {
		return nil, httpErrorf(http.StatusBadRequest, "path registration needs a positive ranks count")
	}
	paths := make([]string, ranks)
	for r := 0; r < ranks; r++ {
		p, err := resolveTraceFile(dir, r)
		if err != nil {
			return nil, httpErrorf(http.StatusBadRequest, "%v", err)
		}
		paths[r] = p
	}
	digest, bytes, err := trace.DigestFiles(paths)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	resp := &uploadResponse{Digest: digest, Ranks: ranks, Bytes: bytes}
	if s.traces.Touch(digest) {
		resp.Existed = true
		return resp, nil
	}
	ts, err := sweep.LoadDir(dir, ranks)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	if s.traces.Add(digest, ts, bytes) {
		// A racing registration beat us; ours was not adopted.
		ts.Close()
		resp.Existed = true
	}
	return resp, nil
}

// resolveTraceFile locates rank r's trace file under dir, preferring the
// same encoding order as the sweep loader.
func resolveTraceFile(dir string, r int) (string, error) {
	names := []string{trace.ProcessFileName(r), trace.GzipFileName(r), trace.BinaryFileName(r)}
	for _, name := range names {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
	}
	return "", fmt.Errorf("no trace for rank %d under %s (tried %s)",
		r, dir, strings.Join(names, ", "))
}

func (s *Server) handleTraceList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.traces.List())
}

// ---- POST /sweeps -------------------------------------------------------

// GridSpec is the scenario grid of a sweep request, every axis in the
// corresponding tisweep flag syntax.
type GridSpec struct {
	Lat   string `json:"lat,omitempty"`
	Bw    string `json:"bw,omitempty"`
	Power string `json:"power,omitempty"`
	Fold  string `json:"fold,omitempty"`
	Hosts string `json:"hosts,omitempty"`
	Coll  string `json:"coll,omitempty"`
	Topo  string `json:"topo,omitempty"`
	Fault string `json:"fault,omitempty"`
	Ckpt  string `json:"ckpt,omitempty"`
	// World is the synthetic world-size axis ("1024,4096,16384"; 0 is the
	// recorded world). Positive entries regenerate rank streams from the
	// request's synth model instead of the stored trace.
	World string `json:"world,omitempty"`
}

// SynthSpec carries the fitted statistical model (tigen fit output) that
// synthetic worlds regenerate from, plus the generation knobs. The model
// travels inline so the response stays a pure function of the request body;
// its canonical re-encoding is content-hashed into the cache key, so two
// spellings of the same model share one cache entry.
type SynthSpec struct {
	// Model is the fitted model JSON exactly as tigen fit emits it.
	Model json.RawMessage `json:"model"`
	// Scale is the scaling law: "weak" (default), "strong", or explicit
	// exponents like "compute=-1:bytes=-0.5".
	Scale string `json:"scale,omitempty"`
	// Seed seeds the deterministic jitter stream.
	Seed uint64 `json:"seed,omitempty"`
	// Jitter perturbs compute volumes by a factor uniform in [1-j, 1+j),
	// deterministically per (seed, rank, op).
	Jitter float64 `json:"jitter,omitempty"`
}

// SweepRequest asks the daemon to replay a stored trace over a scenario
// grid. The response body is a deterministic function of the request's
// canonical form: execution-only knobs (fork) never appear in it, so
// repeated questions are served from cache byte-identically.
type SweepRequest struct {
	// Trace is the content digest of a stored trace set ("sha256:...").
	// Optional when every grid cell is synthetic (a world axis with no 0
	// entry): those sweeps replay worlds nobody recorded.
	Trace string `json:"trace,omitempty"`
	// Platform is a builtin base-platform spec ("bordereau:8" or
	// "bordereau:8x4"); empty means bordereau sized to the largest world
	// in the sweep (the trace's ranks when there is no world axis).
	// Ignored when every grid cell sets a topology.
	Platform string   `json:"platform,omitempty"`
	Grid     GridSpec `json:"grid"`
	// Synth supplies the fitted model that positive grid.world entries
	// regenerate from; required exactly when the grid has one.
	Synth *SynthSpec `json:"synth,omitempty"`
	// NoMPIModel disables the piece-wise linear MPI model.
	NoMPIModel bool `json:"no_mpi_model,omitempty"`
	// Partition splits scenarios across kernels per disjoint platform
	// component.
	Partition bool `json:"partition,omitempty"`
	// Fork toggles shared-prefix forking (default on). Forking is proven
	// result-identical, so this knob does not shape the response and is
	// not part of the cache key.
	Fork *bool `json:"fork,omitempty"`
	// Timed includes each scenario's timed trace in the response
	// (base64); traces are byte-identical on every execution.
	Timed bool `json:"timed,omitempty"`
	// Profile includes per-process profiles in the response.
	Profile bool `json:"profile,omitempty"`
	// Metrics includes each scenario's time-resolved POP metrics report
	// in the response. The report is deterministic, so metrics responses
	// cache and coalesce like any other.
	Metrics bool `json:"metrics,omitempty"`
	// MetricsWindows sets the number of fixed time windows for Metrics
	// (0: default 10). Part of the canonical cache key.
	MetricsWindows int `json:"metrics_windows,omitempty"`
}

// ScenarioRow is one scenario's deterministic outcome.
type ScenarioRow struct {
	sweep.Scenario
	Name          string                `json:"name"`
	SimulatedTime float64               `json:"simulated_time"`
	Actions       int64                 `json:"actions"`
	Components    int                   `json:"components"`
	Resilience    *replay.Resilience    `json:"resilience,omitempty"`
	Profile       []*replay.ProcProfile `json:"profile,omitempty"`
	Metrics       *metrics.Report       `json:"metrics,omitempty"`
	Timed         []byte                `json:"timed,omitempty"`
	Err           string                `json:"err,omitempty"`
}

// SweepResponse is the deterministic response body of POST /sweeps.
// Execution facts that vary run to run — wall time, worker count, fork
// reuse — are deliberately absent (headers and /stats carry them), so the
// body is a pure function of (trace digest, canonical request) and stays
// byte-identical between a replayed and a cached answer.
type SweepResponse struct {
	Trace     string        `json:"trace,omitempty"`
	Platform  string        `json:"platform,omitempty"`
	Scenarios []ScenarioRow `json:"scenarios"`
}

// sweepPlan is a parsed, canonicalized sweep request.
type sweepPlan struct {
	key                             string // canonical cache key
	digest                          string // empty: all-synthetic, no stored trace
	platKey                         string
	platform                        *platform.Platform
	grid                            sweep.Grid
	synth                           *synth.Model
	synthSpec                       synth.Spec
	synthKey                        string // canonical model+knobs identity
	identity                        bool
	partition, timed, profile, fork bool
	metrics                         bool
	metricsWindows                  int
}

// parseSweep decodes, validates and canonicalizes a request body.
func (s *Server) parseSweep(body []byte) (*sweepPlan, *httpError) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "bad sweep request: %v", err)
	}
	worlds, err := sweep.ParseWorldList(req.Grid.World)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "bad grid: %v", err)
	}
	// The stored trace is needed unless every cell is synthetic: no world
	// axis means the whole grid replays the stored set, and a 0 entry on
	// the axis is the recorded world.
	needTrace := len(worlds) == 0
	maxWorld := 0
	for _, w := range worlds {
		if w == 0 {
			needTrace = true
		} else if req.Synth == nil {
			return nil, httpErrorf(http.StatusBadRequest,
				"grid world %d needs a synth model to regenerate from", w)
		}
		if w > maxWorld {
			maxWorld = w
		}
	}
	if req.Synth != nil && maxWorld == 0 {
		return nil, httpErrorf(http.StatusBadRequest,
			"synth model without a positive grid world axis; drop it or add one")
	}
	ranks := 0
	if req.Trace != "" {
		var ok bool
		if ranks, ok = s.traces.Ranks(req.Trace); !ok {
			return nil, httpErrorf(http.StatusNotFound, "unknown trace %s", req.Trace)
		}
	} else if needTrace {
		return nil, httpErrorf(http.StatusBadRequest, "missing trace digest")
	}

	p := &sweepPlan{digest: req.Trace, identity: req.NoMPIModel,
		partition: req.Partition, timed: req.Timed, profile: req.Profile, fork: true,
		metrics: req.Metrics || req.MetricsWindows > 0}
	if p.metrics {
		p.metricsWindows = req.MetricsWindows
	}
	if req.Fork != nil {
		p.fork = *req.Fork
	}
	g := &p.grid
	g.World = worlds
	if g.LatencyScale, err = sweep.ParseFloatList(req.Grid.Lat); err == nil {
		if g.BandwidthScale, err = sweep.ParseFloatList(req.Grid.Bw); err == nil {
			if g.PowerScale, err = sweep.ParseFloatList(req.Grid.Power); err == nil {
				if g.Fold, err = sweep.ParseIntList(req.Grid.Fold); err == nil {
					if g.Hosts, err = sweep.ParseIntList(req.Grid.Hosts); err == nil {
						if g.Coll, err = sweep.ParseCollList(req.Grid.Coll); err == nil {
							if g.Topo, err = sweep.ParseTopoList(req.Grid.Topo); err == nil {
								if g.Faults, err = sweep.ParseFaultList(req.Grid.Fault); err == nil {
									g.Ckpt, err = sweep.ParseCkptList(req.Grid.Ckpt)
								}
							}
						}
					}
				}
			}
		}
	}
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "bad grid: %v", err)
	}
	if n := p.grid.Size(); n > s.cfg.MaxScenarios {
		return nil, httpErrorf(http.StatusBadRequest,
			"grid expands to %d scenarios, limit %d", n, s.cfg.MaxScenarios)
	}

	if req.Synth != nil {
		var herr *httpError
		if p.synth, p.synthSpec, p.synthKey, herr = parseSynth(req.Synth, worlds); herr != nil {
			return nil, herr
		}
	}

	// The base platform only exists when some cell needs it; a pure
	// topology sweep replays entirely on generated fabrics. The default
	// must hold the largest world of the sweep, synthetic cells included.
	if len(p.grid.Topo) == 0 {
		spec := req.Platform
		if spec == "" {
			n := ranks
			if maxWorld > n {
				n = maxWorld
			}
			spec = fmt.Sprintf("bordereau:%d", n)
		}
		key, plat, _, err := s.platforms.get(spec)
		if err != nil {
			return nil, httpErrorf(http.StatusBadRequest, "%v", err)
		}
		p.platKey, p.platform = key, plat
	} else if req.Platform != "" {
		return nil, httpErrorf(http.StatusBadRequest,
			"platform is ignored when every cell sets a topology; drop it")
	}

	p.key = canonicalSweepKey(p)
	return p, nil
}

// parseSynth decodes and validates the request's fitted model and derives
// its canonical identity: the sha256 of the model's canonical re-encoding
// plus the generation knobs in canonical spelling, so equivalent spellings
// of one model share a cache entry and one in-flight execution.
func parseSynth(req *SynthSpec, worlds []int) (*synth.Model, synth.Spec, string, *httpError) {
	var zero synth.Spec
	if len(req.Model) == 0 {
		return nil, zero, "", httpErrorf(http.StatusBadRequest, "synth needs a model (tigen fit JSON)")
	}
	m, err := synth.ReadModel(bytes.NewReader(req.Model))
	if err != nil {
		return nil, zero, "", httpErrorf(http.StatusBadRequest, "bad synth model: %v", err)
	}
	spec := synth.Spec{Seed: req.Seed, Jitter: req.Jitter}
	if req.Scale != "" {
		if spec.Law, err = synth.ParseLaw(req.Scale); err != nil {
			return nil, zero, "", httpErrorf(http.StatusBadRequest, "bad synth scale: %v", err)
		}
	}
	// Every synthetic world must be generable before the sweep is admitted:
	// a world the model's grid cannot tile is the client's mistake (400),
	// not a mid-sweep failure.
	for _, w := range worlds {
		if w == 0 {
			continue
		}
		ws := spec
		ws.World = w
		if _, err := synth.NewGen(m, ws); err != nil {
			return nil, zero, "", httpErrorf(http.StatusBadRequest, "synth world %d: %v", w, err)
		}
	}
	var canon bytes.Buffer
	if err := m.WriteJSON(&canon); err != nil {
		return nil, zero, "", httpErrorf(http.StatusInternalServerError, "synth model: %v", err)
	}
	sum := sha256.Sum256(canon.Bytes())
	id := fmt.Sprintf("%x scale=%s seed=%d jitter=%s",
		sum, spec.Law.String(), spec.Seed, strconv.FormatFloat(spec.Jitter, 'g', -1, 64))
	return m, spec, id, nil
}

// canonicalSweepKey renders the request's canonical identity: the trace
// digest, the canonical platform key, the model and output options, and
// every grid axis re-rendered canonically with defaults applied — so two
// requests that expand to the same scenarios share one cache entry and one
// in-flight execution, however they were spelled.
func canonicalSweepKey(p *sweepPlan) string {
	var b strings.Builder
	b.WriteString(p.digest)
	b.WriteByte('\n')
	b.WriteString(p.platKey)
	fmt.Fprintf(&b, "\nmodel=%t part=%t timed=%t prof=%t metrics=%t win=%d",
		p.identity, p.partition, p.timed, p.profile, p.metrics, p.metricsWindows)
	b.WriteString("\nlat=")
	writeFloats(&b, p.grid.LatencyScale)
	b.WriteString("\nbw=")
	writeFloats(&b, p.grid.BandwidthScale)
	b.WriteString("\npow=")
	writeFloats(&b, p.grid.PowerScale)
	b.WriteString("\nfold=")
	writeInts(&b, p.grid.Fold, 1)
	b.WriteString("\nhosts=")
	writeInts(&b, p.grid.Hosts, 0)
	b.WriteString("\ncoll=")
	if len(p.grid.Coll) == 0 {
		b.WriteString("default")
	}
	for i, c := range p.grid.Coll {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(c.String())
	}
	b.WriteString("\ntopo=")
	for i, t := range p.grid.Topo {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteString("\nfault=")
	if len(p.grid.Faults) == 0 {
		b.WriteString("none")
	}
	for i, f := range p.grid.Faults {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(f.String())
	}
	b.WriteString("\nckpt=")
	if len(p.grid.Ckpt) == 0 {
		b.WriteString("none")
	}
	for i, c := range p.grid.Ckpt {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(c.String())
	}
	b.WriteString("\nworld=")
	writeInts(&b, p.grid.World, 0)
	b.WriteString("\nsynth=")
	if p.synthKey == "" {
		b.WriteString("none")
	} else {
		b.WriteString(p.synthKey)
	}
	return b.String()
}

func writeFloats(b *strings.Builder, vs []float64) {
	if len(vs) == 0 {
		b.WriteByte('1')
		return
	}
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
}

func writeInts(b *strings.Builder, vs []int, def int) {
	if len(vs) == 0 {
		b.WriteString(strconv.Itoa(def))
		return
	}
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
}

// sweepOutcome is the computed reply of one sweep request.
type sweepOutcome struct {
	status     int
	cache      string // "hit", "coalesced", "miss" or "" (not cacheable)
	body       []byte
	retryAfter bool
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, release, err := s.readBody(w, r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer release()
	out := s.sweepFromBody(r.Context(), body)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if out.cache != "" {
		h.Set("X-Cache", out.cache)
	}
	if out.retryAfter {
		h.Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// errorBody renders the JSON error payload of a non-200 outcome.
func errorBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return append(b, '\n')
}

// sweepFromBody is the request path under the HTTP envelope: raw body in,
// status/body out. The first layer — hash the body, look it up, serve the
// stored bytes — is allocation-free, so a repeated byte-identical request
// costs no replay, no JSON decode and no garbage.
func (s *Server) sweepFromBody(ctx context.Context, body []byte) sweepOutcome {
	bodyHash := sha256.Sum256(body)
	if b := s.results.lookupBody(bodyHash); b != nil {
		return sweepOutcome{status: http.StatusOK, cache: "hit", body: b}
	}

	plan, herr := s.parseSweep(body)
	if herr != nil {
		return sweepOutcome{status: herr.status, body: errorBody(herr.msg)}
	}
	if b := s.results.lookup(plan.key, bodyHash); b != nil {
		return sweepOutcome{status: http.StatusOK, cache: "hit", body: b}
	}

	f, fctx, runner := s.flights.enter(s.baseCtx, plan.key)
	// Wire this participant's disconnect into the flight: the sweep is
	// cancelled only when the last interested client is gone.
	stop := context.AfterFunc(ctx, f.leave)
	defer stop()
	if !runner {
		select {
		case <-f.done:
			return sweepOutcome{status: f.status, cache: "coalesced", body: f.body,
				retryAfter: f.status == http.StatusTooManyRequests}
		case <-ctx.Done():
			return sweepOutcome{status: StatusClientClosedRequest,
				body: errorBody("client disconnected")}
		}
	}
	defer s.flights.exit(plan.key, f)
	out := s.runSweep(fctx, plan, bodyHash)
	f.settle(out.status, out.body)
	out.cache = "miss"
	return out
}

// runSweep executes one admitted sweep and caches a fully successful
// response.
func (s *Server) runSweep(ctx context.Context, plan *sweepPlan, bodyHash [32]byte) sweepOutcome {
	// Re-check the cache now that this flight owns the key: a previous
	// flight may have stored the result between our miss and our enter,
	// and a cached answer must never burn an admission slot.
	if b := s.results.recheck(plan.key, bodyHash); b != nil {
		return sweepOutcome{status: http.StatusOK, body: b}
	}
	ok, shed := s.admitted.enter(ctx)
	if shed {
		return sweepOutcome{status: http.StatusTooManyRequests,
			body: errorBody("admission queue full; retry later"), retryAfter: true}
	}
	if !ok {
		return sweepOutcome{status: StatusClientClosedRequest,
			body: errorBody("canceled while queued")}
	}
	defer s.admitted.leave()

	var traces *sweep.TraceSet
	if plan.digest != "" {
		th, ok := s.traces.Acquire(plan.digest)
		if !ok {
			// Evicted between parse and admission; the client re-uploads.
			return sweepOutcome{status: http.StatusNotFound,
				body: errorBody("trace " + plan.digest + " no longer stored")}
		}
		defer th.Release()
		traces = th.Set()
	}

	cfg := &sweep.Config{
		Platform:       plan.platform,
		Grid:           plan.grid,
		Traces:         traces,
		Synth:          plan.synth,
		SynthSpec:      plan.synthSpec,
		Timed:          plan.timed,
		Profile:        plan.profile,
		Metrics:        plan.metrics,
		MetricsWindows: plan.metricsWindows,
		Partition:      plan.partition,
		Fork:           plan.fork,
	}
	if plan.identity {
		cfg.Model = smpi.Identity()
	}
	res, err := s.engine.Run(ctx, cfg)
	s.sweepsRun.Add(1)
	if err != nil {
		return sweepOutcome{status: http.StatusServiceUnavailable,
			body: errorBody("sweep canceled: " + err.Error())}
	}
	s.scenariosServed.Add(int64(len(res.Scenarios)))

	resp := SweepResponse{Trace: plan.digest, Platform: plan.platKey,
		Scenarios: make([]ScenarioRow, len(res.Scenarios))}
	clean := true
	for i := range res.Scenarios {
		sc := &res.Scenarios[i]
		resp.Scenarios[i] = ScenarioRow{
			Scenario: sc.Scenario, Name: sc.Name,
			SimulatedTime: sc.SimulatedTime, Actions: sc.Actions,
			Components: sc.Components, Resilience: sc.Resilience,
			Profile: sc.Profile, Metrics: sc.Metrics, Timed: sc.TimedTrace, Err: sc.Err,
		}
		if sc.Err != "" {
			clean = false
		}
	}
	b, merr := json.Marshal(&resp)
	if merr != nil {
		return sweepOutcome{status: http.StatusInternalServerError, body: errorBody(merr.Error())}
	}
	b = append(b, '\n')
	// Only fully successful sweeps are cached: per-scenario errors are
	// legitimate results (a faulted cell aborting is the answer), but a
	// panic message may embed nondeterministic detail, so err rows make
	// the whole response uncacheable rather than risk pinning one.
	if clean {
		s.results.store(plan.key, bodyHash, b)
	}
	return sweepOutcome{status: http.StatusOK, body: b}
}

// ---- GET /healthz, GET /stats ------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Stats is the /stats snapshot.
type Stats struct {
	UptimeSeconds   float64            `json:"uptime_seconds"`
	Requests        int64              `json:"requests"`
	SweepsRun       int64              `json:"sweeps_run"`
	ScenariosServed int64              `json:"scenarios_served"`
	Inflight        int                `json:"inflight"`
	Coalesced       int64              `json:"coalesced"`
	EngineWorkers   int                `json:"engine_workers"`
	Cache           resultCacheStats   `json:"cache"`
	Queue           admissionStats     `json:"queue"`
	Traces          TraceStoreStats    `json:"traces"`
	Platforms       platformCacheStats `json:"platforms"`
}

// Snapshot collects the daemon counters.
func (s *Server) Snapshot() Stats {
	inflight, coalesced := s.flights.stats()
	return Stats{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.requests.Load(),
		SweepsRun:       s.sweepsRun.Load(),
		ScenariosServed: s.scenariosServed.Load(),
		Inflight:        inflight,
		Coalesced:       coalesced,
		EngineWorkers:   s.engine.Workers(),
		Cache:           s.results.stats(),
		Queue:           s.admitted.stats(),
		Traces:          s.traces.Stats(),
		Platforms:       s.platforms.stats(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}
