package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"tireplay/internal/npb"
)

// TestSweepMetricsServed pins the metrics surface of POST /sweeps: a
// request with "metrics": true gets a POP report per scenario row, the
// report is part of the canonical identity (a metrics request does not
// collide with the plain request's cache entry), and a repeated metrics
// request serves the identical bytes from cache.
func TestSweepMetricsServed(t *testing.T) {
	d := newTestDaemon(t, Config{})
	digest := d.uploadLU(t, npb.ClassS, 4)

	plain := fmt.Sprintf(`{"trace": %q}`, digest)
	metered := fmt.Sprintf(`{"trace": %q, "metrics": true}`, digest)

	status, _, body := d.post(t, "/sweeps", plain)
	if status != http.StatusOK {
		t.Fatalf("plain sweep: %d: %s", status, body)
	}
	var pr SweepResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Scenarios[0].Metrics != nil {
		t.Fatal("plain sweep grew a metrics report")
	}

	status, xcache, body := d.post(t, "/sweeps", metered)
	if status != http.StatusOK {
		t.Fatalf("metrics sweep: %d: %s", status, body)
	}
	if xcache != "miss" {
		t.Fatalf("metrics request hit the plain request's cache entry: X-Cache=%q", xcache)
	}
	var mr SweepResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	m := mr.Scenarios[0].Metrics
	if m == nil {
		t.Fatal("metrics sweep returned no report")
	}
	if len(m.Ranks) != 4 || len(m.Windows) != 10 {
		t.Fatalf("report shape: %d ranks, %d windows", len(m.Ranks), len(m.Windows))
	}
	if m.Summary.ParallelEff <= 0 || m.Summary.ParallelEff > 1 {
		t.Fatalf("parallel eff %g out of range", m.Summary.ParallelEff)
	}
	if mr.Scenarios[0].SimulatedTime != pr.Scenarios[0].SimulatedTime {
		t.Fatal("metrics changed the predicted makespan")
	}

	status, xcache, body2 := d.post(t, "/sweeps", metered)
	if status != http.StatusOK || xcache != "hit" {
		t.Fatalf("repeat: status %d X-Cache %q", status, xcache)
	}
	if string(body) != string(body2) {
		t.Fatal("cached metrics response differs from the computed one")
	}

	// metrics_windows is part of the key too: a different resolution is a
	// different question.
	status, xcache, _ = d.post(t, "/sweeps",
		fmt.Sprintf(`{"trace": %q, "metrics": true, "metrics_windows": 5}`, digest))
	if status != http.StatusOK || xcache != "miss" {
		t.Fatalf("windowed request: status %d X-Cache %q", status, xcache)
	}
}
