package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"tireplay/internal/npb"
)

// TestUploadSweepAndCacheHit is the core service contract: upload once,
// sweep once (miss), ask again (hit) and get the identical bytes back with
// zero additional replay.
func TestUploadSweepAndCacheHit(t *testing.T) {
	d := newTestDaemon(t, Config{})
	dig := d.uploadLU(t, npb.ClassS, 4)

	body := fmt.Sprintf(`{"trace":%q,"grid":{"coll":"default;bcast=binomial","lat":"1,2"}}`, dig)
	st, xc, first := d.post(t, "/sweeps", body)
	if st != http.StatusOK || xc != "miss" {
		t.Fatalf("first sweep: status %d cache %q: %s", st, xc, first)
	}
	var resp SweepResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Scenarios) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(resp.Scenarios))
	}
	for i, sc := range resp.Scenarios {
		if sc.Err != "" {
			t.Fatalf("scenario %d failed: %s", i, sc.Err)
		}
		if sc.SimulatedTime <= 0 || sc.Actions <= 0 {
			t.Fatalf("scenario %d: empty outcome %+v", i, sc)
		}
	}
	if resp.Trace != dig {
		t.Fatalf("response names trace %q, want %q", resp.Trace, dig)
	}

	st, xc, second := d.post(t, "/sweeps", body)
	if st != http.StatusOK || xc != "hit" {
		t.Fatalf("second sweep: status %d cache %q", st, xc)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached response is not byte-identical to the computed one")
	}
	if runs := d.srv.sweepsRun.Load(); runs != 1 {
		t.Fatalf("served the repeat from cache but ran %d sweeps", runs)
	}
	stats := d.srv.Snapshot()
	if stats.Cache.BodyHits != 1 {
		t.Fatalf("expected 1 body-hash hit, got %+v", stats.Cache)
	}
	// One fresh sweep is exactly one miss: the flight's post-enter
	// re-check must not count a second one.
	if stats.Cache.Misses != 1 {
		t.Fatalf("expected 1 cache miss for one fresh sweep, got %+v", stats.Cache)
	}
}

// TestCanonicalSpellingHits exercises the canonical layer: requests that
// differ in JSON formatting, axis spelling or execution-only options share
// one cache entry.
func TestCanonicalSpellingHits(t *testing.T) {
	d := newTestDaemon(t, Config{})
	dig := d.uploadLU(t, npb.ClassS, 4)

	base := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2","bw":"1"}}`, dig)
	st, xc, first := d.post(t, "/sweeps", base)
	if st != http.StatusOK || xc != "miss" {
		t.Fatalf("base: status %d cache %q: %s", st, xc, first)
	}

	variants := []string{
		// Reordered keys, extra whitespace.
		fmt.Sprintf(`{ "grid": {"bw":"1", "lat":"1,2"}, "trace": %q }`, dig),
		// Axis value respelled ("1.0" parses to the same float as "1").
		fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1.0, 2.0","bw":"1.0"}}`, dig),
		// Default bw axis omitted entirely.
		fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2"}}`, dig),
		// Fork disabled: execution-only, result-identical by construction.
		fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2"},"fork":false}`, dig),
		// Explicit platform naming the default.
		fmt.Sprintf(`{"trace":%q,"platform":"bordereau:4","grid":{"lat":"1,2"}}`, dig),
	}
	for i, v := range variants {
		st, xc, got := d.post(t, "/sweeps", v)
		if st != http.StatusOK || xc != "hit" {
			t.Fatalf("variant %d: status %d cache %q: %s", i, st, xc, got)
		}
		if !bytes.Equal(first, got) {
			t.Fatalf("variant %d: response differs from base", i)
		}
	}
	if runs := d.srv.sweepsRun.Load(); runs != 1 {
		t.Fatalf("variants replayed: %d sweeps run, want 1", runs)
	}
}

// TestUploadPathMixedEncodings registers a trace directory holding text,
// gzip and binary ranks; the sweep must replay it like the inline upload,
// and re-registration must dedup to the same digest.
func TestUploadPathMixedEncodings(t *testing.T) {
	d := newTestDaemon(t, Config{AllowPaths: true})
	dir := t.TempDir()
	writeTraceDir(t, dir, luActions(t, npb.ClassS, 4))

	body, _ := json.Marshal(uploadRequest{Path: dir, Ranks: 4})
	st, _, resp := d.post(t, "/traces", string(body))
	if st != http.StatusOK {
		t.Fatalf("register: status %d: %s", st, resp)
	}
	var up uploadResponse
	if err := json.Unmarshal(resp, &up); err != nil {
		t.Fatal(err)
	}
	if up.Existed || up.Ranks != 4 || !strings.HasPrefix(up.Digest, "sha256:") {
		t.Fatalf("bad registration: %+v", up)
	}

	st, _, resp = d.post(t, "/traces", string(body))
	var again uploadResponse
	if err := json.Unmarshal(resp, &again); err != nil {
		t.Fatal(err)
	}
	if st != http.StatusOK || !again.Existed || again.Digest != up.Digest {
		t.Fatalf("re-register: status %d %+v, want existed dedup of %s", st, again, up.Digest)
	}

	sweepBody := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,4"}}`, up.Digest)
	st, _, out := d.post(t, "/sweeps", sweepBody)
	if st != http.StatusOK {
		t.Fatalf("sweep over mapped traces: status %d: %s", st, out)
	}
	var sr SweepResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Scenarios) != 2 || sr.Scenarios[0].Err != "" {
		t.Fatalf("bad sweep result: %s", out)
	}
}

// TestPathRegistrationDisabled verifies the default-off posture.
func TestPathRegistrationDisabled(t *testing.T) {
	d := newTestDaemon(t, Config{})
	body, _ := json.Marshal(uploadRequest{Path: t.TempDir(), Ranks: 2})
	st, _, resp := d.post(t, "/traces", string(body))
	if st != http.StatusForbidden {
		t.Fatalf("path registration without AllowPaths: status %d: %s", st, resp)
	}
}

// TestSweepRequestValidation walks the 4xx surface.
func TestSweepRequestValidation(t *testing.T) {
	d := newTestDaemon(t, Config{MaxScenarios: 8})
	dig := d.uploadLU(t, npb.ClassS, 4)

	cases := []struct {
		name, body string
		status     int
	}{
		{"unknown field", fmt.Sprintf(`{"trace":%q,"grids":{}}`, dig), http.StatusBadRequest},
		{"missing trace", `{"grid":{"lat":"1"}}`, http.StatusBadRequest},
		{"unknown digest", `{"trace":"sha256:00","grid":{"lat":"1"}}`, http.StatusNotFound},
		{"bad axis", fmt.Sprintf(`{"trace":%q,"grid":{"lat":"fast"}}`, dig), http.StatusBadRequest},
		{"grid too big", fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2,3","bw":"1,2,3"}}`, dig), http.StatusBadRequest},
		{"bad platform", fmt.Sprintf(`{"trace":%q,"platform":"gdx:2","grid":{}}`, dig), http.StatusBadRequest},
		{"platform with full topo axis", fmt.Sprintf(`{"trace":%q,"platform":"bordereau:4","grid":{"topo":"fat-tree:4"}}`, dig), http.StatusBadRequest},
		{"not json", `lat=1`, http.StatusBadRequest},
	}
	for _, c := range cases {
		st, _, resp := d.post(t, "/sweeps", c.body)
		if st != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, st, c.status, resp)
		}
	}
	if d.srv.sweepsRun.Load() != 0 {
		t.Fatal("a rejected request reached the engine")
	}

	upCases := []struct {
		name, body string
		status     int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"both modes", `{"traces":["p0 compute 1"],"path":"/tmp/x","ranks":1}`, http.StatusBadRequest},
		{"garbage rank text", `{"traces":["p0 frobnicate 1"]}`, http.StatusBadRequest},
	}
	for _, c := range upCases {
		st, _, resp := d.post(t, "/traces", c.body)
		if st != c.status {
			t.Errorf("upload %s: status %d, want %d (%s)", c.name, st, c.status, resp)
		}
	}
}

// TestTopoSweepNeedsNoPlatform replays a pure topology grid: no base
// platform is resolved and the generated fabrics carry the whole sweep.
func TestTopoSweepNeedsNoPlatform(t *testing.T) {
	d := newTestDaemon(t, Config{})
	dig := d.uploadLU(t, npb.ClassS, 4)
	body := fmt.Sprintf(`{"trace":%q,"grid":{"topo":"fat-tree:4,torus:2x2"}}`, dig)
	st, _, out := d.post(t, "/sweeps", body)
	if st != http.StatusOK {
		t.Fatalf("topo sweep: status %d: %s", st, out)
	}
	var sr SweepResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Platform != "" {
		t.Fatalf("topo-only sweep resolved base platform %q", sr.Platform)
	}
	if len(sr.Scenarios) != 2 || sr.Scenarios[0].Err != "" || sr.Scenarios[1].Err != "" {
		t.Fatalf("bad topo sweep result: %s", out)
	}
	if d.srv.Snapshot().Platforms.Misses != 0 {
		t.Fatal("platform cache was consulted for a topo-only sweep")
	}
}

// TestTimedAndProfileRoundTrip checks the optional outputs survive the JSON
// surface and that they key the cache separately from the bare request.
func TestTimedAndProfileRoundTrip(t *testing.T) {
	d := newTestDaemon(t, Config{})
	dig := d.uploadLU(t, npb.ClassS, 4)

	bare := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1"}}`, dig)
	full := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1"},"timed":true,"profile":true}`, dig)
	if st, _, out := d.post(t, "/sweeps", bare); st != http.StatusOK {
		t.Fatalf("bare: %d %s", st, out)
	}
	st, xc, out := d.post(t, "/sweeps", full)
	if st != http.StatusOK || xc != "miss" {
		t.Fatalf("timed+profile must be a distinct cache key: status %d cache %q", st, xc)
	}
	var sr SweepResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatal(err)
	}
	sc := sr.Scenarios[0]
	if len(sc.Timed) == 0 {
		t.Fatal("timed trace missing from response")
	}
	if len(sc.Profile) != 4 {
		t.Fatalf("profile rows: %d, want 4", len(sc.Profile))
	}
	if !bytes.HasPrefix(sc.Timed, []byte("p0 ")) && !bytes.Contains(sc.Timed, []byte("compute")) {
		t.Fatalf("timed trace does not look like a trace: %q", sc.Timed[:min(len(sc.Timed), 60)])
	}
}

// TestHealthzStatsAndTraceList covers the observability surface.
func TestHealthzStatsAndTraceList(t *testing.T) {
	d := newTestDaemon(t, Config{})
	if st, body := d.get(t, "/healthz"); st != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", st, body)
	}

	dig := d.uploadLU(t, npb.ClassS, 4)
	st, body := d.get(t, "/traces")
	if st != http.StatusOK {
		t.Fatalf("traces list: %d", st)
	}
	var infos []TraceInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Digest != dig || infos[0].Ranks != 4 || infos[0].Refs != 0 {
		t.Fatalf("trace list: %+v", infos)
	}

	d.post(t, "/sweeps", fmt.Sprintf(`{"trace":%q,"grid":{}}`, dig))
	st, body = d.get(t, "/stats")
	if st != http.StatusOK {
		t.Fatalf("stats: %d", st)
	}
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.SweepsRun != 1 || stats.ScenariosServed != 1 || stats.Requests < 3 {
		t.Fatalf("stats counters off: %+v", stats)
	}
	if stats.EngineWorkers < 1 || stats.Queue.Slots < 1 {
		t.Fatalf("stats shape off: %+v", stats)
	}
}

// TestFaultySweepNotCached: a grid whose scenarios abort under fail-stop
// faults returns per-scenario errors as legitimate results but must not be
// pinned in the cache.
func TestFaultySweepNotCached(t *testing.T) {
	d := newTestDaemon(t, Config{})
	dig := d.uploadLU(t, npb.ClassS, 4)
	// kill host 1 early: the replay aborts, which is the answer.
	body := fmt.Sprintf(`{"trace":%q,"grid":{"fault":"host:1@0.01"}}`, dig)
	st, xc, out := d.post(t, "/sweeps", body)
	if st != http.StatusOK {
		t.Fatalf("faulty sweep: status %d: %s", st, out)
	}
	_ = xc
	var sr SweepResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Scenarios[0].Err == "" {
		t.Skip("fault spec did not abort this replay; nothing to assert")
	}
	if st, xc, _ := d.post(t, "/sweeps", body); st != http.StatusOK || xc == "hit" {
		t.Fatalf("errored response was served from cache (status %d cache %q)", st, xc)
	}
	if d.srv.Snapshot().Cache.Entries != 0 {
		t.Fatal("errored response was stored")
	}
}
