package serve

import (
	"container/list"
	"sync"

	"tireplay/internal/sweep"
)

// TraceStore is the daemon's content-addressed trace store: parsed (or
// memory-mapped) TraceSets keyed by the SHA-256 digest of their per-rank
// files, refcounted by the sweeps replaying them and evicted
// least-recently-used under a byte budget.
//
// Eviction and refcounting compose carefully: evicting an entry removes it
// from the index (no new Acquire can find it) but its TraceSet is unmapped
// only when the last live reader releases it — an in-flight sweep never has
// the pages pulled out from under its cursors. The most recently used entry
// is never evicted, so a store whose budget is smaller than one trace still
// serves that trace.
type TraceStore struct {
	mu     sync.Mutex
	budget int64
	bytes  int64 // summed size of indexed entries
	byDig  map[string]*traceEntry
	lru    *list.List // front = most recently used

	evictions   int64
	liveEvicted int64 // evicted entries kept mapped by live readers
	zombieBytes int64 // their summed size
}

// traceEntry is one stored trace set.
type traceEntry struct {
	digest  string
	ts      *sweep.TraceSet
	ranks   int
	bytes   int64
	refs    int
	evicted bool
	elem    *list.Element
}

// TraceInfo describes a stored trace set.
type TraceInfo struct {
	Digest string `json:"digest"`
	Ranks  int    `json:"ranks"`
	Bytes  int64  `json:"bytes"`
	Refs   int    `json:"refs"`
}

// NewTraceStore returns an empty store with the given byte budget
// (<= 0: a 1 GiB default).
func NewTraceStore(budget int64) *TraceStore {
	if budget <= 0 {
		budget = 1 << 30
	}
	return &TraceStore{budget: budget, byDig: make(map[string]*traceEntry), lru: list.New()}
}

// Add registers a parsed trace set under its digest. When the digest is
// already stored, the existing entry is refreshed and kept — the caller's ts
// is NOT adopted and remains the caller's to close — and existed reports the
// dedup. Adding may evict colder entries to fit the budget.
func (s *TraceStore) Add(digest string, ts *sweep.TraceSet, bytes int64) (existed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byDig[digest]; ok {
		s.lru.MoveToFront(e.elem)
		return true
	}
	e := &traceEntry{digest: digest, ts: ts, ranks: ts.Ranks(), bytes: bytes}
	e.elem = s.lru.PushFront(e)
	s.byDig[digest] = e
	s.bytes += bytes
	s.evictOverBudgetLocked(e)
	return false
}

// evictOverBudgetLocked walks the LRU tail evicting entries until the store
// fits its budget, never touching keep (the entry just added or acquired).
// Evicted entries with live readers stay mapped until their last Release.
func (s *TraceStore) evictOverBudgetLocked(keep *traceEntry) {
	for s.bytes > s.budget {
		tail := s.lru.Back()
		if tail == nil {
			return
		}
		e := tail.Value.(*traceEntry)
		if e == keep {
			return // everything colder is gone; the budget is just too small
		}
		s.lru.Remove(tail)
		delete(s.byDig, e.digest)
		s.bytes -= e.bytes
		s.evictions++
		e.evicted = true
		if e.refs > 0 {
			s.liveEvicted++
			s.zombieBytes += e.bytes
		} else {
			e.ts.Close()
		}
	}
}

// Touch reports whether digest is stored, refreshing its LRU position — the
// dedup check of the upload path, taken before parsing anything.
func (s *TraceStore) Touch(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byDig[digest]
	if ok {
		s.lru.MoveToFront(e.elem)
	}
	return ok
}

// Ranks reports the rank count of a stored trace set, refreshing its LRU
// position.
func (s *TraceStore) Ranks(digest string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byDig[digest]
	if !ok {
		return 0, false
	}
	s.lru.MoveToFront(e.elem)
	return e.ranks, true
}

// Acquire takes a read reference on the stored trace set. Every Acquire
// must be paired with exactly one Handle.Release; the set stays mapped
// until then even if it is evicted meanwhile.
func (s *TraceStore) Acquire(digest string) (*TraceHandle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byDig[digest]
	if !ok {
		return nil, false
	}
	e.refs++
	s.lru.MoveToFront(e.elem)
	return &TraceHandle{store: s, entry: e}, true
}

// TraceHandle is one live read reference on a stored trace set.
type TraceHandle struct {
	store *TraceStore
	entry *traceEntry
	once  sync.Once
}

// Set returns the referenced trace set; valid until Release.
func (h *TraceHandle) Set() *sweep.TraceSet { return h.entry.ts }

// Digest returns the content digest of the referenced set.
func (h *TraceHandle) Digest() string { return h.entry.digest }

// Release drops the reference; idempotent. The last release of an evicted
// entry unmaps the set.
func (h *TraceHandle) Release() {
	h.once.Do(func() {
		s := h.store
		s.mu.Lock()
		defer s.mu.Unlock()
		h.entry.refs--
		if h.entry.evicted && h.entry.refs == 0 {
			s.liveEvicted--
			s.zombieBytes -= h.entry.bytes
			h.entry.ts.Close()
		}
	})
}

// List returns the indexed entries, most recently used first.
func (s *TraceStore) List() []TraceInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceInfo, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*traceEntry)
		out = append(out, TraceInfo{Digest: e.digest, Ranks: e.ranks, Bytes: e.bytes, Refs: e.refs})
	}
	return out
}

// TraceStoreStats is the store's /stats snapshot.
type TraceStoreStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Budget      int64 `json:"budget"`
	Evictions   int64 `json:"evictions"`
	LiveEvicted int64 `json:"live_evicted"`
	ZombieBytes int64 `json:"zombie_bytes"`
}

// Stats snapshots the store counters.
func (s *TraceStore) Stats() TraceStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TraceStoreStats{
		Entries: len(s.byDig), Bytes: s.bytes, Budget: s.budget,
		Evictions: s.evictions, LiveEvicted: s.liveEvicted, ZombieBytes: s.zombieBytes,
	}
}

// Close evicts everything; sets held by live readers are unmapped on their
// last Release as usual.
func (s *TraceStore) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*traceEntry)
		delete(s.byDig, e.digest)
		s.bytes -= e.bytes
		e.evicted = true
		if e.refs > 0 {
			s.liveEvicted++
			s.zombieBytes += e.bytes
		} else {
			e.ts.Close()
		}
	}
	s.lru.Init()
}
