package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"tireplay/internal/npb"
)

// TestParallelIdenticalRequestsCoalesce fires identical fresh requests
// concurrently: exactly one kernel run happens, every caller gets the same
// bytes, and the coalescing counter records the sharing.
func TestParallelIdenticalRequestsCoalesce(t *testing.T) {
	d := newTestDaemon(t, Config{MaxConcurrent: 1})
	dig := d.uploadLU(t, npb.ClassS, 4)
	body := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2,3,4"}}`, dig)

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, resp := d.post(t, "/sweeps", body)
			if st != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, st, resp)
			}
			bodies[i] = resp
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if runs := d.srv.sweepsRun.Load(); runs != 1 {
		t.Fatalf("%d identical concurrent requests ran %d sweeps, want 1", clients, runs)
	}
	for i := 1; i < clients; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	stats := d.srv.Snapshot()
	if stats.Coalesced+stats.Cache.Hits+stats.Cache.BodyHits != clients-1 {
		t.Fatalf("sharing accounting off: coalesced=%d hits=%d bodyHits=%d, want %d shared",
			stats.Coalesced, stats.Cache.Hits, stats.Cache.BodyHits, clients-1)
	}
}

// TestCancelMidSweepFreesTraceRef cancels the only client of a large sweep
// and verifies the flight winds down: the trace refcount returns to zero and
// the flight table empties, so eviction can reclaim the set.
func TestCancelMidSweepFreesTraceRef(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	dig := d.uploadLU(t, npb.ClassW, 8)

	// A grid big enough to outlive the cancellation window.
	body := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2,3,4","bw":"1,2"}}`, dig)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.http.URL+"/sweeps",
		bytesReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the sweep actually holds its trace reference, then yank
	// the client.
	waitFor(t, time.Second, func() bool {
		l := d.srv.traces.List()
		return len(l) == 1 && l[0].Refs > 0
	})
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned without error")
	}

	// The running cell must finish before the engine returns (a kernel run
	// is not interruptible), so allow a generous drain, especially under
	// the race detector.
	waitFor(t, 60*time.Second, func() bool {
		l := d.srv.traces.List()
		inflight, _ := d.srv.flights.stats()
		return len(l) == 1 && l[0].Refs == 0 && inflight == 0
	})
	st := d.srv.Snapshot()
	if st.Traces.LiveEvicted != 0 || st.Traces.ZombieBytes != 0 {
		t.Fatalf("cancellation leaked zombie traces: %+v", st.Traces)
	}
}

// TestCoalescedWaiterSurvivesInitiatorCancel: the client that started a
// flight disconnects, a second client is still waiting — the run must
// continue and serve the survivor.
func TestCoalescedWaiterSurvivesInitiatorCancel(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	dig := d.uploadLU(t, npb.ClassW, 8)
	body := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2,3,4","bw":"1,2"}}`, dig)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.http.URL+"/sweeps", bytesReader(body))
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, time.Second, func() bool {
		inflight, _ := d.srv.flights.stats()
		return inflight == 1
	})

	type result struct {
		status int
		body   []byte
	}
	second := make(chan result, 1)
	go func() {
		st, _, b := d.post(t, "/sweeps", body)
		second <- result{st, b}
	}()
	waitFor(t, time.Second, func() bool {
		_, coalesced := d.srv.flights.stats()
		return coalesced >= 1
	})

	cancel()
	<-firstDone
	got := <-second
	if got.status != http.StatusOK {
		t.Fatalf("surviving waiter: status %d: %s", got.status, got.body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(got.body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Scenarios) != 8 {
		t.Fatalf("survivor got %d scenarios, want 8", len(sr.Scenarios))
	}
	for i, sc := range sr.Scenarios {
		if sc.Err != "" {
			t.Fatalf("survivor scenario %d: %s — the initiator's cancel killed a shared run", i, sc.Err)
		}
	}
}

// TestLoadSheddingUnderFlood saturates a 1-slot/0-queue daemon with
// distinct requests: overflow is refused with 429 + Retry-After while the
// admitted sweep completes.
func TestLoadSheddingUnderFlood(t *testing.T) {
	d := newTestDaemon(t, Config{MaxConcurrent: 1, MaxQueue: 0, Workers: 1, RetryAfter: 7})
	dig := d.uploadLU(t, npb.ClassW, 8)

	// Occupy the only slot.
	slow := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2,3,4,5,6,7,8"}}`, dig)
	slowDone := make(chan int, 1)
	go func() {
		st, _, _ := d.post(t, "/sweeps", slow)
		slowDone <- st
	}()
	waitFor(t, 2*time.Second, func() bool { return d.srv.Snapshot().Queue.Running == 1 })

	// Distinct quick requests (distinct keys, so no coalescing) must shed.
	var shed int
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"trace":%q,"grid":{"lat":"%d.5"}}`, dig, i+10)
		r, err := http.Post(d.http.URL+"/sweeps", "application/json", bytesReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusTooManyRequests {
			shed++
			if ra := r.Header.Get("Retry-After"); ra != "7" {
				t.Fatalf("shed response Retry-After = %q, want 7", ra)
			}
		}
		r.Body.Close()
	}
	if shed != 4 {
		t.Fatalf("flooded a full queue with 4 requests, %d were shed", shed)
	}
	if st := <-slowDone; st != http.StatusOK {
		t.Fatalf("admitted sweep was disturbed by the flood: status %d", st)
	}
	if got := d.srv.Snapshot().Queue.Shed; got != 4 {
		t.Fatalf("shed counter = %d, want 4", got)
	}
}

// TestLRUEvictionKeepsLiveReadersMapped drives the store directly: a reader
// acquired before eviction keeps its set usable until Release, and only the
// final Release unmaps it.
func TestLRUEvictionKeepsLiveReadersMapped(t *testing.T) {
	ts1 := luTraces(t, npb.ClassS, 4)
	ts2 := luTraces(t, npb.ClassS, 2)
	store := NewTraceStore(100)

	if store.Add("sha256:aa", ts1, 80) {
		t.Fatal("fresh digest reported existed")
	}
	h, ok := store.Acquire("sha256:aa")
	if !ok {
		t.Fatal("acquire failed")
	}

	// Inserting the second set blows the budget; the referenced first set
	// must be evicted from the index but stay mapped for h.
	store.Add("sha256:bb", ts2, 80)
	if _, ok := store.Acquire("sha256:aa"); ok {
		t.Fatal("evicted digest still acquirable")
	}
	st := store.Stats()
	if st.Evictions != 1 || st.LiveEvicted != 1 || st.ZombieBytes != 80 {
		t.Fatalf("eviction accounting: %+v", st)
	}
	if h.Set().Ranks() != 4 {
		t.Fatal("live reader lost its mapped set")
	}

	h.Release()
	h.Release() // idempotent
	st = store.Stats()
	if st.LiveEvicted != 0 || st.ZombieBytes != 0 {
		t.Fatalf("release did not clear zombie accounting: %+v", st)
	}

	// The survivor still serves.
	if r, ok := store.Ranks("sha256:bb"); !ok || r != 2 {
		t.Fatalf("survivor: ranks=%d ok=%v", r, ok)
	}
	store.Close()
}

// TestStoreNeverEvictsNewestEntry: a budget smaller than one trace still
// serves that trace.
func TestStoreNeverEvictsNewestEntry(t *testing.T) {
	store := NewTraceStore(1)
	store.Add("sha256:big", luTraces(t, npb.ClassS, 2), 1000)
	if _, ok := store.Acquire("sha256:big"); !ok {
		t.Fatal("over-budget sole entry was evicted")
	}
}

// TestConcurrentStoreChurn hammers Add/Acquire/Release/eviction under the
// race detector.
func TestConcurrentStoreChurn(t *testing.T) {
	store := NewTraceStore(300)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				dig := fmt.Sprintf("sha256:%d-%d", g, i%5)
				if _, ok := store.Acquire(dig); !ok {
					store.Add(dig, luTraces(t, npb.ClassS, 2), 90)
				}
				if h, ok := store.Acquire(dig); ok {
					h.Set().Ranks()
					h.Release()
				}
			}
		}(g)
	}
	wg.Wait()
	// Leaked handles from the first Acquire branch are fine for the store
	// (they are never released here), but accounting must stay coherent.
	st := store.Stats()
	if st.Bytes > 300+90 {
		t.Fatalf("store over budget beyond the newest-entry allowance: %+v", st)
	}
	store.Close()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
