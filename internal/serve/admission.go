package serve

import (
	"context"
	"sync/atomic"
)

// admission is the daemon's load-shedding front door for sweep executions.
// At most maxConcurrent sweeps run at once; up to maxQueue more wait their
// turn; anything beyond that is shed immediately with 429 so a flooded
// daemon degrades by refusing crisply instead of queueing unboundedly.
// Cache hits and coalesced waiters never pass through here — admission
// bounds kernel work, not request traffic.
type admission struct {
	sem      chan struct{} // running slots
	maxTotal int64         // running + queued bound
	pending  atomic.Int64  // running + queued
	shed     atomic.Int64
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		sem:      make(chan struct{}, maxConcurrent),
		maxTotal: int64(maxConcurrent + maxQueue),
	}
}

// enter claims an execution slot, queueing when all slots are busy.
// shed=true means the queue was full and the request must be refused;
// ok=false with shed=false means ctx was cancelled while queued.
func (a *admission) enter(ctx context.Context) (ok, shed bool) {
	if a.pending.Add(1) > a.maxTotal {
		a.pending.Add(-1)
		a.shed.Add(1)
		return false, true
	}
	select {
	case a.sem <- struct{}{}:
		return true, false
	case <-ctx.Done():
		a.pending.Add(-1)
		return false, false
	}
}

// leave frees the slot claimed by a successful enter.
func (a *admission) leave() {
	<-a.sem
	a.pending.Add(-1)
}

// admissionStats is the queue's /stats snapshot.
type admissionStats struct {
	Running  int   `json:"running"`
	Queued   int64 `json:"queued"`
	Slots    int   `json:"slots"`
	QueueCap int64 `json:"queue_cap"`
	Shed     int64 `json:"shed"`
}

func (a *admission) stats() admissionStats {
	running := len(a.sem)
	queued := a.pending.Load() - int64(running)
	if queued < 0 {
		queued = 0
	}
	return admissionStats{
		Running: running, Queued: queued,
		Slots: cap(a.sem), QueueCap: a.maxTotal - int64(cap(a.sem)),
		Shed: a.shed.Load(),
	}
}
