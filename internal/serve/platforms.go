package serve

import (
	"sync"

	"tireplay/internal/platform"
)

// platformCache keeps warm platform descriptions keyed by canonical builtin
// spec ("bordereau:8x1"), plus the host list the deployment layer derives
// from each. Descriptions are read-only in the sweep engine (every scenario
// deep-copies before scaling and instantiates its own kernel), so one cached
// description serves any number of concurrent sweeps; what is saved per
// request is the description build and the host enumeration, not the
// per-scenario kernel instantiation — that must stay per-kernel for
// correctness.
type platformCache struct {
	mu      sync.Mutex
	entries map[string]*platformEntry
	hits    int64
	misses  int64
}

type platformEntry struct {
	p     *platform.Platform
	hosts []string
}

// maxPlatformEntries bounds the cache; distinct platform specs are few in
// practice (the grammar spans ~400 bordereau shapes), so a hard cap with a
// full reset on overflow is simpler than LRU and just as effective.
const maxPlatformEntries = 512

func newPlatformCache() *platformCache {
	return &platformCache{entries: make(map[string]*platformEntry)}
}

// get resolves a builtin platform spec to its canonical key, description
// and host list, building and caching on first use.
func (c *platformCache) get(spec string) (key string, p *platform.Platform, hosts []string, err error) {
	b, err := platform.ParseBuiltin(spec)
	if err != nil {
		return "", nil, nil, err
	}
	key = b.String()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return key, e.p, e.hosts, nil
	}
	c.misses++
	c.mu.Unlock()

	// Build outside the lock; a racing miss on the same key builds twice
	// and the second insert wins harmlessly (descriptions are stateless).
	if p, err = b.Build(); err != nil {
		return "", nil, nil, err
	}
	if hosts, err = p.Hosts(); err != nil {
		return "", nil, nil, err
	}
	c.mu.Lock()
	if len(c.entries) >= maxPlatformEntries {
		c.entries = make(map[string]*platformEntry)
	}
	c.entries[key] = &platformEntry{p: p, hosts: hosts}
	c.mu.Unlock()
	return key, p, hosts, nil
}

// platformCacheStats is the cache's /stats snapshot.
type platformCacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

func (c *platformCache) stats() platformCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return platformCacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}
