package serve

import (
	"container/list"
	"context"
	"sync"
)

// resultCache holds completed sweep responses. Determinism makes them
// perfectly cacheable: a scenario's outcome is a pure function of
// (trace digest, canonical scenario spec), so a cached body can be served
// forever, byte-identical, with zero replay work.
//
// Two index layers serve two access patterns:
//
//   - byBody maps the SHA-256 of a raw request body to its response. A
//     repeated byte-identical request — the overwhelmingly common shape for
//     scripted clients — is answered from this map without even decoding
//     the JSON; the lookup path performs no allocation.
//   - byKey maps the canonical request key (digest + canonicalized grid
//     axes + options) to the same entries, so requests that differ only in
//     formatting, axis spelling or execution-only options (worker count,
//     fork mode) still hit.
//
// Entries are evicted least-recently-used under a byte budget.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	byKey  map[string]*respEntry
	byBody map[[32]byte]*respEntry
	lru    *list.List

	hits      int64 // canonical-layer hits
	bodyHits  int64 // byte-identical fast-path hits
	misses    int64
	evictions int64
}

// respEntry is one cached response body.
type respEntry struct {
	key      string
	body     []byte
	bodyKeys [][32]byte // raw-body hashes aliased to this entry
	elem     *list.Element
}

func newResultCache(budget int64) *resultCache {
	if budget <= 0 {
		budget = 256 << 20
	}
	return &resultCache{
		budget: budget,
		byKey:  make(map[string]*respEntry),
		byBody: make(map[[32]byte]*respEntry),
		lru:    list.New(),
	}
}

// lookupBody is the allocation-free fast path: it resolves a raw-body hash
// to its cached response, counting the hit and refreshing the LRU position.
// It returns nil on a miss WITHOUT counting it — the caller falls through
// to the canonical layer, which settles hit-or-miss accounting.
func (c *resultCache) lookupBody(h [32]byte) []byte {
	c.mu.Lock()
	e, ok := c.byBody[h]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	c.lru.MoveToFront(e.elem)
	c.bodyHits++
	c.mu.Unlock()
	return e.body
}

// lookup resolves a canonical request key, aliasing the raw-body hash to
// the entry on a hit so the next identical body takes the fast path.
func (c *resultCache) lookup(key string, bodyHash [32]byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	c.aliasLocked(e, bodyHash)
	return e.body
}

// recheck is lookup without miss accounting: a flight that already counted
// its miss re-checks the key after winning the flight, and that second
// probe must not inflate the miss rate. Hits still count — they are real.
func (c *resultCache) recheck(key string, bodyHash [32]byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	c.aliasLocked(e, bodyHash)
	return e.body
}

// store inserts a completed response under both its canonical key and the
// raw-body hash that produced it.
func (c *resultCache) store(key string, bodyHash [32]byte, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byKey[key]; ok {
		// A racing flight already stored this key (determinism guarantees
		// the bodies match); just alias the new body hash.
		c.lru.MoveToFront(e.elem)
		c.aliasLocked(e, bodyHash)
		return
	}
	e := &respEntry{key: key, body: body}
	e.elem = c.lru.PushFront(e)
	c.byKey[key] = e
	c.aliasLocked(e, bodyHash)
	c.bytes += int64(len(body))
	for c.bytes > c.budget {
		tail := c.lru.Back()
		if tail == nil {
			return
		}
		v := tail.Value.(*respEntry)
		if v == e {
			return // never evict the entry just stored
		}
		c.lru.Remove(tail)
		delete(c.byKey, v.key)
		for _, bh := range v.bodyKeys {
			delete(c.byBody, bh)
		}
		c.bytes -= int64(len(v.body))
		c.evictions++
	}
}

// aliasLocked records bodyHash as a byte-identical spelling of e's request.
func (c *resultCache) aliasLocked(e *respEntry, bodyHash [32]byte) {
	if _, ok := c.byBody[bodyHash]; ok {
		return
	}
	c.byBody[bodyHash] = e
	e.bodyKeys = append(e.bodyKeys, bodyHash)
}

// resultCacheStats is the cache's /stats snapshot.
type resultCacheStats struct {
	Hits      int64 `json:"hits"`
	BodyHits  int64 `json:"body_hits"`
	Misses    int64 `json:"misses"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
	Evictions int64 `json:"evictions"`
}

func (c *resultCache) stats() resultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return resultCacheStats{
		Hits: c.hits, BodyHits: c.bodyHits, Misses: c.misses,
		Entries: len(c.byKey), Bytes: c.bytes, Budget: c.budget, Evictions: c.evictions,
	}
}

// flight is one in-progress sweep execution, shared by every request that
// asked for the same canonical key while it ran. The first requester runs
// the sweep; the rest wait on done and read the outcome — request
// coalescing: N identical in-flight requests cost one kernel run.
//
// Each participant's own context is wired to the flight with
// context.AfterFunc: a participant that disconnects decrements the waiter
// count, and when the LAST participant is gone the flight's context is
// cancelled, stopping the sweep and releasing its trace reference. One
// impatient client never kills a run other clients still want.
type flight struct {
	done    chan struct{}
	status  int
	body    []byte
	cache   string // cache disposition of the runner ("miss")
	mu      sync.Mutex
	waiters int
	cancel  context.CancelFunc
	settled bool
}

// join registers one more participant. ok=false means the flight already
// settled (too late to join the waiter accounting; outcome is ready).
func (f *flight) join() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.settled {
		return false
	}
	f.waiters++
	return true
}

// leave drops one participant; the last one out cancels the flight.
func (f *flight) leave() {
	f.mu.Lock()
	last := false
	if !f.settled {
		f.waiters--
		last = f.waiters == 0
	}
	f.mu.Unlock()
	if last {
		f.cancel()
	}
}

// settle records the outcome and wakes every waiter.
func (f *flight) settle(status int, body []byte) {
	f.mu.Lock()
	f.settled = true
	f.status = status
	f.body = body
	f.mu.Unlock()
	close(f.done)
}

// flightGroup deduplicates concurrent executions by canonical key.
type flightGroup struct {
	mu        sync.Mutex
	inflight  map[string]*flight
	coalesced int64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[string]*flight)}
}

// enter returns the flight for key, creating it when absent; runner reports
// whether the caller must execute it. A created flight's context descends
// from base (the daemon's lifetime), not from the creating request, so the
// run survives its initiator as long as any participant remains.
func (g *flightGroup) enter(base context.Context, key string) (f *flight, ctx context.Context, runner bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.inflight[key]; ok {
		// join fails only when the flight already settled — its outcome is
		// ready behind the closed done channel, so reading it is free and
		// leave() on a settled flight is a no-op either way.
		f.join()
		g.coalesced++
		return f, nil, false
	}
	fctx, cancel := context.WithCancel(base)
	f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.inflight[key] = f
	return f, fctx, true
}

// exit removes the settled flight from the group.
func (g *flightGroup) exit(key string, f *flight) {
	g.mu.Lock()
	if g.inflight[key] == f {
		delete(g.inflight, key)
	}
	g.mu.Unlock()
	f.cancel() // release the context's resources; the run is over
}

func (g *flightGroup) stats() (inflight int, coalesced int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.inflight), g.coalesced
}
