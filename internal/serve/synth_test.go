package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/synth"
)

// luModelJSON fits the synthetic model of one recorded LU run and renders
// it the way tigen fit does — the inline payload of a sweep request's
// "synth" field.
func luModelJSON(tb testing.TB, class npb.Class, procs int) string {
	tb.Helper()
	m, err := synth.Fit(luActions(tb, class, procs))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.String()
}

// TestSweepSynthetic serves a sweep with no stored trace at all: every
// cell regenerates from the inline fitted model at its world size.
func TestSweepSynthetic(t *testing.T) {
	d := newTestDaemon(t, Config{})
	model := luModelJSON(t, npb.ClassS, 16)

	body := fmt.Sprintf(`{"grid":{"world":"8,16","bw":"0.5,1"},"synth":{"model":%s,"scale":"strong"}}`, model)
	st, xc, first := d.post(t, "/sweeps", body)
	if st != http.StatusOK || xc != "miss" {
		t.Fatalf("first sweep: status %d cache %q: %s", st, xc, first)
	}
	var resp SweepResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace != "" {
		t.Fatalf("all-synthetic response names trace %q, want none", resp.Trace)
	}
	if len(resp.Scenarios) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(resp.Scenarios))
	}
	actionsBy := map[int]int64{}
	for i, sc := range resp.Scenarios {
		if sc.Err != "" {
			t.Fatalf("scenario %d failed: %s", i, sc.Err)
		}
		if sc.World <= 0 || sc.SimulatedTime <= 0 || sc.Actions <= 0 {
			t.Fatalf("scenario %d: empty outcome %+v", i, sc)
		}
		actionsBy[sc.World] = sc.Actions
	}
	if actionsBy[8] >= actionsBy[16] {
		t.Fatalf("larger world must replay more actions: %d@8 vs %d@16",
			actionsBy[8], actionsBy[16])
	}

	// The repeat is a byte-identical body-hash hit with zero replay.
	st, xc, second := d.post(t, "/sweeps", body)
	if st != http.StatusOK || xc != "hit" {
		t.Fatalf("second sweep: status %d cache %q", st, xc)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached synthetic response is not byte-identical")
	}
	if runs := d.srv.sweepsRun.Load(); runs != 1 {
		t.Fatalf("served the repeat from cache but ran %d sweeps", runs)
	}
}

// TestSweepSynthCanonicalKey pins the canonical identity of the model:
// a respelled request (reordered keys, explicit default scale) hits the
// same cache entry, while a different seed is a different sweep.
func TestSweepSynthCanonicalKey(t *testing.T) {
	d := newTestDaemon(t, Config{})
	model := luModelJSON(t, npb.ClassS, 16)

	base := fmt.Sprintf(`{"grid":{"world":"8"},"synth":{"model":%s}}`, model)
	st, xc, first := d.post(t, "/sweeps", base)
	if st != http.StatusOK || xc != "miss" {
		t.Fatalf("base: status %d cache %q: %s", st, xc, first)
	}

	// Same model respelled: explicit weak scale, reordered request keys.
	variant := fmt.Sprintf(`{"synth":{"scale":"weak","model":%s},"grid":{"world":"8"}}`, model)
	st, xc, got := d.post(t, "/sweeps", variant)
	if st != http.StatusOK || xc != "hit" {
		t.Fatalf("variant: status %d cache %q: %s", st, xc, got)
	}
	if !bytes.Equal(first, got) {
		t.Fatal("respelled synthetic request served different bytes")
	}

	// A different jitter seed is a different question.
	seeded := fmt.Sprintf(`{"grid":{"world":"8"},"synth":{"model":%s,"seed":7,"jitter":0.1}}`, model)
	st, xc, _ = d.post(t, "/sweeps", seeded)
	if st != http.StatusOK || xc != "miss" {
		t.Fatalf("seeded: status %d cache %q", st, xc)
	}
	if runs := d.srv.sweepsRun.Load(); runs != 2 {
		t.Fatalf("ran %d sweeps, want 2 (base + seeded)", runs)
	}
}

// TestSweepSynthMixed mixes the recorded world (entry 0, replaying the
// stored trace) with its synthetic twin in one grid: at the recorded size
// the fitted model is exact, so both rows agree bit-for-bit.
func TestSweepSynthMixed(t *testing.T) {
	const procs = 8
	d := newTestDaemon(t, Config{})
	dig := d.uploadLU(t, npb.ClassS, procs)
	model := luModelJSON(t, npb.ClassS, procs)

	body := fmt.Sprintf(`{"trace":%q,"grid":{"world":"0,%d"},"synth":{"model":%s}}`, dig, procs, model)
	st, _, raw := d.post(t, "/sweeps", body)
	if st != http.StatusOK {
		t.Fatalf("status %d: %s", st, raw)
	}
	var resp SweepResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace != dig || len(resp.Scenarios) != 2 {
		t.Fatalf("trace %q, %d scenarios; want %q and 2", resp.Trace, len(resp.Scenarios), dig)
	}
	rec, syn := resp.Scenarios[0], resp.Scenarios[1]
	if rec.Err != "" || syn.Err != "" {
		t.Fatalf("errs: %q, %q", rec.Err, syn.Err)
	}
	if rec.World != 0 || syn.World != procs {
		t.Fatalf("worlds %d, %d; want 0, %d", rec.World, syn.World, procs)
	}
	if rec.Actions != syn.Actions || rec.SimulatedTime != syn.SimulatedTime {
		t.Fatalf("recorded (%d actions, %g) != synthetic twin (%d actions, %g)",
			rec.Actions, rec.SimulatedTime, syn.Actions, syn.SimulatedTime)
	}
}

// TestSweepSynthErrors pins the request-validation surface of the world
// axis: every misuse is the client's 4xx, never a mid-sweep failure.
func TestSweepSynthErrors(t *testing.T) {
	d := newTestDaemon(t, Config{})
	model := luModelJSON(t, npb.ClassS, 16)
	cases := []struct {
		name, body string
		status     int
		want       string
	}{
		{"world without synth", `{"grid":{"world":"8"}}`,
			http.StatusBadRequest, "needs a synth model"},
		{"synth without world",
			fmt.Sprintf(`{"synth":{"model":%s}}`, model),
			http.StatusBadRequest, "without a positive grid world axis"},
		{"recorded cell without trace",
			fmt.Sprintf(`{"grid":{"world":"0,8"},"synth":{"model":%s}}`, model),
			http.StatusBadRequest, "missing trace digest"},
		{"empty model", `{"grid":{"world":"8"},"synth":{}}`,
			http.StatusBadRequest, "synth needs a model"},
		{"bad model", `{"grid":{"world":"8"},"synth":{"model":{"app":42}}}`,
			http.StatusBadRequest, "bad synth model"},
		{"bad scale",
			fmt.Sprintf(`{"grid":{"world":"8"},"synth":{"model":%s,"scale":"sideways"}}`, model),
			http.StatusBadRequest, "bad synth scale"},
		{"bad world list", `{"grid":{"world":"8,-1"}}`,
			http.StatusBadRequest, "bad grid"},
	}
	for _, tc := range cases {
		st, _, resp := d.post(t, "/sweeps", tc.body)
		if st != tc.status || !strings.Contains(string(resp), tc.want) {
			t.Errorf("%s: status %d body %s; want %d containing %q",
				tc.name, st, resp, tc.status, tc.want)
		}
	}
	if runs := d.srv.sweepsRun.Load(); runs != 0 {
		t.Fatalf("invalid requests ran %d sweeps", runs)
	}
}
