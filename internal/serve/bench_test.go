package serve

import (
	"context"
	"fmt"
	"net/http"
	"testing"

	"tireplay/internal/npb"
)

// benchDaemon builds a server with an LU trace registered, bypassing HTTP —
// the benchmarks gate the daemon core (sweepFromBody), not Go's HTTP stack.
func benchDaemon(b *testing.B, cfg Config) (*Server, string) {
	b.Helper()
	s := New(cfg)
	b.Cleanup(s.Close)
	resp, herr := s.registerInline(luTexts(b, npb.ClassS, 4))
	if herr != nil {
		b.Fatal(herr.msg)
	}
	return s, resp.Digest
}

// BenchmarkServeCachedRequest gates the byte-identical repeat path: hash the
// body, find the stored response, serve it. The whole request costs a SHA-256
// of ~100 bytes and two map operations — and, as the CI baseline enforces,
// zero heap allocations. This is the "what-if question already answered"
// economics of the service: repeats are free.
func BenchmarkServeCachedRequest(b *testing.B) {
	s, dig := benchDaemon(b, Config{})
	body := []byte(fmt.Sprintf(`{"trace":%q,"grid":{"lat":"1,2","coll":"default;bcast=binomial"}}`, dig))
	ctx := context.Background()
	if out := s.sweepFromBody(ctx, body); out.status != http.StatusOK {
		b.Fatalf("priming sweep: status %d: %s", out.status, out.body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := s.sweepFromBody(ctx, body)
		if out.status != http.StatusOK || out.cache != "hit" {
			b.Fatalf("iteration %d missed the cache: status %d cache %q", i, out.status, out.cache)
		}
	}
}

// BenchmarkServeSweep gates fresh-sweep throughput through the full daemon
// core: parse, canonicalize, single-flight, admission, trace acquire, engine
// run, response marshal, cache store. Every iteration uses a distinct
// latency scale so nothing is served from cache; the custom scenarios_per_sec
// metric is floored in CI.
func BenchmarkServeSweep(b *testing.B) {
	s, dig := benchDaemon(b, Config{MaxConcurrent: 1})
	ctx := context.Background()
	const cells = 8 // lat(2) x coll(2) x bw(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := []byte(fmt.Sprintf(
			`{"trace":%q,"grid":{"lat":"%d,%d.5","bw":"1,2","coll":"default;bcast=binomial"}}`,
			dig, i+1, i+1))
		out := s.sweepFromBody(ctx, body)
		if out.status != http.StatusOK || out.cache != "miss" {
			b.Fatalf("iteration %d: status %d cache %q: %s", i, out.status, out.cache, out.body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "scenarios_per_sec")
}
