package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// benchTraceText renders a realistic mixed trace of n actions.
func benchTraceText(n int) []byte {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	for i := 0; i < n; i++ {
		var a Action
		switch rng.Intn(5) {
		case 0, 1:
			a = Action{Proc: rng.Intn(64), Type: Compute, Peer: -1, Volume: float64(rng.Intn(1e7)) + 0.25}
		case 2:
			a = Action{Proc: rng.Intn(64), Type: Send, Peer: rng.Intn(64), Volume: float64(rng.Intn(1e6))}
		case 3:
			a = Action{Proc: rng.Intn(64), Type: Recv, Peer: rng.Intn(64)}
		default:
			a = Action{Proc: rng.Intn(64), Type: AllReduce, Peer: -1, Volume: 8192, Volume2: 1.5e6}
		}
		if err := tw.Write(a); err != nil {
			panic(err)
		}
	}
	if err := tw.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// BenchmarkScanBytes measures streaming a textual trace through the Scanner,
// the per-action cost every file-based replay pays.
func BenchmarkScanBytes(b *testing.B) {
	data := benchTraceText(50_000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewScanner(bytes.NewReader(data))
		n := 0
		for sc.Scan() {
			n++
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		if n != 50_000 {
			b.Fatalf("scanned %d actions", n)
		}
	}
}

// BenchmarkParseLine measures single-line parsing of the common action
// shapes through the string-based entry point.
func BenchmarkParseLine(b *testing.B) {
	lines := []string{
		"p3 compute 1.52e+07",
		"p1 send p0 163840",
		"p0 recv p1",
		"p5 allReduce 8192 1.5e+06",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, ln := range lines {
			if _, ok, err := ParseLine(ln); err != nil || !ok {
				b.Fatal(err)
			}
		}
	}
	_ = strings.TrimSpace
}
