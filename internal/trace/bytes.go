package trace

import (
	"fmt"
	"strconv"
)

// This file is the byte-level fast path of the textual codec: ParseLineBytes
// parses one trace line without converting it to a string and without
// allocating, which is what lets file-based replays stream millions of
// actions per second. ParseLine and the Scanner are thin layers over it.

// maxLineFields bounds the number of fields any action line can need; extra
// trailing fields are ignored, matching the historical parser.
const maxLineFields = 4

// asciiSpace flags the ASCII whitespace bytes; a table lookup is the
// cheapest per-byte classification in the tokenizer, the hottest loop of
// trace scanning.
var asciiSpace = [256]bool{' ': true, '\t': true, '\r': true, '\n': true, '\v': true, '\f': true}

// fieldSpan is a field's [start, end) byte range within its line.
type fieldSpan struct{ start, end int32 }

// of resolves the span against its line.
func (s fieldSpan) of(line []byte) []byte { return line[s.start:s.end] }

// splitFieldsBytes tokenizes line on ASCII whitespace into at most
// maxLineFields fields, returning the field count. Fields beyond the cap are
// ignored (trailing garbage has always been tolerated). It records offset
// spans rather than subslices: storing a slice of line through the output
// pointer would make escape analysis treat line as leaking, heap-allocating
// every caller's buffer.
func splitFieldsBytes(line []byte, spans *[maxLineFields]fieldSpan) int {
	n := 0
	i := 0
	for {
		for i < len(line) && asciiSpace[line[i]] {
			i++
		}
		if i >= len(line) || n == maxLineFields {
			break
		}
		start := i
		for i < len(line) && !asciiSpace[line[i]] {
			i++
		}
		spans[n] = fieldSpan{int32(start), int32(i)}
		n++
	}
	return n
}

// parseProcIDBytes accepts "p3" or "3" and returns the rank.
func parseProcIDBytes(s []byte) (int, error) {
	t := s
	if len(t) > 0 && t[0] == 'p' {
		t = t[1:]
	}
	v, ok := parseIntBytes(t)
	if !ok || v < 0 {
		// string(s) copies so the caller's line buffer does not escape.
		return -1, fmt.Errorf("trace: bad process id %q", string(s))
	}
	return v, nil
}

// parseIntBytes parses a decimal integer with an optional sign, mirroring
// strconv.Atoi for the inputs traces contain. Inputs longer than 18 digits
// are rejected (they would not be valid ranks or sizes anyway).
func parseIntBytes(s []byte) (int, bool) {
	if len(s) == 0 {
		return 0, false
	}
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		s = s[1:]
	}
	if len(s) == 0 || len(s) > 18 {
		return 0, false
	}
	n := int64(0)
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	// Reject values a 32-bit int cannot hold, matching strconv.Atoi's
	// ErrRange behavior on those platforms.
	if n > int64(maxInt) || n < -int64(maxInt)-1 {
		return 0, false
	}
	return int(n), true
}

const maxInt = int(^uint(0) >> 1)

// pow10tab holds the exactly-representable powers of ten used by the float
// fast path.
var pow10tab = [23]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloatBytes parses a float64 from b without allocating. The fast path
// covers the decimal forms the trace writer emits (digits, optional point,
// optional e-notation); it is exact — Clinger's criterion: when the mantissa
// fits in 2^53 and the scaling power of ten is itself exact, one rounded
// multiply or divide yields the correctly rounded result, bit-identical to
// strconv.ParseFloat. Anything unusual (hex floats, huge mantissas, inf/NaN
// spellings) falls back to strconv on a copied string.
func parseFloatBytes(b []byte) (float64, error) {
	if len(b) == 0 {
		return strconv.ParseFloat("", 64)
	}
	i := 0
	neg := false
	if b[i] == '+' || b[i] == '-' {
		neg = b[i] == '-'
		i++
	}
	mant := uint64(0)
	digits := 0 // significant digits accumulated into mant (≤ 19 fits uint64)
	frac := 0   // digits after the decimal point folded into mant
	sawDigit := false
	for i < len(b) && b[i] == '0' { // leading zeros carry no mantissa digits
		sawDigit = true
		i++
	}
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			break
		}
		sawDigit = true
		mant = mant*10 + uint64(c-'0')
		digits++
		if digits > 19 {
			return parseFloatSlow(b)
		}
	}
	if i < len(b) && b[i] == '.' {
		i++
		if mant == 0 {
			// Zeros right after the point shift the exponent only.
			for i < len(b) && b[i] == '0' {
				sawDigit = true
				frac++
				i++
			}
		}
		for ; i < len(b); i++ {
			c := b[i]
			if c < '0' || c > '9' {
				break
			}
			sawDigit = true
			mant = mant*10 + uint64(c-'0')
			digits++
			frac++
			if digits > 19 {
				return parseFloatSlow(b)
			}
		}
	}
	if !sawDigit {
		return parseFloatSlow(b)
	}
	exp := -frac
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		eneg := false
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			eneg = b[i] == '-'
			i++
		}
		if i >= len(b) {
			return parseFloatSlow(b)
		}
		e := 0
		for ; i < len(b); i++ {
			c := b[i]
			if c < '0' || c > '9' {
				return parseFloatSlow(b)
			}
			if e < 10000 {
				e = e*10 + int(c-'0')
			}
		}
		if eneg {
			exp -= e
		} else {
			exp += e
		}
	}
	if i != len(b) {
		return parseFloatSlow(b)
	}
	// Exactness window: mantissa must be a 53-bit integer and the power of
	// ten an exactly-representable float.
	if mant>>53 != 0 || exp < -22 || exp > 22 {
		return parseFloatSlow(b)
	}
	f := float64(mant)
	if exp > 0 {
		f *= pow10tab[exp]
	} else if exp < 0 {
		f /= pow10tab[-exp]
	}
	if neg {
		f = -f
	}
	return f, nil
}

// parseFloatSlow is the allocation-paying fallback for inputs outside the
// fast path; it defines the accepted grammar (strconv's).
func parseFloatSlow(b []byte) (float64, error) {
	return strconv.ParseFloat(string(b), 64)
}

// eqFold reports whether s equals the all-lowercase keyword kw under ASCII
// case folding. Keywords contain no byte that a non-ASCII rune could fold
// to, so this matches the historical ToLower-based comparison exactly.
func eqFold(s []byte, kw string) bool {
	for i := 0; i < len(kw); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != kw[i] {
			return false
		}
	}
	return true
}

// typeFromBytes resolves an action keyword without allocating or hashing,
// including the historical case-insensitive acceptance ("isend",
// "ALLREDUCE"). Dispatch on length keeps it to a couple of byte compares.
func typeFromBytes(s []byte) (ActionType, bool) {
	switch len(s) {
	case 4:
		switch {
		case eqFold(s, "send"):
			return Send, true
		case eqFold(s, "recv"):
			return Recv, true
		case eqFold(s, "wait"):
			return Wait, true
		}
	case 5:
		switch {
		case eqFold(s, "isend"):
			return Isend, true
		case eqFold(s, "irecv"):
			return Irecv, true
		case eqFold(s, "bcast"):
			return Bcast, true
		}
	case 6:
		switch {
		case eqFold(s, "reduce"):
			return Reduce, true
		case eqFold(s, "gather"):
			return Gather, true
		}
	case 7:
		switch {
		case eqFold(s, "compute"):
			return Compute, true
		case eqFold(s, "barrier"):
			return Barrier, true
		case eqFold(s, "scatter"):
			return Scatter, true
		case eqFold(s, "waitall"):
			return WaitAll, true
		}
	case 8:
		if eqFold(s, "alltoall") {
			return AllToAll, true
		}
	case 9:
		switch {
		case eqFold(s, "allreduce"):
			return AllReduce, true
		case eqFold(s, "comm_size"):
			return CommSize, true
		case eqFold(s, "allgather"):
			return AllGather, true
		}
	}
	return 0, false
}

// needArgs diagnoses an action line with too few arguments. It copies line
// into the error so the caller's buffer does not escape (which is what keeps
// ParseLine's stack buffer on the stack).
func needArgs(typ ActionType, line []byte, got, want int) error {
	if got < want {
		return fmt.Errorf("trace: %s entry %q needs %d argument(s)", typ, string(line), want)
	}
	return nil
}

// badField wraps a field-level parse failure with the offending line. The
// copy keeps the line buffer from escaping, as in needArgs.
func badField(what string, line []byte, err error) error {
	return fmt.Errorf("trace: bad %s in %q: %w", what, string(line), err)
}

// ParseLineBytes parses one line of the textual format without allocating in
// the common case. Empty lines and lines starting with '#' yield ok=false
// with a nil error. It accepts exactly the grammar of ParseLine and produces
// bit-identical volumes. The line buffer never escapes: error paths copy the
// bytes they quote, so callers may pass stack or reused buffers.
func ParseLineBytes(line []byte) (a Action, ok bool, err error) {
	var spans [maxLineFields]fieldSpan
	n := splitFieldsBytes(line, &spans)
	if n == 0 || line[spans[0].start] == '#' {
		return Action{}, false, nil
	}
	if n < 2 {
		return Action{}, false, fmt.Errorf("trace: truncated entry %q", string(line))
	}
	proc, err := parseProcIDBytes(spans[0].of(line))
	if err != nil {
		return Action{}, false, err
	}
	typ, known := typeFromBytes(spans[1].of(line))
	if !known {
		return Action{}, false, fmt.Errorf("trace: unknown action %q", string(spans[1].of(line)))
	}
	a = Action{Proc: proc, Type: typ, Peer: -1}
	nargs := n - 2
	switch typ {
	case Compute, Bcast, Gather, AllGather, AllToAll, Scatter:
		if err := needArgs(typ, line, nargs, 1); err != nil {
			return Action{}, false, err
		}
		if a.Volume, err = parseFloatBytes(spans[2].of(line)); err != nil {
			return Action{}, false, badField("volume", line, err)
		}
	case Send, Isend:
		if err := needArgs(typ, line, nargs, 2); err != nil {
			return Action{}, false, err
		}
		if a.Peer, err = parseProcIDBytes(spans[2].of(line)); err != nil {
			return Action{}, false, err
		}
		if a.Volume, err = parseFloatBytes(spans[3].of(line)); err != nil {
			return Action{}, false, badField("volume", line, err)
		}
	case Recv, Irecv:
		if err := needArgs(typ, line, nargs, 1); err != nil {
			return Action{}, false, err
		}
		if a.Peer, err = parseProcIDBytes(spans[2].of(line)); err != nil {
			return Action{}, false, err
		}
		if nargs >= 2 {
			if a.Volume, err = parseFloatBytes(spans[3].of(line)); err != nil {
				return Action{}, false, badField("volume", line, err)
			}
			a.HasVolume = true
		}
	case Reduce, AllReduce:
		if err := needArgs(typ, line, nargs, 2); err != nil {
			return Action{}, false, err
		}
		if a.Volume, err = parseFloatBytes(spans[2].of(line)); err != nil {
			return Action{}, false, badField("vcomm", line, err)
		}
		if a.Volume2, err = parseFloatBytes(spans[3].of(line)); err != nil {
			return Action{}, false, badField("vcomp", line, err)
		}
	case CommSize:
		if err := needArgs(typ, line, nargs, 1); err != nil {
			return Action{}, false, err
		}
		nproc, ok := parseIntBytes(spans[2].of(line))
		if !ok || nproc < 1 {
			return Action{}, false, fmt.Errorf("trace: bad comm_size in %q", string(line))
		}
		a.Volume = float64(nproc)
	case Barrier, Wait, WaitAll:
	}
	if err := a.Validate(); err != nil {
		return Action{}, false, err
	}
	return a, true, nil
}
