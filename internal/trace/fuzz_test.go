package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: ParseLine never panics and never both fails and succeeds,
// whatever bytes it is fed.
func TestParseLineRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		line := string(raw)
		defer func() {
			if recover() != nil {
				t.Errorf("ParseLine(%q) panicked", line)
			}
		}()
		a, ok, err := ParseLine(line)
		if err != nil && ok {
			return false
		}
		if ok {
			// Anything accepted must be valid and re-parseable.
			if a.Validate() != nil {
				return false
			}
			b, ok2, err2 := ParseLine(a.Format())
			return ok2 && err2 == nil && a == b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: garbage with plausible prefixes is handled.
func TestParseLineHostileInputs(t *testing.T) {
	hostile := []string{
		"p0",
		"p0 ",
		"p999999999999999999999 compute 1",
		"p0 compute 1e999",
		"p0 compute -1",
		"p0 send p0",
		"p0 send p1 NaN",
		"p0 send p1 Inf",
		"p0 recv",
		"p-0 barrier",
		"p0 comm_size 1.5",
		"p0 allReduce 1",
		strings.Repeat("p0 ", 1000),
		"\x00\x01\x02",
		"p0 compute 1 extra trailing fields are ignored",
	}
	for _, line := range hostile {
		func() {
			defer func() {
				if recover() != nil {
					t.Errorf("ParseLine(%q) panicked", line)
				}
			}()
			a, ok, err := ParseLine(line)
			if ok && err == nil {
				if verr := a.Validate(); verr != nil {
					t.Errorf("ParseLine(%q) accepted invalid action: %v", line, verr)
				}
			}
		}()
	}
}

// Property: DecodeBinary never panics on corrupted streams.
func TestDecodeBinaryRobustnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Start from a valid stream and corrupt random bytes.
	actions := make([]Action, 100)
	for i := range actions {
		actions[i] = randomAction(rng)
	}
	var valid bytes.Buffer
	if err := EncodeBinary(&valid, actions); err != nil {
		t.Fatal(err)
	}
	base := valid.Bytes()
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if recover() != nil {
					t.Fatalf("DecodeBinary panicked on corrupted input (trial %d)", trial)
				}
			}()
			_, _ = DecodeBinary(bytes.NewReader(corrupted))
		}()
	}
	// Truncations as well.
	for cut := 0; cut < len(base); cut += 7 {
		func() {
			defer func() {
				if recover() != nil {
					t.Fatalf("DecodeBinary panicked on truncation at %d", cut)
				}
			}()
			_, _ = DecodeBinary(bytes.NewReader(base[:cut]))
		}()
	}
}
