package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: ParseLine never panics and never both fails and succeeds,
// whatever bytes it is fed.
func TestParseLineRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		line := string(raw)
		defer func() {
			if recover() != nil {
				t.Errorf("ParseLine(%q) panicked", line)
			}
		}()
		a, ok, err := ParseLine(line)
		if err != nil && ok {
			return false
		}
		if ok {
			// Anything accepted must be valid and re-parseable.
			if a.Validate() != nil {
				return false
			}
			b, ok2, err2 := ParseLine(a.Format())
			return ok2 && err2 == nil && a == b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: garbage with plausible prefixes is handled.
func TestParseLineHostileInputs(t *testing.T) {
	hostile := []string{
		"p0",
		"p0 ",
		"p999999999999999999999 compute 1",
		"p0 compute 1e999",
		"p0 compute -1",
		"p0 send p0",
		"p0 send p1 NaN",
		"p0 send p1 Inf",
		"p0 recv",
		"p-0 barrier",
		"p0 comm_size 1.5",
		"p0 comm_size NaN",
		"p0 comm_size Inf",
		"p0 allReduce 1",
		"p0 compute NaN",
		"p0 compute Inf",
		"p0 Irecv p1 NaN",
		"p0 reduce 1 NaN",
		"p0 gather Infinity",
		strings.Repeat("p0 ", 1000),
		"\x00\x01\x02",
		"p0 compute 1 extra trailing fields are ignored",
	}
	for _, line := range hostile {
		func() {
			defer func() {
				if recover() != nil {
					t.Errorf("ParseLine(%q) panicked", line)
				}
			}()
			a, ok, err := ParseLine(line)
			if ok && err == nil {
				if verr := a.Validate(); verr != nil {
					t.Errorf("ParseLine(%q) accepted invalid action: %v", line, verr)
				}
			}
		}()
	}
}

// Property: DecodeBinary never panics on corrupted streams.
func TestDecodeBinaryRobustnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Start from a valid stream and corrupt random bytes.
	actions := make([]Action, 100)
	for i := range actions {
		actions[i] = randomAction(rng)
	}
	var valid bytes.Buffer
	if err := EncodeBinary(&valid, actions); err != nil {
		t.Fatal(err)
	}
	base := valid.Bytes()
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if recover() != nil {
					t.Fatalf("DecodeBinary panicked on corrupted input (trial %d)", trial)
				}
			}()
			_, _ = DecodeBinary(bytes.NewReader(corrupted))
		}()
	}
	// Truncations as well.
	for cut := 0; cut < len(base); cut += 7 {
		func() {
			defer func() {
				if recover() != nil {
					t.Fatalf("DecodeBinary panicked on truncation at %d", cut)
				}
			}()
			_, _ = DecodeBinary(bytes.NewReader(base[:cut]))
		}()
	}
}

// FuzzParseLine is the native fuzz target behind the CI fuzz-smoke step: a
// line of any bytes must parse without panicking, anything accepted must
// validate, and the textual round trip must be exact.
func FuzzParseLine(f *testing.F) {
	f.Add("p0 compute 1e6")
	f.Add("p1 send p0 163840")
	f.Add("p3 recv p2")
	f.Add("p2 Irecv p1 4096")
	f.Add("p0 allReduce 1e5 2e6")
	f.Add("p7 comm_size 8")
	f.Add("p4 barrier")
	f.Add("p5 wait")
	f.Add("p0 gather 4096")
	f.Add("p2 allGather 8192")
	f.Add("p6 allToAll 512")
	f.Add("p0 scatter 1e6")
	f.Add("p3 waitAll")
	f.Add("p1 ALLGATHER 64")
	f.Add("# comment")
	f.Add("")
	f.Add("p0 compute 1e999")
	f.Add("p0 send p1 NaN")
	f.Add("p0 compute NaN")
	f.Add("p0 Irecv p1 NaN")
	f.Add("p0 comm_size Inf")
	f.Add("p0 allGather -Inf")
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, line string) {
		a, ok, err := ParseLine(line)
		if err != nil && ok {
			t.Fatalf("ParseLine(%q) returned ok with error %v", line, err)
		}
		if !ok {
			return
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("ParseLine(%q) accepted invalid action: %v", line, verr)
		}
		b, ok2, err2 := ParseLine(a.Format())
		// Plain struct equality suffices for the round trip: Validate
		// rejects NaN and infinite volumes at parse time, so an accepted
		// action never carries a value that breaks ==.
		if !ok2 || err2 != nil || a != b {
			t.Fatalf("round trip of %q: %+v -> %q -> %+v (ok=%v err=%v)",
				line, a, a.Format(), b, ok2, err2)
		}
	})
}

// FuzzBinaryCursor feeds arbitrary bytes to the in-place binary decoder the
// mmap path relies on: it must never panic, never read out of bounds, and
// everything it accepts must validate.
func FuzzBinaryCursor(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	actions := make([]Action, 32)
	for i := range actions {
		actions[i] = randomAction(rng)
	}
	var valid bytes.Buffer
	if err := EncodeBinary(&valid, actions); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// One deterministic stream covering every collective action shape,
	// including the schedule-decomposed collectives and waitAll.
	var colls bytes.Buffer
	if err := EncodeBinary(&colls, []Action{
		{Proc: 0, Type: Bcast, Peer: -1, Volume: 1e6},
		{Proc: 1, Type: Gather, Peer: -1, Volume: 4096},
		{Proc: 2, Type: AllGather, Peer: -1, Volume: 8192},
		{Proc: 3, Type: AllToAll, Peer: -1, Volume: 512},
		{Proc: 4, Type: Scatter, Peer: -1, Volume: 2048},
		{Proc: 5, Type: WaitAll, Peer: -1},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(colls.Bytes())
	f.Add([]byte("TITB\x01"))
	f.Add([]byte("TITB"))
	f.Add([]byte{})
	// A hand-crafted compute record carrying a NaN volume: the writer now
	// refuses to produce one, so the cursor's rejection path can only be
	// seeded this way.
	nan := append([]byte("TITB\x01"), byte(Compute), 0x00)
	nan = binary.LittleEndian.AppendUint64(nan, math.Float64bits(math.NaN()))
	f.Add(nan)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeBinaryBytes(data)
		if err != nil {
			return
		}
		for i, a := range got {
			if verr := a.Validate(); verr != nil {
				t.Fatalf("record %d decoded invalid: %v", i, verr)
			}
		}
	})
}
