package trace

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// figure1Trace is the time-independent trace of Figure 1 in the paper: a
// ring of four processes each computing 1 Mflop and passing 1 MB around.
const figure1Trace = `p0 compute 1e6
p0 send p1 1e6
p0 recv p3
p1 recv p0
p1 compute 1e6
p1 send p2 1e6
p2 recv p1
p2 compute 1e6
p2 send p3 1e6
p3 recv p2
p3 compute 1e6
p3 send p0 1e6
`

func TestParseFigure1(t *testing.T) {
	actions, err := ParseAll(strings.NewReader(figure1Trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 12 {
		t.Fatalf("actions = %d, want 12", len(actions))
	}
	// Spot-check a few entries.
	if a := actions[0]; a.Proc != 0 || a.Type != Compute || a.Volume != 1e6 {
		t.Errorf("actions[0] = %+v", a)
	}
	if a := actions[1]; a.Proc != 0 || a.Type != Send || a.Peer != 1 || a.Volume != 1e6 {
		t.Errorf("actions[1] = %+v", a)
	}
	if a := actions[2]; a.Proc != 0 || a.Type != Recv || a.Peer != 3 || a.HasVolume {
		t.Errorf("actions[2] = %+v", a)
	}
}

func TestFormatMatchesPaperExample(t *testing.T) {
	// The extraction example of Section 4.3: "p1 send p0 163840".
	a := Action{Proc: 1, Type: Send, Peer: 0, Volume: 163840}
	if got := a.Format(); got != "p1 send p0 163840" {
		t.Fatalf("Format = %q", got)
	}
}

func TestParseAllActionTypes(t *testing.T) {
	const doc = `p0 comm_size 4
p0 compute 1000
p0 send p1 500
p0 Isend p1 600
p0 recv p1
p0 recv p1 700
p0 Irecv p1
p0 bcast 800
p0 reduce 900 1000
p0 allReduce 1100 1200
p0 barrier
p0 wait
`
	actions, err := ParseAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []ActionType{CommSize, Compute, Send, Isend, Recv, Recv,
		Irecv, Bcast, Reduce, AllReduce, Barrier, Wait}
	if len(actions) != len(wantTypes) {
		t.Fatalf("parsed %d actions, want %d", len(actions), len(wantTypes))
	}
	for i, w := range wantTypes {
		if actions[i].Type != w {
			t.Errorf("actions[%d].Type = %v, want %v", i, actions[i].Type, w)
		}
	}
	if !actions[5].HasVolume || actions[5].Volume != 700 {
		t.Errorf("recv with volume: %+v", actions[5])
	}
	if actions[8].Volume != 900 || actions[8].Volume2 != 1000 {
		t.Errorf("reduce volumes: %+v", actions[8])
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	const doc = "\n# a comment\n\np0 barrier\n   \n"
	actions, err := ParseAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Type != Barrier {
		t.Fatalf("actions = %+v", actions)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	actions, err := ParseAll(strings.NewReader("p0 isend p1 10\np0 allreduce 5 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if actions[0].Type != Isend || actions[1].Type != AllReduce {
		t.Fatalf("actions = %+v", actions)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p0 send p1",       // missing volume
		"p0 send 1e6",      // missing peer... parsed as peer "1e6"
		"p0 compute",       // missing volume
		"p0 frobnicate 12", // unknown action
		"px compute 5",     // bad rank
		"p0 compute abc",   // bad volume
		"p0 reduce 5",      // missing vcomp
		"p0 comm_size 0",   // size < 1
		"p0 comm_size -3",  // negative
		"p0",               // truncated
		"p0 send p-1 5",    // negative peer
	}
	for _, line := range bad {
		if _, ok, err := ParseLine(line); err == nil && ok {
			t.Errorf("ParseLine(%q): expected error, got %+v", line, ok)
		}
	}
}

func TestWriteAllParseAllRoundTrip(t *testing.T) {
	orig, err := ParseAll(strings.NewReader(figure1Trace))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, orig); err != nil {
		t.Fatal(err)
	}
	again, err := ParseAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, again) {
		t.Fatalf("round trip mismatch:\n%v\n%v", orig, again)
	}
}

// randomAction generates a valid random action for property tests.
func randomAction(rng *rand.Rand) Action {
	typ := ActionType(rng.Intn(numActionTypes))
	a := Action{Proc: rng.Intn(1024), Type: typ, Peer: -1}
	vol := func() float64 { return math.Trunc(rng.Float64()*1e9*100) / 100 }
	switch typ {
	case Compute, Bcast, Gather, AllGather, AllToAll, Scatter:
		a.Volume = vol()
	case Send, Isend:
		a.Peer = rng.Intn(1024)
		a.Volume = vol()
	case Recv, Irecv:
		a.Peer = rng.Intn(1024)
		if rng.Intn(2) == 0 {
			a.Volume = vol()
			a.HasVolume = true
		}
	case Reduce, AllReduce:
		a.Volume = vol()
		a.Volume2 = vol()
	case CommSize:
		a.Volume = float64(1 + rng.Intn(4096))
	}
	return a
}

// Property: text encode/decode is the identity on valid actions.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		orig := make([]Action, n)
		for i := range orig {
			orig[i] = randomAction(rng)
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, orig); err != nil {
			return false
		}
		again, err := ParseAll(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(orig, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: binary encode/decode is the identity on valid actions.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		orig := make([]Action, n)
		for i := range orig {
			orig[i] = randomAction(rng)
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, orig); err != nil {
			return false
		}
		again, err := DecodeBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(orig, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	actions := make([]Action, 10000)
	for i := range actions {
		actions[i] = randomAction(rng)
	}
	var txt, bin bytes.Buffer
	if err := WriteAll(&txt, actions); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(&bin, actions); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Fatalf("binary (%d B) not smaller than text (%d B)", bin.Len(), txt.Len())
	}
}

func TestBinaryRejectsCorruptHeader(t *testing.T) {
	if _, err := DecodeBinary(strings.NewReader("NOPE\x01")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := DecodeBinary(strings.NewReader("TITB\xFF")); err == nil {
		t.Fatal("expected version error")
	}
}

func TestFileRoundTripTextGzipBinary(t *testing.T) {
	dir := t.TempDir()
	orig, _ := ParseAll(strings.NewReader(figure1Trace))

	txtPath := filepath.Join(dir, "t.trace")
	if err := WriteFile(txtPath, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("text file round trip mismatch")
	}

	gzPath := filepath.Join(dir, "t.trace.gz")
	if err := WriteFile(gzPath, orig); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("gzip file round trip mismatch")
	}
	// The gzip file must actually be compressed (smaller than plain text
	// would only hold for larger traces; at least check it is a gzip file).
	raw, _ := os.ReadFile(gzPath)
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("gzip file lacks gzip magic")
	}

	binPath := filepath.Join(dir, "t.bin")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(f, orig); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = ReadFile(binPath) // auto-detected via magic
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("binary file round trip mismatch")
	}
}

func TestWriteSplit(t *testing.T) {
	dir := t.TempDir()
	orig, _ := ParseAll(strings.NewReader(figure1Trace))
	paths, err := WriteSplit(dir, 4, orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("paths = %v", paths)
	}
	if filepath.Base(paths[2]) != "SG_process2.trace" {
		t.Fatalf("path name = %q", paths[2])
	}
	for rank, p := range paths {
		actions, err := ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(actions) != 3 {
			t.Fatalf("rank %d has %d actions, want 3", rank, len(actions))
		}
		for _, a := range actions {
			if a.Proc != rank {
				t.Fatalf("rank %d file contains action of rank %d", rank, a.Proc)
			}
		}
	}
}

func TestWriteSplitRejectsForeignRank(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSplit(dir, 2, []Action{{Proc: 5, Type: Barrier, Peer: -1}}); err == nil {
		t.Fatal("expected rank range error")
	}
}

func TestStats(t *testing.T) {
	orig, _ := ParseAll(strings.NewReader(figure1Trace))
	s := Collect(orig)
	if s.Actions != 12 {
		t.Errorf("Actions = %d", s.Actions)
	}
	if s.Count(Compute) != 4 || s.Count(Send) != 4 || s.Count(Recv) != 4 {
		t.Errorf("counts: %+v", s.ByType)
	}
	if s.Flops != 4e6 || s.CommBytes != 4e6 {
		t.Errorf("volumes: flops=%g bytes=%g", s.Flops, s.CommBytes)
	}
	if s.Processes() != 4 {
		t.Errorf("Processes = %d", s.Processes())
	}
	var wantBytes int64
	for _, a := range orig {
		wantBytes += int64(len(a.Format())) + 1
	}
	if s.TextBytes != wantBytes {
		t.Errorf("TextBytes = %d, want %d", s.TextBytes, wantBytes)
	}
	if !strings.Contains(s.String(), "12 actions") {
		t.Errorf("String = %q", s.String())
	}
}

func TestScannerReportsLineNumbers(t *testing.T) {
	s := NewScanner(strings.NewReader("p0 barrier\np0 bogus 1\n"))
	if !s.Scan() {
		t.Fatal("first scan failed")
	}
	if s.Scan() {
		t.Fatal("second scan should fail")
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestTypeFromName(t *testing.T) {
	for typ, name := range names {
		got, ok := TypeFromName(name)
		if !ok || got != ActionType(typ) {
			t.Errorf("TypeFromName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := TypeFromName("nope"); ok {
		t.Error("TypeFromName accepted garbage")
	}
}
