package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Writer streams actions to an output in the textual format.
type Writer struct {
	bw      *bufio.Writer
	written int64
	count   int64
}

// NewWriter wraps w in a buffered trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one action.
func (tw *Writer) Write(a Action) error {
	line := a.Format()
	n, err := tw.bw.WriteString(line)
	if err != nil {
		return err
	}
	if err := tw.bw.WriteByte('\n'); err != nil {
		return err
	}
	tw.written += int64(n) + 1
	tw.count++
	return nil
}

// Flush drains the internal buffer.
func (tw *Writer) Flush() error { return tw.bw.Flush() }

// BytesWritten reports the number of bytes emitted so far (pre-compression).
func (tw *Writer) BytesWritten() int64 { return tw.written }

// Count reports the number of actions written.
func (tw *Writer) Count() int64 { return tw.count }

// WriteAll renders a full action list to w.
func WriteAll(w io.Writer, actions []Action) error {
	tw := NewWriter(w)
	for _, a := range actions {
		if err := tw.Write(a); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// maxLineBytes caps how much the Scanner buffers for a single line, the
// same 1 MiB bound the previous bufio.Scanner-based implementation used.
const maxLineBytes = 1 << 20

// Scanner streams actions from a textual trace. It reads lines as views
// into the underlying buffered reader — no per-line copy or string — and
// parses them with the byte-level fast path, so scanning large traces is
// allocation-free after warm-up.
type Scanner struct {
	br   *bufio.Reader
	line int
	cur  Action
	err  error
	long []byte // spill buffer for lines longer than the read buffer
}

// NewScanner wraps r in a trace scanner.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{br: bufio.NewReaderSize(r, 1<<16)}
}

// Scan advances to the next action, skipping blanks and comments. It returns
// false at end of input or on error; check Err.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for {
		line, err := s.br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			// Rare oversized line: stitch the pieces in the spill buffer,
			// bounded like the old bufio.Scanner configuration so a
			// newline-free (corrupt or binary) input errors out instead of
			// buffering the whole file.
			s.long = append(s.long[:0], line...)
			for err == bufio.ErrBufferFull {
				line, err = s.br.ReadSlice('\n')
				s.long = append(s.long, line...)
				if len(s.long) > maxLineBytes {
					s.err = fmt.Errorf("line %d: %w", s.line+1, bufio.ErrTooLong)
					return false
				}
			}
			line = s.long
		}
		if err != nil && err != io.EOF {
			s.err = err
			return false
		}
		atEOF := err == io.EOF
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
		}
		if len(line) == 0 && atEOF {
			return false
		}
		s.line++
		a, ok, perr := ParseLineBytes(line)
		if perr != nil {
			s.err = fmt.Errorf("line %d: %w", s.line, perr)
			return false
		}
		if ok {
			s.cur = a
			return true
		}
		if atEOF {
			return false
		}
	}
}

// Action returns the action read by the last successful Scan.
func (s *Scanner) Action() Action { return s.cur }

// Err returns the first error encountered.
func (s *Scanner) Err() error { return s.err }

// ParseAll reads every action from r.
func ParseAll(r io.Reader) ([]Action, error) {
	var out []Action
	s := NewScanner(r)
	for s.Scan() {
		out = append(out, s.Action())
	}
	return out, s.Err()
}

// ProcessFileName returns the conventional per-process trace file name used
// throughout the paper: "SG_process<rank>.trace".
func ProcessFileName(rank int) string {
	return fmt.Sprintf("SG_process%d.trace", rank)
}

// GzipFileName is ProcessFileName's gzip-container variant.
func GzipFileName(rank int) string { return ProcessFileName(rank) + ".gz" }

// BinaryFileName is the per-process file name of the binary codec:
// "SG_process<rank>.tib".
func BinaryFileName(rank int) string {
	return fmt.Sprintf("SG_process%d.tib", rank)
}

// WriteSplit writes one trace file per process under dir, named with
// ProcessFileName, and returns the file paths indexed by rank. Ranks with no
// actions still get an (empty) file so deployments stay aligned.
func WriteSplit(dir string, nprocs int, actions []Action) ([]string, error) {
	writers := make([]*Writer, nprocs)
	files := make([]*os.File, nprocs)
	paths := make([]string, nprocs)
	for r := 0; r < nprocs; r++ {
		p := filepath.Join(dir, ProcessFileName(r))
		f, err := os.Create(p)
		if err != nil {
			return nil, err
		}
		files[r] = f
		writers[r] = NewWriter(f)
		paths[r] = p
	}
	cleanup := func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}
	for _, a := range actions {
		if a.Proc < 0 || a.Proc >= nprocs {
			cleanup()
			return nil, fmt.Errorf("trace: action for rank %d outside 0..%d", a.Proc, nprocs-1)
		}
		if err := writers[a.Proc].Write(a); err != nil {
			cleanup()
			return nil, err
		}
	}
	for r := 0; r < nprocs; r++ {
		if err := writers[r].Flush(); err != nil {
			cleanup()
			return nil, err
		}
		if err := files[r].Close(); err != nil {
			return nil, err
		}
		files[r] = nil
	}
	return paths, nil
}

// ReadFile loads every action of a trace file; transparently decompresses
// ".gz" files and decodes the binary format based on its magic header.
func ReadFile(path string) ([]Action, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	br := bufio.NewReaderSize(r, 1<<16)
	if isBinary, err := sniffBinary(br); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	} else if isBinary {
		if r == io.Reader(f) {
			// Uncompressed binary file: decode it through the memory map
			// instead of draining the reader into a second copy.
			return ReadFileMapped(path)
		}
		return DecodeBinary(br)
	}
	actions, err := ParseAll(br)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return actions, nil
}

// WriteFile writes actions to path in the textual format; a ".gz" suffix
// enables gzip compression (the containment measurement of Section 6.5).
func WriteFile(path string, actions []Action) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := WriteAll(w, actions); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}
