// Package trace implements the time-independent trace format at the heart
// of the paper (Section 3): the execution of an MPI application is logged as
// a list of actions per process, where each action records the *volume* of
// the operation — a number of floating-point operations for CPU bursts, a
// number of bytes for communications — instead of a time-stamp. Volumes do
// not depend on the host platform, which decouples trace acquisition from
// trace replay.
//
// The package provides the action model of Table 1, the textual codec used
// throughout the paper (Figure 1), a compact binary codec (the future-work
// item of Section 7), gzip containers, per-process file handling and trace
// statistics.
//
// # Memory-mapped binary traces
//
// Binary (.tib) traces can be opened through OpenMapped/ReadFileMapped: the
// file is memory-mapped read-only and records are decoded in place by a
// BinaryCursor, so loading a trace costs no read-ahead copy and replay
// startup is bounded by I/O alone. The mmap path is build-tagged for the
// platforms with a wired mmap syscall (mmap_unix.go: linux, darwin and the
// BSDs); every other platform — and any file the kernel refuses to map —
// degrades transparently to a portable read-the-file fallback
// (mmap_fallback.go) with the identical interface and decoding path.
package trace

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ActionType enumerates the time-independent counterparts of the MPI
// operations supported by the prototype (Table 1 of the paper).
type ActionType uint8

const (
	// Compute is a CPU burst: "<id> compute <volume>" with volume in flops.
	Compute ActionType = iota
	// Send is a blocking send: "<id> send <dst_id> <volume>".
	Send
	// Isend is an asynchronous send: "<id> Isend <dst_id> <volume>".
	Isend
	// Recv is a blocking receive: "<id> recv <src_id> [<volume>]".
	Recv
	// Irecv is an asynchronous receive: "<id> Irecv <src_id> [<volume>]".
	Irecv
	// Bcast is a broadcast rooted at process 0: "<id> bcast <volume>".
	Bcast
	// Reduce is a reduction to process 0: "<id> reduce <vcomm> <vcomp>".
	Reduce
	// AllReduce is "<id> allReduce <vcomm> <vcomp>".
	AllReduce
	// Barrier is "<id> barrier".
	Barrier
	// CommSize declares the communicator size before any collective:
	// "<id> comm_size <nproc>".
	CommSize
	// Wait completes the oldest pending asynchronous request: "<id> wait".
	Wait
	// Gather collects one block per rank at process 0:
	// "<id> gather <volume>" with volume the per-rank contribution in bytes.
	Gather
	// AllGather leaves every rank with all blocks: "<id> allGather <volume>".
	AllGather
	// AllToAll is a personalised all-to-all exchange:
	// "<id> allToAll <volume>" with volume the per-pair block size in bytes.
	AllToAll
	// Scatter distributes one block per rank from process 0:
	// "<id> scatter <volume>".
	Scatter
	// WaitAll completes every pending asynchronous request: "<id> waitAll".
	WaitAll

	numActionTypes = iota
)

// NumTypes is the number of defined action types; dense per-type tables
// (like the replay registry's handler cache) are sized by it.
const NumTypes = numActionTypes

// names maps ActionType to its keyword in the textual format. Capitalisation
// follows Table 1 of the paper ("Isend", "allReduce").
var names = [numActionTypes]string{
	Compute:   "compute",
	Send:      "send",
	Isend:     "Isend",
	Recv:      "recv",
	Irecv:     "Irecv",
	Bcast:     "bcast",
	Reduce:    "reduce",
	AllReduce: "allReduce",
	Barrier:   "barrier",
	CommSize:  "comm_size",
	Wait:      "wait",
	Gather:    "gather",
	AllGather: "allGather",
	AllToAll:  "allToAll",
	Scatter:   "scatter",
	WaitAll:   "waitAll",
}

// typesByName is the inverse of names. Lookup is case-sensitive first and
// falls back to a lower-cased comparison, accepting "isend" or "allreduce".
var typesByName = func() map[string]ActionType {
	m := make(map[string]ActionType, 2*numActionTypes)
	for t, n := range names {
		m[n] = ActionType(t)
		m[strings.ToLower(n)] = ActionType(t)
	}
	return m
}()

// String returns the keyword of the action type.
func (t ActionType) String() string {
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("ActionType(%d)", uint8(t))
}

// TypeFromName resolves a keyword to its ActionType.
func TypeFromName(s string) (ActionType, bool) {
	t, ok := typesByName[s]
	if !ok {
		t, ok = typesByName[strings.ToLower(s)]
	}
	return t, ok
}

// Action is one entry of a time-independent trace.
type Action struct {
	// Proc is the rank of the process performing the action.
	Proc int
	// Type is the kind of operation.
	Type ActionType
	// Peer is the destination rank for sends and the source rank for
	// receives; -1 for all other actions.
	Peer int
	// Volume is the action's main volume: flops for Compute, bytes for the
	// point-to-point and Bcast actions, the communication volume for Reduce
	// and AllReduce, and the communicator size for CommSize.
	Volume float64
	// Volume2 is the computation volume of Reduce and AllReduce (vcomp).
	Volume2 float64
	// HasVolume records whether a receive carried an explicit volume; the
	// paper's example (Figure 1) omits it since the matching send fixes the
	// message size.
	HasVolume bool
}

// usableVolume reports whether v can serve as a volume. NaN, ±Inf and
// negative values would all poison the replay's resource arithmetic (a NaN
// compute burst never completes, an infinite message size deadlocks the
// sharing solver), so Validate rejects them at the codec boundary — on both
// the text and binary paths, reading and writing alike. The comparison
// rejects NaN without an explicit IsNaN call: NaN >= 0 is false.
func usableVolume(v float64) bool {
	return v >= 0 && v <= math.MaxFloat64
}

// Validate checks structural invariants of the action.
func (a Action) Validate() error {
	if a.Proc < 0 {
		return fmt.Errorf("trace: negative process rank %d", a.Proc)
	}
	switch a.Type {
	case Compute:
		if !usableVolume(a.Volume) {
			return fmt.Errorf("trace: bad compute volume %g (want finite >= 0)", a.Volume)
		}
	case Send, Isend:
		if a.Peer < 0 {
			return fmt.Errorf("trace: %s without destination", a.Type)
		}
		if !usableVolume(a.Volume) {
			return fmt.Errorf("trace: bad message size %g (want finite >= 0)", a.Volume)
		}
	case Recv, Irecv:
		if a.Peer < 0 {
			return fmt.Errorf("trace: %s without source", a.Type)
		}
		if a.HasVolume && !usableVolume(a.Volume) {
			return fmt.Errorf("trace: bad %s volume %g (want finite >= 0)", a.Type, a.Volume)
		}
	case Bcast, Gather, AllGather, AllToAll, Scatter:
		if !usableVolume(a.Volume) {
			return fmt.Errorf("trace: bad %s size %g (want finite >= 0)", a.Type, a.Volume)
		}
	case Reduce, AllReduce:
		if !usableVolume(a.Volume) || !usableVolume(a.Volume2) {
			return fmt.Errorf("trace: bad %s volumes (%g, %g) (want finite >= 0)", a.Type, a.Volume, a.Volume2)
		}
	case CommSize:
		if !(a.Volume >= 1) || a.Volume > math.MaxFloat64 {
			return fmt.Errorf("trace: bad comm_size %g (want finite >= 1)", a.Volume)
		}
	case Barrier, Wait, WaitAll:
		// No payload.
	default:
		return fmt.Errorf("trace: unknown action type %d", a.Type)
	}
	return nil
}

// Format renders the action as one line of the textual time-independent
// format, e.g. "p1 send p0 163840".
func (a Action) Format() string {
	var b strings.Builder
	b.Grow(32)
	b.WriteByte('p')
	b.WriteString(strconv.Itoa(a.Proc))
	b.WriteByte(' ')
	b.WriteString(names[a.Type])
	switch a.Type {
	case Compute, Bcast, Gather, AllGather, AllToAll, Scatter:
		b.WriteByte(' ')
		b.WriteString(formatVolume(a.Volume))
	case Send, Isend:
		b.WriteString(" p")
		b.WriteString(strconv.Itoa(a.Peer))
		b.WriteByte(' ')
		b.WriteString(formatVolume(a.Volume))
	case Recv, Irecv:
		b.WriteString(" p")
		b.WriteString(strconv.Itoa(a.Peer))
		if a.HasVolume {
			b.WriteByte(' ')
			b.WriteString(formatVolume(a.Volume))
		}
	case Reduce, AllReduce:
		b.WriteByte(' ')
		b.WriteString(formatVolume(a.Volume))
		b.WriteByte(' ')
		b.WriteString(formatVolume(a.Volume2))
	case CommSize:
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(int(a.Volume)))
	case Barrier, Wait, WaitAll:
	}
	return b.String()
}

// formatVolume renders volumes compactly ("1e+06" style for large values).
func formatVolume(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseLine parses one line of the textual format. Empty lines and lines
// starting with '#' yield ok=false with a nil error. It is the string
// convenience wrapper over ParseLineBytes, the allocation-free fast path;
// lines of realistic length go through a stack buffer, so the wrapper is
// allocation-free too.
func ParseLine(line string) (a Action, ok bool, err error) {
	var buf [128]byte
	if len(line) <= len(buf) {
		return ParseLineBytes(buf[:copy(buf[:], line)])
	}
	return ParseLineBytes([]byte(line))
}
