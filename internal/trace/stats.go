package trace

import (
	"fmt"
	"strings"
)

// Stats aggregates what Table 3 of the paper reports about a trace: the
// number of actions (in total and by type), the textual size, and the
// volumes it carries.
type Stats struct {
	Actions   int64
	ByType    [numActionTypes]int64
	TextBytes int64 // size of the trace in the textual encoding
	Flops     float64
	CommBytes float64
	MaxProc   int
}

// Observe folds one action into the statistics.
func (s *Stats) Observe(a Action) {
	s.Actions++
	s.ByType[a.Type]++
	s.TextBytes += int64(len(a.Format())) + 1 // newline
	switch a.Type {
	case Compute:
		s.Flops += a.Volume
	case Send, Isend:
		s.CommBytes += a.Volume
	case Bcast, Reduce, AllReduce, Gather, AllGather, AllToAll, Scatter:
		s.CommBytes += a.Volume
		s.Flops += a.Volume2
	}
	if a.Proc > s.MaxProc {
		s.MaxProc = a.Proc
	}
}

// Collect computes statistics over an action list.
func Collect(actions []Action) Stats {
	var s Stats
	for _, a := range actions {
		s.Observe(a)
	}
	return s
}

// Count returns the number of actions of the given type.
func (s *Stats) Count(t ActionType) int64 {
	if int(t) >= len(s.ByType) {
		return 0
	}
	return s.ByType[t]
}

// Processes returns the number of distinct ranks, assuming contiguous
// numbering from zero.
func (s *Stats) Processes() int {
	if s.Actions == 0 {
		return 0
	}
	return s.MaxProc + 1
}

// String renders a short human-readable summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d actions over %d processes (%.1f MiB text)",
		s.Actions, s.Processes(), float64(s.TextBytes)/(1<<20))
	var parts []string
	for t := ActionType(0); int(t) < numActionTypes; t++ {
		if n := s.ByType[t]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", t, n))
		}
	}
	if len(parts) > 0 {
		b.WriteString(": ")
		b.WriteString(strings.Join(parts, " "))
	}
	return b.String()
}
