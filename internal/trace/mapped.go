package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// MappedTrace is a read-only view of a binary trace file. On platforms with
// mmap support (the `unix`-style build tags in mmap_unix.go) the view is the
// page cache itself, so opening a multi-gigabyte trace costs no read or copy
// and decoding is bounded by I/O alone; elsewhere, or when mapping fails,
// the portable fallback (mmap_fallback.go) reads the file into memory and
// presents the identical interface.
type MappedTrace struct {
	data    []byte
	release func() error
}

// OpenMapped maps (or, on fallback, loads) the binary trace file at path.
// The caller must Close the view when done; Action values decoded from it
// do not reference the mapping and stay valid afterwards.
func OpenMapped(path string) (*MappedTrace, error) {
	data, release, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	return &MappedTrace{data: data, release: release}, nil
}

// Data exposes the raw bytes of the view.
func (m *MappedTrace) Data() []byte { return m.data }

// Close releases the mapping (or the fallback buffer). The view's bytes
// must not be used afterwards.
func (m *MappedTrace) Close() error {
	release := m.release
	m.data, m.release = nil, nil
	if release == nil {
		return nil
	}
	return release()
}

// Cursor returns a streaming decoder over the view, validating the header.
func (m *MappedTrace) Cursor() (*BinaryCursor, error) {
	return NewBinaryCursor(m.data)
}

// ReadFileMapped loads every action of a binary trace file through a memory
// map: the records are decoded in place, so beyond the returned actions the
// read performs no allocation or copy of the file contents.
func ReadFileMapped(path string) ([]Action, error) {
	m, err := OpenMapped(path)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	actions, err := DecodeBinaryBytes(m.Data())
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return actions, nil
}

// readWholeFile is the portable mapFile implementation: it loads the file
// into memory. The mmap build also uses it when the kernel refuses to map
// (e.g. special filesystems).
func readWholeFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

// BinaryCursor decodes binary-format records sequentially from a byte
// slice, in place: no buffered reader, no intermediate copies. It
// implements the replay tool's Source contract, so a mapped trace streams
// straight into a replaying rank.
type BinaryCursor struct {
	data []byte
	off  int
	// rec counts decoded records so errors carry a position, the binary
	// analogue of the text scanner's line numbers.
	rec int
}

// NewBinaryCursor validates the binary header of data and returns a cursor
// positioned at the first record.
func NewBinaryCursor(data []byte) (*BinaryCursor, error) {
	if len(data) < len(binaryMagic)+1 {
		return nil, fmt.Errorf("trace: binary header: %w", io.ErrUnexpectedEOF)
	}
	if string(data[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad binary magic %q", data[:len(binaryMagic)])
	}
	if v := data[len(binaryMagic)]; v != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d", v)
	}
	return &BinaryCursor{data: data, off: len(binaryMagic) + 1}, nil
}

func (c *BinaryCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		if n == 0 {
			return 0, fmt.Errorf("trace: binary varint: %w", io.ErrUnexpectedEOF)
		}
		return 0, fmt.Errorf("trace: binary varint overflow")
	}
	c.off += n
	return v, nil
}

func (c *BinaryCursor) float() (float64, error) {
	if len(c.data)-c.off < 8 {
		return 0, fmt.Errorf("trace: binary volume: %w", io.ErrUnexpectedEOF)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.data[c.off:]))
	c.off += 8
	return v, nil
}

// fail positions a record-decoding error: "record N: ...", counting records
// from 1 — the binary counterpart of the text scanner's "line N:" wrapping.
func (c *BinaryCursor) fail(err error) (Action, bool, error) {
	return Action{}, false, fmt.Errorf("record %d: %w", c.rec, err)
}

// Next decodes the next record. It returns ok=false with a nil error at the
// end of the stream.
func (c *BinaryCursor) Next() (a Action, ok bool, err error) {
	if c.off >= len(c.data) {
		return Action{}, false, nil
	}
	c.rec++
	tb := c.data[c.off]
	c.off++
	noVol := tb&flagNoVolume != 0
	typ := ActionType(tb &^ flagNoVolume)
	if int(typ) >= numActionTypes {
		return c.fail(fmt.Errorf("trace: bad binary action type %d", typ))
	}
	proc, err := c.uvarint()
	if err != nil {
		return c.fail(err)
	}
	a = Action{Proc: int(proc), Type: typ, Peer: -1}
	switch typ {
	case Compute, Bcast, CommSize, Gather, AllGather, AllToAll, Scatter:
		if a.Volume, err = c.float(); err != nil {
			return c.fail(err)
		}
	case Send, Isend, Recv, Irecv:
		peer, err := c.uvarint()
		if err != nil {
			return c.fail(err)
		}
		a.Peer = int(peer)
		if typ == Send || typ == Isend || !noVol {
			if a.Volume, err = c.float(); err != nil {
				return c.fail(err)
			}
			if typ == Recv || typ == Irecv {
				a.HasVolume = true
			}
		}
	case Reduce, AllReduce:
		if a.Volume, err = c.float(); err != nil {
			return c.fail(err)
		}
		if a.Volume2, err = c.float(); err != nil {
			return c.fail(err)
		}
	case Barrier, Wait, WaitAll:
	}
	if err := a.Validate(); err != nil {
		return c.fail(err)
	}
	return a, true, nil
}

// DecodeBinaryBytes reads every action from an in-memory binary stream.
func DecodeBinaryBytes(data []byte) ([]Action, error) {
	c, err := NewBinaryCursor(data)
	if err != nil {
		return nil, err
	}
	var out []Action
	for {
		a, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, a)
	}
}
