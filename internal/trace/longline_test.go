package trace

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

// TestScannerRejectsOversizedLine: a newline-free input larger than the
// 1 MiB line cap must surface bufio.ErrTooLong, as before the rewrite.
func TestScannerRejectsOversizedLine(t *testing.T) {
	big := bytes.Repeat([]byte("x"), maxLineBytes+4096)
	sc := NewScanner(bytes.NewReader(big))
	for sc.Scan() {
	}
	if err := sc.Err(); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}
