//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package trace

// mapFile on platforms without a wired mmap syscall: the portable
// io.ReaderAt-equivalent fallback reads the whole file. Same interface,
// same in-place decoding — only the zero-copy property is lost.
func mapFile(path string) ([]byte, func() error, error) {
	return readWholeFile(path)
}
