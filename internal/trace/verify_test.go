package trace

import (
	"strings"
	"testing"
)

func verifyDoc(t *testing.T, doc string, n int) []VerifyError {
	t.Helper()
	actions, err := ParseAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([][]Action, n)
	for _, a := range actions {
		perRank[a.Proc] = append(perRank[a.Proc], a)
	}
	return Verify(perRank)
}

func TestVerifyCleanTrace(t *testing.T) {
	const doc = `p0 comm_size 2
p0 compute 10
p0 send p1 100
p0 Irecv p1
p0 wait
p0 barrier
p1 comm_size 2
p1 recv p0
p1 Isend p0 50
p1 barrier
`
	if errs := verifyDoc(t, doc, 2); len(errs) != 0 {
		t.Fatalf("clean trace flagged: %v", errs)
	}
}

func TestVerifyUnmatchedSend(t *testing.T) {
	const doc = `p0 send p1 100
p1 barrier
p0 barrier
`
	errs := verifyDoc(t, doc, 2)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "posts 0 receive") {
		t.Fatalf("errs = %v", errs)
	}
}

func TestVerifyDanglingIrecv(t *testing.T) {
	const doc = `p0 Irecv p1
p1 send p0 10
`
	errs := verifyDoc(t, doc, 2)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "never completed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dangling Irecv not reported: %v", errs)
	}
}

func TestVerifyWaitWithoutIrecv(t *testing.T) {
	const doc = "p0 wait\n"
	errs := verifyDoc(t, doc, 1)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "no pending Irecv") {
		t.Fatalf("errs = %v", errs)
	}
}

func TestVerifyCommSizeMismatch(t *testing.T) {
	const doc = "p0 comm_size 8\n"
	errs := verifyDoc(t, doc, 1)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "world has 1") {
		t.Fatalf("errs = %v", errs)
	}
}

func TestVerifyCollectiveDivergence(t *testing.T) {
	const doc = `p0 bcast 100
p1 bcast 200
`
	errs := verifyDoc(t, doc, 2)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "collective 0") {
		t.Fatalf("errs = %v", errs)
	}

	const missing = `p0 bcast 100
p0 barrier
p1 bcast 100
`
	errs = verifyDoc(t, missing, 2)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "1 collective(s) but p0 has 2") {
		t.Fatalf("errs = %v", errs)
	}
}

func TestVerifyPeerOutOfRange(t *testing.T) {
	const doc = "p0 send p9 10\n"
	errs := verifyDoc(t, doc, 1)
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "outside world") {
		t.Fatalf("errs = %v", errs)
	}
}

func TestVerifySelfMessage(t *testing.T) {
	perRank := [][]Action{{{Proc: 0, Type: Send, Peer: 0, Volume: 1}}}
	errs := Verify(perRank)
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "self message") {
		t.Fatalf("errs = %v", errs)
	}
}

func TestVerifyForeignAction(t *testing.T) {
	perRank := [][]Action{{{Proc: 1, Type: Barrier, Peer: -1}}, nil}
	errs := Verify(perRank)
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "belongs to p1") {
		t.Fatalf("errs = %v", errs)
	}
}
