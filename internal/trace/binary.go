package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// The binary codec is the future-work item of Section 7 ("we also aim at
// exploring techniques to reduce the size of the traces, e.g., using a
// binary format"). Records are self-describing and delta-friendly:
//
//	magic "TITB" | version byte | records...
//
// Each record starts with the action type byte, followed by the process
// rank as an unsigned varint, the peer (when the type has one) as an
// unsigned varint, and each volume as an 8-byte little-endian float64. A
// receive with no explicit volume sets the high bit of the type byte.
const (
	binaryMagic   = "TITB"
	binaryVersion = 1

	flagNoVolume = 0x80
)

// sniffBinary peeks at the reader to detect the binary magic.
func sniffBinary(br *bufio.Reader) (bool, error) {
	head, err := br.Peek(len(binaryMagic))
	if err != nil {
		if errors.Is(err, io.EOF) {
			return false, nil // short file: treat as (possibly empty) text
		}
		return false, err
	}
	return string(head) == binaryMagic, nil
}

// BinaryWriter streams actions in the binary format.
type BinaryWriter struct {
	bw      *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	written int64
	count   int64
	started bool
}

// NewBinaryWriter wraps w; the header is emitted lazily on first write so an
// unused writer produces no bytes.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

func (bw *BinaryWriter) ensureHeader() error {
	if bw.started {
		return nil
	}
	bw.started = true
	if _, err := bw.bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	bw.written += int64(len(binaryMagic)) + 1
	return nil
}

func (bw *BinaryWriter) putUvarint(v uint64) error {
	n := binary.PutUvarint(bw.scratch[:], v)
	_, err := bw.bw.Write(bw.scratch[:n])
	bw.written += int64(n)
	return err
}

func (bw *BinaryWriter) putFloat(v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := bw.bw.Write(buf[:])
	bw.written += 8
	return err
}

// Write appends one action record.
func (bw *BinaryWriter) Write(a Action) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if err := bw.ensureHeader(); err != nil {
		return err
	}
	tb := byte(a.Type)
	if (a.Type == Recv || a.Type == Irecv) && !a.HasVolume {
		tb |= flagNoVolume
	}
	if err := bw.bw.WriteByte(tb); err != nil {
		return err
	}
	bw.written++
	if err := bw.putUvarint(uint64(a.Proc)); err != nil {
		return err
	}
	switch a.Type {
	case Compute, Bcast, CommSize:
		if err := bw.putFloat(a.Volume); err != nil {
			return err
		}
	case Send, Isend:
		if err := bw.putUvarint(uint64(a.Peer)); err != nil {
			return err
		}
		if err := bw.putFloat(a.Volume); err != nil {
			return err
		}
	case Recv, Irecv:
		if err := bw.putUvarint(uint64(a.Peer)); err != nil {
			return err
		}
		if a.HasVolume {
			if err := bw.putFloat(a.Volume); err != nil {
				return err
			}
		}
	case Reduce, AllReduce:
		if err := bw.putFloat(a.Volume); err != nil {
			return err
		}
		if err := bw.putFloat(a.Volume2); err != nil {
			return err
		}
	case Barrier, Wait:
	}
	bw.count++
	return nil
}

// Flush drains the internal buffer.
func (bw *BinaryWriter) Flush() error {
	if err := bw.ensureHeader(); err != nil {
		return err
	}
	return bw.bw.Flush()
}

// BytesWritten reports the bytes emitted so far (including the header).
func (bw *BinaryWriter) BytesWritten() int64 { return bw.written }

// Count reports the number of actions written.
func (bw *BinaryWriter) Count() int64 { return bw.count }

// EncodeBinary renders a full action list in the binary format.
func EncodeBinary(w io.Writer, actions []Action) error {
	bw := NewBinaryWriter(w)
	for _, a := range actions {
		if err := bw.Write(a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeBinary reads every action from a binary-format stream.
func DecodeBinary(r io.Reader) ([]Action, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	head := make([]byte, len(binaryMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if string(head[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad binary magic %q", head[:len(binaryMagic)])
	}
	if head[len(binaryMagic)] != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d", head[len(binaryMagic)])
	}
	var out []Action
	for {
		tb, err := br.ReadByte()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		noVol := tb&flagNoVolume != 0
		typ := ActionType(tb &^ flagNoVolume)
		if int(typ) >= numActionTypes {
			return nil, fmt.Errorf("trace: bad binary action type %d", typ)
		}
		proc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: binary rank: %w", err)
		}
		a := Action{Proc: int(proc), Type: typ, Peer: -1}
		readFloat := func() (float64, error) {
			var buf [8]byte
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return 0, err
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
		}
		switch typ {
		case Compute, Bcast, CommSize:
			if a.Volume, err = readFloat(); err != nil {
				return nil, err
			}
		case Send, Isend, Recv, Irecv:
			peer, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			a.Peer = int(peer)
			if typ == Send || typ == Isend || !noVol {
				if a.Volume, err = readFloat(); err != nil {
					return nil, err
				}
				if typ == Recv || typ == Irecv {
					a.HasVolume = true
				}
			}
		case Reduce, AllReduce:
			if a.Volume, err = readFloat(); err != nil {
				return nil, err
			}
			if a.Volume2, err = readFloat(); err != nil {
				return nil, err
			}
		case Barrier, Wait:
		}
		if err := a.Validate(); err != nil {
			return nil, err
		}
		out = append(out, a)
	}
}
