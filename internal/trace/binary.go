package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// The binary codec is the future-work item of Section 7 ("we also aim at
// exploring techniques to reduce the size of the traces, e.g., using a
// binary format"). Records are self-describing and delta-friendly:
//
//	magic "TITB" | version byte | records...
//
// Each record starts with the action type byte, followed by the process
// rank as an unsigned varint, the peer (when the type has one) as an
// unsigned varint, and each volume as an 8-byte little-endian float64. A
// receive with no explicit volume sets the high bit of the type byte.
const (
	binaryMagic   = "TITB"
	binaryVersion = 1

	flagNoVolume = 0x80
)

// sniffBinary peeks at the reader to detect the binary magic.
func sniffBinary(br *bufio.Reader) (bool, error) {
	head, err := br.Peek(len(binaryMagic))
	if err != nil {
		if errors.Is(err, io.EOF) {
			return false, nil // short file: treat as (possibly empty) text
		}
		return false, err
	}
	return string(head) == binaryMagic, nil
}

// BinaryWriter streams actions in the binary format.
type BinaryWriter struct {
	bw      *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	written int64
	count   int64
	started bool
}

// NewBinaryWriter wraps w; the header is emitted lazily on first write so an
// unused writer produces no bytes.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

func (bw *BinaryWriter) ensureHeader() error {
	if bw.started {
		return nil
	}
	bw.started = true
	if _, err := bw.bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	bw.written += int64(len(binaryMagic)) + 1
	return nil
}

func (bw *BinaryWriter) putUvarint(v uint64) error {
	n := binary.PutUvarint(bw.scratch[:], v)
	_, err := bw.bw.Write(bw.scratch[:n])
	bw.written += int64(n)
	return err
}

func (bw *BinaryWriter) putFloat(v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := bw.bw.Write(buf[:])
	bw.written += 8
	return err
}

// Write appends one action record.
func (bw *BinaryWriter) Write(a Action) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if err := bw.ensureHeader(); err != nil {
		return err
	}
	tb := byte(a.Type)
	if (a.Type == Recv || a.Type == Irecv) && !a.HasVolume {
		tb |= flagNoVolume
	}
	if err := bw.bw.WriteByte(tb); err != nil {
		return err
	}
	bw.written++
	if err := bw.putUvarint(uint64(a.Proc)); err != nil {
		return err
	}
	switch a.Type {
	case Compute, Bcast, CommSize, Gather, AllGather, AllToAll, Scatter:
		if err := bw.putFloat(a.Volume); err != nil {
			return err
		}
	case Send, Isend:
		if err := bw.putUvarint(uint64(a.Peer)); err != nil {
			return err
		}
		if err := bw.putFloat(a.Volume); err != nil {
			return err
		}
	case Recv, Irecv:
		if err := bw.putUvarint(uint64(a.Peer)); err != nil {
			return err
		}
		if a.HasVolume {
			if err := bw.putFloat(a.Volume); err != nil {
				return err
			}
		}
	case Reduce, AllReduce:
		if err := bw.putFloat(a.Volume); err != nil {
			return err
		}
		if err := bw.putFloat(a.Volume2); err != nil {
			return err
		}
	case Barrier, Wait, WaitAll:
	}
	bw.count++
	return nil
}

// Flush drains the internal buffer.
func (bw *BinaryWriter) Flush() error {
	if err := bw.ensureHeader(); err != nil {
		return err
	}
	return bw.bw.Flush()
}

// BytesWritten reports the bytes emitted so far (including the header).
func (bw *BinaryWriter) BytesWritten() int64 { return bw.written }

// Count reports the number of actions written.
func (bw *BinaryWriter) Count() int64 { return bw.count }

// EncodeBinary renders a full action list in the binary format.
func EncodeBinary(w io.Writer, actions []Action) error {
	bw := NewBinaryWriter(w)
	for _, a := range actions {
		if err := bw.Write(a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeBinary reads every action from a binary-format stream. It drains r
// into memory and decodes with DecodeBinaryBytes, so the peak cost is the
// raw stream plus the decoded actions; callers that can map or already hold
// the bytes should use DecodeBinaryBytes or a BinaryCursor directly to
// decode in place (ReadFile routes uncompressed binary files through
// ReadFileMapped for exactly that reason).
func DecodeBinary(r io.Reader) ([]Action, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBinaryBytes(data)
}
