package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// TestValidateRejectsNonFiniteVolumes pins the hardened Validate: NaN,
// ±Inf and negative volumes are refused for every action shape that
// carries one, including the explicit receive volume that used to slip
// through unchecked.
func TestValidateRejectsNonFiniteVolumes(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := []Action{
		{Proc: 0, Type: Compute, Peer: -1, Volume: nan},
		{Proc: 0, Type: Compute, Peer: -1, Volume: inf},
		{Proc: 0, Type: Compute, Peer: -1, Volume: -1},
		{Proc: 0, Type: Send, Peer: 1, Volume: nan},
		{Proc: 0, Type: Isend, Peer: 1, Volume: inf},
		{Proc: 0, Type: Recv, Peer: 1, Volume: nan, HasVolume: true},
		{Proc: 0, Type: Irecv, Peer: 1, Volume: -2, HasVolume: true},
		{Proc: 0, Type: Bcast, Peer: -1, Volume: inf},
		{Proc: 0, Type: Gather, Peer: -1, Volume: nan},
		{Proc: 0, Type: Reduce, Peer: -1, Volume: 1, Volume2: nan},
		{Proc: 0, Type: AllReduce, Peer: -1, Volume: inf, Volume2: 1},
		{Proc: 0, Type: CommSize, Peer: -1, Volume: nan},
		{Proc: 0, Type: CommSize, Peer: -1, Volume: inf},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", a)
		}
	}
	// An omitted receive volume stays legal whatever garbage the zeroed
	// field holds semantically — HasVolume is the gate.
	ok := Action{Proc: 0, Type: Recv, Peer: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected volume-less recv: %v", err)
	}
}

// TestTextPathRejectsNonFiniteWithLineNumber drives the non-finite
// rejection through the text codec: strconv parses "NaN" happily, so the
// validation layer must catch it — and the scanner must say which line.
func TestTextPathRejectsNonFiniteWithLineNumber(t *testing.T) {
	for _, line := range []string{
		"p0 compute NaN",
		"p0 send p1 Inf",
		"p0 Irecv p1 NaN",
		"p0 reduce 1 NaN",
		"p0 comm_size Inf",
	} {
		if a, ok, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) = %+v, ok=%v, want error", line, a, ok)
		}
	}
	s := NewScanner(strings.NewReader("p0 compute 1e6\np0 compute NaN\n"))
	for s.Scan() {
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "line 2:") {
		t.Fatalf("scanner error = %v, want a line-2 diagnosis", err)
	}
}

// TestBinaryPathRejectsNonFiniteWithRecordNumber crafts binary streams the
// hardened writer refuses to produce and checks the cursor rejects them
// with a record position, mirroring the text scanner's line numbers.
func TestBinaryPathRejectsNonFiniteWithRecordNumber(t *testing.T) {
	record := func(v float64) []byte {
		b := []byte{byte(Compute), 0x00}
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	stream := append([]byte(binaryMagic), binaryVersion)
	stream = append(stream, record(1e6)...)
	stream = append(stream, record(2e6)...)
	stream = append(stream, record(math.NaN())...)

	if _, err := DecodeBinaryBytes(stream); err == nil ||
		!strings.Contains(err.Error(), "record 3:") {
		t.Fatalf("DecodeBinaryBytes error = %v, want a record-3 diagnosis", err)
	}

	// A truncated stream is positioned too.
	if _, err := DecodeBinaryBytes(stream[:len(stream)-4]); err == nil ||
		!strings.Contains(err.Error(), "record 3:") {
		t.Fatalf("truncated stream error = %v, want a record-3 diagnosis", err)
	}

	// The writer side refuses to emit the poison in the first place.
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Write(Action{Proc: 0, Type: Compute, Peer: -1, Volume: math.NaN()}); err == nil {
		t.Fatal("BinaryWriter.Write accepted a NaN volume")
	}
	if err := bw.Write(Action{Proc: 0, Type: Irecv, Peer: 1, Volume: math.Inf(1), HasVolume: true}); err == nil {
		t.Fatal("BinaryWriter.Write accepted an infinite receive volume")
	}
}
