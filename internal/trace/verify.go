package trace

import (
	"fmt"
	"sort"
)

// VerifyError describes an inconsistency found in a set of per-process
// traces.
type VerifyError struct {
	Proc    int
	Index   int // action index within the process trace, -1 for global
	Problem string
}

func (e VerifyError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("trace: p%d action %d: %s", e.Proc, e.Index, e.Problem)
	}
	return fmt.Sprintf("trace: p%d: %s", e.Proc, e.Problem)
}

// Verify checks the cross-process consistency of a trace before replay:
//
//   - every action is structurally valid and owned by its process;
//   - peers are within the world;
//   - per ordered pair, the number of messages sent equals the number of
//     receives posted (a mismatch guarantees a stalled replay);
//   - each process posts at least as many waits as asynchronous receives,
//     and never waits with no request pending;
//   - every process declares the same comm_size, equal to the world size;
//   - all processes perform the same sequence of collective operations
//     (MPI would deadlock or crash otherwise).
//
// It returns every problem found (possibly empty).
func Verify(perRank [][]Action) []VerifyError {
	n := len(perRank)
	var errs []VerifyError
	report := func(proc, idx int, format string, args ...any) {
		errs = append(errs, VerifyError{Proc: proc, Index: idx, Problem: fmt.Sprintf(format, args...)})
	}

	sends := make(map[[2]int]int) // (src,dst) -> messages sent
	recvs := make(map[[2]int]int) // (src,dst) -> receives posted
	collectives := make([][]string, n)

	for rank, actions := range perRank {
		pendingIrecv := 0
		for idx, a := range actions {
			if err := a.Validate(); err != nil {
				report(rank, idx, "invalid action: %v", err)
				continue
			}
			if a.Proc != rank {
				report(rank, idx, "action belongs to p%d", a.Proc)
				continue
			}
			switch a.Type {
			case Send, Isend:
				if a.Peer >= n {
					report(rank, idx, "destination p%d outside world of %d", a.Peer, n)
					continue
				}
				if a.Peer == rank {
					report(rank, idx, "self message")
					continue
				}
				sends[[2]int{rank, a.Peer}]++
			case Recv, Irecv:
				if a.Peer >= n {
					report(rank, idx, "source p%d outside world of %d", a.Peer, n)
					continue
				}
				recvs[[2]int{a.Peer, rank}]++
				if a.Type == Irecv {
					pendingIrecv++
				}
			case Wait:
				if pendingIrecv == 0 {
					report(rank, idx, "wait with no pending Irecv")
					continue
				}
				pendingIrecv--
			case WaitAll:
				if pendingIrecv == 0 {
					report(rank, idx, "waitAll with no pending Irecv")
					continue
				}
				pendingIrecv = 0
			case CommSize:
				if int(a.Volume) != n {
					report(rank, idx, "comm_size %d but world has %d processes", int(a.Volume), n)
				}
			case Bcast, Reduce, AllReduce, Barrier, Gather, AllGather, AllToAll, Scatter:
				collectives[rank] = append(collectives[rank],
					fmt.Sprintf("%s/%g/%g", a.Type, a.Volume, a.Volume2))
			}
		}
		if pendingIrecv > 0 {
			report(rank, -1, "%d Irecv(s) never completed by a wait", pendingIrecv)
		}
	}

	// Point-to-point matching per ordered pair.
	pairs := make(map[[2]int]struct{})
	for p := range sends {
		pairs[p] = struct{}{}
	}
	for p := range recvs {
		pairs[p] = struct{}{}
	}
	sorted := make([][2]int, 0, len(pairs))
	for p := range pairs {
		sorted = append(sorted, p)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	for _, p := range sorted {
		if sends[p] != recvs[p] {
			errs = append(errs, VerifyError{Proc: p[0], Index: -1, Problem: fmt.Sprintf(
				"p%d sends %d message(s) to p%d but p%d posts %d receive(s)",
				p[0], sends[p], p[1], p[1], recvs[p])})
		}
	}

	// Collective sequences must agree across processes.
	for rank := 1; rank < n; rank++ {
		if len(collectives[rank]) != len(collectives[0]) {
			errs = append(errs, VerifyError{Proc: rank, Index: -1, Problem: fmt.Sprintf(
				"%d collective(s) but p0 has %d", len(collectives[rank]), len(collectives[0]))})
			continue
		}
		for i := range collectives[rank] {
			if collectives[rank][i] != collectives[0][i] {
				errs = append(errs, VerifyError{Proc: rank, Index: -1, Problem: fmt.Sprintf(
					"collective %d is %s but p0 has %s", i, collectives[rank][i], collectives[0][i])})
				break
			}
		}
	}
	return errs
}
