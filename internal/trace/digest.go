package trace

// This file implements content addressing for trace sets. A
// time-independent trace is immutable once acquired, and replay results are
// deterministic functions of its bytes, so a SHA-256 digest over the
// per-rank files both names a trace set (upload deduplication in a trace
// store) and keys every result derived from it (a replay cache can serve a
// digest's results forever without revalidation).

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"os"
)

// DigestPrefix names the digest algorithm in rendered digests
// ("sha256:<hex>"), so a stored digest stays self-describing if the
// algorithm ever changes.
const DigestPrefix = "sha256:"

// Digester accumulates the content digest of a per-rank trace file set. The
// framing is length-prefixed per rank (rank index, byte count, bytes), so
// rank boundaries are part of the identity: concatenations or
// redistributions of the same bytes hash differently.
type Digester struct {
	h    hash.Hash
	next int
}

// NewDigester returns an empty digester; add ranks in index order.
func NewDigester() *Digester {
	return &Digester{h: sha256.New()}
}

// Rank hashes the raw bytes of the next rank's trace file (any encoding:
// text, gzip or binary bytes are hashed as-is).
func (d *Digester) Rank(data []byte) {
	d.frame(len(data))
	d.h.Write(data)
	d.next++
}

// RankReader streams the next rank's trace bytes into the digest; size must
// be the exact byte count r will yield.
func (d *Digester) RankReader(r io.Reader, size int64) error {
	d.frame64(size)
	n, err := io.Copy(d.h, r)
	if err != nil {
		return err
	}
	if n != size {
		return fmt.Errorf("trace: digest rank %d: read %d bytes, want %d", d.next, n, size)
	}
	d.next++
	return nil
}

func (d *Digester) frame(size int) { d.frame64(int64(size)) }

func (d *Digester) frame64(size int64) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(d.next))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(size))
	d.h.Write(hdr[:])
}

// Sum renders the accumulated digest as "sha256:<hex>". The digester can
// keep accumulating afterwards.
func (d *Digester) Sum() string {
	return fmt.Sprintf("%s%x", DigestPrefix, d.h.Sum(nil))
}

// DigestRanks digests in-memory per-rank trace contents in rank order.
func DigestRanks(ranks [][]byte) string {
	d := NewDigester()
	for _, b := range ranks {
		d.Rank(b)
	}
	return d.Sum()
}

// DigestFiles digests the per-rank trace files in the given (rank) order,
// streaming each file through the hash without loading it whole. It also
// returns the summed byte size of the set — the unit a byte-budgeted store
// accounts in.
func DigestFiles(paths []string) (digest string, bytes int64, err error) {
	d := NewDigester()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return "", 0, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return "", 0, err
		}
		err = d.RankReader(f, st.Size())
		f.Close()
		if err != nil {
			return "", 0, fmt.Errorf("trace: %s: %w", p, err)
		}
		bytes += st.Size()
	}
	return d.Sum(), bytes, nil
}
