package trace

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDigestRanksDeterministicAndFramed(t *testing.T) {
	a := DigestRanks([][]byte{[]byte("p0 compute 1\n"), []byte("p1 compute 2\n")})
	b := DigestRanks([][]byte{[]byte("p0 compute 1\n"), []byte("p1 compute 2\n")})
	if a != b {
		t.Fatalf("same ranks digested differently: %s vs %s", a, b)
	}
	if !strings.HasPrefix(a, DigestPrefix) || len(a) != len(DigestPrefix)+64 {
		t.Fatalf("digest shape: %q", a)
	}

	// The per-rank framing must distinguish where rank boundaries fall:
	// the same concatenated bytes split differently are different sets.
	x := DigestRanks([][]byte{[]byte("ab"), []byte("c")})
	y := DigestRanks([][]byte{[]byte("a"), []byte("bc")})
	if x == y {
		t.Fatal("rank framing is invisible to the digest")
	}

	// Rank order matters: swapped ranks are a different trace set.
	p := DigestRanks([][]byte{[]byte("a"), []byte("b")})
	q := DigestRanks([][]byte{[]byte("b"), []byte("a")})
	if p == q {
		t.Fatal("rank order is invisible to the digest")
	}
}

func TestDigesterIncrementalMatchesDigestRanks(t *testing.T) {
	ranks := [][]byte{[]byte("first rank"), []byte(""), []byte("third")}
	d := NewDigester()
	for _, r := range ranks {
		d.Rank(r)
	}
	if got, want := d.Sum(), DigestRanks(ranks); got != want {
		t.Fatalf("incremental %s != one-shot %s", got, want)
	}
}

func TestDigesterRankReader(t *testing.T) {
	data := []byte("streamed rank contents")
	d := NewDigester()
	if err := d.RankReader(bytes.NewReader(data), int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if got, want := d.Sum(), DigestRanks([][]byte{data}); got != want {
		t.Fatalf("reader digest %s != in-memory %s", got, want)
	}

	// A size that does not match the stream is an error, not a silent
	// short read — the digest must cover exactly the declared bytes.
	if err := NewDigester().RankReader(bytes.NewReader(data), int64(len(data))+5); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestDigestFiles(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, ProcessFileName(0))
	if err := os.WriteFile(text, []byte("p0 compute 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte("p1 compute 2\n"))
	zw.Close()
	gzp := filepath.Join(dir, GzipFileName(1))
	if err := os.WriteFile(gzp, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	dig, n, err := DigestFiles([]string{text, gzp})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(13 + gz.Len()); n != want {
		t.Fatalf("byte count %d, want %d", n, want)
	}
	// The digest addresses file CONTENT bytes (compressed for .gz): the
	// same bytes under different names digest identically.
	other := filepath.Join(dir, "renamed.trace")
	if err := os.WriteFile(other, []byte("p0 compute 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dig2, _, err := DigestFiles([]string{other, gzp})
	if err != nil {
		t.Fatal(err)
	}
	if dig != dig2 {
		t.Fatalf("renaming a file changed the content digest: %s vs %s", dig, dig2)
	}

	if _, _, err := DigestFiles([]string{filepath.Join(dir, "absent.trace")}); err == nil {
		t.Fatal("digesting a missing file succeeded")
	}
}
