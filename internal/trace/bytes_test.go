package trace

import (
	"io"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// TestParseFloatBytesMatchesStrconv demands bit-identical results between
// the byte-level fast path and strconv.ParseFloat, which the old parser
// used: replayed simulated times must not move because scanning got faster.
func TestParseFloatBytesMatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "1", "-1", "+1", "163840", "1e+06", "1.52e+07", "0.25",
		"3.0517578125e-05", "9007199254740992", "9007199254740993",
		"1234567890123456789012345", "1e300", "1e-300", "1e22", "1e23",
		"1e-22", "1e-23", "0.0003", "000123.450", "5.", ".5", "-0",
		"1.7976931348623157e+308", "5e-324", "2.2250738585072014e-308",
		"1e999", "-1e999", "1e-999", "Inf", "-Inf", "NaN", "inf", "nan",
		"0x1p3", "1_0", "", ".", "e5", "1e", "1e+", "++1", "1.2.3",
	}
	for _, c := range cases {
		want, werr := strconv.ParseFloat(c, 64)
		got, gerr := parseFloatBytes([]byte(c))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%q: err %v vs strconv %v", c, gerr, werr)
		}
		if werr != nil {
			continue
		}
		if math.IsNaN(want) != math.IsNaN(got) ||
			(!math.IsNaN(want) && math.Float64bits(got) != math.Float64bits(want)) {
			t.Fatalf("%q: got %v (%x), strconv %v (%x)",
				c, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestParseFloatBytesRoundTripProperty: for any float the writer can emit,
// the byte parser recovers the exact same bits (shortest-form decimal
// round-trip), and random decimal strings agree with strconv.
func TestParseFloatBytesRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		s := strconv.FormatFloat(v, 'g', -1, 64)
		got, err := parseFloatBytes([]byte(s))
		return err == nil && math.Float64bits(got) == math.Float64bits(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	// Volumes the writer actually produces: non-negative, often integral.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		v := rng.Float64() * math.Pow(10, float64(rng.Intn(20)-4))
		s := strconv.FormatFloat(v, 'g', -1, 64)
		got, err := parseFloatBytes([]byte(s))
		if err != nil || math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("%q: got %v err %v want %v", s, got, err, v)
		}
	}
}

// TestParseLineBytesMatchesParseLine cross-checks the byte path against the
// string entry point over formatted actions.
func TestParseLineBytesMatchesParseLine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := randomAction(rng)
		line := a.Format()
		b1, ok1, err1 := ParseLine(line)
		b2, ok2, err2 := ParseLineBytes([]byte(line))
		if ok1 != ok2 || (err1 == nil) != (err2 == nil) || b1 != b2 {
			t.Fatalf("%q: string path (%+v,%v,%v) != byte path (%+v,%v,%v)",
				line, b1, ok1, err1, b2, ok2, err2)
		}
		if !ok1 || b1 != a {
			t.Fatalf("%q: parsed %+v, want %+v", line, b1, a)
		}
	}
}

// TestParseLineBytesZeroAllocs guards the allocation-free scan path for
// every action shape in the format.
func TestParseLineBytesZeroAllocs(t *testing.T) {
	lines := [][]byte{
		[]byte("p3 compute 1.52e+07"),
		[]byte("p1 send p0 163840"),
		[]byte("p0 Isend p2 8192"),
		[]byte("p0 recv p1"),
		[]byte("p2 Irecv p0 4096"),
		[]byte("p0 bcast 1e+06"),
		[]byte("p5 reduce 8192 1.5e+06"),
		[]byte("p5 allReduce 8192 1.5e+06"),
		[]byte("p7 barrier"),
		[]byte("p0 comm_size 64"),
		[]byte("p1 wait"),
		[]byte("p2 gather 4096"),
		[]byte("p3 allGather 8192"),
		[]byte("p4 allToAll 512"),
		[]byte("p5 scatter 1e+06"),
		[]byte("p6 waitAll"),
		[]byte("# a comment line"),
		[]byte("   "),
	}
	n := testing.AllocsPerRun(200, func() {
		for _, ln := range lines {
			if _, _, err := ParseLineBytes(ln); err != nil {
				t.Fatal(err)
			}
		}
	})
	if n != 0 {
		t.Fatalf("ParseLineBytes allocates %v times per run", n)
	}
}

// TestScannerLongLine exercises the spill path for lines larger than the
// read buffer.
func TestScannerLongLine(t *testing.T) {
	var long []byte
	long = append(long, []byte("p0 compute 42")...)
	pad := make([]byte, 1<<17) // larger than the 64 KiB read buffer
	for i := range pad {
		pad[i] = ' '
	}
	long = append(long, pad...)
	long = append(long, []byte("\np1 wait\n")...)
	sc := NewScanner(newSliceReader(long))
	var got []Action
	for sc.Scan() {
		got = append(got, sc.Action())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Volume != 42 || got[1].Type != Wait {
		t.Fatalf("got %+v", got)
	}
}

// newSliceReader returns a reader that yields b in small chunks, forcing
// the scanner through its refill paths.
func newSliceReader(b []byte) *chunkReader { return &chunkReader{b: b, chunk: 4096} }

type chunkReader struct {
	b     []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.b) || n > len(p) {
		n = min(len(r.b), len(p))
	}
	copy(p, r.b[:n])
	r.b = r.b[n:]
	return n, nil
}
