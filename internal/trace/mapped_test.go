package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writeBinaryFixture(t *testing.T, actions []Action) string {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, actions); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fixture.tib")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func randomActions(t *testing.T, n int, seed int64) []Action {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]Action, n)
	for i := range out {
		out[i] = randomAction(rng)
	}
	return out
}

// TestReadFileMappedRoundTrip checks the mapped path decodes exactly what
// the streaming reader does, over every record shape the codec has.
func TestReadFileMappedRoundTrip(t *testing.T) {
	actions := randomActions(t, 500, 42)
	path := writeBinaryFixture(t, actions)
	mapped, err := ReadFileMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(mapped) != len(actions) || len(streamed) != len(actions) {
		t.Fatalf("lengths: mapped %d, streamed %d, want %d", len(mapped), len(streamed), len(actions))
	}
	for i := range actions {
		if mapped[i] != actions[i] {
			t.Fatalf("record %d: mapped %+v != original %+v", i, mapped[i], actions[i])
		}
		if mapped[i] != streamed[i] {
			t.Fatalf("record %d: mapped %+v != streamed %+v", i, mapped[i], streamed[i])
		}
	}
}

// TestBinaryCursorStreams checks cursor iteration matches the one-shot
// decode and terminates cleanly.
func TestBinaryCursorStreams(t *testing.T) {
	actions := randomActions(t, 100, 7)
	path := writeBinaryFixture(t, actions)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cur, err := m.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	var got []Action
	for {
		a, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, a)
	}
	if len(got) != len(actions) {
		t.Fatalf("cursor decoded %d records, want %d", len(got), len(actions))
	}
	for i := range actions {
		if got[i] != actions[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], actions[i])
		}
	}
	// A drained cursor keeps reporting end-of-stream.
	if _, ok, err := cur.Next(); ok || err != nil {
		t.Fatalf("drained cursor: ok=%v err=%v", ok, err)
	}
}

// TestMappedFallbackReader exercises the portable read-the-file path the
// non-mmap platforms (and mmap refusals) use.
func TestMappedFallbackReader(t *testing.T) {
	actions := randomActions(t, 50, 11)
	path := writeBinaryFixture(t, actions)
	data, release, err := readWholeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	got, err := DecodeBinaryBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(actions) {
		t.Fatalf("fallback decoded %d records, want %d", len(got), len(actions))
	}
}

// TestMappedErrors covers the failure modes: missing file, bad magic, bad
// version, truncated records.
func TestMappedErrors(t *testing.T) {
	if _, err := ReadFileMapped(filepath.Join(t.TempDir(), "nope.tib")); err == nil {
		t.Fatal("missing file: want error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.tib")
	if err := os.WriteFile(bad, []byte("NOPE\x01rest"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileMapped(bad); err == nil {
		t.Fatal("bad magic: want error")
	}
	vers := filepath.Join(dir, "vers.tib")
	if err := os.WriteFile(vers, []byte("TITB\xff"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileMapped(vers); err == nil {
		t.Fatal("bad version: want error")
	}

	actions := randomActions(t, 20, 3)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, actions); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every truncation must error or decode a clean prefix — never panic.
	for cut := 0; cut <= len(full); cut++ {
		got, err := DecodeBinaryBytes(full[:cut])
		if err == nil && len(got) > len(actions) {
			t.Fatalf("truncation at %d decoded %d records", cut, len(got))
		}
	}
}

// TestMappedEmptyFile: a zero-length file maps to an empty view whose
// cursor construction reports the missing header.
func TestMappedEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.tib")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(m.Data()) != 0 {
		t.Fatalf("empty file mapped to %d bytes", len(m.Data()))
	}
	if _, err := m.Cursor(); err == nil {
		t.Fatal("cursor over empty view: want header error")
	}
}
