//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. Empty files map to an empty slice
// (mmap rejects zero-length mappings), and a kernel that refuses to map —
// special filesystems, exotic mounts — degrades to the portable read-all
// fallback rather than failing the open.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("trace: %s: file too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readWholeFile(path)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
