package experiments

import (
	"compress/gzip"
	"fmt"
	"runtime"
	"sync"

	"tireplay/internal/gather"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/trace"
)

// LargeResult reproduces the Section 6.5 study: acquiring a time-independent
// trace of a class D instance on 1,024 processes using 32 nodes (128 cores)
// of bordereau and a folding factor of 8 — an instance almost three times
// bigger than the cluster's core count.
type LargeResult struct {
	Class string
	Procs int
	Nodes int
	Cores int
	Fold  int

	// Actions is the exact total number of time-independent actions,
	// computed analytically from the skeleton.
	Actions int64
	// TIBytes is the size of the textual time-independent trace. When
	// Sampled is true it was measured exactly on SampleRanks ranks and
	// extended by the exact per-rank action counts.
	TIBytes int64
	// GzipBytes is the gzip-compressed size (same extension rule).
	GzipBytes int64
	// BinaryBytes is the size under the binary codec of Section 7's
	// future-work item.
	BinaryBytes int64
	// TAUBytesEst estimates the TAU trace size from the TAU/TI byte ratio
	// measured on the pilot acquisition.
	TAUBytesEst int64
	// Sampled reports whether sizes were extended from a rank sample.
	Sampled     bool
	SampleRanks int

	// ExecutionTime models the instrumented folded execution from the
	// total work and the folding slowdown measured on the pilot.
	ExecutionTime float64
	// ExtractionTime and GatheringTime follow the same models as Figure 7.
	ExtractionTime float64
	GatheringTime  float64
}

// TotalAcquisitionTime is the modelled end-to-end acquisition time, the
// quantity the paper reports as "less than 25 minutes".
func (r *LargeResult) TotalAcquisitionTime() float64 {
	return r.ExecutionTime + r.ExtractionTime + r.GatheringTime
}

// rankSizes measures the exact per-rank trace sizes of a sample of ranks.
type rankSizes struct {
	actions int64
	text    int64
	gz      int64
	bin     int64
}

// countingWriter tallies bytes written through it.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// measureRank streams one rank's generated trace through the three codecs.
func measureRank(cfg npb.LUConfig, rank int) (rankSizes, error) {
	var rs rankSizes
	var gzCount countingWriter
	gz := gzip.NewWriter(&gzCount)
	var binCount countingWriter
	bin := trace.NewBinaryWriter(&binCount)
	program, err := npb.LU(cfg)
	if err != nil {
		return rs, err
	}
	err = mpi.RecordStream(rank, cfg.Procs, program, func(a trace.Action) error {
		line := a.Format()
		rs.actions++
		rs.text += int64(len(line)) + 1
		if _, err := gz.Write([]byte(line + "\n")); err != nil {
			return err
		}
		return bin.Write(a)
	})
	if err != nil {
		return rs, err
	}
	if err := gz.Close(); err != nil {
		return rs, err
	}
	if err := bin.Flush(); err != nil {
		return rs, err
	}
	rs.gz = gzCount.n
	rs.bin = binCount.n
	return rs, nil
}

// LargeTrace regenerates the Section 6.5 study. tauOverTI is the TAU/TI
// byte ratio measured on a pilot acquisition (e.g. from a Table 3 row);
// foldSlowdown is the measured ratio of folded to regular execution per
// unit of folding (1.0 = perfectly linear).
func LargeTrace(cfg *Config, tauOverTI, foldSlowdown float64) (*LargeResult, error) {
	cfg.setDefaults()
	const (
		procs = 1024
		nodes = 32
		cores = 4 // bordereau nodes are dual-processor dual-core
		fold  = 8 // 8 processes per core, 32 per node
	)
	luCfg := npb.LUConfig{Class: npb.ClassD, Procs: procs}
	stats, err := luCfg.Stats()
	if err != nil {
		return nil, err
	}
	res := &LargeResult{
		Class: npb.ClassD.Name, Procs: procs, Nodes: nodes, Cores: cores, Fold: fold,
		Actions: stats.TotalActions,
	}

	// Choose the measured ranks: all of them in exact mode, or a sample
	// spread across the process grid otherwise.
	var sample []int
	if cfg.LargeSampleRanks > 0 && cfg.LargeSampleRanks < procs {
		res.Sampled = true
		res.SampleRanks = cfg.LargeSampleRanks
		step := procs / cfg.LargeSampleRanks
		for r := 0; r < procs; r += step {
			sample = append(sample, r)
		}
	} else {
		for r := 0; r < procs; r++ {
			sample = append(sample, r)
		}
	}

	sizes := make([]rankSizes, len(sample))
	errs := make([]error, len(sample))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, rank := range sample {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sizes[i], errs[i] = measureRank(luCfg, rank)
		}(i, rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var sampleActions, sampleText, sampleGz, sampleBin int64
	for _, s := range sizes {
		sampleActions += s.actions
		sampleText += s.text
		sampleGz += s.gz
		sampleBin += s.bin
	}
	if res.Sampled {
		// Extend by the exact action counts: bytes scale with actions at
		// the sample's bytes-per-action ratio.
		scale := float64(stats.TotalActions) / float64(sampleActions)
		res.TIBytes = int64(float64(sampleText) * scale)
		res.GzipBytes = int64(float64(sampleGz) * scale)
		res.BinaryBytes = int64(float64(sampleBin) * scale)
	} else {
		if sampleActions != stats.TotalActions {
			return nil, fmt.Errorf("experiments: generated %d actions, stats predict %d",
				sampleActions, stats.TotalActions)
		}
		res.TIBytes = sampleText
		res.GzipBytes = sampleGz
		res.BinaryBytes = sampleBin
	}
	if tauOverTI > 0 {
		res.TAUBytesEst = int64(float64(res.TIBytes) * tauOverTI)
	}

	// Execution model: total work over 128 cores at the calibrated rate,
	// degraded by the measured folding efficiency.
	totalFlops := luCfg.TotalFlops()
	if foldSlowdown <= 0 {
		foldSlowdown = 1.05
	}
	res.ExecutionTime = totalFlops / (float64(nodes*cores) * platform.BordereauPower) * foldSlowdown

	// Extraction: tau2simgrid is itself a parallel application, so the
	// 1,024 extraction ranks spread over the 128 cores; the folded ranks
	// of one core extract serially.
	eventsPerAction := 6.0 // measured TAU records per TI action
	perCoreActions := float64(stats.TotalActions) / float64(nodes*cores)
	res.ExtractionTime = perCoreActions * eventsPerAction * cfg.ExtractCostPerEvent

	// Gathering: K-nomial over the 1,024 per-process files.
	fileSizes := make([]float64, procs)
	perRankBytes := float64(res.TIBytes) / float64(procs)
	for i := range fileSizes {
		fileSizes[i] = perRankBytes
	}
	gt, err := gather.Cost(fileSizes, 4, platform.GigaEthernetBw, 3*platform.ClusterLatency)
	if err != nil {
		return nil, err
	}
	res.GatheringTime = gt
	return res, nil
}
