package experiments

import (
	"fmt"
	"io"
	"os"

	"tireplay/internal/acquisition"
	"tireplay/internal/convert"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/tau"
)

// OnlineRow compares, for one instance, the two simulation approaches the
// paper surveys (Section 2) against the modelled testbed: on-line
// simulation (direct execution with simulated communications — LAPSE,
// MPI-SIM, BigSim lineage) and the paper's off-line time-independent trace
// replay. Realising this comparison is the last future-work item of
// Section 7.
type OnlineRow struct {
	Class   string
	Procs   int
	Actual  float64 // modelled testbed (rate variability + true protocol)
	Online  float64 // direct execution on the calibrated simulator
	Offline float64 // trace replay on the calibrated simulator
}

// OnlineVsOffline runs the comparison over the configured classes and
// process counts.
func OnlineVsOffline(cfg *Config) ([]OnlineRow, error) {
	cfg.setDefaults()
	var rows []OnlineRow
	for _, class := range cfg.Classes {
		rate, err := calibrateClass(cfg, class)
		if err != nil {
			return nil, err
		}
		for _, procs := range cfg.Procs {
			prog, err := npb.LU(npb.LUConfig{Class: class, Procs: procs})
			if err != nil {
				return nil, err
			}

			// The "real" testbed run.
			camp := &acquisition.Campaign{
				Procs:            procs,
				Program:          prog,
				OverheadPerEvent: cfg.OverheadPerEvent,
				Rate:             LURateModel(cfg.Seed),
				Network:          TrueNetworkModel(),
			}
			actual, err := camp.ExecutionTime(acquisition.Regular())
			if err != nil {
				return nil, err
			}

			// On-line: execute the application directly on the calibrated
			// simulator (constant calibrated rate, calibrated MPI model).
			ob, err := platform.BuildBordereauCustom(procs, 1, rate)
			if err != nil {
				return nil, err
			}
			ob.Kernel.SetRateModel(smpi.Default().RateModel())
			od, err := platform.RoundRobin(ob.HostNames, procs, 1)
			if err != nil {
				return nil, err
			}
			online, err := mpi.RunSim(ob, od, mpi.SimConfig{}, prog)
			if err != nil {
				return nil, err
			}

			// Off-line: acquire on the testbed, extract, replay.
			dir, err := os.MkdirTemp("", "tireplay-online-")
			if err != nil {
				return nil, err
			}
			b2, d2, err := camp.Build(acquisition.Regular())
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			if _, _, err := tau.AcquireSim(dir, b2, d2, mpi.SimConfig{Rate: camp.Rate},
				cfg.OverheadPerEvent, prog); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			perRank, err := convert.ExtractDir(dir, procs)
			os.RemoveAll(dir)
			if err != nil {
				return nil, err
			}
			rb, err := platform.BuildBordereauCustom(procs, 1, rate)
			if err != nil {
				return nil, err
			}
			rd, err := platform.RoundRobin(rb.HostNames, procs, 1)
			if err != nil {
				return nil, err
			}
			res, err := replay.RunActions(rb, rd, replay.Config{Model: smpi.Default()}, perRank)
			if err != nil {
				return nil, err
			}

			rows = append(rows, OnlineRow{
				Class: class.Name, Procs: procs,
				Actual: actual, Online: online, Offline: res.SimulatedTime,
			})
			cfg.progressf("online-vs-offline class %s procs %d: actual %.2fs online %.2fs offline %.2fs",
				class.Name, procs, actual, online, res.SimulatedTime)
		}
	}
	return rows, nil
}

// RenderOnline prints the comparison table.
func RenderOnline(w io.Writer, rows []OnlineRow) {
	fmt.Fprintln(w, "Extension (paper §7 future work) — On-line vs off-line simulation accuracy")
	fmt.Fprintf(w, "%-5s %6s | %12s | %12s %8s | %12s %8s\n",
		"Class", "Procs", "Actual", "On-line", "Error", "Off-line", "Error")
	for _, r := range rows {
		errPct := func(v float64) string {
			if r.Actual == 0 {
				return "-"
			}
			e := (v - r.Actual) / r.Actual * 100
			if e < 0 {
				e = -e
			}
			return fmt.Sprintf("%.1f%%", e)
		}
		fmt.Fprintf(w, "%-5s %6d | %11.2fs | %11.2fs %8s | %11.2fs %8s\n",
			r.Class, r.Procs, r.Actual, r.Online, errPct(r.Online),
			r.Offline, errPct(r.Offline))
	}
}
