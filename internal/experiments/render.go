package experiments

import (
	"fmt"
	"io"
	"time"

	"tireplay/internal/units"
)

// RenderFig7 prints the acquisition-time distribution (Figure 7).
func RenderFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7 — Distribution of the acquisition time (Regular mode, bordereau)")
	fmt.Fprintf(w, "%-5s %6s | %12s %12s %12s %12s | %10s %8s\n",
		"Class", "Procs", "Application", "Tracing", "Extraction", "Gathering", "Total", "Ext+Gat")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %6d | %11.2fs %11.2fs %11.2fs %11.2fs | %9.2fs %7.2f%%\n",
			r.Class, r.Procs, r.Application, r.Tracing, r.Extraction, r.Gathering,
			r.Total(), 100*r.ExtractGatherShare())
	}
}

// RenderTable2 prints the acquisition-mode comparison (Table 2).
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2 — Execution time of the instrumented LU benchmark per acquisition mode")
	fmt.Fprintf(w, "%-5s %-10s %-10s | %12s %8s\n", "Class", "Mode", "Nodes", "Time", "Ratio")
	for _, r := range rows {
		nodes := ""
		for i, n := range r.Nodes {
			if i > 0 {
				nodes += ","
			}
			nodes += fmt.Sprintf("%d", n)
		}
		if len(r.Nodes) > 1 {
			nodes = "(" + nodes + ")"
		}
		fmt.Fprintf(w, "%-5s %-10s %-10s | %11.2fs %8.2f\n",
			r.Class, r.Mode, nodes, r.Seconds, r.Ratio)
	}
}

// RenderTable3 prints the trace-size table (Table 3).
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3 — Sizes of TAU and time-independent traces and number of actions")
	fmt.Fprintf(w, "%-5s %6s | %12s %14s %7s | %14s\n",
		"Class", "Procs", "TAU (MiB)", "Time-Ind (MiB)", "Ratio", "Actions (1e6)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %6d | %12.1f %14.2f %7.2f | %14.2f\n",
			r.Class, r.Procs, r.TAUMiB, r.TIMiB, r.Ratio, float64(r.Actions)/1e6)
	}
}

// RenderFig8 prints the accuracy comparison (Figure 8).
func RenderFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8 — Simulated vs actual execution time (bordereau)")
	fmt.Fprintf(w, "%-5s %6s | %12s %12s %9s\n",
		"Class", "Procs", "Actual", "Simulated", "Error")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %6d | %11.2fs %11.2fs %8.1f%%\n",
			r.Class, r.Procs, r.Actual, r.Simulated, r.ErrorPct())
	}
}

// RenderFig9 prints the replay-time series (Figure 9).
func RenderFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9 — Trace replay time vs number of processes")
	fmt.Fprintf(w, "%-5s %6s | %14s %14s\n", "Class", "Procs", "Actions (1e6)", "Replay time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %6d | %14.2f %14s\n",
			r.Class, r.Procs, float64(r.Actions)/1e6, r.ReplayWall.Round(time.Millisecond))
	}
}

// RenderLarge prints the Section 6.5 large-acquisition study.
func RenderLarge(w io.Writer, r *LargeResult) {
	fmt.Fprintln(w, "Section 6.5 — Acquiring a large trace (class D, 1024 processes)")
	fmt.Fprintf(w, "  platform: %d nodes x %d cores, folding factor %d (%d processes)\n",
		r.Nodes, r.Cores, r.Fold, r.Procs)
	mode := "every rank measured exactly"
	if r.Sampled {
		mode = fmt.Sprintf("measured on %d ranks, extended by exact action counts", r.SampleRanks)
	}
	fmt.Fprintf(w, "  sizing: %s\n", mode)
	fmt.Fprintf(w, "  actions:                 %d (%.1f million)\n", r.Actions, float64(r.Actions)/1e6)
	fmt.Fprintf(w, "  time-independent trace:  %s\n", units.FormatBytes(float64(r.TIBytes)))
	if r.TAUBytesEst > 0 {
		fmt.Fprintf(w, "  TAU trace (estimated):   %s (%.1fx larger)\n",
			units.FormatBytes(float64(r.TAUBytesEst)), float64(r.TAUBytesEst)/float64(r.TIBytes))
	}
	fmt.Fprintf(w, "  gzip-compressed:         %s (%.1fx smaller)\n",
		units.FormatBytes(float64(r.GzipBytes)), float64(r.TIBytes)/float64(r.GzipBytes))
	fmt.Fprintf(w, "  binary codec:            %s (%.1fx smaller)\n",
		units.FormatBytes(float64(r.BinaryBytes)), float64(r.TIBytes)/float64(r.BinaryBytes))
	fmt.Fprintf(w, "  modelled acquisition:    execution %.0fs + extraction %.0fs + gathering %.0fs = %.1f min\n",
		r.ExecutionTime, r.ExtractionTime, r.GatheringTime, r.TotalAcquisitionTime()/60)
}

// RenderInvariance prints the Section 6.2 invariance check.
func RenderInvariance(w io.Writer, r *InvarianceResult) {
	fmt.Fprintf(w, "Section 6.2 — Simulated-time invariance across acquisition modes (class %s, %d processes)\n",
		r.Class, r.Procs)
	for i, m := range r.Modes {
		fmt.Fprintf(w, "  %-10s simulated %.4f s\n", m, r.Simulated[i])
	}
	fmt.Fprintf(w, "  traces byte-identical: %v; max simulated-time deviation: %.3f%%\n",
		r.Identical, 100*r.MaxRelDiff)
}
