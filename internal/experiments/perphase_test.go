package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tireplay/internal/npb"
)

func TestPerPhaseCalibrationImprovesOrMatches(t *testing.T) {
	cfg := tinyConfig()
	cfg.Classes = []npb.Class{npb.ClassW}
	cfg.Procs = []int{4}
	rows, err := PerPhaseCalibration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Actual <= 0 || r.AverageCal <= 0 || r.PerPhaseCal <= 0 {
		t.Fatalf("non-positive times: %+v", r)
	}
	// The refinement exists to reduce the compute-time mismatch; it must
	// not be dramatically worse than the single average.
	if r.PerPhaseErrPct() > r.AverageErrPct()+5 {
		t.Errorf("per-phase calibration much worse: %.1f%% vs %.1f%%",
			r.PerPhaseErrPct(), r.AverageErrPct())
	}

	var buf bytes.Buffer
	RenderPerPhase(&buf, rows)
	if !strings.Contains(buf.String(), "per-phase") {
		t.Errorf("render output:\n%s", buf.String())
	}
}
