package experiments

import (
	"context"
	"fmt"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/sweep"
	"tireplay/internal/trace"
)

// WhatIf is the capacity-planning campaign of Section 5 run at sweep scale:
// one LU instance is traced once (first class, first process count of the
// config), then the trace is replayed against every scenario of the grid —
// candidate CPU, interconnect and folding upgrades — concurrently on the
// sweep engine's worker pool. The returned result lists the predicted
// makespan of each scenario in deterministic grid order.
func WhatIf(ctx context.Context, cfg *Config, grid sweep.Grid, workers int) (*sweep.Result, error) {
	cfg.setDefaults()
	class := cfg.Classes[0]
	procs := cfg.Procs[0]
	prog, err := npb.LU(npb.LUConfig{Class: class, Procs: procs})
	if err != nil {
		return nil, err
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			return nil, fmt.Errorf("experiments: whatif acquisition rank %d: %w", r, err)
		}
	}
	ts := sweep.TracesFromActions(perRank)
	res, err := sweep.Run(ctx, &sweep.Config{
		Platform: platform.BordereauWithCores(procs, 1),
		Grid:     grid,
		Traces:   ts,
		Model:    smpi.Default(),
		Workers:  workers,
	})
	if err != nil {
		return res, err
	}
	for i := range res.Scenarios {
		sc := &res.Scenarios[i]
		if sc.Err != "" {
			return res, fmt.Errorf("experiments: whatif scenario %d (%s): %s", sc.Index, sc.Name, sc.Err)
		}
		cfg.progressf("whatif %-32s: predicted %.4f s", sc.Name, sc.SimulatedTime)
	}
	return res, nil
}

// replayBordereau replays per-rank actions on a one-core-per-node bordereau
// platform — the shared replay step of the accuracy and invariance
// experiments. A zero rate keeps the calibrated default power; every call
// instantiates a fresh kernel, so concurrent experiment cells never share
// mutable state.
func replayBordereau(procs int, rate float64, perRank [][]trace.Action) (*replay.Result, error) {
	var (
		b   *platform.Build
		err error
	)
	if rate > 0 {
		b, err = platform.BuildBordereauCustom(procs, 1, rate)
	} else {
		b, err = platform.BuildBordereauWithCores(procs, 1)
	}
	if err != nil {
		return nil, err
	}
	d, err := platform.RoundRobin(b.HostNames, procs, 1)
	if err != nil {
		return nil, err
	}
	return replay.RunActions(b, d, replay.Config{Model: smpi.Default()}, perRank)
}
