package experiments

import "testing"

func TestOnlineVsOffline(t *testing.T) {
	cfg := tinyConfig()
	cfg.Procs = []int{4}
	rows, err := OnlineVsOffline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Actual <= 0 || r.Online <= 0 || r.Offline <= 0 {
		t.Fatalf("non-positive predictions: %+v", r)
	}
	// Both approaches simulate the same application on the same calibrated
	// platform; their predictions should be in the same ballpark as the
	// testbed and as each other.
	ratio := r.Online / r.Offline
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("online (%g) and offline (%g) predictions diverge: ratio %.2f",
			r.Online, r.Offline, ratio)
	}
}
