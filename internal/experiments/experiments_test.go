package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tireplay/internal/npb"
)

// tinyConfig keeps the experiment tests fast: class S over 4 and 8
// processes.
func tinyConfig() *Config {
	return &Config{
		Classes:          []npb.Class{npb.ClassS},
		Procs:            []int{4, 8},
		Table2Procs:      8,
		Table2Folds:      []int{2, 4},
		CalibrationRuns:  2,
		CalibrationProcs: 4,
		LargeSampleRanks: 4,
	}
}

func TestSuiteProducesAllRows(t *testing.T) {
	res, err := Suite(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fig7) != 2 || len(res.Table3) != 2 || len(res.Fig8) != 2 || len(res.Fig9) != 2 {
		t.Fatalf("rows: fig7=%d table3=%d fig8=%d fig9=%d",
			len(res.Fig7), len(res.Table3), len(res.Fig8), len(res.Fig9))
	}
	for _, r := range res.Fig7 {
		if r.Application <= 0 || r.Tracing <= 0 || r.Extraction <= 0 || r.Gathering <= 0 {
			t.Errorf("fig7 row has non-positive component: %+v", r)
		}
	}
	for _, r := range res.Table3 {
		if r.Ratio <= 1 {
			t.Errorf("table3: TAU/TI ratio %.2f not > 1", r.Ratio)
		}
		if r.Actions <= 0 {
			t.Errorf("table3: no actions: %+v", r)
		}
	}
	for _, r := range res.Fig8 {
		if r.Actual <= 0 || r.Simulated <= 0 {
			t.Errorf("fig8 row: %+v", r)
		}
		// The prediction must be in the right ballpark (the paper reports
		// local errors up to ~50%).
		if r.ErrorPct() > 80 {
			t.Errorf("fig8 error %.1f%% out of plausible range: %+v", r.ErrorPct(), r)
		}
	}
	for _, r := range res.Fig9 {
		if r.Actions <= 0 || r.ReplayWall <= 0 {
			t.Errorf("fig9 row: %+v", r)
		}
	}
	if res.CalibratedRate["S"] <= 0 {
		t.Error("no calibrated rate")
	}
}

func TestTable2Structure(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expected modes: R, F-2, F-4, S-2, SF-(2,2), SF-(2,4).
	if len(rows) != 6 {
		t.Fatalf("rows = %d: %+v", len(rows), rows)
	}
	byMode := map[string]Table2Row{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	if byMode["R"].Ratio != 1 {
		t.Errorf("R ratio = %f", byMode["R"].Ratio)
	}
	for _, r := range rows {
		if r.Seconds <= 0 || r.Ratio <= 0 {
			t.Errorf("non-positive row: %+v", r)
		}
	}
	if byMode["S-2"].Ratio <= 1 {
		t.Errorf("S-2 ratio = %f, want > 1", byMode["S-2"].Ratio)
	}
}

func TestTable2FoldRatiosGrowForComputeBoundClass(t *testing.T) {
	// Class B is compute-dominated, like the paper's Table 2 instances:
	// there the folded execution time grows roughly linearly with the
	// folding factor. (Class S is latency-bound and does not.)
	if testing.Short() {
		t.Skip("class B campaign in -short mode")
	}
	cfg := &Config{
		Classes:     []npb.Class{npb.ClassB},
		Procs:       []int{8},
		Table2Procs: 8,
		Table2Folds: []int{2, 4},
	}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]Table2Row{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	f2, f4 := byMode["F-2"].Ratio, byMode["F-4"].Ratio
	if f2 < 1.4 || f2 > 2.6 {
		t.Errorf("F-2 ratio = %.2f, expected near 2", f2)
	}
	if f4 < 2.6 || f4 > 5.2 {
		t.Errorf("F-4 ratio = %.2f, expected near 4", f4)
	}
	if f4 <= f2 {
		t.Errorf("folding ratio not increasing: F-2 %.2f, F-4 %.2f", f2, f4)
	}
}

func TestInvarianceHolds(t *testing.T) {
	res, err := Invariance(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("traces differ across acquisition modes")
	}
	// The paper reports variations under 1%; ours are deterministic and
	// should be exactly zero.
	if res.MaxRelDiff > 0.01 {
		t.Errorf("simulated-time deviation %.4f%% exceeds 1%%", 100*res.MaxRelDiff)
	}
	if len(res.Modes) != 4 {
		t.Errorf("modes = %v", res.Modes)
	}
}

func TestLargeTraceScaledDown(t *testing.T) {
	// Use the real Section 6.5 generator but verify only structural
	// relations; the sampled sizing keeps it fast.
	cfg := tinyConfig()
	cfg.LargeSampleRanks = 2
	res, err := LargeTrace(cfg, 7.8, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs != 1024 || res.Fold != 8 || res.Nodes != 32 {
		t.Fatalf("setup: %+v", res)
	}
	if res.Actions <= 0 || res.TIBytes <= 0 {
		t.Fatal("empty result")
	}
	// Compression must help substantially (paper: 32.5 GiB -> 1.2 GiB).
	if float64(res.TIBytes)/float64(res.GzipBytes) < 5 {
		t.Errorf("gzip ratio only %.1f", float64(res.TIBytes)/float64(res.GzipBytes))
	}
	// The binary codec (Section 7 future work) must beat plain text.
	if res.BinaryBytes >= res.TIBytes {
		t.Errorf("binary codec not smaller: %d vs %d", res.BinaryBytes, res.TIBytes)
	}
	// The paper's headline: the acquisition fits in tens of minutes.
	if res.TotalAcquisitionTime() > 90*60 {
		t.Errorf("modelled acquisition %.1f min implausibly long", res.TotalAcquisitionTime()/60)
	}
	if res.TAUBytesEst <= res.TIBytes {
		t.Error("TAU estimate should exceed TI size")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	res, err := Suite(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig7(&buf, res.Fig7)
	RenderTable3(&buf, res.Table3)
	RenderFig8(&buf, res.Fig8)
	RenderFig9(&buf, res.Fig9)
	out := buf.String()
	for _, want := range []string{"Figure 7", "Table 3", "Figure 8", "Figure 9", "Class"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendered output", want)
		}
	}
}

func TestLURateModelBounds(t *testing.T) {
	m := LURateModel(42)
	for rank := 0; rank < 4; rank++ {
		for seq := int64(0); seq < 100; seq++ {
			v := m(rank, seq, 1e6)
			if v < 0.5 || v > 1.5 {
				t.Fatalf("rate multiplier %g out of bounds", v)
			}
		}
	}
	// Deterministic for equal seeds, different across seeds.
	if LURateModel(1)(0, 0, 1) != LURateModel(1)(0, 0, 1) {
		t.Error("rate model not deterministic")
	}
	diff := false
	for seq := int64(0); seq < 32; seq++ {
		if LURateModel(1)(0, seq, 1) != LURateModel(2)(0, seq, 1) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seeds do not change the rate model")
	}
}

func TestTrueNetworkDiffersFromDefault(t *testing.T) {
	truth := TrueNetworkModel()
	for _, size := range []float64{100, 10_000, 1_000_000} {
		tl, tb := truth.Factors(size)
		if tl <= 0 || tb <= 0 {
			t.Fatalf("bad factors at %g", size)
		}
	}
}
