package experiments

import (
	"fmt"
	"os"
	"time"

	"tireplay/internal/acquisition"
	"tireplay/internal/calibrate"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/tau"
	"tireplay/internal/trace"
)

// Fig7Row is one bar of Figure 7: the acquisition-time distribution of one
// LU instance acquired in Regular mode.
type Fig7Row struct {
	Class       string
	Procs       int
	Application float64
	Tracing     float64
	Extraction  float64
	Gathering   float64
}

// Total is the full acquisition time of the row.
func (r Fig7Row) Total() float64 {
	return r.Application + r.Tracing + r.Extraction + r.Gathering
}

// ExtractGatherShare is the fraction of the acquisition spent producing the
// time-independent trace (the paper reports it peaks at 34.91%).
func (r Fig7Row) ExtractGatherShare() float64 {
	return (r.Extraction + r.Gathering) / r.Total()
}

// Table3Row is one line of Table 3: trace sizes and action counts.
type Table3Row struct {
	Class   string
	Procs   int
	TAUMiB  float64
	TIMiB   float64
	Ratio   float64 // TAU / time-independent
	Actions int64
}

// Fig8Row is one point pair of Figure 8: simulated vs actual time.
type Fig8Row struct {
	Class     string
	Procs     int
	Actual    float64
	Simulated float64
}

// ErrorPct is the local relative error of the prediction.
func (r Fig8Row) ErrorPct() float64 {
	if r.Actual == 0 {
		return 0
	}
	e := (r.Simulated - r.Actual) / r.Actual * 100
	if e < 0 {
		return -e
	}
	return e
}

// Fig9Row is one point of Figure 9: the time needed to replay a trace.
type Fig9Row struct {
	Class      string
	Procs      int
	Actions    int64
	ReplayWall time.Duration
}

// SuiteResult aggregates the per-instance experiments that share the same
// acquisitions: Figures 7, 8, 9 and Table 3.
type SuiteResult struct {
	Fig7           []Fig7Row
	Table3         []Table3Row
	Fig8           []Fig8Row
	Fig9           []Fig9Row
	CalibratedRate map[string]float64 // per class, flop/s
}

// Suite runs one acquisition per (class, process count) cell and derives
// Figures 7-9 and Table 3 from it.
func Suite(cfg *Config) (*SuiteResult, error) {
	cfg.setDefaults()
	res := &SuiteResult{CalibratedRate: make(map[string]float64)}

	for _, class := range cfg.Classes {
		rate, err := calibrateClass(cfg, class)
		if err != nil {
			return nil, fmt.Errorf("experiments: calibration for class %s: %w", class.Name, err)
		}
		res.CalibratedRate[class.Name] = rate
		cfg.progressf("class %s: calibrated flop rate %.4g flop/s", class.Name, rate)

		for _, procs := range cfg.Procs {
			cell, err := runCell(cfg, class, procs, rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: class %s procs %d: %w", class.Name, procs, err)
			}
			res.Fig7 = append(res.Fig7, cell.fig7)
			res.Table3 = append(res.Table3, cell.table3)
			res.Fig8 = append(res.Fig8, cell.fig8)
			res.Fig9 = append(res.Fig9, cell.fig9)
			cfg.progressf("class %s procs %d: actual %.2fs simulated %.2fs (err %.1f%%), replay wall %v",
				class.Name, procs, cell.fig8.Actual, cell.fig8.Simulated,
				cell.fig8.ErrorPct(), cell.fig9.ReplayWall.Round(time.Millisecond))
		}
	}
	return res, nil
}

type cellResult struct {
	fig7   Fig7Row
	table3 Table3Row
	fig8   Fig8Row
	fig9   Fig9Row
}

// calibrateClass performs the Section 5 flop-rate calibration: a small
// instrumented instance of the application runs CalibrationRuns times on
// the host platform (with its rate variability); the weighted-average rates
// are averaged over the runs.
func calibrateClass(cfg *Config, class npb.Class) (float64, error) {
	// The calibration instance: same application, small class.
	calClass := npb.ClassW
	if class.N <= npb.ClassW.N {
		calClass = npb.ClassS
	}
	prog, err := npb.LU(npb.LUConfig{Class: calClass, Procs: cfg.CalibrationProcs})
	if err != nil {
		return 0, err
	}
	var rates []float64
	for run := 0; run < cfg.CalibrationRuns; run++ {
		dir, err := os.MkdirTemp("", "tireplay-cal-")
		if err != nil {
			return 0, err
		}
		camp := &acquisition.Campaign{
			Procs:            cfg.CalibrationProcs,
			Program:          prog,
			OverheadPerEvent: cfg.OverheadPerEvent,
			Rate:             LURateModel(cfg.Seed + int64(run) + 1),
			Network:          TrueNetworkModel(),
		}
		b, d, err := camp.Build(acquisition.Regular())
		if err != nil {
			os.RemoveAll(dir)
			return 0, err
		}
		_, files, err := tau.AcquireSim(dir, b, d,
			mpi.SimConfig{Rate: camp.Rate}, cfg.OverheadPerEvent, prog)
		if err != nil {
			os.RemoveAll(dir)
			return 0, err
		}
		_, avg, err := calibrate.MeasureFlopRate(files)
		os.RemoveAll(dir)
		if err != nil {
			return 0, err
		}
		rates = append(rates, avg)
	}
	return calibrate.AverageOverRuns(rates)
}

// runCell acquires one (class, procs) instance and derives every
// per-instance measurement.
func runCell(cfg *Config, class npb.Class, procs int, calibratedRate float64) (*cellResult, error) {
	prog, err := npb.LU(npb.LUConfig{Class: class, Procs: procs})
	if err != nil {
		return nil, err
	}
	camp := &acquisition.Campaign{
		Procs:               procs,
		Program:             prog,
		OverheadPerEvent:    cfg.OverheadPerEvent,
		Rate:                LURateModel(cfg.Seed),
		ExtractCostPerEvent: cfg.ExtractCostPerEvent,
		Network:             TrueNetworkModel(),
	}
	dir, err := os.MkdirTemp("", "tireplay-exp-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rep, err := camp.Run(dir, acquisition.Regular(), false)
	if err != nil {
		return nil, err
	}
	cell := &cellResult{
		fig7: Fig7Row{
			Class:       class.Name,
			Procs:       procs,
			Application: rep.ApplicationTime,
			Tracing:     rep.TracingOverhead,
			Extraction:  rep.ExtractionTime,
			Gathering:   rep.GatheringTime,
		},
		table3: Table3Row{
			Class:   class.Name,
			Procs:   procs,
			TAUMiB:  float64(rep.TAUBytes) / (1 << 20),
			TIMiB:   float64(rep.TIBytes) / (1 << 20),
			Ratio:   float64(rep.TAUBytes) / float64(rep.TIBytes),
			Actions: rep.Actions,
		},
	}

	// Figure 8: replay the acquired trace on the calibrated platform and
	// compare against the (modelled) real execution.
	perRank := make([][]trace.Action, procs)
	for r, path := range rep.TIFiles {
		perRank[r], err = trace.ReadFile(path)
		if err != nil {
			return nil, err
		}
	}
	result, err := replayBordereau(procs, calibratedRate, perRank)
	if err != nil {
		return nil, err
	}
	cell.fig8 = Fig8Row{
		Class:     class.Name,
		Procs:     procs,
		Actual:    rep.ApplicationTime,
		Simulated: result.SimulatedTime,
	}
	cell.fig9 = Fig9Row{
		Class:      class.Name,
		Procs:      procs,
		Actions:    result.Actions,
		ReplayWall: result.WallTime,
	}
	return cell, nil
}
