package experiments

import (
	"fmt"
	"io"
	"os"

	"tireplay/internal/acquisition"
	"tireplay/internal/calibrate"
	"tireplay/internal/metrics"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/tau"
	"tireplay/internal/trace"
)

// PerPhaseRow compares the paper's single-average calibration with the
// per-burst-class calibration suggested as its accuracy fix (Section 6.4),
// for one instance.
type PerPhaseRow struct {
	Class       string
	Procs       int
	Actual      float64
	AverageCal  float64 // replay with the single average rate
	PerPhaseCal float64 // replay with per-volume-bin rates
	// AverageEff and PerPhaseEff are the POP efficiencies of each replay,
	// computed from the columnar metrics sink attached to it: they show
	// whether a calibration shifts the load-balance/communication split or
	// only rescales compute.
	AverageEff  metrics.Efficiency
	PerPhaseEff metrics.Efficiency
}

func (r PerPhaseRow) errPct(v float64) float64 {
	e := (v - r.Actual) / r.Actual * 100
	if e < 0 {
		return -e
	}
	return e
}

// AverageErrPct is the |error| of the single-average calibration.
func (r PerPhaseRow) AverageErrPct() float64 { return r.errPct(r.AverageCal) }

// PerPhaseErrPct is the |error| of the per-phase calibration.
func (r PerPhaseRow) PerPhaseErrPct() float64 { return r.errPct(r.PerPhaseCal) }

// PerPhaseCalibration runs the ablation over the configured instances.
func PerPhaseCalibration(cfg *Config) ([]PerPhaseRow, error) {
	cfg.setDefaults()
	var rows []PerPhaseRow
	for _, class := range cfg.Classes {
		for _, procs := range cfg.Procs {
			prog, err := npb.LU(npb.LUConfig{Class: class, Procs: procs})
			if err != nil {
				return nil, err
			}
			camp := &acquisition.Campaign{
				Procs:            procs,
				Program:          prog,
				OverheadPerEvent: cfg.OverheadPerEvent,
				Rate:             LURateModel(cfg.Seed),
				Network:          TrueNetworkModel(),
			}
			actual, err := camp.ExecutionTime(acquisition.Regular())
			if err != nil {
				return nil, err
			}

			// Calibration acquisition: the same instance family, observed
			// with both estimators over the configured number of runs.
			var avgRuns []float64
			var bucketRuns []*calibrate.BucketRates
			for run := 0; run < cfg.CalibrationRuns; run++ {
				dir, err := os.MkdirTemp("", "tireplay-ppc-")
				if err != nil {
					return nil, err
				}
				calCamp := &acquisition.Campaign{
					Procs:            procs,
					Program:          prog,
					OverheadPerEvent: cfg.OverheadPerEvent,
					Rate:             LURateModel(cfg.Seed + int64(run) + 1),
					Network:          TrueNetworkModel(),
				}
				b, d, err := calCamp.Build(acquisition.Regular())
				if err != nil {
					os.RemoveAll(dir)
					return nil, err
				}
				_, files, err := tau.AcquireSim(dir, b, d,
					mpi.SimConfig{Rate: calCamp.Rate}, cfg.OverheadPerEvent, prog)
				if err != nil {
					os.RemoveAll(dir)
					return nil, err
				}
				_, avg, err := calibrate.MeasureFlopRate(files)
				if err != nil {
					os.RemoveAll(dir)
					return nil, err
				}
				br, err := calibrate.MeasureBucketRates(files)
				os.RemoveAll(dir)
				if err != nil {
					return nil, err
				}
				avgRuns = append(avgRuns, avg)
				bucketRuns = append(bucketRuns, br)
			}
			avgRate, err := calibrate.AverageOverRuns(avgRuns)
			if err != nil {
				return nil, err
			}
			buckets, err := calibrate.MergeBucketRates(bucketRuns)
			if err != nil {
				return nil, err
			}

			// The trace to replay comes from the target acquisition.
			perRank := make([][]trace.Action, procs)
			for r := 0; r < procs; r++ {
				perRank[r], err = mpi.Record(r, procs, prog)
				if err != nil {
					return nil, err
				}
			}

			avgTime, avgEff, err := replayWithRates(procs, perRank, avgRate, nil)
			if err != nil {
				return nil, err
			}
			phaseTime, phaseEff, err := replayWithRates(procs, perRank, avgRate, buckets)
			if err != nil {
				return nil, err
			}
			row := PerPhaseRow{Class: class.Name, Procs: procs,
				Actual: actual, AverageCal: avgTime, PerPhaseCal: phaseTime,
				AverageEff: avgEff, PerPhaseEff: phaseEff}
			rows = append(rows, row)
			cfg.progressf("per-phase class %s procs %d: actual %.2fs avg-cal %.2fs (%.1f%%) phase-cal %.2fs (%.1f%%)",
				class.Name, procs, actual, avgTime, row.AverageErrPct(), phaseTime, row.PerPhaseErrPct())
		}
	}
	return rows, nil
}

// replayWithRates replays a trace on a platform calibrated at avgRate and
// reports the predicted makespan together with the replay's POP summary
// efficiencies (from a columnar metrics sink attached as the timed
// tracer); when buckets is non-nil, compute actions are re-timed with
// their bin's calibrated rate instead of the platform average.
func replayWithRates(procs int, perRank [][]trace.Action, avgRate float64,
	buckets *calibrate.BucketRates) (float64, metrics.Efficiency, error) {

	b, err := platform.BuildBordereauCustom(procs, 1, avgRate)
	if err != nil {
		return 0, metrics.Efficiency{}, err
	}
	d, err := platform.RoundRobin(b.HostNames, procs, 1)
	if err != nil {
		return 0, metrics.Efficiency{}, err
	}
	sink := replay.NewMetricsSink()
	cfg := replay.Config{Model: smpi.Default(), TimedTracer: sink}
	if buckets != nil {
		reg := replay.Default()
		reg.Register("compute", func(p *replay.Proc, a trace.Action) error {
			// Duration = volume / bucketRate; expressed as equivalent flops
			// on the avgRate host.
			p.Sim.Execute(a.Volume * avgRate / buckets.Rate(a.Volume))
			return nil
		})
		cfg.Registry = reg
	}
	res, err := replay.RunActions(b, d, cfg, perRank)
	if err != nil {
		return 0, metrics.Efficiency{}, err
	}
	rep := metrics.AnalyzeSink(sink, metrics.Options{Makespan: res.SimulatedTime})
	return res.SimulatedTime, rep.Summary, nil
}

// RenderPerPhase prints the ablation table. Beyond the makespans it shows
// each replay's load balance and communication efficiency, so a
// calibration that merely rescales compute (same LB/commE, different
// makespan) is distinguishable from one that redistributes it.
func RenderPerPhase(w io.Writer, rows []PerPhaseRow) {
	fmt.Fprintln(w, "Ablation (paper §6.4) — single-average vs per-phase flop-rate calibration")
	fmt.Fprintf(w, "%-5s %6s | %10s | %10s %8s %5s %5s | %10s %8s %5s %5s\n",
		"Class", "Procs", "Actual", "Avg cal", "Error", "LB", "commE",
		"Phase cal", "Error", "LB", "commE")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %6d | %9.2fs | %9.2fs %7.1f%% %5.2f %5.2f | %9.2fs %7.1f%% %5.2f %5.2f\n",
			r.Class, r.Procs, r.Actual,
			r.AverageCal, r.AverageErrPct(), r.AverageEff.LoadBalance, r.AverageEff.CommEff,
			r.PerPhaseCal, r.PerPhaseErrPct(), r.PerPhaseEff.LoadBalance, r.PerPhaseEff.CommEff)
	}
}
