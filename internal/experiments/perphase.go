package experiments

import (
	"fmt"
	"io"
	"os"

	"tireplay/internal/acquisition"
	"tireplay/internal/calibrate"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/replay"
	"tireplay/internal/smpi"
	"tireplay/internal/tau"
	"tireplay/internal/trace"
)

// PerPhaseRow compares the paper's single-average calibration with the
// per-burst-class calibration suggested as its accuracy fix (Section 6.4),
// for one instance.
type PerPhaseRow struct {
	Class       string
	Procs       int
	Actual      float64
	AverageCal  float64 // replay with the single average rate
	PerPhaseCal float64 // replay with per-volume-bin rates
}

func (r PerPhaseRow) errPct(v float64) float64 {
	e := (v - r.Actual) / r.Actual * 100
	if e < 0 {
		return -e
	}
	return e
}

// AverageErrPct is the |error| of the single-average calibration.
func (r PerPhaseRow) AverageErrPct() float64 { return r.errPct(r.AverageCal) }

// PerPhaseErrPct is the |error| of the per-phase calibration.
func (r PerPhaseRow) PerPhaseErrPct() float64 { return r.errPct(r.PerPhaseCal) }

// PerPhaseCalibration runs the ablation over the configured instances.
func PerPhaseCalibration(cfg *Config) ([]PerPhaseRow, error) {
	cfg.setDefaults()
	var rows []PerPhaseRow
	for _, class := range cfg.Classes {
		for _, procs := range cfg.Procs {
			prog, err := npb.LU(npb.LUConfig{Class: class, Procs: procs})
			if err != nil {
				return nil, err
			}
			camp := &acquisition.Campaign{
				Procs:            procs,
				Program:          prog,
				OverheadPerEvent: cfg.OverheadPerEvent,
				Rate:             LURateModel(cfg.Seed),
				Network:          TrueNetworkModel(),
			}
			actual, err := camp.ExecutionTime(acquisition.Regular())
			if err != nil {
				return nil, err
			}

			// Calibration acquisition: the same instance family, observed
			// with both estimators over the configured number of runs.
			var avgRuns []float64
			var bucketRuns []*calibrate.BucketRates
			for run := 0; run < cfg.CalibrationRuns; run++ {
				dir, err := os.MkdirTemp("", "tireplay-ppc-")
				if err != nil {
					return nil, err
				}
				calCamp := &acquisition.Campaign{
					Procs:            procs,
					Program:          prog,
					OverheadPerEvent: cfg.OverheadPerEvent,
					Rate:             LURateModel(cfg.Seed + int64(run) + 1),
					Network:          TrueNetworkModel(),
				}
				b, d, err := calCamp.Build(acquisition.Regular())
				if err != nil {
					os.RemoveAll(dir)
					return nil, err
				}
				_, files, err := tau.AcquireSim(dir, b, d,
					mpi.SimConfig{Rate: calCamp.Rate}, cfg.OverheadPerEvent, prog)
				if err != nil {
					os.RemoveAll(dir)
					return nil, err
				}
				_, avg, err := calibrate.MeasureFlopRate(files)
				if err != nil {
					os.RemoveAll(dir)
					return nil, err
				}
				br, err := calibrate.MeasureBucketRates(files)
				os.RemoveAll(dir)
				if err != nil {
					return nil, err
				}
				avgRuns = append(avgRuns, avg)
				bucketRuns = append(bucketRuns, br)
			}
			avgRate, err := calibrate.AverageOverRuns(avgRuns)
			if err != nil {
				return nil, err
			}
			buckets, err := calibrate.MergeBucketRates(bucketRuns)
			if err != nil {
				return nil, err
			}

			// The trace to replay comes from the target acquisition.
			perRank := make([][]trace.Action, procs)
			for r := 0; r < procs; r++ {
				perRank[r], err = mpi.Record(r, procs, prog)
				if err != nil {
					return nil, err
				}
			}

			avgTime, err := replayWithRates(procs, perRank, avgRate, nil)
			if err != nil {
				return nil, err
			}
			phaseTime, err := replayWithRates(procs, perRank, avgRate, buckets)
			if err != nil {
				return nil, err
			}
			row := PerPhaseRow{Class: class.Name, Procs: procs,
				Actual: actual, AverageCal: avgTime, PerPhaseCal: phaseTime}
			rows = append(rows, row)
			cfg.progressf("per-phase class %s procs %d: actual %.2fs avg-cal %.2fs (%.1f%%) phase-cal %.2fs (%.1f%%)",
				class.Name, procs, actual, avgTime, row.AverageErrPct(), phaseTime, row.PerPhaseErrPct())
		}
	}
	return rows, nil
}

// replayWithRates replays a trace on a platform calibrated at avgRate;
// when buckets is non-nil, compute actions are re-timed with their bin's
// calibrated rate instead of the platform average.
func replayWithRates(procs int, perRank [][]trace.Action, avgRate float64,
	buckets *calibrate.BucketRates) (float64, error) {

	b, err := platform.BuildBordereauCustom(procs, 1, avgRate)
	if err != nil {
		return 0, err
	}
	d, err := platform.RoundRobin(b.HostNames, procs, 1)
	if err != nil {
		return 0, err
	}
	cfg := replay.Config{Model: smpi.Default()}
	if buckets != nil {
		reg := replay.Default()
		reg.Register("compute", func(p *replay.Proc, a trace.Action) error {
			// Duration = volume / bucketRate; expressed as equivalent flops
			// on the avgRate host.
			p.Sim.Execute(a.Volume * avgRate / buckets.Rate(a.Volume))
			return nil
		})
		cfg.Registry = reg
	}
	res, err := replay.RunActions(b, d, cfg, perRank)
	if err != nil {
		return 0, err
	}
	return res.SimulatedTime, nil
}

// RenderPerPhase prints the ablation table.
func RenderPerPhase(w io.Writer, rows []PerPhaseRow) {
	fmt.Fprintln(w, "Ablation (paper §6.4) — single-average vs per-phase flop-rate calibration")
	fmt.Fprintf(w, "%-5s %6s | %10s | %10s %8s | %10s %8s\n",
		"Class", "Procs", "Actual", "Avg cal", "Error", "Phase cal", "Error")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %6d | %9.2fs | %9.2fs %7.1f%% | %9.2fs %7.1f%%\n",
			r.Class, r.Procs, r.Actual, r.AverageCal, r.AverageErrPct(),
			r.PerPhaseCal, r.PerPhaseErrPct())
	}
}
