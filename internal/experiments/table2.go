package experiments

import (
	"fmt"

	"tireplay/internal/acquisition"
	"tireplay/internal/npb"
)

// Table2Row is one cell of Table 2: the instrumented execution time of an
// LU instance under one acquisition mode, and its ratio to Regular mode.
type Table2Row struct {
	Class   string
	Mode    string
	Nodes   []int
	Seconds float64
	Ratio   float64
}

// Table2Modes returns the mode list of the paper's Table 2 for the given
// folding factors: R, F-x..., S-2, SF-(2,x)... .
func Table2Modes(folds []int) []acquisition.Mode {
	modes := []acquisition.Mode{acquisition.Regular()}
	for _, f := range folds {
		modes = append(modes, acquisition.Folding(f))
	}
	modes = append(modes, acquisition.Scattering(2))
	for _, f := range folds {
		if f > 16 {
			// The paper's SF column stops at SF-(2,16): 64 processes on
			// 2x2 nodes.
			continue
		}
		modes = append(modes, acquisition.ScatterFold(2, f))
	}
	return modes
}

// Table2 regenerates Table 2: the evolution of the execution time of an
// instrumented LU benchmark with regard to the acquisition mode.
func Table2(cfg *Config) ([]Table2Row, error) {
	cfg.setDefaults()
	var rows []Table2Row
	for _, class := range cfg.Classes {
		prog, err := npb.LU(npb.LUConfig{Class: class, Procs: cfg.Table2Procs})
		if err != nil {
			return nil, err
		}
		camp := &acquisition.Campaign{
			Procs:            cfg.Table2Procs,
			Program:          prog,
			OverheadPerEvent: cfg.OverheadPerEvent,
			Rate:             LURateModel(cfg.Seed),
			Network:          TrueNetworkModel(),
		}
		var regular float64
		for _, m := range Table2Modes(cfg.Table2Folds) {
			secs, err := camp.InstrumentedTime(m)
			if err != nil {
				return nil, fmt.Errorf("experiments: table2 %s %s: %w", class.Name, m.Name(), err)
			}
			if m.Name() == "R" {
				regular = secs
			}
			nodes, err := m.Nodes(cfg.Table2Procs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{
				Class:   class.Name,
				Mode:    m.Name(),
				Nodes:   nodes,
				Seconds: secs,
				Ratio:   secs / regular,
			})
			cfg.progressf("table2 class %s mode %-9s: %8.2f s (ratio %.2f)",
				class.Name, m.Name(), secs, secs/regular)
		}
	}
	return rows, nil
}
