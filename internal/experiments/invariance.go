package experiments

import (
	"fmt"
	"os"
	"strings"

	"tireplay/internal/acquisition"
	"tireplay/internal/convert"
	"tireplay/internal/npb"
)

// InvarianceResult verifies the property closing Section 6.2: a classical
// tracing tool produces traces full of erroneous timestamps under folded or
// scattered acquisitions, but with time-independent traces "the simulated
// time is more or less the same whatever the acquisition scenario is".
type InvarianceResult struct {
	Class      string
	Procs      int
	Modes      []string
	Simulated  []float64 // simulated time per mode
	Identical  bool      // traces byte-identical across modes
	MaxRelDiff float64   // max relative difference of the simulated times
}

// Invariance acquires the same LU instance under Regular, Folding,
// Scattering and Scattering+Folding, extracts the traces, replays each, and
// compares both the traces and the predicted times.
func Invariance(cfg *Config) (*InvarianceResult, error) {
	cfg.setDefaults()
	class := cfg.Classes[0]
	procs := cfg.Procs[len(cfg.Procs)-1]
	prog, err := npb.LU(npb.LUConfig{Class: class, Procs: procs})
	if err != nil {
		return nil, err
	}
	camp := &acquisition.Campaign{
		Procs:            procs,
		Program:          prog,
		OverheadPerEvent: cfg.OverheadPerEvent,
		Rate:             LURateModel(cfg.Seed),
		Network:          TrueNetworkModel(),
	}
	modes := []acquisition.Mode{
		acquisition.Regular(),
		acquisition.Folding(2),
		acquisition.Scattering(2),
		acquisition.ScatterFold(2, 2),
	}
	res := &InvarianceResult{Class: class.Name, Procs: procs, Identical: true}
	var refTrace string
	for _, m := range modes {
		dir, err := os.MkdirTemp("", "tireplay-inv-")
		if err != nil {
			return nil, err
		}
		if _, err := camp.Run(dir, m, true); err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: invariance %s: %w", m.Name(), err)
		}
		perRank, err := convert.ExtractDir(dir, procs)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		var sb strings.Builder
		for _, acts := range perRank {
			for _, a := range acts {
				sb.WriteString(a.Format())
				sb.WriteByte('\n')
			}
		}
		if refTrace == "" {
			refTrace = sb.String()
		} else if sb.String() != refTrace {
			res.Identical = false
		}

		sim, err := replayBordereau(procs, 0, perRank)
		if err != nil {
			return nil, err
		}
		res.Modes = append(res.Modes, m.Name())
		res.Simulated = append(res.Simulated, sim.SimulatedTime)
		cfg.progressf("invariance mode %-9s: simulated %.4f s", m.Name(), sim.SimulatedTime)
	}
	ref := res.Simulated[0]
	for _, s := range res.Simulated {
		d := (s - ref) / ref
		if d < 0 {
			d = -d
		}
		if d > res.MaxRelDiff {
			res.MaxRelDiff = d
		}
	}
	return res, nil
}
