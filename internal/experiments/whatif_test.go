package experiments

import (
	"context"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/sweep"
)

// TestWhatIfSweep runs the capacity-planning sweep on a small instance and
// checks the engine's predictions respond to the grid as physics demands.
func TestWhatIfSweep(t *testing.T) {
	cfg := &Config{Classes: []npb.Class{npb.ClassS}, Procs: []int{4}}
	grid := sweep.Grid{PowerScale: []float64{1, 2}, BandwidthScale: []float64{1, 10}}
	res, err := WhatIf(context.Background(), cfg, grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(res.Scenarios))
	}
	base := res.Scenarios[0]   // pow=1 bw=1
	faster := res.Scenarios[3] // pow=2 bw=10
	if base.SimulatedTime <= 0 || faster.SimulatedTime <= 0 {
		t.Fatalf("non-positive makespans: %g, %g", base.SimulatedTime, faster.SimulatedTime)
	}
	if faster.SimulatedTime >= base.SimulatedTime {
		t.Fatalf("upgraded platform (%s) %g not faster than baseline (%s) %g",
			faster.Name, faster.SimulatedTime, base.Name, base.SimulatedTime)
	}
}
