// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): the acquisition-time distribution of Figure 7, the
// acquisition-mode comparison of Table 2, the trace sizes of Table 3, the
// replay accuracy of Figure 8, the replay times of Figure 9, the large
// class D acquisition of Section 6.5, and the simulated-time invariance
// observation closing Section 6.2.
package experiments

import (
	"fmt"
	"io"
	"math"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/smpi"
)

// Config parameterises an experimental campaign. The zero value is the
// paper's setup (classes B and C over 8..64 processes); Quick() downsizes
// everything for fast runs.
type Config struct {
	// Classes are the LU problem classes evaluated (default B, C).
	Classes []npb.Class
	// Procs are the process counts of Figures 7-9 and Table 3
	// (default 8, 16, 32, 64).
	Procs []int
	// Table2Procs is the process count of the Table 2 campaign
	// (default 64).
	Table2Procs int
	// Table2Folds are the folding factors of Table 2 (default 2..32).
	Table2Folds []int
	// OverheadPerEvent is the tracing perturbation per record (default
	// 1.5 microseconds).
	OverheadPerEvent float64
	// ExtractCostPerEvent is the modelled extraction cost per record
	// (default 20 microseconds, calibrated to the paper's Figure 7 scale).
	ExtractCostPerEvent float64
	// Seed drives the host flop-rate variability model.
	Seed int64
	// CalibrationRuns is the number of calibration repetitions (default 5,
	// as in Section 5).
	CalibrationRuns int
	// CalibrationProcs is the size of the small calibration instance
	// (default 8).
	CalibrationProcs int
	// LargeSampleRanks is how many ranks the Section 6.5 size measurement
	// streams exactly before extending by action counts (default 8; zero
	// or negative streams every rank).
	LargeSampleRanks int
	// Progress, when non-nil, receives one line per completed step.
	Progress io.Writer
}

func (c *Config) setDefaults() {
	if len(c.Classes) == 0 {
		c.Classes = []npb.Class{npb.ClassB, npb.ClassC}
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{8, 16, 32, 64}
	}
	if c.Table2Procs == 0 {
		c.Table2Procs = 64
	}
	if len(c.Table2Folds) == 0 {
		c.Table2Folds = []int{2, 4, 8, 16, 32}
	}
	if c.OverheadPerEvent == 0 {
		c.OverheadPerEvent = 1.5e-6
	}
	if c.ExtractCostPerEvent == 0 {
		c.ExtractCostPerEvent = 20e-6
	}
	if c.CalibrationRuns == 0 {
		c.CalibrationRuns = 5
	}
	if c.CalibrationProcs == 0 {
		c.CalibrationProcs = 8
	}
	if c.LargeSampleRanks == 0 {
		c.LargeSampleRanks = 8
	}
}

// Quick returns a configuration downsized for fast runs (classes W and A
// over 4-16 processes, Table 2 on 16 processes).
func Quick() *Config {
	return &Config{
		Classes:     []npb.Class{npb.ClassW, npb.ClassA},
		Procs:       []int{4, 8, 16},
		Table2Procs: 16,
		Table2Folds: []int{2, 4, 8},
	}
}

func (c *Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// splitmix64 is a small deterministic hash for the variability models.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to (0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// LURateModel is the host flop-rate variability model of the accuracy
// experiment: the paper observes (Section 6.4) that "the flop rate is not
// constant over the computation of a LU benchmark" and that this, not the
// network, dominates the replay error. The model combines a systematic
// per-phase rate difference (the SSOR phases stress caches differently)
// with a small random perturbation.
func LURateModel(seed int64) mpi.RateMultiplier {
	return func(rank int, seq int64, flops float64) float64 {
		phase := 1.0
		switch seq % 7 {
		case 0, 1, 2:
			phase = 1.18
		case 3, 4:
			phase = 0.78
		default:
			phase = 0.97
		}
		h := splitmix64(uint64(seed)*0x9e3779b9 ^ uint64(rank)<<32 ^ uint64(seq))
		noise := 0.94 + 0.12*unit(h)
		return phase * noise
	}
}

// TrueNetworkModel is the protocol behaviour of the "real" (modelled)
// testbed: piece-wise linear like any MPI implementation on TCP, but with
// factors that differ from the simulator's calibrated Default model — the
// residual network-calibration error any off-line simulation carries.
func TrueNetworkModel() *smpi.Model {
	return smpi.MustNew([]smpi.Segment{
		{MaxBytes: 1024, LatFactor: 1.05, BwFactor: 0.68},
		{MaxBytes: 64 * 1024, LatFactor: 1.7, BwFactor: 0.90},
		{MaxBytes: math.Inf(1), LatFactor: 2.05, BwFactor: 0.955},
	})
}
