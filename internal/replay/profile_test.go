package replay

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileCollectsPerProcess(t *testing.T) {
	b, d := paperSetup(t, 4)
	prof := NewProfile()
	res, err := RunActions(b, d, Config{TimedTracer: prof}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	procs := prof.Processes()
	if len(procs) != 4 {
		t.Fatalf("profiled %d processes", len(procs))
	}
	for _, pp := range procs {
		if pp.Computes != 1 || pp.Flops != 1e6 {
			t.Errorf("%s: computes=%d flops=%g", pp.Name, pp.Computes, pp.Flops)
		}
		if pp.Sends != 1 || pp.SentBytes != 1e6 {
			t.Errorf("%s: sends=%d bytes=%g", pp.Name, pp.Sends, pp.SentBytes)
		}
		if pp.ComputeTime <= 0 || pp.SendTime <= 0 {
			t.Errorf("%s: zero times %+v", pp.Name, pp)
		}
		if pp.ComputeTime+pp.SendTime > res.SimulatedTime {
			t.Errorf("%s: busy time exceeds makespan", pp.Name)
		}
	}
}

func TestProfileRender(t *testing.T) {
	b, d := paperSetup(t, 4)
	prof := NewProfile()
	res, err := RunActions(b, d, Config{TimedTracer: prof}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prof.Render(&buf, res.SimulatedTime)
	out := buf.String()
	if !strings.Contains(out, "p0") || !strings.Contains(out, "idle") {
		t.Fatalf("render output:\n%s", out)
	}
	if strings.Count(out, "\n") != 5 { // header + 4 processes
		t.Fatalf("unexpected line count:\n%s", out)
	}
}

func TestTeeFansOut(t *testing.T) {
	b, d := paperSetup(t, 4)
	prof := NewProfile()
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	_, err := RunActions(b, d, Config{TimedTracer: Tee{prof, tw}}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Lines() != 8 {
		t.Fatalf("timed trace lines = %d", tw.Lines())
	}
	if len(prof.Processes()) != 4 {
		t.Fatalf("profile missing processes")
	}
}
