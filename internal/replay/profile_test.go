package replay

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestProfileCollectsPerProcess(t *testing.T) {
	b, d := paperSetup(t, 4)
	prof := NewProfile()
	res, err := RunActions(b, d, Config{TimedTracer: prof}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	procs := prof.Processes()
	if len(procs) != 4 {
		t.Fatalf("profiled %d processes", len(procs))
	}
	for _, pp := range procs {
		if pp.Computes != 1 || pp.Flops != 1e6 {
			t.Errorf("%s: computes=%d flops=%g", pp.Name, pp.Computes, pp.Flops)
		}
		if pp.Sends != 1 || pp.SentBytes != 1e6 {
			t.Errorf("%s: sends=%d bytes=%g", pp.Name, pp.Sends, pp.SentBytes)
		}
		if pp.ComputeTime <= 0 || pp.SendTime <= 0 {
			t.Errorf("%s: zero times %+v", pp.Name, pp)
		}
		if pp.ComputeTime+pp.SendTime > res.SimulatedTime {
			t.Errorf("%s: busy time exceeds makespan", pp.Name)
		}
	}
}

func TestProfileRender(t *testing.T) {
	b, d := paperSetup(t, 4)
	prof := NewProfile()
	res, err := RunActions(b, d, Config{TimedTracer: prof}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prof.Render(&buf, res.SimulatedTime)
	out := buf.String()
	if !strings.Contains(out, "p0") || !strings.Contains(out, "idle") {
		t.Fatalf("render output:\n%s", out)
	}
	if strings.Count(out, "\n") != 5 { // header + 4 processes
		t.Fatalf("unexpected line count:\n%s", out)
	}
}

func TestTeeFansOut(t *testing.T) {
	b, d := paperSetup(t, 4)
	prof := NewProfile()
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	_, err := RunActions(b, d, Config{TimedTracer: Tee{prof, tw}}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Lines() != 8 {
		t.Fatalf("timed trace lines = %d", tw.Lines())
	}
	if len(prof.Processes()) != 4 {
		t.Fatalf("profile missing processes")
	}
}

func TestProfileRenderZeroMakespan(t *testing.T) {
	// An empty trace replays in zero simulated time; the idle column must
	// degrade to "-" rather than dividing by the zero makespan.
	prof := NewProfile()
	prof.Compute("p0", "h0", 0, 0, 0)
	var buf bytes.Buffer
	prof.Render(&buf, 0)
	out := buf.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("zero makespan rendered a NaN/Inf:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("zero makespan should mark the idle column:\n%s", out)
	}
	buf.Reset()
	prof.Render(&buf, math.NaN())
	if out := buf.String(); strings.Contains(out, "NaN") {
		t.Fatalf("NaN makespan leaked into the table:\n%s", out)
	}
}

// TestProfileDualAttribution pins the corrected accounting on
// hand-computed values: one transfer must charge its full duration and
// volume to the sender's Send columns AND the receiver's Recv columns; a
// loopback transfer charges the same process in both roles.
func TestProfileDualAttribution(t *testing.T) {
	prof := NewProfile()
	prof.Comm("p0", "p1", 4096, 1.0, 3.5)
	prof.Comm("p2", "p2", 100, 0, 1) // loopback
	procs := prof.Processes()
	if len(procs) != 3 {
		t.Fatalf("profiled %d processes, want 3", len(procs))
	}
	p0, p1, p2 := procs[0], procs[1], procs[2]
	if p0.SendTime != 2.5 || p0.SentBytes != 4096 || p0.Sends != 1 {
		t.Errorf("sender: %+v", p0)
	}
	if p0.RecvTime != 0 || p0.RecvBytes != 0 || p0.Recvs != 0 {
		t.Errorf("sender gained recv accounting: %+v", p0)
	}
	if p1.RecvTime != 2.5 || p1.RecvBytes != 4096 || p1.Recvs != 1 {
		t.Errorf("receiver: %+v", p1)
	}
	if p1.SendTime != 0 || p1.Busy() != 2.5 {
		t.Errorf("receiver busy = %g, want 2.5: %+v", p1.Busy(), p1)
	}
	if p2.SendTime != 1 || p2.RecvTime != 1 || p2.Busy() != 2 {
		t.Errorf("loopback: %+v", p2)
	}
}

// TestProfileReceiverIdleCorrectedOnLU pins, on a real NPB LU trace, that
// the old sender-only attribution provably overstated receiver idle time:
// every rank both sends and receives in LU's wavefront exchange, so every
// rank must now carry RecvTime > 0, the idle estimate must drop on every
// rank, and the per-transfer books must balance (each transfer appears
// once as a send and once as a receive).
func TestProfileReceiverIdleCorrectedOnLU(t *testing.T) {
	const procs = 8
	perRank := npbTraces(t, "LU", procs)
	b, d := paperSetup(t, procs)
	prof := NewProfile()
	res, err := RunActions(b, d, Config{TimedTracer: prof}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	var sends, recvs int64
	var sentBytes, recvBytes, sendTime, recvTime float64
	for _, pp := range prof.Processes() {
		if pp.RecvTime <= 0 || pp.Recvs == 0 {
			t.Errorf("%s: no receiver-side accounting (RecvTime=%g Recvs=%d) — the old bug",
				pp.Name, pp.RecvTime, pp.Recvs)
		}
		oldIdle := res.SimulatedTime - pp.ComputeTime - pp.SendTime // pre-fix estimate
		newIdle := res.SimulatedTime - pp.Busy()
		if !(newIdle < oldIdle) {
			t.Errorf("%s: idle estimate did not drop (old %g, new %g)", pp.Name, oldIdle, newIdle)
		}
		sends += pp.Sends
		recvs += pp.Recvs
		sentBytes += pp.SentBytes
		recvBytes += pp.RecvBytes
		sendTime += pp.SendTime
		recvTime += pp.RecvTime
	}
	if sends != recvs {
		t.Errorf("transfer counts unbalanced: %d sends, %d recvs", sends, recvs)
	}
	// Totals sum the same per-transfer values grouped by different ranks,
	// so they agree up to summation rounding.
	if d := relDiff(sentBytes, recvBytes); d > 1e-12 {
		t.Errorf("byte totals unbalanced: sent %g, received %g", sentBytes, recvBytes)
	}
	if d := relDiff(sendTime, recvTime); d > 1e-12 {
		t.Errorf("time totals unbalanced: send %g, recv %g", sendTime, recvTime)
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}

// TestProfileRenderFlagsOverrun pins the Render contract on impossible
// rows: busy time genuinely beyond the makespan keeps the clamped idle
// cell but gains a "!" marker and a returned warning, while busy time
// within the rounding epsilon clamps silently as before.
func TestProfileRenderFlagsOverrun(t *testing.T) {
	prof := NewProfile()
	prof.Compute("bad", "h0", 1e6, 0, 1.25) // 25% over a makespan of 1
	prof.Compute("ok", "h0", 1e6, 0, 0.5)
	var buf bytes.Buffer
	warnings := prof.Render(&buf, 1.0)
	out := buf.String()
	if len(warnings) != 1 || !strings.Contains(warnings[0], "bad") {
		t.Fatalf("warnings = %q, want one naming \"bad\"", warnings)
	}
	badLine, okLine := "", ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "bad") {
			badLine = line
		}
		if strings.HasPrefix(line, "ok") {
			okLine = line
		}
	}
	if !strings.HasSuffix(badLine, "!") {
		t.Errorf("overrun row lacks the ! marker: %q", badLine)
	}
	if strings.Contains(okLine, "!") {
		t.Errorf("clean row gained a marker: %q", okLine)
	}
	if !strings.Contains(badLine, "0.0%") {
		t.Errorf("overrun row should clamp idle to 0.0%%: %q", badLine)
	}

	// Rounding-level overrun (1e-12 relative) stays silent.
	prof2 := NewProfile()
	prof2.Compute("p0", "h0", 1e6, 0, 1+1e-12)
	buf.Reset()
	if w := prof2.Render(&buf, 1.0); len(w) != 0 {
		t.Fatalf("rounding noise warned: %q", w)
	}
	if strings.Contains(buf.String(), "!") {
		t.Fatalf("rounding noise marked: %q", buf.String())
	}
}

func TestProfileRenderIdleClamped(t *testing.T) {
	// Rounding (or overlapping activity accounting) can push busy time a
	// hair past the makespan; the idle percentage must stay in [0, 100].
	prof := NewProfile()
	prof.Compute("p0", "h0", 1e6, 0, 1.0000001)
	var buf bytes.Buffer
	prof.Render(&buf, 1.0)
	out := buf.String()
	if strings.Contains(out, "-0.0") {
		t.Fatalf("idle percentage not clamped:\n%s", out)
	}
}
