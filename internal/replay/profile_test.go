package replay

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestProfileCollectsPerProcess(t *testing.T) {
	b, d := paperSetup(t, 4)
	prof := NewProfile()
	res, err := RunActions(b, d, Config{TimedTracer: prof}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	procs := prof.Processes()
	if len(procs) != 4 {
		t.Fatalf("profiled %d processes", len(procs))
	}
	for _, pp := range procs {
		if pp.Computes != 1 || pp.Flops != 1e6 {
			t.Errorf("%s: computes=%d flops=%g", pp.Name, pp.Computes, pp.Flops)
		}
		if pp.Sends != 1 || pp.SentBytes != 1e6 {
			t.Errorf("%s: sends=%d bytes=%g", pp.Name, pp.Sends, pp.SentBytes)
		}
		if pp.ComputeTime <= 0 || pp.SendTime <= 0 {
			t.Errorf("%s: zero times %+v", pp.Name, pp)
		}
		if pp.ComputeTime+pp.SendTime > res.SimulatedTime {
			t.Errorf("%s: busy time exceeds makespan", pp.Name)
		}
	}
}

func TestProfileRender(t *testing.T) {
	b, d := paperSetup(t, 4)
	prof := NewProfile()
	res, err := RunActions(b, d, Config{TimedTracer: prof}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prof.Render(&buf, res.SimulatedTime)
	out := buf.String()
	if !strings.Contains(out, "p0") || !strings.Contains(out, "idle") {
		t.Fatalf("render output:\n%s", out)
	}
	if strings.Count(out, "\n") != 5 { // header + 4 processes
		t.Fatalf("unexpected line count:\n%s", out)
	}
}

func TestTeeFansOut(t *testing.T) {
	b, d := paperSetup(t, 4)
	prof := NewProfile()
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	_, err := RunActions(b, d, Config{TimedTracer: Tee{prof, tw}}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Lines() != 8 {
		t.Fatalf("timed trace lines = %d", tw.Lines())
	}
	if len(prof.Processes()) != 4 {
		t.Fatalf("profile missing processes")
	}
}

func TestProfileRenderZeroMakespan(t *testing.T) {
	// An empty trace replays in zero simulated time; the idle column must
	// degrade to "-" rather than dividing by the zero makespan.
	prof := NewProfile()
	prof.Compute("p0", "h0", 0, 0, 0)
	var buf bytes.Buffer
	prof.Render(&buf, 0)
	out := buf.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("zero makespan rendered a NaN/Inf:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("zero makespan should mark the idle column:\n%s", out)
	}
	buf.Reset()
	prof.Render(&buf, math.NaN())
	if out := buf.String(); strings.Contains(out, "NaN") {
		t.Fatalf("NaN makespan leaked into the table:\n%s", out)
	}
}

func TestProfileRenderIdleClamped(t *testing.T) {
	// Rounding (or overlapping activity accounting) can push busy time a
	// hair past the makespan; the idle percentage must stay in [0, 100].
	prof := NewProfile()
	prof.Compute("p0", "h0", 1e6, 0, 1.0000001)
	var buf bytes.Buffer
	prof.Render(&buf, 1.0)
	out := buf.String()
	if strings.Contains(out, "-0.0") {
		t.Fatalf("idle percentage not clamped:\n%s", out)
	}
}
