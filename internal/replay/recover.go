package replay

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"tireplay/internal/platform"
)

// Ckpt describes a coordinated checkpoint/restart protocol: every Interval
// seconds of application progress the whole run blocks for Cost seconds to
// write a global checkpoint; a fail-stop failure costs Down seconds of
// downtime plus Restart seconds to reload the last checkpoint, after which
// the run re-executes from that checkpoint's progress point.
//
// Because the replay is deterministic, re-execution from a global
// checkpoint reproduces the original schedule exactly, so the faulted
// makespan has a closed form over the fault-free one: the kernel simulates
// the fault-free run (degradations included) once, and the checkpoint and
// rewind waste is applied analytically (see Resilience). This is the
// classical first-order waste model behind Young's and Daly's optimal
// checkpoint intervals, made exact by determinism.
type Ckpt struct {
	Interval float64 // seconds of progress between checkpoint writes
	Cost     float64 // seconds to write one checkpoint
	Restart  float64 // seconds to reload the last checkpoint
	Down     float64 // seconds of downtime before the restart begins
}

// Validate checks the protocol parameters.
func (c *Ckpt) Validate() error {
	if c == nil {
		return nil
	}
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }
	if !(c.Interval > 0) || math.IsInf(c.Interval, 0) || math.IsNaN(c.Interval) {
		return fmt.Errorf("replay: checkpoint interval %g, want > 0", c.Interval)
	}
	if bad(c.Cost) || bad(c.Restart) || bad(c.Down) {
		return fmt.Errorf("replay: checkpoint cost/restart/down %g/%g/%g, want finite >= 0",
			c.Cost, c.Restart, c.Down)
	}
	return nil
}

// ParseCkpt parses the command-line form "interval[/cost[/restart[/down]]]"
// (seconds; omitted fields default to 0). "none" or an empty string yields
// a nil protocol.
func ParseCkpt(s string) (*Ckpt, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "none") {
		return nil, nil
	}
	parts := strings.Split(s, "/")
	if len(parts) > 4 {
		return nil, fmt.Errorf("replay: checkpoint spec %q: want interval[/cost[/restart[/down]]]", s)
	}
	vals := [4]float64{}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("replay: checkpoint spec %q: bad number %q", s, p)
		}
		vals[i] = v
	}
	c := &Ckpt{Interval: vals[0], Cost: vals[1], Restart: vals[2], Down: vals[3]}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// String renders the protocol in the ParseCkpt form.
func (c *Ckpt) String() string {
	if c == nil {
		return "none"
	}
	return fmt.Sprintf("%g/%g/%g/%g", c.Interval, c.Cost, c.Restart, c.Down)
}

// MarshalText renders the protocol for JSON/text encoders.
func (c *Ckpt) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// DalyInterval returns Daly's first-order optimal checkpoint interval
// sqrt(2*cost*mtbf) for a checkpoint cost and a platform mean time between
// failures — the analytic optimum the resilience sweep should reproduce.
func DalyInterval(cost, mtbf float64) float64 {
	return math.Sqrt(2 * cost * mtbf)
}

// Resilience is the waste accounting of a replay under the
// checkpoint/restart policy. All fields are simulated seconds except the
// counters. Two exact identities hold (and are tested):
//
//	Effective = FaultFree + CkptTime + Wasted + Downtime
//	Wasted    = Recomputed + (partial checkpoint writes lost to failures)
type Resilience struct {
	// FaultFree is the makespan of the failure-free run (degradation
	// windows included), straight from the kernel.
	FaultFree float64 `json:"fault_free"`
	// Effective is the makespan with checkpoints and failures applied —
	// the run's SimulatedTime.
	Effective float64 `json:"effective"`
	// CkptTime is the time spent in completed checkpoint writes.
	CkptTime float64 `json:"ckpt_time"`
	// Wasted is the time discarded by failures: progress since the last
	// durable checkpoint, plus any partially-written checkpoint.
	Wasted float64 `json:"wasted"`
	// Recomputed is the rolled-back-work portion of Wasted: progress that
	// has to be executed again after a rewind.
	Recomputed float64 `json:"recomputed"`
	// Downtime is the failure handling time: (Down + Restart) per failure.
	Downtime float64 `json:"downtime"`
	// Checkpoints counts completed checkpoint writes.
	Checkpoints int `json:"checkpoints"`
	// Failures counts the failures that struck the run (failures arriving
	// during another failure's recovery window are absorbed by it).
	Failures int `json:"failures"`
}

// maxCkptFailures bounds the analytic walker: a failure rate so high that
// the run needs this many rewinds will plainly never finish.
const maxCkptFailures = 1 << 20

// applyCkpt walks the fault-free makespan M through the checkpoint/restart
// waste algebra against the failure-instant stream. Progress p advances
// toward M in wall time; every Interval of progress a checkpoint is
// written; a failure instant striking mid-work or mid-write discards
// everything since the last durable checkpoint and costs Down+Restart
// before re-execution resumes. A failure landing exactly on a boundary
// counts against the following phase.
func applyCkpt(M float64, ck *Ckpt, arr *platform.Arrivals) (*Resilience, error) {
	r := &Resilience{FaultFree: M}
	wall := 0.0 // elapsed wall-clock (simulated) time
	p := 0.0    // application progress achieved
	cp := 0.0   // progress of the last durable checkpoint
	nf := arr.Next()
	fail := func(at float64) {
		r.Failures++
		wall = at + ck.Down + ck.Restart
		r.Downtime += ck.Down + ck.Restart
		p = cp
		for nf = arr.Next(); nf < wall; nf = arr.Next() {
			// Failures during the recovery window are absorbed by it: the
			// run was not progressing, there is nothing more to lose.
		}
	}
	for p < M {
		if r.Failures >= maxCkptFailures {
			return nil, fmt.Errorf("replay: checkpoint/restart does not converge: %d failures before progress %g/%g (interval %g vs failure rate too high)",
				r.Failures, p, M, ck.Interval)
		}
		target := cp + ck.Interval
		if target > M {
			target = M
		}
		need := target - p
		if nf < wall+need {
			// Failure mid-work: progress since the last checkpoint is lost
			// and will be recomputed.
			lost := (p + (nf - wall)) - cp
			r.Wasted += lost
			r.Recomputed += lost
			fail(nf)
			continue
		}
		wall += need
		p = target
		if p >= M {
			break // the application finished; no final checkpoint needed
		}
		if nf < wall+ck.Cost {
			// Failure mid-write: the checkpoint is not durable, so the
			// partial write and all progress since the last durable one
			// are lost.
			r.Wasted += (nf - wall) + (p - cp)
			r.Recomputed += p - cp
			fail(nf)
			continue
		}
		wall += ck.Cost
		r.CkptTime += ck.Cost
		r.Checkpoints++
		cp = p
	}
	r.Effective = wall
	return r, nil
}

// RankFailure records one rank lost to a fail-stop fault under the abort
// recovery policy. The failure names the resource that died — a rank
// aborted because its peer's host failed reports that host, not its own.
type RankFailure struct {
	Rank    int     `json:"rank"`
	Host    string  `json:"host"` // the rank's own host
	Actions int64   `json:"actions"`
	At      float64 `json:"at"`
	Cause   string  `json:"cause"` // the FailedError message
}

// FailedRanksError aborts a faulted replay without a recovery protocol: it
// diagnoses which ranks died (or were cascaded into aborting by a peer's
// death), with the work each had completed. Configure Ckpt to ride through
// failures instead.
type FailedRanksError struct {
	// Time is the simulated time the run ended.
	Time float64
	// Ranks lists the lost ranks in rank order.
	Ranks []RankFailure
}

func (e *FailedRanksError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay: %d rank(s) lost to fail-stop faults by t=%g:", len(e.Ranks), e.Time)
	for i, rf := range e.Ranks {
		if i == 4 {
			fmt.Fprintf(&b, " ... (%d more)", len(e.Ranks)-i)
			break
		}
		fmt.Fprintf(&b, " rank %d on %s after %d actions (%s);", rf.Rank, rf.Host, rf.Actions, rf.Cause)
	}
	return strings.TrimSuffix(b.String(), ";")
}
