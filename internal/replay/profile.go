package replay

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Profile accumulates a per-process breakdown of the simulated execution —
// time spent computing vs communicating, volumes moved — from the timed
// trace of a replay. It realises the third output sketched in Figure 4 of
// the paper ("derive a profile of the application from this timed trace"),
// which the authors left to external tools like TAU and Scalasca.
//
// A transfer occupies both of its endpoints: Comm charges the duration to
// the sender (SendTime) and to the receiver (RecvTime), so receiver-side
// communication is no longer folded into idle time. The columnar
// MetricsSink shares the same attribution rule; TestSinkMatchesProfile pins
// the two equal.
//
// Install it as the replay's TimedTracer (possibly chained with a
// TimedTraceWriter via Tee).
type Profile struct {
	mu    sync.Mutex
	procs map[string]*ProcProfile
}

// ProcProfile is the accumulated activity of one process.
type ProcProfile struct {
	Name        string
	ComputeTime float64
	Flops       float64
	Computes    int64
	SendTime    float64 // time of transfers this process sent
	SentBytes   float64
	Sends       int64
	RecvTime    float64 // time of transfers this process received
	RecvBytes   float64
	Recvs       int64
}

// Busy is the total time the process was occupied by traced activity.
func (pp *ProcProfile) Busy() float64 {
	return pp.ComputeTime + pp.SendTime + pp.RecvTime
}

// NewProfile returns an empty profile collector.
func NewProfile() *Profile {
	return &Profile{procs: make(map[string]*ProcProfile)}
}

func (p *Profile) proc(name string) *ProcProfile {
	pp := p.procs[name]
	if pp == nil {
		pp = &ProcProfile{Name: name}
		p.procs[name] = pp
	}
	return pp
}

// Compute implements simx.Tracer.
func (p *Profile) Compute(proc, host string, flops, start, end float64) {
	p.mu.Lock()
	pp := p.proc(proc)
	pp.ComputeTime += end - start
	pp.Flops += flops
	pp.Computes++
	p.mu.Unlock()
}

// Comm implements simx.Tracer. The transfer is attributed to both
// endpoints: the sender's SendTime and the receiver's RecvTime each absorb
// the full duration (a loopback transfer charges the same process twice,
// once per role).
func (p *Profile) Comm(src, dst string, bytes, start, end float64) {
	p.mu.Lock()
	pp := p.proc(src)
	pp.SendTime += end - start
	pp.SentBytes += bytes
	pp.Sends++
	pd := p.proc(dst)
	pd.RecvTime += end - start
	pd.RecvBytes += bytes
	pd.Recvs++
	p.mu.Unlock()
}

// Processes returns the per-process profiles sorted by name.
func (p *Profile) Processes() []*ProcProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*ProcProfile, 0, len(p.procs))
	for _, pp := range p.procs {
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// renderEpsilon bounds the idle-percentage clamp: busy time within this
// relative distance of the makespan is rounding noise and clamps silently;
// anything beyond it is a genuine accounting violation and is surfaced.
const renderEpsilon = 1e-9

// Render prints the profile table and returns the accounting warnings.
// makespan (the replay's simulated time) provides the idle-time column; a
// non-positive or NaN makespan — an empty trace simulates in zero time —
// marks the column "-" instead of dividing by it. Accumulated rounding may
// push the percentage a hair outside [0, 100] and is clamped silently, but
// a process whose busy time genuinely exceeds the makespan (beyond a 1e-9
// relative epsilon — the symptom of double-counted overlapping activity,
// e.g. transfers progressing under a compute burst) keeps the clamped cell,
// gains a trailing "!" marker, and contributes a returned warning rather
// than being silently masked.
func (p *Profile) Render(w io.Writer, makespan float64) []string {
	var warnings []string
	fmt.Fprintf(w, "%-8s | %12s %10s | %12s %12s | %12s %12s | %10s\n",
		"process", "compute", "flops", "comm (sent)", "bytes", "comm (recv)", "bytes", "idle")
	for _, pp := range p.Processes() {
		idle := "-"
		mark := ""
		if makespan > 0 { // false for NaN too
			busy := pp.Busy()
			pct := 100 * (makespan - busy) / makespan
			if busy > makespan*(1+renderEpsilon) {
				mark = " !"
				warnings = append(warnings, fmt.Sprintf(
					"%s: busy time %.9gs exceeds makespan %.9gs (%.3g%% over): overlapping activity was double-counted",
					pp.Name, busy, makespan, 100*(busy-makespan)/makespan))
			}
			if pct < 0 {
				pct = 0
			} else if pct > 100 {
				pct = 100
			}
			idle = fmt.Sprintf("%9.1f%%", pct)
		}
		fmt.Fprintf(w, "%-8s | %11.3fs %10.3g | %11.3fs %12.3g | %11.3fs %12.3g | %10s%s\n",
			pp.Name, pp.ComputeTime, pp.Flops, pp.SendTime, pp.SentBytes,
			pp.RecvTime, pp.RecvBytes, idle, mark)
	}
	return warnings
}

// Tee fans a timed trace out to several tracers (e.g. a Profile and a
// TimedTraceWriter at once).
type Tee []interface {
	Compute(proc, host string, flops, start, end float64)
	Comm(src, dst string, bytes, start, end float64)
}

// Compute implements simx.Tracer.
func (t Tee) Compute(proc, host string, flops, start, end float64) {
	for _, tr := range t {
		tr.Compute(proc, host, flops, start, end)
	}
}

// Comm implements simx.Tracer.
func (t Tee) Comm(src, dst string, bytes, start, end float64) {
	for _, tr := range t {
		tr.Comm(src, dst, bytes, start, end)
	}
}
