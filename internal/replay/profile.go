package replay

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Profile accumulates a per-process breakdown of the simulated execution —
// time spent computing vs communicating, volumes moved — from the timed
// trace of a replay. It realises the third output sketched in Figure 4 of
// the paper ("derive a profile of the application from this timed trace"),
// which the authors left to external tools like TAU and Scalasca.
//
// Install it as the replay's TimedTracer (possibly chained with a
// TimedTraceWriter via Tee).
type Profile struct {
	mu    sync.Mutex
	procs map[string]*ProcProfile
}

// ProcProfile is the accumulated activity of one process.
type ProcProfile struct {
	Name        string
	ComputeTime float64
	Flops       float64
	Computes    int64
	SendTime    float64 // time of transfers this process sent
	SentBytes   float64
	Sends       int64
}

// NewProfile returns an empty profile collector.
func NewProfile() *Profile {
	return &Profile{procs: make(map[string]*ProcProfile)}
}

func (p *Profile) proc(name string) *ProcProfile {
	pp := p.procs[name]
	if pp == nil {
		pp = &ProcProfile{Name: name}
		p.procs[name] = pp
	}
	return pp
}

// Compute implements simx.Tracer.
func (p *Profile) Compute(proc, host string, flops, start, end float64) {
	p.mu.Lock()
	pp := p.proc(proc)
	pp.ComputeTime += end - start
	pp.Flops += flops
	pp.Computes++
	p.mu.Unlock()
}

// Comm implements simx.Tracer.
func (p *Profile) Comm(src, dst string, bytes, start, end float64) {
	p.mu.Lock()
	pp := p.proc(src)
	pp.SendTime += end - start
	pp.SentBytes += bytes
	pp.Sends++
	p.mu.Unlock()
}

// Processes returns the per-process profiles sorted by name.
func (p *Profile) Processes() []*ProcProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*ProcProfile, 0, len(p.procs))
	for _, pp := range p.procs {
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Render prints the profile table. makespan (the replay's simulated time)
// provides the idle-time column; a non-positive or NaN makespan — an empty
// trace simulates in zero time — marks the column "-" instead of dividing
// by it, and accumulated rounding cannot push the percentage outside
// [0, 100].
func (p *Profile) Render(w io.Writer, makespan float64) {
	fmt.Fprintf(w, "%-8s | %12s %10s | %12s %12s | %10s\n",
		"process", "compute", "flops", "comm (sent)", "bytes", "idle")
	for _, pp := range p.Processes() {
		idle := "-"
		if makespan > 0 { // false for NaN too
			pct := 100 * (makespan - pp.ComputeTime - pp.SendTime) / makespan
			if pct < 0 {
				pct = 0
			} else if pct > 100 {
				pct = 100
			}
			idle = fmt.Sprintf("%9.1f%%", pct)
		}
		fmt.Fprintf(w, "%-8s | %11.3fs %10.3g | %11.3fs %12.3g | %10s\n",
			pp.Name, pp.ComputeTime, pp.Flops, pp.SendTime, pp.SentBytes, idle)
	}
}

// Tee fans a timed trace out to several tracers (e.g. a Profile and a
// TimedTraceWriter at once).
type Tee []interface {
	Compute(proc, host string, flops, start, end float64)
	Comm(src, dst string, bytes, start, end float64)
}

// Compute implements simx.Tracer.
func (t Tee) Compute(proc, host string, flops, start, end float64) {
	for _, tr := range t {
		tr.Compute(proc, host, flops, start, end)
	}
}

// Comm implements simx.Tracer.
func (t Tee) Comm(src, dst string, bytes, start, end float64) {
	for _, tr := range t {
		tr.Comm(src, dst, bytes, start, end)
	}
}
