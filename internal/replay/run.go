package replay

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"tireplay/internal/platform"
	"tireplay/internal/simx"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// Config parameterises a replay run.
type Config struct {
	// Model is the piece-wise linear MPI communication model applied to
	// point-to-point transfers; nil means smpi.Default().
	Model *smpi.Model
	// Registry binds action keywords to handlers; nil means Default().
	Registry *Registry
	// EagerThreshold is the message size (bytes) under which send actions
	// are buffered instead of synchronous. Zero means 64 KiB; negative
	// forces every send to be synchronous.
	EagerThreshold float64
	// TimedTracer, when non-nil, receives the timed trace of the simulated
	// execution (the secondary output of Figure 4).
	TimedTracer simx.Tracer
}

func (c *Config) setDefaults() {
	if c.Model == nil {
		c.Model = smpi.Default()
	}
	if c.Registry == nil {
		c.Registry = Default()
	}
	switch {
	case c.EagerThreshold == 0:
		c.EagerThreshold = 64 * 1024
	case c.EagerThreshold < 0:
		c.EagerThreshold = 0
	}
}

// Result reports the outcome of a replay.
type Result struct {
	// SimulatedTime is the predicted execution time of the application on
	// the target platform — the primary output of the framework.
	SimulatedTime float64
	// Actions is the number of trace actions executed.
	Actions int64
	// WallTime is the host time the simulation itself took (Figure 9).
	WallTime time.Duration
}

// Proc is the per-rank replayer context handed to action handlers.
type Proc struct {
	// Sim is the simulation process executing this rank's actions.
	Sim *simx.Proc
	// Rank is the process id of the trace being replayed.
	Rank int
	// N is the world size from the deployment.
	N int

	cfg     *Config
	pending []*simx.Comm // FIFO of outstanding Irecv requests
	collSeq int64
}

// nextColl returns the rank's next collective round number.
func (p *Proc) nextColl() int64 {
	s := p.collSeq
	p.collSeq++
	return s
}

// Source yields the successive actions of one rank's trace. Implementations
// need not be safe for concurrent use; each rank owns its source.
type Source interface {
	// Next returns the next action, or ok=false at end of trace.
	Next() (a trace.Action, ok bool, err error)
}

// sliceSource iterates an in-memory action list.
type sliceSource struct {
	actions []trace.Action
	idx     int
}

func (s *sliceSource) Next() (trace.Action, bool, error) {
	if s.idx >= len(s.actions) {
		return trace.Action{}, false, nil
	}
	a := s.actions[s.idx]
	s.idx++
	return a, true, nil
}

// SliceSource wraps an action list as a Source.
func SliceSource(actions []trace.Action) Source {
	return &sliceSource{actions: actions}
}

// scannerSource streams actions from a trace scanner.
type scannerSource struct{ sc *trace.Scanner }

func (s *scannerSource) Next() (trace.Action, bool, error) {
	if s.sc.Scan() {
		return s.sc.Action(), true, nil
	}
	return trace.Action{}, false, s.sc.Err()
}

// ScannerSource wraps a trace scanner as a Source, enabling the replay of
// traces too large to hold in memory.
func ScannerSource(sc *trace.Scanner) Source {
	return &scannerSource{sc: sc}
}

// Run replays one Source per rank on the platform: the engine of the whole
// framework. The deployment's i-th process entry maps rank i onto its host.
// The build's kernel is consumed by the run.
func Run(b *platform.Build, depl *platform.Deployment, cfg Config, sources []Source) (*Result, error) {
	n := len(depl.Processes)
	if n == 0 {
		return nil, fmt.Errorf("replay: empty deployment")
	}
	if len(sources) != n {
		return nil, fmt.Errorf("replay: %d sources for %d deployed processes", len(sources), n)
	}
	cfg.setDefaults()
	k := b.Kernel
	k.SetRateModel(cfg.Model.RateModel())
	if cfg.TimedTracer != nil {
		k.SetTracer(cfg.TimedTracer)
	}

	var actions atomic.Int64
	errs := make([]error, n)
	for i, pd := range depl.Processes {
		host := k.Host(pd.Host)
		if host == nil {
			return nil, fmt.Errorf("replay: deployment host %q not in platform", pd.Host)
		}
		rank := i
		src := sources[i]
		k.Spawn(pd.Function, host, func(sp *simx.Proc) {
			p := &Proc{Sim: sp, Rank: rank, N: n, cfg: &cfg}
			for {
				a, ok, err := src.Next()
				if err != nil {
					errs[rank] = fmt.Errorf("replay: p%d trace: %w", rank, err)
					return
				}
				if !ok {
					return
				}
				if a.Proc != rank {
					errs[rank] = fmt.Errorf("replay: p%d trace contains action of p%d", rank, a.Proc)
					return
				}
				h, err := cfg.Registry.Lookup(a.Type)
				if err != nil {
					errs[rank] = err
					return
				}
				if err := h(p, a); err != nil {
					errs[rank] = err
					return
				}
				actions.Add(1)
			}
		})
	}

	start := time.Now()
	makespan, runErr := k.Run()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if runErr != nil {
		return nil, fmt.Errorf("replay: simulation stalled: %w", runErr)
	}
	return &Result{SimulatedTime: makespan, Actions: actions.Load(), WallTime: wall}, nil
}

// RunActions replays in-memory per-rank action lists.
func RunActions(b *platform.Build, depl *platform.Deployment, cfg Config, perRank [][]trace.Action) (*Result, error) {
	sources := make([]Source, len(perRank))
	for i, acts := range perRank {
		sources[i] = SliceSource(acts)
	}
	return Run(b, depl, cfg, sources)
}

// RunFiles replays the per-process trace files named by the deployment's
// process arguments — the configuration of Section 5 where
// MSG_action_trace_run receives no file name and each process entry carries
// its own trace file. Plain-text traces are streamed so traces larger than
// memory (the class D scale of Section 6.5) replay in constant space;
// gzip-compressed and binary traces are decoded up front.
func RunFiles(b *platform.Build, depl *platform.Deployment, cfg Config) (*Result, error) {
	sources := make([]Source, len(depl.Processes))
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for i, pd := range depl.Processes {
		args := pd.Args()
		if len(args) == 0 {
			return nil, fmt.Errorf("replay: process %d (%s) has no trace file argument", i, pd.Function)
		}
		path := args[len(args)-1]
		src, closer, err := openSource(path)
		if err != nil {
			return nil, err
		}
		if closer != nil {
			closers = append(closers, closer)
		}
		sources[i] = src
	}
	return Run(b, depl, cfg, sources)
}

// openSource returns a streaming source for plain-text traces and an
// in-memory one for compressed or binary traces.
func openSource(path string) (Source, io.Closer, error) {
	if strings.HasSuffix(path, ".gz") {
		actions, err := trace.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		return SliceSource(actions), nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	// Binary traces are detected by magic; fall back to loading them.
	head := make([]byte, 4)
	if n, _ := f.ReadAt(head, 0); n == 4 && string(head) == "TITB" {
		f.Close()
		actions, err := trace.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		return SliceSource(actions), nil, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return ScannerSource(trace.NewScanner(f)), f, nil
}
