package replay

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"tireplay/internal/coll"
	"tireplay/internal/fifo"
	"tireplay/internal/platform"
	"tireplay/internal/simx"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// Config parameterises a replay run.
type Config struct {
	// Model is the piece-wise linear MPI communication model applied to
	// point-to-point transfers; nil means smpi.Default().
	Model *smpi.Model
	// Registry binds action keywords to handlers; nil means Default().
	Registry *Registry
	// EagerThreshold is the message size (bytes) under which send actions
	// are buffered instead of synchronous. Zero means 64 KiB; negative
	// forces every send to be synchronous.
	EagerThreshold float64
	// TimedTracer, when non-nil, receives the timed trace of the simulated
	// execution (the secondary output of Figure 4).
	TimedTracer simx.Tracer
	// StringMailboxes switches the handlers back to formatting and hashing
	// a mailbox name on every rendezvous instead of the interned mailbox
	// IDs resolved at rank spawn time. This is the reference path kept for
	// the interning equivalence tests; both paths address the same
	// mailboxes and produce identical timed traces.
	StringMailboxes bool
	// Collectives selects the algorithm decomposing each collective action
	// into point-to-point schedules (see internal/coll). The zero value
	// replays every collective as the paper's linear star through rank 0;
	// coll.Auto selects per message size from the MPI model's segments.
	Collectives coll.Config
	// Ranks maps the deployment's i-th process entry to the global MPI rank
	// it replays; nil means the identity mapping. The sweep engine's
	// platform partitioner uses it to run one connected component's subset
	// of ranks on its own kernel while the traces keep naming global ranks.
	Ranks []int
	// WorldSize is the communicator size the handlers see (comm_size
	// validation, peer range checks, collective fan-out); zero means the
	// number of deployed processes. It must cover every rank and peer the
	// replayed traces name.
	WorldSize int
	// Faults is the availability profile injected into the run; nil replays
	// fault-free. Index clauses ("host:0") address the deployment's process
	// slots in order. Without Ckpt the recovery policy is abort: fail-stops
	// kill the affected ranks and Run returns a *FailedRanksError diagnosing
	// the lost work.
	Faults *platform.FaultSpec
	// Ckpt switches the recovery policy to coordinated checkpoint/restart:
	// the kernel simulates the fault-free schedule (degradation clauses
	// still injected), and the checkpoint overhead plus the rewind waste of
	// the spec's fail-stop clauses are applied analytically — exact because
	// the replay is deterministic. The Result carries the waste breakdown
	// in Resilience. Ckpt without Faults still pays the checkpoint writes.
	Ckpt *Ckpt
}

func (c *Config) setDefaults() {
	if c.Model == nil {
		c.Model = smpi.Default()
	}
	if c.Registry == nil {
		c.Registry = Default()
	}
	switch {
	case c.EagerThreshold == 0:
		c.EagerThreshold = 64 * 1024
	case c.EagerThreshold < 0:
		c.EagerThreshold = 0
	}
}

// Result reports the outcome of a replay.
type Result struct {
	// SimulatedTime is the predicted execution time of the application on
	// the target platform — the primary output of the framework.
	SimulatedTime float64
	// Actions is the number of trace actions executed.
	Actions int64
	// WallTime is the host time the simulation itself took (Figure 9).
	WallTime time.Duration
	// Resilience is the checkpoint/restart waste breakdown; non-nil exactly
	// when Config.Ckpt was set, in which case SimulatedTime is its
	// Effective makespan.
	Resilience *Resilience
}

// Proc is the per-rank replayer context handed to action handlers.
type Proc struct {
	// Sim is the simulation process executing this rank's actions.
	Sim *simx.Proc
	// Rank is the process id of the trace being replayed.
	Rank int
	// N is the world size from the deployment.
	N int

	cfg   *Config
	world *world

	// sendMb / recvMb cache the rank's interned point-to-point mailbox IDs
	// (this rank to peer, peer to this rank), resolved on first use; the
	// zero caches mark the string-keyed reference path. Sized by the peers
	// the rank actually talks to, not by the world (see mboxCache).
	sendMb mboxCache
	recvMb mboxCache

	// pending is the FIFO of outstanding Irecv requests; the queue reuses
	// its backing array, so wait-heavy traces do not grow it per round.
	pending fifo.Queue[*simx.Comm]
	collSeq int64

	// steps is the rank's reusable collective-schedule buffer; its capacity
	// stabilises after the first few collectives, keeping the collective
	// steady state allocation-free like the point-to-point one.
	steps []coll.Step
}

// reserveColl reserves the next `rounds` consecutive collective round
// numbers for one collective and returns the first. Every rank executes the
// same collective sequence with the same deterministic schedule shape (an
// MPI requirement), so all ranks reserve identical spans and meet in the
// same rounds.
func (p *Proc) reserveColl(rounds int) int64 {
	s := p.collSeq
	p.collSeq += int64(rounds)
	return s
}

// world is the replay state shared by every rank of one run. The kernel
// schedules at most one rank at a time, so no locking is needed.
type world struct {
	k               *simx.Kernel
	n               int
	stringMailboxes bool

	// Collective round window. rounds[head:] holds the live rounds in
	// sequence order, rounds[head] being round `base`: every rank executes
	// the same collective sequence, so rounds are created on demand in
	// round order and all ranks meet in the same anonymous mailboxes — the
	// IDs derive from the sequence counter, no name is formatted or hashed.
	// Once every rank has released a round (refs == 0) its mailboxes are
	// drained, so the whole struct — mailbox IDs included — moves to the
	// free list and a later round reuses it without touching the kernel:
	// the collective steady state allocates nothing and the window only
	// grows with the spread between the fastest and slowest rank.
	rounds []*collRound
	head   int
	base   int64
	free   []*collRound
}

// collRound holds the pair mailboxes of one collective round as a small
// open-addressing table keyed by src*n+dst: every schedule sends at most
// once per (round, src, dst), so a round uses at most n directed pairs and
// the table stays O(n) — a dense n-by-n slice would make the 2(n-1)
// simultaneously-live rounds of a ring allReduce cost O(n^3) memory. keys
// holds src*n+dst+1 (0 = empty slot); refs counts the ranks still executing
// the collective the round belongs to.
type collRound struct {
	refs int
	used int // occupied slots, live and stale
	keys []int64
	vals []simx.MailboxID
}

// round returns (creating rounds up to seq on demand) round seq's mailboxes.
func (w *world) round(seq int64) *collRound {
	for idx := int(seq - w.base); idx >= len(w.rounds)-w.head; {
		var r *collRound
		if n := len(w.free); n > 0 {
			r = w.free[n-1]
			w.free[n-1] = nil
			w.free = w.free[:n-1]
		} else {
			// Start small and let grow() right-size by the pairs the round
			// actually sees: dense rounds (a linear star's single round uses
			// ~n pairs) reach O(n) capacity through log n geometric regrows
			// on the first round ever, after which the free list recycles the
			// grown table; sparse rounds (tree and ring schedules move O(1)
			// pairs per rank and round) never pay for 2n slots up front.
			r = &collRound{keys: make([]int64, 64), vals: make([]simx.MailboxID, 64)}
		}
		r.refs = w.n
		w.rounds = append(w.rounds, r)
	}
	return w.rounds[w.head+int(seq-w.base)]
}

// pairMbox resolves the src-to-dst mailbox of a round, creating it on first
// use. Recycled rounds keep their tables: a stale entry from a previous
// occupant of the struct maps the same pair to a mailbox that was drained
// when that round retired, so reusing it is free — the steady state neither
// interns a mailbox nor allocates.
func (w *world) pairMbox(r *collRound, src, dst int) simx.MailboxID {
	key := int64(src)*int64(w.n) + int64(dst) + 1
	mask := len(r.keys) - 1
	// Fibonacci-style multiplicative hash spreads the dense pair keys.
	i := int(uint64(key)*0x9E3779B97F4A7C15>>32) & mask
	for {
		switch r.keys[i] {
		case key:
			return r.vals[i]
		case 0:
			// Keep occupancy (live + stale) at or below half so probe
			// chains stay short; growth is geometric and bounded by the
			// distinct pairs the recycled struct ever sees (<= n^2), so it
			// amortises away.
			if r.used >= (mask+1)/2 {
				r.grow()
				return w.pairMbox(r, src, dst)
			}
			id := w.k.NewMailbox()
			r.keys[i] = key
			r.vals[i] = id
			r.used++
			return id
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table, keeping every entry (stale ones stay reusable).
func (r *collRound) grow() {
	oldKeys, oldVals := r.keys, r.vals
	r.keys = make([]int64, 2*len(oldKeys))
	r.vals = make([]simx.MailboxID, 2*len(oldVals))
	mask := len(r.keys) - 1
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := int(uint64(k)*0x9E3779B97F4A7C15>>32) & mask
		for r.keys[i] != 0 {
			i = (i + 1) & mask
		}
		r.keys[i] = k
		r.vals[i] = oldVals[j]
	}
}

// release marks this rank done with the `rounds` rounds starting at seq.
// Rounds retire in sequence order (a rank finishes collective k before
// k+1), so the window advances from the head; fully-released rounds go to
// the free list with their mailboxes.
func (w *world) release(seq int64, rounds int) {
	for s := seq; s < seq+int64(rounds); s++ {
		w.round(s).refs--
	}
	for w.head < len(w.rounds) && w.rounds[w.head].refs == 0 {
		w.free = append(w.free, w.rounds[w.head])
		w.rounds[w.head] = nil
		w.head++
		w.base++
	}
	// Compact the window once the dead prefix dominates, so a long trace
	// does not accumulate head slots.
	if w.head > 32 && w.head*2 >= len(w.rounds) {
		n := copy(w.rounds, w.rounds[w.head:])
		for i := n; i < len(w.rounds); i++ {
			w.rounds[i] = nil
		}
		w.rounds = w.rounds[:n]
		w.head = 0
	}
}

// Source yields the successive actions of one rank's trace. Implementations
// need not be safe for concurrent use; each rank owns its source.
type Source interface {
	// Next returns the next action, or ok=false at end of trace.
	Next() (a trace.Action, ok bool, err error)
}

// sliceSource iterates an in-memory action list.
type sliceSource struct {
	actions []trace.Action
	idx     int
}

func (s *sliceSource) Next() (trace.Action, bool, error) {
	if s.idx >= len(s.actions) {
		return trace.Action{}, false, nil
	}
	a := s.actions[s.idx]
	s.idx++
	return a, true, nil
}

// SliceSource wraps an action list as a Source.
func SliceSource(actions []trace.Action) Source {
	return &sliceSource{actions: actions}
}

// A mapped binary cursor streams records in place and is a Source as-is.
var _ Source = (*trace.BinaryCursor)(nil)

// scannerSource streams actions from a trace scanner.
type scannerSource struct{ sc *trace.Scanner }

func (s *scannerSource) Next() (trace.Action, bool, error) {
	if s.sc.Scan() {
		return s.sc.Action(), true, nil
	}
	return trace.Action{}, false, s.sc.Err()
}

// ScannerSource wraps a trace scanner as a Source, enabling the replay of
// traces too large to hold in memory.
func ScannerSource(sc *trace.Scanner) Source {
	return &scannerSource{sc: sc}
}

// run owns every piece of mutable state of one replay: the kernel (with its
// activity/comm pools and interning tables), the collective round table, the
// per-rank error slots and the action counter. Nothing in this struct — or
// reachable from it — is shared with any other run, which is what lets a
// sweep execute many runs concurrently over one read-only trace; the inputs
// a caller may share between concurrent runs (Registry, *smpi.Model, Source
// backing arrays, the parsed platform description) are all immutable during
// a run.
type run struct {
	cfg   Config
	world *world
	errs  []error

	// rankActions[slot] counts the actions rank slot completed; failed[slot]
	// records the fail-stop that killed it. Plain slices: the kernel
	// schedules one rank at a time and k.Run establishes the happens-before
	// with the caller — which is also why the run needs no atomic total, the
	// per-slot counters sum up after k.Run returns.
	rankActions []int64
	failed      []*simx.FailedError
}

// actions totals the per-slot action counters; call only after k.Run.
func (r *run) actions() int64 {
	var sum int64
	for _, n := range r.rankActions {
		sum += n
	}
	return sum
}

// Run replays one Source per rank on the platform: the engine of the whole
// framework. The deployment's i-th process entry maps rank i onto its host
// (or onto cfg.Ranks[i] for a partitioned run). The build's kernel is
// consumed by the run.
//
// Run is safe to call concurrently from multiple goroutines as long as each
// call gets its own Build (the kernel is mutated), its own Sources (cursors
// advance) and its own TimedTracer; Config values such as the Registry and
// the Model are only read.
func Run(b *platform.Build, depl *platform.Deployment, cfg Config, sources []Source) (*Result, error) {
	n := len(depl.Processes)
	if n == 0 {
		return nil, fmt.Errorf("replay: empty deployment")
	}
	if len(sources) != n {
		return nil, fmt.Errorf("replay: %d sources for %d deployed processes", len(sources), n)
	}
	cfg.setDefaults()
	worldN := cfg.WorldSize
	if worldN == 0 {
		worldN = n
	}
	if worldN < n {
		return nil, fmt.Errorf("replay: world size %d below %d deployed processes", worldN, n)
	}
	if cfg.Ranks != nil && len(cfg.Ranks) != n {
		return nil, fmt.Errorf("replay: %d rank mappings for %d deployed processes", len(cfg.Ranks), n)
	}
	k := b.Kernel
	k.SetRateModel(cfg.Model.RateModel())
	if cfg.TimedTracer != nil {
		k.SetTracer(cfg.TimedTracer)
	}

	if err := cfg.Ckpt.Validate(); err != nil {
		return nil, err
	}
	if cfg.Faults != nil || cfg.Ckpt != nil {
		// The availability profile's index clauses address the deployment's
		// process slots; folded deployments may name a host several times
		// (killing it once is idempotent).
		hosts := make([]string, n)
		for i, pd := range depl.Processes {
			hosts[i] = pd.Host
		}
		cfg.Faults.InjectDegradations(k)
		if cfg.Ckpt == nil {
			// Abort policy: fail-stops play out in the kernel and kill ranks.
			if err := cfg.Faults.InjectFailStops(k, hosts); err != nil {
				return nil, err
			}
		}
		// Under Ckpt the fail-stop clauses are consumed analytically after
		// the fault-free run (see applyCkpt).
	}

	r := &run{
		cfg:         cfg,
		world:       &world{k: k, n: worldN, stringMailboxes: cfg.StringMailboxes},
		errs:        make([]error, n),
		rankActions: make([]int64, n),
		failed:      make([]*simx.FailedError, n),
	}
	var taken map[int]bool
	if cfg.Ranks != nil {
		taken = make(map[int]bool, n)
	}
	for i, pd := range depl.Processes {
		host := k.Host(pd.Host)
		if host == nil {
			return nil, fmt.Errorf("replay: deployment host %q not in platform", pd.Host)
		}
		rank := i
		if cfg.Ranks != nil {
			rank = cfg.Ranks[i]
			if rank < 0 || rank >= worldN {
				return nil, fmt.Errorf("replay: rank mapping %d outside world of %d", rank, worldN)
			}
			if taken[rank] {
				return nil, fmt.Errorf("replay: rank %d mapped twice", rank)
			}
			taken[rank] = true
		}
		r.spawnRank(k, pd.Function, host, i, rank, sources[i])
	}

	start := time.Now()
	makespan, runErr := k.Run()
	wall := time.Since(start)
	for _, err := range r.errs {
		if err != nil {
			return nil, err
		}
	}
	var lost []RankFailure
	for slot, fe := range r.failed {
		if fe == nil {
			continue
		}
		rank := slot
		if cfg.Ranks != nil {
			rank = cfg.Ranks[slot]
		}
		lost = append(lost, RankFailure{Rank: rank, Host: depl.Processes[slot].Host,
			Actions: r.rankActions[slot], At: fe.Time, Cause: fe.Error()})
	}
	if len(lost) > 0 {
		sort.Slice(lost, func(i, j int) bool { return lost[i].Rank < lost[j].Rank })
		// Survivors blocked on a rendezvous with a dead rank deadlock when
		// the queue drains; that is the expected shape of an aborted run,
		// not a stall.
		if _, deadlock := runErr.(*simx.DeadlockError); runErr != nil && !deadlock {
			return nil, fmt.Errorf("replay: simulation stalled: %w", runErr)
		}
		return nil, &FailedRanksError{Time: makespan, Ranks: lost}
	}
	if runErr != nil {
		return nil, fmt.Errorf("replay: simulation stalled: %w", runErr)
	}
	res := &Result{SimulatedTime: makespan, Actions: r.actions(), WallTime: wall}
	if cfg.Ckpt != nil {
		ra, err := applyCkpt(makespan, cfg.Ckpt, cfg.Faults.Arrivals(n))
		if err != nil {
			return nil, err
		}
		res.Resilience = ra
		res.SimulatedTime = ra.Effective
	}
	return res, nil
}

// spawnRank creates the kernel process replaying one rank's source. slot is
// the deployment index (the run-local error slot), rank the global MPI rank
// the trace names.
func (r *run) spawnRank(k *simx.Kernel, fn string, host *simx.Host, slot, rank int, src Source) {
	// The rank-local caches intern the point-to-point mailbox IDs: the
	// first rendezvous with a peer resolves the name once, every later one
	// addresses the dense ID with no strconv or map hash; only pairs the
	// trace actually uses are interned.
	k.Spawn(fn, host, func(sp *simx.Proc) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if fe := simx.FailureOf(rec); fe != nil {
				// A fail-stop killed the rank (its own host, or a peer's
				// death propagated through a rendezvous): record the loss
				// and die quietly — Run diagnoses it after the simulation.
				r.failed[slot] = fe
				return
			}
			panic(rec)
		}()
		p := &Proc{Sim: sp, Rank: rank, N: r.world.n, cfg: &r.cfg, world: r.world}
		r.initMboxCaches(p)
		for {
			a, ok, err := src.Next()
			if err != nil {
				r.errs[slot] = fmt.Errorf("replay: p%d trace: %w", rank, err)
				return
			}
			if !ok {
				return
			}
			if a.Proc != rank {
				r.errs[slot] = fmt.Errorf("replay: p%d trace contains action of p%d", rank, a.Proc)
				return
			}
			h, err := r.cfg.Registry.Lookup(a.Type)
			if err != nil {
				r.errs[slot] = err
				return
			}
			if err := h(p, a); err != nil {
				r.errs[slot] = err
				return
			}
			r.rankActions[slot]++
		}
	})
}

// RunActions replays in-memory per-rank action lists.
func RunActions(b *platform.Build, depl *platform.Deployment, cfg Config, perRank [][]trace.Action) (*Result, error) {
	sources := make([]Source, len(perRank))
	for i, acts := range perRank {
		sources[i] = SliceSource(acts)
	}
	return Run(b, depl, cfg, sources)
}

// RunFiles replays the per-process trace files named by the deployment's
// process arguments — the configuration of Section 5 where
// MSG_action_trace_run receives no file name and each process entry carries
// its own trace file. Plain-text traces are streamed so traces larger than
// memory (the class D scale of Section 6.5) replay in constant space;
// gzip-compressed and binary traces are decoded up front.
func RunFiles(b *platform.Build, depl *platform.Deployment, cfg Config) (*Result, error) {
	sources := make([]Source, len(depl.Processes))
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for i, pd := range depl.Processes {
		args := pd.Args()
		if len(args) == 0 {
			return nil, fmt.Errorf("replay: process %d (%s) has no trace file argument", i, pd.Function)
		}
		path := args[len(args)-1]
		src, closer, err := openSource(path)
		if err != nil {
			return nil, err
		}
		if closer != nil {
			closers = append(closers, closer)
		}
		sources[i] = src
	}
	return Run(b, depl, cfg, sources)
}

// openSource returns a streaming source for plain-text traces, a mapped
// in-place decoder for binary traces, and an in-memory list for compressed
// ones.
func openSource(path string) (Source, io.Closer, error) {
	if strings.HasSuffix(path, ".gz") {
		actions, err := trace.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		return SliceSource(actions), nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	// Binary traces are detected by magic and memory-mapped: the cursor
	// decodes records straight out of the page cache, so replay startup is
	// I/O-bound only (trace.OpenMapped falls back to an in-memory read on
	// platforms without mmap).
	head := make([]byte, 4)
	if n, _ := f.ReadAt(head, 0); n == 4 && string(head) == "TITB" {
		f.Close()
		m, err := trace.OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		cur, err := m.Cursor()
		if err != nil {
			m.Close()
			return nil, nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		return cur, m, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return ScannerSource(trace.NewScanner(f)), f, nil
}
