package replay

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestSinkRecordsEvents checks the columnar sink's basics: interning,
// dual-endpoint comm rows, Reset keeping the rank table.
func TestSinkRecordsEvents(t *testing.T) {
	s := NewMetricsSink()
	s.Compute("p0", "h0", 1e6, 0, 1)
	s.Comm("p0", "p1", 4096, 1, 1.5)
	if s.Len() != 2 || s.NumRanks() != 2 {
		t.Fatalf("len=%d ranks=%d", s.Len(), s.NumRanks())
	}
	kind, rank, peer, start, end, vol := s.Event(0)
	if kind != EventCompute || rank != 0 || peer != -1 || start != 0 || end != 1 || vol != 1e6 {
		t.Fatalf("compute row: kind=%d rank=%d peer=%d [%g,%g] vol=%g", kind, rank, peer, start, end, vol)
	}
	kind, rank, peer, start, end, vol = s.Event(1)
	if kind != EventComm || rank != 0 || peer != 1 || start != 1 || end != 1.5 || vol != 4096 {
		t.Fatalf("comm row: kind=%d rank=%d peer=%d [%g,%g] vol=%g", kind, rank, peer, start, end, vol)
	}
	if s.RankName(0) != "p0" || s.RankName(1) != "p1" {
		t.Fatalf("rank names: %q %q", s.RankName(0), s.RankName(1))
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Reset left %d events", s.Len())
	}
	if s.NumRanks() != 2 {
		t.Fatalf("Reset dropped the rank table: %d ranks", s.NumRanks())
	}
}

// TestSinkMatchesProfile pins, on real NPB LU and CG traces, that the
// columnar sink's per-rank totals are bit-equal to the (fixed, dually
// attributing) legacy Profile: both accumulate the same event stream in
// the same order, so every float must match exactly, not approximately.
func TestSinkMatchesProfile(t *testing.T) {
	for _, fixture := range []struct {
		name  string
		procs int
	}{{"LU", 8}, {"CG", 8}} {
		t.Run(fixture.name, func(t *testing.T) {
			perRank := npbTraces(t, fixture.name, fixture.procs)
			b, d := paperSetup(t, fixture.procs)
			prof := NewProfile()
			sink := NewMetricsSink()
			if _, err := RunActions(b, d, Config{TimedTracer: Tee{prof, sink}}, perRank); err != nil {
				t.Fatal(err)
			}

			// Accumulate the sink's columns per rank, in event order — the
			// same order the Profile saw its callbacks.
			type tot struct{ compute, send, recv, flops, sent, rcvd float64 }
			tots := make(map[string]*tot)
			get := func(name string) *tot {
				tt := tots[name]
				if tt == nil {
					tt = &tot{}
					tots[name] = tt
				}
				return tt
			}
			for i := 0; i < sink.Len(); i++ {
				kind, rank, peer, start, end, vol := sink.Event(i)
				if kind == EventCompute {
					tt := get(sink.RankName(rank))
					tt.compute += end - start
					tt.flops += vol
				} else {
					src := get(sink.RankName(rank))
					src.send += end - start
					src.sent += vol
					dst := get(sink.RankName(peer))
					dst.recv += end - start
					dst.rcvd += vol
				}
			}

			procs := prof.Processes()
			if len(procs) != fixture.procs || len(tots) != fixture.procs {
				t.Fatalf("rank counts: profile %d, sink %d", len(procs), len(tots))
			}
			for _, pp := range procs {
				tt := tots[pp.Name]
				if tt == nil {
					t.Fatalf("%s: missing from sink", pp.Name)
				}
				if tt.compute != pp.ComputeTime || tt.flops != pp.Flops {
					t.Errorf("%s: compute %v/%v flops %v/%v (sink/profile)",
						pp.Name, tt.compute, pp.ComputeTime, tt.flops, pp.Flops)
				}
				if tt.send != pp.SendTime || tt.sent != pp.SentBytes {
					t.Errorf("%s: send %v/%v bytes %v/%v", pp.Name, tt.send, pp.SendTime, tt.sent, pp.SentBytes)
				}
				if tt.recv != pp.RecvTime || tt.rcvd != pp.RecvBytes {
					t.Errorf("%s: recv %v/%v bytes %v/%v", pp.Name, tt.recv, pp.RecvTime, tt.rcvd, pp.RecvBytes)
				}
			}
		})
	}
}

// TestTimedTraceRoundTrip writes events through the TimedTraceWriter and
// reads them back into a fresh sink: the parsed event stream must carry
// the same processes, kinds and volumes the replay produced.
func TestTimedTraceRoundTrip(t *testing.T) {
	b, d := paperSetup(t, 4)
	direct := NewMetricsSink()
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	if _, err := RunActions(b, d, Config{TimedTracer: Tee{direct, tw}}, perRankActions(t, figure1Trace, 4)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	parsed := NewMetricsSink()
	n, err := ReadTimedTrace(bytes.NewReader(buf.Bytes()), parsed)
	if err != nil {
		t.Fatal(err)
	}
	if n != direct.Len() {
		t.Fatalf("read %d records, replay produced %d", n, direct.Len())
	}
	// The writer orders lines by completion; both sinks saw the same
	// callbacks, so rows must agree one-for-one.
	for i := 0; i < direct.Len(); i++ {
		dk, dr, dp, _, _, dv := direct.Event(i)
		pk, pr, pp, _, _, pv := parsed.Event(i)
		if dk != pk || dv != pv {
			t.Fatalf("row %d: kind/vol %d/%g parsed as %d/%g", i, dk, dv, pk, pv)
		}
		if direct.RankName(dr) != parsed.RankName(pr) {
			t.Fatalf("row %d: rank %q parsed as %q", i, direct.RankName(dr), parsed.RankName(pr))
		}
		if dk == EventComm && direct.RankName(dp) != parsed.RankName(pp) {
			t.Fatalf("row %d: peer %q parsed as %q", i, direct.RankName(dp), parsed.RankName(pp))
		}
	}
}

// TestReadTimedTraceRejectsGarbage checks the parser's line-numbered
// errors on malformed records.
func TestReadTimedTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"1.5 p0",                                // short record
		"x p0 compute 1e6 start=0 host=h",       // bad end time
		"1.5 p0 compute 1e6 start=0",            // missing host
		"1.5 p0 compute 1e6 begin=0 host=h",     // wrong field tag
		"1.5 p0 send p1 1e6",                    // short send
		"1.5 p0 recv p1 1e6 start=0",            // unknown kind
		"1.5 p0 compute NaNx start=0 host=h",    // bad flops
		"1.5 p0 send p1 4096 start=zero",        // bad start
		"1.5 p0 compute 1e6 start=0 host=h x=1", // trailing junk
	} {
		s := NewMetricsSink()
		if _, err := ReadTimedTrace(strings.NewReader(bad+"\n"), s); err == nil {
			t.Errorf("accepted %q", bad)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%q: error lacks line number: %v", bad, err)
		}
	}
	// Blank lines are skipped, not counted.
	s := NewMetricsSink()
	n, err := ReadTimedTrace(strings.NewReader("\n\n1 p0 compute 1e6 start=0 host=h\n\n"), s)
	if err != nil || n != 1 {
		t.Fatalf("blank-line handling: n=%d err=%v", n, err)
	}
}

// failAfterWriter fails every write after the first n bytes have landed —
// a short write, as a full disk produces.
type failAfterWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("no space left on device")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		room := w.n - w.written
		if room < 0 {
			room = 0
		}
		w.written += room
		return room, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

// TestTimedTraceWriterStickyError pins the sticky-error contract: the
// first failed record poisons the writer, later records are dropped
// instead of written after a hole, Lines counts only successful records,
// and Flush reports the first lifetime error even if the final flush
// itself succeeds.
func TestTimedTraceWriterStickyError(t *testing.T) {
	// A tiny bufio buffer would hide the failure until Flush; the writer
	// uses a 64 KiB buffer, so push enough records to overflow it.
	tw := NewTimedTraceWriter(&failAfterWriter{n: 100})
	for i := 0; i < 4096; i++ {
		tw.Compute("p0", "h0", 1e6, float64(i), float64(i)+0.5)
	}
	if err := tw.Err(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Err() = %v, want sticky %v", err, errDiskFull)
	}
	lines := tw.Lines()
	if lines <= 0 || lines >= 4096 {
		t.Fatalf("Lines() = %d, want a partial count", lines)
	}
	// Records after the failure must be dropped, not resumed.
	tw.Comm("p0", "p1", 1, 0, 1)
	if tw.Lines() != lines {
		t.Fatalf("record appended after sticky error: %d -> %d", lines, tw.Lines())
	}
	if err := tw.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Flush() = %v, want the first lifetime error", err)
	}
}

// TestTimedTraceWriterFlushOnlyError covers the complementary case: every
// record fits the bufio buffer, so the failure only happens at Flush — it
// must still be reported, and stick.
func TestTimedTraceWriterFlushOnlyError(t *testing.T) {
	tw := NewTimedTraceWriter(&failAfterWriter{n: 10})
	tw.Compute("p0", "h0", 1e6, 0, 0.5)
	if err := tw.Err(); err != nil {
		t.Fatalf("premature error: %v", err)
	}
	if err := tw.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Flush() = %v, want %v", err, errDiskFull)
	}
	if err := tw.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("second Flush() = %v, want the sticky error", err)
	}
}
