package replay

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"tireplay/internal/platform"
	"tireplay/internal/simx"
	"tireplay/internal/trace"
)

// This file implements shared-prefix forking: a group of replays that agree
// on the platform, the fault stream and an action prefix runs that prefix
// once on a donor kernel, parks every rank at its divergence point, snapshots
// the quiesced kernel (simx.KernelSnapshot) and resumes each member from the
// recorded park times. The time-independence of the traces is what makes the
// result provably identical to a from-scratch run — and a post-hoc safety
// check falls back to from-scratch whenever the proof obligations don't
// hold, so forking is an optimisation, never a semantic change.

// ErrForkUnsafe reports that a forked replay could not be proven equivalent
// to a from-scratch run: a post-divergence activity overlapped a resource
// the prefix was still using, or an exact completion-time tie made the
// merged timed-trace order ambiguous. Callers rerun the member from scratch.
var ErrForkUnsafe = errors.New("replay: forked run not provably equivalent")

// Forkable reports whether a replay configuration may participate in a
// shared-prefix fork group at all. Custom registries are opaque (a handler
// may keep state across the cut), partitioned runs replay on sub-kernels the
// planner does not model, and fail-stops without a checkpoint policy play
// out inside the kernel — killing parked ranks the donor cannot represent.
func (c *Config) Forkable() bool {
	return c.Registry == nil && c.Ranks == nil &&
		!(c.Faults.FailStops() && c.Ckpt == nil)
}

// CollectiveDependent reports whether replaying an action depends on
// Config.Collectives — the first such action on each rank is where replays
// that differ only in their collective algorithm diverge. comm_size is not
// in the family: it validates the world size and touches no kernel state.
func CollectiveDependent(t trace.ActionType) bool {
	switch t {
	case trace.Bcast, trace.Reduce, trace.AllReduce, trace.Barrier,
		trace.Gather, trace.AllGather, trace.AllToAll, trace.Scatter:
		return true
	}
	return false
}

// PrefixPlan describes the longest shareable prefix of a trace set: actions
// [0, Cuts[r]) of rank r replay identically for every member of a fork
// group.
type PrefixPlan struct {
	// Cuts is the per-rank count of shared actions.
	Cuts []int
	// Actions is the total number of shared actions (sum of Cuts).
	Actions int64
	// Full reports that the prefix covers every rank's entire trace — the
	// shape of a group that diverges only in analytic (checkpoint) state.
	Full bool
}

// PlanPrefix streams each rank's trace once and computes the shared prefix
// for an n-rank fork group. With collCut set the prefix stops at each rank's
// first collective-dependent action (members differ in their collective
// algorithm); otherwise it covers the whole trace.
//
// visit must replay rank r's actions in order into yield, stopping early
// when yield returns false — the sweep trace set streams from mmap without
// materialising anything.
//
// ok is false when the prefix is not safely parkable: a send/recv pair
// straddles the cut (the donor would deadlock or fail to quiesce) or a rank
// would park with outstanding Irecv requests its resumed half expects to
// wait on. A false plan simply means the group replays from scratch.
func PlanPrefix(n int, collCut bool, visit func(rank int, yield func(trace.Action) bool) error) (plan *PrefixPlan, ok bool, err error) {
	plan = &PrefixPlan{Cuts: make([]int, n), Full: true}
	// balance[s*n+d] counts prefix sends s->d minus prefix recvs of d from s;
	// every pair must come out zero or the rendezvous state straddles the cut.
	balance := make([]int64, n*n)
	for r := 0; r < n; r++ {
		pending := 0
		parkable := true
		err := visit(r, func(a trace.Action) bool {
			if collCut && CollectiveDependent(a.Type) {
				plan.Full = false
				return false
			}
			switch a.Type {
			case trace.Send, trace.Isend:
				if a.Peer >= 0 && a.Peer < n {
					balance[r*n+a.Peer]++
				}
			case trace.Recv:
				if a.Peer >= 0 && a.Peer < n {
					balance[a.Peer*n+r]--
				}
			case trace.Irecv:
				if a.Peer >= 0 && a.Peer < n {
					balance[a.Peer*n+r]--
				}
				pending++
			case trace.Wait:
				if pending == 0 {
					parkable = false // the replay itself will error here
					return false
				}
				pending--
			case trace.WaitAll:
				pending = 0
			}
			plan.Cuts[r]++
			return true
		})
		if err != nil {
			return nil, false, err
		}
		if !parkable {
			return nil, false, nil
		}
		// A rank cut mid-trace must not park with outstanding Irecvs: the
		// resumed half would wait on requests only the donor ever held. A
		// full-trace cut replays nothing afterwards, so leftovers are fine
		// as long as they were matched (the balance check below).
		if pending != 0 && plan.Cuts[r] < fullLen(visit, r) {
			return nil, false, nil
		}
	}
	for _, d := range balance {
		if d != 0 {
			return nil, false, nil
		}
	}
	for _, c := range plan.Cuts {
		plan.Actions += int64(c)
	}
	return plan, true, nil
}

// fullLen counts rank r's total actions; only consulted on the rare
// park-with-pending path, so the extra streaming pass stays off the common
// planner path.
func fullLen(visit func(rank int, yield func(trace.Action) bool) error, r int) int {
	total := 0
	_ = visit(r, func(trace.Action) bool { total++; return true })
	return total
}

// forkRecord is one completed activity as observed by the fork recorder —
// the same fields the timed-trace tracer callbacks carry.
type forkRecord struct {
	comm       bool
	a, b       string // proc, host for computes; src, dst procs for comms
	vol        float64
	start, end float64
}

// forkRecorder observes a fork-group run. On the donor it accumulates the
// per-resource usage horizon (the last instant the prefix used each host and
// link) and, when the group needs timed output, the records themselves plus
// the set of exact completion instants. On a member it checks each completed
// activity against the donor's horizon on the fly.
type forkRecorder struct {
	k      *simx.Kernel
	hostOf map[string]string // proc name -> host name, from the deployment
	keep   bool              // retain records (timed traces / profiles)
	recs   []forkRecord

	// Donor side.
	lastEnd map[string]float64
	ends    map[float64]struct{} // populated when tieCheck

	// Member side: donor horizons to validate against.
	donorLast map[string]float64
	donorEnds map[float64]struct{}
	unsafe    bool

	scratch []string
}

// resources appends the keys of the resources an activity occupied:
// "h:<host>" for computes, "l:<link>" per crossed link for transfers (the
// host-private loopback when source and destination ranks share a host).
func (t *forkRecorder) resources(comm bool, a, b string, names []string) []string {
	if !comm {
		return append(names, "h:"+b)
	}
	sh, ok1 := t.hostOf[a]
	dh, ok2 := t.hostOf[b]
	if !ok1 || !ok2 {
		// A proc outside the deployment cannot be attributed; refuse the fork.
		t.unsafe = true
		return names
	}
	n := len(names)
	names = t.k.RouteLinks(sh, dh, names)
	for i := n; i < len(names); i++ {
		names[i] = "l:" + names[i]
	}
	return names
}

func (t *forkRecorder) observe(comm bool, a, b string, vol, start, end float64) {
	if t.keep {
		t.recs = append(t.recs, forkRecord{comm, a, b, vol, start, end})
	}
	t.scratch = t.resources(comm, a, b, t.scratch[:0])
	if t.donorLast != nil {
		// Member: every resumed activity must start at or after the donor
		// stopped using each of its resources, or the contention the prefix
		// run saw is not the contention a from-scratch run would see.
		if _, tie := t.donorEnds[end]; tie {
			t.unsafe = true
		}
		for _, res := range t.scratch {
			if start < t.donorLast[res] {
				t.unsafe = true
			}
		}
		return
	}
	for _, res := range t.scratch {
		if end > t.lastEnd[res] {
			t.lastEnd[res] = end
		}
	}
	if t.ends != nil {
		t.ends[end] = struct{}{}
	}
}

func (t *forkRecorder) Compute(proc, host string, flops, start, end float64) {
	t.observe(false, proc, host, flops, start, end)
}

func (t *forkRecorder) Comm(src, dst string, bytes, start, end float64) {
	t.observe(true, src, dst, bytes, start, end)
}

// PrefixOptions parameterises a donor run.
type PrefixOptions struct {
	// Cuts is the per-rank shared-action count from PlanPrefix.
	Cuts []int
	// RecordTrace retains the prefix's per-activity records so members can
	// merge them into byte-identical timed traces and profiles.
	RecordTrace bool
	// TieCheck additionally rejects forked activities completing at an
	// instant the prefix also completed one — the merged trace order would
	// be ambiguous. Only byte-identity of timed output needs it.
	TieCheck bool
}

// PrefixRun is the shared product of replaying a fork group's common prefix
// once: the quiesced donor kernel and its snapshot, the per-rank park times
// and park order, the recorded activities and the per-resource usage
// horizons. It is immutable after RunPrefix returns except for the one-shot
// donor-kernel claim, so any number of members may fork from it concurrently.
type PrefixRun struct {
	build *platform.Build
	depl  *platform.Deployment
	opt   PrefixOptions

	park  []float64
	order []int
	rec   *forkRecorder
	snap  *simx.KernelSnapshot

	// Actions is the number of trace actions the prefix replayed — work
	// every forked member inherits without re-simulating it.
	Actions int64

	claimed atomic.Bool
}

// RunPrefix replays actions [0, opt.Cuts[r]) of every rank on the build's
// kernel, parks the ranks, and captures the quiesced kernel. cfg is the
// group's shared configuration; its Ckpt is ignored (members apply their own
// analytic policies) and its fault spec must not fail-stop (Forkable rules
// such groups out). Any error — including a donor that deadlocks or fails to
// quiesce on a prefix the planner accepted — simply means the group replays
// from scratch.
func RunPrefix(b *platform.Build, depl *platform.Deployment, cfg Config, sources []Source, opt PrefixOptions) (*PrefixRun, error) {
	n := len(depl.Processes)
	if n == 0 {
		return nil, fmt.Errorf("replay: empty deployment")
	}
	if len(sources) != n || len(opt.Cuts) != n {
		return nil, fmt.Errorf("replay: %d sources and %d cuts for %d deployed processes",
			len(sources), len(opt.Cuts), n)
	}
	if !cfg.Forkable() {
		return nil, fmt.Errorf("replay: configuration not forkable")
	}
	cfg.setDefaults()
	worldN := cfg.WorldSize
	if worldN == 0 {
		worldN = n
	}
	if worldN < n {
		return nil, fmt.Errorf("replay: world size %d below %d deployed processes", worldN, n)
	}
	k := b.Kernel
	k.SetRateModel(cfg.Model.RateModel())
	cfg.Faults.InjectDegradations(k)

	rec := &forkRecorder{k: k, hostOf: procHosts(depl), keep: opt.RecordTrace,
		lastEnd: make(map[string]float64)}
	if opt.TieCheck {
		rec.ends = make(map[float64]struct{})
	}
	k.SetTracer(rec)

	pr := &PrefixRun{build: b, depl: depl, opt: opt,
		park: make([]float64, n), rec: rec}
	r := &run{
		cfg:         cfg,
		world:       &world{k: k, n: worldN, stringMailboxes: cfg.StringMailboxes},
		errs:        make([]error, n),
		rankActions: make([]int64, n),
		failed:      make([]*simx.FailedError, n),
	}
	for i, pd := range depl.Processes {
		host := k.Host(pd.Host)
		if host == nil {
			return nil, fmt.Errorf("replay: deployment host %q not in platform", pd.Host)
		}
		r.spawnRankPrefix(k, pd.Function, host, i, sources[i], opt.Cuts[i], pr)
	}
	if _, err := k.Run(); err != nil {
		return nil, fmt.Errorf("replay: prefix run: %w", err)
	}
	for _, err := range r.errs {
		if err != nil {
			return nil, err
		}
	}
	snap, err := k.Snapshot(nil)
	if err != nil {
		return nil, fmt.Errorf("replay: prefix did not quiesce: %w", err)
	}
	pr.snap = snap
	pr.Actions = r.actions()
	return pr, nil
}

// spawnRankPrefix is spawnRank bounded to the first cut actions, recording
// the rank's park time and park order for the resumed members.
func (r *run) spawnRankPrefix(k *simx.Kernel, fn string, host *simx.Host, slot int, src Source, cut int, pr *PrefixRun) {
	k.Spawn(fn, host, func(sp *simx.Proc) {
		p := &Proc{Sim: sp, Rank: slot, N: r.world.n, cfg: &r.cfg, world: r.world}
		r.initMboxCaches(p)
		for i := 0; i < cut; i++ {
			if !r.stepAction(p, src, slot) {
				return
			}
		}
		// Park: record when and in which order this rank reached its
		// divergence point — the resumed members sleep to exactly here, and
		// same-instant resumptions wake in park order, preserving the
		// interleaving of a from-scratch run.
		pr.park[slot] = sp.Now()
		pr.order = append(pr.order, slot) // one rank runs at a time: no race
	})
}

// initMboxCaches enables the per-rank interned mailbox ID caches (left
// disabled on the string-keyed reference path), shared by all spawn
// variants. The caches allocate lazily on first use and are sized by the
// peers the rank talks to, so spawning a rank costs O(1) regardless of
// the world size.
func (r *run) initMboxCaches(p *Proc) {
	if r.cfg.StringMailboxes {
		return
	}
	p.sendMb.init(r.world.n)
	p.recvMb.init(r.world.n)
}

// stepAction fetches and executes one action of rank slot, mirroring the
// spawnRank loop body; false stops the rank (end of trace or recorded error).
func (r *run) stepAction(p *Proc, src Source, slot int) bool {
	a, ok, err := src.Next()
	if err != nil {
		r.errs[slot] = fmt.Errorf("replay: p%d trace: %w", p.Rank, err)
		return false
	}
	if !ok {
		return false
	}
	if a.Proc != p.Rank {
		r.errs[slot] = fmt.Errorf("replay: p%d trace contains action of p%d", p.Rank, a.Proc)
		return false
	}
	h, err := r.cfg.Registry.Lookup(a.Type)
	if err != nil {
		r.errs[slot] = err
		return false
	}
	if err := h(p, a); err != nil {
		r.errs[slot] = err
		return false
	}
	r.rankActions[slot]++
	return true
}

// procHosts maps deployment process names to their hosts.
func procHosts(depl *platform.Deployment) map[string]string {
	m := make(map[string]string, len(depl.Processes))
	for _, pd := range depl.Processes {
		m[pd.Function] = pd.Host
	}
	return m
}

// ClaimDonorBuild hands out the donor's own quiesced kernel, restored to a
// fresh state, exactly once; every other caller gets nil and builds its own
// platform. Members run concurrently and a kernel serves one run at a time,
// so only the first claimant can reuse the donor's pools and route caches.
func (pr *PrefixRun) ClaimDonorBuild() *platform.Build {
	if !pr.claimed.CompareAndSwap(false, true) {
		return nil
	}
	if err := pr.build.Kernel.Restore(pr.snap); err != nil {
		return nil
	}
	return pr.build
}

// RunForked replays one member of the fork group from the shared prefix: it
// skips each rank's first Cuts[r] actions, advances the rank to its recorded
// park time on a fresh (or donor-restored) kernel, and replays the rest. The
// member's own collective algorithm and analytic checkpoint policy apply;
// everything the prefix simulated is inherited from the donor, including its
// timed-trace records, which are merged with the member's own in completion
// order and streamed to cfg.TimedTracer.
//
// An error wrapping ErrForkUnsafe means the equivalence proof failed for
// this member and it must be replayed from scratch; the donor run and its
// snapshot stay valid for other members.
func (pr *PrefixRun) RunForked(b *platform.Build, cfg Config, sources []Source) (*Result, error) {
	n := len(pr.depl.Processes)
	if len(sources) != n {
		return nil, fmt.Errorf("replay: %d sources for %d deployed processes", len(sources), n)
	}
	if !cfg.Forkable() {
		return nil, fmt.Errorf("replay: configuration not forkable")
	}
	cfg.setDefaults()
	if err := cfg.Ckpt.Validate(); err != nil {
		return nil, err
	}
	k := b.Kernel
	k.SetRateModel(cfg.Model.RateModel())
	cfg.Faults.InjectDegradations(k)

	rec := &forkRecorder{k: k, hostOf: procHosts(pr.depl), keep: pr.opt.RecordTrace,
		donorLast: pr.rec.lastEnd, donorEnds: pr.rec.ends}
	k.SetTracer(rec)

	worldN := cfg.WorldSize
	if worldN == 0 {
		worldN = n
	}
	r := &run{
		cfg:         cfg,
		world:       &world{k: k, n: worldN, stringMailboxes: cfg.StringMailboxes},
		errs:        make([]error, n),
		rankActions: make([]int64, n),
		failed:      make([]*simx.FailedError, n),
	}
	// Spawn in donor park order: ranks parked at the same instant resume in
	// the order they parked, so the event queue wakes them exactly as the
	// from-scratch interleaving would.
	for _, slot := range pr.order {
		pd := pr.depl.Processes[slot]
		host := k.Host(pd.Host)
		if host == nil {
			return nil, fmt.Errorf("replay: deployment host %q not in platform", pd.Host)
		}
		r.spawnRankResumed(k, pd.Function, host, slot, sources[slot], pr.opt.Cuts[slot], pr.park[slot])
	}
	start := time.Now()
	makespan, runErr := k.Run()
	wall := time.Since(start)
	for _, err := range r.errs {
		if err != nil {
			return nil, err
		}
	}
	if runErr != nil {
		return nil, fmt.Errorf("replay: simulation stalled: %w", runErr)
	}
	if rec.unsafe {
		return nil, fmt.Errorf("%w: post-divergence activity overlapped the prefix", ErrForkUnsafe)
	}
	if cfg.TimedTracer != nil && pr.opt.RecordTrace {
		replayRecords(cfg.TimedTracer, pr.rec.recs, rec.recs)
	}
	res := &Result{SimulatedTime: makespan, Actions: pr.Actions + r.actions(), WallTime: wall}
	if cfg.Ckpt != nil {
		ra, err := applyCkpt(makespan, cfg.Ckpt, cfg.Faults.Arrivals(n))
		if err != nil {
			return nil, err
		}
		res.Resilience = ra
		res.SimulatedTime = ra.Effective
	}
	return res, nil
}

// spawnRankResumed creates the kernel process replaying rank slot's
// post-divergence actions: skip the prefix on the source, sleep to the park
// time, continue.
func (r *run) spawnRankResumed(k *simx.Kernel, fn string, host *simx.Host, slot int, src Source, cut int, park float64) {
	k.Spawn(fn, host, func(sp *simx.Proc) {
		for i := 0; i < cut; i++ {
			if _, ok, err := src.Next(); err != nil || !ok {
				r.errs[slot] = fmt.Errorf("replay: p%d trace shrank under fork (action %d of %d)", slot, i, cut)
				return
			}
		}
		sp.SleepUntil(park)
		p := &Proc{Sim: sp, Rank: slot, N: r.world.n, cfg: &r.cfg, world: r.world}
		r.initMboxCaches(p)
		for r.stepAction(p, src, slot) {
		}
	})
}

// replayRecords streams the donor's and the member's activity records, each
// already in completion order, into a tracer as one merged completion-ordered
// sequence — reproducing byte-for-byte what a from-scratch run would have
// emitted (exact cross-stream ties were rejected by the safety check).
func replayRecords(tr simx.Tracer, donor, member []forkRecord) {
	emit := func(rec forkRecord) {
		if rec.comm {
			tr.Comm(rec.a, rec.b, rec.vol, rec.start, rec.end)
		} else {
			tr.Compute(rec.a, rec.b, rec.vol, rec.start, rec.end)
		}
	}
	di, mi := 0, 0
	for di < len(donor) || mi < len(member) {
		if mi == len(member) || (di < len(donor) && donor[di].end < member[mi].end) {
			emit(donor[di])
			di++
		} else {
			emit(member[mi])
			mi++
		}
	}
}
