package replay

import (
	"bytes"
	"strings"
	"testing"

	"tireplay/internal/coll"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// collectiveDoc builds a trace where all n ranks run the same collective
// sequence.
func collectiveDoc(n int, lines ...string) string {
	var sb strings.Builder
	for r := 0; r < n; r++ {
		p := "p" + string(rune('0'+r))
		for _, l := range lines {
			sb.WriteString(p + " " + l + "\n")
		}
	}
	return sb.String()
}

// replayCollectives runs the doc under the given collective config and
// returns makespan plus timed trace.
func replayCollectives(t *testing.T, doc string, n int, cc coll.Config, stringMailboxes bool) (float64, []byte) {
	t.Helper()
	b, d := paperSetup(t, n)
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	cfg := Config{Model: smpi.Default(), TimedTracer: tw,
		Collectives: cc, StringMailboxes: stringMailboxes}
	res, err := RunActions(b, d, cfg, perRankActions(t, doc, n))
	if err != nil {
		t.Fatalf("coll=%s stringMailboxes=%v: %v", cc, stringMailboxes, err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return res.SimulatedTime, buf.Bytes()
}

// TestNewCollectiveActionsReplay: the schedule-decomposed gather, allGather,
// allToAll and scatter actions replay to completion with a positive
// makespan, under every algorithm each supports.
func TestNewCollectiveActionsReplay(t *testing.T) {
	const n = 5 // non-power-of-two worlds exercise the tree edge cases
	doc := collectiveDoc(n,
		"comm_size 5",
		"gather 4096",
		"allGather 4096",
		"allToAll 2048",
		"scatter 8192",
		"barrier",
	)
	for _, spec := range []string{"", "linear", "binomial", "ring", "auto"} {
		cc := coll.MustParseSpec(spec)
		simTime, timed := replayCollectives(t, doc, n, cc, false)
		if simTime <= 0 {
			t.Fatalf("coll=%q: non-positive simulated time", spec)
		}
		if len(timed) == 0 {
			t.Fatalf("coll=%q: empty timed trace", spec)
		}
	}
}

// TestCollectiveAlgorithmsMatchStringKeyedPath extends the interning
// equivalence to every algorithm, including the multi-round ones: whatever
// the schedule, the interned round-mailbox fast path and the string-keyed
// reference path must produce byte-identical timed traces.
func TestCollectiveAlgorithmsMatchStringKeyedPath(t *testing.T) {
	const n = 6
	doc := collectiveDoc(n,
		"compute 1e6",
		"bcast 1e5",
		"reduce 1e5 2e5",
		"allReduce 1e5 2e5",
		"gather 4096",
		"allGather 4096",
		"allToAll 2048",
		"scatter 8192",
		"barrier",
		"bcast 2e6",
	)
	for _, spec := range []string{"", "binomial", "allReduce=rdb", "allReduce=ring",
		"barrier=tree", "allGather=ring", "auto"} {
		cc := coll.MustParseSpec(spec)
		timeI, traceI := replayCollectives(t, doc, n, cc, false)
		timeS, traceS := replayCollectives(t, doc, n, cc, true)
		if timeI != timeS {
			t.Fatalf("coll=%q: interned %v != string-keyed %v", spec, timeI, timeS)
		}
		if !bytes.Equal(traceI, traceS) {
			t.Fatalf("coll=%q: timed traces differ between mailbox paths", spec)
		}
	}
}

// TestBinomialBcastBeatsLinearStar: with enough ranks the log-depth tree
// must predict a different (shorter) makespan than the serialised star —
// the what-if signal the whole axis exists for.
func TestBinomialBcastBeatsLinearStar(t *testing.T) {
	const n = 8
	doc := collectiveDoc(n, "comm_size 8", "bcast 1e6")
	linTime, _ := replayCollectives(t, doc, n, coll.Config{}, false)
	binTime, _ := replayCollectives(t, doc, n, coll.MustParseSpec("bcast=binomial"), false)
	if binTime >= linTime {
		t.Fatalf("binomial bcast (%g) not faster than linear star (%g)", binTime, linTime)
	}
}

// TestCollectiveConfigDeterministic: repeated replays under each non-default
// algorithm are bit-identical (the sweep engine's requirement).
func TestCollectiveConfigDeterministic(t *testing.T) {
	const n = 4
	doc := collectiveDoc(n, "allReduce 5e4 1e5", "barrier", "allGather 1024")
	for _, spec := range []string{"binomial", "allReduce=ring", "auto"} {
		cc := coll.MustParseSpec(spec)
		t1, b1 := replayCollectives(t, doc, n, cc, false)
		t2, b2 := replayCollectives(t, doc, n, cc, false)
		if t1 != t2 || !bytes.Equal(b1, b2) {
			t.Fatalf("coll=%q: non-deterministic replay (%g vs %g)", spec, t1, t2)
		}
	}
}

// TestRecycledRoundTableGrowth: pairwise allToAll rounds use a different
// n-pair set per round, so recycled round structs accumulate distinct keys
// until their pair tables grow. After growth the interned path must still
// agree byte-for-byte with the string-keyed reference.
func TestRecycledRoundTableGrowth(t *testing.T) {
	const n = 8
	doc := collectiveDoc(n,
		"allToAll 4096", "allReduce 1e4 0", "allToAll 4096",
		"allReduce 1e4 0", "allToAll 4096", "allGather 2048",
	)
	cc := coll.MustParseSpec("allReduce=ring,allGather=ring")
	timeI, traceI := replayCollectives(t, doc, n, cc, false)
	timeS, traceS := replayCollectives(t, doc, n, cc, true)
	if timeI != timeS || !bytes.Equal(traceI, traceS) {
		t.Fatalf("interned path diverges after round-table growth: %v vs %v", timeI, timeS)
	}
}

// TestReplayWaitAll: waitAll drains the whole pending-request FIFO, however
// many requests are outstanding, and subsequent waits correctly fail.
func TestReplayWaitAll(t *testing.T) {
	const doc = `p0 Irecv p1
p0 Irecv p1
p0 Irecv p1
p0 compute 1e6
p0 waitAll
p1 Isend p0 2e6
p1 Isend p0 4096
p1 Isend p0 3e6
`
	b, d := paperSetup(t, 2)
	res, err := RunActions(b, d, Config{}, perRankActions(t, doc, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("non-positive simulated time")
	}
	if res.Actions != 8 {
		t.Fatalf("actions = %d, want 8", res.Actions)
	}
}

// TestReplayWaitAllWithoutRequestsFails is the handler's error path: a
// traced waitAll with an empty request FIFO is a trace inconsistency and
// must be diagnosed, not silently ignored.
func TestReplayWaitAllWithoutRequestsFails(t *testing.T) {
	b, d := paperSetup(t, 1)
	perRank := [][]trace.Action{{{Proc: 0, Type: trace.WaitAll, Peer: -1}}}
	_, err := RunActions(b, d, Config{}, perRank)
	if err == nil || !strings.Contains(err.Error(), "waitAll") {
		t.Fatalf("err = %v, want waitAll diagnostic", err)
	}
}

// TestReplayWaitAllThenWaitFails: after a waitAll drained the FIFO, a stray
// wait must fail exactly like one with no preceding Irecv.
func TestReplayWaitAllThenWaitFails(t *testing.T) {
	b, d := paperSetup(t, 2)
	perRank := [][]trace.Action{
		{
			{Proc: 0, Type: trace.Irecv, Peer: 1},
			{Proc: 0, Type: trace.WaitAll, Peer: -1},
			{Proc: 0, Type: trace.Wait, Peer: -1},
		},
		{{Proc: 1, Type: trace.Isend, Peer: 0, Volume: 1024}},
	}
	_, err := RunActions(b, d, Config{}, perRank)
	if err == nil || !strings.Contains(err.Error(), "no pending request") {
		t.Fatalf("err = %v, want pending-request diagnostic", err)
	}
}

// TestCollectiveRoundWindowRecycles pins the allocation story of the round
// table: once every rank has passed a collective, its rounds retire to the
// free list and later collectives reuse them — the live window stays at the
// rank skew, it does not grow with the trace.
func TestCollectiveRoundWindowRecycles(t *testing.T) {
	const n, colls = 4, 50
	var sb strings.Builder
	for r := 0; r < n; r++ {
		for i := 0; i < colls; i++ {
			sb.WriteString(trace.Action{Proc: r, Type: trace.AllReduce, Peer: -1,
				Volume: 1e4, Volume2: 1e4}.Format())
			sb.WriteByte('\n')
			sb.WriteString(trace.Action{Proc: r, Type: trace.Bcast, Peer: -1, Volume: 1e4}.Format())
			sb.WriteByte('\n')
		}
	}
	// Run through the public API, then inspect the world the run left
	// behind via a registry hook that captures one Proc.
	var captured *Proc
	reg := Default()
	base, _ := reg.Lookup(trace.Compute)
	reg.Register("compute", func(p *Proc, a trace.Action) error {
		captured = p
		return base(p, a)
	})
	doc := sb.String()
	for r := 0; r < n; r++ {
		doc += trace.Action{Proc: r, Type: trace.Compute, Peer: -1, Volume: 1}.Format() + "\n"
	}
	b, d := paperSetup(t, n)
	if _, err := RunActions(b, d, Config{Registry: reg}, perRankActions(t, doc, n)); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("capture hook never ran")
	}
	w := captured.world
	// 50 allReduces (2 rounds) + 50 bcasts (1 round) = 150 rounds total;
	// after the run every round has been released.
	if w.base != 150 {
		t.Fatalf("window base = %d, want 150 rounds retired", w.base)
	}
	if live := len(w.rounds) - w.head; live != 0 {
		t.Fatalf("%d rounds still live after the run", live)
	}
	// The free list holds the recycled structs; far fewer than the 150
	// rounds the trace consumed, or recycling is not happening.
	if len(w.free) == 0 || len(w.free) >= colls {
		t.Fatalf("free list holds %d round structs (want 1..%d)", len(w.free), colls-1)
	}
}
