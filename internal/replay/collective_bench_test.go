package replay

import (
	"runtime"
	"testing"

	"tireplay/internal/coll"
	"tireplay/internal/platform"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// bcastSource synthesises one broadcast round per iteration on the fly, so
// the benchmark input costs no per-action memory.
type bcastSource struct {
	rank int
	n    int
	vol  float64
	i    int
}

func (s *bcastSource) Next() (trace.Action, bool, error) {
	if s.i >= s.n {
		return trace.Action{}, false, nil
	}
	s.i++
	return trace.Action{Proc: s.rank, Type: trace.Bcast, Peer: -1, Volume: s.vol}, true, nil
}

// BenchmarkCollectiveRound measures one full collective round across 32
// ranks — schedule generation, round reservation, every rendezvous of the
// decomposition, and the round-window recycling — under the linear star and
// the binomial tree. Like the steady-state benchmark it guards the
// allocation-free invariant: round structs and their mailboxes recycle
// through the world's free list, so the reported allocs/op must stay 0 and
// the built-in assertion fails the benchmark outright if a round starts
// allocating.
func BenchmarkCollectiveRound(b *testing.B) {
	const ranks = 32
	for _, alg := range []string{"linear", "binomial"} {
		b.Run("alg="+alg, func(b *testing.B) {
			bld, err := platform.BuildBordereauCustom(ranks, 1, platform.BordereauPower)
			if err != nil {
				b.Fatal(err)
			}
			d, err := platform.RoundRobin(bld.HostNames, ranks, 1)
			if err != nil {
				b.Fatal(err)
			}
			sources := make([]Source, ranks)
			for r := range sources {
				sources[r] = &bcastSource{rank: r, n: b.N, vol: 8192}
			}
			cfg := Config{Model: smpi.Identity(), Collectives: coll.MustParseSpec(alg)}
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			res, err := Run(bld, d, cfg, sources)
			b.StopTimer()
			runtime.ReadMemStats(&after)
			if err != nil {
				b.Fatal(err)
			}
			if res.Actions != int64(ranks*b.N) {
				b.Fatalf("replayed %d actions, want %d", res.Actions, ranks*b.N)
			}
			// Beyond the constant setup (spawn, pools and the round window
			// warming up) a collective round must not allocate. Only
			// meaningful once b.N dwarfs the setup.
			if b.N >= 10000 {
				perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N)
				if perOp >= 1 {
					b.Fatalf("collective round allocates %.3f allocs/op, want amortised 0", perOp)
				}
			}
		})
	}
}
