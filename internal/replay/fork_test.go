package replay

import (
	"bytes"
	"errors"
	"testing"

	"tireplay/internal/coll"
	"tireplay/internal/platform"
	"tireplay/internal/trace"
)

// forkGroupTrace shares a balanced compute+ring prefix (three actions per
// rank) and diverges at the allReduce: members differing only in their
// collective algorithm share everything before it.
const forkGroupTrace = `p0 compute 2e6
p0 send p1 1e5
p0 recv p3
p0 allReduce 1e5 2e6
p0 compute 1e6
p1 recv p0
p1 compute 3e6
p1 send p2 1e5
p1 allReduce 1e5 2e6
p1 compute 5e5
p2 recv p1
p2 compute 1e6
p2 send p3 1e5
p2 allReduce 1e5 2e6
p2 compute 2e6
p3 recv p2
p3 compute 4e6
p3 send p0 1e5
p3 allReduce 1e5 2e6
p3 compute 1e6
`

// visitOf adapts in-memory per-rank actions to PlanPrefix's streaming shape.
func visitOf(perRank [][]trace.Action) func(int, func(trace.Action) bool) error {
	return func(r int, yield func(trace.Action) bool) error {
		for _, a := range perRank[r] {
			if !yield(a) {
				return nil
			}
		}
		return nil
	}
}

func sliceSources(perRank [][]trace.Action) []Source {
	out := make([]Source, len(perRank))
	for i := range perRank {
		out[i] = SliceSource(perRank[i])
	}
	return out
}

func TestPlanPrefixCollectiveCut(t *testing.T) {
	perRank := perRankActions(t, forkGroupTrace, 4)
	plan, ok, err := PlanPrefix(4, true, visitOf(perRank))
	if err != nil || !ok {
		t.Fatalf("PlanPrefix: ok=%v err=%v", ok, err)
	}
	for r, c := range plan.Cuts {
		if c != 3 {
			t.Errorf("cut[%d] = %d, want 3 (first allReduce)", r, c)
		}
	}
	if plan.Actions != 12 || plan.Full {
		t.Fatalf("plan = %+v, want 12 shared actions, not full", plan)
	}
}

func TestPlanPrefixFullWithoutCollCut(t *testing.T) {
	perRank := perRankActions(t, forkGroupTrace, 4)
	plan, ok, err := PlanPrefix(4, false, visitOf(perRank))
	if err != nil || !ok {
		t.Fatalf("PlanPrefix: ok=%v err=%v", ok, err)
	}
	if !plan.Full || plan.Actions != 20 {
		t.Fatalf("plan = %+v, want the full 20-action trace", plan)
	}
	for r, c := range plan.Cuts {
		if c != 5 {
			t.Errorf("cut[%d] = %d, want 5", r, c)
		}
	}
}

func TestPlanPrefixCommSizeNotACut(t *testing.T) {
	// Real tau2ti traces open with comm_size; it touches no kernel state, so
	// it must not zero every cut.
	const doc = "p0 comm_size 2\np0 compute 1e6\np0 barrier\np1 comm_size 2\np1 barrier\n"
	perRank := perRankActions(t, doc, 2)
	plan, ok, err := PlanPrefix(2, true, visitOf(perRank))
	if err != nil || !ok {
		t.Fatalf("PlanPrefix: ok=%v err=%v", ok, err)
	}
	if plan.Cuts[0] != 2 || plan.Cuts[1] != 1 {
		t.Fatalf("cuts = %v, want [2 1]", plan.Cuts)
	}
}

func TestPlanPrefixRejectsStraddlingSend(t *testing.T) {
	// p0 sends inside its prefix but p1 only receives after its collective:
	// the rendezvous would straddle the cut and the donor could not quiesce.
	const doc = `p0 send p1 1e6
p0 bcast 1e6
p1 bcast 1e6
p1 recv p0
`
	perRank := perRankActions(t, doc, 2)
	if _, ok, err := PlanPrefix(2, true, visitOf(perRank)); err != nil || ok {
		t.Fatalf("unbalanced prefix accepted (ok=%v err=%v)", ok, err)
	}
}

func TestPlanPrefixRejectsPendingIrecvAtCut(t *testing.T) {
	// p0 parks with an outstanding Irecv whose wait lies beyond the cut; the
	// resumed member would wait on a request only the donor held.
	const doc = `p0 Irecv p1
p0 bcast 1e6
p0 wait
p1 send p0 1e6
p1 bcast 1e6
`
	perRank := perRankActions(t, doc, 2)
	if _, ok, err := PlanPrefix(2, true, visitOf(perRank)); err != nil || ok {
		t.Fatalf("pending-Irecv prefix accepted (ok=%v err=%v)", ok, err)
	}
}

func TestPlanPrefixRejectsWaitWithoutRequest(t *testing.T) {
	const doc = "p0 wait\n"
	perRank := perRankActions(t, doc, 1)
	if _, ok, err := PlanPrefix(1, true, visitOf(perRank)); err != nil || ok {
		t.Fatalf("wait-on-empty prefix accepted (ok=%v err=%v)", ok, err)
	}
}

func TestForkableExclusions(t *testing.T) {
	fs, err := platform.ParseFaultSpec("host:1@5")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := ParseCkpt("60/5")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"default", Config{}, true},
		{"registry", Config{Registry: NewRegistry()}, false},
		{"partitioned", Config{Ranks: []int{0}}, false},
		{"failstop abort", Config{Faults: fs}, false},
		{"failstop ckpt", Config{Faults: fs, Ckpt: ck}, true},
	}
	for _, tc := range cases {
		if got := tc.cfg.Forkable(); got != tc.want {
			t.Errorf("%s: Forkable() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// runScratch replays the whole trace from scratch with cfg, returning the
// result and the timed trace bytes.
func runScratch(t *testing.T, cfg Config, perRank [][]trace.Action) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	cfg.TimedTracer = tw
	b, d := paperSetup(t, len(perRank))
	res, err := RunActions(b, d, cfg, perRank)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

func TestForkedRunMatchesScratch(t *testing.T) {
	perRank := perRankActions(t, forkGroupTrace, 4)
	// The ring algorithm is deliberately absent: its first round lets early
	// parkers exchange pairwise while the straggler's prefix still owns the
	// backbone, which is exactly the unsafe overlap the recorder refuses (see
	// TestForkedRunRingFallsBackUnsafe). Star and binomial schedules are
	// gated by the last parker, so they fork cleanly.
	members := []coll.Config{
		{},
		coll.MustParseSpec("binomial"),
	}

	plan, ok, err := PlanPrefix(4, true, visitOf(perRank))
	if err != nil || !ok {
		t.Fatalf("PlanPrefix: ok=%v err=%v", ok, err)
	}
	donorB, depl := paperSetup(t, 4)
	pr, err := RunPrefix(donorB, depl, Config{}, sliceSources(perRank),
		PrefixOptions{Cuts: plan.Cuts, RecordTrace: true, TieCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Actions != plan.Actions {
		t.Fatalf("prefix replayed %d actions, planned %d", pr.Actions, plan.Actions)
	}

	for mi, cc := range members {
		want, wantTimed := runScratch(t, Config{Collectives: cc}, perRank)

		var mb *platform.Build
		if claimed := pr.ClaimDonorBuild(); claimed != nil {
			if mi != 0 {
				t.Fatalf("donor kernel claimed twice (member %d)", mi)
			}
			mb = claimed
		} else {
			if mi == 0 {
				t.Fatal("first member could not claim the donor kernel")
			}
			fresh, d2 := paperSetup(t, 4)
			_ = d2
			mb = fresh
		}
		var buf bytes.Buffer
		tw := NewTimedTraceWriter(&buf)
		got, err := pr.RunForked(mb, Config{Collectives: cc, TimedTracer: tw}, sliceSources(perRank))
		if err != nil {
			t.Fatalf("member %d: %v", mi, err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		if got.SimulatedTime != want.SimulatedTime {
			t.Errorf("member %d (coll=%s): forked makespan %.17g != scratch %.17g",
				mi, cc, got.SimulatedTime, want.SimulatedTime)
		}
		if got.Actions != want.Actions {
			t.Errorf("member %d: forked actions %d != scratch %d", mi, got.Actions, want.Actions)
		}
		if !bytes.Equal(buf.Bytes(), wantTimed) {
			t.Errorf("member %d: forked timed trace differs from scratch:\n--- forked ---\n%s--- scratch ---\n%s",
				mi, buf.Bytes(), wantTimed)
		}
	}
}

func TestForkedRunRingFallsBackUnsafe(t *testing.T) {
	// Ranks park at very different instants (the prefix ring serialises), so
	// the ring allReduce's round-0 pairwise exchange between early parkers
	// overlaps the straggler's prefix transfer on the shared backbone — a
	// from-scratch run would have split bandwidth there. The safety check
	// must flag it, and the member replays from scratch instead.
	perRank := perRankActions(t, forkGroupTrace, 4)
	plan, ok, err := PlanPrefix(4, true, visitOf(perRank))
	if err != nil || !ok {
		t.Fatalf("PlanPrefix: ok=%v err=%v", ok, err)
	}
	donorB, depl := paperSetup(t, 4)
	pr, err := RunPrefix(donorB, depl, Config{}, sliceSources(perRank),
		PrefixOptions{Cuts: plan.Cuts, RecordTrace: true, TieCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	cc := coll.MustParseSpec("allReduce=ring")
	mb, _ := paperSetup(t, 4)
	_, err = pr.RunForked(mb, Config{Collectives: cc}, sliceSources(perRank))
	if !errors.Is(err, ErrForkUnsafe) {
		t.Fatalf("overlapping ring fork accepted (err=%v)", err)
	}
	// The fallback is a plain from-scratch replay; just confirm it runs.
	if _, timed := runScratch(t, Config{Collectives: cc}, perRank); len(timed) == 0 {
		t.Fatal("scratch fallback produced no timed trace")
	}
}

func TestForkedRunCkptMembers(t *testing.T) {
	// A group diverging only in its analytic checkpoint policy shares the
	// full trace: each member inherits the whole simulation and applies its
	// own waste algebra.
	perRank := perRankActions(t, figure1Trace, 4)
	plan, ok, err := PlanPrefix(4, false, visitOf(perRank))
	if err != nil || !ok || !plan.Full {
		t.Fatalf("PlanPrefix: ok=%v full=%v err=%v", ok, plan != nil && plan.Full, err)
	}
	donorB, depl := paperSetup(t, 4)
	pr, err := RunPrefix(donorB, depl, Config{}, sliceSources(perRank),
		PrefixOptions{Cuts: plan.Cuts, RecordTrace: true, TieCheck: true})
	if err != nil {
		t.Fatal(err)
	}

	for mi, spec := range []string{"", "60/5", "30/2/4/20"} {
		var ck *Ckpt
		if spec != "" {
			if ck, err = ParseCkpt(spec); err != nil {
				t.Fatal(err)
			}
		}
		want, wantTimed := runScratch(t, Config{Ckpt: ck}, perRank)
		var mb *platform.Build
		if claimed := pr.ClaimDonorBuild(); claimed != nil {
			mb = claimed
		} else {
			mb, _ = paperSetup(t, 4)
		}
		var buf bytes.Buffer
		tw := NewTimedTraceWriter(&buf)
		got, err := pr.RunForked(mb, Config{Ckpt: ck, TimedTracer: tw}, sliceSources(perRank))
		if err != nil {
			t.Fatalf("member %d: %v", mi, err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		if got.SimulatedTime != want.SimulatedTime {
			t.Errorf("member %d (ckpt=%s): forked %.17g != scratch %.17g",
				mi, spec, got.SimulatedTime, want.SimulatedTime)
		}
		if (got.Resilience == nil) != (want.Resilience == nil) {
			t.Errorf("member %d: resilience presence mismatch", mi)
		} else if got.Resilience != nil && *got.Resilience != *want.Resilience {
			t.Errorf("member %d: resilience %+v != %+v", mi, got.Resilience, want.Resilience)
		}
		if !bytes.Equal(buf.Bytes(), wantTimed) {
			t.Errorf("member %d: forked timed trace differs from scratch", mi)
		}
	}
}

func TestForkedRunDegradedPlatformMatchesScratch(t *testing.T) {
	// Degradation windows are re-injected into every member kernel at the
	// same absolute instants, so a forked faulted (non-fail-stop) group must
	// still be bit-equal.
	fs, err := platform.ParseFaultSpec("cpu:0.5@0.0001-0.005,bw:0.25@0.0002-0.01")
	if err != nil {
		t.Fatal(err)
	}
	perRank := perRankActions(t, forkGroupTrace, 4)
	plan, ok, err := PlanPrefix(4, true, visitOf(perRank))
	if err != nil || !ok {
		t.Fatalf("PlanPrefix: ok=%v err=%v", ok, err)
	}
	donorB, depl := paperSetup(t, 4)
	pr, err := RunPrefix(donorB, depl, Config{Faults: fs}, sliceSources(perRank),
		PrefixOptions{Cuts: plan.Cuts, RecordTrace: true, TieCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	for mi, cc := range []coll.Config{{}, coll.MustParseSpec("binomial")} {
		want, wantTimed := runScratch(t, Config{Collectives: cc, Faults: fs}, perRank)
		var mb *platform.Build
		if claimed := pr.ClaimDonorBuild(); claimed != nil {
			mb = claimed
		} else {
			mb, _ = paperSetup(t, 4)
		}
		var buf bytes.Buffer
		tw := NewTimedTraceWriter(&buf)
		got, err := pr.RunForked(mb, Config{Collectives: cc, Faults: fs, TimedTracer: tw}, sliceSources(perRank))
		if err != nil {
			t.Fatalf("member %d: %v", mi, err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		if got.SimulatedTime != want.SimulatedTime || !bytes.Equal(buf.Bytes(), wantTimed) {
			t.Errorf("member %d: degraded fork diverged (%.17g vs %.17g)",
				mi, got.SimulatedTime, want.SimulatedTime)
		}
	}
}

func TestForkedRunUnsafeOverlapDetected(t *testing.T) {
	// Two ranks folded onto one host with deliberately skewed cuts: the
	// member's post-cut compute starts while the donor's prefix was still
	// using the shared host, so a from-scratch run would have seen contention
	// the fork cannot reproduce. The safety check must refuse.
	const doc = `p0 compute 1e4
p0 compute 1e9
p1 compute 1e9
p1 compute 1e4
`
	perRank := perRankActions(t, doc, 2)
	b, err := platform.BuildBordereau(2)
	if err != nil {
		t.Fatal(err)
	}
	depl, err := platform.RoundRobin(b.HostNames, 2, 2) // both ranks on one host
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RunPrefix(b, depl, Config{}, sliceSources(perRank),
		PrefixOptions{Cuts: []int{1, 1}, RecordTrace: true, TieCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	mb := pr.ClaimDonorBuild()
	if mb == nil {
		t.Fatal("donor claim failed")
	}
	_, err = pr.RunForked(mb, Config{}, sliceSources(perRank))
	if !errors.Is(err, ErrForkUnsafe) {
		t.Fatalf("overlapping forked run accepted (err=%v)", err)
	}
}

func TestRunPrefixRejectsUnforkableConfig(t *testing.T) {
	perRank := perRankActions(t, figure1Trace, 4)
	b, d := paperSetup(t, 4)
	_, err := RunPrefix(b, d, Config{Registry: Default()}, sliceSources(perRank),
		PrefixOptions{Cuts: []int{3, 3, 3, 3}})
	if err == nil {
		t.Fatal("custom-registry config accepted as donor")
	}
}
