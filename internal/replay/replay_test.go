package replay

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tireplay/internal/platform"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

const figure1Trace = `p0 compute 1e6
p0 send p1 1e6
p0 recv p3
p1 recv p0
p1 compute 1e6
p1 send p2 1e6
p2 recv p1
p2 compute 1e6
p2 send p3 1e6
p3 recv p2
p3 compute 1e6
p3 send p0 1e6
`

// paperSetup builds the Figure 5 platform and deployment for n processes.
func paperSetup(t *testing.T, n int) (*platform.Build, *platform.Deployment) {
	t.Helper()
	b, err := platform.BuildBordereau(n)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return b, d
}

func perRankActions(t *testing.T, doc string, n int) [][]trace.Action {
	t.Helper()
	actions, err := trace.ParseAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([][]trace.Action, n)
	for _, a := range actions {
		perRank[a.Proc] = append(perRank[a.Proc], a)
	}
	return perRank
}

func TestReplayFigure1AnalyticTime(t *testing.T) {
	b, d := paperSetup(t, 4)
	perRank := perRankActions(t, figure1Trace, 4)
	res, err := RunActions(b, d, Config{Model: smpi.Identity()}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	// Fully serialised ring: 4 * (compute + transfer).
	tc := 1e6 / platform.BordereauPower
	tm := 3*platform.ClusterLatency + 1e6/platform.GigaEthernetBw
	want := 4 * (tc + tm)
	if diff := res.SimulatedTime - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("simulated time = %.9f, want %.9f", res.SimulatedTime, want)
	}
	if res.Actions != 12 {
		t.Fatalf("actions = %d", res.Actions)
	}
	if res.WallTime <= 0 {
		t.Fatal("wall time not measured")
	}
}

func TestReplayDeterministic(t *testing.T) {
	run := func() float64 {
		b, d := paperSetup(t, 4)
		perRank := perRankActions(t, figure1Trace, 4)
		res, err := RunActions(b, d, Config{}, perRank)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimulatedTime
	}
	first := run()
	for i := 0; i < 3; i++ {
		if v := run(); v != first {
			t.Fatalf("non-deterministic replay: %g vs %g", v, first)
		}
	}
}

func TestReplayPiecewiseModelSlowerThanIdentity(t *testing.T) {
	// The default MPI model multiplies latencies and divides bandwidth, so
	// it must predict a longer time than the raw network model.
	run := func(m *smpi.Model) float64 {
		b, d := paperSetup(t, 4)
		res, err := RunActions(b, d, Config{Model: m}, perRankActions(t, figure1Trace, 4))
		if err != nil {
			t.Fatal(err)
		}
		return res.SimulatedTime
	}
	ident := run(smpi.Identity())
	dflt := run(smpi.Default())
	if dflt <= ident {
		t.Fatalf("piecewise model (%g) not slower than identity (%g)", dflt, ident)
	}
}

func TestReplayCollectives(t *testing.T) {
	const doc = `p0 comm_size 4
p0 bcast 1e6
p0 reduce 1e5 2e6
p0 allReduce 1e5 2e6
p0 barrier
p1 comm_size 4
p1 bcast 1e6
p1 reduce 1e5 2e6
p1 allReduce 1e5 2e6
p1 barrier
p2 comm_size 4
p2 bcast 1e6
p2 reduce 1e5 2e6
p2 allReduce 1e5 2e6
p2 barrier
p3 comm_size 4
p3 bcast 1e6
p3 reduce 1e5 2e6
p3 allReduce 1e5 2e6
p3 barrier
`
	b, d := paperSetup(t, 4)
	res, err := RunActions(b, d, Config{}, perRankActions(t, doc, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("non-positive simulated time")
	}
	if res.Actions != 20 {
		t.Fatalf("actions = %d", res.Actions)
	}
}

func TestReplayIrecvWait(t *testing.T) {
	const doc = `p0 Irecv p1
p0 compute 1e7
p0 wait
p1 compute 1e5
p1 send p0 2e6
`
	b, d := paperSetup(t, 2)
	res, err := RunActions(b, d, Config{}, perRankActions(t, doc, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("non-positive simulated time")
	}
}

func TestReplayWaitWithoutIrecvFails(t *testing.T) {
	b, d := paperSetup(t, 1)
	perRank := [][]trace.Action{{{Proc: 0, Type: trace.Wait, Peer: -1}}}
	if _, err := RunActions(b, d, Config{}, perRank); err == nil {
		t.Fatal("expected error for wait without pending request")
	}
}

func TestReplayCommSizeMismatchFails(t *testing.T) {
	b, d := paperSetup(t, 2)
	perRank := [][]trace.Action{
		{{Proc: 0, Type: trace.CommSize, Peer: -1, Volume: 8}},
		{},
	}
	if _, err := RunActions(b, d, Config{}, perRank); err == nil {
		t.Fatal("expected comm_size mismatch error")
	}
}

func TestReplayForeignRankActionFails(t *testing.T) {
	b, d := paperSetup(t, 2)
	perRank := [][]trace.Action{
		{{Proc: 1, Type: trace.Barrier, Peer: -1}},
		{},
	}
	if _, err := RunActions(b, d, Config{}, perRank); err == nil {
		t.Fatal("expected foreign-rank error")
	}
}

func TestReplayEagerAvoidsHeadToHeadDeadlock(t *testing.T) {
	// Two ranks both send first: with eager (buffered) small sends this
	// completes; with fully synchronous sends it deadlocks.
	const doc = `p0 send p1 1024
p0 recv p1
p1 send p0 1024
p1 recv p0
`
	b, d := paperSetup(t, 2)
	if _, err := RunActions(b, d, Config{}, perRankActions(t, doc, 2)); err != nil {
		t.Fatalf("eager replay failed: %v", err)
	}

	b2, d2 := paperSetup(t, 2)
	_, err := RunActions(b2, d2, Config{EagerThreshold: -1}, perRankActions(t, doc, 2))
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("synchronous head-to-head should deadlock, got %v", err)
	}
}

func TestReplayTimedTraceOutput(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	b, d := paperSetup(t, 4)
	res, err := RunActions(b, d, Config{TimedTracer: tw}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	// 4 computes + 4 sends = 8 activity completions.
	if tw.Lines() != 8 {
		t.Fatalf("timed trace lines = %d, want 8", tw.Lines())
	}
	if !strings.Contains(buf.String(), "compute 1e+06") {
		t.Fatalf("timed trace content:\n%s", buf.String())
	}
	_ = res
}

func TestReplayStreamingMatchesInMemory(t *testing.T) {
	b1, d1 := paperSetup(t, 4)
	inMem, err := RunActions(b1, d1, Config{}, perRankActions(t, figure1Trace, 4))
	if err != nil {
		t.Fatal(err)
	}

	perRankText := make([]string, 4)
	for _, line := range strings.Split(strings.TrimSpace(figure1Trace), "\n") {
		r := int(line[1] - '0')
		perRankText[r] += line + "\n"
	}
	sources := make([]Source, 4)
	for i, doc := range perRankText {
		sources[i] = ScannerSource(trace.NewScanner(strings.NewReader(doc)))
	}
	b2, d2 := paperSetup(t, 4)
	streamed, err := Run(b2, d2, Config{}, sources)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.SimulatedTime != inMem.SimulatedTime {
		t.Fatalf("streamed %g != in-memory %g", streamed.SimulatedTime, inMem.SimulatedTime)
	}
}

func TestReplayFilesFromDeploymentArgs(t *testing.T) {
	dir := t.TempDir()
	actions, err := trace.ParseAll(strings.NewReader(figure1Trace))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := trace.WriteSplit(dir, 4, actions)
	if err != nil {
		t.Fatal(err)
	}
	b, d := paperSetup(t, 4)
	d2, err := d.WithTraceArgs(paths)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFiles(b, d2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Actions != 12 {
		t.Fatalf("actions = %d", res.Actions)
	}
}

func TestReplayFilesMissingArg(t *testing.T) {
	b, d := paperSetup(t, 2)
	if _, err := RunFiles(b, d, Config{}); err == nil {
		t.Fatal("expected missing-argument error")
	}
}

func TestReplayFilesMixedEncodings(t *testing.T) {
	// Per-process files in three encodings replay identically: text
	// (streamed), gzip and binary (loaded).
	dir := t.TempDir()
	actions, err := trace.ParseAll(strings.NewReader(figure1Trace))
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([][]trace.Action, 4)
	for _, a := range actions {
		perRank[a.Proc] = append(perRank[a.Proc], a)
	}
	paths := make([]string, 4)
	// Rank 0: text; rank 1: gzip; ranks 2-3: binary.
	paths[0] = filepath.Join(dir, "p0.trace")
	if err := trace.WriteFile(paths[0], perRank[0]); err != nil {
		t.Fatal(err)
	}
	paths[1] = filepath.Join(dir, "p1.trace.gz")
	if err := trace.WriteFile(paths[1], perRank[1]); err != nil {
		t.Fatal(err)
	}
	for r := 2; r < 4; r++ {
		paths[r] = filepath.Join(dir, fmt.Sprintf("p%d.tib", r))
		f, err := os.Create(paths[r])
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.EncodeBinary(f, perRank[r]); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	b, d := paperSetup(t, 4)
	d2, err := d.WithTraceArgs(paths)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFiles(b, d2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b2, d3 := paperSetup(t, 4)
	ref, err := RunActions(b2, d3, Config{}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime != ref.SimulatedTime || res.Actions != 12 {
		t.Fatalf("mixed encodings: %g (%d actions) vs reference %g",
			res.SimulatedTime, res.Actions, ref.SimulatedTime)
	}
}

func TestCustomRegistryOverride(t *testing.T) {
	// Ablation hook: replace bcast with a monolithic analytic model (a
	// simple compute standing in for the whole collective).
	reg := Default()
	reg.Register("bcast", func(p *Proc, a trace.Action) error {
		p.Sim.Execute(a.Volume) // pretend the bcast costs volume flops
		return nil
	})
	const doc = "p0 bcast 1e6\np1 bcast 1e6\n"
	b, d := paperSetup(t, 2)
	res, err := RunActions(b, d, Config{Registry: reg}, perRankActions(t, doc, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := 1e6 / platform.BordereauPower
	if diff := res.SimulatedTime - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("override time = %g, want %g", res.SimulatedTime, want)
	}
}

func TestRegistryLookupUnknown(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Lookup(trace.Compute); err == nil {
		t.Fatal("expected lookup failure")
	}
	r.Register("compute", handleCompute)
	if _, err := r.Lookup(trace.Compute); err != nil {
		t.Fatal(err)
	}
	if kw := r.Keywords(); len(kw) != 1 || kw[0] != "compute" {
		t.Fatalf("keywords = %v", kw)
	}
}

func TestDefaultRegistryCoversAllActionTypes(t *testing.T) {
	r := Default()
	for _, typ := range []trace.ActionType{
		trace.Compute, trace.Send, trace.Isend, trace.Recv, trace.Irecv,
		trace.Bcast, trace.Reduce, trace.AllReduce, trace.Barrier,
		trace.CommSize, trace.Wait, trace.WaitAll, trace.Gather,
		trace.AllGather, trace.AllToAll, trace.Scatter,
	} {
		if _, err := r.Lookup(typ); err != nil {
			t.Errorf("no handler for %v: %v", typ, err)
		}
	}
}
