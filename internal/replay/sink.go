package replay

// MetricsSink is the columnar, append-only timed-event sink the
// time-resolved metrics engine (internal/metrics) analyses. Where the
// string-keyed Profile aggregates on the fly under a mutex, the sink just
// records: one struct-of-arrays row per completed activity — kind, rank,
// peer, start, end, volume — with process names interned to dense rank IDs
// at first sight. Appends are allocation-free once the columns have grown
// to the trace's event count and every name has been interned (the same
// steady-state discipline as ParseLineBytes; BenchmarkMetricsSink gates it
// at 0 allocs/op), and Reset keeps both the capacity and the rank table so
// a sweep can reuse one sink per worker across scenarios.
//
// Attribution is dual at the source: a comm event names both endpoints, so
// downstream analysis charges the transfer to the sender and the receiver
// alike — the corrected accounting Profile.Comm now shares
// (TestSinkMatchesProfile pins the two equal).
//
// The kernel schedules one process at a time, so the sink needs no lock;
// install it as (part of) the replay's TimedTracer.
type MetricsSink struct {
	kinds  []EventKind
	ranks  []int32 // executing rank (compute) or sender (comm)
	peers  []int32 // receiver rank for comm, -1 for compute
	starts []float64
	ends   []float64
	vols   []float64 // flops for compute, bytes for comm

	ids   map[string]int32 // process name -> dense rank ID
	names []string         // dense rank ID -> process name
}

// EventKind distinguishes the sink's event rows.
type EventKind uint8

const (
	// EventCompute is a completed compute burst.
	EventCompute EventKind = iota
	// EventComm is a completed point-to-point transfer.
	EventComm
)

// NewMetricsSink returns an empty sink.
func NewMetricsSink() *MetricsSink {
	return &MetricsSink{ids: make(map[string]int32)}
}

// RankID interns a process name, returning its dense rank ID. Pre-intern
// the deployment's process names to give ranks without any event a row in
// the analysis.
func (s *MetricsSink) RankID(name string) int32 {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := int32(len(s.names))
	s.ids[name] = id
	s.names = append(s.names, name)
	return id
}

// Compute implements simx.Tracer.
func (s *MetricsSink) Compute(proc, host string, flops, start, end float64) {
	s.append(EventCompute, s.RankID(proc), -1, start, end, flops)
}

// Comm implements simx.Tracer.
func (s *MetricsSink) Comm(src, dst string, bytes, start, end float64) {
	s.append(EventComm, s.RankID(src), s.RankID(dst), start, end, bytes)
}

func (s *MetricsSink) append(kind EventKind, rank, peer int32, start, end, vol float64) {
	s.kinds = append(s.kinds, kind)
	s.ranks = append(s.ranks, rank)
	s.peers = append(s.peers, peer)
	s.starts = append(s.starts, start)
	s.ends = append(s.ends, end)
	s.vols = append(s.vols, vol)
}

// Len is the number of recorded events.
func (s *MetricsSink) Len() int { return len(s.kinds) }

// NumRanks is the number of interned process names.
func (s *MetricsSink) NumRanks() int { return len(s.names) }

// RankName resolves a dense rank ID back to its process name.
func (s *MetricsSink) RankName(id int32) string { return s.names[id] }

// Event returns row i of the columns.
func (s *MetricsSink) Event(i int) (kind EventKind, rank, peer int32, start, end, vol float64) {
	return s.kinds[i], s.ranks[i], s.peers[i], s.starts[i], s.ends[i], s.vols[i]
}

// Reset empties the event columns, keeping their capacity and the interned
// rank table, so the next replay into this sink allocates nothing.
func (s *MetricsSink) Reset() {
	s.kinds = s.kinds[:0]
	s.ranks = s.ranks[:0]
	s.peers = s.peers[:0]
	s.starts = s.starts[:0]
	s.ends = s.ends[:0]
	s.vols = s.vols[:0]
}
