package replay

import (
	"runtime"
	"testing"

	"tireplay/internal/platform"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// pingPongSource synthesises a rendezvous ping stream on the fly, so the
// benchmark input costs no per-action memory: rank 0 sends n messages to
// rank 1, which receives them.
type pingPongSource struct {
	rank int
	n    int
	vol  float64
	i    int
}

func (s *pingPongSource) Next() (trace.Action, bool, error) {
	if s.i >= s.n {
		return trace.Action{}, false, nil
	}
	s.i++
	if s.rank == 0 {
		return trace.Action{Proc: 0, Type: trace.Send, Peer: 1, Volume: s.vol}, true, nil
	}
	return trace.Action{Proc: 1, Type: trace.Recv, Peer: 0}, true, nil
}

// BenchmarkReplaySteadyState measures the post/match/complete cycle of the
// replay engine end to end — trace action in, handler dispatch, interned
// mailbox rendezvous, latency + transfer events, completion — and guards
// the allocation-free steady state: the reported allocs/op must stay 0
// (pool growth and spawn costs amortise away), and the built-in assertion
// fails the benchmark outright if the cycle starts allocating.
func BenchmarkReplaySteadyState(b *testing.B) {
	bld, err := platform.BuildBordereauCustom(2, 1, platform.BordereauPower)
	if err != nil {
		b.Fatal(err)
	}
	d, err := platform.RoundRobin(bld.HostNames, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	// 128 KiB rides above the default eager threshold: every send is a
	// synchronous rendezvous, the worst case for the matching path.
	sources := []Source{
		&pingPongSource{rank: 0, n: b.N, vol: 128 * 1024},
		&pingPongSource{rank: 1, n: b.N, vol: 128 * 1024},
	}
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	res, err := Run(bld, d, Config{Model: smpi.Identity()}, sources)
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if err != nil {
		b.Fatal(err)
	}
	if res.Actions != int64(2*b.N) {
		b.Fatalf("replayed %d actions, want %d", res.Actions, 2*b.N)
	}
	// Allocation guard: beyond the constant setup (spawn, pools warming,
	// run bookkeeping) the cycle must not allocate. Only meaningful once
	// b.N dwarfs the setup.
	if b.N >= 10000 {
		perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N)
		if perOp >= 1 {
			b.Fatalf("steady-state replay allocates %.3f allocs/op, want amortised 0", perOp)
		}
	}
}
