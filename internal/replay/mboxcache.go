package replay

import "tireplay/internal/simx"

// denseMboxWorld is the world size up to which a rank's mailbox cache is a
// plain peer-indexed slice. Above it the cache switches to open addressing
// sized by the peers the rank actually talks to: a 16k-rank stencil trace
// touches a handful of neighbours, so per-rank setup must cost O(peers),
// not O(world) — two dense 16k tables per rank are 128 KiB each, an O(n^2)
// total that used to dominate large-world replay memory.
const denseMboxWorld = 256

// mboxCache caches one rank's interned point-to-point mailbox IDs by peer
// rank. The zero value is a disabled cache (the string-keyed reference
// path); enable with init. Tables are allocated lazily on the first miss,
// so ranks that never exchange point-to-point messages pay nothing.
type mboxCache struct {
	n     int              // world size; 0 = disabled
	dense []simx.MailboxID // peer-indexed, -1 empty (n <= denseMboxWorld)
	keys  []int32          // open addressing: peer+1, 0 = empty slot
	vals  []simx.MailboxID
	used  int
}

func (c *mboxCache) init(n int)     { c.n = n }
func (c *mboxCache) disabled() bool { return c.n == 0 }

// get returns the cached ID for peer, if interned already.
func (c *mboxCache) get(peer int) (simx.MailboxID, bool) {
	if c.dense != nil {
		if id := c.dense[peer]; id >= 0 {
			return id, true
		}
		return 0, false
	}
	if c.keys == nil {
		return 0, false
	}
	key := int32(peer) + 1
	mask := len(c.keys) - 1
	i := int(uint64(key)*0x9E3779B97F4A7C15>>32) & mask
	for {
		switch c.keys[i] {
		case key:
			return c.vals[i], true
		case 0:
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// put caches the ID for peer. peer must not be present yet.
func (c *mboxCache) put(peer int, id simx.MailboxID) {
	if c.n <= denseMboxWorld {
		if c.dense == nil {
			c.dense = make([]simx.MailboxID, c.n)
			for i := range c.dense {
				c.dense[i] = -1
			}
		}
		c.dense[peer] = id
		return
	}
	if c.used*2 >= len(c.keys) {
		c.grow()
	}
	key := int32(peer) + 1
	mask := len(c.keys) - 1
	i := int(uint64(key)*0x9E3779B97F4A7C15>>32) & mask
	for c.keys[i] != 0 {
		i = (i + 1) & mask
	}
	c.keys[i] = key
	c.vals[i] = id
	c.used++
}

// grow doubles (or seeds) the open-addressing table, keeping occupancy at
// or below half so probe chains stay short.
func (c *mboxCache) grow() {
	newCap := 16
	if len(c.keys) > 0 {
		newCap = 2 * len(c.keys)
	}
	oldKeys, oldVals := c.keys, c.vals
	c.keys = make([]int32, newCap)
	c.vals = make([]simx.MailboxID, newCap)
	mask := newCap - 1
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := int(uint64(k)*0x9E3779B97F4A7C15>>32) & mask
		for c.keys[i] != 0 {
			i = (i + 1) & mask
		}
		c.keys[i] = k
		c.vals[i] = oldVals[j]
	}
}
