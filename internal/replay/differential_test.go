package replay

import (
	"bytes"
	"fmt"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// This file freezes the pre-refactor collective handlers — the hard-coded
// star through rank 0 that internal/coll's Linear schedules now generate —
// and pins, on real NPB traces, that the refactored default path is
// byte-identical to them: same timed trace, bit-equal makespan, on both the
// interned and the string-keyed mailbox paths. Any drift in the schedule
// executor, the round reservation or the mailbox recycling shows up here as
// a diff against the historical semantics.

// legacyBcast is the pre-refactor handleBcast: rank 0 sends to every peer
// in rank order, one collective sequence number per collective.
func legacyBcast(p *Proc, a trace.Action) error {
	seq := p.reserveColl(1)
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.SendID(p.collMbox(seq, 0, i), a.Volume, nil)
		}
		return nil
	}
	p.Sim.RecvID(p.collMbox(seq, 0, p.Rank))
	return nil
}

// legacyReduce is the pre-refactor handleReduce.
func legacyReduce(p *Proc, a trace.Action) error {
	seq := p.reserveColl(1)
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.RecvID(p.collMbox(seq, i, 0))
		}
	} else {
		p.Sim.SendID(p.collMbox(seq, p.Rank, 0), a.Volume, nil)
	}
	if a.Volume2 > 0 {
		p.Sim.Execute(a.Volume2)
	}
	return nil
}

// legacyAllReduce is the pre-refactor handleAllReduce: both star directions
// shared one sequence number (the refactored linear schedule spends two).
func legacyAllReduce(p *Proc, a trace.Action) error {
	seq := p.reserveColl(1)
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.RecvID(p.collMbox(seq, i, 0))
		}
		for i := 1; i < p.N; i++ {
			p.Sim.SendID(p.collMbox(seq, 0, i), a.Volume, nil)
		}
	} else {
		p.Sim.SendID(p.collMbox(seq, p.Rank, 0), a.Volume, nil)
		p.Sim.RecvID(p.collMbox(seq, 0, p.Rank))
	}
	if a.Volume2 > 0 {
		p.Sim.Execute(a.Volume2)
	}
	return nil
}

// legacyBarrier is the pre-refactor handleBarrier.
func legacyBarrier(p *Proc, a trace.Action) error {
	seq := p.reserveColl(1)
	const token = 1
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.RecvID(p.collMbox(seq, i, 0))
		}
		for i := 1; i < p.N; i++ {
			p.Sim.SendID(p.collMbox(seq, 0, i), token, nil)
		}
	} else {
		p.Sim.SendID(p.collMbox(seq, p.Rank, 0), token, nil)
		p.Sim.RecvID(p.collMbox(seq, 0, p.Rank))
	}
	return nil
}

// legacyRegistry binds the frozen collective handlers over the defaults.
func legacyRegistry() *Registry {
	r := Default()
	r.Register("bcast", legacyBcast)
	r.Register("reduce", legacyReduce)
	r.Register("allReduce", legacyAllReduce)
	r.Register("barrier", legacyBarrier)
	return r
}

// npbTraces records one NPB program's per-rank action lists.
func npbTraces(t *testing.T, name string, procs int) [][]trace.Action {
	t.Helper()
	var prog mpi.Program
	var err error
	switch name {
	case "LU":
		prog, err = npb.LU(npb.LUConfig{Class: npb.ClassS, Procs: procs})
	case "CG":
		prog, err = npb.CG(npb.CGConfig{ClassName: "S", Procs: procs})
	default:
		t.Fatalf("unknown fixture %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([][]trace.Action, procs)
	for r := 0; r < procs; r++ {
		if perRank[r], err = mpi.Record(r, procs, prog); err != nil {
			t.Fatal(err)
		}
	}
	return perRank
}

// timedReplayRegistry replays the per-rank actions under the given registry
// and mailbox path, returning makespan and timed trace.
func timedReplayRegistry(t *testing.T, perRank [][]trace.Action, reg *Registry, stringMailboxes bool) (float64, []byte) {
	t.Helper()
	b, d := paperSetup(t, len(perRank))
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	cfg := Config{Model: smpi.Default(), Registry: reg, TimedTracer: tw,
		StringMailboxes: stringMailboxes}
	res, err := RunActions(b, d, cfg, perRank)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return res.SimulatedTime, buf.Bytes()
}

// TestDefaultCollectivesMatchLegacyHandlers is the differential back-compat
// gate: on the NPB LU and CG fixtures, the refactored default (linear)
// collective path must produce byte-identical timed traces and bit-equal
// makespans to the frozen pre-refactor handlers, on both mailbox paths.
func TestDefaultCollectivesMatchLegacyHandlers(t *testing.T) {
	const procs = 8
	for _, fixture := range []string{"LU", "CG"} {
		perRank := npbTraces(t, fixture, procs)
		for _, stringMailboxes := range []bool{false, true} {
			name := fmt.Sprintf("%s/stringMailboxes=%v", fixture, stringMailboxes)
			legacyTime, legacyTrace := timedReplayRegistry(t, perRank, legacyRegistry(), stringMailboxes)
			newTime, newTrace := timedReplayRegistry(t, perRank, Default(), stringMailboxes)
			if newTime != legacyTime {
				t.Fatalf("%s: makespan %v != legacy %v", name, newTime, legacyTime)
			}
			if !bytes.Equal(newTrace, legacyTrace) {
				t.Fatalf("%s: timed traces differ (%d vs %d bytes)",
					name, len(newTrace), len(legacyTrace))
			}
			if len(newTrace) == 0 {
				t.Fatalf("%s: empty timed trace — tracer not wired", name)
			}
		}
	}
}

// TestLegacyEquivalenceOnStressTrace extends the differential check to the
// interning stress trace, which mixes every collective flavour with
// point-to-point traffic and request queues.
func TestLegacyEquivalenceOnStressTrace(t *testing.T) {
	perRank := perRankActions(t, internStressTrace, 4)
	for _, stringMailboxes := range []bool{false, true} {
		legacyTime, legacyTrace := timedReplayRegistry(t, perRank, legacyRegistry(), stringMailboxes)
		newTime, newTrace := timedReplayRegistry(t, perRank, Default(), stringMailboxes)
		if newTime != legacyTime || !bytes.Equal(newTrace, legacyTrace) {
			t.Fatalf("stringMailboxes=%v: new path diverges from legacy handlers "+
				"(makespan %v vs %v, traces %d vs %d bytes)",
				stringMailboxes, newTime, legacyTime, len(newTrace), len(legacyTrace))
		}
	}
}
