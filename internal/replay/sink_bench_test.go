package replay

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkMetricsSink measures the steady-state append path of the
// columnar timed-event sink: one op records a batch of compute and comm
// events across a fixed rank set, then Resets the sink. Capacity and the
// interned rank table survive Reset, so after the first op the path is
// pure column writes — the reported allocs/op must stay 0, and the
// built-in guard fails the benchmark outright if appends start allocating
// (BENCH_baseline.json pins the 0 in CI).
func BenchmarkMetricsSink(b *testing.B) {
	const ranks = 32
	const eventsPerRank = 8
	names := make([]string, ranks)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	s := NewMetricsSink()
	warm := func() {
		for r := 0; r < ranks; r++ {
			t := float64(r)
			for e := 0; e < eventsPerRank; e++ {
				s.Compute(names[r], "host", 1e6, t, t+0.5)
				s.Comm(names[r], names[(r+1)%ranks], 4096, t+0.5, t+1)
				t++
			}
		}
	}
	// Warm capacity and the rank table so the timed loop measures the
	// steady state, not first-growth.
	warm()
	s.Reset()

	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm()
		s.Reset()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if b.N >= 100 {
		perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N)
		if perOp >= 1 {
			b.Fatalf("steady-state sink append allocates %.3f allocs/op, want 0", perOp)
		}
	}
}
