package replay

import (
	"sync"
	"testing"

	"tireplay/internal/platform"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// pairTraces builds a 4-rank trace set split into two independent pairs
// (0,1) and (2,3); the first pair computes twice as long, so it decides the
// makespan.
func pairTraces() [][]trace.Action {
	mk := func(r, peer int, flops float64) []trace.Action {
		return []trace.Action{
			{Proc: r, Type: trace.CommSize, Volume: 4, Peer: -1},
			{Proc: r, Type: trace.Compute, Volume: flops, Peer: -1},
			{Proc: r, Type: trace.Send, Peer: peer, Volume: 1e4},
			{Proc: r, Type: trace.Irecv, Peer: peer},
			{Proc: r, Type: trace.Wait, Peer: -1},
		}
	}
	return [][]trace.Action{
		mk(0, 1, 2e8), mk(1, 0, 2e8), mk(2, 3, 1e8), mk(3, 2, 1e8),
	}
}

func buildFour(t *testing.T) (*platform.Build, *platform.Deployment) {
	t.Helper()
	b, err := platform.BuildBordereauWithCores(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return b, d
}

// TestConcurrentRunsIndependent pins the concurrency contract documented on
// Run: many runs over one shared read-only action set, each with its own
// Build, agree exactly with a reference serial run. The CI race job replays
// this under -race.
func TestConcurrentRunsIndependent(t *testing.T) {
	perRank := pairTraces()
	b, d := buildFour(t)
	ref, err := RunActions(b, d, Config{Model: smpi.Default()}, perRank)
	if err != nil {
		t.Fatal(err)
	}

	const runs = 8
	times := make([]float64, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := platform.BuildBordereauWithCores(4, 1)
			if err != nil {
				errs[i] = err
				return
			}
			d, err := platform.RoundRobin(b.HostNames, 4, 1)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := RunActions(b, d, Config{Model: smpi.Default()}, perRank)
			if err != nil {
				errs[i] = err
				return
			}
			times[i] = res.SimulatedTime
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if times[i] != ref.SimulatedTime {
			t.Fatalf("run %d: %g != reference %g", i, times[i], ref.SimulatedTime)
		}
	}
}

// TestRankMappingSubset replays only the second pair through Config.Ranks on
// a kernel of its own, as the sweep partitioner does, and checks the world
// the handlers see stays the global one.
func TestRankMappingSubset(t *testing.T) {
	perRank := pairTraces()
	b, d := buildFour(t)
	full, err := RunActions(b, d, Config{Model: smpi.Default()}, perRank)
	if err != nil {
		t.Fatal(err)
	}

	b2, d2 := buildFour(t)
	sub := &platform.Deployment{Version: d2.Version, Processes: d2.Processes[2:4]}
	cfg := Config{Model: smpi.Default(), Ranks: []int{2, 3}, WorldSize: 4}
	part, err := Run(b2, sub, cfg, []Source{SliceSource(perRank[2]), SliceSource(perRank[3])})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(perRank[2]) + len(perRank[3])); part.Actions != want {
		t.Fatalf("partial run replayed %d actions, want %d", part.Actions, want)
	}
	// The fast pair finishes before the full run's slow pair; both are real
	// simulations of the same platform, so the partial makespan must be
	// positive and strictly below the full one.
	if part.SimulatedTime <= 0 || part.SimulatedTime >= full.SimulatedTime {
		t.Fatalf("partial makespan %g vs full %g", part.SimulatedTime, full.SimulatedTime)
	}
}

// TestRankMappingValidation exercises the mapping error paths.
func TestRankMappingValidation(t *testing.T) {
	perRank := pairTraces()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"short mapping", Config{Ranks: []int{0}, WorldSize: 4}},
		{"rank outside world", Config{Ranks: []int{0, 9}, WorldSize: 4}},
		{"duplicate rank", Config{Ranks: []int{1, 1}, WorldSize: 4}},
		{"world below deployment", Config{WorldSize: 1}},
	}
	for _, c := range cases {
		b, err := platform.BuildBordereauWithCores(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		d, err := platform.RoundRobin(b.HostNames, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(b, d, c.cfg, []Source{SliceSource(perRank[0]), SliceSource(perRank[1])}); err == nil {
			t.Fatalf("%s: no error", c.name)
		}
	}
}
