package replay

import (
	"bytes"
	"testing"

	"tireplay/internal/platform"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// This file pins the zone-based computed routing layer at the replay level:
// the same NPB traces replayed on a platform instantiated with composed
// routes and with the eager per-pair reference tables must produce
// byte-identical timed traces and bit-equal makespans. Routes that are
// link-for-link identical (the platform-level equivalence tests) feed the
// same max-min constraints in the same order, so any divergence here means
// the computed layer changed semantics, not just representation.

// timedReplayRouting replays perRank on an n-host bordereau instantiated in
// the given routing mode.
func timedReplayRouting(t *testing.T, perRank [][]trace.Action, r platform.Routing) (float64, []byte) {
	t.Helper()
	n := len(perRank)
	b, err := platform.InstantiateRouting(platform.Bordereau(n), r)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	cfg := Config{Model: smpi.Default(), TimedTracer: tw}
	res, err := RunActions(b, d, cfg, perRank)
	if err != nil {
		t.Fatalf("routing=%v: %v", r, err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return res.SimulatedTime, buf.Bytes()
}

// TestComputedRoutingMatchesTableOnNPB is the end-to-end half of the
// routing-refactor acceptance: an 8-rank LU (and CG) replay must emit the
// byte-identical timed trace under the computed zone router and the eager
// reference table.
func TestComputedRoutingMatchesTableOnNPB(t *testing.T) {
	const procs = 8
	for _, fixture := range []string{"LU", "CG"} {
		perRank := npbTraces(t, fixture, procs)
		timeC, traceC := timedReplayRouting(t, perRank, platform.RoutingComputed)
		timeT, traceT := timedReplayRouting(t, perRank, platform.RoutingTable)
		if timeC != timeT {
			t.Fatalf("%s: computed makespan %v != table %v", fixture, timeC, timeT)
		}
		if !bytes.Equal(traceC, traceT) {
			t.Fatalf("%s: timed traces differ (%d vs %d bytes)",
				fixture, len(traceC), len(traceT))
		}
		if len(traceC) == 0 {
			t.Fatalf("%s: empty timed trace — tracer not wired", fixture)
		}
	}
}

// TestComputedRoutingMatchesTableOnStressTrace extends the check to the
// interning stress trace (rendezvous queues, eager sends, collectives).
func TestComputedRoutingMatchesTableOnStressTrace(t *testing.T) {
	perRank := perRankActions(t, internStressTrace, 4)
	timeC, traceC := timedReplayRouting(t, perRank, platform.RoutingComputed)
	timeT, traceT := timedReplayRouting(t, perRank, platform.RoutingTable)
	if timeC != timeT || !bytes.Equal(traceC, traceT) {
		t.Fatalf("computed path diverges from table (makespan %v vs %v, traces %d vs %d bytes)",
			timeC, timeT, len(traceC), len(traceT))
	}
}

// TestReplayOnGeneratedTopology replays the stress trace on each zoo member:
// the computed routers must carry a full replay (rendezvous, collectives,
// waits) to completion deterministically.
func TestReplayOnGeneratedTopology(t *testing.T) {
	perRank := perRankActions(t, internStressTrace, 4)
	for _, spec := range []string{"fat-tree:4", "torus:2x2", "dragonfly:2x2x1"} {
		ts, err := platform.ParseTopo(spec)
		if err != nil {
			t.Fatal(err)
		}
		run := func() (float64, []byte) {
			b, err := ts.Build()
			if err != nil {
				t.Fatal(err)
			}
			d, err := platform.RoundRobin(b.HostNames, len(perRank), 1)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			tw := NewTimedTraceWriter(&buf)
			res, err := RunActions(b, d, Config{Model: smpi.Default(), TimedTracer: tw}, perRank)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			if err := tw.Flush(); err != nil {
				t.Fatal(err)
			}
			return res.SimulatedTime, buf.Bytes()
		}
		t1, tr1 := run()
		t2, tr2 := run()
		if t1 != t2 || !bytes.Equal(tr1, tr2) {
			t.Fatalf("%s: two identical replays disagree (%v vs %v)", spec, t1, t2)
		}
		if t1 <= 0 || len(tr1) == 0 {
			t.Fatalf("%s: degenerate replay (makespan %v, %d trace bytes)", spec, t1, len(tr1))
		}
	}
}
