package replay

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"tireplay/internal/platform"
	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

func TestParseCkpt(t *testing.T) {
	for _, in := range []string{"", "none", "NONE"} {
		c, err := ParseCkpt(in)
		if err != nil || c != nil {
			t.Fatalf("ParseCkpt(%q) = %v, %v, want nil, nil", in, c, err)
		}
	}
	c, err := ParseCkpt("60/5/10/30")
	if err != nil {
		t.Fatal(err)
	}
	if *c != (Ckpt{Interval: 60, Cost: 5, Restart: 10, Down: 30}) {
		t.Fatalf("parsed %+v", c)
	}
	if c.String() != "60/5/10/30" {
		t.Fatalf("String() = %q", c.String())
	}
	short, err := ParseCkpt("60")
	if err != nil || *short != (Ckpt{Interval: 60}) {
		t.Fatalf("ParseCkpt(60) = %+v, %v", short, err)
	}
	for _, bad := range []string{"0", "-5", "60/-1", "a/b", "1/2/3/4/5", "inf", "NaN/1"} {
		if c, err := ParseCkpt(bad); err == nil {
			t.Errorf("ParseCkpt(%q) = %+v, want error", bad, c)
		}
	}
	if (*Ckpt)(nil).String() != "none" {
		t.Fatal("nil protocol renders as none")
	}
}

func TestDalyInterval(t *testing.T) {
	// sqrt(2 * 5 * 1000) ≈ 100
	if got := DalyInterval(5, 1000); math.Abs(got-100) > 1e-9 {
		t.Fatalf("DalyInterval(5, 1000) = %g, want 100", got)
	}
}

// arrivalsOf builds a failure stream from explicit instants.
func arrivalsOf(t *testing.T, times ...float64) *platform.Arrivals {
	t.Helper()
	if len(times) == 0 {
		s, err := platform.ParseFaultSpec("none")
		if err != nil {
			t.Fatal(err)
		}
		return s.Arrivals(1)
	}
	clauses := make([]string, len(times))
	for i, at := range times {
		clauses[i] = fmt.Sprintf("host:0@%g", at)
	}
	s, err := platform.ParseFaultSpec(strings.Join(clauses, ","))
	if err != nil {
		t.Fatal(err)
	}
	return s.Arrivals(1)
}

func TestApplyCkptNoFailures(t *testing.T) {
	// M=100, interval 30, cost 5: checkpoints after 30, 60, 90 progress
	// (none at completion) -> effective 100 + 3*5 = 115.
	r, err := applyCkpt(100, &Ckpt{Interval: 30, Cost: 5}, arrivalsOf(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints != 3 || r.CkptTime != 15 || r.Effective != 115 {
		t.Fatalf("got %+v, want 3 ckpts, 15 s, effective 115", r)
	}
	if r.Failures != 0 || r.Wasted != 0 || r.Recomputed != 0 || r.Downtime != 0 {
		t.Fatalf("failure-free run has waste: %+v", r)
	}
}

func TestApplyCkptSingleMidWorkFailure(t *testing.T) {
	// M=100, interval 30, cost 5, restart 10, down 20. Wall timeline:
	// work 30 (wall 30), ckpt (wall 35, cp=30), failure at wall 50: 15 s of
	// progress lost, recovery to wall 80, rework.
	r, err := applyCkpt(100, &Ckpt{Interval: 30, Cost: 5, Restart: 10, Down: 20}, arrivalsOf(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 1 {
		t.Fatalf("failures = %d, want 1", r.Failures)
	}
	if r.Wasted != 15 || r.Recomputed != 15 {
		t.Fatalf("wasted/recomputed = %g/%g, want 15/15", r.Wasted, r.Recomputed)
	}
	if r.Downtime != 30 {
		t.Fatalf("downtime = %g, want 30", r.Downtime)
	}
	// Identity: effective = fault-free + ckpt + wasted + downtime.
	want := 100.0 + r.CkptTime + r.Wasted + r.Downtime
	if math.Abs(r.Effective-want) > 1e-9 {
		t.Fatalf("effective %g violates the waste identity (want %g)", r.Effective, want)
	}
}

func TestApplyCkptFailureDuringWrite(t *testing.T) {
	// M=100, interval 30, cost 5. First write spans wall [30, 35); a
	// failure at 32 discards the partial write (2 s) plus all 30 s of
	// progress: Wasted=32, Recomputed=30.
	r, err := applyCkpt(100, &Ckpt{Interval: 30, Cost: 5}, arrivalsOf(t, 32))
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 1 || r.Wasted != 32 || r.Recomputed != 30 {
		t.Fatalf("got failures=%d wasted=%g recomputed=%g, want 1/32/30", r.Failures, r.Wasted, r.Recomputed)
	}
	if r.Wasted-r.Recomputed != 2 {
		t.Fatalf("partial-write loss = %g, want 2", r.Wasted-r.Recomputed)
	}
}

func TestApplyCkptAbsorbsRecoveryWindowFailures(t *testing.T) {
	// Failures at 50, 55, 60 with down+restart = 30: the ones at 55 and 60
	// land inside the first recovery window [50, 80) and are absorbed.
	r, err := applyCkpt(100, &Ckpt{Interval: 30, Cost: 5, Restart: 10, Down: 20},
		arrivalsOf(t, 50, 55, 60))
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 1 {
		t.Fatalf("failures = %d, want 1 (recovery-window arrivals absorbed)", r.Failures)
	}
}

func TestApplyCkptIdentityHoldsUnderManyFailures(t *testing.T) {
	times := []float64{7, 33, 34, 61, 100, 140, 141, 200, 260, 400}
	r, err := applyCkpt(300, &Ckpt{Interval: 25, Cost: 3, Restart: 4, Down: 6}, arrivalsOf(t, times...))
	if err != nil {
		t.Fatal(err)
	}
	want := r.FaultFree + r.CkptTime + r.Wasted + r.Downtime
	if math.Abs(r.Effective-want) > 1e-6 {
		t.Fatalf("identity violated: effective %g != %g", r.Effective, want)
	}
	if r.Recomputed > r.Wasted {
		t.Fatalf("recomputed %g exceeds wasted %g", r.Recomputed, r.Wasted)
	}
	if r.Effective < r.FaultFree {
		t.Fatalf("effective %g below fault-free %g", r.Effective, r.FaultFree)
	}
}

func TestApplyCkptEffectiveMonotoneInFailures(t *testing.T) {
	// Property: adding failures never shrinks the effective makespan. Build
	// nested failure sets from a deterministic stream and check.
	ck := &Ckpt{Interval: 20, Cost: 2, Restart: 3, Down: 5}
	var times []float64
	next := 11.0
	prevEff := 0.0
	for i := 0; i < 12; i++ {
		r, err := applyCkpt(200, ck, arrivalsOf(t, times...))
		if err != nil {
			t.Fatal(err)
		}
		if r.Effective < prevEff {
			t.Fatalf("effective makespan shrank from %g to %g when adding failure #%d",
				prevEff, r.Effective, i)
		}
		prevEff = r.Effective
		times = append(times, next)
		next = next*1.31 + 7 // spread strikes across the (growing) run
	}
}

func TestApplyCkptDivergenceDetected(t *testing.T) {
	// Interval 10 with a failure every 1 s of wall time and zero-cost
	// recovery: progress can never reach a checkpoint, the walker must
	// give up instead of looping forever.
	times := make([]float64, 0, maxCkptFailures+8)
	// A huge explicit list would be absurd; use mtbf with a tiny mean so
	// the stream itself generates the storm.
	s, err := platform.ParseFaultSpec("mtbf:0.5")
	if err != nil {
		t.Fatal(err)
	}
	_ = times
	_, err = applyCkpt(1000, &Ckpt{Interval: 100, Cost: 1}, s.Arrivals(4))
	if err == nil {
		t.Fatal("expected a convergence error")
	}
	if !strings.Contains(err.Error(), "does not converge") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// faultSetup builds a 4-host Bordereau-style run of the figure 1 ring trace.
func faultSetup(t *testing.T) (*platform.Build, *platform.Deployment, [][]trace.Action) {
	t.Helper()
	b, d := paperSetup(t, 4)
	return b, d, perRankActions(t, figure1Trace, 4)
}

func TestReplayAbortOnHostFault(t *testing.T) {
	b, d, perRank := faultSetup(t)
	faults, err := platform.ParseFaultSpec("host:1@0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunActions(b, d, Config{Model: smpi.Identity(), Faults: faults}, perRank)
	if res != nil || err == nil {
		t.Fatalf("faulted run returned (%v, %v), want (nil, *FailedRanksError)", res, err)
	}
	var fre *FailedRanksError
	if !errors.As(err, &fre) {
		t.Fatalf("error type %T: %v", err, err)
	}
	// Rank 1 dies outright; rank 0's send then matches the dead receive and
	// aborts too. Ranks 2 and 3 merely block forever on the dead part of
	// the ring — the (swallowed) deadlock, not a recorded failure.
	if len(fre.Ranks) != 2 {
		t.Fatalf("lost %d ranks, want 2 (rank 1 + cascaded rank 0): %v", len(fre.Ranks), fre)
	}
	for i, rf := range fre.Ranks {
		if rf.Rank != i {
			t.Fatalf("ranks not sorted: %+v", fre.Ranks)
		}
		if !strings.Contains(rf.Cause, "host bordereau-1") {
			t.Fatalf("cause %q does not name the failed resource", rf.Cause)
		}
	}
	if fre.Ranks[0].Actions != 1 || fre.Ranks[1].Actions != 0 {
		t.Fatalf("lost-work accounting wrong: %+v", fre.Ranks)
	}
	if !strings.Contains(err.Error(), "rank 0") {
		t.Fatalf("error message lacks diagnosis: %v", err)
	}
}

func TestReplayAbortDeterministic(t *testing.T) {
	run := func() string {
		b, d, perRank := faultSetup(t)
		faults, err := platform.ParseFaultSpec("host:2@0.001")
		if err != nil {
			t.Fatal(err)
		}
		_, err = RunActions(b, d, Config{Model: smpi.Identity(), Faults: faults}, perRank)
		if err == nil {
			t.Fatal("expected a FailedRanksError")
		}
		return err.Error()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("abort diagnosis not deterministic:\n%s\n%s", a, b)
	}
}

func TestReplayFaultFreeWithFaultsAfterEnd(t *testing.T) {
	// A fault scheduled long after the trace completes must not change the
	// result at all.
	b, d, perRank := faultSetup(t)
	base, err := RunActions(b, d, Config{Model: smpi.Identity()}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	b2, d2 := paperSetup(t, 4)
	faults, err := platform.ParseFaultSpec("host:1@1e6")
	if err != nil {
		t.Fatal(err)
	}
	late, err := RunActions(b2, d2, Config{Model: smpi.Identity(), Faults: faults}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	if late.SimulatedTime != base.SimulatedTime || late.Actions != base.Actions {
		t.Fatalf("late fault perturbed the run: %g/%d vs %g/%d",
			late.SimulatedTime, late.Actions, base.SimulatedTime, base.Actions)
	}
}

func TestReplayCkptPolicyRidesThroughFailure(t *testing.T) {
	b, d, perRank := faultSetup(t)
	base, err := RunActions(b, d, Config{Model: smpi.Identity()}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	M := base.SimulatedTime

	b2, d2 := paperSetup(t, 4)
	faults, err := platform.ParseFaultSpec(fmt.Sprintf("host:1@%g", M/2))
	if err != nil {
		t.Fatal(err)
	}
	ck := &Ckpt{Interval: M / 4, Cost: M / 100, Restart: M / 50, Down: M / 50}
	res, err := RunActions(b2, d2, Config{Model: smpi.Identity(), Faults: faults, Ckpt: ck}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Resilience
	if r == nil {
		t.Fatal("ckpt run returned no resilience breakdown")
	}
	if r.FaultFree != M {
		t.Fatalf("fault-free makespan %g != baseline %g", r.FaultFree, M)
	}
	if r.Failures != 1 || r.Wasted <= 0 {
		t.Fatalf("breakdown %+v, want 1 failure with waste", r)
	}
	if res.SimulatedTime != r.Effective || r.Effective <= M {
		t.Fatalf("SimulatedTime %g vs effective %g vs fault-free %g", res.SimulatedTime, r.Effective, M)
	}
	want := r.FaultFree + r.CkptTime + r.Wasted + r.Downtime
	if math.Abs(r.Effective-want) > 1e-9*want {
		t.Fatalf("identity violated: %g != %g", r.Effective, want)
	}
}

func TestReplayCkptWithoutFaultsPaysCheckpointsOnly(t *testing.T) {
	b, d, perRank := faultSetup(t)
	base, err := RunActions(b, d, Config{Model: smpi.Identity()}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	b2, d2 := paperSetup(t, 4)
	ck := &Ckpt{Interval: base.SimulatedTime / 3, Cost: 1}
	res, err := RunActions(b2, d2, Config{Model: smpi.Identity(), Ckpt: ck}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Resilience
	if r.Failures != 0 || r.Wasted != 0 {
		t.Fatalf("fault-free ckpt run has waste: %+v", r)
	}
	if r.Checkpoints == 0 || res.SimulatedTime != base.SimulatedTime+r.CkptTime {
		t.Fatalf("ckpt overhead wrong: %+v on base %g", r, base.SimulatedTime)
	}
}

func TestReplayCkptInvalidConfig(t *testing.T) {
	b, d, perRank := faultSetup(t)
	_, err := RunActions(b, d, Config{Ckpt: &Ckpt{Interval: -1}}, perRank)
	if err == nil {
		t.Fatal("invalid ckpt config accepted")
	}
}

func TestReplayDegradationOnlySpecNeedsNoRecovery(t *testing.T) {
	// bw: clauses have no fail-stop: the run completes normally (slower),
	// with no FailedRanksError and no Resilience.
	b, d, perRank := faultSetup(t)
	base, err := RunActions(b, d, Config{Model: smpi.Identity()}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	b2, d2 := paperSetup(t, 4)
	faults, err := platform.ParseFaultSpec(fmt.Sprintf("bw:0.1@0-%g", base.SimulatedTime))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunActions(b2, d2, Config{Model: smpi.Identity(), Faults: faults}, perRank)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= base.SimulatedTime {
		t.Fatalf("degraded run %g not slower than base %g", res.SimulatedTime, base.SimulatedTime)
	}
	if res.Resilience != nil {
		t.Fatal("no ckpt configured, Resilience must be nil")
	}
}

// BenchmarkFaultFreeReplay pins the zero-fault hot path: a replay with no
// Faults and no Ckpt must run the exact same code as before the fault layer
// existed — same ns/op, zero allocs/op (guarded like the steady-state
// benchmark, and by the CI benchdiff gate).
func BenchmarkFaultFreeReplay(b *testing.B) {
	bld, err := platform.BuildBordereauCustom(2, 1, platform.BordereauPower)
	if err != nil {
		b.Fatal(err)
	}
	d, err := platform.RoundRobin(bld.HostNames, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	sources := []Source{
		&pingPongSource{rank: 0, n: b.N, vol: 128 * 1024},
		&pingPongSource{rank: 1, n: b.N, vol: 128 * 1024},
	}
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	res, err := Run(bld, d, Config{Model: smpi.Identity()}, sources)
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if err != nil {
		b.Fatal(err)
	}
	if res.Actions != int64(2*b.N) {
		b.Fatalf("replayed %d actions, want %d", res.Actions, 2*b.N)
	}
	if res.Resilience != nil {
		b.Fatal("fault-free run produced a resilience breakdown")
	}
	if b.N >= 10000 {
		perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N)
		if perOp >= 1 {
			b.Fatalf("fault-free replay allocates %.3f allocs/op, want amortised 0", perOp)
		}
	}
}
