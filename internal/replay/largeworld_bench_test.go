package replay

import (
	"fmt"
	"runtime"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/synth"
	"tireplay/internal/trace"
)

// largeWorldGen fits LU class S once and truncates the per-segment repeat
// counts so one op replays a single iteration sweep per world — large
// enough to exercise every layer (p2p stencil, collectives, waits), small
// enough that 16k ranks stay benchable.
func largeWorldGen(b *testing.B, world int) *synth.Gen {
	b.Helper()
	perRank, err := npb.RecordAll("lu", "S", 16)
	if err != nil {
		b.Fatal(err)
	}
	m, err := synth.Fit(perRank)
	if err != nil {
		b.Fatal(err)
	}
	for i := range m.Phases {
		if s := m.Phases[i].Seg; s != nil && s.Reps > 1 {
			s.Reps = 1
		}
	}
	g, err := synth.NewGen(m, synth.Spec{World: world, Law: synth.StrongLaw})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// rankGenSource adapts a synth streaming cursor to the replay Source
// interface, so large worlds replay without materialising trace files.
type rankGenSource struct{ rg *synth.RankGen }

func (s rankGenSource) Next() (trace.Action, bool, error) { return s.rg.Next() }

// BenchmarkLargeWorldReplay replays synthetic LU worlds of 1k, 4k and 16k
// ranks on a dragonfly:8x16x8 (1024 hosts, ranks folded round-robin) —
// the tentpole scenario of "replay worlds nobody recorded". Alongside
// ns/op it reports bytes_per_rank: the per-rank setup allocation
// footprint, which must stay flat as the world grows (the gated
// rank_flatness floor is bpr(1k)/bpr(16k), so any O(world) per-rank
// state — mailbox tables, round tables, sink buckets — shows up as a
// drop below 1/16th-ish flatness, not as noise).
func BenchmarkLargeWorldReplay(b *testing.B) {
	// Sub-benchmarks run in declaration order, so the 1k measurement is
	// in scope when the larger worlds report their flatness ratio.
	var bpr1k float64
	for _, world := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("ranks=%d", world), func(b *testing.B) {
			g := largeWorldGen(b, world)
			topo, err := platform.ParseTopo("dragonfly:8x16x8")
			if err != nil {
				b.Fatal(err)
			}
			hosts := topo.HostNames()
			fold := (world + len(hosts) - 1) / len(hosts)
			var bytesPerRank, actions float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bld, err := topo.Build()
				if err != nil {
					b.Fatal(err)
				}
				depl, err := platform.RoundRobin(bld.HostNames, world, fold)
				if err != nil {
					b.Fatal(err)
				}
				sources := make([]Source, world)
				for r := 0; r < world; r++ {
					rg, err := g.Rank(r)
					if err != nil {
						b.Fatal(err)
					}
					sources[r] = rankGenSource{rg}
				}
				var before, after runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&before)
				b.StartTimer()
				res, err := Run(bld, depl, Config{}, sources)
				b.StopTimer()
				runtime.ReadMemStats(&after)
				if err != nil {
					b.Fatal(err)
				}
				if res.SimulatedTime <= 0 {
					b.Fatalf("non-positive makespan %g", res.SimulatedTime)
				}
				bytesPerRank = float64(after.TotalAlloc-before.TotalAlloc) / float64(world)
				actions = float64(res.Actions)
				b.StartTimer()
			}
			b.ReportMetric(bytesPerRank, "bytes_per_rank")
			b.ReportMetric(actions, "actions/op")
			if world == 1024 {
				bpr1k = bytesPerRank
			} else if bpr1k > 0 && bytesPerRank > 0 {
				// rank_flatness = bpr(1k)/bpr(world): 1.0 is perfectly
				// flat per-rank setup cost; O(world) state drags it
				// toward zero. Gated in CI at 0.8 for the 16k world.
				b.ReportMetric(bpr1k/bytesPerRank, "rank_flatness")
			}
		})
	}
}
