package replay

import (
	"fmt"
	"strconv"

	"tireplay/internal/coll"
	"tireplay/internal/simx"
	"tireplay/internal/trace"
)

// p2pMbox names the mailbox of point-to-point traffic between two ranks.
// The interned fast path resolves these names once per rank pair at spawn
// time; the name-per-rendezvous reference path (Config.StringMailboxes)
// formats them on every action.
func p2pMbox(src, dst int) string {
	return "replay:" + strconv.Itoa(src) + ">" + strconv.Itoa(dst)
}

// collMbox names the mailbox of one collective round. Every process
// executes the same sequence of collective actions (an MPI requirement), so
// a per-process collective counter identifies matching rounds globally.
func collMbox(seq int64, src, dst int) string {
	return "replay:coll" + strconv.FormatInt(seq, 10) + ":" + strconv.Itoa(src) + ">" + strconv.Itoa(dst)
}

// sendMbox resolves the mailbox this rank sends to dst on, interning the
// name on first use and serving the cached ID afterwards.
func (p *Proc) sendMbox(dst int) simx.MailboxID {
	if p.sendMb.disabled() {
		return p.Sim.Kernel().MailboxID(p2pMbox(p.Rank, dst))
	}
	if id, ok := p.sendMb.get(dst); ok {
		return id
	}
	id := p.Sim.Kernel().MailboxID(p2pMbox(p.Rank, dst))
	p.sendMb.put(dst, id)
	return id
}

// recvMbox resolves the mailbox this rank receives from src on, interning
// the name on first use and serving the cached ID afterwards.
func (p *Proc) recvMbox(src int) simx.MailboxID {
	if p.recvMb.disabled() {
		return p.Sim.Kernel().MailboxID(p2pMbox(src, p.Rank))
	}
	if id, ok := p.recvMb.get(src); ok {
		return id
	}
	id := p.Sim.Kernel().MailboxID(p2pMbox(src, p.Rank))
	p.recvMb.put(src, id)
	return id
}

// collMbox resolves the mailbox of the (src,dst) leg of collective round
// seq. On the interned path the ID comes from the world's round table,
// derived from the sequence counter with no name formatted or hashed.
func (p *Proc) collMbox(seq int64, src, dst int) simx.MailboxID {
	if p.world.stringMailboxes {
		return p.Sim.Kernel().MailboxID(collMbox(seq, src, dst))
	}
	return p.world.pairMbox(p.world.round(seq), src, dst)
}

// runCollective decomposes one traced collective into the point-to-point
// schedule of the configured algorithm and executes it through the mailbox
// machinery: the generalisation of the paper's star decomposition. The
// schedule is a pure function of (rank, world size, volume), so every rank
// reserves the same span of round numbers and the rendezvous mailboxes
// derive from the shared counter exactly as before — multi-round algorithms
// simply consume several seqs per collective.
func (p *Proc) runCollective(kind coll.Kind, vcomm, vcomp float64) error {
	alg := coll.Resolve(kind, p.cfg.Collectives.For(kind), p.cfg.Model, p.N, vcomm)
	rounds := coll.Rounds(kind, alg, p.N)
	base := p.reserveColl(rounds)
	p.steps = coll.AppendSchedule(p.steps[:0], kind, alg, p.Rank, p.N, vcomm, vcomp)
	for i := range p.steps {
		s := &p.steps[i]
		switch s.Op {
		case coll.OpSend:
			p.Sim.SendID(p.collMbox(base+int64(s.Round), p.Rank, s.To), s.Volume, nil)
		case coll.OpRecv:
			p.Sim.RecvID(p.collMbox(base+int64(s.Round), s.From, p.Rank))
		case coll.OpShift:
			// Pairwise exchange: post the send asynchronously so two ranks
			// shifting to each other cannot deadlock, then complete both.
			c := p.Sim.ISendID(p.collMbox(base+int64(s.Round), p.Rank, s.To), s.Volume, nil)
			p.Sim.RecvID(p.collMbox(base+int64(s.Round), s.From, p.Rank))
			p.Sim.WaitComm(c)
			p.Sim.ReleaseComm(c)
		case coll.OpCompute:
			p.Sim.Execute(s.Volume)
		}
	}
	if !p.world.stringMailboxes {
		// All of this rank's transfers in [base, base+rounds) have
		// completed (every step above blocks); once the last rank passes
		// here the rounds' mailboxes are drained and recycle.
		p.world.release(base, rounds)
	}
	return nil
}

// handleCompute simulates a CPU burst: the paper's example handler creating
// and executing a SimGrid task of the traced volume.
func handleCompute(p *Proc, a trace.Action) error {
	p.Sim.Execute(a.Volume)
	return nil
}

// checkPeer rejects peers outside the deployment: the run loop does not
// re-validate actions (a custom Source can hand over anything), and the
// interned mailbox tables are rank-sized, so an out-of-range peer — in
// either direction — must fail with a diagnostic (on both mailbox paths)
// rather than an index panic or a bare deadlock.
func (p *Proc) checkPeer(peer int) error {
	if peer < 0 || peer >= p.N {
		return fmt.Errorf("replay: p%d names peer p%d but deployment has %d processes",
			p.Rank, peer, p.N)
	}
	return nil
}

// handleSend simulates a blocking send: synchronous above the eager
// threshold (the sender waits for the transfer), buffered below it.
func handleSend(p *Proc, a trace.Action) error {
	if a.Peer == p.Rank {
		return fmt.Errorf("replay: p%d sends to itself", p.Rank)
	}
	if err := p.checkPeer(a.Peer); err != nil {
		return err
	}
	if a.Volume <= p.cfg.EagerThreshold {
		p.Sim.ISendDetachedID(p.sendMbox(a.Peer), a.Volume, nil)
		return nil
	}
	p.Sim.SendID(p.sendMbox(a.Peer), a.Volume, nil)
	return nil
}

// handleIsend simulates an asynchronous send; following the MSG replay
// design the message is detached — completion is the network's business.
func handleIsend(p *Proc, a trace.Action) error {
	if a.Peer == p.Rank {
		return fmt.Errorf("replay: p%d Isends to itself", p.Rank)
	}
	if err := p.checkPeer(a.Peer); err != nil {
		return err
	}
	p.Sim.ISendDetachedID(p.sendMbox(a.Peer), a.Volume, nil)
	return nil
}

// handleRecv simulates a blocking receive from the traced source.
func handleRecv(p *Proc, a trace.Action) error {
	if err := p.checkPeer(a.Peer); err != nil {
		return err
	}
	p.Sim.RecvID(p.recvMbox(a.Peer))
	return nil
}

// handleIrecv posts an asynchronous receive; the request joins the rank's
// FIFO of pending requests consumed by wait actions.
func handleIrecv(p *Proc, a trace.Action) error {
	if err := p.checkPeer(a.Peer); err != nil {
		return err
	}
	p.pending.Push(p.Sim.IRecvID(p.recvMbox(a.Peer)))
	return nil
}

// handleWait completes the oldest pending asynchronous receive and returns
// the consumed handle to the kernel pool.
func handleWait(p *Proc, a trace.Action) error {
	if p.pending.Empty() {
		return fmt.Errorf("replay: p%d waits with no pending request", p.Rank)
	}
	h := p.pending.Pop()
	p.Sim.WaitComm(h)
	p.Sim.ReleaseComm(h)
	return nil
}

// handleWaitAll drains the whole pending-request FIFO in post order,
// releasing every handle — the MPI_Waitall of a traced request batch. A
// traced waitAll implies outstanding requests, so an empty FIFO is a trace
// inconsistency, diagnosed like a stray wait.
func handleWaitAll(p *Proc, a trace.Action) error {
	if p.pending.Empty() {
		return fmt.Errorf("replay: p%d waitAlls with no pending request", p.Rank)
	}
	for !p.pending.Empty() {
		h := p.pending.Pop()
		p.Sim.WaitComm(h)
		p.Sim.ReleaseComm(h)
	}
	return nil
}

// handleBcast broadcasts from rank 0 as a set of point-to-point messages,
// the decomposition the paper chooses over monolithic collective models —
// by default the linear star, or the algorithm Config.Collectives selects.
func handleBcast(p *Proc, a trace.Action) error {
	return p.runCollective(coll.KindBcast, a.Volume, 0)
}

// handleReduce gathers vcomm bytes to rank 0, then every rank executes the
// traced reduction work vcomp.
func handleReduce(p *Proc, a trace.Action) error {
	return p.runCollective(coll.KindReduce, a.Volume, a.Volume2)
}

// handleAllReduce is by default a reduce followed by a broadcast of the
// result, then the local reduction work; recursive-doubling and ring
// schedules are selectable.
func handleAllReduce(p *Proc, a trace.Action) error {
	return p.runCollective(coll.KindAllReduce, a.Volume, a.Volume2)
}

// handleBarrier synchronises with 1-byte tokens, by default through rank 0.
func handleBarrier(p *Proc, a trace.Action) error {
	return p.runCollective(coll.KindBarrier, 0, 0)
}

// handleGather collects one block of the traced volume per rank at rank 0.
func handleGather(p *Proc, a trace.Action) error {
	return p.runCollective(coll.KindGather, a.Volume, 0)
}

// handleAllGather leaves every rank with all blocks.
func handleAllGather(p *Proc, a trace.Action) error {
	return p.runCollective(coll.KindAllGather, a.Volume, 0)
}

// handleAllToAll performs the personalised all-to-all exchange as pairwise
// shifts.
func handleAllToAll(p *Proc, a trace.Action) error {
	return p.runCollective(coll.KindAllToAll, a.Volume, 0)
}

// handleScatter distributes one block per rank from rank 0.
func handleScatter(p *Proc, a trace.Action) error {
	return p.runCollective(coll.KindScatter, a.Volume, 0)
}

// handleCommSize validates the communicator size declared by the trace
// against the deployment, the consistency check the paper's format enables.
func handleCommSize(p *Proc, a trace.Action) error {
	if int(a.Volume) != p.N {
		return fmt.Errorf("replay: p%d declares comm_size %d but deployment has %d processes",
			p.Rank, int(a.Volume), p.N)
	}
	return nil
}

// interface check: all default handlers match the Handler signature.
var _ = []Handler{
	handleCompute, handleSend, handleIsend, handleRecv, handleIrecv,
	handleWait, handleWaitAll, handleBcast, handleReduce, handleAllReduce,
	handleBarrier, handleGather, handleAllGather, handleAllToAll,
	handleScatter, handleCommSize,
}
