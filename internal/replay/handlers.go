package replay

import (
	"fmt"
	"strconv"

	"tireplay/internal/simx"
	"tireplay/internal/trace"
)

// p2pMbox names the mailbox of point-to-point traffic between two ranks.
// The interned fast path resolves these names once per rank pair at spawn
// time; the name-per-rendezvous reference path (Config.StringMailboxes)
// formats them on every action.
func p2pMbox(src, dst int) string {
	return "replay:" + strconv.Itoa(src) + ">" + strconv.Itoa(dst)
}

// collMbox names the mailbox of one collective round. Every process
// executes the same sequence of collective actions (an MPI requirement), so
// a per-process collective counter identifies matching rounds globally.
func collMbox(seq int64, src, dst int) string {
	return "replay:coll" + strconv.FormatInt(seq, 10) + ":" + strconv.Itoa(src) + ">" + strconv.Itoa(dst)
}

// sendMbox resolves the mailbox this rank sends to dst on, interning the
// name on first use and serving the cached ID afterwards.
func (p *Proc) sendMbox(dst int) simx.MailboxID {
	if p.sendMb == nil {
		return p.Sim.Kernel().MailboxID(p2pMbox(p.Rank, dst))
	}
	id := p.sendMb[dst]
	if id < 0 {
		id = p.Sim.Kernel().MailboxID(p2pMbox(p.Rank, dst))
		p.sendMb[dst] = id
	}
	return id
}

// recvMbox resolves the mailbox this rank receives from src on, interning
// the name on first use and serving the cached ID afterwards.
func (p *Proc) recvMbox(src int) simx.MailboxID {
	if p.recvMb == nil {
		return p.Sim.Kernel().MailboxID(p2pMbox(src, p.Rank))
	}
	id := p.recvMb[src]
	if id < 0 {
		id = p.Sim.Kernel().MailboxID(p2pMbox(src, p.Rank))
		p.recvMb[src] = id
	}
	return id
}

// collMbox resolves the mailbox of the (src,dst) leg of collective round
// seq. On the interned path the ID comes from the world's round table,
// derived from the sequence counter with no name formatted or hashed.
func (p *Proc) collMbox(seq int64, src, dst int) simx.MailboxID {
	if p.world.stringMailboxes {
		return p.Sim.Kernel().MailboxID(collMbox(seq, src, dst))
	}
	r := p.world.round(seq)
	if src == 0 {
		return r.down[dst]
	}
	return r.up[src]
}

// handleCompute simulates a CPU burst: the paper's example handler creating
// and executing a SimGrid task of the traced volume.
func handleCompute(p *Proc, a trace.Action) error {
	p.Sim.Execute(a.Volume)
	return nil
}

// checkPeer rejects peers outside the deployment: the run loop does not
// re-validate actions (a custom Source can hand over anything), and the
// interned mailbox tables are rank-sized, so an out-of-range peer — in
// either direction — must fail with a diagnostic (on both mailbox paths)
// rather than an index panic or a bare deadlock.
func (p *Proc) checkPeer(peer int) error {
	if peer < 0 || peer >= p.N {
		return fmt.Errorf("replay: p%d names peer p%d but deployment has %d processes",
			p.Rank, peer, p.N)
	}
	return nil
}

// handleSend simulates a blocking send: synchronous above the eager
// threshold (the sender waits for the transfer), buffered below it.
func handleSend(p *Proc, a trace.Action) error {
	if a.Peer == p.Rank {
		return fmt.Errorf("replay: p%d sends to itself", p.Rank)
	}
	if err := p.checkPeer(a.Peer); err != nil {
		return err
	}
	if a.Volume <= p.cfg.EagerThreshold {
		p.Sim.ISendDetachedID(p.sendMbox(a.Peer), a.Volume, nil)
		return nil
	}
	p.Sim.SendID(p.sendMbox(a.Peer), a.Volume, nil)
	return nil
}

// handleIsend simulates an asynchronous send; following the MSG replay
// design the message is detached — completion is the network's business.
func handleIsend(p *Proc, a trace.Action) error {
	if a.Peer == p.Rank {
		return fmt.Errorf("replay: p%d Isends to itself", p.Rank)
	}
	if err := p.checkPeer(a.Peer); err != nil {
		return err
	}
	p.Sim.ISendDetachedID(p.sendMbox(a.Peer), a.Volume, nil)
	return nil
}

// handleRecv simulates a blocking receive from the traced source.
func handleRecv(p *Proc, a trace.Action) error {
	if err := p.checkPeer(a.Peer); err != nil {
		return err
	}
	p.Sim.RecvID(p.recvMbox(a.Peer))
	return nil
}

// handleIrecv posts an asynchronous receive; the request joins the rank's
// FIFO of pending requests consumed by wait actions.
func handleIrecv(p *Proc, a trace.Action) error {
	if err := p.checkPeer(a.Peer); err != nil {
		return err
	}
	p.pending.Push(p.Sim.IRecvID(p.recvMbox(a.Peer)))
	return nil
}

// handleWait completes the oldest pending asynchronous receive and returns
// the consumed handle to the kernel pool.
func handleWait(p *Proc, a trace.Action) error {
	if p.pending.Empty() {
		return fmt.Errorf("replay: p%d waits with no pending request", p.Rank)
	}
	h := p.pending.Pop()
	p.Sim.WaitComm(h)
	p.Sim.ReleaseComm(h)
	return nil
}

// handleBcast broadcasts from rank 0 as a set of point-to-point messages,
// the decomposition the paper chooses over monolithic collective models.
func handleBcast(p *Proc, a trace.Action) error {
	seq := p.nextColl()
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.SendID(p.collMbox(seq, 0, i), a.Volume, nil)
		}
		return nil
	}
	p.Sim.RecvID(p.collMbox(seq, 0, p.Rank))
	return nil
}

// handleReduce gathers vcomm bytes to rank 0, then every rank executes the
// traced reduction work vcomp.
func handleReduce(p *Proc, a trace.Action) error {
	seq := p.nextColl()
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.RecvID(p.collMbox(seq, i, 0))
		}
	} else {
		p.Sim.SendID(p.collMbox(seq, p.Rank, 0), a.Volume, nil)
	}
	if a.Volume2 > 0 {
		p.Sim.Execute(a.Volume2)
	}
	return nil
}

// handleAllReduce is a reduce followed by a broadcast of the result, then
// the local reduction work.
func handleAllReduce(p *Proc, a trace.Action) error {
	seq := p.nextColl()
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.RecvID(p.collMbox(seq, i, 0))
		}
		for i := 1; i < p.N; i++ {
			p.Sim.SendID(p.collMbox(seq, 0, i), a.Volume, nil)
		}
	} else {
		p.Sim.SendID(p.collMbox(seq, p.Rank, 0), a.Volume, nil)
		p.Sim.RecvID(p.collMbox(seq, 0, p.Rank))
	}
	if a.Volume2 > 0 {
		p.Sim.Execute(a.Volume2)
	}
	return nil
}

// handleBarrier synchronises through rank 0 with zero-payload messages.
func handleBarrier(p *Proc, a trace.Action) error {
	seq := p.nextColl()
	const token = 1
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.RecvID(p.collMbox(seq, i, 0))
		}
		for i := 1; i < p.N; i++ {
			p.Sim.SendID(p.collMbox(seq, 0, i), token, nil)
		}
	} else {
		p.Sim.SendID(p.collMbox(seq, p.Rank, 0), token, nil)
		p.Sim.RecvID(p.collMbox(seq, 0, p.Rank))
	}
	return nil
}

// handleCommSize validates the communicator size declared by the trace
// against the deployment, the consistency check the paper's format enables.
func handleCommSize(p *Proc, a trace.Action) error {
	if int(a.Volume) != p.N {
		return fmt.Errorf("replay: p%d declares comm_size %d but deployment has %d processes",
			p.Rank, int(a.Volume), p.N)
	}
	return nil
}

// interface check: all default handlers match the Handler signature.
var _ = []Handler{
	handleCompute, handleSend, handleIsend, handleRecv, handleIrecv,
	handleWait, handleBcast, handleReduce, handleAllReduce, handleBarrier,
	handleCommSize,
}
