package replay

import (
	"fmt"
	"strconv"

	"tireplay/internal/trace"
)

// p2pMbox names the mailbox of point-to-point traffic between two ranks.
func p2pMbox(src, dst int) string {
	return "replay:" + strconv.Itoa(src) + ">" + strconv.Itoa(dst)
}

// collMbox names the mailbox of one collective round. Every process
// executes the same sequence of collective actions (an MPI requirement), so
// a per-process collective counter identifies matching rounds globally.
func collMbox(seq int64, src, dst int) string {
	return "replay:coll" + strconv.FormatInt(seq, 10) + ":" + strconv.Itoa(src) + ">" + strconv.Itoa(dst)
}

// handleCompute simulates a CPU burst: the paper's example handler creating
// and executing a SimGrid task of the traced volume.
func handleCompute(p *Proc, a trace.Action) error {
	p.Sim.Execute(a.Volume)
	return nil
}

// handleSend simulates a blocking send: synchronous above the eager
// threshold (the sender waits for the transfer), buffered below it.
func handleSend(p *Proc, a trace.Action) error {
	if a.Peer == p.Rank {
		return fmt.Errorf("replay: p%d sends to itself", p.Rank)
	}
	if a.Volume <= p.cfg.EagerThreshold {
		p.Sim.ISendDetached(p2pMbox(p.Rank, a.Peer), a.Volume, a.Volume)
		return nil
	}
	p.Sim.Send(p2pMbox(p.Rank, a.Peer), a.Volume, a.Volume)
	return nil
}

// handleIsend simulates an asynchronous send; following the MSG replay
// design the message is detached — completion is the network's business.
func handleIsend(p *Proc, a trace.Action) error {
	if a.Peer == p.Rank {
		return fmt.Errorf("replay: p%d Isends to itself", p.Rank)
	}
	p.Sim.ISendDetached(p2pMbox(p.Rank, a.Peer), a.Volume, a.Volume)
	return nil
}

// handleRecv simulates a blocking receive from the traced source.
func handleRecv(p *Proc, a trace.Action) error {
	p.Sim.Recv(p2pMbox(a.Peer, p.Rank))
	return nil
}

// handleIrecv posts an asynchronous receive; the request joins the rank's
// FIFO of pending requests consumed by wait actions.
func handleIrecv(p *Proc, a trace.Action) error {
	h := p.Sim.IRecv(p2pMbox(a.Peer, p.Rank))
	p.pending = append(p.pending, h)
	return nil
}

// handleWait completes the oldest pending asynchronous receive.
func handleWait(p *Proc, a trace.Action) error {
	if len(p.pending) == 0 {
		return fmt.Errorf("replay: p%d waits with no pending request", p.Rank)
	}
	h := p.pending[0]
	p.pending = p.pending[1:]
	p.Sim.WaitComm(h)
	return nil
}

// handleBcast broadcasts from rank 0 as a set of point-to-point messages,
// the decomposition the paper chooses over monolithic collective models.
func handleBcast(p *Proc, a trace.Action) error {
	seq := p.nextColl()
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.Send(collMbox(seq, 0, i), a.Volume, a.Volume)
		}
		return nil
	}
	p.Sim.Recv(collMbox(seq, 0, p.Rank))
	return nil
}

// handleReduce gathers vcomm bytes to rank 0, then every rank executes the
// traced reduction work vcomp.
func handleReduce(p *Proc, a trace.Action) error {
	seq := p.nextColl()
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.Recv(collMbox(seq, i, 0))
		}
	} else {
		p.Sim.Send(collMbox(seq, p.Rank, 0), a.Volume, a.Volume)
	}
	if a.Volume2 > 0 {
		p.Sim.Execute(a.Volume2)
	}
	return nil
}

// handleAllReduce is a reduce followed by a broadcast of the result, then
// the local reduction work.
func handleAllReduce(p *Proc, a trace.Action) error {
	seq := p.nextColl()
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.Recv(collMbox(seq, i, 0))
		}
		for i := 1; i < p.N; i++ {
			p.Sim.Send(collMbox(seq, 0, i), a.Volume, a.Volume)
		}
	} else {
		p.Sim.Send(collMbox(seq, p.Rank, 0), a.Volume, a.Volume)
		p.Sim.Recv(collMbox(seq, 0, p.Rank))
	}
	if a.Volume2 > 0 {
		p.Sim.Execute(a.Volume2)
	}
	return nil
}

// handleBarrier synchronises through rank 0 with zero-payload messages.
func handleBarrier(p *Proc, a trace.Action) error {
	seq := p.nextColl()
	const token = 1
	if p.Rank == 0 {
		for i := 1; i < p.N; i++ {
			p.Sim.Recv(collMbox(seq, i, 0))
		}
		for i := 1; i < p.N; i++ {
			p.Sim.Send(collMbox(seq, 0, i), token, nil)
		}
	} else {
		p.Sim.Send(collMbox(seq, p.Rank, 0), token, nil)
		p.Sim.Recv(collMbox(seq, 0, p.Rank))
	}
	return nil
}

// handleCommSize validates the communicator size declared by the trace
// against the deployment, the consistency check the paper's format enables.
func handleCommSize(p *Proc, a trace.Action) error {
	if int(a.Volume) != p.N {
		return fmt.Errorf("replay: p%d declares comm_size %d but deployment has %d processes",
			p.Rank, int(a.Volume), p.N)
	}
	return nil
}

// interface check: all default handlers match the Handler signature.
var _ = []Handler{
	handleCompute, handleSend, handleIsend, handleRecv, handleIrecv,
	handleWait, handleBcast, handleReduce, handleAllReduce, handleBarrier,
	handleCommSize,
}
