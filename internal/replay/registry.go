// Package replay is the trace replay tool of Section 5: the paper's primary
// contribution. It re-executes a time-independent trace on top of the
// simulation kernel against a platform and a deployment description, and
// outputs the simulated execution time (optionally with a timed trace of the
// simulated run, Figure 4).
//
// Mirroring the MSG-based design of the paper, each action keyword is bound
// to a handler function through a registry (the MSG_action_register
// mechanism), per-process replayers execute their action streams as kernel
// processes, and collective operations are decomposed into sets of
// point-to-point communications rooted at process 0.
package replay

import (
	"fmt"
	"sort"

	"tireplay/internal/trace"
)

// Handler implements the simulated behaviour of one action keyword. It runs
// in the replayer process's goroutine and may use every blocking operation
// of p.Sim.
type Handler func(p *Proc, a trace.Action) error

// Registry binds action keywords to handlers, the analogue of
// MSG_action_register in the paper's prototype. A nil Registry in the replay
// configuration means Default().
type Registry struct {
	handlers map[string]Handler
	// byType caches handlers of the known action types in a dense array,
	// so the per-action Lookup on the replay hot path is an index, not a
	// map hash.
	byType [trace.NumTypes]Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{handlers: make(map[string]Handler)}
}

// Register binds keyword to handler, replacing any previous binding —
// ablation studies use this to swap collective implementations.
func (r *Registry) Register(keyword string, h Handler) {
	r.handlers[keyword] = h
	if t, ok := trace.TypeFromName(keyword); ok {
		r.byType[t] = h
	}
}

// Lookup resolves the handler of an action type.
func (r *Registry) Lookup(t trace.ActionType) (Handler, error) {
	if int(t) < len(r.byType) {
		if h := r.byType[t]; h != nil {
			return h, nil
		}
	}
	return nil, fmt.Errorf("replay: no handler registered for action %q", t.String())
}

// Keywords lists the registered keywords in sorted order.
func (r *Registry) Keywords() []string {
	out := make([]string, 0, len(r.handlers))
	for k := range r.handlers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Default returns a registry with the paper's semantics for every action of
// Table 1.
func Default() *Registry {
	r := NewRegistry()
	r.Register("compute", handleCompute)
	r.Register("send", handleSend)
	r.Register("Isend", handleIsend)
	r.Register("recv", handleRecv)
	r.Register("Irecv", handleIrecv)
	r.Register("wait", handleWait)
	r.Register("bcast", handleBcast)
	r.Register("reduce", handleReduce)
	r.Register("allReduce", handleAllReduce)
	r.Register("barrier", handleBarrier)
	r.Register("comm_size", handleCommSize)
	r.Register("waitAll", handleWaitAll)
	r.Register("gather", handleGather)
	r.Register("allGather", handleAllGather)
	r.Register("allToAll", handleAllToAll)
	r.Register("scatter", handleScatter)
	return r
}
