package replay

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"tireplay/internal/simx"
)

// TimedTraceWriter renders the timed trace of a simulated execution: one
// line per completed activity with its simulated start and end times. This
// is the "timed trace" output of Figure 4, which downstream profile analysis
// tools could consume.
//
// Write errors are sticky: the first failure (typically a short write to a
// full disk) is retained, every later record is dropped rather than
// appended to a hole, and Flush reports that first error — so a truncated
// timed trace fails the replay instead of passing for a complete one (the
// CI byte-identity diffs depend on a written trace being whole).
type TimedTraceWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	lines int64
	err   error // first write error; sticky
}

// NewTimedTraceWriter wraps w.
func NewTimedTraceWriter(w io.Writer) *TimedTraceWriter {
	return &TimedTraceWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Compute implements simx.Tracer.
func (t *TimedTraceWriter) Compute(proc, host string, flops, start, end float64) {
	t.mu.Lock()
	if t.err == nil {
		if _, err := fmt.Fprintf(t.bw, "%.9f %s compute %g start=%.9f host=%s\n", end, proc, flops, start, host); err != nil {
			t.err = err
		} else {
			t.lines++
		}
	}
	t.mu.Unlock()
}

// Comm implements simx.Tracer.
func (t *TimedTraceWriter) Comm(src, dst string, bytes, start, end float64) {
	t.mu.Lock()
	if t.err == nil {
		if _, err := fmt.Fprintf(t.bw, "%.9f %s send %s %g start=%.9f\n", end, src, dst, bytes, start); err != nil {
			t.err = err
		} else {
			t.lines++
		}
	}
	t.mu.Unlock()
}

// Lines reports the number of records successfully written.
func (t *TimedTraceWriter) Lines() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lines
}

// Err reports the sticky first write error, nil while all records landed.
func (t *TimedTraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Flush drains the buffer; call once the replay has finished. It returns
// the first error of the writer's lifetime — a record that failed mid-run
// surfaces here even when the final flush itself succeeds.
func (t *TimedTraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); t.err == nil && err != nil {
		t.err = err
	}
	return t.err
}

// ReadTimedTrace parses a timed trace (the TimedTraceWriter line format)
// and replays each record into tr in file order, returning the record
// count. This is the read side of the Figure 4 timed-trace output: it turns
// a written trace back into the event stream a live replay would have
// produced, so the metrics engine analyses files and in-memory sinks
// through one code path.
func ReadTimedTrace(r io.Reader, tr simx.Tracer) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		n++
		if err := parseTimedLine(line, tr); err != nil {
			return n, fmt.Errorf("timed trace line %d: %w", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// parseTimedLine decodes one timed-trace record and forwards it to tr.
func parseTimedLine(line string, tr simx.Tracer) error {
	f := strings.Fields(line)
	if len(f) < 3 {
		return fmt.Errorf("short record %q", line)
	}
	end, err := strconv.ParseFloat(f[0], 64)
	if err != nil {
		return fmt.Errorf("bad end time %q", f[0])
	}
	switch f[2] {
	case "compute":
		// end proc compute flops start=S host=H
		if len(f) != 6 {
			return fmt.Errorf("compute record needs 6 fields, has %d", len(f))
		}
		flops, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return fmt.Errorf("bad flops %q", f[3])
		}
		start, err := timedField(f[4], "start=")
		if err != nil {
			return err
		}
		host, ok := strings.CutPrefix(f[5], "host=")
		if !ok {
			return fmt.Errorf("missing host field in %q", line)
		}
		tr.Compute(f[1], host, flops, start, end)
	case "send":
		// end src send dst bytes start=S
		if len(f) != 6 {
			return fmt.Errorf("send record needs 6 fields, has %d", len(f))
		}
		bytes, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return fmt.Errorf("bad bytes %q", f[4])
		}
		start, err := timedField(f[5], "start=")
		if err != nil {
			return err
		}
		tr.Comm(f[1], f[3], bytes, start, end)
	default:
		return fmt.Errorf("unknown record kind %q", f[2])
	}
	return nil
}

func timedField(s, prefix string) (float64, error) {
	v, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, fmt.Errorf("missing %s field, got %q", strings.TrimSuffix(prefix, "="), s)
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s value %q", strings.TrimSuffix(prefix, "="), v)
	}
	return x, nil
}
