package replay

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// TimedTraceWriter renders the timed trace of a simulated execution: one
// line per completed activity with its simulated start and end times. This
// is the "timed trace" output of Figure 4, which downstream profile analysis
// tools could consume.
type TimedTraceWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	lines int64
}

// NewTimedTraceWriter wraps w.
func NewTimedTraceWriter(w io.Writer) *TimedTraceWriter {
	return &TimedTraceWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Compute implements simx.Tracer.
func (t *TimedTraceWriter) Compute(proc, host string, flops, start, end float64) {
	t.mu.Lock()
	fmt.Fprintf(t.bw, "%.9f %s compute %g start=%.9f host=%s\n", end, proc, flops, start, host)
	t.lines++
	t.mu.Unlock()
}

// Comm implements simx.Tracer.
func (t *TimedTraceWriter) Comm(src, dst string, bytes, start, end float64) {
	t.mu.Lock()
	fmt.Fprintf(t.bw, "%.9f %s send %s %g start=%.9f\n", end, src, dst, bytes, start)
	t.lines++
	t.mu.Unlock()
}

// Lines reports the number of records written.
func (t *TimedTraceWriter) Lines() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lines
}

// Flush drains the buffer; call once the replay has finished.
func (t *TimedTraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}
