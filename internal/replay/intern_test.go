package replay

import (
	"bytes"
	"strings"
	"testing"

	"tireplay/internal/smpi"
	"tireplay/internal/trace"
)

// internStressTrace mixes everything the mailbox addressing has to get
// right: multiple in-flight messages between the same pair (FIFO order
// matching), Irecv/wait request queues, eager and rendezvous sends, and
// back-to-back collective rounds of every flavour (round isolation).
const internStressTrace = `p0 comm_size 4
p0 compute 1e6
p0 Isend p1 2e6
p0 Isend p1 1e4
p0 Isend p1 3e6
p0 recv p3 1e6
p0 bcast 1e6
p0 reduce 1e5 2e6
p0 allReduce 1e5 2e6
p0 barrier
p0 bcast 2e6
p0 barrier
p0 send p2 2e6
p1 comm_size 4
p1 Irecv p0
p1 Irecv p0
p1 Irecv p0
p1 wait
p1 wait
p1 wait
p1 compute 2e6
p1 bcast 1e6
p1 reduce 1e5 2e6
p1 allReduce 1e5 2e6
p1 barrier
p1 bcast 2e6
p1 barrier
p1 send p3 5e5
p2 comm_size 4
p2 compute 3e6
p2 bcast 1e6
p2 reduce 1e5 2e6
p2 allReduce 1e5 2e6
p2 barrier
p2 bcast 2e6
p2 barrier
p2 recv p0 2e6
p3 comm_size 4
p3 send p0 1e6
p3 bcast 1e6
p3 reduce 1e5 2e6
p3 allReduce 1e5 2e6
p3 barrier
p3 bcast 2e6
p3 barrier
p3 recv p1
`

// timedReplay runs the stress trace with the given mailbox path and returns
// the simulated time plus the full timed trace bytes.
func timedReplay(t *testing.T, doc string, n int, stringMailboxes bool) (float64, []byte) {
	t.Helper()
	b, d := paperSetup(t, n)
	var buf bytes.Buffer
	tw := NewTimedTraceWriter(&buf)
	cfg := Config{Model: smpi.Default(), TimedTracer: tw, StringMailboxes: stringMailboxes}
	res, err := RunActions(b, d, cfg, perRankActions(t, doc, n))
	if err != nil {
		t.Fatalf("stringMailboxes=%v: %v", stringMailboxes, err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return res.SimulatedTime, buf.Bytes()
}

// TestInternedMailboxesMatchStringKeyed verifies the core interning claim:
// the interned-ID fast path and the string-keyed reference path address the
// same rendezvous, so the timed traces must be byte-identical and the
// simulated times bit-equal.
func TestInternedMailboxesMatchStringKeyed(t *testing.T) {
	for _, doc := range []string{figure1Trace, internStressTrace} {
		timeI, traceI := timedReplay(t, doc, 4, false)
		timeS, traceS := timedReplay(t, doc, 4, true)
		if timeI != timeS {
			t.Fatalf("interned simulated time %v != string-keyed %v", timeI, timeS)
		}
		if !bytes.Equal(traceI, traceS) {
			t.Fatalf("timed traces differ:\ninterned:\n%s\nstring-keyed:\n%s", traceI, traceS)
		}
		if len(traceI) == 0 {
			t.Fatal("timed trace empty — tracer not wired")
		}
	}
}

// TestInternedFIFOOrderMatching pins the FIFO guarantee down independently:
// three same-pair messages of distinct sizes must arrive in post order, so
// the wait-completed receives see 2e6, 1e4, 3e6 in that order on both paths.
func TestInternedFIFOOrderMatching(t *testing.T) {
	const doc = `p0 Isend p1 2e6
p0 Isend p1 1e4
p0 Isend p1 3e6
p1 Irecv p0
p1 Irecv p0
p1 Irecv p0
p1 wait
p1 wait
p1 wait
`
	for _, stringMailboxes := range []bool{false, true} {
		b, d := paperSetup(t, 2)
		var buf bytes.Buffer
		tw := NewTimedTraceWriter(&buf)
		cfg := Config{Model: smpi.Identity(), TimedTracer: tw, StringMailboxes: stringMailboxes}
		if _, err := RunActions(b, d, cfg, perRankActions(t, doc, 2)); err != nil {
			t.Fatalf("stringMailboxes=%v: %v", stringMailboxes, err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		// Comm lines are emitted at completion; with identity model and a
		// shared route the three transfers complete in size order, but the
		// volumes recorded against the pair must be exactly the posted
		// sequence when sorted by start time.
		var lines []string
		for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if strings.Contains(l, " send ") {
				lines = append(lines, l)
			}
		}
		if len(lines) != 3 {
			t.Fatalf("stringMailboxes=%v: %d comm lines, want 3:\n%s", stringMailboxes, len(lines), buf.String())
		}
		for i, want := range []string{"2e+06", "10000", "3e+06"} {
			found := false
			for _, l := range lines {
				if strings.Contains(l, want) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("stringMailboxes=%v: volume %s (message %d) missing:\n%s",
					stringMailboxes, want, i, buf.String())
			}
		}
	}
}

// TestInternedCollectiveRoundIsolation replays many back-to-back collective
// rounds with skewed compute so fast ranks run ahead: contributions of
// round r+1 must not leak into round r on either path, which would show up
// as a changed simulated time or a deadlock.
func TestInternedCollectiveRoundIsolation(t *testing.T) {
	var sb strings.Builder
	const n = 4
	for r := 0; r < n; r++ {
		sb.WriteString(trace.Action{Proc: r, Type: trace.CommSize, Peer: -1, Volume: n}.Format())
		sb.WriteByte('\n')
		for round := 0; round < 6; round++ {
			// Rank-skewed compute keeps the ranks desynchronised between
			// rounds.
			sb.WriteString(trace.Action{Proc: r, Type: trace.Compute, Peer: -1,
				Volume: float64(1+r) * 5e5}.Format())
			sb.WriteByte('\n')
			sb.WriteString(trace.Action{Proc: r, Type: trace.AllReduce, Peer: -1,
				Volume: 1e5, Volume2: 1e5}.Format())
			sb.WriteByte('\n')
			sb.WriteString(trace.Action{Proc: r, Type: trace.Bcast, Peer: -1, Volume: 2e5}.Format())
			sb.WriteByte('\n')
		}
	}
	timeI, traceI := timedReplay(t, sb.String(), n, false)
	timeS, traceS := timedReplay(t, sb.String(), n, true)
	if timeI != timeS {
		t.Fatalf("interned simulated time %v != string-keyed %v", timeI, timeS)
	}
	if !bytes.Equal(traceI, traceS) {
		t.Fatal("timed traces differ between interned and string-keyed collective rounds")
	}
}

// TestOutOfRangePeerRejected: trace validation only guarantees Peer >= 0,
// so a peer beyond the deployment must fail with a diagnostic — identically
// on the interned and string-keyed paths — rather than an index panic.
func TestOutOfRangePeerRejected(t *testing.T) {
	for _, doc := range []string{
		"p0 send p5 1e6\n",
		"p0 Isend p5 1e6\n",
		"p0 recv p5\n",
		"p0 Irecv p5\n",
	} {
		for _, stringMailboxes := range []bool{false, true} {
			b, d := paperSetup(t, 2)
			cfg := Config{Model: smpi.Identity(), StringMailboxes: stringMailboxes}
			_, err := RunActions(b, d, cfg, perRankActions(t, doc, 2))
			if err == nil || !strings.Contains(err.Error(), "deployment has 2 processes") {
				t.Fatalf("doc %q stringMailboxes=%v: err = %v, want out-of-range diagnostic",
					doc, stringMailboxes, err)
			}
		}
	}
}

// TestNegativePeerFromRawSource: the run loop trusts its Sources, so a
// hand-built action with a negative peer must come back as an error, not an
// index panic in the rank-sized mailbox tables.
func TestNegativePeerFromRawSource(t *testing.T) {
	b, d := paperSetup(t, 2)
	perRank := [][]trace.Action{
		{{Proc: 0, Type: trace.Recv, Peer: -1}},
		nil,
	}
	_, err := RunActions(b, d, Config{Model: smpi.Identity()}, perRank)
	if err == nil || !strings.Contains(err.Error(), "deployment has 2 processes") {
		t.Fatalf("err = %v, want out-of-range diagnostic", err)
	}
}
