package mpi

import (
	"fmt"
	"strconv"

	"tireplay/internal/platform"
	"tireplay/internal/simx"
)

// SimConfig parameterises the simulation engine.
type SimConfig struct {
	// Rate modulates the flop rate per burst (nil = constant host speed).
	Rate RateMultiplier
	// EagerThreshold is the size (bytes) under which sends are buffered
	// (fire-and-forget); above it sends are synchronous. Default 64 KiB.
	EagerThreshold float64
	// MessageCPUTime is the CPU time one message endpoint costs (protocol
	// processing in the MPI stack), in seconds of exclusive host use.
	// Under folding this work shares the CPU like any computation — the
	// mechanism that makes the folded acquisition times of Table 2 grow
	// linearly with the folding factor. Default 8 microseconds; negative
	// disables it.
	MessageCPUTime float64
}

func (c *SimConfig) setDefaults() {
	if c.EagerThreshold == 0 {
		c.EagerThreshold = 64 * 1024
	}
	switch {
	case c.MessageCPUTime == 0:
		c.MessageCPUTime = 8e-6
	case c.MessageCPUTime < 0:
		c.MessageCPUTime = 0
	}
}

// simComm is the per-rank communicator of the simulation engine: every MPI
// operation maps onto kernel activities, so the execution experiences the
// platform's CPU sharing and network contention.
type simComm struct {
	p     *simx.Proc
	me    int
	n     int
	cfg   *SimConfig
	flops float64
	seq   int64

	// sendMb / recvMb cache interned per-peer mailbox IDs (-1 unresolved).
	sendMb []simx.MailboxID
	recvMb []simx.MailboxID
}

var _ Comm = (*simComm)(nil)

// simRequest implements Request for the simulation engine.
type simRequest struct {
	isRecv bool
	peer   int
	bytes  float64
	comm   *simx.Comm // nil for eager (already completed) sends
}

// mbox names the mailbox of the ordered rank pair; simComm interns the
// name once per peer and addresses later traffic by dense mailbox ID.
func mbox(src, dst int) string {
	return "mpi:" + strconv.Itoa(src) + ">" + strconv.Itoa(dst)
}

// sendMbox resolves (caching on first use) the mailbox this rank sends to
// dst on.
func (c *simComm) sendMbox(dst int) simx.MailboxID {
	if id := c.sendMb[dst]; id >= 0 {
		return id
	}
	id := c.p.Kernel().MailboxID(mbox(c.me, dst))
	c.sendMb[dst] = id
	return id
}

// recvMbox resolves (caching on first use) the mailbox this rank receives
// from src on.
func (c *simComm) recvMbox(src int) simx.MailboxID {
	if id := c.recvMb[src]; id >= 0 {
		return id
	}
	id := c.p.Kernel().MailboxID(mbox(src, c.me))
	c.recvMb[src] = id
	return id
}

// newMboxTable returns an n-slot table of unresolved (-1) mailbox IDs.
func newMboxTable(n int) []simx.MailboxID {
	t := make([]simx.MailboxID, n)
	for i := range t {
		t[i] = -1
	}
	return t
}

func (c *simComm) Rank() int          { return c.me }
func (c *simComm) Size() int          { return c.n }
func (c *simComm) Now() float64       { return c.p.Now() }
func (c *simComm) FlopCount() float64 { return c.flops }

func (c *simComm) rank() int { return c.me }
func (c *simComm) size() int { return c.n }

func (c *simComm) addFlops(f float64) { c.flops += f }

func (c *simComm) computeRaw(flops float64) {
	mult := 1.0
	if m := c.cfg.Rate; m != nil {
		mult = m(c.me, c.seq, flops)
	}
	c.seq++
	if mult <= 0 {
		panic(fmt.Sprintf("mpi: rate multiplier %g", mult))
	}
	c.p.Execute(flops / mult)
}

func (c *simComm) Compute(flops float64) {
	if flops < 0 {
		panic(fmt.Sprintf("mpi: negative compute volume %g", flops))
	}
	c.flops += flops
	c.computeRaw(flops)
}

func (c *simComm) Delay(seconds float64) {
	if seconds > 0 {
		c.p.Sleep(seconds)
	}
}

// chargeMessageCPU accounts for the protocol-processing cost of one message
// endpoint: CPU work that folded processes serialise on.
func (c *simComm) chargeMessageCPU() {
	if c.cfg.MessageCPUTime > 0 {
		c.p.Execute(c.cfg.MessageCPUTime * c.p.Host().Speed)
	}
}

func (c *simComm) sendRaw(dst int, bytes float64) {
	validRank("send to", dst, c.n)
	c.chargeMessageCPU()
	if bytes <= c.cfg.EagerThreshold {
		c.p.ISendDetachedID(c.sendMbox(dst), bytes, bytes)
		return
	}
	c.p.SendID(c.sendMbox(dst), bytes, bytes)
}

func (c *simComm) recvRaw(src int) float64 {
	validRank("receive from", src, c.n)
	h := c.p.IRecvID(c.recvMbox(src))
	c.p.WaitComm(h)
	c.chargeMessageCPU()
	return h.Bytes()
}

func (c *simComm) Send(dst int, bytes float64) { c.sendRaw(dst, bytes) }

func (c *simComm) Isend(dst int, bytes float64) Request {
	validRank("isend to", dst, c.n)
	c.chargeMessageCPU()
	if bytes <= c.cfg.EagerThreshold {
		c.p.ISendDetachedID(c.sendMbox(dst), bytes, bytes)
		return &simRequest{peer: dst, bytes: bytes}
	}
	return &simRequest{
		peer:  dst,
		bytes: bytes,
		comm:  c.p.ISendID(c.sendMbox(dst), bytes, bytes),
	}
}

func (c *simComm) Recv(src int) float64 { return c.recvRaw(src) }

func (c *simComm) Irecv(src int) Request {
	validRank("irecv from", src, c.n)
	return &simRequest{
		isRecv: true,
		peer:   src,
		comm:   c.p.IRecvID(c.recvMbox(src)),
	}
}

func (c *simComm) Wait(req Request) Completion {
	r, ok := req.(*simRequest)
	if !ok {
		panic("mpi: foreign request handed to simulation engine")
	}
	if r.comm != nil {
		c.p.WaitComm(r.comm)
		if r.isRecv {
			r.bytes = r.comm.Bytes()
			c.chargeMessageCPU()
		}
	}
	return Completion{IsRecv: r.isRecv, Peer: r.peer, Bytes: r.bytes}
}

func (c *simComm) Bcast(bytes float64)            { bcast(c, bytes) }
func (c *simComm) Reduce(vcomm, vcomp float64)    { reduce(c, vcomm, vcomp) }
func (c *simComm) Allreduce(vcomm, vcomp float64) { allreduce(c, vcomm, vcomp) }
func (c *simComm) Barrier()                       { barrier(c) }

// RunSim executes the program on the simulation engine: one rank per process
// of the deployment, placed on the platform's hosts. It returns the
// simulated makespan.
func RunSim(b *platform.Build, depl *platform.Deployment, cfg SimConfig, prog Program) (float64, error) {
	return RunSimWrapped(b, depl, cfg, nil, prog)
}

// RunSimWrapped is RunSim with a per-rank communicator decorator (the
// instrumentation hook used by the TAU layer). wrap may be nil.
func RunSimWrapped(b *platform.Build, depl *platform.Deployment, cfg SimConfig,
	wrap func(rank int, c Comm) Comm, prog Program) (float64, error) {

	n := len(depl.Processes)
	if n == 0 {
		return 0, fmt.Errorf("mpi: empty deployment")
	}
	cfg.setDefaults()
	k := b.Kernel
	for i, pd := range depl.Processes {
		host := k.Host(pd.Host)
		if host == nil {
			return 0, fmt.Errorf("mpi: deployment host %q not in platform", pd.Host)
		}
		rank := i
		k.Spawn(pd.Function, host, func(p *simx.Proc) {
			var c Comm = &simComm{p: p, me: rank, n: n, cfg: &cfg,
				sendMb: newMboxTable(n), recvMb: newMboxTable(n)}
			if wrap != nil {
				c = wrap(rank, c)
			}
			prog(c)
		})
	}
	return k.Run()
}
