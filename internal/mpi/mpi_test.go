package mpi

import (
	"math"
	"strings"
	"testing"

	"tireplay/internal/platform"
)

func almost(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

// ringProgram is the Figure 1 computation: 4 iterations of compute-and-pass
// around a ring.
func ringProgram(iters int, flops, bytes float64) Program {
	return func(c Comm) {
		me, n := c.Rank(), c.Size()
		next := (me + 1) % n
		prev := (me - 1 + n) % n
		for i := 0; i < iters; i++ {
			if me == 0 {
				c.Compute(flops)
				c.Send(next, bytes)
				c.Recv(prev)
			} else {
				c.Recv(prev)
				c.Compute(flops)
				c.Send(next, bytes)
			}
		}
	}
}

func TestLiveSingleRankCompute(t *testing.T) {
	end, err := RunLive(LiveConfig{Procs: 1, FlopRate: 1e9}, func(c Comm) {
		c.Compute(2e9)
		if c.FlopCount() != 2e9 {
			t.Errorf("FlopCount = %g", c.FlopCount())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(end, 2.0) {
		t.Fatalf("makespan = %g, want 2", end)
	}
}

func TestLiveRingCompletes(t *testing.T) {
	end, err := RunLive(LiveConfig{Procs: 4}, ringProgram(4, 1e6, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestLiveDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		end, err := RunLive(LiveConfig{Procs: 8}, ringProgram(10, 5e5, 2e5))
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	for i := 0; i < 5; i++ {
		if v := run(); v != first {
			t.Fatalf("non-deterministic live engine: %g vs %g", v, first)
		}
	}
}

func TestLiveEagerSendDoesNotBlock(t *testing.T) {
	// Rank 0 sends eagerly then computes; rank 1 receives late. Eager send
	// must not wait for the receiver.
	var sendClock float64
	_, err := RunLive(LiveConfig{Procs: 2}, func(c Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1024) // below eager threshold
			sendClock = c.Now()
		} else {
			c.Compute(1e9) // 1 s before receiving
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendClock > 1e-3 {
		t.Fatalf("eager send blocked until %g", sendClock)
	}
}

func TestLiveRendezvousSendBlocks(t *testing.T) {
	var sendClock float64
	_, err := RunLive(LiveConfig{Procs: 2}, func(c Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1e7) // above eager threshold
			sendClock = c.Now()
		} else {
			c.Compute(1e9) // receiver busy for 1 s
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The transfer cannot start before t=1 (receiver busy), so the
	// synchronous sender finishes after 1 s + transfer.
	if sendClock < 1.0 {
		t.Fatalf("rendezvous send returned at %g, before receiver was ready", sendClock)
	}
}

func TestLiveRecvReturnsSize(t *testing.T) {
	_, err := RunLive(LiveConfig{Procs: 2}, func(c Comm) {
		if c.Rank() == 0 {
			c.Send(1, 163840)
		} else {
			if got := c.Recv(0); got != 163840 {
				t.Errorf("Recv = %g", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLiveIsendIrecvWait(t *testing.T) {
	_, err := RunLive(LiveConfig{Procs: 2}, func(c Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 2e6)
			c.Compute(1e6)
			comp := c.Wait(req)
			if comp.IsRecv || comp.Peer != 1 || comp.Bytes != 2e6 {
				t.Errorf("send completion = %+v", comp)
			}
		} else {
			req := c.Irecv(0)
			c.Compute(1e6)
			comp := c.Wait(req)
			if !comp.IsRecv || comp.Peer != 0 || comp.Bytes != 2e6 {
				t.Errorf("recv completion = %+v", comp)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLiveCollectives(t *testing.T) {
	counts := make([]float64, 4)
	_, err := RunLive(LiveConfig{Procs: 4}, func(c Comm) {
		c.Barrier()
		c.Bcast(4096)
		c.Reduce(1024, 5e5)
		c.Allreduce(2048, 5e5)
		c.Barrier()
		counts[c.Rank()] = c.FlopCount()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank performed the vcomp work of reduce and allreduce.
	for r, f := range counts {
		if f != 1e6 {
			t.Errorf("rank %d FlopCount = %g, want 1e6", r, f)
		}
	}
}

func TestLiveRateMultiplierChangesTimeNotFlops(t *testing.T) {
	cfg := LiveConfig{Procs: 1, FlopRate: 1e9}
	base, err := RunLive(cfg, func(c Comm) { c.Compute(1e9) })
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rate = func(rank int, seq int64, flops float64) float64 { return 0.5 }
	var flops float64
	slowed, err := RunLive(cfg, func(c Comm) {
		c.Compute(1e9)
		flops = c.FlopCount()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(slowed, 2*base) {
		t.Fatalf("half rate gave %g, want %g", slowed, 2*base)
	}
	if flops != 1e9 {
		t.Fatalf("FlopCount = %g despite rate change", flops)
	}
}

func TestLiveRateMultiplierSeqAdvances(t *testing.T) {
	var seqs []int64
	cfg := LiveConfig{Procs: 1, Rate: func(rank int, seq int64, flops float64) float64 {
		seqs = append(seqs, seq)
		return 1
	}}
	if _, err := RunLive(cfg, func(c Comm) {
		c.Compute(1)
		c.Compute(1)
		c.Compute(1)
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 0 || seqs[1] != 1 || seqs[2] != 2 {
		t.Fatalf("seqs = %v", seqs)
	}
}

func TestLiveDelayAdvancesClockOnly(t *testing.T) {
	end, err := RunLive(LiveConfig{Procs: 1}, func(c Comm) {
		c.Delay(1.5)
		if c.FlopCount() != 0 {
			t.Error("Delay changed FlopCount")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(end, 1.5) {
		t.Fatalf("end = %g", end)
	}
}

func TestLivePanicReported(t *testing.T) {
	_, err := RunLive(LiveConfig{Procs: 1}, func(c Comm) { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestLiveRejectsBadConfig(t *testing.T) {
	if _, err := RunLive(LiveConfig{Procs: 0}, func(c Comm) {}); err == nil {
		t.Fatal("expected error for empty world")
	}
}

// paperBuild builds the 4-node platform of Figure 5 plus a matching
// round-robin deployment.
func paperBuild(t *testing.T, n int) (*platform.Build, *platform.Deployment) {
	t.Helper()
	b, err := platform.BuildBordereau(n)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return b, d
}

func TestSimRingCompletes(t *testing.T) {
	b, d := paperBuild(t, 4)
	end, err := RunSim(b, d, SimConfig{}, ringProgram(4, 1e6, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestSimComputeUsesHostSpeed(t *testing.T) {
	b, d := paperBuild(t, 1)
	end, err := RunSim(b, d, SimConfig{}, func(c Comm) {
		c.Compute(platform.BordereauPower) // exactly one second of work
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(end, 1.0) {
		t.Fatalf("end = %g, want 1", end)
	}
}

func TestSimFoldingSharesCPU(t *testing.T) {
	// 8 ranks folded onto 1 node with 4 cores: 2 ranks per core -> 2x time.
	b, err := platform.BuildBordereau(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.RoundRobin(b.HostNames, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	end, err := RunSim(b, d, SimConfig{}, func(c Comm) {
		c.Compute(platform.BordereauPower)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(end, 2.0) {
		t.Fatalf("folded end = %g, want 2", end)
	}
}

func TestSimCollectivesComplete(t *testing.T) {
	b, d := paperBuild(t, 4)
	counts := make([]float64, 4)
	_, err := RunSim(b, d, SimConfig{}, func(c Comm) {
		c.Barrier()
		c.Bcast(1e5)
		c.Reduce(1e4, 1e6)
		c.Allreduce(1e4, 1e6)
		counts[c.Rank()] = c.FlopCount()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, f := range counts {
		if f != 2e6 {
			t.Errorf("rank %d FlopCount = %g, want 2e6", r, f)
		}
	}
}

func TestSimIsendIrecvWait(t *testing.T) {
	b, d := paperBuild(t, 2)
	_, err := RunSim(b, d, SimConfig{}, func(c Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 5e6)
			c.Compute(1e6)
			comp := c.Wait(req)
			if comp.Bytes != 5e6 || comp.Peer != 1 {
				t.Errorf("completion = %+v", comp)
			}
		} else {
			req := c.Irecv(0)
			comp := c.Wait(req)
			if !comp.IsRecv || comp.Bytes != 5e6 {
				t.Errorf("completion = %+v", comp)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimRejectsUnknownHost(t *testing.T) {
	b, _ := paperBuild(t, 2)
	d := &platform.Deployment{Processes: []platform.ProcessDef{
		{Host: "nowhere", Function: "p0"},
	}}
	if _, err := RunSim(b, d, SimConfig{}, func(c Comm) {}); err == nil {
		t.Fatal("expected error for unknown host")
	}
}

func TestEnginesAgreeOnFlopCounts(t *testing.T) {
	// The same program must issue identical flop volumes on both engines —
	// the foundation of time-independent traces.
	prog := func(counts []float64) Program {
		return func(c Comm) {
			me := c.Rank()
			c.Compute(float64(me+1) * 1e5)
			c.Allreduce(1024, 7e4)
			if me == 0 {
				c.Send(1, 2e6)
			} else if me == 1 {
				c.Recv(0)
			}
			c.Compute(3e5)
			counts[me] = c.FlopCount()
		}
	}
	liveCounts := make([]float64, 4)
	if _, err := RunLive(LiveConfig{Procs: 4}, prog(liveCounts)); err != nil {
		t.Fatal(err)
	}
	simCounts := make([]float64, 4)
	b, d := paperBuild(t, 4)
	if _, err := RunSim(b, d, SimConfig{}, prog(simCounts)); err != nil {
		t.Fatal(err)
	}
	for r := range liveCounts {
		if liveCounts[r] != simCounts[r] {
			t.Errorf("rank %d: live %g != sim %g", r, liveCounts[r], simCounts[r])
		}
	}
}

func TestScatteredSimRuns(t *testing.T) {
	// 4 ranks split across the two Grid'5000 sites communicate via the WAN.
	b, err := platform.BuildGrid5000(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	groups := [][]string{b.ClusterHosts("bordereau"), b.ClusterHosts("gdx")}
	d, err := platform.Scatter(groups, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	end, err := RunSim(b, d, SimConfig{}, ringProgram(2, 1e6, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	// Ring crossings over the WAN must cost at least a few WAN latencies.
	if end < 2*platform.WANLatency {
		t.Fatalf("scattered makespan %g suspiciously small", end)
	}
}
