package mpi

import (
	"fmt"

	"tireplay/internal/trace"
)

// recordComm is the trace-generator engine: it executes a single rank of a
// program without any peers and records the time-independent actions the
// acquisition pipeline would extract. This works because the control flow
// of the supported applications does not depend on message contents (the
// off-line approach already assumes non-adaptive applications, Section 3),
// so one rank can be unrolled in isolation — which makes generating exact
// traces for very large instances (the class D / 1024-process acquisition
// of Section 6.5) cheap.
type recordComm struct {
	me      int
	n       int
	actions []trace.Action
	flops   float64
	clock   float64
	onEmit  func(trace.Action) error
	err     error
}

var _ Comm = (*recordComm)(nil)

type recordRequest struct {
	isRecv bool
	peer   int
	bytes  float64
}

func (c *recordComm) emit(a trace.Action) {
	if c.err != nil {
		return
	}
	a.Proc = c.me
	if c.onEmit != nil {
		if err := c.onEmit(a); err != nil {
			c.err = err
		}
		return
	}
	c.actions = append(c.actions, a)
}

// emitBurst flushes the pending CPU burst before an MPI action, mirroring
// how the extractor derives compute actions from PAPI counter differences.
func (c *recordComm) emitBurst() {
	if c.flops > 0 {
		c.emit(trace.Action{Type: trace.Compute, Peer: -1, Volume: c.flops})
		c.flops = 0
	}
}

func (c *recordComm) Rank() int          { return c.me }
func (c *recordComm) Size() int          { return c.n }
func (c *recordComm) Now() float64       { return c.clock }
func (c *recordComm) FlopCount() float64 { return c.flops }

func (c *recordComm) Compute(flops float64) { c.flops += flops }
func (c *recordComm) Delay(seconds float64) { c.clock += seconds }

func (c *recordComm) Send(dst int, bytes float64) {
	validRank("send to", dst, c.n)
	c.emitBurst()
	c.emit(trace.Action{Type: trace.Send, Peer: dst, Volume: bytes})
}

func (c *recordComm) Isend(dst int, bytes float64) Request {
	validRank("isend to", dst, c.n)
	c.emitBurst()
	c.emit(trace.Action{Type: trace.Isend, Peer: dst, Volume: bytes})
	return &recordRequest{peer: dst, bytes: bytes}
}

func (c *recordComm) Recv(src int) float64 {
	validRank("receive from", src, c.n)
	c.emitBurst()
	c.emit(trace.Action{Type: trace.Recv, Peer: src})
	return 0
}

func (c *recordComm) Irecv(src int) Request {
	validRank("irecv from", src, c.n)
	c.emitBurst()
	c.emit(trace.Action{Type: trace.Irecv, Peer: src})
	return &recordRequest{isRecv: true, peer: src}
}

func (c *recordComm) Wait(req Request) Completion {
	r, ok := req.(*recordRequest)
	if !ok {
		panic("mpi: foreign request handed to recorder engine")
	}
	c.emitBurst()
	c.emit(trace.Action{Type: trace.Wait, Peer: -1})
	return Completion{IsRecv: r.isRecv, Peer: r.peer, Bytes: r.bytes}
}

func (c *recordComm) Bcast(bytes float64) {
	c.emitBurst()
	c.emit(trace.Action{Type: trace.Bcast, Peer: -1, Volume: bytes})
}

func (c *recordComm) Reduce(vcomm, vcomp float64) {
	c.emitBurst()
	c.emit(trace.Action{Type: trace.Reduce, Peer: -1, Volume: vcomm, Volume2: vcomp})
}

func (c *recordComm) Allreduce(vcomm, vcomp float64) {
	c.emitBurst()
	c.emit(trace.Action{Type: trace.AllReduce, Peer: -1, Volume: vcomm, Volume2: vcomp})
}

func (c *recordComm) Barrier() {
	c.emitBurst()
	c.emit(trace.Action{Type: trace.Barrier, Peer: -1})
}

// Record unrolls one rank of a program and returns the time-independent
// actions its acquisition would produce, including the leading comm_size.
func Record(rank, size int, prog Program) ([]trace.Action, error) {
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: rank %d outside world of size %d", rank, size)
	}
	c := &recordComm{me: rank, n: size}
	c.emit(trace.Action{Type: trace.CommSize, Peer: -1, Volume: float64(size)})
	if err := runRecorded(c, prog); err != nil {
		return nil, err
	}
	c.emitBurst() // trailing burst, closed by MPI_Finalize in the real flow
	return c.actions, c.err
}

// RecordStream is Record with a streaming sink instead of an in-memory
// slice, for traces too large to materialise.
func RecordStream(rank, size int, prog Program, emit func(trace.Action) error) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("mpi: rank %d outside world of size %d", rank, size)
	}
	c := &recordComm{me: rank, n: size, onEmit: emit}
	c.emit(trace.Action{Type: trace.CommSize, Peer: -1, Volume: float64(size)})
	if err := runRecorded(c, prog); err != nil {
		return err
	}
	c.emitBurst()
	return c.err
}

// runRecorded executes prog, converting panics into errors (the recorder is
// used on huge instances where a crash should surface cleanly).
func runRecorded(c *recordComm, prog Program) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("mpi: recorded rank %d panicked: %v", c.me, p)
		}
	}()
	prog(c)
	return nil
}
