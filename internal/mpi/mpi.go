// Package mpi is the message-passing substrate the benchmark skeletons run
// on during trace acquisition. It stands in for the OpenMPI installations of
// the paper's testbed: programs are written once against the Comm interface
// and can execute on two interchangeable engines:
//
//   - the live engine (RunLive): every rank is a goroutine, messages are
//     exchanged through channels with rendezvous semantics for large
//     messages, and each rank carries a virtual clock advanced by a
//     latency/bandwidth communication model and a configurable flop rate —
//     the fast path used to acquire traces;
//
//   - the simulation engine (RunSim): ranks are processes of a simx kernel
//     deployed on a platform model, so the execution experiences CPU
//     sharing (folding), hierarchical network contention and wide-area
//     latencies — the path used to model the acquisition campaigns of
//     Table 2 and Figure 7.
//
// Both engines expose a virtual PAPI-like flop counter (FlopCount) that the
// TAU-style instrumentation layer samples at MPI event boundaries, exactly
// how the paper derives the volume of CPU bursts.
package mpi

import "fmt"

// Comm is the per-rank communicator handed to a Program. All volumes are
// expressed as in the paper's traces: flops for computations, bytes for
// communications. Collective operations are rooted at rank 0, matching the
// design choice of Section 3.
type Comm interface {
	// Rank returns this process's rank in 0..Size()-1.
	Rank() int
	// Size returns the number of processes.
	Size() int
	// Now returns the rank's current virtual time in seconds.
	Now() float64
	// FlopCount returns the virtual PAPI_FP_OPS counter: the cumulative
	// number of flops this rank has executed.
	FlopCount() float64
	// Compute executes a CPU burst of the given volume.
	Compute(flops float64)
	// Delay advances the rank's clock without performing flops; the
	// instrumentation layer uses it to model tracing overhead.
	Delay(seconds float64)
	// Send transmits bytes to dst, blocking until the message is delivered
	// (synchronous mode, as large sends behave in MPI implementations).
	Send(dst int, bytes float64)
	// Isend starts an asynchronous send and returns a request handle.
	Isend(dst int, bytes float64) Request
	// Recv blocks until a message from src arrives and returns its size.
	Recv(src int) float64
	// Irecv posts an asynchronous receive for a message from src.
	Irecv(src int) Request
	// Wait blocks until the request completes and describes the completion.
	Wait(req Request) Completion
	// Bcast broadcasts bytes from rank 0 to every rank.
	Bcast(bytes float64)
	// Reduce sends vcomm bytes from every rank towards rank 0, then every
	// rank performs vcomp flops of reduction work.
	Reduce(vcomm, vcomp float64)
	// Allreduce is Reduce followed by a broadcast of the result.
	Allreduce(vcomm, vcomp float64)
	// Barrier synchronises all ranks.
	Barrier()
}

// Request is an opaque handle on an in-flight asynchronous operation.
type Request interface{}

// Completion describes a finished asynchronous operation: Wait on an Irecv
// reports the message source and size (the information tau2simgrid must look
// up from the MPI_Wait, per Section 4.3).
type Completion struct {
	IsRecv bool
	Peer   int
	Bytes  float64
}

// Program is an MPI application body, executed once per rank.
type Program func(c Comm)

// RateMultiplier modulates a rank's flop rate per compute burst: it receives
// the rank, the burst sequence number and the burst volume and returns a
// multiplicative factor on the baseline rate. It models the paper's
// observation (Section 6.4) that the flop rate is not constant over the
// computation of a LU benchmark; a nil multiplier means a constant rate.
type RateMultiplier func(rank int, seq int64, flops float64) float64

// engine is the internal point-to-point layer the shared collective
// algorithms are built on. The raw operations are synchronous and invisible
// to the instrumentation layer: a traced application only sees the
// collective call itself, as with a real MPI library.
type engine interface {
	rank() int
	size() int
	sendRaw(dst int, bytes float64)
	recvRaw(src int) float64
	addFlops(flops float64)
	computeRaw(flops float64)
}

// collective algorithms; linear and rooted at rank 0, mirroring the replay
// tool's design choice so acquisition and replay agree on the schedule shape.

func barrier(e engine) {
	me, n := e.rank(), e.size()
	if n == 1 {
		return
	}
	const token = 4 // bytes of a zero-payload control message
	if me == 0 {
		for i := 1; i < n; i++ {
			e.recvRaw(i)
		}
		for i := 1; i < n; i++ {
			e.sendRaw(i, token)
		}
	} else {
		e.sendRaw(0, token)
		e.recvRaw(0)
	}
}

func bcast(e engine, bytes float64) {
	me, n := e.rank(), e.size()
	if n == 1 {
		return
	}
	if me == 0 {
		for i := 1; i < n; i++ {
			e.sendRaw(i, bytes)
		}
	} else {
		e.recvRaw(0)
	}
}

func reduce(e engine, vcomm, vcomp float64) {
	me, n := e.rank(), e.size()
	if me == 0 {
		for i := 1; i < n; i++ {
			e.recvRaw(i)
		}
	} else {
		e.sendRaw(0, vcomm)
	}
	if vcomp > 0 {
		e.addFlops(vcomp)
		e.computeRaw(vcomp)
	}
}

func allreduce(e engine, vcomm, vcomp float64) {
	me, n := e.rank(), e.size()
	if me == 0 {
		for i := 1; i < n; i++ {
			e.recvRaw(i)
		}
		for i := 1; i < n; i++ {
			e.sendRaw(i, vcomm)
		}
	} else {
		e.sendRaw(0, vcomm)
		e.recvRaw(0)
	}
	if vcomp > 0 {
		e.addFlops(vcomp)
		e.computeRaw(vcomp)
	}
}

// validRank panics on out-of-range peers; programs are trusted code in this
// repository but early failure beats a hung rendezvous.
func validRank(who string, r, n int) {
	if r < 0 || r >= n {
		panic(fmt.Sprintf("mpi: %s rank %d outside world of size %d", who, r, n))
	}
}
